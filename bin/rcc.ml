(* rcc — compile-and-simulate driver for the Register Connection
   reproduction.

   Subcommands:
     list                        the twelve benchmark kernels
     run <bench> [options]       compile one kernel and simulate it
     compile <file> [options]    admit a kernel spec document (id + summary)
     compare <bench> [options]   without-RC vs with-RC vs unlimited
     figures [ids] [options]     regenerate the paper's tables and figures
     serve [options]             persistent HTTP simulation service
     dump <bench> [options]      print the generated machine code
     trace <bench> [options]     structured trace (JSONL or Chrome JSON)
     check <bench> [options]     pass-level oracle + machine-vs-oracle lockstep
     fuzz [options]              random programs over the configuration grid

   run and compare take --json for machine-readable output with stable
   key names; trace emits compile-pass spans and a windowed per-cycle
   machine track loadable in Perfetto (--format chrome).  check and
   fuzz exit non-zero on the first divergence and print the report
   (JSON with --json).
*)

open Cmdliner

(* --- shared options ------------------------------------------------------ *)

(** Strictly positive integer argument: a zero or negative value is a
    usage error, never a zero-domain pool or an empty sweep. *)
let pos_int ~what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
        Error (`Msg (Fmt.str "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Fmt.int)

let bench_arg =
  let doc = "Benchmark kernel name (see $(b,rcc list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

(* run accepts a registry kernel *or* a spec document; the positional
   is optional there and checked against --spec below. *)
let bench_opt_arg =
  let doc =
    "Benchmark kernel name (see $(b,rcc list)); omit when running a \
     submitted spec with $(b,--spec)."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let spec_file_arg =
  let doc =
    "Kernel spec document (JSON; $(b,-) reads standard input) to compile \
     and run instead of a registry benchmark.  The document is admitted \
     exactly as $(b,POST /compile) would: strict decode, then the size, \
     depth, function-count and dynamic-weight budgets."
  in
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)

let oracle_arg =
  let doc =
    "Lockstep the first $(docv) machine cycles against the sequential \
     reference interpreter before timing; a divergence rejects the kernel \
     and prints the differential report."
  in
  Arg.(
    value
    & opt (some (pos_int ~what:"--oracle")) None
    & info [ "oracle" ] ~docv:"CYCLES" ~doc)

let read_spec_file path =
  let read_all ic =
    let b = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel b ic 4096
       done
     with End_of_file -> ());
    Buffer.contents b
  in
  if path = "-" then Ok (read_all stdin)
  else
    match open_in_bin path with
    | ic ->
        let text = read_all ic in
        close_in ic;
        Ok text
    | exception Sys_error m -> Error m

let issue =
  let doc = "Issue rate (instructions per cycle): 1, 2, 4 or 8." in
  Arg.(value & opt int 4 & info [ "issue" ] ~docv:"N" ~doc)

let core_int =
  let doc = "Core integer registers visible to the instruction set." in
  Arg.(value & opt int 16 & info [ "core-int" ] ~docv:"N" ~doc)

let core_float =
  let doc = "Core floating-point registers (simulator registers)." in
  Arg.(value & opt int 16 & info [ "core-float" ] ~docv:"N" ~doc)

let rc =
  let doc = "Enable Register Connection support (256-register file)." in
  Arg.(value & flag & info [ "rc" ] ~doc)

let load_lat =
  let doc = "Memory load latency in cycles (2 or 4)." in
  Arg.(value & opt int 2 & info [ "load" ] ~docv:"CYCLES" ~doc)

let connect_lat =
  let doc = "Connect instruction latency (0 or 1)." in
  Arg.(value & opt int 0 & info [ "connect" ] ~docv:"CYCLES" ~doc)

let mem_channels =
  let doc = "Memory channels per cycle (default: 2, or 4 at 8-issue)." in
  Arg.(value & opt (some int) None & info [ "mem-channels" ] ~docv:"N" ~doc)

let extra_stage =
  let doc = "Model an extra decode stage for mapping-table access." in
  Arg.(value & flag & info [ "extra-stage" ] ~doc)

let model =
  let doc =
    "Automatic reset model: 1 (no-reset), 2 (write-reset), 3 \
     (write-reset-read-update, the paper's choice) or 4 (read-write-reset)."
  in
  let parse s =
    match Rc_core.Model.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg ("unknown model " ^ s))
  in
  let print ppf m = Rc_core.Model.pp ppf m in
  Arg.(
    value
    & opt (conv (parse, print)) Rc_core.Model.default
    & info [ "model" ] ~docv:"MODEL" ~doc)

let scale =
  let doc = "Workload input scale factor (positive)." in
  Arg.(
    value
    & opt (pos_int ~what:"--scale") 1
    & info [ "scale" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Worker domains for multi-configuration subcommands (compare); \
     positive."
  in
  Arg.(
    value
    & opt (pos_int ~what:"--jobs") (Domain.recommended_domain_count ())
    & info [ "jobs" ] ~docv:"N" ~doc)

let no_unroll =
  let doc = "Disable the ILP loop unrolling (classical optimisation only)." in
  Arg.(value & flag & info [ "no-unroll" ] ~doc)

let json_flag =
  let doc =
    "Machine-readable JSON output (stable key names, one object per \
     configuration) instead of the formatted text."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let engine_arg =
  let doc =
    "Timing engine: $(b,execute) (execution-driven simulation), $(b,replay) \
     (record the dynamic trace once, re-time by trace replay), or $(b,auto) \
     (replay whenever a recorded trace for the compiled image is available). \
     All engines produce identical results."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("execute", Rc_harness.Experiments.Execute);
             ("replay", Rc_harness.Experiments.Replay);
             ("auto", Rc_harness.Experiments.Auto);
           ])
        Rc_harness.Experiments.Auto
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let store_dir_arg =
  let doc =
    "On-disk trace store directory (created if missing): recorded traces \
     persist there and later processes — another $(b,rcc run), a figures \
     sweep, a restarted server — re-time by replay instead of executing."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let store_max_bytes_arg =
  let doc =
    "Byte cap for $(b,--store): beyond it the least-recently-used records \
     are evicted (default: unbounded)."
  in
  Arg.(
    value
    & opt (some (pos_int ~what:"--store-max-bytes")) None
    & info [ "store-max-bytes" ] ~docv:"BYTES" ~doc)

let no_timing_memo_arg =
  let doc =
    "Disable the superblock timing memo inside trace replay (DESIGN.md      Â§18).  An escape hatch for debugging and A/B timing: results are      byte-identical either way, the memo is just faster on loop-heavy      sweeps."
  in
  Arg.(value & flag & info [ "no-timing-memo" ] ~doc)

let open_store store_dir store_max_bytes =
  Option.map
    (fun dir ->
      Rc_serve.Store.open_store ~dir
        ?max_bytes:store_max_bytes ())
    store_dir

let trace_key (c : Rc_harness.Pipeline.compiled) =
  Rc_isa.Image.fingerprint c.Rc_harness.Pipeline.image
  ^ "#"
  ^ Rc_harness.Experiments.semantic_key c.Rc_harness.Pipeline.opts

(** Single-shot engine dispatch for $(b,run): with no cache to hit,
    [auto] executes; [replay] demonstrates the engine end to end by
    recording and re-timing the same configuration.  With a [store],
    every non-[execute] engine probes it first (a hit replays without
    executing at all) and publishes what it records.  Returns the
    result and the engine that actually produced it. *)
let simulate_single ?store engine (c : Rc_harness.Pipeline.compiled) =
  let safe () =
    Rc_machine.Trace_replay.replay_safe
      (Rc_harness.Pipeline.machine_config c.Rc_harness.Pipeline.opts)
  in
  match (engine, store) with
  | Rc_harness.Experiments.Execute, _ ->
      (Rc_harness.Pipeline.simulate c, "execute")
  | (Rc_harness.Experiments.Auto | Rc_harness.Experiments.Replay), Some st
    when safe () -> (
      let key = trace_key c in
      match Rc_serve.Store.probe st key with
      | Some tr -> (Rc_harness.Pipeline.simulate_replayed c tr, "replay")
      | None -> (
          match Rc_harness.Pipeline.simulate_recorded c with
          | r, None -> (r, "execute")
          | r, Some tr ->
              Rc_serve.Store.publish st key tr;
              (r, "execute")))
  | Rc_harness.Experiments.Auto, _ ->
      (Rc_harness.Pipeline.simulate c, "execute")
  | Rc_harness.Experiments.Replay, _ -> (
      if not (safe ()) then (Rc_harness.Pipeline.simulate c, "execute")
      else
        match Rc_harness.Pipeline.simulate_recorded c with
        | r, None -> (r, "execute")
        | _, Some tr -> (Rc_harness.Pipeline.simulate_replayed c tr, "replay"))

(* CLI knobs to pipeline options — shared with the server's /run
   decoder so both front ends apply identical defaults. *)
let options_of = Rc_serve.Payload.options_of

(* --- subcommands ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Rc_workloads.Wutil.bench) ->
        Fmt.pr "%-12s %-6s %s@." b.Rc_workloads.Wutil.name
          (match b.Rc_workloads.Wutil.kind with
          | Rc_workloads.Wutil.Int_bench -> "int"
          | Rc_workloads.Wutil.Float_bench -> "float")
          b.Rc_workloads.Wutil.description)
      (Rc_workloads.Registry.all ());
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark kernels")
    Term.(const run $ const ())

let compile_one bench opts scale =
  let b = Rc_workloads.Registry.find bench in
  let prog = b.Rc_workloads.Wutil.build scale in
  Rc_harness.Pipeline.compile opts prog

let print_result (c : Rc_harness.Pipeline.compiled) (r : Rc_machine.Machine.result) =
  let bk = c.Rc_harness.Pipeline.breakdown in
  Fmt.pr "cycles        %d@." r.Rc_machine.Machine.cycles;
  Fmt.pr "instructions  %d (ipc %.2f)@." r.Rc_machine.Machine.issued
    (float_of_int r.Rc_machine.Machine.issued
    /. float_of_int (max 1 r.Rc_machine.Machine.cycles));
  Fmt.pr "connects      %d dynamic, %d static@." r.Rc_machine.Machine.connects
    bk.Rc_isa.Mcode.connects;
  Fmt.pr "memory ops    %d@." r.Rc_machine.Machine.mem_ops;
  Fmt.pr "branches      %d (%d mispredicted)@." r.Rc_machine.Machine.branches
    r.Rc_machine.Machine.mispredicts;
  Fmt.pr "stalls        %d data, %d map, %d channel@."
    r.Rc_machine.Machine.data_stalls r.Rc_machine.Machine.map_stalls
    r.Rc_machine.Machine.channel_stalls;
  let issue_slots = r.Rc_machine.Machine.cycles * c.Rc_harness.Pipeline.opts.Rc_harness.Pipeline.issue in
  Fmt.pr
    "lost slots    %d of %d (%.1f%%): %d data, %d map, %d channel, %d branch, \
     %d fetch@."
    (Rc_machine.Machine.lost_slots r)
    issue_slots
    (100.0
    *. float_of_int (Rc_machine.Machine.lost_slots r)
    /. float_of_int (max 1 issue_slots))
    r.Rc_machine.Machine.lost_data r.Rc_machine.Machine.lost_map
    r.Rc_machine.Machine.lost_channel r.Rc_machine.Machine.lost_branch
    r.Rc_machine.Machine.lost_fetch;
  Fmt.pr
    "code size     %d insns (%d normal, %d spill, %d save, %d xsave, %d connect)@."
    (bk.Rc_isa.Mcode.normal + bk.Rc_isa.Mcode.spill + bk.Rc_isa.Mcode.save
   + bk.Rc_isa.Mcode.xsave + bk.Rc_isa.Mcode.connects)
    bk.Rc_isa.Mcode.normal bk.Rc_isa.Mcode.spill bk.Rc_isa.Mcode.save
    bk.Rc_isa.Mcode.xsave bk.Rc_isa.Mcode.connects;
  Fmt.pr "spilled vregs %d@." c.Rc_harness.Pipeline.spills;
  Fmt.pr "checksum      %Ld (verified against the reference interpreter)@."
    r.Rc_machine.Machine.checksum

(* --- JSON output ---------------------------------------------------------- *)

(* The machine-readable documents live in Rc_serve.Payload, shared
   with the HTTP service so both front ends emit identical bytes. *)
let config_result_json = Rc_serve.Payload.config_result_json

(* Admit a spec document from disk/stdin through the same pipeline the
   service uses ({!Rc_check.Spec}), so `rcc compile`/`rcc run --spec`
   and POST /compile agree on every rejection and every kernel id. *)
let spec_of_file path =
  match read_spec_file path with
  | Error m -> Error (Fmt.str "cannot read %s: %s" path m)
  | Ok text -> (
      match Rc_check.Spec.of_string text with
      | Error e -> Error (Rc_check.Spec.error_detail e)
      | Ok s -> Ok s)

(* The oracle gate shared by run and compile: [Ok None] when not asked
   for, [Ok (Some verdict_json)] on agreement, [Error report] on
   divergence. *)
let oracle_of cycles (c : Rc_harness.Pipeline.compiled) =
  match cycles with
  | None -> Ok None
  | Some cycles -> (
      match Rc_check.Spec.oracle ~cycles c with
      | Rc_check.Spec.Diverged r -> Error r
      | v -> Ok (Some (Rc_check.Spec.verdict_json v)))

let run_cmd =
  let run bench spec_file oracle issue core_int core_float rc load connect
      mem_channels extra_stage model scale no_unroll engine store_dir
      store_max_bytes json =
    let opts =
      options_of ~issue ~core_int ~core_float ~rc ~load ~connect ~mem_channels
        ~extra_stage ~model ~no_unroll
    in
    let resolved =
      match (bench, spec_file) with
      | Some b, None -> Ok (b, compile_one b opts scale)
      | None, Some f ->
          Result.map
            (fun s ->
              let b = Rc_check.Spec.bench_of s in
              ( b.Rc_workloads.Wutil.name,
                Rc_harness.Pipeline.compile opts
                  (b.Rc_workloads.Wutil.build scale) ))
            (spec_of_file f)
      | Some _, Some _ -> Error "BENCH and --spec are mutually exclusive"
      | None, None -> Error "one of BENCH or --spec is required"
    in
    match resolved with
    | Error m ->
        Fmt.epr "rcc run: %s@." m;
        2
    | Ok (bench, c) -> (
        match oracle_of oracle c with
        | Error r ->
            Fmt.epr "rcc run: admission oracle diverged:@.%a@."
              Rc_check.Report.pp r;
            1
        | Ok orc ->
            let store = open_store store_dir store_max_bytes in
            let r, engine_used = simulate_single ?store engine c in
            (match store with
            | None -> ()
            | Some st ->
                let s = Rc_serve.Store.stats st in
                (* stderr, so --json stdout stays a single document *)
                Fmt.epr "rcc run: store %s: %d hit, %d miss, %d published@."
                  (Rc_serve.Store.dir st) s.Rc_serve.Store.hits
                  s.Rc_serve.Store.misses s.Rc_serve.Store.published);
            if json then
              Fmt.pr "%s@."
                (Rc_obs.Json.to_string
                   (Rc_serve.Payload.run_response ?oracle:orc ~bench ~scale
                      ~engine_used c r))
            else begin
              Fmt.pr "== %s ==@." bench;
              print_result c r;
              (match orc with
              | Some v ->
                  Fmt.pr "oracle        %s@." (Rc_obs.Json.to_string v)
              | None -> ());
              if engine_used = "replay" then
                Fmt.pr "engine        replay (re-timed from the recorded trace)@."
            end;
            0)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Compile one kernel — a registry benchmark or a $(b,--spec) \
          document — and simulate it")
    Term.(
      const run $ bench_opt_arg $ spec_file_arg $ oracle_arg $ issue
      $ core_int $ core_float $ rc $ load_lat $ connect_lat $ mem_channels
      $ extra_stage $ model $ scale $ no_unroll $ engine_arg $ store_dir_arg
      $ store_max_bytes_arg $ json_flag)

(* --- compile ---------------------------------------------------------------- *)

let compile_cmd =
  let spec_pos =
    let doc =
      "Kernel spec document (JSON; $(b,-) reads standard input)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file oracle json =
    match spec_of_file file with
    | Error m ->
        Fmt.epr "rcc compile: %s@." m;
        1
    | Ok spec -> (
        let id = Rc_check.Spec.id_of spec in
        let b = Rc_check.Spec.bench_of spec in
        let c =
          Rc_harness.Pipeline.compile
            (Rc_serve.Payload.default_options ())
            (b.Rc_workloads.Wutil.build 1)
        in
        match oracle_of oracle c with
        | Error r ->
            Fmt.epr "rcc compile: admission oracle diverged:@.%a@."
              Rc_check.Report.pp r;
            1
        | Ok orc ->
            if json then
              Fmt.pr "%s@."
                (Rc_obs.Json.to_string
                   (Rc_serve.Payload.compile_response ?oracle:orc ~id spec c))
            else begin
              let bk = c.Rc_harness.Pipeline.breakdown in
              Fmt.pr "kernel        %s@." id;
              Fmt.pr "bench         spec:%s@." id;
              Fmt.pr "spec          %d nodes, depth %d, %d function(s), %d slot(s)@."
                (Rc_check.Gen.size spec) (Rc_check.Gen.depth spec)
                (Array.length spec.Rc_check.Gen.funcs)
                spec.Rc_check.Gen.slots;
              Fmt.pr "fingerprint   %s@."
                (Rc_isa.Image.fingerprint c.Rc_harness.Pipeline.image);
              Fmt.pr
                "code size     %d insns (%d normal, %d spill, %d save, %d \
                 xsave, %d connect)@."
                (bk.Rc_isa.Mcode.normal + bk.Rc_isa.Mcode.spill
               + bk.Rc_isa.Mcode.save + bk.Rc_isa.Mcode.xsave
               + bk.Rc_isa.Mcode.connects)
                bk.Rc_isa.Mcode.normal bk.Rc_isa.Mcode.spill
                bk.Rc_isa.Mcode.save bk.Rc_isa.Mcode.xsave
                bk.Rc_isa.Mcode.connects;
              Fmt.pr "spilled vregs %d@." c.Rc_harness.Pipeline.spills;
              (match orc with
              | Some v -> Fmt.pr "oracle        %s@." (Rc_obs.Json.to_string v)
              | None -> ());
              Fmt.pr
                "run it:       rcc run --spec %s  (or POST /run with \
                 {\"kernel\": %S})@."
                (if file = "-" then "FILE" else file)
                id
            end;
            0)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Admit a kernel spec document (strict decode + budget \
          validation, as POST /compile) and print its kernel id and \
          compiled-image summary")
    Term.(const run $ spec_pos $ oracle_arg $ json_flag)

(* --- figures ---------------------------------------------------------------- *)

let figures_ids =
  let doc =
    "Experiment ids to regenerate (default: every table and figure).  See \
     $(b,rcc figures --list-ids)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let figures_jobs =
  let doc = "Worker domains for the sweep (default 1: sequential); positive." in
  Arg.(
    value & opt (pos_int ~what:"--jobs") 1 & info [ "jobs" ] ~docv:"N" ~doc)

let list_ids_flag =
  let doc = "List the known experiment ids and exit." in
  Arg.(value & flag & info [ "list-ids" ] ~doc)

let per_cell_flag =
  let doc =
    "Bypass the batching prefetch: time every cell through the per-cell \
     engine policy instead of grouping cells that share a compiled image \
     into one recording plus one batched replay pass.  A debugging switch — \
     tables are byte-identical either way, batching is just faster."
  in
  Arg.(value & flag & info [ "per-cell" ] ~doc)

let all_figure_ids = Rc_serve.Payload.all_figure_ids

(* The cold-cache stderr note prints at most once per process, however
   many times a figures term is evaluated. *)
let cold_note_printed = ref false

let figures_cmd =
  let run ids scale jobs engine per_cell store_dir store_max_bytes
      no_timing_memo json list_ids =
    if list_ids then begin
      List.iter (fun id -> Fmt.pr "%s@." id) all_figure_ids;
      0
    end
    else begin
      let ids = match ids with [] -> all_figure_ids | ids -> ids in
      match
        List.filter (fun id -> not (List.mem id all_figure_ids)) ids
      with
      | unknown :: _ ->
          Fmt.epr "rcc figures: unknown experiment %s@." unknown;
          2
      | [] ->
          let ctx =
            Rc_harness.Experiments.create ~scale ~jobs ~engine
              ~batch:(not per_cell) ~timing_memo:(not no_timing_memo) ()
          in
          let store = open_store store_dir store_max_bytes in
          (match store with
          | None -> ()
          | Some st ->
              Rc_harness.Experiments.set_store ctx
                ~probe:(Rc_serve.Store.probe st)
                ~publish:(Rc_serve.Store.publish st));
          Fun.protect
            ~finally:(fun () -> Rc_harness.Experiments.shutdown ctx)
            (fun () ->
              let tables =
                List.map
                  (fun id ->
                    match Rc_harness.Experiments.by_id ctx id with
                    | Some t -> t
                    | None -> assert false (* ids were validated above *))
                  ids
              in
              let es = Rc_harness.Experiments.engine_stats ctx in
              if json then
                Fmt.pr "%s@."
                  (Rc_obs.Json.to_string
                     (Rc_serve.Payload.figures_response ~scale
                        ~jobs:(Rc_harness.Experiments.jobs ctx)
                        ~engine_name:
                          (Rc_harness.Experiments.engine_name engine)
                        ~stats:es tables))
              else begin
                List.iter
                  (Rc_harness.Experiments.print_table Fmt.stdout)
                  tables;
                (* Stderr, so stdout stays byte-comparable across
                   engines and jobs counts. *)
                Fmt.epr
                  "engine %s: %d replayed (%d from store), %d executed (%d \
                   traces recorded, %d not replay-safe, %d trace bytes)@."
                  (Rc_harness.Experiments.engine_name engine)
                  es.Rc_harness.Experiments.hits
                  es.Rc_harness.Experiments.store_hits
                  es.Rc_harness.Experiments.misses
                  es.Rc_harness.Experiments.recorded
                  es.Rc_harness.Experiments.unsafe
                  es.Rc_harness.Experiments.bytes;
                if
                  es.Rc_harness.Experiments.seg_hits > 0
                  || es.Rc_harness.Experiments.seg_misses > 0
                  || es.Rc_harness.Experiments.seg_fallbacks > 0
                then
                  Fmt.epr
                    "timing memo: %d superblock hits, %d misses, %d \
                     fallbacks (%d memo bytes)@."
                    es.Rc_harness.Experiments.seg_hits
                    es.Rc_harness.Experiments.seg_misses
                    es.Rc_harness.Experiments.seg_fallbacks
                    es.Rc_harness.Experiments.memo_bytes
              end;
              (* A single-shot sweep records more than it replays on
                 mostly-distinct images; a long-lived context (rcc
                 serve) amortises those recordings across requests.
                 Store hits fold into the decision: a disk hit warmed
                 the cache mid-run, so the cache was not cold even when
                 this process still recorded more than it replayed. *)
              if
                es.Rc_harness.Experiments.recorded
                > es.Rc_harness.Experiments.hits
                   + es.Rc_harness.Experiments.store_hits
                && not !cold_note_printed
              then begin
                cold_note_printed := true;
                Fmt.epr
                  "note: cold trace cache (%d traces recorded for %d \
                   replays); a warm `rcc serve` context or `--store` \
                   amortises the recordings@."
                  es.Rc_harness.Experiments.recorded
                  es.Rc_harness.Experiments.hits
              end;
              (match store with
              | None -> ()
              | Some st ->
                  let s = Rc_serve.Store.stats st in
                  Fmt.epr
                    "store %s: %d hit, %d miss, %d published, %d evicted \
                     (%d bytes in %d files)@."
                    (Rc_serve.Store.dir st) s.Rc_serve.Store.hits
                    s.Rc_serve.Store.misses s.Rc_serve.Store.published
                    s.Rc_serve.Store.evicted s.Rc_serve.Store.bytes
                    s.Rc_serve.Store.files);
              0)
    end
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Regenerate the paper's tables and figures.  The timing engine \
          records each distinct compiled image once and re-times every \
          other grid point by trace replay; tables are byte-identical for \
          every engine and jobs count")
    Term.(
      const run $ figures_ids $ scale $ figures_jobs $ engine_arg
      $ per_cell_flag $ store_dir_arg $ store_max_bytes_arg
      $ no_timing_memo_arg $ json_flag $ list_ids_flag)

(* --- serve ------------------------------------------------------------------ *)

let serve_cmd =
  let host =
    let doc = "Listen address." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let port =
    let doc = "Listen port; 0 picks an ephemeral port." in
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 && n <= 65535 -> Ok n
      | Some _ | None -> Error (`Msg ("--port must be 0..65535, got " ^ s))
    in
    Arg.(
      value & opt (Arg.conv (parse, Fmt.int)) 8080
      & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let max_inflight =
    let doc =
      "Accepted-but-unfinished request bound; beyond it the accept loop \
       sheds load with 503 + Retry-After."
    in
    Arg.(
      value
      & opt (pos_int ~what:"--max-inflight") 64
      & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let max_body =
    let doc = "Request body limit in bytes (413 beyond it)." in
    Arg.(
      value
      & opt (pos_int ~what:"--max-body") (1 lsl 20)
      & info [ "max-body" ] ~docv:"BYTES" ~doc)
  in
  let deadline =
    let doc =
      "Per-request deadline in seconds: slow reads answer 408, responses \
       whose work finished after the deadline are abandoned."
    in
    let parse s =
      match float_of_string_opt s with
      | Some f when f > 0.0 -> Ok f
      | Some _ | None ->
          Error (`Msg ("--deadline must be a positive number, got " ^ s))
    in
    Arg.(
      value & opt (Arg.conv (parse, Fmt.float)) 30.0
      & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let serve_engine =
    (* Unlike the one-shot CLI the server defaults to replay: the first
       request for an image records its trace, the second is re-timed
       from the cache. *)
    let doc =
      "Timing engine for the shared context (default $(b,replay): the \
       second request for any compiled image is re-timed by trace replay)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("execute", Rc_harness.Experiments.Execute);
               ("replay", Rc_harness.Experiments.Replay);
               ("auto", Rc_harness.Experiments.Auto);
             ])
          Rc_harness.Experiments.Replay
      & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let trace_file =
    let doc =
      "Write the retained per-request span traces (what $(b,GET /trace) \
       answers) as Chrome trace-event JSON to $(docv) after draining."
    in
    Arg.(
      value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let slow_ms =
    let doc =
      "Dump the span breakdown (admission queue, parse, compile, \
       simulate, render, write) of every request slower than $(docv) \
       milliseconds to stderr."
    in
    let parse s =
      match float_of_string_opt s with
      | Some f when f >= 0.0 -> Ok f
      | Some _ | None ->
          Error (`Msg ("--slow-ms must be a non-negative number, got " ^ s))
    in
    Arg.(
      value
      & opt (some (Arg.conv (parse, Fmt.float))) None
      & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let quiet =
    let doc = "Suppress the per-request access-log lines on stderr." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let workers_arg =
    let doc =
      "Prefork worker processes accepting on one shared listener (the \
       kernel load-balances connections).  Each worker owns its own \
       context — memo tables, trace cache, domain pool — sharing only \
       the $(b,--store) directory; the parent respawns dead workers and \
       fans SIGTERM out for a graceful drain.  Default 1: single \
       process, no fork."
    in
    Arg.(
      value
      & opt (pos_int ~what:"--workers") 1
      & info [ "workers" ] ~docv:"N" ~doc)
  in
  (* One worker process: context, server, signal wiring, drain.
     [announce] is false for prefork workers — the parent already
     printed the listening line (the smoke drivers parse exactly
     one). *)
  let serve_one ~announce ?listener ?pending ~host ~port ~jobs ~scale
      ~engine ~max_inflight ~max_body ~deadline ~trace_file ~slow_ms ~quiet
      ~store_dir ~store_max_bytes () =
    let ctx = Rc_harness.Experiments.create ~scale ~jobs ~engine () in
    let store = open_store store_dir store_max_bytes in
    let srv =
      Rc_serve.Server.create
        ~config:
          {
            Rc_serve.Server.default_config with
            Rc_serve.Server.host;
            port;
            max_inflight;
            max_body;
            deadline_s = deadline;
            access_log = not quiet;
            slow_ms;
          }
        ?listener ?store ctx
    in
    (* A client vanishing mid-response must be an abandoned write, not
       a fatal SIGPIPE. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    List.iter
      (fun s ->
        Sys.set_signal s
          (Sys.Signal_handle (fun _ -> Rc_serve.Server.stop srv)))
      [ Sys.sigterm; Sys.sigint ];
    (* A stop signal that raced worker startup was parked in [pending]
       by the shim handler; honour it now that the server exists. *)
    (match pending with
    | Some p when !p -> Rc_serve.Server.stop srv
    | _ -> ());
    if announce then
      (* Narration on stderr: stdout stays free for machine-readable
         use (and the smoke driver parses this line for the bound
         port). *)
      Fmt.epr
        "rcc serve: listening on http://%s:%d (jobs %d, scale %d, engine \
         %s, deadline %gs)@."
        host
        (Rc_serve.Server.port srv)
        (Rc_harness.Experiments.jobs ctx)
        scale
        (Rc_harness.Experiments.engine_name engine)
        deadline;
    Rc_serve.Server.run srv;
    Fmt.epr "rcc serve%s: drained %d request(s), shutting down@."
      (if announce then "" else Fmt.str "[%d]" (Unix.getpid ()))
      (Rc_serve.Server.served srv);
    (match trace_file with
    | None -> ()
    | Some path ->
        Rc_obs.Fsio.write_atomic path (fun oc ->
            output_string oc (Rc_serve.Server.trace_chrome srv);
            output_char oc '\n');
        Fmt.epr "rcc serve: wrote request-span trace to %s@." path);
    Rc_harness.Experiments.shutdown ctx;
    0
  in
  let run host port jobs scale engine max_inflight max_body deadline
      trace_file slow_ms quiet workers store_dir store_max_bytes =
    if workers = 1 then
      serve_one ~announce:true ~host ~port ~jobs ~scale ~engine
        ~max_inflight ~max_body ~deadline ~trace_file ~slow_ms ~quiet
        ~store_dir ~store_max_bytes ()
    else begin
      (* Prefork: the parent opens the listener and forks [workers]
         children that accept on the shared fd.  The parent must never
         create an Experiments context — [Unix.fork] is unsafe once
         domains exist, and the pool spawns domains — so every child
         builds its own context {e after} the fork, sharing only the
         on-disk store. *)
      let config =
        { Rc_serve.Server.default_config with Rc_serve.Server.host; port }
      in
      let listener, bound_port = Rc_serve.Server.create_listener config in
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Fmt.epr
        "rcc serve: listening on http://%s:%d (workers %d, jobs %d, scale \
         %d, engine %s, deadline %gs)@."
        host bound_port workers jobs scale
        (Rc_harness.Experiments.engine_name engine)
        deadline;
      let worker () =
        (* The inherited SIGTERM disposition belongs to the parent
           (it fans out to the worker table).  Park arriving signals
           in a flag until this worker's server exists, then hand
           them to its stop. *)
        let pending = ref false in
        List.iter
          (fun s ->
            Sys.set_signal s (Sys.Signal_handle (fun _ -> pending := true)))
          [ Sys.sigterm; Sys.sigint ];
        let trace_file =
          Option.map (fun p -> Fmt.str "%s.%d" p (Unix.getpid ())) trace_file
        in
        let code =
          serve_one ~announce:false ~listener:(listener, bound_port) ~host
            ~port ~jobs ~scale ~engine ~max_inflight ~max_body ~deadline
            ~trace_file ~slow_ms ~quiet ~store_dir ~store_max_bytes
            ~pending ()
        in
        exit code
      in
      let pids = Array.make workers 0 in
      let stopping = ref false in
      let spawn slot =
        match Unix.fork () with
        | 0 -> ( try worker () with e ->
            Fmt.epr "rcc serve: worker failed: %s@." (Printexc.to_string e);
            exit 1)
        | pid -> pids.(slot) <- pid
      in
      for slot = 0 to workers - 1 do
        spawn slot
      done;
      let fan_out signal =
        Array.iter
          (fun pid ->
            if pid > 0 then
              try Unix.kill pid signal with Unix.Unix_error _ -> ())
          pids
      in
      List.iter
        (fun s ->
          Sys.set_signal s
            (Sys.Signal_handle
               (fun _ ->
                 stopping := true;
                 fan_out Sys.sigterm)))
        [ Sys.sigterm; Sys.sigint ];
      (* Reap children; respawn casualties until told to stop.  A
         short pause before each respawn keeps a crash-looping worker
         from spinning the parent. *)
      let slot_of pid =
        let found = ref (-1) in
        Array.iteri (fun i p -> if p = pid then found := i) pids;
        !found
      in
      let alive () = Array.exists (fun p -> p > 0) pids in
      let rec reap () =
        if alive () then begin
          (match Unix.wait () with
          | pid, status -> (
              match slot_of pid with
              | -1 -> () (* not ours *)
              | slot ->
                  pids.(slot) <- 0;
                  if not !stopping then begin
                    (match status with
                    | Unix.WEXITED 0 -> ()
                    | Unix.WEXITED c ->
                        Fmt.epr
                          "rcc serve: worker %d exited %d, respawning@." pid
                          c
                    | Unix.WSIGNALED sg | Unix.WSTOPPED sg ->
                        Fmt.epr
                          "rcc serve: worker %d killed by signal %d, \
                           respawning@."
                          pid sg);
                    (try Unix.sleepf 0.2
                     with Unix.Unix_error _ | Sys.Break -> ());
                    if not !stopping then spawn slot
                  end)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              Array.fill pids 0 workers 0);
          reap ()
        end
      in
      reap ();
      (try Unix.close listener with Unix.Unix_error _ -> ());
      Fmt.epr "rcc serve: all %d worker(s) exited, shutting down@." workers;
      0
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Persistent HTTP simulation service: POST /run and POST /figures \
          answer exactly what rcc run --json and rcc figures --json print, \
          from one long-lived context whose memo tables and trace cache \
          stay warm across requests; GET /healthz, GET /version, \
          Prometheus text at GET /metrics (JSON at GET /metrics.json) and \
          per-request span traces at GET /trace for operations.  Sheds \
          load with 503 beyond --max-inflight and drains gracefully on \
          SIGTERM/SIGINT")
    Term.(
      const run $ host $ port $ jobs $ scale $ serve_engine $ max_inflight
      $ max_body $ deadline $ trace_file $ slow_ms $ quiet $ workers_arg
      $ store_dir_arg $ store_max_bytes_arg)

let compare_cmd =
  let run bench issue core_int core_float load scale jobs json =
    let lat = Rc_isa.Latency.v ~load () in
    (* The base configuration shares the sweep's memory latency: with
       --load 4 every variant, the baseline included, pays 4-cycle
       loads, as in the paper's Figure 11. *)
    let base_opts =
      Rc_harness.Pipeline.options ~opt:Rc_opt.Pass.Classical ~issue:1
        ~mem_channels:2 ~core_int:2048 ~core_float:2048 ~lat ()
    in
    let configs =
      [
        ("base", base_opts);
        ( "without RC",
          Rc_harness.Pipeline.options ~rc:false ~issue ~core_int ~core_float
            ~lat () );
        ( "with RC (256 regs)",
          Rc_harness.Pipeline.options ~rc:true ~issue ~core_int ~core_float
            ~lat () );
        ( "unlimited registers",
          Rc_harness.Pipeline.options ~issue ~core_int:2048 ~core_float:2048
            ~lat () );
      ]
    in
    (* All four configurations compile and simulate in parallel on the
       pool; results come back in declaration order. *)
    let results =
      Rc_par.Pool.with_pool ~jobs (fun pool ->
          Rc_par.Pool.map_cells pool
            (fun (name, opts) ->
              let c = compile_one bench opts scale in
              let r = Rc_harness.Pipeline.simulate c in
              (name, c, r))
            configs)
    in
    let base_cycles =
      match results with
      | (_, _, base) :: _ -> float_of_int base.Rc_machine.Machine.cycles
      | [] -> assert false
    in
    let speedup (r : Rc_machine.Machine.result) =
      base_cycles /. float_of_int r.Rc_machine.Machine.cycles
    in
    if json then
      Fmt.pr "%s@."
        (Rc_obs.Json.to_string
           (Rc_obs.Json.Obj
              [
                ("bench", Rc_obs.Json.Str bench);
                ("scale", Rc_obs.Json.Int scale);
                ("base_cycles", Rc_obs.Json.Float base_cycles);
                ( "configs",
                  Rc_obs.Json.List
                    (List.map
                       (fun (name, c, r) ->
                         config_result_json ~name ~speedup:(speedup r) c r)
                       results) );
              ]))
    else begin
      Fmt.pr "== %s: base = 1-issue, unlimited registers, classical opt ==@."
        bench;
      List.iter
        (fun (name, c, r) ->
          if name <> "base" then
            Fmt.pr "%-28s cycles %-9d speedup %.2f  connects %-7d spills %d@."
              name r.Rc_machine.Machine.cycles (speedup r)
              r.Rc_machine.Machine.connects c.Rc_harness.Pipeline.spills)
        results
    end;
    0
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare without-RC, with-RC and unlimited register files")
    Term.(
      const run $ bench_arg $ issue $ core_int $ core_float $ load_lat $ scale
      $ jobs $ json_flag)

(* --- trace ----------------------------------------------------------------- *)

let trace_format =
  let doc = "Trace format: $(b,jsonl) (one event per line) or $(b,chrome) \
             (trace-event JSON loadable in Perfetto)." in
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Chrome
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let cycle_window =
  let doc =
    "Per-cycle machine-trace window $(i,LO:HI) (cycles, half-open).  The \
     compile-pass track is always complete; only machine cycles inside the \
     window are recorded, so traces of billion-cycle runs stay loadable."
  in
  let parse s =
    match Rc_check.Args.cycle_window s with
    | Ok w -> Ok w
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (lo, hi) = Fmt.pf ppf "%d:%d" lo hi in
  Arg.(
    value
    & opt (conv (parse, print)) (0, 10_000)
    & info [ "cycles" ] ~docv:"LO:HI" ~doc)

(** Record the compile passes as spans on a "compile" track (timeline
    rebased to the first pass) and the windowed machine cycles as
    counter samples on a "machine" track (1 cycle = 1 us of trace
    time). *)
let build_trace (c : Rc_harness.Pipeline.compiled) ~window:(lo, hi) =
  let tr = Rc_obs.Trace.create () in
  let passes = c.Rc_harness.Pipeline.passes in
  let t0 =
    List.fold_left
      (fun acc (p : Rc_harness.Pipeline.pass_metric) ->
        Float.min acc p.Rc_harness.Pipeline.p_start_s)
      infinity passes
  in
  List.iter
    (fun (p : Rc_harness.Pipeline.pass_metric) ->
      Rc_obs.Trace.span tr ~track:"compile" ~name:p.Rc_harness.Pipeline.p_name
        ~ts_us:((p.Rc_harness.Pipeline.p_start_s -. t0) *. 1e6)
        ~dur_us:(p.Rc_harness.Pipeline.p_wall_s *. 1e6)
        ~args:
          [
            ("size_in", Rc_obs.Json.Int p.Rc_harness.Pipeline.p_size_in);
            ("size_out", Rc_obs.Json.Int p.Rc_harness.Pipeline.p_size_out);
            ("spills", Rc_obs.Json.Int p.Rc_harness.Pipeline.p_spills);
            ("connects", Rc_obs.Json.Int p.Rc_harness.Pipeline.p_connects);
          ]
        ())
    passes;
  let observer (s : Rc_machine.Machine.cycle_sample) =
    if s.Rc_machine.Machine.s_cycle >= lo && s.Rc_machine.Machine.s_cycle < hi
    then
      Rc_obs.Trace.counter tr ~track:"machine" ~name:"slots"
        ~ts_us:(float_of_int s.Rc_machine.Machine.s_cycle)
        [
          ("issued", float_of_int s.Rc_machine.Machine.s_issued);
          ("lost_data", float_of_int s.Rc_machine.Machine.s_lost_data);
          ("lost_map", float_of_int s.Rc_machine.Machine.s_lost_map);
          ("lost_channel", float_of_int s.Rc_machine.Machine.s_lost_channel);
          ("lost_branch", float_of_int s.Rc_machine.Machine.s_lost_branch);
          ("lost_fetch", float_of_int s.Rc_machine.Machine.s_lost_fetch);
        ]
  in
  let r = Rc_harness.Pipeline.simulate ~observer c in
  (tr, r)

let trace_cmd =
  let run bench issue core_int core_float rc load connect mem_channels
      extra_stage model scale no_unroll format window =
    let opts =
      options_of ~issue ~core_int ~core_float ~rc ~load ~connect ~mem_channels
        ~extra_stage ~model ~no_unroll
    in
    let c = compile_one bench opts scale in
    let tr, _ = build_trace c ~window in
    (match format with
    | `Chrome -> print_string (Rc_obs.Trace.chrome_string tr)
    | `Jsonl -> print_string (Rc_obs.Trace.to_jsonl tr));
    print_newline ();
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Structured trace: compile-pass spans plus a windowed per-cycle \
          machine track (JSONL or Chrome trace-event JSON)")
    Term.(
      const run $ bench_arg $ issue $ core_int $ core_float $ rc $ load_lat
      $ connect_lat $ mem_channels $ extra_stage $ model $ scale $ no_unroll
      $ trace_format $ cycle_window)

(* --- check / fuzz ----------------------------------------------------------- *)

let check_cmd =
  let run bench issue core_int core_float rc load connect mem_channels
      extra_stage model scale no_unroll json =
    let opts =
      options_of ~issue ~core_int ~core_float ~rc ~load ~connect ~mem_channels
        ~extra_stage ~model ~no_unroll
    in
    let prog = (Rc_workloads.Registry.find bench).Rc_workloads.Wutil.build scale in
    let fail (r : Rc_check.Report.t) =
      if json then
        Fmt.pr "%s@." (Rc_obs.Json.to_string (Rc_check.Report.to_json r))
      else Fmt.pr "%a@." Rc_check.Report.pp r;
      1
    in
    match Rc_check.Oracle.prepare_checked ~opt:opts.Rc_harness.Pipeline.opt prog with
    | Error r -> fail r
    | Ok prep -> (
        match Rc_check.Oracle.compile_checked opts prep with
        | Error r -> fail r
        | Ok compiled -> (
            match
              Rc_check.Lockstep.run
                (Rc_check.Oracle.config_of_options opts)
                compiled.Rc_harness.Pipeline.image
            with
            | Rc_check.Lockstep.Diverged r -> fail r
            | Rc_check.Lockstep.Agree { cycles; steps } ->
                if json then
                  Fmt.pr "%s@."
                    (Rc_obs.Json.to_string
                       (Rc_obs.Json.Obj
                          [
                            ("bench", Rc_obs.Json.Str bench);
                            ("agree", Rc_obs.Json.Bool true);
                            ("cycles", Rc_obs.Json.Int cycles);
                            ("instructions", Rc_obs.Json.Int steps);
                          ]))
                else
                  Fmt.pr
                    "%s: every pass preserves semantics; machine and oracle \
                     agree over %d cycles (%d instructions)@."
                    bench cycles steps;
                0))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Re-execute after every compiler pass and run the cycle-accurate \
          machine in lockstep against the sequential oracle; report the \
          first divergence with its pass, basic block and disassembly")
    Term.(
      const run $ bench_arg $ issue $ core_int $ core_float $ rc $ load_lat
      $ connect_lat $ mem_channels $ extra_stage $ model $ scale $ no_unroll
      $ json_flag)

let seed_arg =
  let doc = "PRNG seed for program generation (non-negative)." in
  let parse s =
    match Rc_check.Args.seed s with Ok n -> Ok n | Error m -> Error (`Msg m)
  in
  Arg.(
    value
    & opt (conv (parse, Fmt.int)) 0
    & info [ "seed" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of programs to generate (at least 1)." in
  let parse s =
    match Rc_check.Args.count s with Ok n -> Ok n | Error m -> Error (`Msg m)
  in
  Arg.(
    value
    & opt (conv (parse, Fmt.int)) 100
    & info [ "count" ] ~docv:"K" ~doc)

let shrink_flag =
  let doc = "Greedily shrink every failing program to a minimal repro." in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let corpus_arg =
  let doc =
    "Directory to persist failing cases into (one JSON file per \
     divergence, shrunk when $(b,--shrink))."
  in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)

let fuzz_cmd =
  let run seed count shrink out jobs json =
    let s = Rc_check.Fuzz.run ~jobs ~shrink ?corpus_dir:out ~seed ~count () in
    if json then
      Fmt.pr "%s@." (Rc_obs.Json.to_string (Rc_check.Fuzz.summary_to_json s))
    else begin
      Fmt.pr "fuzz: %d programs x %d grid points, %d divergence(s) in %.1fs@."
        s.Rc_check.Fuzz.programs s.Rc_check.Fuzz.points_per_program
        (List.length s.Rc_check.Fuzz.cases)
        s.Rc_check.Fuzz.wall_s;
      List.iter
        (fun (c : Rc_check.Fuzz.case) ->
          Fmt.pr "@.program %d (seed %d, %s%s):@.%a@." c.Rc_check.Fuzz.program
            c.Rc_check.Fuzz.pseed
            (if c.Rc_check.Fuzz.classical then "classical" else "ilp")
            (match c.Rc_check.Fuzz.point with
            | Some p -> ", " ^ Rc_check.Fuzz.point_name p
            | None -> "")
            Rc_check.Report.pp c.Rc_check.Fuzz.report)
        s.Rc_check.Fuzz.cases
    end;
    if s.Rc_check.Fuzz.cases = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate seeded random programs, push each through the full \
          pipeline at every (model x issue x connect-latency x RC) grid \
          point with the pass-level oracle and lockstep checking, and \
          shrink failures to minimal repros")
    Term.(
      const run $ seed_arg $ count_arg $ shrink_flag $ corpus_arg $ jobs
      $ json_flag)

let dump_cmd =
  let run bench issue core_int core_float rc model scale =
    let opts =
      options_of ~issue ~core_int ~core_float ~rc ~load:2 ~connect:0
        ~mem_channels:None ~extra_stage:false ~model ~no_unroll:false
    in
    let c = compile_one bench opts scale in
    Fmt.pr "%a@." Rc_isa.Mcode.pp c.Rc_harness.Pipeline.mcode;
    0
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print the generated machine code")
    Term.(
      const run $ bench_arg $ issue $ core_int $ core_float $ rc $ model $ scale)

let main_cmd =
  let doc = "Register Connection (ISCA 1993) — compiler and simulator driver" in
  Cmd.group (Cmd.info "rcc" ~version:Rc_serve.Server.version ~doc)
    [
      list_cmd; run_cmd; compile_cmd; compare_cmd; figures_cmd; serve_cmd;
      trace_cmd; dump_cmd; check_cmd; fuzz_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
