(* storesmoke — end-to-end exercise of the on-disk trace store for the
   store-smoke alias:

     storesmoke <rcc.exe>

   Boots `rcc serve --store DIR` twice, sequentially, against the same
   store directory and asserts the cross-process contract DESIGN.md
   section 17 promises:

   1. Server #1, cold store: the first POST /run executes and
      publishes its trace (store.published >= 1 on /metrics.json); the
      second identical POST /run replays from the warm in-memory
      cache.
   2. Server #1 drains cleanly on SIGTERM and exits 0.
   3. Server #2 — a brand-new process, empty in-memory cache, same
      --store DIR — answers its FIRST POST /run with engine "replay":
      the trace came from disk.  /metrics.json reports store.hits >= 1
      and the /metrics scrape carries rcc_store_hits_total >= 1.
   4. The replayed document is byte-identical to server #1's warm
      response once wall_s is normalised: the store round-trip
      preserved the trace exactly. *)

let fail fmt =
  Format.kasprintf (fun m -> prerr_endline ("storesmoke: " ^ m); exit 1) fmt

(* --- tiny HTTP/1.1 client (Connection: close per request) ------------- *)

let find_body raw =
  let rec scan i =
    if i + 3 >= String.length raw then None
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then Some (String.sub raw (i + 4) (String.length raw - i - 4))
    else scan (i + 1)
  in
  scan 0

let http_request ~port ~meth ~path ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  Unix.connect fd addr;
  let req =
    Printf.sprintf
      "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\r\n%s" meth
      path (String.length body) body
  in
  let rec send off =
    if off < String.length req then
      send (off + Unix.write_substring fd req off (String.length req - off))
  in
  send 0;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec recv () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        recv ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
  in
  recv ();
  Unix.close fd;
  let raw = Buffer.contents buf in
  match String.index_opt raw ' ' with
  | None -> fail "%s %s: no status line in %S" meth path raw
  | Some sp -> (
      let status = int_of_string (String.sub raw (sp + 1) 3) in
      match find_body raw with
      | Some b -> (status, b)
      | None -> fail "%s %s: no header/body separator" meth path)

(* --- helpers ----------------------------------------------------------- *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let rec zero_wall (j : Rc_obs.Json.t) : Rc_obs.Json.t =
  match j with
  | Obj fields ->
      Obj
        (List.map
           (fun (k, v) ->
             if k = "wall_s" then (k, Rc_obs.Json.Float 0.)
             else (k, zero_wall v))
           fields)
  | List l -> List (List.map zero_wall l)
  | (Null | Bool _ | Int _ | Float _ | Str _) as leaf -> leaf

let normalize what text =
  match Rc_obs.Json.of_string text with
  | Ok j -> Rc_obs.Json.to_string (zero_wall j)
  | Error m -> fail "%s: not valid JSON (%s): %S" what m text

let engine_of what text =
  match
    Rc_obs.Json.member "engine" (Result.get_ok (Rc_obs.Json.of_string text))
  with
  | Some (Rc_obs.Json.Str e) -> e
  | _ -> fail "%s: no engine field in %S" what text

let int_member what name j =
  match Rc_obs.Json.member name j with
  | Some (Rc_obs.Json.Int n) -> n
  | _ -> fail "%s: no integer %S" what name

let store_stats ~port =
  let status, body = http_request ~port ~meth:"GET" ~path:"/metrics.json" () in
  if status <> 200 then fail "/metrics.json: status %d" status;
  let j =
    match Rc_obs.Json.of_string body with
    | Ok j -> j
    | Error m -> fail "/metrics.json: bad JSON: %s" m
  in
  match Rc_obs.Json.member "store" j with
  | Some s -> s
  | None -> fail "/metrics.json: no store object (is --store wired in?)"

(* --- server lifecycle -------------------------------------------------- *)

let boot rcc args =
  let err_r, err_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process rcc
      (Array.of_list (rcc :: "serve" :: "--port" :: "0" :: args))
      Unix.stdin Unix.stdout err_w
  in
  Unix.close err_w;
  let err_ic = Unix.in_channel_of_descr err_r in
  let port =
    let rec find () =
      let line =
        try input_line err_ic
        with End_of_file -> fail "server exited before announcing a port"
      in
      match
        Scanf.sscanf_opt line "rcc serve: listening on http://%[^:]:%d"
          (fun _host p -> p)
      with
      | Some p -> p
      | None -> find ()
    in
    find ()
  in
  (pid, port, err_ic)

let shutdown ~what pid err_ic =
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "%s exited %d after SIGTERM" what n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
      fail "%s killed by signal %d" what n);
  let rest = read_all err_ic in
  close_in_noerr err_ic;
  if not (contains ~needle:"drained" rest) then
    fail "%s: no drain narration on stderr: %S" what rest

(* --- driver ------------------------------------------------------------ *)

let () =
  ignore (Unix.alarm 120);
  let rcc =
    match Sys.argv with
    | [| _; rcc |] when Filename.is_implicit rcc ->
        Filename.concat Filename.current_dir_name rcc
    | [| _; rcc |] -> rcc
    | _ ->
        prerr_endline "usage: storesmoke <rcc.exe>";
        exit 2
  in
  let store_dir = "store.d" in
  let args = [ "--jobs"; "2"; "--quiet"; "--store"; store_dir ] in
  let run_body = {|{"bench":"cmp","rc":true,"core_int":8}|} in

  (* 1. Server #1: cold store — execute, publish, then replay from the
     in-memory cache. *)
  let pid, port, err_ic = boot rcc args in
  Printf.printf "storesmoke: server #1 pid %d on port %d (store %s)\n%!" pid
    port store_dir;
  let status, cold =
    http_request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
  in
  if status <> 200 then fail "server #1 first /run: status %d" status;
  if engine_of "server #1 first /run" cold <> "execute" then
    fail "server #1 first /run did not execute (store was not cold?)";
  let status, warm =
    http_request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
  in
  if status <> 200 then fail "server #1 second /run: status %d" status;
  if engine_of "server #1 second /run" warm <> "replay" then
    fail "server #1 second /run did not replay";
  let s = store_stats ~port in
  let published = int_member "server #1 store" "published" s in
  if published < 1 then
    fail "server #1 store.published = %d, wanted >= 1" published;
  Printf.printf
    "storesmoke: server #1 executed, published %d trace(s), replayed warm\n%!"
    published;
  shutdown ~what:"server #1" pid err_ic;

  (* 2. Server #2: brand-new process, same store — the very first /run
     must replay from disk. *)
  let pid, port, err_ic = boot rcc args in
  Printf.printf "storesmoke: server #2 pid %d on port %d (same store)\n%!" pid
    port;
  let status, disk =
    http_request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
  in
  if status <> 200 then fail "server #2 first /run: status %d" status;
  if engine_of "server #2 first /run" disk <> "replay" then
    fail "server #2 first /run executed: the store did not survive the process";
  if normalize "server #2 /run" disk <> normalize "server #1 warm /run" warm
  then
    fail "server #2 replayed document differs from server #1's after wall_s \
          normalisation";
  let s = store_stats ~port in
  let hits = int_member "server #2 store" "hits" s in
  if hits < 1 then fail "server #2 store.hits = %d, wanted >= 1" hits;
  let status, prom = http_request ~port ~meth:"GET" ~path:"/metrics" () in
  if status <> 200 then fail "server #2 /metrics: status %d" status;
  if not (contains ~needle:"# TYPE rcc_store_hits_total counter" prom) then
    fail "server #2 /metrics: no rcc_store_hits_total TYPE line";
  if contains ~needle:"rcc_store_hits_total 0" prom then
    fail "server #2 /metrics: rcc_store_hits_total still 0";
  Printf.printf
    "storesmoke: server #2 replayed from disk on first request (store.hits = \
     %d)\n%!"
    hits;
  shutdown ~what:"server #2" pid err_ic;
  print_endline "storesmoke: cold-process warm-store round-trip ok"
