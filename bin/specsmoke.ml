(* specsmoke — end-to-end exercise of the user-submitted-kernel front
   door for the spec-smoke alias:

     specsmoke <rcc.exe>

   Boots `rcc serve` on an ephemeral port and asserts the admission
   contract DESIGN.md section 19 promises:

   1. POST /compile on the reference spec answers 200 with the
      deterministic kernel id, byte-identical to `rcc compile --json`
      on the same document once pass wall-clock is normalised — the
      server and the CLI agree on every field of the admission
      summary, id and fingerprint included.
   2. Resubmitting the same document returns the same id (the registry
      deduplicates by content digest).
   3. POST /run by kernel id is byte-identical to
      `rcc run --spec FILE --json` for the same configuration, and a
      second identical POST /run is byte-identical to the CLI under
      `--engine replay` with its engine field reading "replay" — an
      admitted kernel gets the same trace-cache treatment as a
      built-in bench.
   4. An over-budget document (slots beyond the admission limit) is
      shed with 413 and a structured error body, and a malformed one
      with 400 naming the JSON path; the server stays healthy after
      both.

   The reference spec is embedded below and written to spec.json for
   the CLI side, so the comparison covers one identical document end
   to end. *)

let fail fmt =
  Format.kasprintf (fun m -> prerr_endline ("specsmoke: " ^ m); exit 1) fmt

(* The committed corpus fixture test/corpus/spec-k3dcde33718c5.json;
   its id is pinned there by the `corpus spec fixtures admissible`
   test, and re-pinned here against the live server. *)
let spec_doc =
  {|{"seed":0,"slots":8,"funcs":[{"arity":0,"nvars":2,"nfvars":1,"body":[["set",0,["const","1"]],["loop",1,6,[["set",0,["bin","add",["var",0],["var",1]]],["store",1,["var",0]],["load",1,1]]],["emit",["var",0]]]}]}|}

let spec_id = "k3dcde33718c5"

let oversize_doc =
  {|{"seed":0,"slots":100000,"funcs":[{"arity":0,"nvars":1,"nfvars":1,"body":[["emit",["var",0]]]}]}|}

(* --- tiny HTTP/1.1 client (Connection: close per request) ------------- *)

let find_body raw =
  let rec scan i =
    if i + 3 >= String.length raw then None
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then Some (String.sub raw (i + 4) (String.length raw - i - 4))
    else scan (i + 1)
  in
  scan 0

let http_request ~port ~meth ~path ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  Unix.connect fd addr;
  let req =
    Printf.sprintf
      "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\r\n%s" meth
      path (String.length body) body
  in
  let rec send off =
    if off < String.length req then
      send (off + Unix.write_substring fd req off (String.length req - off))
  in
  send 0;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec recv () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        recv ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
  in
  recv ();
  Unix.close fd;
  let raw = Buffer.contents buf in
  match String.index_opt raw ' ' with
  | None -> fail "%s %s: no status line in %S" meth path raw
  | Some sp -> (
      let status = int_of_string (String.sub raw (sp + 1) 3) in
      match find_body raw with
      | Some b -> (status, b)
      | None -> fail "%s %s: no header/body separator" meth path)

(* --- helpers ----------------------------------------------------------- *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Pass wall-clock is the one nondeterministic field in the /run and
   /compile documents: zero it everywhere before comparing bytes. *)
let rec zero_wall (j : Rc_obs.Json.t) : Rc_obs.Json.t =
  match j with
  | Obj fields ->
      Obj
        (List.map
           (fun (k, v) ->
             if k = "wall_s" then (k, Rc_obs.Json.Float 0.)
             else (k, zero_wall v))
           fields)
  | List l -> List (List.map zero_wall l)
  | (Null | Bool _ | Int _ | Float _ | Str _) as leaf -> leaf

let normalize what text =
  match Rc_obs.Json.of_string text with
  | Ok j -> Rc_obs.Json.to_string (zero_wall j)
  | Error m -> fail "%s: not valid JSON (%s): %S" what m text

let cli_run rcc args =
  let cmd =
    String.concat " " (List.map Filename.quote (rcc :: args)) ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let out = read_all ic in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> out
  | _ -> fail "`%s` failed" cmd

let str_member what name j =
  match Rc_obs.Json.member name j with
  | Some (Rc_obs.Json.Str s) -> s
  | _ -> fail "%s: no %S string field" what name

let json_of what text =
  match Rc_obs.Json.of_string text with
  | Ok j -> j
  | Error m -> fail "%s: bad JSON (%s): %S" what m text

(* --- driver ------------------------------------------------------------ *)

let () =
  ignore (Unix.alarm 120);
  let rcc =
    match Sys.argv with
    (* Dune hands us a bare relative name; create_process must not go
       hunting down PATH for it. *)
    | [| _; rcc |] when Filename.is_implicit rcc ->
        Filename.concat Filename.current_dir_name rcc
    | [| _; rcc |] -> rcc
    | _ ->
        prerr_endline "usage: specsmoke <rcc.exe>";
        exit 2
  in
  (* The CLI side reads the same document from a file. *)
  let oc = open_out_bin "spec.json" in
  output_string oc spec_doc;
  close_out oc;
  (* Boot the server with stderr piped so we can learn the ephemeral
     port from the announce line. *)
  let err_r, err_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process rcc
      [| rcc; "serve"; "--port"; "0"; "--jobs"; "2" |]
      Unix.stdin Unix.stdout err_w
  in
  Unix.close err_w;
  let err_ic = Unix.in_channel_of_descr err_r in
  let port =
    let rec find () =
      let line =
        try input_line err_ic
        with End_of_file -> fail "server exited before announcing a port"
      in
      match
        Scanf.sscanf_opt line "rcc serve: listening on http://%[^:]:%d"
          (fun _host p -> p)
      with
      | Some p -> p
      | None -> find ()
    in
    find ()
  in
  Printf.printf "specsmoke: server pid %d on port %d\n%!" pid port;

  (* 1. Admission: POST /compile vs `rcc compile --json`. *)
  let status, admit =
    http_request ~port ~meth:"POST" ~path:"/compile" ~body:spec_doc ()
  in
  if status <> 200 then fail "/compile: status %d body %S" status admit;
  let id = str_member "/compile" "kernel" (json_of "/compile" admit) in
  if id <> spec_id then fail "/compile: kernel id %S, wanted %S" id spec_id;
  let cli_admit = cli_run rcc [ "compile"; "spec.json"; "--json" ] in
  if normalize "/compile" admit <> normalize "rcc compile --json" cli_admit then
    fail "/compile differs from `rcc compile --json` after wall_s normalisation";
  print_endline "specsmoke: /compile matches rcc compile --json";

  (* 2. Idempotent resubmission. *)
  let status, again =
    http_request ~port ~meth:"POST" ~path:"/compile" ~body:spec_doc ()
  in
  if status <> 200 then fail "second /compile: status %d" status;
  let id2 = str_member "/compile" "kernel" (json_of "/compile" again) in
  if id2 <> id then fail "resubmission changed the id: %S -> %S" id id2;
  print_endline "specsmoke: resubmission is idempotent";

  (* 3. Cold and warm /run by kernel id vs the CLI on the same file. *)
  let run_body = Printf.sprintf {|{"kernel":%S,"rc":true,"core_int":8}|} id in
  let status, cold =
    http_request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
  in
  if status <> 200 then fail "first /run: status %d body %S" status cold;
  let cli_cold =
    cli_run rcc
      [ "run"; "--spec"; "spec.json"; "--rc"; "--core-int"; "8"; "--json" ]
  in
  if normalize "/run" cold <> normalize "rcc run --spec --json" cli_cold then
    fail "first /run differs from `rcc run --spec --json`";
  print_endline "specsmoke: cold /run matches rcc run --spec --json";
  let status, warm =
    http_request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
  in
  if status <> 200 then fail "second /run: status %d" status;
  let cli_warm =
    cli_run rcc
      [
        "run"; "--spec"; "spec.json"; "--rc"; "--core-int"; "8"; "--json";
        "--engine"; "replay";
      ]
  in
  if
    normalize "/run" warm
    <> normalize "rcc run --spec --engine replay --json" cli_warm
  then fail "second /run differs from `rcc run --spec --engine replay --json`";
  (match Rc_obs.Json.member "engine" (json_of "/run" warm) with
  | Some (Rc_obs.Json.Str "replay") -> ()
  | other ->
      fail "second /run engine is %s, wanted \"replay\""
        (match other with
        | Some j -> Rc_obs.Json.to_string j
        | None -> "absent"));
  print_endline "specsmoke: warm /run replayed from the trace cache";

  (* 4. The shed paths: over-budget 413, malformed 400, still alive. *)
  let status, body =
    http_request ~port ~meth:"POST" ~path:"/compile" ~body:oversize_doc ()
  in
  if status <> 413 then fail "oversize /compile: status %d, wanted 413" status;
  if not (contains ~needle:"limit" body) then
    fail "oversize /compile: error body does not name the limit: %S" body;
  let status, body =
    http_request ~port ~meth:"POST" ~path:"/compile" ~body:{|{"funcs":3}|} ()
  in
  if status <> 400 then fail "malformed /compile: status %d, wanted 400" status;
  if not (contains ~needle:"$.funcs" body) then
    fail "malformed /compile: error body does not name the JSON path: %S" body;
  let status, _ = http_request ~port ~meth:"GET" ~path:"/healthz" () in
  if status <> 200 then fail "/healthz after rejections: status %d" status;
  print_endline "specsmoke: over-budget shed 413, malformed shed 400";

  (* Shut down cleanly. *)
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "server exited %d after SIGTERM" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "server killed by signal %d" n);
  close_in_noerr err_ic;
  print_endline "specsmoke: server drained and exited 0"
