(* servesmoke — end-to-end exercise of `rcc serve` for the serve-smoke
   alias:

     servesmoke <rcc.exe>

   Boots a server on an ephemeral port (with --slow-ms 1 so every /run
   dumps its span breakdown), then asserts the contract DESIGN.md
   sections 15 and 16 promise:

   1. /healthz answers 200 with status "ok", an uptime and the
      in-flight count.
   2. The first POST /run body is byte-identical to `rcc run --json`
      for the same configuration, once every pass wall-clock (the one
      nondeterministic field) is normalised to 0 in both documents.
   3. A second identical POST /run is byte-identical to
      `rcc run --json --engine replay` — i.e. the warm trace cache
      re-timed it instead of executing — and /metrics.json reports a
      trace-cache hit.
   4. GET /metrics is saved to metrics.prom for `jsonck --prom` (the
      serve-smoke alias chains it after this binary).
   5. SIGTERM while a request is in flight drains gracefully: the
      response still arrives complete and the server exits 0, and the
      stderr it accumulated carries the access-log lines and a
      slow-request breakdown attributing wall time to compile,
      simulate and render spans. *)

let fail fmt =
  Format.kasprintf (fun m -> prerr_endline ("servesmoke: " ^ m); exit 1) fmt

(* --- tiny HTTP/1.1 client (Connection: close per request) ------------- *)

let find_body raw =
  let rec scan i =
    if i + 3 >= String.length raw then None
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then Some (String.sub raw (i + 4) (String.length raw - i - 4))
    else scan (i + 1)
  in
  scan 0

let http_request ~port ~meth ~path ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  Unix.connect fd addr;
  let req =
    Printf.sprintf
      "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\r\n%s" meth
      path (String.length body) body
  in
  let rec send off =
    if off < String.length req then
      send (off + Unix.write_substring fd req off (String.length req - off))
  in
  send 0;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec recv () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        recv ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
  in
  recv ();
  Unix.close fd;
  let raw = Buffer.contents buf in
  match String.index_opt raw ' ' with
  | None -> fail "%s %s: no status line in %S" meth path raw
  | Some sp -> (
      let status = int_of_string (String.sub raw (sp + 1) 3) in
      match find_body raw with
      | Some b -> (status, b)
      | None -> fail "%s %s: no header/body separator" meth path)

(* --- helpers ----------------------------------------------------------- *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Pass wall-clock is the one nondeterministic field in the /run
   document: zero it everywhere before comparing bytes. *)
let rec zero_wall (j : Rc_obs.Json.t) : Rc_obs.Json.t =
  match j with
  | Obj fields ->
      Obj
        (List.map
           (fun (k, v) ->
             if k = "wall_s" then (k, Rc_obs.Json.Float 0.)
             else (k, zero_wall v))
           fields)
  | List l -> List (List.map zero_wall l)
  | (Null | Bool _ | Int _ | Float _ | Str _) as leaf -> leaf

let normalize what text =
  match Rc_obs.Json.of_string text with
  | Ok j -> Rc_obs.Json.to_string (zero_wall j)
  | Error m -> fail "%s: not valid JSON (%s): %S" what m text

let cli_run rcc args =
  let cmd =
    String.concat " " (List.map Filename.quote (rcc :: args)) ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let out = read_all ic in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> out
  | _ -> fail "`%s` failed" cmd

let int_member name j =
  match Rc_obs.Json.member name j with
  | Some (Rc_obs.Json.Int n) -> n
  | _ -> fail "/metrics: no integer %S" name

(* --- driver ------------------------------------------------------------ *)

let () =
  ignore (Unix.alarm 120);
  let rcc =
    match Sys.argv with
    (* Dune hands us a bare relative name; create_process must not go
       hunting down PATH for it. *)
    | [| _; rcc |] when Filename.is_implicit rcc ->
        Filename.concat Filename.current_dir_name rcc
    | [| _; rcc |] -> rcc
    | _ ->
        prerr_endline "usage: servesmoke <rcc.exe>";
        exit 2
  in
  (* Boot the server with stderr piped so we can learn the ephemeral
     port from the announce line. *)
  let err_r, err_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process rcc
      [| rcc; "serve"; "--port"; "0"; "--jobs"; "2"; "--slow-ms"; "1" |]
      Unix.stdin Unix.stdout err_w
  in
  Unix.close err_w;
  let err_ic = Unix.in_channel_of_descr err_r in
  let port =
    let rec find () =
      let line =
        try input_line err_ic
        with End_of_file -> fail "server exited before announcing a port"
      in
      match
        Scanf.sscanf_opt line "rcc serve: listening on http://%[^:]:%d"
          (fun _host p -> p)
      with
      | Some p -> p
      | None -> find ()
    in
    find ()
  in
  Printf.printf "servesmoke: server pid %d on port %d\n%!" pid port;

  (* 1. Liveness. *)
  let status, body = http_request ~port ~meth:"GET" ~path:"/healthz" () in
  if status <> 200 then fail "/healthz: status %d" status;
  (match Rc_obs.Json.of_string body with
  | Error m -> fail "/healthz: bad JSON (%s): %S" m body
  | Ok j -> (
      (match Rc_obs.Json.member "status" j with
      | Some (Rc_obs.Json.Str "ok") -> ()
      | _ -> fail "/healthz: status is not \"ok\" in %S" body);
      (match Rc_obs.Json.member "uptime_s" j with
      | Some (Rc_obs.Json.Float _ | Rc_obs.Json.Int _) -> ()
      | _ -> fail "/healthz: no numeric uptime_s in %S" body);
      match Rc_obs.Json.member "inflight" j with
      | Some (Rc_obs.Json.Int _) -> ()
      | _ -> fail "/healthz: no integer inflight in %S" body));

  (* 2. Cold /run vs the CLI. *)
  let run_body = {|{"bench":"cmp","rc":true,"core_int":8}|} in
  let status, cold =
    http_request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
  in
  if status <> 200 then fail "first /run: status %d body %S" status cold;
  let cli_cold =
    cli_run rcc [ "run"; "cmp"; "--rc"; "--core-int"; "8"; "--json" ]
  in
  if normalize "/run" cold <> normalize "rcc run --json" cli_cold then
    fail "first /run differs from `rcc run --json` after wall_s normalisation";
  print_endline "servesmoke: cold /run matches rcc run --json";

  (* 3. Warm /run: the trace cache must re-time it. *)
  let status, warm =
    http_request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
  in
  if status <> 200 then fail "second /run: status %d" status;
  let cli_warm =
    cli_run rcc
      [
        "run"; "cmp"; "--rc"; "--core-int"; "8"; "--json"; "--engine"; "replay";
      ]
  in
  if
    normalize "/run" warm <> normalize "rcc run --engine replay --json" cli_warm
  then fail "second /run differs from `rcc run --engine replay --json`";
  (match
     Rc_obs.Json.member "engine"
       (Result.get_ok (Rc_obs.Json.of_string warm))
   with
  | Some (Rc_obs.Json.Str "replay") -> ()
  | other ->
      fail "second /run engine is %s, wanted \"replay\""
        (match other with
        | Some j -> Rc_obs.Json.to_string j
        | None -> "absent"));
  let status, metrics = http_request ~port ~meth:"GET" ~path:"/metrics.json" () in
  if status <> 200 then fail "/metrics.json: status %d" status;
  let mj =
    match Rc_obs.Json.of_string metrics with
    | Ok j -> j
    | Error m -> fail "/metrics.json: bad JSON: %s" m
  in
  let cache =
    match Rc_obs.Json.member "experiments" mj with
    | Some e -> (
        match Rc_obs.Json.member "trace_cache" e with
        | Some c -> c
        | None -> fail "/metrics.json: no experiments.trace_cache")
    | None -> fail "/metrics.json: no experiments object"
  in
  let hits = int_member "hits" cache in
  if hits < 1 then fail "/metrics.json: trace_cache.hits = %d, wanted >= 1" hits;
  Printf.printf "servesmoke: warm /run replayed (trace_cache.hits = %d)\n%!"
    hits;

  (* 4. Prometheus scrape, saved for `jsonck --prom` downstream. *)
  let status, prom = http_request ~port ~meth:"GET" ~path:"/metrics" () in
  if status <> 200 then fail "/metrics: status %d" status;
  if not (contains ~needle:"# TYPE rcc_requests_total counter" prom) then
    fail "/metrics: no rcc_requests_total TYPE line in scrape";
  if not (contains ~needle:"# TYPE rcc_request_duration_seconds histogram" prom)
  then fail "/metrics: no duration histogram TYPE line in scrape";
  let oc = open_out_bin "metrics.prom" in
  output_string oc prom;
  close_out oc;
  Printf.printf "servesmoke: /metrics scrape saved to metrics.prom (%d bytes)\n%!"
    (String.length prom);

  (* 5. Graceful drain: SIGTERM while a request is in flight must not
     cut the response short.  A fresh configuration, so the work is
     real execution, not a cache hit. *)
  let drain_body = {|{"bench":"eqn","rc":true,"issue":8}|} in
  let expected = cli_run rcc [ "run"; "eqn"; "--rc"; "--issue"; "8"; "--json" ] in
  let result = ref None in
  let d =
    Domain.spawn (fun () ->
        result :=
          Some (http_request ~port ~meth:"POST" ~path:"/run" ~body:drain_body ()))
  in
  (* Give the request time to be accepted and admitted, then stop. *)
  Unix.sleepf 0.15;
  Unix.kill pid Sys.sigterm;
  Domain.join d;
  (match !result with
  | Some (200, body)
    when normalize "/run during drain" body = normalize "expected" expected ->
      print_endline "servesmoke: in-flight request completed across SIGTERM"
  | Some (st, body) -> fail "drain /run: status %d body %S" st body
  | None -> fail "drain /run: no response");
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "server exited %d after SIGTERM" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "server killed by signal %d" n);
  (* The drain narration should have made it out before exit, along
     with the access log and (because of --slow-ms 1) per-span
     breakdowns attributing the /run wall time. *)
  let rest = read_all err_ic in
  close_in_noerr err_ic;
  if not (contains ~needle:"rcc serve: drained" rest) then
    fail "no drain narration on stderr: %S" rest;
  if not (contains ~needle:"access id=" rest) then
    fail "no access-log lines on stderr: %S" rest;
  List.iter
    (fun needle ->
      if not (contains ~needle rest) then
        fail "slow-request breakdown lacks %S on stderr: %S" needle rest)
    [ "slow request id="; "breakdown:"; "compile="; "render=";
      "simulate(execute)="; "simulate(replay)=" ];
  print_endline "servesmoke: access log and slow-span breakdowns present";
  print_endline "servesmoke: server drained and exited 0"
