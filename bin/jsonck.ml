(* jsonck — shape validator for the telemetry sinks, used by the
   trace-smoke alias and usable by hand:

     jsonck <chrome-trace.json> [<events.jsonl>]
     jsonck --pure <doc.json>...
     jsonck --figures-equal <a.json> <b.json>
     jsonck --prom <metrics.prom>...

   Checks that the Chrome file is valid trace-event JSON Perfetto will
   load — a traceEvents array whose entries carry name/ph/pid, with at
   least one complete ("X", the compile passes) and one counter ("C",
   the machine cycles) event — and that every JSONL line parses to an
   object with a type discriminant.  Exits non-zero with a message on
   the first violation.

   [--pure] instead asserts machine-readability of captured stdout:
   each file must be exactly one JSON object — any narration line
   leaking onto stdout before or after the document breaks the parse
   and fails the check (the json-smoke alias pipes `rcc run --json`
   and `rcc figures --json` through this).

   [--memo-warm] asserts a `rcc figures --json` document's trace_cache
   shows a warm superblock timing memo: seg_hits must be at least 80%
   of all memoisable-segment visits (hits + misses + fallbacks), and
   non-zero.  The memo-smoke alias runs the warm (second) store-backed
   replay pass through this.

   [--figures-equal] asserts two `rcc figures --json` documents carry
   the same results: structural equality after dropping the
   "trace_cache" member, the only field the timing-engine path (batched
   vs per-cell, engine, jobs) is allowed to change.  The replay-smoke
   alias runs the batched and per-cell paths through this.

   [--prom] validates Prometheus text exposition format 0.0.4, as
   scraped from `GET /metrics` (the serve-smoke alias saves a scrape
   and runs it through this).  Beyond the line grammar — metric and
   label name character sets, quoted label values with backslash,
   quote and newline escapes, numeric sample values including
   +Inf/-Inf/NaN — it checks
   the semantic contract: every sample's family is TYPE-declared
   before first use and at most once, counter samples are
   non-negative, and each histogram series has ascending [le] bounds
   with non-decreasing cumulative counts, a +Inf bucket agreeing with
   [_count], and a [_sum] sample. *)

let fail fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_field path i obj name =
  match Rc_obs.Json.member name obj with
  | Some v -> v
  | None -> fail "%s: traceEvents[%d] lacks %S" path i name

let check_chrome path =
  let j =
    match Rc_obs.Json.of_string (read_file path) with
    | Ok j -> j
    | Error m -> fail "%s: not valid JSON: %s" path m
  in
  let events =
    match Rc_obs.Json.member "traceEvents" j with
    | Some (Rc_obs.Json.List evs) -> evs
    | Some _ -> fail "%s: traceEvents is not an array" path
    | None -> fail "%s: no traceEvents field" path
  in
  let phases = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      (match check_field path i ev "name" with
      | Rc_obs.Json.Str _ -> ()
      | _ -> fail "%s: traceEvents[%d] name is not a string" path i);
      (match check_field path i ev "pid" with
      | Rc_obs.Json.Int _ -> ()
      | _ -> fail "%s: traceEvents[%d] pid is not an integer" path i);
      match check_field path i ev "ph" with
      | Rc_obs.Json.Str ph ->
          Hashtbl.replace phases ph ();
          if ph <> "M" then (
            match Rc_obs.Json.member "ts" ev with
            | Some (Rc_obs.Json.Float _ | Rc_obs.Json.Int _) -> ()
            | _ -> fail "%s: traceEvents[%d] (%s) lacks a numeric ts" path i ph)
      | _ -> fail "%s: traceEvents[%d] ph is not a string" path i)
    events;
  List.iter
    (fun (ph, what) ->
      if not (Hashtbl.mem phases ph) then
        fail "%s: no %s (%S) events — %s track missing" path what ph what)
    [ ("X", "complete"); ("C", "counter") ];
  Printf.printf "%s: ok (%d trace events)\n" path (List.length events)

let check_jsonl path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s: empty JSONL stream" path;
  List.iteri
    (fun i line ->
      match Rc_obs.Json.of_string line with
      | Error m -> fail "%s:%d: not valid JSON: %s" path (i + 1) m
      | Ok j -> (
          match Rc_obs.Json.member "type" j with
          | Some (Rc_obs.Json.Str _) -> ()
          | _ -> fail "%s:%d: no type discriminant" path (i + 1)))
    lines;
  Printf.printf "%s: ok (%d events)\n" path (List.length lines)

let check_pure path =
  match Rc_obs.Json.of_string (read_file path) with
  | Ok (Rc_obs.Json.Obj fields) ->
      Printf.printf "%s: pure (one object, %d top-level fields)\n" path
        (List.length fields)
  | Ok _ -> fail "%s: top level is not a JSON object" path
  | Error m -> fail "%s: stdout is not a single JSON document: %s" path m

(* Drop every member named [name], recursively. *)
let rec strip_member name j =
  match j with
  | Rc_obs.Json.Obj fields ->
      Rc_obs.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = name then None else Some (k, strip_member name v))
           fields)
  | Rc_obs.Json.List l -> Rc_obs.Json.List (List.map (strip_member name) l)
  | j -> j

let check_figures_equal a b =
  let parse path =
    match Rc_obs.Json.of_string (read_file path) with
    | Ok j -> strip_member "trace_cache" j
    | Error m -> fail "%s: not valid JSON: %s" path m
  in
  let ja = Rc_obs.Json.to_string (parse a)
  and jb = Rc_obs.Json.to_string (parse b) in
  if ja <> jb then
    fail "%s and %s differ beyond trace_cache — the timing-engine path \
          changed the results"
      a b;
  Printf.printf "%s == %s (modulo trace_cache)\n" a b

let check_memo_warm path =
  let j =
    match Rc_obs.Json.of_string (read_file path) with
    | Ok j -> j
    | Error m -> fail "%s: not valid JSON: %s" path m
  in
  let tc =
    match Rc_obs.Json.member "trace_cache" j with
    | Some tc -> tc
    | None -> fail "%s: no trace_cache member" path
  in
  let int_field name =
    match Rc_obs.Json.member name tc with
    | Some (Rc_obs.Json.Int v) -> v
    | _ -> fail "%s: trace_cache lacks integer field %S" path name
  in
  let hits = int_field "seg_hits"
  and misses = int_field "seg_misses"
  and fallbacks = int_field "seg_fallbacks" in
  let visits = hits + misses + fallbacks in
  if hits = 0 then fail "%s: warm pass has no timing-memo hits" path;
  let rate = float_of_int hits /. float_of_int visits in
  if rate < 0.80 then
    fail "%s: warm timing-memo hit rate %.1f%% < 80%% (%d/%d)" path
      (100.0 *. rate) hits visits;
  Printf.printf "%s: warm memo hit rate %.1f%% (%d/%d)\n" path (100.0 *. rate)
    hits visits

(* --- Prometheus text exposition (version 0.0.4) ------------------------ *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_metric_char c = is_name_start c || c = ':' || (c >= '0' && c <= '9')
let is_label_char c = is_name_start c || (c >= '0' && c <= '9')

let metric_name_ok s =
  String.length s > 0
  && (is_name_start s.[0] || s.[0] = ':')
  && String.for_all is_metric_char s

let label_name_ok s =
  String.length s > 0 && is_name_start s.[0] && String.for_all is_label_char s

let prom_value_ok s =
  match s with
  | "+Inf" | "-Inf" | "Inf" | "NaN" -> true
  | _ -> Option.is_some (float_of_string_opt s)

let prom_value s =
  match s with
  | "+Inf" | "Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | _ -> float_of_string s

type sample = { sm_name : string; sm_labels : (string * string) list; sm_value : float }

(* Parse one sample line: name{label="value",...} value [timestamp]. *)
let parse_sample path ln line =
  let fail fmt = fail ("%s:%d: " ^^ fmt) path ln in
  let len = String.length line in
  let i = ref 0 in
  while !i < len && is_metric_char line.[!i] do incr i done;
  let name = String.sub line 0 !i in
  if not (metric_name_ok name) then fail "bad metric name in %S" line;
  let labels = ref [] in
  (if !i < len && line.[!i] = '{' then begin
     incr i;
     let parsing = ref true in
     while !parsing do
       if !i >= len then fail "unterminated label set";
       if line.[!i] = '}' then (incr i; parsing := false)
       else begin
         let s = !i in
         while !i < len && is_label_char line.[!i] do incr i done;
         let lname = String.sub line s (!i - s) in
         if not (label_name_ok lname) then fail "bad label name in %S" line;
         if !i + 1 >= len || line.[!i] <> '=' || line.[!i + 1] <> '"' then
           fail "label %s: expected =\"...\"" lname;
         i := !i + 2;
         let buf = Buffer.create 16 in
         let in_str = ref true in
         while !in_str do
           if !i >= len then fail "unterminated label value for %s" lname;
           (match line.[!i] with
           | '"' -> in_str := false
           | '\\' ->
               if !i + 1 >= len then fail "dangling backslash in label value";
               (match line.[!i + 1] with
               | '\\' -> Buffer.add_char buf '\\'
               | '"' -> Buffer.add_char buf '"'
               | 'n' -> Buffer.add_char buf '\n'
               | c -> fail "bad escape \\%c in label value" c);
               incr i
           | c -> Buffer.add_char buf c);
           incr i
         done;
         labels := (lname, Buffer.contents buf) :: !labels;
         if !i < len && line.[!i] = ',' then incr i
         else if !i >= len || line.[!i] <> '}' then
           fail "expected , or } after label %s" lname
       end
     done
   end);
  if !i >= len || line.[!i] <> ' ' then fail "no space before value in %S" line;
  let rest = String.trim (String.sub line !i (len - !i)) in
  let value, _ts =
    match String.index_opt rest ' ' with
    | None -> (rest, None)
    | Some sp ->
        let ts = String.sub rest (sp + 1) (String.length rest - sp - 1) in
        (match int_of_string_opt (String.trim ts) with
        | Some _ -> ()
        | None -> fail "bad timestamp %S" ts);
        (String.sub rest 0 sp, Some ts)
  in
  if not (prom_value_ok value) then fail "bad sample value %S" value;
  { sm_name = name; sm_labels = List.rev !labels; sm_value = prom_value value }

(* Histogram series key: the label set minus [le], canonically ordered. *)
let series_key labels =
  List.filter (fun (k, _) -> k <> "le") labels
  |> List.sort compare
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v)
  |> String.concat ","

let strip_suffix name =
  List.find_map
    (fun sfx ->
      let n = String.length name and s = String.length sfx in
      if n > s && String.sub name (n - s) s = sfx then
        Some (String.sub name 0 (n - s), sfx)
      else None)
    [ "_bucket"; "_sum"; "_count" ]

let check_prom path =
  let text = read_file path in
  if text = "" then fail "%s: empty exposition" path;
  if text.[String.length text - 1] <> '\n' then
    fail "%s: missing final newline" path;
  let types = Hashtbl.create 16 in
  (* histogram base -> series key -> (le, cumulative) list / sum / count *)
  let buckets = Hashtbl.create 16 in
  let sums = Hashtbl.create 16 in
  let counts = Hashtbl.create 16 in
  let nsamples = ref 0 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if String.trim line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: [ ty ] ->
            if not (metric_name_ok name) then
              fail "%s:%d: bad metric name %S in TYPE" path ln name;
            if Hashtbl.mem types name then
              fail "%s:%d: duplicate TYPE for %s" path ln name;
            if not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
            then fail "%s:%d: unknown type %S for %s" path ln ty name;
            Hashtbl.replace types name ty
        | "#" :: "TYPE" :: _ -> fail "%s:%d: malformed TYPE line %S" path ln line
        | "#" :: "HELP" :: name :: _ ->
            if not (metric_name_ok name) then
              fail "%s:%d: bad metric name %S in HELP" path ln name
        | _ -> () (* other comments are legal and ignored *)
      end
      else begin
        incr nsamples;
        let s = parse_sample path ln line in
        let family, suffix =
          match strip_suffix s.sm_name with
          | Some (base, sfx) when Hashtbl.mem types base -> (base, Some sfx)
          | _ -> (s.sm_name, None)
        in
        let ty =
          match Hashtbl.find_opt types family with
          | Some ty -> ty
          | None -> fail "%s:%d: sample %s precedes its TYPE" path ln s.sm_name
        in
        (match (ty, suffix) with
        | ("histogram" | "summary"), None ->
            fail "%s:%d: bare sample %s for %s family" path ln s.sm_name ty
        | ("counter" | "gauge" | "untyped"), Some _ ->
            (* strip_suffix only fires when the stripped base is TYPE'd,
               so this means e.g. a foo_count sample for a counter foo *)
            fail "%s:%d: suffixed sample %s for %s family" path ln s.sm_name ty
        | _ -> ());
        if ty = "counter" && not (s.sm_value >= 0.0) then
          fail "%s:%d: counter %s is negative (%g)" path ln s.sm_name s.sm_value;
        if ty = "histogram" then begin
          let key = series_key s.sm_labels in
          let record tbl v =
            let per = Option.value (Hashtbl.find_opt tbl family)
                        ~default:(Hashtbl.create 4) in
            Hashtbl.replace per key v;
            Hashtbl.replace tbl family per
          in
          match suffix with
          | Some "_bucket" ->
              let le =
                match List.assoc_opt "le" s.sm_labels with
                | Some le -> le
                | None -> fail "%s:%d: %s_bucket without le label" path ln family
              in
              if not (prom_value_ok le) then
                fail "%s:%d: bad le bound %S" path ln le;
              let per = Option.value (Hashtbl.find_opt buckets family)
                          ~default:(Hashtbl.create 4) in
              let prior = Option.value (Hashtbl.find_opt per key) ~default:[] in
              Hashtbl.replace per key ((prom_value le, s.sm_value) :: prior);
              Hashtbl.replace buckets family per
          | Some "_sum" -> record sums s.sm_value
          | Some "_count" -> record counts s.sm_value
          | _ -> assert false
        end
      end)
    lines;
  (* Histogram invariants, per series. *)
  Hashtbl.iter
    (fun family ty ->
      if ty = "histogram" then begin
        let per =
          match Hashtbl.find_opt buckets family with
          | Some per -> per
          | None -> fail "%s: histogram %s has no _bucket samples" path family
        in
        Hashtbl.iter
          (fun key rev_bkts ->
            let where =
              if key = "" then family else Printf.sprintf "%s{%s}" family key
            in
            let bkts = List.rev rev_bkts in
            let rec ascending = function
              | (le1, c1) :: ((le2, c2) :: _ as tl) ->
                  if not (le1 < le2) then
                    fail "%s: %s: le bounds not ascending (%g then %g)" path
                      where le1 le2;
                  if c1 > c2 then
                    fail "%s: %s: cumulative counts decrease at le=%g" path
                      where le2;
                  ascending tl
              | _ -> ()
            in
            ascending bkts;
            let inf_count =
              match List.rev bkts with
              | (le, c) :: _ when le = Float.infinity -> c
              | _ -> fail "%s: %s: no le=\"+Inf\" bucket" path where
            in
            (match
               Option.bind (Hashtbl.find_opt counts family) (fun per ->
                   Hashtbl.find_opt per key)
             with
            | Some c when c = inf_count -> ()
            | Some c ->
                fail "%s: %s: +Inf bucket %g disagrees with _count %g" path
                  where inf_count c
            | None -> fail "%s: %s: no _count sample" path where);
            if
              Option.bind (Hashtbl.find_opt sums family) (fun per ->
                  Hashtbl.find_opt per key)
              = None
            then fail "%s: %s: no _sum sample" path where)
          per
      end)
    types;
  Printf.printf "%s: ok (%d samples, %d families)\n" path !nsamples
    (Hashtbl.length types)

let () =
  match Array.to_list Sys.argv with
  | _ :: "--prom" :: (_ :: _ as files) -> List.iter check_prom files
  | _ :: "--prom" :: [] ->
      prerr_endline "usage: jsonck --prom <metrics.prom>...";
      exit 2
  | _ :: "--pure" :: (_ :: _ as files) -> List.iter check_pure files
  | _ :: "--pure" :: [] ->
      prerr_endline "usage: jsonck --pure <doc.json>...";
      exit 2
  | _ :: "--memo-warm" :: (_ :: _ as files) -> List.iter check_memo_warm files
  | _ :: "--memo-warm" :: [] ->
      prerr_endline "usage: jsonck --memo-warm <figures.json>...";
      exit 2
  | [ _; "--figures-equal"; a; b ] -> check_figures_equal a b
  | _ :: "--figures-equal" :: _ ->
      prerr_endline "usage: jsonck --figures-equal <a.json> <b.json>";
      exit 2
  | _ :: chrome :: rest ->
      check_chrome chrome;
      List.iter check_jsonl rest
  | _ ->
      prerr_endline
        "usage: jsonck <chrome-trace.json> [<events.jsonl>...] | jsonck --pure \
         <doc.json>... | jsonck --prom <metrics.prom>...";
      exit 2
