(* jsonck — shape validator for the telemetry sinks, used by the
   trace-smoke alias and usable by hand:

     jsonck <chrome-trace.json> [<events.jsonl>]
     jsonck --pure <doc.json>...
     jsonck --figures-equal <a.json> <b.json>

   Checks that the Chrome file is valid trace-event JSON Perfetto will
   load — a traceEvents array whose entries carry name/ph/pid, with at
   least one complete ("X", the compile passes) and one counter ("C",
   the machine cycles) event — and that every JSONL line parses to an
   object with a type discriminant.  Exits non-zero with a message on
   the first violation.

   [--pure] instead asserts machine-readability of captured stdout:
   each file must be exactly one JSON object — any narration line
   leaking onto stdout before or after the document breaks the parse
   and fails the check (the json-smoke alias pipes `rcc run --json`
   and `rcc figures --json` through this).

   [--figures-equal] asserts two `rcc figures --json` documents carry
   the same results: structural equality after dropping the
   "trace_cache" member, the only field the timing-engine path (batched
   vs per-cell, engine, jobs) is allowed to change.  The replay-smoke
   alias runs the batched and per-cell paths through this. *)

let fail fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_field path i obj name =
  match Rc_obs.Json.member name obj with
  | Some v -> v
  | None -> fail "%s: traceEvents[%d] lacks %S" path i name

let check_chrome path =
  let j =
    match Rc_obs.Json.of_string (read_file path) with
    | Ok j -> j
    | Error m -> fail "%s: not valid JSON: %s" path m
  in
  let events =
    match Rc_obs.Json.member "traceEvents" j with
    | Some (Rc_obs.Json.List evs) -> evs
    | Some _ -> fail "%s: traceEvents is not an array" path
    | None -> fail "%s: no traceEvents field" path
  in
  let phases = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      (match check_field path i ev "name" with
      | Rc_obs.Json.Str _ -> ()
      | _ -> fail "%s: traceEvents[%d] name is not a string" path i);
      (match check_field path i ev "pid" with
      | Rc_obs.Json.Int _ -> ()
      | _ -> fail "%s: traceEvents[%d] pid is not an integer" path i);
      match check_field path i ev "ph" with
      | Rc_obs.Json.Str ph ->
          Hashtbl.replace phases ph ();
          if ph <> "M" then (
            match Rc_obs.Json.member "ts" ev with
            | Some (Rc_obs.Json.Float _ | Rc_obs.Json.Int _) -> ()
            | _ -> fail "%s: traceEvents[%d] (%s) lacks a numeric ts" path i ph)
      | _ -> fail "%s: traceEvents[%d] ph is not a string" path i)
    events;
  List.iter
    (fun (ph, what) ->
      if not (Hashtbl.mem phases ph) then
        fail "%s: no %s (%S) events — %s track missing" path what ph what)
    [ ("X", "complete"); ("C", "counter") ];
  Printf.printf "%s: ok (%d trace events)\n" path (List.length events)

let check_jsonl path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s: empty JSONL stream" path;
  List.iteri
    (fun i line ->
      match Rc_obs.Json.of_string line with
      | Error m -> fail "%s:%d: not valid JSON: %s" path (i + 1) m
      | Ok j -> (
          match Rc_obs.Json.member "type" j with
          | Some (Rc_obs.Json.Str _) -> ()
          | _ -> fail "%s:%d: no type discriminant" path (i + 1)))
    lines;
  Printf.printf "%s: ok (%d events)\n" path (List.length lines)

let check_pure path =
  match Rc_obs.Json.of_string (read_file path) with
  | Ok (Rc_obs.Json.Obj fields) ->
      Printf.printf "%s: pure (one object, %d top-level fields)\n" path
        (List.length fields)
  | Ok _ -> fail "%s: top level is not a JSON object" path
  | Error m -> fail "%s: stdout is not a single JSON document: %s" path m

(* Drop every member named [name], recursively. *)
let rec strip_member name j =
  match j with
  | Rc_obs.Json.Obj fields ->
      Rc_obs.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = name then None else Some (k, strip_member name v))
           fields)
  | Rc_obs.Json.List l -> Rc_obs.Json.List (List.map (strip_member name) l)
  | j -> j

let check_figures_equal a b =
  let parse path =
    match Rc_obs.Json.of_string (read_file path) with
    | Ok j -> strip_member "trace_cache" j
    | Error m -> fail "%s: not valid JSON: %s" path m
  in
  let ja = Rc_obs.Json.to_string (parse a)
  and jb = Rc_obs.Json.to_string (parse b) in
  if ja <> jb then
    fail "%s and %s differ beyond trace_cache — the timing-engine path \
          changed the results"
      a b;
  Printf.printf "%s == %s (modulo trace_cache)\n" a b

let () =
  match Array.to_list Sys.argv with
  | _ :: "--pure" :: (_ :: _ as files) -> List.iter check_pure files
  | _ :: "--pure" :: [] ->
      prerr_endline "usage: jsonck --pure <doc.json>...";
      exit 2
  | [ _; "--figures-equal"; a; b ] -> check_figures_equal a b
  | _ :: "--figures-equal" :: _ ->
      prerr_endline "usage: jsonck --figures-equal <a.json> <b.json>";
      exit 2
  | _ :: chrome :: rest ->
      check_chrome chrome;
      List.iter check_jsonl rest
  | _ ->
      prerr_endline
        "usage: jsonck <chrome-trace.json> [<events.jsonl>...] | jsonck --pure \
         <doc.json>...";
      exit 2
