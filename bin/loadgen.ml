(* loadgen — load driver for `rcc serve` (DESIGN.md section 16):

     loadgen --url http://127.0.0.1:8080 --rps 200 --duration 10
     loadgen --spawn ./rcc.exe --mix mixed --strict

   Replays a request mix against a running server at a target
   aggregate rate with a fixed number of client domains, open-loop:
   request k is due at [t0 + k/rps] regardless of how long earlier
   requests took, so a slow server accumulates measurable latency
   instead of silently throttling the offered load.  Client-side
   latency (connect to last byte) is recorded into the same log-linear
   histograms the server uses ({!Rc_obs.Metrics.Hist}), and the report
   cross-checks client p50/p99 per endpoint against the server's own
   /metrics.json quantiles: disagreement beyond
   [tol_ms + tol_pct% * max(client, server)] on a fresh server means
   one side's accounting is broken.

   [--spawn RCC] boots a private `RCC serve --port 0` first (the
   load-smoke alias does this), so the server histograms contain
   exactly this run's traffic and the cross-check is sharp; against a
   shared [--url] server the check still runs but prior traffic can
   legitimately shift the server's quantiles.

   The report is a single JSON document on stdout (narration on
   stderr); [--strict] exits non-zero when any 5xx was answered or the
   quantile cross-check fails, which is what CI's load-smoke
   asserts. *)

let fail fmt =
  Format.kasprintf (fun m -> prerr_endline ("loadgen: " ^ m); exit 1) fmt

(* --- tiny HTTP/1.1 client (Connection: close per request) ------------- *)

let find_body raw =
  let rec scan i =
    if i + 3 >= String.length raw then None
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then Some (String.sub raw (i + 4) (String.length raw - i - 4))
    else scan (i + 1)
  in
  scan 0

(* Returns (status, body); raises Unix_error on connection trouble. *)
let http_request ~port ~meth ~path ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      let rec send off =
        if off < String.length req then
          send (off + Unix.write_substring fd req off (String.length req - off))
      in
      send 0;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec recv () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            recv ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
      in
      recv ();
      let raw = Buffer.contents buf in
      match String.index_opt raw ' ' with
      | None -> failwith "no status line"
      | Some sp -> (
          let status = int_of_string (String.sub raw (sp + 1) 3) in
          match find_body raw with
          | Some b -> (status, b)
          | None -> failwith "no header/body separator"))

(* --- request mixes ----------------------------------------------------- *)

type shot = { sh_meth : string; sh_path : string; sh_body : string }

let run_shot body = { sh_meth = "POST"; sh_path = "/run"; sh_body = body }

let run_bodies =
  [
    {|{"bench":"cmp","rc":true,"core_int":8}|};
    {|{"bench":"grep","core_int":8}|};
    {|{"bench":"eqn","rc":true,"issue":4}|};
    {|{"bench":"compress","rc":true,"core_int":12}|};
  ]

let figures_shot =
  { sh_meth = "POST"; sh_path = "/figures"; sh_body = {|{"ids":["table1"]}|} }

let healthz_shot = { sh_meth = "GET"; sh_path = "/healthz"; sh_body = "" }

(* A small fixed kernel spec, exercising the user-submission path:
   /compile admission plus /run with the spec inline.  Inline specs
   carry no cross-request state, so the shots stay valid under prefork
   servers where consecutive requests land on different workers. *)
let spec_doc =
  {|{"seed":0,"slots":8,"funcs":[{"arity":0,"nvars":2,"nfvars":1,"body":[["set",0,["const","1"]],["loop",1,6,[["set",0,["bin","add",["var",0],["var",1]]],["store",1,["var",0]],["load",1,1]]],["emit",["var",0]]]}]}|}

let spec_shots =
  [
    { sh_meth = "POST"; sh_path = "/compile"; sh_body = spec_doc };
    run_shot (Printf.sprintf {|{"spec":%s}|} spec_doc);
    run_shot (Printf.sprintf {|{"spec":%s,"rc":true,"core_int":8}|} spec_doc);
  ]

let mix_of_name = function
  | "run" -> List.map run_shot run_bodies
  | "figures" -> [ figures_shot ]
  | "spec" -> spec_shots
  | "mixed" ->
      (* Twelve slots: mostly /run, one /figures, one /healthz, and
         the user-submitted-kernel path. *)
      List.map run_shot run_bodies
      @ [ figures_shot ]
      @ spec_shots
      @ List.map run_shot (List.rev run_bodies)
      @ [ healthz_shot ]
  | m -> fail "unknown mix %S (run|figures|spec|mixed)" m

(* Each nonempty line of a mix file is one shot:
   {"method":"POST","path":"/run","body":{...}} (method defaults to
   POST with a body and GET without; body may be any JSON value). *)
let mix_of_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let shots =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> List.mapi (fun i line ->
           match Rc_obs.Json.of_string line with
           | Error m -> fail "%s:%d: not valid JSON: %s" path (i + 1) m
           | Ok j ->
               let member_str name =
                 match Rc_obs.Json.member name j with
                 | Some (Rc_obs.Json.Str s) -> Some s
                 | Some _ -> fail "%s:%d: %S is not a string" path (i + 1) name
                 | None -> None
               in
               let body =
                 match Rc_obs.Json.member "body" j with
                 | Some b -> Rc_obs.Json.to_string b
                 | None -> ""
               in
               let sh_path =
                 match member_str "path" with
                 | Some p -> p
                 | None -> fail "%s:%d: no \"path\"" path (i + 1)
               in
               let sh_meth =
                 match member_str "method" with
                 | Some m -> m
                 | None -> if body = "" then "GET" else "POST"
               in
               { sh_meth; sh_path; sh_body = body })
  in
  if shots = [] then fail "%s: empty mix file" path;
  shots

(* --- client-side accounting -------------------------------------------- *)

module M = Rc_obs.Metrics

type tally = {
  mu : Mutex.t;
  hists : (string, M.Hist.t) Hashtbl.t;  (** endpoint -> latency, seconds *)
  statuses : (int, int) Hashtbl.t;
  mutable sent : int;
  mutable conn_errors : int;
}

let tally () =
  {
    mu = Mutex.create ();
    hists = Hashtbl.create 8;
    statuses = Hashtbl.create 8;
    sent = 0;
    conn_errors = 0;
  }

let hist_for t endpoint =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.hists endpoint with
      | Some h -> h
      | None ->
          let h = M.Hist.create () in
          Hashtbl.replace t.hists endpoint h;
          h)

let record t ~endpoint ~status ~latency_s =
  M.Hist.observe (hist_for t endpoint) latency_s;
  Mutex.protect t.mu (fun () ->
      t.sent <- t.sent + 1;
      Hashtbl.replace t.statuses status
        (1 + Option.value (Hashtbl.find_opt t.statuses status) ~default:0))

let record_conn_error t =
  Mutex.protect t.mu (fun () ->
      t.sent <- t.sent + 1;
      t.conn_errors <- t.conn_errors + 1)

(* --- the open-loop driver ---------------------------------------------- *)

let drive ~port ~rps ~duration ~concurrency ~mix =
  let t = tally () in
  let shots = Array.of_list mix in
  let next = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let t_end = t0 +. duration in
  let worker () =
    let continue = ref true in
    while !continue do
      let k = Atomic.fetch_and_add next 1 in
      let due = t0 +. (float_of_int k /. rps) in
      if due > t_end then continue := false
      else begin
        let now = Unix.gettimeofday () in
        if due > now then Unix.sleepf (due -. now);
        let shot = shots.(k mod Array.length shots) in
        let start = Unix.gettimeofday () in
        match
          http_request ~port ~meth:shot.sh_meth ~path:shot.sh_path
            ~body:shot.sh_body ()
        with
        | status, _body ->
            record t ~endpoint:shot.sh_path ~status
              ~latency_s:(Unix.gettimeofday () -. start)
        | exception (Unix.Unix_error _ | Failure _) -> record_conn_error t
      end
    done
  in
  let domains = List.init concurrency (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  (t, Unix.gettimeofday () -. t0)

(* --- server cross-check ------------------------------------------------ *)

let number_member name j =
  match Rc_obs.Json.member name j with
  | Some (Rc_obs.Json.Float f) -> Some f
  | Some (Rc_obs.Json.Int n) -> Some (float_of_int n)
  | _ -> None

(* endpoint -> (p50_ms, p99_ms) from the server's /metrics.json. *)
let server_quantiles ~port =
  let status, body = http_request ~port ~meth:"GET" ~path:"/metrics.json" () in
  if status <> 200 then fail "/metrics.json: status %d" status;
  let j =
    match Rc_obs.Json.of_string body with
    | Ok j -> j
    | Error m -> fail "/metrics.json: bad JSON: %s" m
  in
  match
    Option.bind (Rc_obs.Json.member "server" j) (Rc_obs.Json.member "endpoints")
  with
  | Some (Rc_obs.Json.List eps) ->
      List.filter_map
        (fun ep ->
          match Rc_obs.Json.member "endpoint" ep with
          | Some (Rc_obs.Json.Str name) -> (
              match (number_member "p50_ms" ep, number_member "p99_ms" ep) with
              | Some p50, Some p99 -> Some (name, (p50, p99))
              | _ -> None)
          | _ -> None)
        eps
  | _ -> fail "/metrics.json: no server.endpoints array"

let agree ~tol_ms ~tol_pct c s =
  Float.abs (c -. s) <= tol_ms +. (tol_pct /. 100.0 *. Float.max c s)

(* --- spawn mode -------------------------------------------------------- *)

let spawn_server rcc ~jobs ~workers ~store =
  let rcc =
    if Filename.is_implicit rcc then Filename.concat Filename.current_dir_name rcc
    else rcc
  in
  let err_r, err_w = Unix.pipe ~cloexec:false () in
  let argv =
    [ rcc; "serve"; "--port"; "0"; "--jobs"; string_of_int jobs; "--quiet" ]
    @ (if workers > 1 then [ "--workers"; string_of_int workers ] else [])
    @ (match store with None -> [] | Some dir -> [ "--store"; dir ])
  in
  let pid =
    Unix.create_process rcc (Array.of_list argv) Unix.stdin Unix.stdout err_w
  in
  Unix.close err_w;
  let err_ic = Unix.in_channel_of_descr err_r in
  let port =
    let rec find () =
      let line =
        try input_line err_ic
        with End_of_file -> fail "spawned server exited before announcing a port"
      in
      match
        Scanf.sscanf_opt line "rcc serve: listening on http://%[^:]:%d"
          (fun _host p -> p)
      with
      | Some p -> p
      | None -> find ()
    in
    find ()
  in
  (* Keep the server's stderr pipe drained so it can never block on a
     full pipe buffer mid-request. *)
  let drainer =
    Domain.spawn (fun () ->
        try
          while true do
            ignore (input_line err_ic)
          done
        with End_of_file -> ())
  in
  let stop () =
    Unix.kill pid Sys.sigterm;
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _, Unix.WEXITED n -> fail "spawned server exited %d" n
    | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
        fail "spawned server killed by signal %d" n);
    Domain.join drainer;
    close_in_noerr err_ic
  in
  (port, stop)

(* --- report ------------------------------------------------------------ *)

let report ~mix_name ~rps ~duration ~concurrency ~workers ~server_jobs
    ~elapsed ~strict ~tol_ms ~tol_pct t server =
  let module J = Rc_obs.Json in
  let ms h p = 1000.0 *. M.Hist.quantile h p in
  (* Endpoints in a stable order. *)
  let endpoints =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hists []
    |> List.sort compare
  in
  let min_samples = 20 in
  let checked = ref [] in
  let ep_json =
    List.map
      (fun (name, h) ->
        let n = M.Hist.count h in
        let c50 = ms h 0.5 and c99 = ms h 0.99 in
        let server_fields, ok =
          match List.assoc_opt name server with
          | Some (s50, s99) when n >= min_samples ->
              let ok =
                agree ~tol_ms ~tol_pct c50 s50 && agree ~tol_ms ~tol_pct c99 s99
              in
              checked := (name, ok) :: !checked;
              ( [
                  ("server_p50_ms", J.Float s50);
                  ("server_p99_ms", J.Float s99);
                  ("agree", J.Bool ok);
                ],
                ok )
          | Some (s50, s99) ->
              ( [
                  ("server_p50_ms", J.Float s50);
                  ("server_p99_ms", J.Float s99);
                ],
                true )
          | None -> ([], true)
        in
        ignore ok;
        J.Obj
          ([
             ("endpoint", J.Str name);
             ("requests", J.Int n);
             ("p50_ms", J.Float c50);
             ("p90_ms", J.Float (ms h 0.9));
             ("p99_ms", J.Float c99);
             ("max_ms", J.Float (1000.0 *. M.Hist.max_value h));
           ]
          @ server_fields))
      endpoints
  in
  let statuses =
    Hashtbl.fold (fun st n acc -> (st, n) :: acc) t.statuses []
    |> List.sort compare
    |> List.map (fun (st, n) -> (string_of_int st, J.Int n))
  in
  let count_status p =
    Hashtbl.fold (fun st n acc -> if p st then acc + n else acc) t.statuses 0
  in
  let shed = count_status (fun st -> st = 503) in
  let errors_5xx = count_status (fun st -> st >= 500) in
  let agreement_ok = List.for_all snd !checked in
  let doc =
    J.Obj
      [
        ( "config",
          J.Obj
            [
              ("mix", J.Str mix_name);
              ("target_rps", J.Float rps);
              ("duration_s", J.Float duration);
              ("concurrency", J.Int concurrency);
              ("workers", J.Int workers);
              ("server_jobs", J.Int server_jobs);
              ("tol_ms", J.Float tol_ms);
              ("tol_pct", J.Float tol_pct);
            ] );
        ("elapsed_s", J.Float elapsed);
        ("sent", J.Int t.sent);
        ("achieved_rps", J.Float (float_of_int t.sent /. elapsed));
        ("conn_errors", J.Int t.conn_errors);
        ("shed", J.Int shed);
        ("errors_5xx", J.Int errors_5xx);
        ("status", J.Obj statuses);
        ("endpoints", J.List ep_json);
        ( "agreement",
          J.Obj
            [
              ("checked", J.Int (List.length !checked));
              ("ok", J.Bool agreement_ok);
            ] );
      ]
  in
  print_endline (J.to_string doc);
  if strict then begin
    if errors_5xx > 0 then fail "strict: %d responses with status >= 500" errors_5xx;
    if t.conn_errors > 0 then fail "strict: %d connection errors" t.conn_errors;
    if not agreement_ok then
      fail "strict: client/server quantiles disagree beyond tolerance on %s"
        (String.concat ", "
           (List.filter_map
              (fun (n, ok) -> if ok then None else Some n)
              !checked));
    (* With prefork workers each process keeps its own histograms and a
       /metrics.json scrape samples just one, so the cross-check is
       unsound there — the empty-checked failure only applies to the
       single-process server it was designed for. *)
    if !checked = [] && workers <= 1 then
      fail "strict: no endpoint reached %d samples for the cross-check"
        min_samples
  end

(* --- CLI ---------------------------------------------------------------- *)

let main url spawn rps duration concurrency server_jobs server_workers
    server_store mix_name mix_file tol_ms tol_pct strict =
  if rps <= 0.0 then fail "--rps must be positive";
  if duration <= 0.0 then fail "--duration must be positive";
  if concurrency < 1 then fail "--concurrency must be >= 1";
  let mix =
    match mix_file with Some f -> mix_of_file f | None -> mix_of_name mix_name
  in
  let port, stop =
    match (url, spawn) with
    | Some _, Some _ -> fail "--url and --spawn are mutually exclusive"
    | None, None -> fail "one of --url or --spawn is required"
    | Some url, None ->
        let port =
          match
            Scanf.sscanf_opt url "http://%[^:]:%d" (fun _host p -> p)
          with
          | Some p -> p
          | None -> fail "--url must look like http://127.0.0.1:PORT"
        in
        (port, fun () -> ())
    | None, Some rcc ->
        let port, stop =
          spawn_server rcc ~jobs:server_jobs ~workers:server_workers
            ~store:server_store
        in
        Fmt.epr "loadgen: spawned server on port %d (%d worker(s))@." port
          server_workers;
        (port, stop)
  in
  Fmt.epr "loadgen: %s mix, %.0f rps for %.1fs over %d domains@." mix_name rps
    duration concurrency;
  let t, elapsed = drive ~port ~rps ~duration ~concurrency ~mix in
  Fmt.epr "loadgen: sent %d requests in %.2fs (%.1f rps achieved)@." t.sent
    elapsed
    (float_of_int t.sent /. elapsed);
  (* A prefork server keeps per-worker histograms; one scrape samples a
     single worker, so its quantiles cannot be cross-checked against
     the aggregate client view. *)
  let server = if server_workers > 1 then [] else server_quantiles ~port in
  stop ();
  report ~mix_name ~rps ~duration ~concurrency ~workers:server_workers
    ~server_jobs ~elapsed ~strict ~tol_ms ~tol_pct t server

open Cmdliner

let url_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "url" ] ~docv:"URL" ~doc:"Target server, http://HOST:PORT.")

let spawn_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "spawn" ] ~docv:"RCC"
        ~doc:
          "Spawn a private $(docv) serve on an ephemeral port for the run \
           (SIGTERM-drained afterwards).")

let rps_t =
  Arg.(
    value & opt float 50.0
    & info [ "rps" ] ~docv:"N" ~doc:"Target aggregate request rate.")

let duration_t =
  Arg.(
    value & opt float 5.0
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Offered-load window.")

let concurrency_t =
  Arg.(
    value & opt int 4
    & info [ "concurrency" ] ~docv:"N" ~doc:"Client domains.")

let server_jobs_t =
  Arg.(
    value & opt int 2
    & info [ "server-jobs" ] ~docv:"N"
        ~doc:"Worker domains for the --spawn server.")

let server_workers_t =
  Arg.(
    value & opt int 1
    & info [ "server-workers" ] ~docv:"N"
        ~doc:
          "Prefork worker processes for the --spawn server (passes \
           --workers $(docv); disables the quantile cross-check, whose \
           server side is per-process).")

let server_store_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "server-store" ] ~docv:"DIR"
        ~doc:"On-disk trace store for the --spawn server (--store $(docv)).")

let mix_t =
  Arg.(
    value & opt string "mixed"
    & info [ "mix" ] ~docv:"NAME"
        ~doc:"Request mix: run, figures, spec or mixed.")

let mix_file_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "mix-file" ] ~docv:"FILE"
        ~doc:
          "JSONL request mix, one {\"path\":..,\"body\":..} object per line \
           (overrides --mix).")

let tol_ms_t =
  Arg.(
    value & opt float 5.0
    & info [ "tol-ms" ] ~docv:"MS"
        ~doc:"Absolute slack for the client/server quantile cross-check.")

let tol_pct_t =
  Arg.(
    value & opt float 25.0
    & info [ "tol-pct" ] ~docv:"PCT"
        ~doc:"Relative slack for the quantile cross-check, percent.")

let strict_t =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit non-zero on any 5xx, connection error, or quantile \
           disagreement (CI mode).")

let cmd =
  let doc = "replay a request mix against rcc serve and report latency" in
  Cmd.v
    (Cmd.info "loadgen" ~doc)
    Term.(
      const main $ url_t $ spawn_t $ rps_t $ duration_t $ concurrency_t
      $ server_jobs_t $ server_workers_t $ server_store_t $ mix_t
      $ mix_file_t $ tol_ms_t $ tol_pct_t $ strict_t)

let () = exit (Cmd.eval cmd)
