(* Quickstart: write a small program against the IR builder, compile it
   for a machine with 16 core registers — once without and once with
   Register Connection — and simulate both.

     dune exec examples/quickstart.exe

   The kernel keeps ~24 values live at once, far more than 16 registers
   can hold: without RC the compiler spills; with RC it connects map
   indices to the 256-register extended file instead. *)

open Rc_ir
module B = Builder

(* 1. Build a program: a dot-product-of-squares kernel with a deep
   working set of loop invariants. *)
let build () =
  let prog = B.program ~entry:"main" in
  (* static data *)
  let r = Rc_workloads.Wutil.rng 1L in
  Rc_workloads.Wutil.global_words prog "xs" (Rc_workloads.Wutil.random_words r 256 100);
  Rc_workloads.Wutil.global_words prog "weights" (Rc_workloads.Wutil.random_words r 16 10);
  let _ =
    B.define prog "main" ~params:[] (fun b _ ->
        let xs = B.addr b "xs" in
        let wp = B.addr b "weights" in
        (* sixteen weights, all live across the loop *)
        let ws = Array.init 16 (fun k -> B.load b ~off:(8 * k) wp) in
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:256 (fun i ->
            let x = B.load b (B.elem8 b xs i) in
            let lane = B.andi b i 15L in
            (* weighted square, plus a reduction over all weights *)
            let wsum = Array.fold_left (fun a w -> B.add b a w) (B.cint b 0) ws in
            let t = B.mul b x x in
            B.assign b acc
              (B.add b acc (B.add b (B.mul b t lane) wsum)));
        B.emit b acc;
        B.halt b)
  in
  prog

let simulate ~rc =
  let opts = Rc_harness.Pipeline.options ~rc ~issue:4 ~core_int:16 () in
  (* compile = optimise, profile, allocate, lower, schedule, insert
     connects (if rc), assemble *)
  let compiled = Rc_harness.Pipeline.compile opts (build ()) in
  (* simulate checks the output stream against the reference interpreter *)
  let result = Rc_harness.Pipeline.simulate compiled in
  (compiled, result)

let () =
  (* 2. Reference semantics, straight from the interpreter. *)
  let reference = Rc_interp.Interp.run (build ()) in
  Fmt.pr "reference checksum: %Ld (%d IR operations)@."
    reference.Rc_interp.Interp.checksum reference.Rc_interp.Interp.dyn_ops;

  (* 3. Without RC: 16 registers force spill code. *)
  let c_no, r_no = simulate ~rc:false in
  Fmt.pr "@.without RC : %6d cycles, %2d spilled values, %d spill instructions@."
    r_no.Rc_machine.Machine.cycles c_no.Rc_harness.Pipeline.spills
    c_no.Rc_harness.Pipeline.breakdown.Rc_isa.Mcode.spill;

  (* 4. With RC: same 16 nameable registers, 256 physical. *)
  let c_rc, r_rc = simulate ~rc:true in
  Fmt.pr "with RC    : %6d cycles, %2d spilled values, %d connect instructions@."
    r_rc.Rc_machine.Machine.cycles c_rc.Rc_harness.Pipeline.spills
    c_rc.Rc_harness.Pipeline.breakdown.Rc_isa.Mcode.connects;

  Fmt.pr "@.RC speedup over spilling: %.2fx@."
    (float_of_int r_no.Rc_machine.Machine.cycles
    /. float_of_int r_rc.Rc_machine.Machine.cycles);
  assert (r_no.Rc_machine.Machine.checksum = r_rc.Rc_machine.Machine.checksum);
  Fmt.pr "both runs match the reference interpreter bit for bit.@."
