(* Register-pressure study: the scenario from the paper's introduction.

   An architect is sizing the register file of a 4-issue superscalar.
   This example sweeps the number of core registers over the espresso
   and tomcatv kernels and prints, for each size, the performance of

     - the conventional design (spill when registers run out), and
     - the same instruction set extended with Register Connection,

   against the unlimited-register ceiling — a textual Figure 8.

     dune exec examples/register_pressure.exe
*)

let sweep (bench_name : string) labels =
  let b = Rc_workloads.Registry.find bench_name in
  let ctx = Rc_harness.Experiments.create ~scale:1 () in
  let ceiling =
    Rc_harness.Experiments.speedup ctx b (Rc_harness.Experiments.unlimited_opts ())
  in
  Fmt.pr "@.== %s (4-issue, 2-cycle loads; unlimited-register speedup %.2f) ==@."
    bench_name ceiling;
  Fmt.pr "%8s %12s %12s %16s %14s@." "regs" "without-RC" "with-RC" "spilled vregs"
    "connects";
  List.iter
    (fun label ->
      let o_no = Rc_harness.Experiments.reg_opts b ~label ~rc:false () in
      let o_rc = Rc_harness.Experiments.reg_opts b ~label ~rc:true () in
      let s_no = Rc_harness.Experiments.speedup ctx b o_no in
      let s_rc = Rc_harness.Experiments.speedup ctx b o_rc in
      let r_no, _, spills = Rc_harness.Experiments.run ctx b o_no in
      let r_rc, _, _ = Rc_harness.Experiments.run ctx b o_rc in
      ignore r_no;
      Fmt.pr "%8d %12.2f %12.2f %16d %14d@." label s_no s_rc spills
        r_rc.Rc_machine.Machine.connects)
    labels;
  Fmt.pr
    "reading: with few registers the without-RC column collapses under@.";
  Fmt.pr
    "spill traffic while with-RC stays near the unlimited ceiling —@.";
  Fmt.pr "the paper's Figure 8 in one table.@."

let () =
  sweep "espresso" [ 8; 16; 24; 32; 64 ];
  sweep "tomcatv" [ 16; 32; 64; 128 ]
