(* The four automatic-reset models, side by side — paper section 2.3
   (Figure 3) and the section 3 running example.

   First the mapping-table mechanics on the paper's own code sequence,
   then the models compiled and simulated over a real kernel to compare
   connect traffic.

     dune exec examples/connection_models.exe
*)

open Rc_isa
open Rc_core

(* The section 3 example: 8 core registers, variables in Rp9/Rp10.

     connect_use Ri6,Rp9 ; 1) Ri2 <- Ri2 + Ri6
     connect_def Ri7,Rp10; 2) Ri7 <- Ri3 + 1
                           3) Ri4 <- Ri7 + Ri5   <- needs Rp10 as source
*)
let section3_example model =
  let t = Map_table.create ~model (Reg.file ~core:8 ~total:16) in
  Map_table.connect_use t ~ri:6 ~rp:9;
  Map_table.note_write t 2 (* instruction 1 *);
  Map_table.connect_def t ~ri:7 ~rp:10;
  Map_table.note_write t 7 (* instruction 2 *);
  (* instruction 3 wants to read Rp10 through Ri7: *)
  let read = Map_table.read t 7 in
  let needs_extra_connect = read <> 10 in
  Fmt.pr "  %-28s Ri7 reads Rp%-2d -> %s@." (Model.to_string model) read
    (if needs_extra_connect then "extra connect-use required"
     else "no extra connect (write updated the read map)")

let () =
  Fmt.pr "== the section 3 example under each automatic-reset model ==@.";
  List.iter section3_example Model.all;

  (* Now the models on a real kernel at 16 core registers. *)
  Fmt.pr "@.== eqn kernel, 4-issue, 16 core / 256 total registers ==@.";
  Fmt.pr "%-28s %10s %12s %14s@." "model" "cycles" "dyn connects" "static size";
  List.iter
    (fun model ->
      let b = Rc_workloads.Registry.find "eqn" in
      let opts =
        Rc_harness.Pipeline.options ~rc:true ~issue:4 ~core_int:16
          ~core_float:32 ~model ()
      in
      let c = Rc_harness.Pipeline.compile opts (b.Rc_workloads.Wutil.build 1) in
      let r = Rc_harness.Pipeline.simulate c in
      Fmt.pr "%-28s %10d %12d %14d@."
        (Model.to_string model)
        r.Rc_machine.Machine.cycles r.Rc_machine.Machine.connects
        c.Rc_harness.Pipeline.breakdown.Mcode.connects)
    Model.all;
  Fmt.pr
    "@.The paper implements model 3 (write-reset-read-update): a write@.";
  Fmt.pr
    "through an index leaves the result readable with no extra connect.@.";
  Fmt.pr
    "Under this compiler's connect-insertion strategy the models end up@.";
  Fmt.pr
    "nearly equivalent: what model 3 saves on reads-after-writes, it@.";
  Fmt.pr
    "loses by clobbering longer-lived connect-use mappings (see@.";
  Fmt.pr "EXPERIMENTS.md, ablation A).@."
