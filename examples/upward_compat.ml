(* Upward compatibility walk-through — paper section 4.

   An operating-system bring-up scenario on an RC machine:

   1. subroutine calls: jsr/rts reset the mapping table, so a callee
      written for the *original* architecture saves and restores the
      true core registers (the section 4.1 corruption scenario cannot
      happen);
   2. traps: the PSW map-enable flag makes handlers address core
      registers directly, paying zero connect overhead (section 4.3);
   3. context switches: processes compiled for the original architecture
      save a small context, processes using RC save core + extended +
      connection information (section 4.2);
   4. handlers that need more than the core registers: re-enable the map
      with the PSW, but save and restore the map entries they use
      (section 4.3, second half) via the privileged mfmap/mtmap pair.

     dune exec examples/upward_compat.exe
*)

open Rc_isa
open Rc_core
module M = Rc_machine.Machine

let file = Reg.file ~core:8 ~total:32

let block label insns = { Mcode.label; insns }

(* --- 1. jsr/rts reset --------------------------------------------------------- *)

let call_demo () =
  Fmt.pr "== 1. jsr/rts reset the register map (section 4.1) ==@.";
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          block 0
            [
              Insn.li ~dst:7 1L (* core r7 = 1 *);
              (* stash 77 in extended register 20 and connect r7's reads
                 to it *)
              Insn.connect_def ~cls:Reg.Int ~ri:5 ~rp:20 ();
              Insn.li ~dst:5 77L;
              Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:20 ();
              Insn.emit ~src:7 (* 77: r7 reads the extended register *);
              Insn.jsr 1 (* hardware resets the map here *);
              Insn.emit ~src:7 (* 1: reset survives the return too *);
              Insn.halt ();
            ];
        ];
    };
  (* the callee is "legacy code": it knows nothing about connects *)
  Mcode.add_func m
    {
      Mcode.name = "legacy_callee";
      entry_label = 1;
      blocks = [ block 1 [ Insn.emit ~src:7; Insn.rts () ] ];
    };
  let cfg = Rc_machine.Config.v ~issue:1 ~ifile:file ~ffile:(Reg.core_only 8) () in
  let r = M.run cfg (Image.assemble m) in
  Fmt.pr "caller sees (through the map): %Ld@." (List.nth r.M.output 0);
  Fmt.pr "legacy callee sees (after jsr reset): %Ld@." (List.nth r.M.output 1);
  Fmt.pr "caller after return (after rts reset): %Ld@.@." (List.nth r.M.output 2)

(* --- 2. traps bypass the map ---------------------------------------------------- *)

let trap_demo () =
  Fmt.pr "== 2. traps bypass the register map (section 4.3) ==@.";
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          block 0
            [
              Insn.li ~dst:7 11L;
              Insn.connect_def ~cls:Reg.Int ~ri:5 ~rp:20 ();
              Insn.li ~dst:5 99L;
              Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:20 ();
              Insn.emit ~src:7 (* program: 99 through the map *);
              Insn.trap () (* device interrupt arrives *);
              Insn.emit ~src:7 (* back in the program: map restored *);
              Insn.halt ();
            ];
        ];
    };
  Mcode.add_func m
    {
      Mcode.name = "driver";
      entry_label = 1;
      blocks =
        [
          block 1
            [
              (* a time-critical driver: touches r7 with the map
                 disabled, no connect bookkeeping needed *)
              Insn.emit ~src:7;
              Insn.rfe ();
            ];
        ];
    };
  let cfg =
    Rc_machine.Config.v ~issue:1 ~ifile:file ~ffile:(Reg.core_only 8)
      ~trap_handler:"driver" ()
  in
  let r = M.run cfg (Image.assemble m) in
  Fmt.pr "program before the trap:   %Ld (extended, via the map)@."
    (List.nth r.M.output 0);
  Fmt.pr "driver inside the trap:    %Ld (core register, map disabled)@."
    (List.nth r.M.output 1);
  Fmt.pr "program after rfe:         %Ld (map automatically re-enabled)@.@."
    (List.nth r.M.output 2)

(* --- 3. dual context-switch formats ----------------------------------------------- *)

let context_demo () =
  Fmt.pr "== 3. dual process-context formats (section 4.2) ==@.";
  let make_machine ~extended_arch =
    let m = Mcode.create ~entry:"main" in
    Mcode.add_func m
      {
        Mcode.name = "main";
        entry_label = 0;
        blocks =
          [
            block 0
              [
                Insn.li ~dst:7 123L;
                Insn.connect_use ~cls:Reg.Int ~ri:4 ~rp:25 ();
                Insn.halt ();
              ];
          ];
      };
    let cfg = Rc_machine.Config.v ~issue:1 ~ifile:file ~ffile:(Reg.core_only 8) () in
    let t = M.create cfg (Image.assemble m) in
    ignore (M.run_machine t);
    let view = M.context_view t in
    view.Context.psw.Psw.extended_arch <- extended_arch;
    view
  in
  let legacy = make_machine ~extended_arch:false in
  let extended = make_machine ~extended_arch:true in
  let c_legacy = Context.save legacy in
  let c_extended = Context.save extended in
  Fmt.pr "legacy process context:   %d words (core registers + PSW)@."
    (Context.words c_legacy);
  Fmt.pr "extended process context: %d words (+ extended registers + maps)@."
    (Context.words c_extended);
  (* round-trip the extended one through a context switch *)
  Array.fill extended.Context.iregs 0 32 0L;
  Map_table.reset extended.Context.imap;
  Context.restore extended c_extended;
  Fmt.pr "after restore: r7=%Ld, map entry 4 reads Rp%d — connection state survives@."
    extended.Context.iregs.(7)
    (Map_table.read extended.Context.imap 4)

(* --- 4. handlers that need extended registers ------------------------------------ *)

let extended_handler_demo () =
  Fmt.pr "@.== 4. a handler that re-enables the map (section 4.3) ==@.";
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          block 0
            [
              Insn.li ~dst:7 11L;
              Insn.connect_def ~cls:Reg.Int ~ri:5 ~rp:20 ();
              Insn.li ~dst:5 99L;
              Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:20 ();
              Insn.emit ~src:7;
              Insn.trap ();
              Insn.emit ~src:7 (* the program's connection must survive *);
              Insn.halt ();
            ];
        ];
    };
  Mcode.add_func m
    {
      Mcode.name = "big_handler";
      entry_label = 1;
      blocks =
        [
          block 1
            [
              (* save the entry we are about to reuse, then re-enable the
                 map and work in the extended file *)
              Insn.mfmap Opcode.Read ~dst:2 ~idx:7;
              Insn.mapen true;
              Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:21 ();
              Insn.emit ~src:7;
              (* restore before returning *)
              Insn.mtmap Opcode.Read ~src:2 ~idx:7;
              Insn.rfe ();
            ];
        ];
    };
  let cfg =
    Rc_machine.Config.v ~issue:1 ~ifile:file ~ffile:(Reg.core_only 8)
      ~trap_handler:"big_handler" ()
  in
  let r = M.run cfg (Image.assemble m) in
  Fmt.pr "program before the trap:       %Ld@." (List.nth r.M.output 0);
  Fmt.pr "handler's own extended value:  %Ld@." (List.nth r.M.output 1);
  Fmt.pr "program after rfe:             %Ld (map entry saved and restored)@."
    (List.nth r.M.output 2)

let () =
  call_demo ();
  trap_demo ();
  context_demo ();
  extended_handler_demo ()
