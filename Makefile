# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench bench-smoke trace-smoke fuzz-smoke replay-smoke \
	json-smoke serve-smoke load-smoke load-smoke-workers store-smoke \
	memo-smoke spec-smoke serve clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full regeneration of every table and figure.
bench:
	dune exec bench/main.exe -- all

# Quick end-to-end check of the parallel experiment engine — two
# domains, one macro figure, one static table — plus the perf gate:
# replay must beat execute on median totals over three saved fig12
# sweeps per engine (--assert-replay-dominates).
bench-smoke:
	dune build @bench-smoke

# End-to-end check of the telemetry sinks: trace one kernel with the
# JSONL and Chrome exporters and validate that both outputs parse.
trace-smoke:
	dune build @trace-smoke

# Differential-oracle fuzz, smoke slice: 200 fixed-seed programs over
# the full (model x issue x connect) grid, shrunk reports on failure.
fuzz-smoke:
	dune build @fuzz-smoke

# Trace-replay engine check: figure tables must be byte-identical
# between --engine execute, auto and replay, at any jobs count.
replay-smoke:
	dune build @replay-smoke

# Stdout purity of the --json modes: the captured output must be one
# JSON document, nothing else (narration belongs on stderr).
json-smoke:
	dune build @json-smoke

# End-to-end check of `rcc serve`: /run byte-identical to
# `rcc run --json`, warm trace-cache replay on the second identical
# request, graceful SIGTERM drain, and a /metrics scrape that
# validates as Prometheus text exposition (see DESIGN.md sections
# 15 and 16).
serve-smoke:
	dune build @serve-smoke

# Load smoke: loadgen against a spawned ephemeral server at a gentle
# rate, --strict — zero 5xx and client/server latency-quantile
# agreement (see DESIGN.md section 16).
load-smoke:
	dune build @load-smoke

# Prefork variant: loadgen against `rcc serve --workers 2` sharing a
# trace store; --strict minus the quantile cross-check, which is
# per-process under prefork (see DESIGN.md section 17).
load-smoke-workers:
	dune build @load-smoke-workers

# Store smoke: two sequential server processes on one --store DIR; the
# second must replay its first /run from disk and report store hits on
# /metrics (the cold-process warm-store contract, DESIGN.md
# section 17).
store-smoke:
	dune build @store-smoke

# Superblock timing-memo smoke: warm store-backed replay of fig7 +
# ablation-unroll must hit the memo at >= 80% and produce tables
# byte-identical to --no-timing-memo (DESIGN.md section 18).
memo-smoke:
	dune build @memo-smoke

# Spec smoke: the user-submitted-kernel front door — POST /compile and
# /run byte-identical to `rcc compile --json` / `rcc run --spec
# --json`, warm replay on the second run, over-budget and malformed
# documents shed 413/400 (DESIGN.md section 19).
spec-smoke:
	dune build @spec-smoke

# Run the simulation service locally.
serve:
	dune exec bin/rcc.exe -- serve --port 8080 --jobs 4

clean:
	dune clean
