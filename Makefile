# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench bench-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full regeneration of every table and figure.
bench:
	dune exec bench/main.exe -- all

# Quick end-to-end check of the parallel experiment engine:
# two domains, one macro figure, one static table.
bench-smoke:
	dune build @bench-smoke

clean:
	dune clean
