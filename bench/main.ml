(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus the two ablations described in DESIGN.md.

   Usage:
     main.exe                  print every experiment (scale 1)
     main.exe fig8 fig12       print selected experiments
     main.exe --scale 2 all    larger workload inputs
     main.exe --jobs 4 all     compute each table's cells on 4 domains
     main.exe --metrics m.json also dump per-cell telemetry (stall
                               attribution, pass metrics, pool stats)
     main.exe --engine auto    cell timing engine: execute, replay or
                               auto (see Experiments.engine)
     main.exe --save sweep.json  append this run's wall times (per
                               experiment and total, with the trace-cache
                               and timing-memo counters) to a
                               machine-readable JSON log
     main.exe --keep 9         with --save: trim the log to the newest
                               9 runs per engine at write time (default:
                               keep all)
     main.exe --store DIR      on-disk trace store: recorded traces
                               persist and later runs replay from disk
     main.exe --no-timing-memo disable the superblock timing memo
                               inside replay (A/B switch; identical
                               tables)
     main.exe --save sweep.json --assert-replay-dominates
                               after saving, compare the log's replay
                               runs against its execute runs — medians
                               over every run of each engine — and exit
                               1 unless replay won (strictly on the
                               total, with a small per-experiment
                               jitter allowance)
     main.exe bechamel         Bechamel micro-timings, one Test.make per
                               experiment (times the regeneration code)

   Flags may appear anywhere relative to the experiment ids.
   Tables are byte-identical for every --jobs value (the fan-out is
   deterministic and every cell is a memoised pure computation).

   Speedups follow the paper: base = 1-issue processor with unlimited
   registers and conventional scalar optimisation. *)

let ids =
  [
    "table1";
    "fig7";
    "fig8-int";
    "fig8-fp";
    "fig9-int";
    "fig9-fp";
    "fig10";
    "fig11";
    "fig12";
    "fig13";
    "ablation-models";
    "ablation-combine";
    "ablation-unroll";
  ]

(** Print one experiment and return its wall time, for [--save]. *)
let print_experiment ctx id =
  let t0 = Unix.gettimeofday () in
  (match Rc_harness.Experiments.by_id ctx id with
  | Some t -> Rc_harness.Experiments.print_table Fmt.stdout t
  | None -> Fmt.epr "unknown experiment %s@." id);
  Unix.gettimeofday () -. t0

(* --- --save: machine-readable sweep wall-time log --------------------- *)

(** Append one run record to the JSON list in [path] (created if absent;
    an unreadable or non-list file is replaced, with a warning). *)
let save_sweep path ~scale ~jobs ~engine ~total_s ~timings ~stats ~keep =
  let open Rc_obs.Json in
  let previous =
    if not (Sys.file_exists path) then []
    else
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match of_string text with
      | Ok (List runs) -> runs
      | Ok _ | Error _ ->
          Fmt.epr "%s: not a JSON list of runs, starting a fresh log@." path;
          []
  in
  let run =
    Obj
      [
        ("ts", Float (Unix.gettimeofday ()));
        ("scale", Int scale);
        ("jobs", Int jobs);
        ("engine", Str (Rc_harness.Experiments.engine_name engine));
        ("total_wall_s", Float total_s);
        ( "experiments",
          List
            (List.map
               (fun (id, s) -> Obj [ ("id", Str id); ("wall_s", Float s) ])
               timings) );
        ( "trace_cache",
          Obj
            [
              ("hits", Int stats.Rc_harness.Experiments.hits);
              ("misses", Int stats.Rc_harness.Experiments.misses);
              ("recorded", Int stats.Rc_harness.Experiments.recorded);
              ("unsafe", Int stats.Rc_harness.Experiments.unsafe);
              ("bytes", Int stats.Rc_harness.Experiments.bytes);
              ("store_hits", Int stats.Rc_harness.Experiments.store_hits);
              ("seg_hits", Int stats.Rc_harness.Experiments.seg_hits);
              ("seg_misses", Int stats.Rc_harness.Experiments.seg_misses);
              ( "seg_fallbacks",
                Int stats.Rc_harness.Experiments.seg_fallbacks );
              ("memo_bytes", Int stats.Rc_harness.Experiments.memo_bytes);
            ] );
      ]
  in
  (* --keep N: bound the committed log's growth — retain only the
     newest N runs per engine (list order is append order).  The
     default keeps everything. *)
  let trim runs =
    match keep with
    | None -> runs
    | Some n ->
        let engine_of r =
          match Rc_obs.Json.member "engine" r with
          | Some (Str e) -> e
          | _ -> ""
        in
        let counts = Hashtbl.create 4 in
        List.iter
          (fun r ->
            let e = engine_of r in
            Hashtbl.replace counts e
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
          runs;
        (* Walk oldest-first, dropping while an engine is over budget. *)
        List.filter
          (fun r ->
            let e = engine_of r in
            let c = Option.value ~default:0 (Hashtbl.find_opt counts e) in
            if c > n then begin
              Hashtbl.replace counts e (c - 1);
              false
            end
            else true)
          runs
  in
  (* Atomic replacement: a crash (or ENOSPC) mid-write must never
     truncate the accumulated sweep log.  [write_atomic] stages the
     bytes in a temp file in the same directory and renames over the
     destination only after an error-reporting close. *)
  let kept = trim (previous @ [ run ]) in
  Rc_obs.Fsio.write_atomic path (fun oc ->
      output_string oc (to_string (List kept));
      output_char oc '\n');
  Fmt.epr "sweep timings appended to %s (%d run%s kept)@." path
    (List.length kept)
    (if List.length kept = 1 then "" else "s")

(* --- --assert-replay-dominates: the perf gate ------------------------- *)

let read_json_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Rc_obs.Json.of_string text

let fail_dominates fmt =
  Format.kasprintf
    (fun m ->
      Fmt.epr "bench: --assert-replay-dominates: %s@." m;
      exit 1)
    fmt

(** The replay engine's reason to exist: over every execute and replay
    run in the sweep log (re-run each engine a few times to average
    over machine noise — single sweeps on a small box jitter by more
    than the replay margin), the median replay total wall time must be
    strictly below the median execute total, and no single experiment's
    median may be slower beyond a small jitter allowance (50 ms or 10%
    of the execute row, whichever is larger — tiny static tables
    bounce around the timer's noise floor).  The superblock timing
    memo raised the bar from "strictly below" to a real margin: the
    replay median must come in at or below [dominate_factor] of the
    execute median.  Exits 1 with the offending rows otherwise. *)
let dominate_factor = 0.75

let assert_replay_dominates path =
  let open Rc_obs.Json in
  let runs =
    match read_json_file path with
    | Ok (List runs) -> runs
    | Ok _ -> fail_dominates "%s is not a JSON list of runs" path
    | Error m -> fail_dominates "cannot read %s: %s" path m
  in
  let of_engine name =
    List.filter
      (fun r ->
        match member "engine" r with Some (Str e) -> e = name | _ -> false)
      runs
  in
  let exs = of_engine "execute" and rps = of_engine "replay" in
  if exs = [] then fail_dominates "no execute run in %s to compare against" path;
  if rps = [] then fail_dominates "no replay run in %s" path;
  let int_field r name =
    match member name r with
    | Some (Int v) -> v
    | _ -> fail_dominates "run in %s lacks integer field %S" path name
  and float_field r name =
    match member name r with
    | Some (Float v) -> v
    | Some (Int v) -> float_of_int v
    | _ -> fail_dominates "run in %s lacks numeric field %S" path name
  in
  let r0 = List.hd exs in
  List.iter
    (fun f ->
      List.iter
        (fun r ->
          if int_field r f <> int_field r0 f then
            fail_dominates
              "execute and replay runs in %s differ in %s (%d vs %d) — not \
               comparable"
              path f (int_field r0 f) (int_field r f))
        (exs @ rps))
    [ "scale"; "jobs" ];
  let median = function
    | [] -> fail_dominates "empty sample in %s" path
    | vs ->
        let a = Array.of_list vs in
        Array.sort compare a;
        let n = Array.length a in
        if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.
  in
  let timings r =
    match member "experiments" r with
    | Some (List es) ->
        List.map (fun e -> (member "id" e, float_field e "wall_s")) es
    | _ -> fail_dominates "run in %s lacks an experiments list" path
  in
  let med_rows rs =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun r ->
        List.iter
          (fun (id, s) ->
            match Hashtbl.find_opt tbl id with
            | Some cell -> cell := s :: !cell
            | None ->
                Hashtbl.add tbl id (ref [ s ]);
                order := id :: !order)
          (timings r))
      rs;
    List.rev_map (fun id -> (id, median !(Hashtbl.find tbl id))) !order
  in
  let ex_rows = med_rows exs in
  List.iter
    (fun (id, rp_s) ->
      match List.assoc_opt id ex_rows with
      | None -> ()
      | Some ex_s ->
          let slack = Float.max 0.05 (0.1 *. ex_s) in
          if rp_s > ex_s +. slack then
            fail_dominates
              "%s: median replay %.3fs vs execute %.3fs (slack %.3fs)"
              (match id with Some (Str s) -> s | _ -> "?")
              rp_s ex_s slack)
    (med_rows rps);
  let med_total rs = median (List.map (fun r -> float_field r "total_wall_s") rs) in
  let ex_total = med_total exs and rp_total = med_total rps in
  if rp_total > dominate_factor *. ex_total then
    fail_dominates
      "total: median replay %.3fs is not within %.2fx of execute %.3fs \
       (bar %.3fs)"
      rp_total dominate_factor ex_total
      (dominate_factor *. ex_total);
  Fmt.epr
    "replay dominates execute: median total %.3fs vs %.3fs (%.2fx, bar \
     %.2fx; %d+%d runs)@."
    rp_total ex_total (rp_total /. ex_total) dominate_factor
    (List.length rps) (List.length exs)

(* --- Bechamel: one Test.make per table/figure ------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  (* Each test times the regeneration of one experiment's core
     compile+simulate cell on a fresh context: the full 12-benchmark
     sweeps are macro-scale, so per-cell timing keeps Bechamel's
     iterations meaningful. *)
  let cell ~rc ~issue ?(load = 2) ?(connect = 0) ?(extra_stage = false)
      ?(mem_channels = 2) ?(model = Rc_core.Model.default) ?(combine = true)
      bench_name =
    let b = Rc_workloads.Registry.find bench_name in
    let lat = Rc_isa.Latency.v ~load ~connect () in
    fun () ->
      let ctx = Rc_harness.Experiments.create ~scale:1 () in
      ignore
        (Rc_harness.Experiments.run ctx b
           (Rc_harness.Experiments.reg_opts b ~label:16 ~rc ~issue
              ~mem_channels ~lat ~model ~combine ~extra_stage ()))
  in
  [
    Test.make ~name:"table1" (Staged.stage (fun () ->
        ignore (Rc_harness.Experiments.table1 ())));
    Test.make ~name:"fig7-cell" (Staged.stage (fun () ->
        let ctx = Rc_harness.Experiments.create ~scale:1 () in
        let b = Rc_workloads.Registry.find "cmp" in
        ignore
          (Rc_harness.Experiments.run ctx b
             (Rc_harness.Experiments.unlimited_opts ~issue:4 ()))));
    Test.make ~name:"fig8-cell" (Staged.stage (cell ~rc:true ~issue:4 "eqn"));
    Test.make ~name:"fig9-cell" (Staged.stage (cell ~rc:false ~issue:4 "eqn"));
    Test.make ~name:"fig10-cell"
      (Staged.stage (cell ~rc:true ~issue:8 ~mem_channels:4 "lex"));
    Test.make ~name:"fig11-cell" (Staged.stage (cell ~rc:true ~issue:4 ~load:4 "lex"));
    Test.make ~name:"fig12-cell"
      (Staged.stage (cell ~rc:true ~issue:4 ~connect:1 ~extra_stage:true "grep"));
    Test.make ~name:"fig13-cell"
      (Staged.stage (cell ~rc:true ~issue:4 ~mem_channels:4 "grep"));
    Test.make ~name:"ablation-models-cell"
      (Staged.stage (cell ~rc:true ~issue:4 ~model:Rc_core.Model.No_reset "cmp"));
    Test.make ~name:"ablation-combine-cell"
      (Staged.stage (cell ~rc:true ~issue:4 ~combine:false "cmp"));
    Test.make ~name:"ablation-unroll-cell"
      (Staged.stage (fun () ->
           let ctx = Rc_harness.Experiments.create ~scale:1 () in
           let b = Rc_workloads.Registry.find "lex" in
           ignore
             (Rc_harness.Experiments.run ctx b
                (Rc_harness.Experiments.reg_opts b ~label:32 ~rc:true
                   ~opt:(Rc_opt.Pass.Ilp 8) ()))));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 0.8) ()
  in
  let tests =
    Test.make_grouped ~name:"experiments" ~fmt:"%s %s" (bechamel_tests ())
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "@.== Bechamel micro-timings (ns per regeneration cell) ==@.";
  (* Hashtbl.iter order is hash order: sort by test name so runs are
     comparable (and diffable) across invocations. *)
  Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some (est :: _) -> Fmt.pr "%-36s %12.0f ns/run@." name est
         | _ -> Fmt.pr "%-36s (no estimate)@." name)

(* --- entry -------------------------------------------------------------- *)

let usage () =
  Fmt.epr
    "usage: main.exe [--scale N] [--jobs N] [--engine execute|replay|auto] \
     [--metrics FILE] [--store DIR] [--no-timing-memo] [--save FILE \
     [--keep N] [--assert-replay-dominates]] [all | bechamel | <id>...]@.";
  Fmt.epr "experiments: %s@." (String.concat " " ids);
  exit 1

(** [int_flag flag arg]: a positive integer argument, or a usage error —
    never a bare [int_of_string] exception. *)
let int_flag flag = function
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ ->
          Fmt.epr "%s expects a positive integer, got %S@." flag s;
          usage ())
  | None ->
      Fmt.epr "%s needs an argument@." flag;
      usage ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1 in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let metrics = ref None in
  let engine = ref Rc_harness.Experiments.Auto in
  let save = ref None in
  let assert_dom = ref false in
  let keep = ref None in
  let store_dir = ref None in
  let timing_memo = ref true in
  (* Flags may appear before, between or after the experiment ids. *)
  let rec parse acc = function
    | "--scale" :: rest ->
        let n, rest =
          match rest with
          | v :: tl -> (int_flag "--scale" (Some v), tl)
          | [] -> (int_flag "--scale" None, [])
        in
        scale := n;
        parse acc rest
    | "--jobs" :: rest ->
        let n, rest =
          match rest with
          | v :: tl -> (int_flag "--jobs" (Some v), tl)
          | [] -> (int_flag "--jobs" None, [])
        in
        jobs := n;
        parse acc rest
    | "--metrics" :: rest -> (
        match rest with
        | v :: tl ->
            metrics := Some v;
            parse acc tl
        | [] ->
            Fmt.epr "--metrics needs an argument@.";
            usage ())
    | "--engine" :: rest -> (
        match rest with
        | v :: tl -> (
            match Rc_harness.Experiments.engine_of_string v with
            | Some e ->
                engine := e;
                parse acc tl
            | None ->
                Fmt.epr "--engine expects execute, replay or auto, got %S@." v;
                usage ())
        | [] ->
            Fmt.epr "--engine needs an argument@.";
            usage ())
    | "--save" :: rest -> (
        match rest with
        | v :: tl ->
            save := Some v;
            parse acc tl
        | [] ->
            Fmt.epr "--save needs an argument@.";
            usage ())
    | "--assert-replay-dominates" :: rest ->
        assert_dom := true;
        parse acc rest
    | "--keep" :: rest ->
        let n, rest =
          match rest with
          | v :: tl -> (int_flag "--keep" (Some v), tl)
          | [] -> (int_flag "--keep" None, [])
        in
        keep := Some n;
        parse acc rest
    | "--store" :: rest -> (
        match rest with
        | v :: tl ->
            store_dir := Some v;
            parse acc tl
        | [] ->
            Fmt.epr "--store needs an argument@.";
            usage ())
    | "--no-timing-memo" :: rest ->
        timing_memo := false;
        parse acc rest
    | x :: _ when String.length x > 1 && x.[0] = '-' ->
        Fmt.epr "unknown option %s@." x;
        usage ()
    | x :: rest -> parse (x :: acc) rest
    | [] -> List.rev acc
  in
  let selected = parse [] args in
  match selected with
  | [ "bechamel" ] -> run_bechamel ()
  | sel ->
      let sel = match sel with [] | [ "all" ] -> ids | sel -> sel in
      (match List.filter (fun id -> not (List.mem id ids)) sel with
      | [] -> ()
      | unknown ->
          Fmt.epr "unknown experiment%s: %s@."
            (if List.length unknown > 1 then "s" else "")
            (String.concat " " unknown);
          usage ());
      let ctx =
        Rc_harness.Experiments.create ~scale:!scale ~jobs:!jobs ~engine:!engine
          ~timing_memo:!timing_memo ()
      in
      (match !store_dir with
      | None -> ()
      | Some dir ->
          let st = Rc_serve.Store.open_store ~dir () in
          Rc_harness.Experiments.set_store ctx ~probe:(Rc_serve.Store.probe st)
            ~publish:(Rc_serve.Store.publish st));
      Fun.protect
        ~finally:(fun () -> Rc_harness.Experiments.shutdown ctx)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let timings = List.map (fun id -> (id, print_experiment ctx id)) sel in
          let total_s = Unix.gettimeofday () -. t0 in
          (match !save with
          | None ->
              if !assert_dom then begin
                Fmt.epr "--assert-replay-dominates requires --save FILE@.";
                usage ()
              end
          | Some path ->
              (try
                 save_sweep path ~scale:!scale ~jobs:!jobs ~engine:!engine
                   ~total_s ~timings ~keep:!keep
                   ~stats:(Rc_harness.Experiments.engine_stats ctx)
               with Sys_error m ->
                 Fmt.epr "bench: cannot save sweep log: %s@." m;
                 exit 1);
              if !assert_dom then assert_replay_dominates path);
          (* Dump the telemetry while the pool is still alive so its
             per-domain stats are included. *)
          match !metrics with
          | None -> ()
          | Some path -> (
              try
                Rc_obs.Fsio.write_atomic path (fun oc ->
                    output_string oc
                      (Rc_obs.Json.to_string
                         (Rc_harness.Experiments.metrics_json ctx));
                    output_char oc '\n');
                Fmt.epr "metrics written to %s@." path
              with Sys_error m ->
                Fmt.epr "bench: cannot write metrics: %s@." m;
                exit 1))
