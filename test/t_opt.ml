(* Tests for rc_opt: each pass individually (transformation happened) and
   semantics preservation against the reference interpreter. *)

open Rc_isa
open Rc_ir
module B = Builder

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let output_of prog = (Rc_interp.Interp.run prog).Rc_interp.Interp.output

(** Build the same program twice; optimise one; outputs must agree. *)
let preserves build pass =
  let reference = output_of (build ()) in
  let optimised = build () in
  pass optimised;
  Alcotest.(check (list int64)) "semantics preserved" reference (output_of optimised)

let op_count (f : Func.t) =
  List.fold_left (fun n (b : Block.t) -> n + List.length b.Block.ops) 0 f.Func.blocks

(* --- LVN ---------------------------------------------------------------- *)

let test_lvn_constant_folding () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 6 in
        let y = B.cint b 7 in
        let p = B.mul b x y in
        B.emit b p;
        B.halt b)
  in
  Rc_opt.Lvn.run prog;
  let has_li42 =
    List.exists
      (fun op -> match op with Op.Li (_, 42L) -> true | _ -> false)
      (Func.entry f).Block.ops
  in
  check_bool "6*7 folded to li 42" true has_li42

let test_lvn_cse () =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:8 ();
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        (* an unknown value, so constant folding cannot intervene *)
        let x = B.load b (B.addr b "g") in
        let y = B.fresh b Reg.Int in
        B.emit_op b (Op.Alu (Opcode.Add, y, Op.V x, Op.V x));
        let z = B.fresh b Reg.Int in
        B.emit_op b (Op.Alu (Opcode.Add, z, Op.V x, Op.V x));
        B.emit b y;
        B.emit b z;
        B.halt b)
  in
  Rc_opt.Lvn.run prog;
  let movs =
    List.length
      (List.filter
         (fun op -> match op with Op.Mov _ -> true | _ -> false)
         (Func.entry f).Block.ops)
  in
  check_bool "second add became a move" true (movs >= 1)

let test_lvn_redundant_load () =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:16 ();
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let p = B.addr b "g" in
        let a = B.load b p in
        let bb = B.load b p in
        B.emit b (B.add b a bb);
        B.halt b)
  in
  Rc_opt.Lvn.run prog;
  let loads =
    List.length
      (List.filter
         (fun op -> match op with Op.Ld _ -> true | _ -> false)
         (Func.entry f).Block.ops)
  in
  check "one load remains" 1 loads

let test_lvn_load_invalidation () =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:16 ();
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let p = B.addr b "g" in
        let a = B.load b p in
        B.store b ~src:(B.addi b a 1L) p;
        let c = B.load b p in
        B.emit b c;
        B.halt b)
  in
  Rc_opt.Lvn.run prog;
  let loads =
    List.length
      (List.filter
         (fun op -> match op with Op.Ld _ -> true | _ -> false)
         (Func.entry f).Block.ops)
  in
  check "store invalidates the load" 2 loads

let test_lvn_branch_folding () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 1 in
        let y = B.cint b 2 in
        B.if_ b Opcode.Lt x y
          ~then_:(fun () -> B.emit b (B.cint b 111))
          ~else_:(fun () -> B.emit b (B.cint b 222))
          ();
        B.halt b)
  in
  Rc_opt.Lvn.run prog;
  let folded =
    match (Func.entry f).Block.term with Op.Jmp _ -> true | _ -> false
  in
  check_bool "constant branch folded to jmp" true folded

let test_lvn_preserves () =
  preserves
    (fun () ->
      let prog = B.program ~entry:"main" in
      B.global prog "g" ~bytes:64 ();
      let _ =
        B.define prog "main" ~params:[] (fun b _ ->
            let p = B.addr b "g" in
            let acc = B.cint b 0 in
            B.for_n b ~start:0 ~stop:6 (fun i ->
                let x = B.mul b i i in
                let y = B.mul b i i in
                B.store b ~src:(B.add b x y) (B.elem8 b p i);
                B.assign b acc (B.add b acc (B.load b (B.elem8 b p i))));
            B.emit b acc;
            B.halt b)
      in
      prog)
    Rc_opt.Lvn.run

(* --- DCE ----------------------------------------------------------------- *)

let test_dce_removes_dead () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let _dead1 = B.cint b 1 in
        let dead2 = B.cint b 2 in
        let _dead3 = B.addi b dead2 5L in
        let live = B.cint b 3 in
        B.emit b live;
        B.halt b)
  in
  Rc_opt.Dce.run prog;
  check "only live chain remains" 2 (op_count f) (* li + emit *)

let test_dce_keeps_stores () =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:8 ();
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let p = B.addr b "g" in
        let x = B.cint b 5 in
        B.store b ~src:x p;
        B.halt b)
  in
  Rc_opt.Dce.run prog;
  check "store chain kept" 3 (op_count f)

(* --- copy propagation ------------------------------------------------------ *)

let test_copyprop () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 4 in
        let y = B.fresh b Reg.Int in
        B.mov b ~dst:y ~src:x;
        B.emit b (B.addi b y 1L);
        B.halt b)
  in
  Rc_opt.Copyprop.run prog;
  Rc_opt.Dce.run prog;
  let movs =
    List.length
      (List.filter
         (fun op -> match op with Op.Mov _ -> true | _ -> false)
         (Func.entry f).Block.ops)
  in
  check "copy eliminated" 0 movs

let test_copyprop_stops_at_redefinition () =
  preserves
    (fun () ->
      let prog = B.program ~entry:"main" in
      let _ =
        B.define prog "main" ~params:[] (fun b _ ->
            let x = B.cint b 4 in
            let y = B.fresh b Reg.Int in
            B.mov b ~dst:y ~src:x;
            B.seti b x 99L (* x redefined: y must keep the old value *);
            B.emit b y;
            B.emit b x;
            B.halt b)
      in
      prog)
    (fun p ->
      Rc_opt.Copyprop.run p;
      Rc_opt.Dce.run p)

(* --- LICM ------------------------------------------------------------------ *)

let licm_prog () =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:64 ();
  let _ =
    B.define prog "main" ~params:[] (fun b _ ->
        let k = B.cint b 21 in
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:8 (fun i ->
            let inv = B.muli b k 2L (* loop invariant *) in
            B.assign b acc (B.add b acc (B.add b inv i)));
        B.emit b acc;
        B.halt b)
  in
  prog

let test_licm_hoists () =
  let prog = licm_prog () in
  let f = Prog.find_func prog "main" in
  let before =
    match Rc_dataflow.Loops.find_simple f with
    | [ s ] -> List.length s.Rc_dataflow.Loops.body_blk.Block.ops
    | _ -> Alcotest.fail "no simple loop"
  in
  Rc_opt.Licm.run prog;
  match Rc_dataflow.Loops.find_simple f with
  | [ s ] ->
      check_bool "body shrank" true
        (List.length s.Rc_dataflow.Loops.body_blk.Block.ops < before)
  | _ -> Alcotest.fail "loop destroyed"

let test_licm_preserves () = preserves licm_prog Rc_opt.Licm.run

let test_licm_does_not_hoist_stores () =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:8 ();
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let p = B.addr b "g" in
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:4 (fun i ->
            B.store b ~src:i p;
            (* load is NOT invariant: the store changes g *)
            B.assign b acc (B.add b acc (B.load b p)));
        B.emit b acc;
        B.halt b)
  in
  let loads_in_body () =
    match Rc_dataflow.Loops.find_simple f with
    | [ s ] ->
        List.length
          (List.filter
             (fun op -> match op with Op.Ld _ -> true | _ -> false)
             s.Rc_dataflow.Loops.body_blk.Block.ops)
    | _ -> -1
  in
  let before = loads_in_body () in
  Rc_opt.Licm.run prog;
  check "loads stay in body" before (loads_in_body ())

(* --- unrolling ---------------------------------------------------------------- *)

let unroll_prog n =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:(8 * 64) ();
  let _ =
    B.define prog "main" ~params:[] (fun b _ ->
        let p = B.addr b "g" in
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:n (fun i ->
            let x = B.mul b i i in
            B.store b ~src:x (B.elem8 b p (B.andi b i 63L));
            B.assign b acc (B.add b acc x));
        B.emit b acc;
        let fold = B.cint b 0 in
        B.for_n b ~start:0 ~stop:64 (fun i ->
            B.assign b fold (B.add b fold (B.load b (B.elem8 b p i))));
        B.emit b fold;
        B.halt b)
  in
  prog

let test_unroll_creates_big_block () =
  let prog = unroll_prog 40 in
  let f = Prog.find_func prog "main" in
  let biggest () =
    List.fold_left
      (fun m (b : Block.t) -> max m (List.length b.Block.ops))
      0 f.Func.blocks
  in
  let before = biggest () in
  Rc_opt.Unroll.run ~factor:4 prog;
  check_bool "unrolled block bigger" true (biggest () > 3 * before)

(* unrolling must be exact for trip counts that hit every residue class *)
let test_unroll_preserves_trip_counts () =
  List.iter
    (fun n -> preserves (fun () -> unroll_prog n) (Rc_opt.Unroll.run ~factor:4))
    [ 0; 1; 2; 3; 4; 5; 7; 8; 15; 16; 17 ]

let test_unroll_factor_one_noop () =
  let prog = unroll_prog 10 in
  let before = Prog.op_count prog in
  Rc_opt.Unroll.run ~factor:1 prog;
  check "factor 1 does nothing" before (Prog.op_count prog)

(* --- full pipelines -------------------------------------------------------------- *)

let test_pipelines_preserve_workloads () =
  (* classical and ILP pipelines preserve the semantics of every
     workload kernel *)
  List.iter
    (fun (bench : Rc_workloads.Wutil.bench) ->
      let reference = output_of (bench.Rc_workloads.Wutil.build 1) in
      List.iter
        (fun level ->
          let prog = bench.Rc_workloads.Wutil.build 1 in
          Rc_opt.Pass.apply level prog;
          Alcotest.(check (list int64))
            (bench.Rc_workloads.Wutil.name ^ " under "
           ^ Rc_opt.Pass.level_to_string level)
            reference (output_of prog))
        [ Rc_opt.Pass.Classical; Rc_opt.Pass.Ilp 2; Rc_opt.Pass.Ilp 4 ])
    [
      Rc_workloads.W_cmp.bench;
      Rc_workloads.W_eqn.bench;
      Rc_workloads.W_yacc.bench;
      Rc_workloads.W_tomcatv.bench;
    ]

let test_ilp_reduces_dynamic_ops () =
  (* cleanup passes should never increase the dynamic op count *)
  let prog = unroll_prog 64 in
  let before = (Rc_interp.Interp.run (unroll_prog 64)).Rc_interp.Interp.dyn_ops in
  Rc_opt.Pass.classical prog;
  let after = (Rc_interp.Interp.run prog).Rc_interp.Interp.dyn_ops in
  check_bool "classical opt not slower" true (after <= before)

let suite =
  [
    ("lvn constant folding", `Quick, test_lvn_constant_folding);
    ("lvn cse", `Quick, test_lvn_cse);
    ("lvn redundant load", `Quick, test_lvn_redundant_load);
    ("lvn store invalidates loads", `Quick, test_lvn_load_invalidation);
    ("lvn folds constant branches", `Quick, test_lvn_branch_folding);
    ("lvn preserves semantics", `Quick, test_lvn_preserves);
    ("dce removes dead chains", `Quick, test_dce_removes_dead);
    ("dce keeps stores", `Quick, test_dce_keeps_stores);
    ("copy propagation", `Quick, test_copyprop);
    ("copyprop stops at redefinition", `Quick, test_copyprop_stops_at_redefinition);
    ("licm hoists invariants", `Quick, test_licm_hoists);
    ("licm preserves semantics", `Quick, test_licm_preserves);
    ("licm respects stores", `Quick, test_licm_does_not_hoist_stores);
    ("unroll grows blocks", `Quick, test_unroll_creates_big_block);
    ("unroll exact for all trip counts", `Quick, test_unroll_preserves_trip_counts);
    ("unroll factor 1 no-op", `Quick, test_unroll_factor_one_noop);
    ("pipelines preserve workloads", `Quick, test_pipelines_preserve_workloads);
    ("classical opt not slower", `Quick, test_ilp_reduces_dynamic_ops);
  ]
