(* Tests for rc_core: the register mapping table with its four
   automatic-reset models, connect semantics, the upward-compatibility
   machinery (PSW, jsr/rts reset, context formats) and the zero-cycle
   forwarding of Figures 5 and 6. *)

open Rc_isa
open Rc_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let file_4_12 = Reg.file ~core:4 ~total:12
let file_8_32 = Reg.file ~core:8 ~total:32

(* --- basic mapping ------------------------------------------------------- *)

let test_home_initial () =
  let t = Map_table.create file_8_32 in
  check_bool "home at power-up" true (Map_table.is_home t);
  for i = 0 to 7 do
    check "read home" i (Map_table.read t i);
    check "write home" i (Map_table.write t i)
  done

let test_connect_use_def () =
  let t = Map_table.create file_4_12 in
  Map_table.connect_use t ~ri:2 ~rp:10;
  check "read redirected" 10 (Map_table.read t 2);
  check "write unchanged" 2 (Map_table.write t 2);
  Map_table.connect_def t ~ri:3 ~rp:7;
  check "write redirected" 7 (Map_table.write t 3);
  check "read unchanged" 3 (Map_table.read t 3);
  check "stats" 2 t.Map_table.connects_applied

let test_paper_figure2 () =
  (* Figure 2: 4 core + 8 extended; connects steer an add to Rp10, Rp7
     and Rp6. *)
  let t = Map_table.create file_4_12 in
  Map_table.connect_use t ~ri:1 ~rp:10;
  Map_table.connect_use t ~ri:2 ~rp:7;
  Map_table.connect_def t ~ri:0 ~rp:6;
  check "src1" 10 (Map_table.read t 1);
  check "src2" 7 (Map_table.read t 2);
  check "dst" 6 (Map_table.write t 0)

let test_bounds () =
  let t = Map_table.create file_4_12 in
  Alcotest.check_raises "index range"
    (Invalid_argument "Map_table: index out of range") (fun () ->
      ignore (Map_table.read t 4));
  Alcotest.check_raises "phys range"
    (Invalid_argument "Map_table: physical register out of range") (fun () ->
      Map_table.connect_use t ~ri:0 ~rp:12)

let test_apply_combined () =
  let t = Map_table.create file_4_12 in
  let c1 = { Insn.cmap = Insn.Write; ri = 1; rp = 9; ccls = Reg.Int } in
  let c2 = { Insn.cmap = Insn.Read; ri = 2; rp = 8; ccls = Reg.Int } in
  Map_table.apply t c1;
  Map_table.apply t c2;
  check "def applied" 9 (Map_table.write t 1);
  check "use applied" 8 (Map_table.read t 2)

(* --- the four automatic-reset models (paper Figure 3) -------------------- *)

let setup_model model =
  let t = Map_table.create ~model file_4_12 in
  (* Rix connected: read -> 10, write -> 11 *)
  Map_table.connect_use t ~ri:2 ~rp:10;
  Map_table.connect_def t ~ri:2 ~rp:11;
  t

let test_model1_no_reset () =
  let t = setup_model Model.No_reset in
  Map_table.note_write t 2;
  check "read unchanged" 10 (Map_table.read t 2);
  check "write unchanged" 11 (Map_table.write t 2)

let test_model2_write_reset () =
  let t = setup_model Model.Write_reset in
  Map_table.note_write t 2;
  check "read unchanged" 10 (Map_table.read t 2);
  check "write reset to home" 2 (Map_table.write t 2)

let test_model3_write_reset_read_update () =
  let t = setup_model Model.Write_reset_read_update in
  Map_table.note_write t 2;
  (* the read map receives the previous write map: the written value is
     readable with no extra connect-use *)
  check "read gets old write map" 11 (Map_table.read t 2);
  check "write reset to home" 2 (Map_table.write t 2)

let test_model4_read_write_reset () =
  let t = setup_model Model.Read_write_reset in
  Map_table.note_write t 2;
  check "read reset" 2 (Map_table.read t 2);
  check "write reset" 2 (Map_table.write t 2)

let test_model3_paper_example () =
  (* Section 3's example: R9, R10 extended; 8 core registers.
       connect_use Ri6,Rp9 ; 1) Ri2 <- Ri2 + Ri6
       connect_def Ri7,Rp10; 2) Ri7 <- Ri3 + 1
                             3) Ri4 <- Ri7 + Ri5
     No connect-use is needed before 3: writing through Ri7 moved the
     write map into the read map. *)
  let t = Map_table.create ~model:Model.Write_reset_read_update (Reg.file ~core:8 ~total:16) in
  Map_table.connect_use t ~ri:6 ~rp:9;
  check "1: reads Rp9" 9 (Map_table.read t 6);
  Map_table.note_write t 2 (* instruction 1 writes Ri2 *);
  Map_table.connect_def t ~ri:7 ~rp:10;
  check "2: writes Rp10" 10 (Map_table.write t 7);
  Map_table.note_write t 7;
  check "3: reads Rp10 with no connect" 10 (Map_table.read t 7);
  check "write map back home" 7 (Map_table.write t 7)

(* auto_resets must count only writes that actually changed a map
   entry: with every entry at home (the steady state of core-section
   traffic) a write performs no automatic connection, and model 1 never
   touches the counter at all. *)

let test_auto_reset_accounting () =
  let expect model ~first ~settled =
    (* writes through a connected entry: [first] changes after the first
       write, [settled] is the fixpoint once repeated writes stop
       changing the entry (model 3 takes a second write to carry the
       home write map into the read map) *)
    let t = setup_model model in
    Map_table.note_write t 2;
    check
      (Fmt.str "%a: connected entry" Model.pp model)
      first t.Map_table.auto_resets;
    Map_table.note_write t 2;
    Map_table.note_write t 2;
    check
      (Fmt.str "%a: repeated writes settle" Model.pp model)
      settled t.Map_table.auto_resets;
    (* writes through an entry already at home never count *)
    let t = Map_table.create ~model file_4_12 in
    Map_table.note_write t 1;
    Map_table.note_write t 1;
    check (Fmt.str "%a: home entry" Model.pp model) 0 t.Map_table.auto_resets
  in
  expect Model.No_reset ~first:0 ~settled:0;
  expect Model.Write_reset ~first:1 ~settled:1;
  expect Model.Write_reset_read_update ~first:1 ~settled:2;
  expect Model.Read_write_reset ~first:1 ~settled:1

let test_auto_reset_read_only_connection () =
  (* model 3 with only the read map diverged (write map home): the write
     still changes the read map, so it counts; model 2 changes nothing
     and must not count *)
  let diverged model =
    let t = Map_table.create ~model file_4_12 in
    Map_table.connect_use t ~ri:2 ~rp:10;
    Map_table.note_write t 2;
    t.Map_table.auto_resets
  in
  check "model 3 counts read-map repair" 1
    (diverged Model.Write_reset_read_update);
  check "model 2 ignores read-only divergence" 0 (diverged Model.Write_reset);
  check "model 4 counts read-map repair" 1 (diverged Model.Read_write_reset)

let test_model_strings () =
  List.iter
    (fun m ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Model.to_string m))
        (Option.map Model.to_string (Model.of_string (Model.to_string m))))
    Model.all;
  check "model numbers" 10
    (List.fold_left (fun a m -> a + Model.number m) 0 Model.all);
  check_bool "default is model 3" true (Model.default = Model.Write_reset_read_update)

(* --- reset and jsr/rts (section 4.1) -------------------------------------- *)

let test_reset () =
  let t = setup_model Model.No_reset in
  check_bool "dirty" false (Map_table.is_home t);
  Map_table.reset t;
  check_bool "home after reset" true (Map_table.is_home t)

let test_callee_save_corruption_scenario () =
  (* Section 4.1: map entry 5 connected to extended register 30 before a
     call; without the jsr reset the callee's callee-save spill of
     "register 5" would save register 30's contents. *)
  let file = Reg.file ~core:8 ~total:32 in
  let t = Map_table.create file in
  Map_table.connect_use t ~ri:5 ~rp:30;
  (* Without reset the callee reads the wrong register: *)
  check "stale read map" 30 (Map_table.read t 5);
  (* jsr resets the map, so the callee saves the true core register: *)
  Map_table.reset t;
  check "after jsr reset" 5 (Map_table.read t 5)

let test_index_search () =
  let t = Map_table.create file_4_12 in
  Map_table.connect_use t ~ri:3 ~rp:9;
  Alcotest.(check (option int)) "reading 9" (Some 3) (Map_table.index_reading t 9);
  Alcotest.(check (option int)) "nobody reads 8" None (Map_table.index_reading t 8);
  Map_table.connect_def t ~ri:1 ~rp:9;
  Alcotest.(check (option int)) "writing 9" (Some 1) (Map_table.index_writing t 9)

let test_copy_equal () =
  let t = setup_model Model.No_reset in
  let c = Map_table.copy t in
  check_bool "copies equal" true (Map_table.equal t c);
  Map_table.connect_use t ~ri:0 ~rp:5;
  check_bool "diverged" false (Map_table.equal t c)

(* --- PSW (sections 4.2, 4.3) ---------------------------------------------- *)

let test_psw_trap_cycle () =
  let psw = Psw.create () in
  check_bool "map on" true psw.Psw.map_enable;
  let saved = Psw.enter_trap psw in
  check_bool "map off in handler" false psw.Psw.map_enable;
  check_bool "saved copy kept enable" true saved.Psw.map_enable;
  Psw.return_from_exception psw ~saved;
  check_bool "restored" true psw.Psw.map_enable

let test_psw_arch_flag () =
  let psw = Psw.create ~extended_arch:false () in
  check_bool "original program" false psw.Psw.extended_arch;
  check_bool "original format" true (Context.format_of_psw psw = Context.Original)

(* --- context switching (section 4.2) --------------------------------------- *)

let make_view ?(extended_arch = true) () =
  let ifile = Reg.file ~core:8 ~total:16 and ffile = Reg.file ~core:4 ~total:8 in
  {
    Context.iregs = Array.init 16 Int64.of_int;
    fregs = Array.init 8 float_of_int;
    imap = Map_table.create ifile;
    fmap = Map_table.create ffile;
    psw = Psw.create ~extended_arch ();
  }

let test_context_roundtrip_extended () =
  let view = make_view () in
  Map_table.connect_use view.Context.imap ~ri:3 ~rp:12;
  Map_table.connect_def view.Context.fmap ~ri:1 ~rp:6;
  let saved = Context.save view in
  check_bool "extended format" true (saved.Context.format = Context.Extended);
  (* clobber everything *)
  Array.fill view.Context.iregs 0 16 0L;
  Array.fill view.Context.fregs 0 8 0.0;
  Map_table.reset view.Context.imap;
  Map_table.reset view.Context.fmap;
  Context.restore view saved;
  Alcotest.(check int64) "core reg restored" 5L view.Context.iregs.(5);
  Alcotest.(check int64) "extended reg restored" 12L view.Context.iregs.(12);
  Alcotest.(check (float 0.0)) "fp restored" 6.0 view.Context.fregs.(6);
  check "connection restored" 12 (Map_table.read view.Context.imap 3);
  check "fp connection restored" 6 (Map_table.write view.Context.fmap 1)

let test_context_original_smaller () =
  let ext = Context.save (make_view ()) in
  let orig = Context.save (make_view ~extended_arch:false ()) in
  check_bool "original format" true (orig.Context.format = Context.Original);
  check_bool "original is smaller" true (Context.words orig < Context.words ext);
  (* original format: core regs + psw only *)
  check "original words" (8 + 4 + 1) (Context.words orig)

let test_context_original_resets_maps () =
  let view = make_view ~extended_arch:false () in
  let saved = Context.save view in
  (* a previous occupant left connections behind *)
  Map_table.connect_use view.Context.imap ~ri:2 ~rp:15;
  Context.restore view saved;
  check_bool "maps reset for original program" true
    (Map_table.is_home view.Context.imap)

(* --- forwarding (sections 2.4, Figures 5 and 6) ----------------------------- *)

let figure5_setup () =
  (* 2-entry table, 3-entry file.  Map location 0 initially reads Rp1;
     regfile: Rp0=7, Rp1=40, Rp2=55. *)
  let file = Reg.file ~core:4 ~total:8 in
  let t = Map_table.create file in
  Map_table.connect_use t ~ri:0 ~rp:1;
  let regs = Array.make 8 0L in
  regs.(0) <- 7L;
  regs.(1) <- 40L;
  regs.(2) <- 55L;
  (t, regs)

let group =
  [
    Forwarding.Connect [ { Insn.cmap = Insn.Read; ri = 0; rp = 2; ccls = Reg.Int } ];
    Forwarding.Op { srcs = [ 0 ]; dst = None };
  ]

let test_figure5_fetch_after_dispatch () =
  let t, regs = figure5_setup () in
  match Forwarding.issue_group Forwarding.Fetch_after_dispatch t regs group with
  | [ r ] ->
      check "stale number" 1 (List.hd r.Forwarding.stale_phys);
      check "forwarded number" 2 (List.hd r.Forwarding.phys);
      Alcotest.(check int64) "correct value" 55L (List.hd r.Forwarding.values);
      check_bool "was forwarded" true r.Forwarding.forwarded;
      check_bool "no stall" false r.Forwarding.needs_stall
  | _ -> Alcotest.fail "expected one op resolution"

let test_figure6_fetch_before_dispatch () =
  let t, regs = figure5_setup () in
  match Forwarding.issue_group Forwarding.Fetch_before_dispatch t regs group with
  | [ r ] ->
      Alcotest.(check int64) "value forwarded from connect's decode read"
        55L (List.hd r.Forwarding.values);
      check_bool "no stall: explicit connect forwards data" false
        r.Forwarding.needs_stall
  | _ -> Alcotest.fail "expected one op resolution"

let test_forwarding_auto_reset_stall () =
  (* A same-cycle read whose mapping was changed by an automatic reset
     (not a connect) cannot be value-forwarded before dispatch. *)
  let file = Reg.file ~core:4 ~total:8 in
  let t = Map_table.create ~model:Model.Write_reset_read_update file in
  Map_table.connect_def t ~ri:0 ~rp:5;
  let regs = Array.make 8 0L in
  let group =
    [
      Forwarding.Op { srcs = []; dst = Some 0 } (* write: read map <- 5 *);
      Forwarding.Op { srcs = [ 0 ]; dst = None };
    ]
  in
  match Forwarding.issue_group Forwarding.Fetch_before_dispatch t regs group with
  | [ _w; r ] ->
      check "sees new mapping" 5 (List.hd r.Forwarding.phys);
      check_bool "needs a stall" true r.Forwarding.needs_stall
  | _ -> Alcotest.fail "expected two resolutions"

let test_forwarding_variants_agree =
  (* Both pipeline variants must resolve the same physical registers as
     a sequential execution, for random groups. *)
  let file = Reg.file ~core:4 ~total:12 in
  let gen = QCheck.Gen.(
      list_size (int_range 1 6)
        (frequency
           [
             ( 1,
               map2
                 (fun ri rp ->
                   Forwarding.Connect
                     [ { Insn.cmap = Insn.Read; ri; rp; ccls = Reg.Int } ])
                 (int_range 0 3) (int_range 0 11) );
             ( 1,
               map2
                 (fun ri rp ->
                   Forwarding.Connect
                     [ { Insn.cmap = Insn.Write; ri; rp; ccls = Reg.Int } ])
                 (int_range 0 3) (int_range 0 11) );
             ( 2,
               map2
                 (fun srcs dst -> Forwarding.Op { srcs; dst })
                 (list_size (int_range 0 2) (int_range 0 3))
                 (opt (int_range 0 3)) );
           ]))
  in
  let prop grp =
    let regs = Array.init 12 Int64.of_int in
    let t1 = Map_table.create file in
    let t2 = Map_table.create file in
    let t3 = Map_table.create file in
    let r_after = Forwarding.issue_group Forwarding.Fetch_after_dispatch t1 regs grp in
    let r_before = Forwarding.issue_group Forwarding.Fetch_before_dispatch t2 regs grp in
    let r_seq = Forwarding.sequential t3 regs grp in
    List.for_all2
      (fun a b -> a.Forwarding.phys = b.Forwarding.phys && a.Forwarding.values = b.Forwarding.values)
      r_after r_seq
    && List.for_all2
         (fun a b -> a.Forwarding.phys = b.Forwarding.phys && a.Forwarding.values = b.Forwarding.values)
         r_before r_seq
    && Map_table.equal t1 t2 && Map_table.equal t1 t3
  in
  let cell = QCheck.Test.make ~count:300 ~name:"forwarding variants agree"
      (QCheck.make gen) prop
  in
  QCheck_alcotest.to_alcotest cell

(* --- qcheck model properties ----------------------------------------------- *)

type table_op =
  | T_use of int * int
  | T_def of int * int
  | T_write of int
  | T_reset

let table_op_gen entries total =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun i p -> T_use (i, p)) (int_range 0 (entries - 1)) (int_range 0 (total - 1)));
        (3, map2 (fun i p -> T_def (i, p)) (int_range 0 (entries - 1)) (int_range 0 (total - 1)));
        (3, map (fun i -> T_write i) (int_range 0 (entries - 1)));
        (1, return T_reset);
      ])

let apply_table_op t = function
  | T_use (ri, rp) -> Map_table.connect_use t ~ri ~rp
  | T_def (ri, rp) -> Map_table.connect_def t ~ri ~rp
  | T_write i -> Map_table.note_write t i
  | T_reset -> Map_table.reset t

let prop_maps_in_range model =
  let file = Reg.file ~core:6 ~total:20 in
  QCheck.Test.make ~count:300
    ~name:(Fmt.str "maps stay in range (%a)" Model.pp model)
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) (table_op_gen 6 20)))
    (fun ops ->
      let t = Map_table.create ~model file in
      List.iter (apply_table_op t) ops;
      let ok = ref true in
      for i = 0 to 5 do
        let r = Map_table.read t i and w = Map_table.write t i in
        if r < 0 || r >= 20 || w < 0 || w >= 20 then ok := false
      done;
      !ok)

let prop_model4_home_after_write =
  let file = Reg.file ~core:6 ~total:20 in
  QCheck.Test.make ~count:300 ~name:"model 4: entry home after write"
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 30) (table_op_gen 6 20)) (int_range 0 5)))
    (fun (ops, i) ->
      let t = Map_table.create ~model:Model.Read_write_reset file in
      List.iter (apply_table_op t) ops;
      Map_table.note_write t i;
      Map_table.read t i = i && Map_table.write t i = i)

let prop_write_map_home_after_write model =
  let file = Reg.file ~core:6 ~total:20 in
  QCheck.Test.make ~count:300
    ~name:(Fmt.str "write map home after write (%a)" Model.pp model)
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 30) (table_op_gen 6 20)) (int_range 0 5)))
    (fun (ops, i) ->
      let t = Map_table.create ~model file in
      List.iter (apply_table_op t) ops;
      Map_table.note_write t i;
      Map_table.write t i = i)

let prop_no_reset_ignores_writes =
  let file = Reg.file ~core:6 ~total:20 in
  QCheck.Test.make ~count:300 ~name:"model 1: writes never change maps"
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 30) (table_op_gen 6 20)) (int_range 0 5)))
    (fun (ops, i) ->
      let t = Map_table.create ~model:Model.No_reset file in
      List.iter (apply_table_op t) ops;
      let before = Map_table.copy t in
      Map_table.note_write t i;
      Map_table.equal before t)

let prop_reset_is_home model =
  let file = Reg.file ~core:6 ~total:20 in
  QCheck.Test.make ~count:200
    ~name:(Fmt.str "reset restores home (%a)" Model.pp model)
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) (table_op_gen 6 20)))
    (fun ops ->
      let t = Map_table.create ~model file in
      List.iter (apply_table_op t) ops;
      Map_table.reset t;
      Map_table.is_home t)

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    ([ prop_model4_home_after_write; prop_no_reset_ignores_writes ]
    @ List.map prop_maps_in_range Model.all
    @ List.map prop_write_map_home_after_write
        [ Model.Write_reset; Model.Write_reset_read_update ]
    @ List.map prop_reset_is_home Model.all)

let suite =
  [
    ("home at power-up", `Quick, test_home_initial);
    ("connect use/def", `Quick, test_connect_use_def);
    ("paper figure 2", `Quick, test_paper_figure2);
    ("bounds checks", `Quick, test_bounds);
    ("combined connect apply", `Quick, test_apply_combined);
    ("model 1 no reset", `Quick, test_model1_no_reset);
    ("model 2 write reset", `Quick, test_model2_write_reset);
    ("model 3 write reset + read update", `Quick, test_model3_write_reset_read_update);
    ("model 4 read/write reset", `Quick, test_model4_read_write_reset);
    ("model 3 section-3 example", `Quick, test_model3_paper_example);
    ("auto-reset accounting per model", `Quick, test_auto_reset_accounting);
    ("auto-reset accounting, read-only divergence", `Quick,
      test_auto_reset_read_only_connection);
    ("model names", `Quick, test_model_strings);
    ("reset", `Quick, test_reset);
    ("sec 4.1 callee-save scenario", `Quick, test_callee_save_corruption_scenario);
    ("index search", `Quick, test_index_search);
    ("copy and equality", `Quick, test_copy_equal);
    ("psw trap cycle", `Quick, test_psw_trap_cycle);
    ("psw architecture flag", `Quick, test_psw_arch_flag);
    ("context roundtrip (extended)", `Quick, test_context_roundtrip_extended);
    ("context original format smaller", `Quick, test_context_original_smaller);
    ("context original resets maps", `Quick, test_context_original_resets_maps);
    ("figure 5: fetch after dispatch", `Quick, test_figure5_fetch_after_dispatch);
    ("figure 6: fetch before dispatch", `Quick, test_figure6_fetch_before_dispatch);
    ("forwarding auto-reset stall", `Quick, test_forwarding_auto_reset_stall);
    test_forwarding_variants_agree;
  ]
  @ qcheck_suite
