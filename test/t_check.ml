(* Tests for rc_check: the differential oracle subsystem.

   The interesting properties are negative ones — a planted miscompile
   must be caught and attributed, a model-semantics mismatch must
   surface as a lockstep divergence and survive shrinking — plus the
   positive property that everything the generator produces sails
   through the full pipeline with no divergence at all. *)

open Rc_isa
open Rc_core
module Gen = Rc_check.Gen
module Shrink = Rc_check.Shrink
module Fuzz = Rc_check.Fuzz
module Oracle = Rc_check.Oracle
module Lockstep = Rc_check.Lockstep
module Args = Rc_check.Args
module Report = Rc_check.Report
module Pipeline = Rc_harness.Pipeline
module J = Rc_obs.Json

let model_of_number n =
  List.find (fun m -> Model.number m = n) Model.all

(* The paper-default RC point: model 3, 4-issue, 1-cycle connects. *)
let point3 =
  { Fuzz.rc = true; model = model_of_number 3; issue = 4; connect = 1 }

let ilp = Rc_opt.Pass.Ilp Rc_opt.Pass.default_unroll

(* --- the generator only produces programs the pipeline accepts ------------- *)

let test_generator_accepted () =
  List.iter
    (fun seed ->
      let opt = if seed mod 2 = 0 then ilp else Rc_opt.Pass.Classical in
      let spec = Gen.generate seed in
      match Fuzz.check_spec ~opt ~point:point3 spec with
      | None -> ()
      | Some r ->
          Alcotest.failf "seed %d rejected or diverged: %a" seed Report.pp r)
    [ 0; 1; 2; 3; 4; 5 ]

(* --- spec JSON round-trip -------------------------------------------------- *)

let test_spec_json_roundtrip () =
  List.iter
    (fun seed ->
      let spec = Gen.generate seed in
      let back = Gen.of_json (Gen.to_json spec) in
      Alcotest.(check bool)
        (Fmt.str "seed %d round-trips" seed)
        true (spec = back))
    (List.init 20 Fun.id)

(* --- the admission pipeline (Spec) ----------------------------------------- *)

module Spec = Rc_check.Spec

(* Everything the generator produces must sail through the public
   admission gate — the fuzzer's corpus is exactly the input shape
   /compile advertises — and the canonical bytes must be a fixpoint,
   so the server-assigned kernel id is stable across resubmission. *)
let test_spec_admission_accepts_generated () =
  List.iter
    (fun seed ->
      let spec = Gen.generate seed in
      match Spec.of_string (Spec.canonical spec) with
      | Error e ->
          Alcotest.failf "seed %d rejected: %s" seed (Spec.error_detail e)
      | Ok back ->
          Alcotest.(check bool)
            (Fmt.str "seed %d admitted unchanged" seed)
            true (spec = back);
          Alcotest.(check string)
            (Fmt.str "seed %d id stable" seed)
            (Spec.id_of spec) (Spec.id_of back))
    (List.init 20 Fun.id)

(* One-function spec around a body, within every other budget. *)
let spec_of_body body =
  { Gen.seed = 0; slots = 4; funcs = [| { Gen.arity = 0; nvars = 2; nfvars = 1; body } |] }

(* Nested loops of trip 1, [d] levels deep, innermost body [inner]. *)
let rec nested d inner = if d = 0 then inner else [ Gen.Loop (0, 1, nested (d - 1) inner) ]

let expect_ok what = function
  | Ok (_ : Gen.spec) -> ()
  | Error e -> Alcotest.failf "%s rejected: %s" what (Spec.error_detail e)

let expect_malformed what = function
  | Ok (_ : Gen.spec) -> Alcotest.failf "%s wrongly admitted" what
  | Error (Spec.Too_large m) ->
      Alcotest.failf "%s rejected as a limit, not malformed: %s" what m
  | Error (Spec.Malformed _) -> ()

let expect_too_large what = function
  | Ok (_ : Gen.spec) -> Alcotest.failf "%s wrongly admitted" what
  | Error (Spec.Malformed m) ->
      Alcotest.failf "%s rejected as malformed, not a limit: %s" what m
  | Error (Spec.Too_large _) -> ()

(* The budget boundaries, exactly at and one past each limit: at-limit
   specs are admitted (200), over-limit ones are Too_large (413). *)
let test_spec_admission_limits () =
  let admit s = Spec.of_json (Gen.to_json s) in
  (* statement depth — the innermost Emit is itself one level *)
  expect_ok "depth at limit"
    (admit (spec_of_body (nested (Gen.max_depth - 1) [ Gen.Emit (Gen.Var 0) ])));
  expect_too_large "depth over limit"
    (admit (spec_of_body (nested Gen.max_depth [ Gen.Emit (Gen.Var 0) ])));
  (* function count *)
  let nfuncs n =
    {
      Gen.seed = 0;
      slots = 4;
      funcs =
        Array.init n (fun i ->
            {
              Gen.arity = 0;
              nvars = 2;
              nfvars = 1;
              body =
                (if i = 0 && n > 1 then [ Gen.Call (0, 1, []) ]
                 else [ Gen.Emit (Gen.Var 0) ]);
            });
    }
  in
  expect_ok "funcs at limit" (admit (nfuncs Gen.max_funcs));
  expect_too_large "funcs over limit" (admit (nfuncs (Gen.max_funcs + 1)));
  (* node-count budget: Emit(Var) is 2 nodes, plus 1 per function *)
  let flat n = spec_of_body (List.init n (fun _ -> Gen.Emit (Gen.Var 0))) in
  expect_ok "size at limit" (admit (flat ((Gen.max_size - 1) / 2)));
  expect_too_large "size over limit" (admit (flat (Gen.max_size / 2 + 1)));
  (* loop trip-count and the dynamic-weight budget *)
  expect_ok "trip at limit"
    (admit (spec_of_body [ Gen.Loop (0, Gen.max_trip, [ Gen.Emit (Gen.Var 0) ]) ]));
  expect_malformed "trip over limit"
    (admit
       (spec_of_body [ Gen.Loop (0, Gen.max_trip + 1, [ Gen.Emit (Gen.Var 0) ]) ]));
  let deep_loops d =
    let rec go d =
      if d = 0 then [ Gen.Emit (Gen.Var 0) ]
      else [ Gen.Loop (0, Gen.max_trip, go (d - 1)) ]
    in
    spec_of_body (go d)
  in
  expect_too_large "dynamic weight over limit" (admit (deep_loops 4));
  (* slots *)
  expect_ok "slots at limit"
    (admit { (spec_of_body [ Gen.Emit (Gen.Var 0) ]) with Gen.slots = Gen.max_slots });
  expect_too_large "slots over limit"
    (admit
       { (spec_of_body [ Gen.Emit (Gen.Var 0) ]) with Gen.slots = Gen.max_slots + 1 })

(* Structural rejections: the renderer-totality holes an untrusted
   document could reach — negative indices (OCaml's [mod] is negative
   there) and non-forward calls (real recursion) — plus decode errors,
   which must name the JSON path of the offending node. *)
let test_spec_admission_invalid () =
  let admit s = Spec.of_json (Gen.to_json s) in
  expect_malformed "negative variable"
    (admit (spec_of_body [ Gen.Emit (Gen.Var (-1)) ]));
  expect_malformed "negative slot"
    (admit (spec_of_body [ Gen.Store (-3, Gen.Var 0) ]));
  (* A callee outside 1..nfuncs-1 is the shrinker's dropped-helper
     shape: the call collapses to [dst := 0] and the spec admits. *)
  expect_ok "collapsed call to main"
    (admit (spec_of_body [ Gen.Call (0, 0, []); Gen.Emit (Gen.Var 0) ]));
  let backward =
    {
      Gen.seed = 0;
      slots = 4;
      funcs =
        [|
          { Gen.arity = 0; nvars = 2; nfvars = 1; body = [ Gen.Call (0, 1, []) ] };
          { Gen.arity = 0; nvars = 2; nfvars = 1; body = [ Gen.Call (0, 1, []) ] };
        |];
    }
  in
  expect_malformed "backward (recursive) call" (admit backward);
  expect_malformed "empty spec"
    (admit { Gen.seed = 0; slots = 4; funcs = [||] });
  (* Decode errors carry the JSON path from the document root. *)
  let path_of text =
    match Spec.of_string text with
    | Ok _ -> Alcotest.failf "%S wrongly admitted" text
    | Error e -> Spec.error_detail e
  in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let expect_path text needle =
    let m = path_of text in
    Alcotest.(check bool)
      (Fmt.str "%s names %s (got %S)" text needle m)
      true
      (contains ~needle m)
  in
  expect_path {|[1,2]|} "$";
  expect_path {|{"funcs":3}|} "$.funcs";
  expect_path {|{"funcs":[{"arity":0,"nvars":1,"nfvars":1,"body":[["frob"]]}]}|}
    "$.funcs[0].body[0]";
  expect_path
    {|{"funcs":[{"arity":0,"nvars":1,"nfvars":1,"body":[["set",0,["bin","adc",["var",0],["var",0]]]]}]}|}
    "unknown ALU opcode";
  (* Non-JSON input must come back as an error, never an exception. *)
  match Spec.of_string "{not json" with
  | Error (Spec.Malformed _) -> ()
  | Error (Spec.Too_large m) -> Alcotest.failf "parse error as limit: %s" m
  | Ok _ -> Alcotest.fail "garbage admitted"

(* --- a planted miscompile is caught and attributed ------------------------- *)

(* Replace the first [Connect] of the stage's machine code with a nop:
   the classic "forgot to steer the map" miscompile. *)
let nop_first_connect (view : Pipeline.stage_view) =
  match view with
  | Pipeline.Machine_code mc ->
      let planted = ref false in
      List.iter
        (fun (f : Mcode.func) ->
          List.iter
            (fun (b : Mcode.block) ->
              b.Mcode.insns <-
                List.map
                  (fun i ->
                    if (not !planted) && Insn.is_connect i then (
                      planted := true;
                      Insn.nop ())
                    else i)
                  b.Mcode.insns)
            f.Mcode.blocks)
        mc.Mcode.funcs;
      !planted
  | _ -> false

let test_sabotage_caught () =
  (* Dropping a connect is only observable when the victim register is
     later accessed with a live wrong value, so search a few seeds for a
     program where the plant lands — the search is deterministic. *)
  let caught =
    List.find_map
      (fun seed ->
        let spec = Gen.generate seed in
        let planted = ref false in
        let sabotage =
          ( "rc-lower",
            fun view -> if nop_first_connect view then planted := true )
        in
        match Oracle.prepare_checked ~opt:ilp (Gen.render spec) with
        | Error r -> Alcotest.failf "seed %d broken prep: %a" seed Report.pp r
        | Ok prep -> (
            let opts = Fuzz.options_of_point ~opt:ilp point3 in
            match Oracle.compile_checked ~sabotage opts prep with
            | Error r when !planted -> Some r
            | Error r ->
                Alcotest.failf "seed %d failed without a plant: %a" seed
                  Report.pp r
            | Ok _ -> None))
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  match caught with
  | None -> Alcotest.fail "no seed in 0..9 exposed the planted miscompile"
  | Some r ->
      Alcotest.(check string) "faulting pass named" "rc-lower" r.Report.stage;
      Alcotest.(check bool) "basic block named" true (r.Report.block <> "");
      Alcotest.(check bool) "function named" true (r.Report.func <> "")

(* --- model mismatch diverges in lockstep, and the repro shrinks ------------ *)

(* Run machine (model 3) against an oracle deliberately executing a
   different auto-reset model: the divergence class of "the hardware
   skipped the model-3 read-map update". *)
let lockstep_mismatch ~oracle_model spec =
  let opts = Fuzz.options_of_point ~opt:ilp point3 in
  try
    let prep = Pipeline.prepare ~opt:ilp (Gen.render spec) in
    let compiled = Pipeline.compile_prepared opts prep in
    match
      Lockstep.run ~oracle_model
        (Oracle.config_of_options opts)
        compiled.Pipeline.image
    with
    | Lockstep.Diverged r -> Some r
    | Lockstep.Agree _ -> None
  with _ -> None

let test_model_mismatch_shrinks () =
  let oracle_model = model_of_number 1 (* No_reset vs the machine's 3 *) in
  let found =
    List.find_map
      (fun seed ->
        let spec = Gen.generate seed in
        match lockstep_mismatch ~oracle_model spec with
        | Some r -> Some (seed, spec, r)
        | None -> None)
      (List.init 10 Fun.id)
  in
  match found with
  | None -> Alcotest.fail "no seed in 0..9 exposed the model mismatch"
  | Some (_, spec, r) ->
      Alcotest.(check string) "kind" "lockstep" r.Report.kind;
      let reproduces candidate =
        match lockstep_mismatch ~oracle_model candidate with
        | Some r' -> r'.Report.kind = r.Report.kind
        | None -> false
      in
      let shrunk, evals = Shrink.shrink ~max_evals:60 ~reproduces spec in
      Alcotest.(check bool)
        "shrunk repro still diverges" true (reproduces shrunk);
      Alcotest.(check bool)
        (Fmt.str "no growth (%d -> %d in %d evals)" (Gen.size spec)
           (Gen.size shrunk) evals)
        true
        (Gen.size shrunk <= Gen.size spec)

(* --- CLI argument validation ----------------------------------------------- *)

let test_arg_validation () =
  let ok = function Ok v -> Some v | Error _ -> None in
  Alcotest.(check (option (pair int int)))
    "0:100 accepted"
    (Some (0, 100))
    (ok (Args.cycle_window "0:100"));
  let expect_err name input =
    match Args.cycle_window input with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: %S wrongly accepted" name input
  in
  expect_err "inverted" "5:1";
  expect_err "equal bounds" "7:7";
  expect_err "negative" "-2:9";
  expect_err "non-numeric" "abc";
  expect_err "missing colon" "3";
  expect_err "too many fields" "1:2:3";
  Alcotest.(check (option int)) "seed 7" (Some 7) (ok (Args.seed "7"));
  Alcotest.(check (option int)) "seed 0" (Some 0) (ok (Args.seed "0"));
  Alcotest.(check (option int)) "seed -1 rejected" None (ok (Args.seed "-1"));
  Alcotest.(check (option int)) "seed junk rejected" None (ok (Args.seed "x"));
  Alcotest.(check (option int)) "count 3" (Some 3) (ok (Args.count "3"));
  Alcotest.(check (option int)) "count 0 rejected" None (ok (Args.count "0"));
  Alcotest.(check (option int))
    "count -4 rejected" None
    (ok (Args.count "-4"))

(* The distinct failure modes produce distinct messages, so a user can
   tell a typo from an inverted window. *)
let test_arg_messages_distinct () =
  let msg input =
    match Args.cycle_window input with
    | Error m -> m
    | Ok _ -> Alcotest.failf "%S wrongly accepted" input
  in
  let msgs = List.map msg [ "5:1"; "-2:9"; "abc"; "3" ] in
  let uniq = List.sort_uniq compare msgs in
  Alcotest.(check int) "four distinct messages" 4 (List.length uniq)

(* --- corpus replay --------------------------------------------------------- *)

(* Every persisted divergence case must stay fixed: replaying its
   (shrunk) spec through the same pipeline point must be clean.  The
   directory has no div- cases until the fuzzer finds something;
   spec-*.json files there are admission fixtures, not divergences. *)
let test_corpus_replay () =
  let dir = "corpus" in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        if
          String.length name >= 4
          && String.sub name 0 4 = "div-"
          && Filename.check_suffix name ".json"
        then begin
          let path = Filename.concat dir name in
          let ic = open_in path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          let json =
            match J.of_string s with
            | Ok j -> j
            | Error e -> Alcotest.failf "corpus case %s unparsable: %s" name e
          in
          let spec, point, classical = Fuzz.case_spec_of_json json in
          let opt = if classical then Rc_opt.Pass.Classical else ilp in
          match Fuzz.check_spec ~opt ?point spec with
          | None -> ()
          | Some r ->
              Alcotest.failf "corpus case %s still diverges: %a" name
                Report.pp r
        end)
      (Sys.readdir dir)

(* Committed spec fixtures must stay admissible with stable identity:
   each corpus/spec-<id>.json admits, round-trips through its
   canonical bytes, and digests to the id in its filename. *)
let test_corpus_specs () =
  let dir = "corpus" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    (* only under `dune exec` from the repo root; runtest stages the dir *)
    Alcotest.skip ();
  let fixtures =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun name ->
           String.length name >= 5
           && String.sub name 0 5 = "spec-"
           && Filename.check_suffix name ".json")
    |> List.sort compare
  in
  Alcotest.(check bool)
    "spec fixtures are committed" true (List.length fixtures >= 2);
  List.iter
    (fun name ->
      let ic = open_in_bin (Filename.concat dir name) in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Spec.of_string text with
      | Error e ->
          Alcotest.failf "fixture %s rejected: %s" name (Spec.error_detail e)
      | Ok s ->
          let id = Spec.id_of s in
          Alcotest.(check string)
            (Fmt.str "%s digests to its filename" name)
            ("spec-" ^ id ^ ".json") name;
          (match Spec.of_string (Spec.canonical s) with
          | Ok back ->
              Alcotest.(check bool)
                (Fmt.str "%s canonical fixpoint" name)
                true (s = back)
          | Error e ->
              Alcotest.failf "fixture %s canonical form rejected: %s" name
                (Spec.error_detail e)))
    fixtures

let suite =
  [
    ("generator accepted by pipeline", `Slow, test_generator_accepted);
    ("spec JSON round-trip", `Quick, test_spec_json_roundtrip);
    ("spec admission accepts generated", `Quick, test_spec_admission_accepts_generated);
    ("spec admission budget limits", `Quick, test_spec_admission_limits);
    ("spec admission invalid documents", `Quick, test_spec_admission_invalid);
    ("corpus spec fixtures admissible", `Quick, test_corpus_specs);
    ("planted miscompile caught", `Slow, test_sabotage_caught);
    ("model mismatch diverges and shrinks", `Slow, test_model_mismatch_shrinks);
    ("cli argument validation", `Quick, test_arg_validation);
    ("cli error messages distinct", `Quick, test_arg_messages_distinct);
    ("corpus replay", `Quick, test_corpus_replay);
  ]
