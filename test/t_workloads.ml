(* Tests for rc_workloads: determinism, expected reference checksums
   (guarding against accidental workload changes that would invalidate
   recorded experiments), scaling, and benchmark-class registry. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Reference checksums of every workload at scale 1, computed by the
   reference interpreter.  If a workload definition changes, these
   change, and EXPERIMENTS.md must be regenerated. *)
let expected_checksums =
  [
    ("cccp", -5226925762109024150L);
    ("cmp", 4144748105872016170L);
    ("compress", -2916747785064102938L);
    ("eqn", 7080663636798434074L);
    ("eqntott", -1317334475654552113L);
    ("espresso", -1365820905616143305L);
    ("grep", 8352739536030422235L);
    ("lex", 8357945458248445275L);
    ("yacc", -5067928664444303060L);
    ("matrix300", 4372332034701390325L);
    ("nasa7", 7279419609228510834L);
    ("tomcatv", 4194347976021508460L);
  ]

let test_registry_complete () =
  check "twelve benchmarks" 12 (List.length (Rc_workloads.Registry.all ()));
  check "nine integer" 9 (List.length (Rc_workloads.Registry.integer ()));
  check "three floating-point" 3 (List.length (Rc_workloads.Registry.floating ()));
  Alcotest.(check (list string))
    "paper order"
    [
      "cccp"; "cmp"; "compress"; "eqn"; "eqntott"; "espresso"; "grep"; "lex";
      "yacc"; "matrix300"; "nasa7"; "tomcatv";
    ]
    (Rc_workloads.Registry.names ())

let test_find () =
  let b = Rc_workloads.Registry.find "grep" in
  Alcotest.(check string) "found" "grep" b.Rc_workloads.Wutil.name;
  Alcotest.check_raises "unknown"
    (Invalid_argument "Registry.find: unknown benchmark nope") (fun () ->
      ignore (Rc_workloads.Registry.find "nope"))

let test_reference_checksums () =
  List.iter
    (fun (name, expected) ->
      let b = Rc_workloads.Registry.find name in
      let out = Rc_interp.Interp.run (b.Rc_workloads.Wutil.build 1) in
      Alcotest.(check int64) (name ^ " checksum") expected
        out.Rc_interp.Interp.checksum)
    expected_checksums

let test_determinism () =
  List.iter
    (fun (b : Rc_workloads.Wutil.bench) ->
      let o1 = Rc_interp.Interp.run (b.Rc_workloads.Wutil.build 1) in
      let o2 = Rc_interp.Interp.run (b.Rc_workloads.Wutil.build 1) in
      Alcotest.(check int64)
        (b.Rc_workloads.Wutil.name ^ " deterministic")
        o1.Rc_interp.Interp.checksum o2.Rc_interp.Interp.checksum)
    (Rc_workloads.Registry.all ())

let test_scaling () =
  (* scale 2 must run more operations than scale 1 *)
  List.iter
    (fun name ->
      let b = Rc_workloads.Registry.find name in
      let o1 = Rc_interp.Interp.run (b.Rc_workloads.Wutil.build 1) in
      let o2 = Rc_interp.Interp.run (b.Rc_workloads.Wutil.build 2) in
      check_bool (name ^ " scales") true
        (o2.Rc_interp.Interp.dyn_ops > o1.Rc_interp.Interp.dyn_ops))
    [ "cmp"; "eqn"; "matrix300" ]

let test_rng_determinism () =
  let r1 = Rc_workloads.Wutil.rng 42L and r2 = Rc_workloads.Wutil.rng 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rc_workloads.Wutil.next r1)
      (Rc_workloads.Wutil.next r2)
  done;
  let r3 = Rc_workloads.Wutil.rng 43L in
  check_bool "different seed differs" true
    (Rc_workloads.Wutil.next (Rc_workloads.Wutil.rng 42L)
    <> Rc_workloads.Wutil.next r3)

let test_rng_bounds () =
  let r = Rc_workloads.Wutil.rng 7L in
  for _ = 1 to 1000 do
    let v = Rc_workloads.Wutil.next_int r 17 in
    check_bool "in range" true (v >= 0 && v < 17);
    let f = Rc_workloads.Wutil.next_float r in
    check_bool "float in (0,1)" true (f > 0.0 && f < 1.0)
  done

let test_int_benchmarks_emit_pressure () =
  (* every integer benchmark must show high register pressure after ILP
     optimisation (the premise of the whole evaluation) *)
  List.iter
    (fun (b : Rc_workloads.Wutil.bench) ->
      let prog = b.Rc_workloads.Wutil.build 1 in
      Rc_opt.Pass.ilp prog;
      let pressures =
        List.map
          (fun (f : Rc_ir.Func.t) ->
            let live = Rc_dataflow.Liveness.compute f in
            Rc_dataflow.Interference.max_pressure f live Rc_isa.Reg.Int)
          prog.Rc_ir.Prog.funcs
      in
      check_bool
        (b.Rc_workloads.Wutil.name ^ " has pressure > 8")
        true
        (List.exists (fun p -> p > 8) pressures))
    (Rc_workloads.Registry.integer ())

let test_fp_benchmarks_emit_fp_pressure () =
  List.iter
    (fun (b : Rc_workloads.Wutil.bench) ->
      let prog = b.Rc_workloads.Wutil.build 1 in
      Rc_opt.Pass.ilp prog;
      let pressures =
        List.map
          (fun (f : Rc_ir.Func.t) ->
            let live = Rc_dataflow.Liveness.compute f in
            Rc_dataflow.Interference.max_pressure f live Rc_isa.Reg.Float)
          prog.Rc_ir.Prog.funcs
      in
      check_bool
        (b.Rc_workloads.Wutil.name ^ " has fp pressure > 5")
        true
        (List.exists (fun p -> p > 5) pressures))
    (Rc_workloads.Registry.floating ())

let suite =
  [
    ("registry complete", `Quick, test_registry_complete);
    ("registry find", `Quick, test_find);
    ("reference checksums", `Slow, test_reference_checksums);
    ("determinism", `Slow, test_determinism);
    ("scaling", `Slow, test_scaling);
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng bounds", `Quick, test_rng_bounds);
    ("integer pressure", `Slow, test_int_benchmarks_emit_pressure);
    ("fp pressure", `Slow, test_fp_benchmarks_emit_fp_pressure);
  ]
