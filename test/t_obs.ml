(* Tests for rc_obs: the JSON emitter/parser and the trace recorder's
   three sinks, including a golden test for the Chrome trace-event
   shape. *)

module J = Rc_obs.Json
module T = Rc_obs.Trace

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Json ------------------------------------------------------------------ *)

let test_json_render () =
  check "scalar mix"
    {json|{"a":1,"b":-2.5,"c":"x\"y\n","d":[true,false,null],"e":{}}|json}
    (J.to_string
       (J.Obj
          [
            ("a", J.Int 1);
            ("b", J.Float (-2.5));
            ("c", J.Str "x\"y\n");
            ("d", J.List [ J.Bool true; J.Bool false; J.Null ]);
            ("e", J.Obj []);
          ]));
  check "control chars escaped" {json|"\u0001\t\\"|json}
    (J.to_string (J.Str "\x01\t\\"));
  check "non-finite floats are null" "[null,null]"
    (J.to_string (J.List [ J.Float nan; J.Float infinity ]))

let test_json_roundtrip () =
  let samples =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 1.5;
      J.Float 1e-3;
      J.Str "he\"llo\n\t\x02 λ";
      J.List [ J.Int 1; J.List []; J.Obj [ ("k", J.Null) ] ];
      J.Obj [ ("x", J.Float 0.1); ("y", J.Str "") ];
    ]
  in
  List.iter
    (fun j ->
      match J.of_string (J.to_string j) with
      | Ok j' ->
          check (J.to_string j) (J.to_string j) (J.to_string j');
          check_bool "structurally equal" true (j = j')
      | Error m -> Alcotest.failf "roundtrip failed on %s: %s" (J.to_string j) m)
    samples

let test_json_parser_rejects () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok j -> Alcotest.failf "parsed %S as %s" s (J.to_string j)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated"; "{'a':1}" ]

let test_json_member () =
  let j = J.Obj [ ("a", J.Int 1); ("b", J.Null) ] in
  check_bool "present" true (J.member "a" j = Some (J.Int 1));
  check_bool "null field present" true (J.member "b" j = Some J.Null);
  check_bool "absent" true (J.member "c" j = None);
  check_bool "non-object" true (J.member "a" (J.Int 1) = None)

(* qcheck: printing then parsing any string value is the identity *)
let prop_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json string escaping roundtrips"
    QCheck.string (fun s ->
      match J.of_string (J.to_string (J.Str s)) with
      | Ok (J.Str s') -> s = s'
      | _ -> false)

(* --- Trace ----------------------------------------------------------------- *)

(* A tiny deterministic recording used by the golden tests. *)
let recording () =
  let t = T.create () in
  T.span t ~track:"compile" ~name:"regalloc" ~ts_us:10. ~dur_us:250.
    ~args:[ ("spills", J.Int 3) ] ();
  T.counter t ~track:"machine" ~name:"slots" ~ts_us:0.
    [ ("issued", 4.); ("lost_data", 0.) ];
  T.counter t ~track:"machine" ~name:"slots" ~ts_us:1.
    [ ("issued", 2.); ("lost_data", 2.) ];
  T.instant t ~track:"compile" ~name:"done" ~ts_us:300. ();
  t

let test_null_records_nothing () =
  T.span T.null ~track:"x" ~name:"y" ~ts_us:0. ~dur_us:1. ();
  T.counter T.null ~track:"x" ~name:"y" ~ts_us:0. [ ("v", 1.) ];
  T.instant T.null ~track:"x" ~name:"y" ~ts_us:0. ();
  check_bool "null disabled" false (T.enabled T.null);
  check_int "null holds no events" 0 (List.length (T.events T.null))

let test_event_order () =
  let t = recording () in
  check_bool "enabled" true (T.enabled t);
  Alcotest.(check (list string))
    "recording order"
    [ "regalloc"; "slots"; "slots"; "done" ]
    (List.map
       (function
         | T.Span { name; _ } | T.Counter { name; _ } | T.Instant { name; _ }
           ->
             name)
       (T.events t))

(* Golden: the exact Chrome export of the fixed recording.  Guards the
   envelope, the metadata naming, pid assignment by first appearance
   and the event field set — the shape Perfetto loads. *)
let test_chrome_golden () =
  let expected =
    String.concat ""
      [
        {json|{"traceEvents":[|json};
        {json|{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"compile"}},|json};
        {json|{"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"machine"}},|json};
        {json|{"name":"regalloc","cat":"compile","ph":"X","ts":10,"dur":250,"pid":1,"tid":0,"args":{"spills":3}},|json};
        {json|{"name":"slots","cat":"machine","ph":"C","ts":0,"pid":2,"args":{"issued":4,"lost_data":0}},|json};
        {json|{"name":"slots","cat":"machine","ph":"C","ts":1,"pid":2,"args":{"issued":2,"lost_data":2}},|json};
        {json|{"name":"done","cat":"compile","ph":"i","ts":300,"pid":1,"tid":0,"s":"p"}|json};
        {json|],"displayTimeUnit":"ms"}|json};
      ]
  in
  check "chrome golden" expected (T.chrome_string (recording ()))

let test_chrome_parses () =
  let s = T.chrome_string (recording ()) in
  match J.of_string s with
  | Error m -> Alcotest.failf "chrome export is not valid JSON: %s" m
  | Ok j -> (
      match J.member "traceEvents" j with
      | Some (J.List evs) ->
          check_int "metadata + 4 events" 6 (List.length evs);
          List.iter
            (fun ev ->
              check_bool "has ph" true (J.member "ph" ev <> None);
              check_bool "has pid" true (J.member "pid" ev <> None))
            evs
      | _ -> Alcotest.fail "no traceEvents array")

let test_jsonl_shape () =
  let lines =
    String.split_on_char '\n' (T.to_jsonl (recording ()))
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per event" 4 (List.length lines);
  List.iter
    (fun line ->
      match J.of_string line with
      | Error m -> Alcotest.failf "bad JSONL line %S: %s" line m
      | Ok j ->
          check_bool "has type" true
            (match J.member "type" j with
            | Some (J.Str ("span" | "counter" | "instant")) -> true
            | _ -> false);
          check_bool "has track" true (J.member "track" j <> None))
    lines

let test_summary () =
  let t = recording () in
  (* counters only; two samples of the same series collapse to count +
     last value *)
  Alcotest.(check (list (pair string (float 0.0))))
    "summary series"
    [ ("issued", 2.); ("lost_data", 2.) ]
    (List.filter_map
       (fun (track, name, series, n, last) ->
         if track = "machine" && name = "slots" then (
           check_int "two samples" 2 n;
           Some (series, last))
         else None)
       (T.summary t))

(* --- Fsio ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "t_obs_fsio" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mode_of path = (Unix.stat path).Unix.st_perm

let expected_mode () =
  let u = Unix.umask 0 in
  ignore (Unix.umask u : int);
  0o644 land lnot u

(* The published file must carry the conventional 0o644-masked-by-umask
   mode, not temp_file's private 0o600 — replacing a world-readable
   file must not silently tighten it. *)
let test_write_atomic_mode () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Rc_obs.Fsio.write_atomic path (fun oc -> output_string oc "fresh");
      check "fresh content" "fresh" (read_file path);
      check_int "fresh mode" (expected_mode ()) (mode_of path);
      (* Replace a file that is already world-readable. *)
      Unix.chmod path 0o644;
      Rc_obs.Fsio.write_atomic path (fun oc -> output_string oc "replaced");
      check "replaced content" "replaced" (read_file path);
      check_int "replaced mode" (expected_mode ()) (mode_of path))

(* A writer that raises must leave the destination untouched and no
   temp file behind. *)
let test_write_atomic_crash () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Rc_obs.Fsio.write_atomic path (fun oc -> output_string oc "original");
      (match
         Rc_obs.Fsio.write_atomic path (fun oc ->
             output_string oc "torn";
             failwith "boom")
       with
      | () -> Alcotest.fail "crashing writer did not raise"
      | exception Failure _ -> ());
      check "destination untouched" "original" (read_file path);
      Array.iter
        (fun n ->
          check_bool (Printf.sprintf "no temp left behind (%s)" n) false
            (n <> "out.json"))
        (Sys.readdir dir))

let test_write_atomic_new_dir_entry_only () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "solo.bin" in
      Rc_obs.Fsio.write_atomic path (fun oc -> output_string oc "x");
      Alcotest.(check (array string))
        "exactly the destination" [| "solo.bin" |]
        (let names = Sys.readdir dir in
         Array.sort compare names;
         names))

let suite =
  [
    ("json rendering", `Quick, test_json_render);
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json parser rejects malformed input", `Quick, test_json_parser_rejects);
    ("json member", `Quick, test_json_member);
    ("null trace records nothing", `Quick, test_null_records_nothing);
    ("trace event order", `Quick, test_event_order);
    ("chrome export golden", `Quick, test_chrome_golden);
    ("chrome export parses", `Quick, test_chrome_parses);
    ("jsonl shape", `Quick, test_jsonl_shape);
    ("counter summary", `Quick, test_summary);
    ("write_atomic publishes 0o644 & ~umask", `Quick, test_write_atomic_mode);
    ("write_atomic crash leaves no debris", `Quick, test_write_atomic_crash);
    ( "write_atomic leaves only the destination",
      `Quick,
      test_write_atomic_new_dir_entry_only );
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
  ]
