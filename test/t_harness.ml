(* Tests for rc_harness: pipeline verification, experiment plumbing,
   speedup definitions, and the headline qualitative results of the
   paper that the repository claims to reproduce. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ctx = lazy (Rc_harness.Experiments.create ~scale:1 ())

let test_pipeline_verifies () =
  let b = Rc_workloads.Registry.find "cmp" in
  let opts = Rc_harness.Pipeline.options ~rc:true ~core_int:16 () in
  let c = Rc_harness.Pipeline.compile opts (b.Rc_workloads.Wutil.build 1) in
  let r = Rc_harness.Pipeline.simulate c in
  check_bool "cycles positive" true (r.Rc_machine.Machine.cycles > 0);
  check_bool "verified output" true
    (r.Rc_machine.Machine.output = c.Rc_harness.Pipeline.expected.Rc_interp.Interp.output)

let test_base_is_speedup_one () =
  (* the base configuration's speedup is 1 by definition *)
  let ctx = Lazy.force ctx in
  let b = Rc_workloads.Registry.find "cmp" in
  let base_opts =
    Rc_harness.Pipeline.options ~opt:Rc_opt.Pass.Classical ~issue:1
      ~mem_channels:2 ~core_int:Rc_harness.Experiments.unlimited
      ~core_float:Rc_harness.Experiments.unlimited ()
  in
  Alcotest.(check (float 1e-9))
    "speedup of base" 1.0
    (Rc_harness.Experiments.speedup ctx b base_opts)

let test_memoisation () =
  let ctx = Lazy.force ctx in
  let b = Rc_workloads.Registry.find "cmp" in
  let opts = Rc_harness.Experiments.reg_opts b ~label:16 ~rc:true () in
  let s1 = Rc_harness.Experiments.speedup ctx b opts in
  let s2 = Rc_harness.Experiments.speedup ctx b opts in
  Alcotest.(check (float 0.0)) "memoised identical" s1 s2

let test_geomean () =
  let t =
    {
      Rc_harness.Experiments.id = "x";
      title = "";
      columns = [ "a" ];
      rows = [ ("p", [ 2.0 ]); ("q", [ 8.0 ]) ];
      note = "";
    }
  in
  match Rc_harness.Experiments.with_geomean t with
  | { Rc_harness.Experiments.rows = [ _; _; ("geomean", [ g ]) ]; _ } ->
      Alcotest.(check (float 1e-9)) "geometric mean" 4.0 g
  | _ -> Alcotest.fail "geomean row missing"

let test_table1_shape () =
  let t = Rc_harness.Experiments.table1 () in
  check "ten latencies" 10 (List.length t.Rc_harness.Experiments.rows);
  check_bool "div is 10" true
    (List.assoc "INT divide" t.Rc_harness.Experiments.rows = [ 10.0; 10.0 ])

(* --- the paper's headline qualitative claims, on two benchmarks -------------- *)

let speedup_of bench ~label ~rc =
  let ctx = Lazy.force ctx in
  let b = Rc_workloads.Registry.find bench in
  Rc_harness.Experiments.speedup ctx b
    (Rc_harness.Experiments.reg_opts b ~label ~rc ())

let test_rc_wins_at_small_cores () =
  (* paper: "All benchmarks run with a small number of core registers
     demonstrate a large performance advantage using the with-RC
     model" *)
  List.iter
    (fun bench ->
      let no = speedup_of bench ~label:8 ~rc:false in
      let rc = speedup_of bench ~label:8 ~rc:true in
      check_bool (bench ^ ": RC wins at 8 registers") true (rc > 1.5 *. no))
    [ "eqn"; "lex"; "espresso" ]

let test_models_converge_at_large_cores () =
  (* paper: at 64 registers both models perform alike *)
  List.iter
    (fun bench ->
      let no = speedup_of bench ~label:64 ~rc:false in
      let rc = speedup_of bench ~label:64 ~rc:true in
      check_bool
        (Fmt.str "%s: models converge at 64 (%.2f vs %.2f)" bench no rc)
        true
        (Float.abs (no -. rc) /. no < 0.15))
    [ "eqn"; "cmp"; "yacc" ]

let test_without_rc_degrades () =
  (* degradation of the without-RC model as registers shrink *)
  List.iter
    (fun bench ->
      let s64 = speedup_of bench ~label:64 ~rc:false in
      let s8 = speedup_of bench ~label:8 ~rc:false in
      check_bool (bench ^ ": severe degradation at 8") true (s8 < 0.6 *. s64))
    [ "eqn"; "lex"; "grep" ]

let test_rc_benefit_grows_with_issue_rate () =
  (* paper: "The performance improvement due to the RC method is more
     significant for higher issue rates" (geometric mean over a sample) *)
  let ctx = Lazy.force ctx in
  let ratio issue =
    let benches = [ "eqn"; "espresso"; "lex" ] in
    let prod op =
      List.fold_left
        (fun acc bench ->
          let b = Rc_workloads.Registry.find bench in
          acc
          *. Rc_harness.Experiments.speedup ctx b
               (Rc_harness.Experiments.reg_opts b
                  ~label:(Rc_harness.Experiments.small_label b) ~rc:op ~issue ()))
        1.0 benches
    in
    prod true /. prod false
  in
  check_bool "benefit grows 1 -> 4 issue" true (ratio 4 > ratio 1)

let test_fig9_rc_code_larger_but_faster () =
  (* paper: "Although the code size increase of the with-RC model is
     significantly more than the without-RC model, the with-RC model
     achieves higher performance." *)
  let ctx = Lazy.force ctx in
  let b = Rc_workloads.Registry.find "eqn" in
  let o_no = Rc_harness.Experiments.reg_opts b ~label:16 ~rc:false () in
  let o_rc = Rc_harness.Experiments.reg_opts b ~label:16 ~rc:true () in
  let _, bk_no, _ = Rc_harness.Experiments.run ctx b o_no in
  let _, bk_rc, _ = Rc_harness.Experiments.run ctx b o_rc in
  check_bool "rc code larger" true
    (Rc_harness.Experiments.size_increase bk_rc
    > Rc_harness.Experiments.size_increase bk_no);
  check_bool "rc still faster" true
    (Rc_harness.Experiments.speedup ctx b o_rc
    > Rc_harness.Experiments.speedup ctx b o_no)

let test_fig12_extra_stage_cheap () =
  (* paper: "very little performance loss when the RC method cannot be
     implemented within an existing pipeline" (extra-stage case) *)
  let ctx = Lazy.force ctx in
  let b = Rc_workloads.Registry.find "lex" in
  let fast = Rc_harness.Experiments.reg_opts b ~label:16 ~rc:true () in
  let deep =
    Rc_harness.Experiments.reg_opts b ~label:16 ~rc:true ~extra_stage:true ()
  in
  let s_fast = Rc_harness.Experiments.speedup ctx b fast in
  let s_deep = Rc_harness.Experiments.speedup ctx b deep in
  check_bool "within 5%" true (s_deep > 0.95 *. s_fast)

(* --- telemetry ---------------------------------------------------------------- *)

let test_registry_slot_invariant () =
  (* the slot-accounting identity must hold on real compiled code, not
     just micro-programs: one registry workload across issue rates, both
     connect latencies, RC on and off *)
  let ctx = Lazy.force ctx in
  let b = Rc_workloads.Registry.find "cmp" in
  List.iter
    (fun issue ->
      List.iter
        (fun connect ->
          List.iter
            (fun rc ->
              let lat = Rc_isa.Latency.v ~connect () in
              let opts =
                Rc_harness.Experiments.reg_opts b ~label:16 ~rc ~issue ~lat ()
              in
              let r, _, _ = Rc_harness.Experiments.run ctx b opts in
              check_bool
                (Fmt.str "cmp i=%d c=%d rc=%b balances" issue connect rc)
                true
                (Rc_machine.Machine.slot_invariant_holds ~issue r))
            [ false; true ])
        [ 0; 1 ])
    [ 1; 2; 4; 8 ]

let test_pass_metrics () =
  let ctx = Lazy.force ctx in
  let b = Rc_workloads.Registry.find "cmp" in
  let opts = Rc_harness.Experiments.reg_opts b ~label:16 ~rc:true () in
  let cell = Rc_harness.Experiments.run_cell ctx b opts in
  let names =
    List.map (fun p -> p.Rc_harness.Pipeline.p_name) cell.Rc_harness.Experiments.c_passes
  in
  Alcotest.(check (list string))
    "stages in pipeline order"
    [
      "ilp-opt"; "legalize"; "profile"; "regalloc"; "lower"; "schedule";
      "rc-lower"; "assemble";
    ]
    names;
  List.iter
    (fun p ->
      let open Rc_harness.Pipeline in
      check_bool (p.p_name ^ " wall >= 0") true (p.p_wall_s >= 0.);
      check_bool (p.p_name ^ " sizes positive") true
        (p.p_size_in > 0 && p.p_size_out > 0))
    cell.Rc_harness.Experiments.c_passes;
  let find n =
    List.find (fun p -> p.Rc_harness.Pipeline.p_name = n)
      cell.Rc_harness.Experiments.c_passes
  in
  check "spills live on regalloc"
    cell.Rc_harness.Experiments.c_spills
    (find "regalloc").Rc_harness.Pipeline.p_spills;
  check_bool "rc-lower inserted connects" true
    ((find "rc-lower").Rc_harness.Pipeline.p_connects > 0)

let test_metrics_json_shape () =
  let ctx = Lazy.force ctx in
  let b = Rc_workloads.Registry.find "cmp" in
  ignore
    (Rc_harness.Experiments.run ctx b
       (Rc_harness.Experiments.reg_opts b ~label:16 ~rc:true ()));
  let j = Rc_harness.Experiments.metrics_json ctx in
  (* the dump must be valid JSON carrying every simulated cell *)
  match Rc_obs.Json.of_string (Rc_obs.Json.to_string j) with
  | Error m -> Alcotest.failf "metrics_json does not roundtrip: %s" m
  | Ok j' -> (
      match Rc_obs.Json.member "cells" j' with
      | Some (Rc_obs.Json.List cells) ->
          check_bool "at least one cell" true (cells <> []);
          List.iter
            (fun c ->
              check_bool "cell has key" true (Rc_obs.Json.member "key" c <> None);
              match Rc_obs.Json.member "machine" c with
              | Some m ->
                  check_bool "cycles present" true
                    (Rc_obs.Json.member "cycles" m <> None);
                  check_bool "lost_data present" true
                    (Rc_obs.Json.member "lost_data" m <> None)
              | None -> Alcotest.fail "cell lacks machine counters")
            cells
      | _ -> Alcotest.fail "no cells array")

let render_table t =
  Fmt.str "%a" Rc_harness.Experiments.print_table t

let test_parallel_tables_identical () =
  (* every table of the full grid must be byte-identical between a
     sequential and a 4-domain context *)
  let render jobs =
    let ctx = Rc_harness.Experiments.create ~scale:1 ~jobs () in
    Fun.protect
      ~finally:(fun () -> Rc_harness.Experiments.shutdown ctx)
      (fun () ->
        List.map render_table (Rc_harness.Experiments.all_figures ctx))
  in
  let seq = render 1 and par = render 4 in
  check "same table count" (List.length seq) (List.length par);
  List.iter2
    (fun s p ->
      Alcotest.(check string) "table identical across jobs counts" s p)
    seq par

let test_experiment_ids_resolve () =
  let ctx = Rc_harness.Experiments.create ~scale:1 () in
  List.iter
    (fun id ->
      check_bool (id ^ " resolves") true
        (Rc_harness.Experiments.by_id ctx id <> None))
    [ "table1" ];
  check_bool "unknown id" true (Rc_harness.Experiments.by_id ctx "nope" = None)

(* `rcc serve` wires shutdown both to the normal exit path and to
   signal handling, so a context must tolerate being shut down twice,
   while idle, and from two domains racing. *)
let test_shutdown_idempotent () =
  let ctx = Rc_harness.Experiments.create ~scale:1 ~jobs:2 () in
  ignore (Rc_harness.Experiments.table1 ());
  Rc_harness.Experiments.shutdown ctx;
  Rc_harness.Experiments.shutdown ctx;
  check_bool "double shutdown returns" true true

let test_shutdown_idle_pool () =
  (* Never ran anything: the workers are parked on the condition
     variable and must still be woken and joined. *)
  let ctx = Rc_harness.Experiments.create ~scale:1 ~jobs:4 () in
  Rc_harness.Experiments.shutdown ctx;
  Rc_harness.Experiments.shutdown ctx;
  check_bool "idle shutdown returns" true true

let test_shutdown_concurrent () =
  let ctx = Rc_harness.Experiments.create ~scale:1 ~jobs:4 () in
  let d1 = Domain.spawn (fun () -> Rc_harness.Experiments.shutdown ctx) in
  let d2 = Domain.spawn (fun () -> Rc_harness.Experiments.shutdown ctx) in
  Rc_harness.Experiments.shutdown ctx;
  Domain.join d1;
  Domain.join d2;
  check_bool "concurrent shutdown returns" true true

let suite =
  [
    ("pipeline verifies output", `Quick, test_pipeline_verifies);
    ("base speedup is 1", `Slow, test_base_is_speedup_one);
    ("memoisation", `Slow, test_memoisation);
    ("geomean", `Quick, test_geomean);
    ("table 1 shape", `Quick, test_table1_shape);
    ("RC wins at small cores", `Slow, test_rc_wins_at_small_cores);
    ("models converge at 64", `Slow, test_models_converge_at_large_cores);
    ("without-RC degrades", `Slow, test_without_rc_degrades);
    ("RC benefit grows with issue rate", `Slow, test_rc_benefit_grows_with_issue_rate);
    ("fig 9: larger but faster", `Slow, test_fig9_rc_code_larger_but_faster);
    ("fig 12: extra stage cheap", `Slow, test_fig12_extra_stage_cheap);
    ("parallel tables identical", `Slow, test_parallel_tables_identical);
    ("experiment ids resolve", `Quick, test_experiment_ids_resolve);
    ("registry slot invariant matrix", `Slow, test_registry_slot_invariant);
    ("per-pass pipeline metrics", `Slow, test_pass_metrics);
    ("metrics json shape", `Slow, test_metrics_json_shape);
    ("shutdown is idempotent", `Quick, test_shutdown_idempotent);
    ("shutdown of an idle pool", `Quick, test_shutdown_idle_pool);
    ("concurrent shutdown", `Quick, test_shutdown_concurrent);
  ]
