(* The compact trace codec (DESIGN.md §14): byte-packed RUN/LITERAL
   token streams must round-trip every legal packed-entry sequence —
   run-length boundaries, backward pc jumps, map toggles and the
   max_pc/max_reg corners included — report their resident size
   exactly, and beat the uncompressed packed-array format by the 4x
   the replay engine's cache budget is built on. *)

open Rc_machine
open Rc_harness
open Rc_workloads

let check_bool = Alcotest.(check bool)

let build arch es ~output ~checksum =
  let b = Dtrace.builder arch in
  List.iter (Dtrace.add_packed b) es;
  match Dtrace.finish b ~output ~checksum with
  | Some t -> t
  | None -> Alcotest.fail "finish on a valid builder returned None"

(** Encode, decode, and require the identical entry sequence, output
    and checksum back. *)
let roundtrip name arch es ~output ~checksum =
  let t = build arch es ~output ~checksum in
  Alcotest.(check int) (name ^ ": n") (List.length es) t.Dtrace.n;
  let back = Dtrace.entries arch t in
  List.iteri
    (fun i e ->
      if back.(i) <> e then
        Alcotest.failf "%s: entry %d decoded %#x, recorded %#x" name i back.(i)
          e)
    es;
  Alcotest.(check (list int64)) (name ^ ": output") output (Dtrace.output t);
  Alcotest.(check int64) (name ^ ": checksum") checksum t.Dtrace.checksum;
  t

(* --- run-length boundaries ----------------------------------------------- *)

(* Straight-line code of every interesting length: a run token holds at
   most 127 entries, so 127/128/255 cross the token boundary.  Entries
   are "plain" (sequential pc from 0, architectural operands, map off),
   i.e. maximally compressible. *)
let test_runs () =
  let code_len = 300 in
  let s0 = Array.init code_len (fun i -> i mod 7) in
  let s1 = Array.init code_len (fun i -> if i mod 3 = 0 then -1 else i mod 11) in
  let d = Array.init code_len (fun i -> (i + 5) mod 13) in
  let arch = Dtrace.arch_of_arrays ~s0 ~s1 ~d in
  List.iter
    (fun n ->
      let es =
        List.init n (fun i ->
            Dtrace.pack ~pc:i ~sp0:s0.(i) ~sp1:s1.(i) ~dp:d.(i) ~map_on:false
              ~taken:false)
      in
      let t = roundtrip (Fmt.str "run/%d" n) arch es ~output:[] ~checksum:0L in
      (* n plain entries cost ceil(n/127) run tokens. *)
      Alcotest.(check int)
        (Fmt.str "run/%d: token bytes" n)
        ((n + 126) / 127)
        (Bytes.length t.Dtrace.data))
    [ 1; 2; 126; 127; 128; 254; 255; 300 ]

(* --- packed-layout corners ----------------------------------------------- *)

(* The extreme values the layout admits: pc 0 and max_pc (largest
   forward and backward deltas), registers -1/0/max_reg against
   arbitrary architectural predictions, both flag bits. *)
let test_extremes () =
  let n = Dtrace.max_pc + 1 in
  let s0 = Array.make n (-1) and s1 = Array.make n (-1) and d = Array.make n (-1) in
  s0.(0) <- 0;
  s1.(0) <- Dtrace.max_reg;
  d.(0) <- 5;
  s0.(Dtrace.max_pc) <- Dtrace.max_reg;
  d.(Dtrace.max_pc) <- 0;
  let arch = Dtrace.arch_of_arrays ~s0 ~s1 ~d in
  let es =
    [
      Dtrace.pack ~pc:0 ~sp0:Dtrace.max_reg ~sp1:0 ~dp:(-1) ~map_on:true
        ~taken:true;
      Dtrace.pack ~pc:Dtrace.max_pc ~sp0:0 ~sp1:(-1) ~dp:Dtrace.max_reg
        ~map_on:false ~taken:false;
      Dtrace.pack ~pc:1 ~sp0:(-1) ~sp1:(-1) ~dp:(-1) ~map_on:true ~taken:true;
      Dtrace.pack ~pc:2 ~sp0:(-1) ~sp1:(-1) ~dp:(-1) ~map_on:true ~taken:false;
    ]
  in
  ignore
    (roundtrip "extremes" arch es ~output:[ Int64.min_int; Int64.max_int; 0L ]
       ~checksum:(-1L))

(* --- fuzz ----------------------------------------------------------------- *)

(* Random mixtures of compressible straight-line stretches and
   arbitrary literal entries (backward jumps, map toggles, register
   overrides), against random architectural tables.  A random entry is
   also sabotaged each trial: the copy must differ exactly there and
   nowhere else. *)
let test_fuzz () =
  let st = Random.State.make [| 0x5eed; 14 |] in
  for trial = 0 to 24 do
    let code_len = 1 + Random.State.int st 64 in
    let mk () =
      Array.init code_len (fun _ ->
          if Random.State.bool st then -1 else Random.State.int st 64)
    in
    let s0 = mk () and s1 = mk () and d = mk () in
    let arch = Dtrace.arch_of_arrays ~s0 ~s1 ~d in
    let n = 1 + Random.State.int st 500 in
    let prev = ref (-1) and prev_map = ref false in
    let rev = ref [] in
    for _ = 1 to n do
      let plain = Random.State.int st 4 < 3 && !prev + 1 < code_len in
      let pc = if plain then !prev + 1 else Random.State.int st code_len in
      let reg (a : int array) =
        if plain then a.(pc)
        else
          match Random.State.int st 4 with
          | 0 -> -1
          | 1 -> a.(pc)
          | 2 -> Random.State.int st 64
          | _ -> Dtrace.max_reg - Random.State.int st 3
      in
      let map_on = if plain then !prev_map else Random.State.bool st in
      let taken = (not plain) && Random.State.bool st in
      prev := pc;
      prev_map := map_on;
      rev :=
        Dtrace.pack ~pc ~sp0:(reg s0) ~sp1:(reg s1) ~dp:(reg d) ~map_on ~taken
        :: !rev
    done;
    let es = List.rev !rev in
    let output =
      List.init
        (Random.State.int st 6)
        (fun i -> Int64.of_int ((i * 1234567) - 42))
    in
    let name = Fmt.str "fuzz/%d" trial in
    let t = roundtrip name arch es ~output ~checksum:0x9E3779B9L in
    (* plant a divergence and require it to surface exactly once *)
    let i = Random.State.int st n in
    let orig = (Dtrace.entries arch t).(i) in
    let swapped =
      Dtrace.pack ~pc:(Dtrace.pc orig) ~sp0:(Dtrace.sp0 orig)
        ~sp1:(Dtrace.sp1 orig) ~dp:(Dtrace.dp orig)
        ~map_on:(not (Dtrace.map_on orig))
        ~taken:(Dtrace.taken orig)
    in
    let bad = Dtrace.entries arch (Dtrace.sabotage arch t i swapped) in
    List.iteri
      (fun j e ->
        let want = if j = i then swapped else e in
        if bad.(j) <> want then
          Alcotest.failf "%s: sabotage at %d corrupted entry %d" name i j)
      es
  done

(* --- exact resident size -------------------------------------------------- *)

(* [bytes] claims the trace's exact heap footprint: check it against
   the runtime's own accounting of every block reachable from the
   record, headers included. *)
let test_bytes_exact () =
  let s0 = Array.make 8 (-1) and s1 = Array.make 8 (-1) and d = Array.make 8 0 in
  let arch = Dtrace.arch_of_arrays ~s0 ~s1 ~d in
  List.iter
    (fun (name, n, output) ->
      let es =
        List.init n (fun i ->
            Dtrace.pack ~pc:(i mod 8) ~sp0:(-1) ~sp1:(-1)
              ~dp:(if i mod 3 = 0 then 7 else 0)
              ~map_on:(i mod 5 = 0) ~taken:(i mod 8 = 7))
      in
      let t = build arch es ~output ~checksum:42L in
      Alcotest.(check int)
        (name ^ ": bytes = heap words reachable from the trace")
        (8 * Obj.reachable_words (Obj.repr t))
        (Dtrace.bytes t))
    [ ("empty", 0, []); ("small", 5, [ 7L ]); ("larger", 400, [ 1L; 2L; 3L ]) ]

(* --- compression on a real kernel ----------------------------------------- *)

(* The 4x budget the trace cache is sized around, measured on real
   recordings (every kernel, RC, small core) against what the
   uncompressed format held resident: one 8-byte word per entry plus a
   24-byte list cell + boxed int64 per output value.  The last-sighting
   prediction actually lands between 17x and 300x on these, so 4x per
   kernel leaves a wide margin for workload drift. *)
let test_compression () =
  List.iter
    (fun (b : Wutil.bench) ->
      let opts =
        Experiments.reg_opts b ~label:(Experiments.small_label b) ~rc:true ()
      in
      let c = Pipeline.compile opts (b.Wutil.build 1) in
      let r, tr = Pipeline.simulate_recorded c in
      let tr = Option.get tr in
      Alcotest.(check (list int64))
        (b.Wutil.name ^ ": recorded output matches the run")
        r.Rc_machine.Machine.output (Dtrace.output tr);
      let old_bytes =
        (8 * (tr.Dtrace.n + 8)) + (48 * List.length r.Rc_machine.Machine.output)
      in
      check_bool
        (Fmt.str "%s: compact %d bytes, packed format %d" b.Wutil.name
           (Dtrace.bytes tr) old_bytes)
        true
        (4 * Dtrace.bytes tr <= old_bytes))
    (Registry.all ())

(* --- wire serialization ---------------------------------------------------- *)

(* to_string/of_string carry a trace between processes (the on-disk
   store): the round-trip must preserve entries, output and checksum
   exactly, and of_string must reject every framing violation rather
   than hand back a trace that replays garbage. *)
let test_serialize_roundtrip () =
  let code_len = 40 in
  let s0 = Array.init code_len (fun i -> i mod 5) in
  let s1 = Array.init code_len (fun i -> if i mod 4 = 0 then -1 else i mod 9) in
  let d = Array.init code_len (fun i -> (i + 2) mod 11) in
  let arch = Dtrace.arch_of_arrays ~s0 ~s1 ~d in
  List.iter
    (fun (name, n, output) ->
      let es =
        List.init n (fun i ->
            Dtrace.pack ~pc:(i mod code_len) ~sp0:(-1) ~sp1:(-1)
              ~dp:(if i mod 3 = 0 then 4 else -1)
              ~map_on:(i mod 7 < 3) ~taken:(i mod code_len = code_len - 1))
      in
      let t = build arch es ~output ~checksum:0x5eedL in
      match Dtrace.of_string (Dtrace.to_string t) with
      | None -> Alcotest.failf "%s: of_string rejected its own encoding" name
      | Some t' ->
          Alcotest.(check int) (name ^ ": n") t.Dtrace.n t'.Dtrace.n;
          Alcotest.(check int64)
            (name ^ ": checksum") t.Dtrace.checksum t'.Dtrace.checksum;
          check_bool (name ^ ": token bytes") true
            (Bytes.equal t.Dtrace.data t'.Dtrace.data);
          Alcotest.(check (list int64))
            (name ^ ": output") (Dtrace.output t) (Dtrace.output t');
          Alcotest.(check (array int))
            (name ^ ": entries")
            (Dtrace.entries arch t) (Dtrace.entries arch t'))
    [ ("empty", 0, []); ("small", 7, [ 3L; -1L ]); ("larger", 350, [ 0L ]) ]

let test_serialize_rejects () =
  let s0 = [| 0; 1 |] and s1 = [| -1; -1 |] and d = [| 1; 0 |] in
  let arch = Dtrace.arch_of_arrays ~s0 ~s1 ~d in
  let es =
    [
      Dtrace.pack ~pc:0 ~sp0:0 ~sp1:(-1) ~dp:1 ~map_on:false ~taken:false;
      Dtrace.pack ~pc:1 ~sp0:1 ~sp1:(-1) ~dp:0 ~map_on:true ~taken:true;
    ]
  in
  let good = Dtrace.to_string (build arch es ~output:[ 9L ] ~checksum:1L) in
  let reject name s =
    match Dtrace.of_string s with
    | None -> ()
    | Some _ -> Alcotest.failf "of_string accepted %s" name
  in
  reject "the empty string" "";
  reject "a short header" (String.sub good 0 16);
  reject "a truncated body" (String.sub good 0 (String.length good - 1));
  reject "a padded body" (good ^ "\x00");
  (* Corrupt the data-length field so the declared frame disagrees with
     the actual length. *)
  let b = Bytes.of_string good in
  Bytes.set_int64_le b 16 (Int64.add (Bytes.get_int64_le b 16) 1L);
  reject "an inconsistent data length" (Bytes.unsafe_to_string b);
  (* A negative entry count. *)
  let b = Bytes.of_string good in
  Bytes.set_int64_le b 0 (-1L);
  reject "a negative n" (Bytes.unsafe_to_string b)

let suite =
  [
    ("run-length boundaries round-trip", `Quick, test_runs);
    ("max pc/reg corners round-trip", `Slow, test_extremes);
    ("codec fuzz + sabotage locality", `Quick, test_fuzz);
    ("bytes is exact", `Quick, test_bytes_exact);
    ("wire serialization round-trips", `Quick, test_serialize_roundtrip);
    ("wire deserialization rejects bad framing", `Quick, test_serialize_rejects);
    ("≥4x smaller than packed ints on every kernel", `Slow, test_compression);
  ]
