(* Tests for rc_par: the domain pool's deterministic fan-out, exception
   propagation, the jobs=1 degeneracy, and the single-flight memo. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom of int

let squares n = List.init n (fun k -> k * k)

let test_ordering () =
  Rc_par.Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in input order" (squares 100)
        (Rc_par.Pool.map_cells pool (fun x -> x * x) xs))

let test_jobs_one_degeneracy () =
  Rc_par.Pool.with_pool ~jobs:1 (fun pool ->
      check "clamped to one domain" 1 (Rc_par.Pool.jobs pool);
      Alcotest.(check (list int))
        "jobs=1 is List.map" (squares 10)
        (Rc_par.Pool.map_cells pool (fun x -> x * x) (List.init 10 Fun.id));
      Alcotest.(check (list int))
        "empty input" []
        (Rc_par.Pool.map_cells pool (fun x -> x) []))

let test_jobs_clamped () =
  Rc_par.Pool.with_pool ~jobs:(-3) (fun pool ->
      check "negative jobs clamped" 1 (Rc_par.Pool.jobs pool))

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Rc_par.Pool.with_pool ~jobs (fun pool ->
          check_bool
            (Fmt.str "raises at jobs=%d" jobs)
            true
            (try
               ignore
                 (Rc_par.Pool.map_cells pool
                    (fun x -> if x mod 7 = 3 then raise (Boom x) else x)
                    (List.init 50 Fun.id));
               false
             with Boom x ->
               (* the lowest-index failing cell wins, deterministically *)
               x = 3)))
    [ 1; 4 ]

let test_nested_fanout () =
  (* a cell may fan out again: the waiting domain helps drain the
     queue instead of deadlocking the pool *)
  Rc_par.Pool.with_pool ~jobs:2 (fun pool ->
      let vss =
        Rc_par.Pool.map_cells pool
          (fun x ->
            Rc_par.Pool.map_cells pool (fun y -> (10 * x) + y) [ 1; 2; 3 ])
          [ 1; 2 ]
      in
      Alcotest.(check (list (list int)))
        "nested results" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] vss)

let test_memo_single_flight () =
  Rc_par.Pool.with_pool ~jobs:4 (fun pool ->
      let memo = Rc_par.Memo.create 8 in
      let computed = Atomic.make 0 in
      let vs =
        Rc_par.Pool.map_cells pool
          (fun _ ->
            Rc_par.Memo.find_or_compute memo "key" (fun () ->
                Atomic.incr computed;
                (* widen the in-flight window so concurrent callers
                   actually hit the Running state *)
                ignore (Sys.opaque_identity (List.init 1000 Fun.id));
                42))
          (List.init 64 Fun.id)
      in
      check "computed exactly once" 1 (Atomic.get computed);
      check_bool "every caller sees the value" true
        (List.for_all (fun v -> v = 42) vs))

let test_memo_failure_cached () =
  let memo = Rc_par.Memo.create 8 in
  let computed = ref 0 in
  let attempt () =
    try
      ignore
        (Rc_par.Memo.find_or_compute memo "k" (fun () ->
             incr computed;
             raise (Boom 1)));
      false
    with Boom 1 -> true
  in
  check_bool "first call raises" true (attempt ());
  check_bool "second call raises too" true (attempt ());
  check "compute ran once" 1 !computed

let test_pool_stats () =
  Rc_par.Pool.with_pool ~jobs:3 (fun pool ->
      ignore
        (Rc_par.Pool.map_cells pool
           (fun x -> ignore (Sys.opaque_identity (List.init 2000 Fun.id)); x)
           (List.init 40 Fun.id));
      let stats = Rc_par.Pool.stats pool in
      check "one stats row per domain" 3 (List.length stats);
      let total_tasks =
        List.fold_left (fun a s -> a + s.Rc_par.Pool.d_tasks) 0 stats
      in
      check "every task attributed to a domain" 40 total_tasks;
      List.iter
        (fun s ->
          check_bool "busy time non-negative" true (s.Rc_par.Pool.d_busy_s >= 0.);
          check_bool "wait time non-negative" true (s.Rc_par.Pool.d_wait_s >= 0.))
        stats)

let test_pool_stats_jobs_one () =
  (* the jobs=1 inline path still attributes work to the single slot *)
  Rc_par.Pool.with_pool ~jobs:1 (fun pool ->
      ignore (Rc_par.Pool.map_cells pool (fun x -> x) (List.init 7 Fun.id));
      match Rc_par.Pool.stats pool with
      | [ s ] -> check "inline tasks counted" 7 s.Rc_par.Pool.d_tasks
      | l -> Alcotest.failf "expected 1 stats row, got %d" (List.length l))

let suite =
  [
    ("fan-out preserves order", `Quick, test_ordering);
    ("jobs=1 degeneracy", `Quick, test_jobs_one_degeneracy);
    ("jobs clamped to >= 1", `Quick, test_jobs_clamped);
    ("exception propagation", `Quick, test_exception_propagation);
    ("nested fan-out", `Quick, test_nested_fanout);
    ("memo is single-flight", `Quick, test_memo_single_flight);
    ("memo caches failures", `Quick, test_memo_failure_cached);
    ("pool per-domain stats", `Quick, test_pool_stats);
    ("pool stats at jobs=1", `Quick, test_pool_stats_jobs_one);
  ]
