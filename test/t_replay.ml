(* Equivalence of the trace-replay timing engine with execution-driven
   simulation (DESIGN.md §14): Machine.result must be bit-identical
   between the two engines on every cell of the fig10 and fig13 grids
   and under all four automatic-reset models, and a planted divergence
   (sabotaged trace) must be caught and attributed to its cell key. *)

open Rc_harness
open Rc_workloads

let check_bool = Alcotest.(check bool)

(* Compilation sharing mirrors the experiment harness: one [prepare]
   per benchmark, one [allocate] per (benchmark, alloc_key) — the tests
   sweep hundreds of cells and recompiling the front half every time
   would dominate the suite. *)

let prepared : (string, Pipeline.prepared) Hashtbl.t = Hashtbl.create 16
let allocs : (string, Pipeline.allocated) Hashtbl.t = Hashtbl.create 64

let compile (b : Wutil.bench) (opts : Pipeline.options) =
  let p =
    match Hashtbl.find_opt prepared b.Wutil.name with
    | Some p -> p
    | None ->
        let p = Pipeline.prepare ~opt:opts.Pipeline.opt (b.Wutil.build 1) in
        Hashtbl.add prepared b.Wutil.name p;
        p
  in
  let akey = b.Wutil.name ^ "#" ^ Pipeline.alloc_key opts in
  let a =
    match Hashtbl.find_opt allocs akey with
    | Some a -> a
    | None ->
        let a = Pipeline.allocate opts p in
        Hashtbl.add allocs akey a;
        a
  in
  Pipeline.compile_allocated opts a

(** First field where two results differ, as a message naming the cell
    — [None] when bit-identical.  Field-by-field so a regression points
    at the counter that drifted, not just "results differ". *)
let divergence key (a : Rc_machine.Machine.result) (b : Rc_machine.Machine.result)
    =
  let open Rc_machine.Machine in
  let ints =
    [
      ("cycles", a.cycles, b.cycles);
      ("issued", a.issued, b.issued);
      ("connects", a.connects, b.connects);
      ("extra_connects", a.extra_connects, b.extra_connects);
      ("mem_ops", a.mem_ops, b.mem_ops);
      ("branches", a.branches, b.branches);
      ("mispredicts", a.mispredicts, b.mispredicts);
      ("data_stalls", a.data_stalls, b.data_stalls);
      ("map_stalls", a.map_stalls, b.map_stalls);
      ("channel_stalls", a.channel_stalls, b.channel_stalls);
      ("lost_data", a.lost_data, b.lost_data);
      ("lost_map", a.lost_map, b.lost_map);
      ("lost_channel", a.lost_channel, b.lost_channel);
      ("lost_branch", a.lost_branch, b.lost_branch);
      ("lost_fetch", a.lost_fetch, b.lost_fetch);
    ]
  in
  match List.find_opt (fun (_, x, y) -> x <> y) ints with
  | Some (f, x, y) ->
      Some (Fmt.str "%s: %s executed %d, replayed %d" key f x y)
  | None ->
      if not (Int64.equal a.checksum b.checksum) then
        Some (Fmt.str "%s: checksum %Ld <> %Ld" key a.checksum b.checksum)
      else if a.output <> b.output then Some (Fmt.str "%s: output differs" key)
      else None

(** Execute-and-record, replay, and require a bit-identical result. *)
let check_cell key c =
  let r_exec, tr = Pipeline.simulate_recorded c in
  match tr with
  | None -> Alcotest.failf "%s: run was not replayable" key
  | Some tr -> (
      let r_rep = Pipeline.simulate_replayed c tr in
      match divergence key r_exec r_rep with
      | None -> ()
      | Some msg -> Alcotest.fail msg)

let equivalent_on cells =
  List.iter (fun (key, b, opts) -> check_cell key (compile b opts)) cells

(* --- the grids ---------------------------------------------------------- *)

let fig10_cells () =
  let lat = Rc_isa.Latency.v ~load:2 () in
  List.concat_map
    (fun (b : Wutil.bench) ->
      let label = Experiments.small_label b in
      List.concat_map
        (fun issue ->
          [
            ( Fmt.str "fig10/%s/no/%d" b.Wutil.name issue,
              b,
              Experiments.reg_opts b ~label ~rc:false ~issue ~lat () );
            ( Fmt.str "fig10/%s/rc/%d" b.Wutil.name issue,
              b,
              Experiments.reg_opts b ~label ~rc:true ~issue ~lat () );
            ( Fmt.str "fig10/%s/un/%d" b.Wutil.name issue,
              b,
              Experiments.unlimited_opts ~issue ~lat () );
          ])
        [ 1; 2; 4; 8 ])
    (Registry.all ())

let fig13_cells () =
  List.concat_map
    (fun (b : Wutil.bench) ->
      let label = Experiments.small_label b in
      List.concat_map
        (fun load ->
          let lat = Rc_isa.Latency.v ~load () in
          List.concat_map
            (fun mem_channels ->
              [
                ( Fmt.str "fig13/%s/no%dc/l%d" b.Wutil.name mem_channels load,
                  b,
                  Experiments.reg_opts b ~label ~rc:false ~mem_channels ~lat ()
                );
                ( Fmt.str "fig13/%s/rc%dc/l%d" b.Wutil.name mem_channels load,
                  b,
                  Experiments.reg_opts b ~label ~rc:true ~mem_channels ~lat ()
                );
              ])
            [ 2; 4 ])
        [ 2; 4 ])
    (Registry.all ())

let model_cells () =
  List.concat_map
    (fun (b : Wutil.bench) ->
      let label = Experiments.small_label b in
      List.map
        (fun model ->
          ( Fmt.str "models/%s/m%d" b.Wutil.name (Rc_core.Model.number model),
            b,
            Experiments.reg_opts b ~label ~rc:true ~model () ))
        Rc_core.Model.all)
    (Registry.all ())

let test_fig10_grid () = equivalent_on (fig10_cells ())
let test_fig13_grid () = equivalent_on (fig13_cells ())
let test_reset_models () = equivalent_on (model_cells ())

(* --- re-timing across configurations ------------------------------------ *)

(* The engine's whole point: a trace recorded under one configuration
   re-times any other configuration with the same image fingerprint and
   semantic key.  extra_stage does not enter compilation, so the fig12
   ±st pairs share images — record without the extra stage, replay the
   variant with it. *)
let test_cross_config_retiming () =
  let b = Registry.find "grep" in
  let lat = Rc_isa.Latency.v ~connect:1 () in
  let label = Experiments.small_label b in
  let base =
    compile b (Experiments.reg_opts b ~label ~rc:true ~lat ~extra_stage:false ())
  in
  let st =
    compile b (Experiments.reg_opts b ~label ~rc:true ~lat ~extra_stage:true ())
  in
  Alcotest.(check string)
    "±extra-stage images share a fingerprint"
    (Rc_isa.Image.fingerprint base.Pipeline.image)
    (Rc_isa.Image.fingerprint st.Pipeline.image);
  let _, tr = Pipeline.simulate_recorded base in
  let tr = Option.get tr in
  let r_exec = Pipeline.simulate st in
  let r_rep = Pipeline.simulate_replayed st tr in
  match divergence "fig12/grep/1cyc+st" r_exec r_rep with
  | None -> ()
  | Some msg -> Alcotest.fail msg

(* --- batched replay ------------------------------------------------------ *)

(* The batching prefetch's contract: one [replay_batch] pass over a
   group's shared trace must reproduce both the per-cell replay and
   direct execution of every member, field by field.  Cells are grouped
   exactly as the harness does — image fingerprint + semantic key — so
   every cell of the grid is covered, singletons as batches of one.
   (Within fig10 alone every cell schedules differently, so groups stay
   singletons; K > 1 batches are exercised by the cross-config test
   below.) *)
let test_fig10_batched () =
  let groups : (string, (string * Pipeline.compiled) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun (key, b, opts) ->
      let c = compile b opts in
      let tk =
        Rc_isa.Image.fingerprint c.Pipeline.image
        ^ "#"
        ^ Experiments.semantic_key opts
      in
      match Hashtbl.find_opt groups tk with
      | Some r -> r := (key, c) :: !r
      | None ->
          Hashtbl.add groups tk (ref [ (key, c) ]);
          order := tk :: !order)
    (fig10_cells ());
  let checked = ref 0 in
  List.iter
    (fun tk ->
      let cells = List.rev !(Hashtbl.find groups tk) in
      let _, c0 = List.hd cells in
      let _, tr = Pipeline.simulate_recorded c0 in
      let tr = Option.get tr in
      let rs = Pipeline.simulate_replay_batch (List.map snd cells) tr in
      List.iter2
        (fun (key, c) r_batch ->
          let r_exec = Pipeline.simulate c in
          (match divergence (key ^ "/batch") r_exec r_batch with
          | None -> ()
          | Some msg -> Alcotest.fail msg);
          (match
             divergence (key ^ "/per-cell") r_exec
               (Pipeline.simulate_replayed c tr)
           with
          | None -> ()
          | Some msg -> Alcotest.fail msg);
          incr checked)
        cells rs)
    (List.rev !order);
  Alcotest.(check int)
    "every fig10 cell checked"
    (List.length (fig10_cells ()))
    !checked

(* Batching across configurations that differ in timing knobs only:
   extra_stage and connect_dispatch never enter compilation, so the
   fig12 ±st pair plus a dispatch variant share one image — one trace,
   one pass, three timing states. *)
let test_batch_cross_config () =
  let b = Registry.find "grep" in
  let lat = Rc_isa.Latency.v ~connect:1 () in
  let label = Experiments.small_label b in
  let base =
    compile b (Experiments.reg_opts b ~label ~rc:true ~lat ~extra_stage:false ())
  in
  let st =
    compile b (Experiments.reg_opts b ~label ~rc:true ~lat ~extra_stage:true ())
  in
  let xd =
    {
      st with
      Pipeline.opts =
        { st.Pipeline.opts with Pipeline.connect_dispatch = Some (`Extra 1) };
    }
  in
  let _, tr = Pipeline.simulate_recorded base in
  let tr = Option.get tr in
  List.iter2
    (fun (key, c) r_batch ->
      match divergence key (Pipeline.simulate c) r_batch with
      | None -> ()
      | Some msg -> Alcotest.fail msg)
    [
      ("fig12/grep/batch/base", base);
      ("fig12/grep/batch/+st", st);
      ("fig12/grep/batch/+st+xd", xd);
    ]
    (Pipeline.simulate_replay_batch [ base; st; xd ] tr)

(* --- planted divergence -------------------------------------------------- *)

(* Flip the recorded outcome of the first taken branch: replay charges a
   different redirect penalty, so the equivalence check must fire — and
   name the cell it fired on. *)
let test_sabotage_caught () =
  let key = "sabotage/cmp/rc/16" in
  let b = Registry.find "cmp" in
  let c = compile b (Experiments.reg_opts b ~label:16 ~rc:true ()) in
  let r_exec, tr = Pipeline.simulate_recorded c in
  let tr = Option.get tr in
  let open Rc_machine.Dtrace in
  let arch =
    arch_of_dins
      (Rc_isa.Dins.decode ~lat:c.Pipeline.opts.Pipeline.lat
         c.Pipeline.image.Rc_isa.Image.code)
  in
  let es = entries arch tr in
  let i =
    let rec find i =
      if i >= Array.length es then
        Alcotest.fail "no taken branch in the cmp trace"
      else if taken es.(i) then i
      else find (i + 1)
    in
    find 0
  in
  let e = es.(i) in
  let flipped =
    pack ~pc:(pc e) ~sp0:(sp0 e) ~sp1:(sp1 e) ~dp:(dp e) ~map_on:(map_on e)
      ~taken:false
  in
  let bad = sabotage arch tr i flipped in
  let report =
    try divergence key r_exec (Pipeline.simulate_replayed ~verify:false c bad)
    with Rc_machine.Machine.Simulation_error m ->
      Some (Fmt.str "%s: replay failed: %s" key m)
  in
  match report with
  | Some msg ->
      check_bool "divergence report names the cell" true
        (String.length msg >= String.length key
        && String.sub msg 0 (String.length key) = key)
  | None -> Alcotest.fail "planted divergence went undetected"

let suite =
  [
    ("fig10 grid: replay ≡ execute", `Slow, test_fig10_grid);
    ("fig13 grid: replay ≡ execute", `Slow, test_fig13_grid);
    ("all reset models: replay ≡ execute", `Slow, test_reset_models);
    ("cross-config re-timing", `Slow, test_cross_config_retiming);
    ("fig10 grid: batched ≡ per-cell ≡ execute", `Slow, test_fig10_batched);
    ("cross-config batch", `Slow, test_batch_cross_config);
    ("sabotaged trace is caught", `Slow, test_sabotage_caught);
  ]
