(* The metrics registry (lib/obs/metrics.ml): histogram quantile
   accuracy against a sorted-array oracle on uniform, bimodal and
   heavy-tailed samples, exactness of count/sum/min/max, concurrent
   recording from four domains, and the registry surface — kind
   conflicts, name validation, label escaping in the Prometheus
   rendering. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
module M = Rc_obs.Metrics

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- quantiles vs a sorted-array oracle -------------------------------- *)

(* The histogram's contract: nearest-rank quantiles with relative error
   at most rel_error (1/64).  We allow twice that, since the oracle
   value itself sits anywhere inside its bucket. *)
let tolerance = 2.0 *. M.Hist.rel_error

let check_against_oracle name samples =
  let h = M.Hist.create () in
  Array.iter (M.Hist.observe h) samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length samples in
  check (name ^ ": count") n (M.Hist.count h);
  let exact_sum = Array.fold_left ( +. ) 0.0 samples in
  check_bool (name ^ ": sum") true
    (Float.abs (M.Hist.sum h -. exact_sum) <= 1e-9 *. Float.abs exact_sum);
  Alcotest.(check (float 0.0)) (name ^ ": min") sorted.(0) (M.Hist.quantile h 0.0);
  Alcotest.(check (float 0.0))
    (name ^ ": max") sorted.(n - 1) (M.Hist.quantile h 1.0);
  List.iter
    (fun p ->
      let rank = max 1 (min n (int_of_float (Float.ceil (p *. float_of_int n)))) in
      let oracle = sorted.(rank - 1) in
      let got = M.Hist.quantile h p in
      let err = Float.abs (got -. oracle) in
      if err > (tolerance *. Float.abs oracle) +. 1e-12 then
        Alcotest.failf "%s: q%.3f = %.9g, oracle %.9g (rel err %.4f > %.4f)"
          name p got oracle
          (err /. Float.abs oracle)
          tolerance)
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_quantiles_uniform () =
  let st = Random.State.make [| 42 |] in
  check_against_oracle "uniform"
    (Array.init 10_000 (fun _ -> Random.State.float st 1.0))

let test_quantiles_bimodal () =
  (* Two tight modes three decades apart: sub-millisecond cache hits
     and tens-of-milliseconds executions, the serve latency shape. *)
  let st = Random.State.make [| 43 |] in
  check_against_oracle "bimodal"
    (Array.init 10_000 (fun _ ->
         if Random.State.bool st then 0.0008 +. Random.State.float st 0.0004
         else 0.02 +. Random.State.float st 0.01))

let test_quantiles_heavy_tail () =
  (* Pareto-ish: u^-2 over (0,1] spans many octaves with a long tail. *)
  let st = Random.State.make [| 44 |] in
  check_against_oracle "heavy-tail"
    (Array.init 10_000 (fun _ ->
         let u = 1.0 -. Random.State.float st 0.999 in
         0.001 /. (u *. u)))

let test_extremes () =
  let h = M.Hist.create () in
  check "empty count" 0 (M.Hist.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (M.Hist.quantile h 0.5);
  (* Underflow and overflow land in the exact-extreme buckets. *)
  M.Hist.observe h 1e-30;
  M.Hist.observe h 1e30;
  check "extreme count" 2 (M.Hist.count h);
  Alcotest.(check (float 0.0)) "underflow min" 1e-30 (M.Hist.quantile h 0.0);
  Alcotest.(check (float 0.0)) "overflow max" 1e30 (M.Hist.quantile h 1.0)

(* --- concurrent recording ---------------------------------------------- *)

let test_concurrent_observe () =
  let h = M.Hist.create () in
  let per_domain = 10_000 in
  let worker () =
    for i = 1 to per_domain do
      M.Hist.observe h (float_of_int ((i mod 1000) + 1))
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check "count survives contention" (4 * per_domain) (M.Hist.count h);
  (* Integers sum exactly in doubles at this magnitude. *)
  let one_domain =
    let s = ref 0.0 in
    for i = 1 to per_domain do
      s := !s +. float_of_int ((i mod 1000) + 1)
    done;
    !s
  in
  Alcotest.(check (float 0.0)) "sum exact" (4.0 *. one_domain) (M.Hist.sum h);
  Alcotest.(check (float 0.0)) "min" 1.0 (M.Hist.min_value h);
  Alcotest.(check (float 0.0)) "max" 1000.0 (M.Hist.max_value h)

(* --- the registry surface ---------------------------------------------- *)

let test_registry_kinds () =
  let r = M.create () in
  M.inc r "total" 2.0;
  M.inc r "total" 3.0;
  Alcotest.(check (option (float 0.0))) "counter" (Some 5.0) (M.value r "total");
  (match M.inc r "total" (-1.0) with
  | () -> Alcotest.fail "negative counter delta accepted"
  | exception Invalid_argument _ -> ());
  (match M.set r "total" 1.0 with
  | () -> Alcotest.fail "kind conflict accepted"
  | exception Invalid_argument _ -> ());
  (match M.inc r "bad name!" 1.0 with
  | () -> Alcotest.fail "bad metric name accepted"
  | exception Invalid_argument _ -> ());
  (match M.inc r ~labels:[ ("le", "x"); ("b:ad", "y") ] "ok" 1.0 with
  | () -> Alcotest.fail "bad label name accepted"
  | exception Invalid_argument _ -> ());
  M.set r "gauge" 2.5;
  M.set r "gauge" 1.5;
  Alcotest.(check (option (float 0.0))) "gauge" (Some 1.5) (M.value r "gauge");
  (* Label order is irrelevant: both writes hit one series. *)
  M.inc r ~labels:[ ("a", "1"); ("b", "2") ] "lab" 1.0;
  M.inc r ~labels:[ ("b", "2"); ("a", "1") ] "lab" 1.0;
  Alcotest.(check (option (float 0.0)))
    "labels normalised" (Some 2.0)
    (M.value r ~labels:[ ("a", "1"); ("b", "2") ] "lab")

let test_render () =
  let r = M.create () in
  M.inc r ~help:"requests" ~labels:[ ("path", "/run") ] "req_total" 1.0;
  M.set r "up" 1.0;
  M.observe r ~labels:[ ("ep", "x") ] "lat_seconds" 0.5;
  (* A label value exercising every escape. *)
  M.inc r ~labels:[ ("v", "a\\b\"c\nd") ] "esc_total" 1.0;
  let out = M.render r in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle out))
    [
      "# HELP req_total requests";
      "# TYPE req_total counter";
      {|req_total{path="/run"} 1|};
      "# TYPE up gauge";
      "# TYPE lat_seconds histogram";
      {|lat_seconds_bucket{ep="x",le="+Inf"} 1|};
      {|lat_seconds_sum{ep="x"} 0.5|};
      {|lat_seconds_count{ep="x"} 1|};
      {|esc_total{v="a\\b\"c\nd"} 1|};
    ];
  check_bool "ends with newline" true
    (out <> "" && out.[String.length out - 1] = '\n')

let suite =
  [
    ("hist: uniform vs oracle", `Quick, test_quantiles_uniform);
    ("hist: bimodal vs oracle", `Quick, test_quantiles_bimodal);
    ("hist: heavy tail vs oracle", `Quick, test_quantiles_heavy_tail);
    ("hist: empty and extremes", `Quick, test_extremes);
    ("hist: 4-domain concurrent observe", `Quick, test_concurrent_observe);
    ("registry: kinds, names, labels", `Quick, test_registry_kinds);
    ("registry: prometheus rendering", `Quick, test_render);
  ]
