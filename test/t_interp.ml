(* Tests for rc_interp: reference semantics, memory, calls, profiling. *)

open Rc_isa
open Rc_ir
module B = Builder
module I = Rc_interp.Interp
module P = Rc_interp.Profile

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_out = Alcotest.(check (list int64))

let run build =
  let prog = B.program ~entry:"main" in
  build prog;
  I.run prog

let test_arithmetic () =
  let out =
    run (fun prog ->
        ignore
          (B.define prog "main" ~params:[] (fun b _ ->
               let x = B.cint b 100 in
               B.emit b (B.divi b x 7L);
               B.emit b (B.remi b x 7L);
               B.emit b (B.divi b x 0L);
               B.emit b (B.srai b (B.cint b (-32)) 2L);
               B.halt b)))
  in
  check_out "arith" [ 14L; 2L; 0L; -8L ] out.I.output

let test_float_ops () =
  let out =
    run (fun prog ->
        ignore
          (B.define prog "main" ~params:[] (fun b _ ->
               let x = B.cf b 2.5 in
               let y = B.cf b 4.0 in
               B.femit b (B.fmul b x y);
               B.femit b (B.fneg b x);
               B.emit b (B.ftoi b (B.fadd b x y));
               B.emit b (B.fcmp b Opcode.Lt x y);
               let z = B.itof b (B.cint b 3) in
               B.femit b z;
               B.halt b)))
  in
  check_out "floats"
    [
      Int64.bits_of_float 10.0;
      Int64.bits_of_float (-2.5);
      6L;
      1L;
      Int64.bits_of_float 3.0;
    ]
    out.I.output

let test_memory_widths () =
  let out =
    run (fun prog ->
        B.global prog "g" ~bytes:16 ();
        ignore
          (B.define prog "main" ~params:[] (fun b _ ->
               let p = B.addr b "g" in
               B.store b ~src:(B.ci b 0x0102030405060708L) p;
               B.emit b (B.loadb b p) (* little endian: low byte first *);
               B.emit b (B.loadb b ~off:7 p);
               B.storeb b ~src:(B.cint b 0x1FF) ~off:1 p;
               B.emit b (B.load b p);
               B.halt b)))
  in
  check_out "memory"
    [ 0x08L; 0x01L; 0x010203040506FF08L ]
    out.I.output

let test_global_initialisers () =
  let out =
    run (fun prog ->
        Rc_workloads.Wutil.global_words prog "w" [| 11L; 22L |];
        Rc_workloads.Wutil.global_bytes prog "s" "AB";
        Rc_workloads.Wutil.global_doubles prog "d" [| 1.25 |];
        ignore
          (B.define prog "main" ~params:[] (fun b _ ->
               B.emit b (B.load b ~off:8 (B.addr b "w"));
               B.emit b (B.loadb b ~off:1 (B.addr b "s"));
               B.femit b (B.fload b (B.addr b "d"));
               B.halt b)))
  in
  check_out "inits" [ 22L; 66L; Int64.bits_of_float 1.25 ] out.I.output

let test_call_stack () =
  let out =
    run (fun prog ->
        let _f =
          B.define prog "fib" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
              let n = List.hd params in
              let r = B.fresh b Reg.Int in
              B.if_ b Opcode.Lt n (B.cint b 2)
                ~then_:(fun () -> B.mov b ~dst:r ~src:n)
                ~else_:(fun () ->
                  let a = B.call_i b "fib" [ B.subi b n 1L ] in
                  let c = B.call_i b "fib" [ B.subi b n 2L ] in
                  B.assign b r (B.add b a c))
                ();
              B.ret b (Some r))
        in
        ignore
          (B.define prog "main" ~params:[] (fun b _ ->
               B.emit b (B.call_i b "fib" [ B.cint b 10 ]);
               B.halt b)))
  in
  check_out "fib 10" [ 55L ] out.I.output

let test_profile_counts () =
  let prog = B.program ~entry:"main" in
  let _leaf =
    B.define prog "leaf" ~params:[] ~ret:Reg.Int (fun b _ ->
        B.ret b (Some (B.cint b 1)))
  in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:5 (fun _ ->
            B.assign b acc (B.add b acc (B.call_i b "leaf" [])));
        B.emit b acc;
        B.halt b)
  in
  let out = I.run prog in
  let p = out.I.profile in
  check "call count" 5 (P.call_count p "leaf");
  (* the loop body runs 5 times *)
  let body =
    List.find
      (fun (b : Block.t) ->
        List.exists (fun op -> Op.is_call op) b.Block.ops)
      f.Func.blocks
  in
  check "body weight" 5 (P.weight p ~func:"main" ~block:body.Block.id);
  (* the back branch in the header is taken 5 of 6 times *)
  let header =
    List.find
      (fun (b : Block.t) ->
        match b.Block.term with Op.Br _ -> true | _ -> false)
      f.Func.blocks
  in
  check_bool "header predicted taken" true
    (P.predict_taken p ~func:"main" ~block:header.Block.id)

let test_checksum_order_sensitivity () =
  let o1 =
    run (fun prog ->
        ignore
          (B.define prog "main" ~params:[] (fun b _ ->
               B.emit b (B.cint b 1);
               B.emit b (B.cint b 2);
               B.halt b)))
  in
  let o2 =
    run (fun prog ->
        ignore
          (B.define prog "main" ~params:[] (fun b _ ->
               B.emit b (B.cint b 2);
               B.emit b (B.cint b 1);
               B.halt b)))
  in
  check_bool "order-sensitive checksum" true (o1.I.checksum <> o2.I.checksum)

let test_fuel () =
  let prog = B.program ~entry:"main" in
  let _ =
    B.define prog "main" ~params:[] (fun b _ ->
        let i = B.cint b 0 in
        B.while_ b ~cond:(fun () -> (Opcode.Ge, i, i)) ~body:(fun () -> ());
        B.halt b)
  in
  Alcotest.check_raises "out of fuel" I.Out_of_fuel (fun () ->
      ignore (I.run ~fuel:1000 prog))

let test_bad_address () =
  let prog = B.program ~entry:"main" in
  let _ =
    B.define prog "main" ~params:[] (fun b _ ->
        let p = B.cint b (-8) in
        B.emit b (B.load b p);
        B.halt b)
  in
  check_bool "bad address raises" true
    (try
       ignore (I.run prog);
       false
     with I.Bad_address _ -> true)

let test_dyn_ops_counted () =
  let out =
    run (fun prog ->
        ignore
          (B.define prog "main" ~params:[] (fun b _ ->
               B.emit b (B.cint b 1);
               B.halt b)))
  in
  (* li, emit, halt terminator *)
  check "dyn ops" 3 out.I.dyn_ops

let suite =
  [
    ("integer arithmetic", `Quick, test_arithmetic);
    ("floating point", `Quick, test_float_ops);
    ("memory widths and endianness", `Quick, test_memory_widths);
    ("global initialisers", `Quick, test_global_initialisers);
    ("recursive calls", `Quick, test_call_stack);
    ("profiling counts", `Quick, test_profile_counts);
    ("checksum order sensitivity", `Quick, test_checksum_order_sensitivity);
    ("fuel bound", `Quick, test_fuel);
    ("bad address detection", `Quick, test_bad_address);
    ("dynamic op counting", `Quick, test_dyn_ops_counted);
  ]
