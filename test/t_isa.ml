(* Unit tests for the rc_isa library: register files, opcodes, latencies,
   instruction constructors, machine-code containers and the assembler. *)

open Rc_isa

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Reg ---------------------------------------------------------------- *)

let test_file_partition () =
  let f = Reg.file ~core:16 ~total:256 in
  check "core" 16 f.Reg.core;
  check "extended" 240 (Reg.extended_count f);
  check_bool "core reg" true (Reg.is_core f 15);
  check_bool "not core" false (Reg.is_core f 16);
  check_bool "extended" true (Reg.is_extended f 16);
  check_bool "extended top" true (Reg.is_extended f 255);
  check_bool "beyond" false (Reg.is_extended f 256)

let test_file_validation () =
  Alcotest.check_raises "core too small" (Invalid_argument "Reg.file: core < 4")
    (fun () -> ignore (Reg.file ~core:2 ~total:8));
  Alcotest.check_raises "total < core"
    (Invalid_argument "Reg.file: total < core") (fun () ->
      ignore (Reg.file ~core:16 ~total:8))

let test_roles () =
  check "zero" 0 Reg.zero;
  check "sp" 1 Reg.sp;
  check "ra" 6 Reg.ra;
  check "rv" 7 Reg.rv;
  check "spill temps" 4 (Array.length (Reg.spill_temps Reg.Int));
  check "fspill temps" 2 (Array.length (Reg.spill_temps Reg.Float));
  check "home" 9 (Reg.home 9)

let test_allocatable () =
  let f = Reg.file ~core:16 ~total:32 in
  let alloc = Reg.allocatable Reg.Int f in
  check "allocatable count" (32 - Reg.first_alloc_int) (List.length alloc);
  check_bool "sp not allocatable" false (List.mem Reg.sp alloc);
  check_bool "spill temp not allocatable" false (List.mem Reg.spill_base alloc);
  check_bool "ra not allocatable" false (List.mem Reg.ra alloc);
  check_bool "first alloc included" true (List.mem Reg.first_alloc_int alloc);
  check_bool "extended included" true (List.mem 31 alloc)

let test_callee_saved () =
  let f = Reg.core_only 16 in
  let callee = Reg.callee_saved Reg.Int f in
  (* allocatable core = 8..15, upper half = 12..15 *)
  Alcotest.(check (list int)) "callee set" [ 12; 13; 14; 15 ] callee;
  check_bool "is callee" true (Reg.is_callee_saved Reg.Int f 12);
  check_bool "not callee" false (Reg.is_callee_saved Reg.Int f 11)

let test_pinned_indices () =
  Alcotest.(check (list int))
    "int pinned" [ Reg.zero; Reg.sp; Reg.ra ]
    (Reg.pinned_indices Reg.Int);
  Alcotest.(check (list int)) "float pinned" [] (Reg.pinned_indices Reg.Float)

(* --- Opcode ------------------------------------------------------------- *)

let test_eval_alu () =
  let open Opcode in
  Alcotest.(check int64) "add" 7L (eval_alu Add 3L 4L);
  Alcotest.(check int64) "sub" (-1L) (eval_alu Sub 3L 4L);
  Alcotest.(check int64) "mul" 12L (eval_alu Mul 3L 4L);
  Alcotest.(check int64) "div" 3L (eval_alu Div 13L 4L);
  Alcotest.(check int64) "div0" 0L (eval_alu Div 13L 0L);
  Alcotest.(check int64) "rem" 1L (eval_alu Rem 13L 4L);
  Alcotest.(check int64) "rem0" 0L (eval_alu Rem 13L 0L);
  Alcotest.(check int64) "and" 4L (eval_alu And 12L 5L);
  Alcotest.(check int64) "or" 13L (eval_alu Or 12L 5L);
  Alcotest.(check int64) "xor" 9L (eval_alu Xor 12L 5L);
  Alcotest.(check int64) "sll" 24L (eval_alu Sll 3L 3L);
  Alcotest.(check int64) "srl" 3L (eval_alu Srl 24L 3L);
  Alcotest.(check int64) "sra neg" (-2L) (eval_alu Sra (-8L) 2L);
  Alcotest.(check int64) "srl neg"
    0x3FFFFFFFFFFFFFFEL
    (eval_alu Srl (-8L) 2L);
  Alcotest.(check int64) "slt true" 1L (eval_alu Slt (-1L) 0L);
  Alcotest.(check int64) "slt false" 0L (eval_alu Slt 1L 0L);
  Alcotest.(check int64) "seq" 1L (eval_alu Seq 5L 5L);
  Alcotest.(check int64) "shift masks to 63" 2L (eval_alu Sll 1L 65L)

let test_eval_cond () =
  let open Opcode in
  check_bool "eq" true (eval_cond Eq 3L 3L);
  check_bool "ne" true (eval_cond Ne 3L 4L);
  check_bool "lt signed" true (eval_cond Lt (-1L) 0L);
  check_bool "le" true (eval_cond Le 3L 3L);
  check_bool "gt" false (eval_cond Gt 3L 3L);
  check_bool "ge" true (eval_cond Ge 3L 3L);
  List.iter
    (fun c ->
      List.iter
        (fun (a, b) ->
          check_bool
            (string_of_cond c ^ " negation")
            (eval_cond c a b)
            (not (eval_cond (negate_cond c) a b)))
        [ (1L, 2L); (2L, 1L); (1L, 1L); (-5L, 3L) ])
    [ Eq; Ne; Lt; Le; Gt; Ge ]

let test_eval_fpu () =
  let open Opcode in
  Alcotest.(check (float 1e-9)) "fadd" 7.5 (eval_fpu Fadd 3.0 4.5);
  Alcotest.(check (float 1e-9)) "fsub" (-1.5) (eval_fpu Fsub 3.0 4.5);
  Alcotest.(check (float 1e-9)) "fmul" 13.5 (eval_fpu Fmul 3.0 4.5);
  Alcotest.(check (float 1e-9)) "fdiv" 1.5 (eval_fpu Fdiv 4.5 3.0);
  Alcotest.(check (float 1e-9)) "fdiv0" 0.0 (eval_fpu Fdiv 4.5 0.0);
  Alcotest.(check (float 1e-9)) "fneg" (-3.0) (eval_fpu Fneg 3.0 0.0);
  Alcotest.(check (float 1e-9)) "fabs" 3.0 (eval_fpu Fabs (-3.0) 0.0)

let test_classification () =
  let open Opcode in
  check_bool "br is branch" true (is_branch (Br Eq));
  check_bool "jsr is branch" true (is_branch Jsr);
  check_bool "jsr is call" true (is_call Jsr);
  check_bool "ld is load" true (is_load (Ld W8));
  check_bool "fst is store" true (is_store Fst);
  check_bool "fld is mem" true (is_mem Fld);
  check_bool "connect" true (is_connect Connect);
  check_bool "alu not branch" false (is_branch (Alu Add))

(* --- Latency ------------------------------------------------------------ *)

let test_latency_table1 () =
  let lat = Latency.default in
  let l op = Latency.of_opcode lat op in
  check "int alu" 1 (l (Opcode.Alu Opcode.Add));
  check "int mul" 3 (l (Opcode.Alu Opcode.Mul));
  check "int div" 10 (l (Opcode.Alu Opcode.Div));
  check "int rem" 10 (l (Opcode.Alui Opcode.Rem));
  check "branch" 1 (l (Opcode.Br Opcode.Eq));
  check "load default" 2 (l (Opcode.Ld Opcode.W8));
  check "store" 1 (l (Opcode.St Opcode.W8));
  check "fp alu" 3 (l (Opcode.Fpu Opcode.Fadd));
  check "fp conversion" 3 (l Opcode.Itof);
  check "fp mul" 3 (l (Opcode.Fpu Opcode.Fmul));
  check "fp div" 10 (l (Opcode.Fpu Opcode.Fdiv));
  check "connect default" 0 (l Opcode.Connect);
  let lat4 = Latency.v ~load:4 ~connect:1 () in
  check "load 4" 4 (Latency.of_opcode lat4 (Opcode.Fld));
  check "connect 1" 1 (Latency.of_opcode lat4 Opcode.Connect);
  check "table rows" 10 (List.length (Latency.table1 lat))

let test_latency_validation () =
  Alcotest.check_raises "bad connect" (Invalid_argument "Latency.v: connect not 0/1")
    (fun () -> ignore (Latency.v ~connect:2 ()));
  Alcotest.check_raises "bad load" (Invalid_argument "Latency.v: load < 1")
    (fun () -> ignore (Latency.v ~load:0 ()))

(* --- Insn ---------------------------------------------------------------- *)

let test_insn_constructors () =
  let i = Insn.alu Opcode.Add ~dst:8 ~s1:9 ~s2:10 in
  check "srcs" 2 (Array.length i.Insn.srcs);
  check "dst" 8 (Option.get i.Insn.dst).Insn.r;
  let l = Insn.ld ~dst:8 ~base:Reg.sp ~off:16 () in
  Alcotest.(check int64) "offset" 16L l.Insn.imm;
  check_bool "load class int" true ((Option.get l.Insn.dst).Insn.cls = Reg.Int);
  let f = Insn.fld ~dst:3 ~base:Reg.sp ~off:8 () in
  check_bool "fld dst float" true ((Option.get f.Insn.dst).Insn.cls = Reg.Float);
  let b = Insn.br Opcode.Lt ~s1:8 ~s2:9 ~target:42 ~hint:true in
  check "target" 42 b.Insn.target;
  check_bool "hint" true b.Insn.hint;
  let j = Insn.jsr 7 in
  check "jsr writes ra" Reg.ra (Option.get j.Insn.dst).Insn.r;
  let r = Insn.rts () in
  check "rts reads ra" Reg.ra r.Insn.srcs.(0).Insn.r

let test_insn_connects () =
  let c = Insn.connect_use ~cls:Reg.Int ~ri:5 ~rp:30 () in
  check_bool "is connect" true (Insn.is_connect c);
  check "one update" 1 (Array.length c.Insn.connects);
  (let e = c.Insn.connects.(0) in
   check_bool "read kind" true (e.Insn.cmap = Insn.Read);
   check "ri" 5 e.Insn.ri;
   check "rp" 30 e.Insn.rp);
  let c2 =
    Insn.connect2
      { Insn.cmap = Insn.Write; ri = 3; rp = 20; ccls = Reg.Int }
      { Insn.cmap = Insn.Read; ri = 4; rp = 21; ccls = Reg.Int }
  in
  check "two updates" 2 (Array.length c2.Insn.connects)

let test_insn_pp () =
  let s = Fmt.str "%a" Insn.pp (Insn.alu Opcode.Add ~dst:8 ~s1:9 ~s2:10) in
  Alcotest.(check string) "alu pp" "add r8, r9, r10" s;
  let s = Fmt.str "%a" Insn.pp (Insn.connect_use ~cls:Reg.Int ~ri:5 ~rp:30 ()) in
  check_bool "connect pp mentions use" true
    (String.length s > 0 && String.sub s 0 7 = "connect")

(* --- Mcode / Image -------------------------------------------------------- *)

let simple_prog () =
  let m = Mcode.create ~entry:"main" in
  Mcode.add_global m (Mcode.global ~name:"data" ~bytes:64 ~init:(Mcode.Words [| 1L; 2L |]) ());
  Mcode.add_global m (Mcode.global ~name:"buf" ~bytes:10 ());
  Mcode.add_global m (Mcode.global ~name:"after" ~bytes:8 ());
  let blk1 = { Mcode.label = 0; insns = [ Insn.li ~dst:8 1L; Insn.jmp 1 ] } in
  let blk2 = { Mcode.label = 1; insns = [ Insn.halt () ] } in
  Mcode.add_func m { Mcode.name = "main"; entry_label = 0; blocks = [ blk1; blk2 ] };
  m

let test_assemble_layout () =
  let m = simple_prog () in
  let img = Image.assemble m in
  check "entry at zero" 0 img.Image.entry;
  check "data base" Image.data_base (Image.global_address img "data");
  check "buf after data" (Image.data_base + 64) (Image.global_address img "buf");
  (* 10 bytes aligned to 16 *)
  check "align8" (Image.data_base + 64 + 16) (Image.global_address img "after");
  check "code length" 3 (Array.length img.Image.code);
  (* the jmp's label 1 was patched to address 2 *)
  check "patched target" 2 img.Image.code.(1).Insn.target;
  check_bool "stack above data" true (img.Image.stack_top > img.Image.data_end)

let test_assemble_undefined_label () =
  let m = Mcode.create ~entry:"main" in
  let blk = { Mcode.label = 0; insns = [ Insn.jmp 99 ] } in
  Mcode.add_func m { Mcode.name = "main"; entry_label = 0; blocks = [ blk ] };
  Alcotest.check_raises "undefined label" (Image.Undefined_label 99) (fun () ->
      ignore (Image.assemble m))

let test_size_breakdown () =
  let m = Mcode.create ~entry:"main" in
  let insns =
    [
      Insn.li ~dst:8 1L;
      Insn.ld ~tag:Insn.Spill ~dst:8 ~base:Reg.sp ~off:0 ();
      Insn.st ~tag:Insn.Save ~src:8 ~base:Reg.sp ~off:8 ();
      Insn.st ~tag:Insn.Xsave ~src:8 ~base:Reg.sp ~off:16 ();
      Insn.connect_use ~cls:Reg.Int ~ri:5 ~rp:30 ();
      Insn.halt ();
    ]
  in
  Mcode.add_func m
    { Mcode.name = "main"; entry_label = 0; blocks = [ { Mcode.label = 0; insns } ] };
  let bk = Mcode.size_breakdown m in
  check "normal" 2 bk.Mcode.normal;
  check "spill" 1 bk.Mcode.spill;
  check "save" 1 bk.Mcode.save;
  check "xsave" 1 bk.Mcode.xsave;
  check "connects" 1 bk.Mcode.connects;
  check "total" 6 (Mcode.insn_count m)

let test_write_init () =
  let mem = Bytes.make 64 '\000' in
  Image.write_init mem 0 (Mcode.Words [| 0x1122334455667788L |]);
  Alcotest.(check int64) "words le" 0x1122334455667788L (Bytes.get_int64_le mem 0);
  Image.write_init mem 8 (Mcode.Doubles [| 1.5 |]);
  Alcotest.(check int64) "double bits" (Int64.bits_of_float 1.5)
    (Bytes.get_int64_le mem 8);
  Image.write_init mem 16 (Mcode.Bytes "abc");
  Alcotest.(check char) "bytes" 'b' (Bytes.get mem 17)

(* qcheck: assembling random block layouts preserves instruction counts
   and resolves every target to a valid address *)
let prop_assemble =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 6)
        (list_size (int_range 0 5)
           (map (fun d -> Insn.li ~dst:(8 + d) 1L) (int_range 0 7))))
  in
  QCheck.Test.make ~count:200 ~name:"assembler preserves layout"
    (QCheck.make gen)
    (fun blocks ->
      let m = Mcode.create ~entry:"main" in
      let nblocks = List.length blocks in
      let blocks =
        List.mapi
          (fun k insns ->
            (* end each block with a jump to the next (or halt) *)
            let insns =
              insns @ [ (if k = nblocks - 1 then Insn.halt () else Insn.jmp (k + 1)) ]
            in
            { Mcode.label = k; insns })
          blocks
      in
      Mcode.add_func m { Mcode.name = "main"; entry_label = 0; blocks };
      let img = Image.assemble m in
      Array.length img.Image.code = Mcode.insn_count m
      && Array.for_all
           (fun (i : Insn.t) ->
             i.Insn.target = Insn.no_target
             || (i.Insn.target >= 0 && i.Insn.target < Array.length img.Image.code))
           img.Image.code)

let suite =
  [
    ("file partition", `Quick, test_file_partition);
    ("file validation", `Quick, test_file_validation);
    ("register roles", `Quick, test_roles);
    ("allocatable set", `Quick, test_allocatable);
    ("callee-saved split", `Quick, test_callee_saved);
    ("pinned indices", `Quick, test_pinned_indices);
    ("alu semantics", `Quick, test_eval_alu);
    ("condition semantics", `Quick, test_eval_cond);
    ("fpu semantics", `Quick, test_eval_fpu);
    ("opcode classes", `Quick, test_classification);
    ("latency table 1", `Quick, test_latency_table1);
    ("latency validation", `Quick, test_latency_validation);
    ("insn constructors", `Quick, test_insn_constructors);
    ("connect payloads", `Quick, test_insn_connects);
    ("insn printing", `Quick, test_insn_pp);
    ("assembler layout", `Quick, test_assemble_layout);
    ("assembler undefined label", `Quick, test_assemble_undefined_label);
    ("size breakdown", `Quick, test_size_breakdown);
    ("data initialisers", `Quick, test_write_init);
    QCheck_alcotest.to_alcotest prop_assemble;
  ]
