(* Tests for rc_ir: operations, CFG structure and the builder DSL. *)

open Rc_isa
open Rc_ir
module B = Builder

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_op_uses_defs () =
  let v k cls = { Vreg.id = k; cls } in
  let a = v 0 Reg.Int and b = v 1 Reg.Int and c = v 2 Reg.Int in
  let f1 = v 3 Reg.Float and f2 = v 4 Reg.Float in
  check "alu uses" 2 (List.length (Op.uses (Op.Alu (Opcode.Add, c, Op.V a, Op.V b))));
  check "alui uses" 1 (List.length (Op.uses (Op.Alu (Opcode.Add, c, Op.V a, Op.C 3L))));
  check_bool "alu def" true (Op.def (Op.Alu (Opcode.Add, c, Op.V a, Op.V b)) = Some c);
  check_bool "store no def" true (Op.def (Op.St (Opcode.W8, a, b, 0)) = None);
  check "store uses" 2 (List.length (Op.uses (Op.St (Opcode.W8, a, b, 0))));
  check "fpu unary uses" 1 (List.length (Op.uses (Op.Fpu (Opcode.Fneg, f1, f2, None))));
  check "call uses args" 2
    (List.length (Op.uses (Op.Call { dst = Some c; callee = "f"; args = [ a; b ] })));
  check_bool "emit side effect" true (Op.has_side_effect (Op.Emit a));
  check_bool "alu pure" false (Op.has_side_effect (Op.Alu (Opcode.Add, c, Op.V a, Op.V b)))

let test_map_uses () =
  let v k = { Vreg.id = k; cls = Reg.Int } in
  let a = v 0 and b = v 1 and c = v 2 and z = v 9 in
  let subst x = if Vreg.equal x a then z else x in
  (match Op.map_uses subst (Op.Alu (Opcode.Add, c, Op.V a, Op.V b)) with
  | Op.Alu (_, d, Op.V x, Op.V y) ->
      check_bool "dst untouched" true (Vreg.equal d c);
      check_bool "first use substituted" true (Vreg.equal x z);
      check_bool "second use kept" true (Vreg.equal y b)
  | _ -> Alcotest.fail "unexpected rewrite");
  match Op.map_def (fun _ -> z) (Op.Li (a, 5L)) with
  | Op.Li (d, 5L) -> check_bool "def substituted" true (Vreg.equal d z)
  | _ -> Alcotest.fail "unexpected def rewrite"

let test_term_successors () =
  check "ret" 0 (List.length (Op.successors (Op.Ret None)));
  check "jmp" 1 (List.length (Op.successors (Op.Jmp 3)));
  let v k = { Vreg.id = k; cls = Reg.Int } in
  check "br" 2 (List.length (Op.successors (Op.Br (Opcode.Lt, v 0, v 1, 3, 4))));
  check "br same target" 1
    (List.length (Op.successors (Op.Br (Opcode.Lt, v 0, v 1, 3, 3))))

let test_builder_structure () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 1 in
        let y = B.cint b 2 in
        let s = B.add b x y in
        B.emit b s;
        B.halt b)
  in
  check "one block" 1 (List.length f.Func.blocks);
  check "four ops" 4 (List.length (Func.entry f).Block.ops);
  check_bool "halt term" true ((Func.entry f).Block.term = Op.Halt)

let test_builder_if () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 5 in
        let y = B.cint b 3 in
        let r = B.fresh b Reg.Int in
        B.if_ b Opcode.Gt x y
          ~then_:(fun () -> B.seti b r 1L)
          ~else_:(fun () -> B.seti b r 0L)
          ();
        B.emit b r;
        B.halt b)
  in
  (* entry, then, else, join *)
  check "four blocks" 4 (List.length f.Func.blocks);
  let entry = Func.entry f in
  match entry.Block.term with
  | Op.Br (Opcode.Gt, _, _, t, e) ->
      check_bool "then and else differ" true (t <> e);
      let preds = Func.predecessors f in
      let join =
        List.find
          (fun (b : Block.t) -> List.length (preds b.Block.id) = 2)
          f.Func.blocks
      in
      check "join has 2 preds" 2 (List.length (preds join.Block.id))
  | _ -> Alcotest.fail "expected branch terminator"

let test_builder_while () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let i = B.cint b 0 in
        let n = B.cint b 10 in
        B.while_ b
          ~cond:(fun () -> (Opcode.Lt, i, n))
          ~body:(fun () -> B.assign b i (B.addi b i 1L));
        B.emit b i;
        B.halt b)
  in
  (* entry, header, body, exit *)
  check "four blocks" 4 (List.length f.Func.blocks);
  let loops = Rc_dataflow.Loops.natural_loops f in
  check "one loop" 1 (List.length loops)

let test_builder_for_interp () =
  let prog = B.program ~entry:"main" in
  let _ =
    B.define prog "main" ~params:[] (fun b _ ->
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:10 (fun i -> B.assign b acc (B.add b acc i));
        B.emit b acc;
        (* downward loop *)
        let acc2 = B.cint b 0 in
        B.for_ b ~step:(-2L) ~start:(Op.C 10L) ~stop:(Op.C 0L) (fun i ->
            B.assign b acc2 (B.add b acc2 i));
        B.emit b acc2;
        B.halt b)
  in
  let out = Rc_interp.Interp.run prog in
  Alcotest.(check (list int64)) "loop sums" [ 45L; 30L ] out.Rc_interp.Interp.output

let test_builder_call () =
  let prog = B.program ~entry:"main" in
  let _double =
    B.define prog "double" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
        let x = List.hd params in
        B.ret b (Some (B.muli b x 2L)))
  in
  let _ =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 21 in
        let y = B.call_i b "double" [ x ] in
        B.emit b y;
        B.halt b)
  in
  let out = Rc_interp.Interp.run prog in
  Alcotest.(check (list int64)) "call result" [ 42L ] out.Rc_interp.Interp.output

let test_builder_errors () =
  let prog = B.program ~entry:"main" in
  Alcotest.check_raises "terminated block"
    (Invalid_argument "Builder: emitting into a terminated block") (fun () ->
      ignore
        (B.define prog "main" ~params:[] (fun b _ ->
             B.halt b;
             ignore (B.cint b 1))))

let test_prog_duplicate_global () =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:8 ();
  Alcotest.check_raises "duplicate global"
    (Invalid_argument "Prog.add_global: duplicate g") (fun () ->
      B.global prog "g" ~bytes:8 ())

let test_func_all_vregs () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 1 in
        let y = B.addi b x 1L in
        B.emit b y;
        B.halt b)
  in
  check "two vregs" 2 (Vreg.Set.cardinal (Func.all_vregs f))

let suite =
  [
    ("op uses and defs", `Quick, test_op_uses_defs);
    ("map_uses / map_def", `Quick, test_map_uses);
    ("terminator successors", `Quick, test_term_successors);
    ("builder straight line", `Quick, test_builder_structure);
    ("builder if/else", `Quick, test_builder_if);
    ("builder while", `Quick, test_builder_while);
    ("builder for loops run", `Quick, test_builder_for_interp);
    ("builder calls run", `Quick, test_builder_call);
    ("builder misuse", `Quick, test_builder_errors);
    ("duplicate globals", `Quick, test_prog_duplicate_global);
    ("all_vregs", `Quick, test_func_all_vregs);
  ]
