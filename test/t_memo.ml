(* The superblock timing memo (DESIGN.md §18): memoised replay must be
   bit-identical to unmemoised replay and to execution-driven
   simulation — on real kernels, on generated programs across the full
   fuzz grid, and under every fallback condition the memo can take
   (long-latency writes straddling a segment end, taken-branch
   redirects, map-table mutations, signature overflow, the fuel
   boundary). *)

open Rc_harness
open Rc_workloads
module Gen = Rc_check.Gen
module Fuzz = Rc_check.Fuzz
module Trace_replay = Rc_machine.Trace_replay

let divergence = T_replay.divergence
let compile = T_replay.compile

(** Execute-and-record, then replay twice — memo on (with [stats]) and
    memo off — and require both bit-identical to the execution. *)
let check_cell ?stats key c =
  let r_exec, tr = Pipeline.simulate_recorded c in
  match tr with
  | None -> Alcotest.failf "%s: run was not replayable" key
  | Some tr ->
      let r_memo = Pipeline.simulate_replayed ?stats c tr in
      let r_plain = Pipeline.simulate_replayed ~memo:false c tr in
      (match divergence (key ^ "/memo") r_exec r_memo with
      | None -> ()
      | Some msg -> Alcotest.fail msg);
      (match divergence (key ^ "/plain") r_exec r_plain with
      | None -> ()
      | Some msg -> Alcotest.fail msg)

(* --- property: generated programs over the fuzz grid --------------------- *)

(* 100 generator programs, each compiled and timed at all 18 fuzz grid
   points: memoised ≡ unmemoised ≡ execute, field by field.  The
   generator aims at spills, connects, carried dependences and mixed
   int/float traffic, so the grid sweep exercises map mutations and
   model resets the figure kernels cannot.  Preparation is shared per
   program and allocation per (program, alloc_key), as the harness
   does — the sweep is 1800 cells. *)
let test_gen_grid () =
  let stats = Trace_replay.memo_stats () in
  for seed = 0 to 99 do
    let opt = Fuzz.opt_of_index seed in
    let prog = Gen.render (Gen.generate seed) in
    let prep = Pipeline.prepare ~opt prog in
    let allocs = Hashtbl.create 4 in
    List.iter
      (fun p ->
        let opts = Fuzz.options_of_point ~opt p in
        let a =
          let k = Pipeline.alloc_key opts in
          match Hashtbl.find_opt allocs k with
          | Some a -> a
          | None ->
              let a = Pipeline.allocate opts prep in
              Hashtbl.add allocs k a;
              a
        in
        let c = Pipeline.compile_allocated opts a in
        check_cell ~stats
          (Fmt.str "gen%d/%s" seed (Fuzz.point_name p))
          c)
      Fuzz.grid
  done;
  (* The sweep must actually exercise the memo, not just fall back. *)
  Alcotest.(check bool)
    "memo engaged across the generator sweep" true
    (stats.Trace_replay.m_hits > 0 && stats.Trace_replay.m_misses > 0)

(* --- fallback conditions, one targeted test each ------------------------- *)

(* Long-latency loads whose scoreboard writes straddle superblock ends:
   the residues must round-trip through the out-signature exactly. *)
let test_straddling_latency () =
  let stats = Trace_replay.memo_stats () in
  let b = Registry.find "lex" in
  let lat = Rc_isa.Latency.v ~load:6 () in
  check_cell ~stats "memo/lex/load6"
    (compile b (Experiments.reg_opts b ~label:16 ~rc:true ~lat ()));
  Alcotest.(check bool)
    "long-latency replay exercised the memo" true
    (stats.Trace_replay.m_hits > 0)

(* Taken-branch redirects: taken branches are literal entries, outside
   every superblock, so the memo must stay exact around redirect
   penalties (and with the extra mapping stage's larger penalty). *)
let test_redirects () =
  let stats = Trace_replay.memo_stats () in
  let b = Registry.find "grep" in
  let lat = Rc_isa.Latency.v ~connect:1 () in
  let label = Experiments.small_label b in
  check_cell ~stats "memo/grep/redirect"
    (compile b (Experiments.reg_opts b ~label ~rc:true ~lat ()));
  check_cell ~stats "memo/grep/redirect+st"
    (compile b
       (Experiments.reg_opts b ~label ~rc:true ~lat ~extra_stage:true ()));
  Alcotest.(check bool)
    "branchy replay exercised the memo" true
    (stats.Trace_replay.m_hits > 0)

(* Map-table mutations: literal entries with register deltas update the
   cursor's prediction tables, so the block cursor must version its
   segment identities — a stale memo entry would re-time the wrong
   resolved registers.  Model 3's read-map updates make such literals
   common. *)
let test_map_mutation () =
  let stats = Trace_replay.memo_stats () in
  let model3 =
    List.find
      (fun m -> Rc_core.Model.number m = 3)
      Rc_core.Model.all
  in
  List.iter
    (fun name ->
      let b = Registry.find name in
      check_cell ~stats
        (Fmt.str "memo/%s/model3" name)
        (compile b
           (Experiments.reg_opts b
              ~label:(Experiments.small_label b)
              ~rc:true ~model:model3 ())))
    [ "cmp"; "eqn" ];
  Alcotest.(check bool)
    "map-mutating replay exercised the memo" true
    (stats.Trace_replay.m_hits > 0)

(* Signature overflow: at issue 300 the free-slot count does not fit
   the signature's byte, so every visit must fall back — and the
   result must still be exact. *)
let test_signature_overflow () =
  let stats = Trace_replay.memo_stats () in
  let b = Registry.find "cmp" in
  check_cell ~stats "memo/cmp/issue300"
    (compile b (Experiments.reg_opts b ~label:16 ~rc:true ~issue:300 ()));
  Alcotest.(check int) "no memo probe fits the signature" 0
    stats.Trace_replay.m_hits;
  Alcotest.(check bool)
    "every superblock visit fell back" true
    (stats.Trace_replay.m_fallbacks > 0)

(* The fuel boundary: a memo hit may never carry the clock past the
   configured fuel — near the limit the memo must fall back to the
   per-entry loop so exhaustion surfaces exactly as execution's. *)
let test_fuel_boundary () =
  let b = Registry.find "cmp" in
  let c = compile b (Experiments.reg_opts b ~label:16 ~rc:true ()) in
  let r_exec, tr = Pipeline.simulate_recorded c in
  let tr = Option.get tr in
  let cfg = Pipeline.machine_config c.Pipeline.opts in
  let image = c.Pipeline.image in
  (* Just enough fuel: all three engines finish, identically. *)
  let enough = { cfg with Rc_machine.Config.fuel = r_exec.Rc_machine.Machine.cycles + 1 } in
  let r_e = Rc_machine.Machine.run enough image in
  (match divergence "fuel/enough/memo" r_e (Trace_replay.replay enough image tr) with
  | None -> ()
  | Some msg -> Alcotest.fail msg);
  (match
     divergence "fuel/enough/plain" r_e
       (Trace_replay.replay ~memo:false enough image tr)
   with
  | None -> ()
  | Some msg -> Alcotest.fail msg);
  (* Not enough: every engine reports exhaustion rather than a result. *)
  let short =
    { cfg with Rc_machine.Config.fuel = max 1 (r_exec.Rc_machine.Machine.cycles / 2) }
  in
  let exhausts f =
    match f () with
    | exception Rc_machine.Machine.Simulation_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool)
    "execute exhausts" true
    (exhausts (fun () -> Rc_machine.Machine.run short image));
  Alcotest.(check bool)
    "memoised replay exhausts" true
    (exhausts (fun () -> Trace_replay.replay short image tr));
  Alcotest.(check bool)
    "unmemoised replay exhausts" true
    (exhausts (fun () -> Trace_replay.replay ~memo:false short image tr))

(* Loop-dominated kernels are the memo's reason to exist: repeated
   visits to the same superblock in the same timing state must mostly
   hit. *)
let test_loops_hit () =
  let stats = Trace_replay.memo_stats () in
  let b = Registry.find "matrix300" in
  check_cell ~stats "memo/matrix300/hits"
    (compile b
       (Experiments.reg_opts b ~label:(Experiments.small_label b) ~rc:true ()));
  Alcotest.(check bool)
    (Fmt.str "hits dominate misses (%d hits, %d misses)"
       stats.Trace_replay.m_hits stats.Trace_replay.m_misses)
    true
    (stats.Trace_replay.m_hits > stats.Trace_replay.m_misses)

let suite =
  [
    ("generator programs x fuzz grid: memo ≡ plain ≡ execute", `Slow, test_gen_grid);
    ("straddling long-latency writes", `Quick, test_straddling_latency);
    ("taken-branch redirects", `Quick, test_redirects);
    ("map-table mutations version the memo", `Quick, test_map_mutation);
    ("signature overflow falls back exactly", `Quick, test_signature_overflow);
    ("fuel boundary falls back exactly", `Quick, test_fuel_boundary);
    ("loop kernels mostly hit", `Quick, test_loops_hit);
  ]
