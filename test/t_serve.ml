(* The simulation service: HTTP codec unit tests from strings, then
   live-server tests against an ephemeral port — routing, the
   structured error paths (400/404/405/413/503/408), the warm
   trace-cache contract on repeated /run requests, graceful drain, and
   the observability surface: /version, Prometheus /metrics,
   X-Request-Id propagation, and the /trace span invariants for a
   cold and a warm request. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

module Http = Rc_serve.Http
module Server = Rc_serve.Server
module E = Rc_harness.Experiments

(* --- codec ------------------------------------------------------------- *)

let parse ?limits s = Http.read_request ?limits (Http.reader_of_string s)

let test_http_parse () =
  match
    parse
      "POST /run?trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody"
  with
  | Error _ -> Alcotest.fail "valid request rejected"
  | Ok req ->
      check_str "method" "POST" req.Http.meth;
      check_str "query stripped" "/run" req.Http.path;
      check_str "body" "body" req.Http.body;
      check_bool "headers lowercased" true (Http.header req "host" = Some "x")

let test_http_malformed () =
  (match parse "NOT-HTTP\r\n\r\n" with
  | Error (Http.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage request line accepted");
  match parse "POST /run HTTP/1.1\r\nHost: x\r\n\r\n" with
  | Error (Http.Malformed _) -> ()
  | _ -> Alcotest.fail "POST without Content-Length accepted"

let test_http_limits () =
  let limits = { Http.default_limits with Http.max_body = 8 } in
  (match
     parse ~limits
       "POST /run HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"
   with
  | Error (Http.Too_large _) -> ()
  | _ -> Alcotest.fail "oversized body accepted");
  let limits = { Http.default_limits with Http.max_headers = 2 } in
  match
    parse ~limits "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n"
  with
  | Error (Http.Header_overflow _) -> ()
  | _ -> Alcotest.fail "header flood accepted"

let test_http_closed () =
  match parse "POST /run HTTP/1.1\r\nContent-Le" with
  | Error Http.Closed -> ()
  | _ -> Alcotest.fail "mid-request EOF not reported as Closed"

(* Request-smuggling vectors: this server never implements chunked
   bodies, so any Transfer-Encoding must be refused outright (501),
   and a request bearing two Content-Length headers is ambiguous about
   where its body ends — reject it rather than pick one (400). *)
let test_http_smuggling () =
  (match
     parse
       "POST /run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\
        Content-Length: 4\r\n\r\nbody"
   with
  | Error (Http.Not_implemented _) -> ()
  | _ -> Alcotest.fail "Transfer-Encoding + Content-Length accepted");
  (match parse "POST /run HTTP/1.1\r\nTransfer-Encoding: identity\r\n\r\n" with
  | Error (Http.Not_implemented _) -> ()
  | _ -> Alcotest.fail "bare Transfer-Encoding accepted");
  (match
     parse
       "POST /run HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 10\r\n\r\n\
        body"
   with
  | Error (Http.Malformed _) -> ()
  | _ -> Alcotest.fail "conflicting Content-Lengths accepted");
  (* ...even when the copies agree: still ambiguous per RFC 9110. *)
  match
    parse
      "POST /run HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody"
  with
  | Error (Http.Malformed _) -> ()
  | _ -> Alcotest.fail "duplicate Content-Lengths accepted"

(* --- live server harness ----------------------------------------------- *)

(* One request per connection, Connection: close: read to EOF. *)
let request ~port ~meth ~path ?(headers = []) ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  let req =
    Printf.sprintf
      "%s %s HTTP/1.1\r\nHost: localhost\r\n%sContent-Length: %d\r\n\r\n%s" meth
      path extra (String.length body) body
  in
  let rec send off =
    if off < String.length req then
      send (off + Unix.write_substring fd req off (String.length req - off))
  in
  send 0;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec recv () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        recv ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
  in
  recv ();
  Unix.close fd;
  let raw = Buffer.contents buf in
  let status = int_of_string (String.sub raw 9 3) in
  let body =
    let rec scan i =
      if i + 3 >= String.length raw then ""
      else if
        raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
        && raw.[i + 3] = '\n'
      then String.sub raw (i + 4) (String.length raw - i - 4)
      else scan (i + 1)
    in
    scan 0
  in
  (status, raw, body)

(* Ephemeral port, Replay engine (the `rcc serve` default), jobs 2. *)
let with_server ?(config = Server.default_config) ?(jobs = 2) f =
  let ctx = E.create ~scale:1 ~jobs ~engine:E.Replay () in
  let srv = Server.create ~config:{ config with Server.port = 0 } ctx in
  let d = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Domain.join d;
      E.shutdown ctx)
    (fun () -> f srv (Server.port srv))

let json_of body =
  match Rc_obs.Json.of_string body with
  | Ok j -> j
  | Error m -> Alcotest.fail ("response is not JSON: " ^ m)

let error_detail body =
  match Rc_obs.Json.member "error" (json_of body) with
  | Some e -> (
      match Rc_obs.Json.member "detail" e with
      | Some (Rc_obs.Json.Str d) -> d
      | _ -> Alcotest.fail "error body lacks a detail string")
  | None -> Alcotest.fail ("not a structured error body: " ^ body)

(* --- routing and error paths ------------------------------------------- *)

let test_routing () =
  with_server (fun _srv port ->
      let st, _, body = request ~port ~meth:"GET" ~path:"/healthz" () in
      check "healthz" 200 st;
      (match Rc_obs.Json.member "status" (json_of body) with
      | Some (Rc_obs.Json.Str "ok") -> ()
      | _ -> Alcotest.fail "healthz status is not ok");
      (match Rc_obs.Json.member "inflight" (json_of body) with
      | Some (Rc_obs.Json.Int n) -> check_bool "inflight >= 0" true (n >= 0)
      | _ -> Alcotest.fail "healthz lacks inflight");
      (match Rc_obs.Json.member "uptime_s" (json_of body) with
      | Some (Rc_obs.Json.Float u) -> check_bool "uptime >= 0" true (u >= 0.0)
      | _ -> Alcotest.fail "healthz lacks uptime_s");
      let st, _, _ = request ~port ~meth:"GET" ~path:"/nope" () in
      check "404 for unknown path" 404 st;
      let st, _, _ = request ~port ~meth:"GET" ~path:"/run" () in
      check "405 for GET /run" 405 st;
      let st, _, body = request ~port ~meth:"POST" ~path:"/run" ~body:"{" () in
      check "400 for malformed JSON" 400 st;
      check_bool "malformed detail" true
        (String.length (error_detail body) > 0);
      let st, _, body =
        request ~port ~meth:"POST" ~path:"/run"
          ~body:{|{"bench":"cmp","mystery":1}|} ()
      in
      check "400 for unknown field" 400 st;
      ignore (error_detail body);
      let st, _, _ =
        request ~port ~meth:"POST" ~path:"/run" ~body:{|{"bench":"nope"}|} ()
      in
      check "400 for unknown bench" 400 st)

let test_too_large () =
  let config = { Server.default_config with Server.max_body = 64 } in
  with_server ~config (fun _srv port ->
      let body = String.make 100 ' ' in
      let st, _, _ = request ~port ~meth:"POST" ~path:"/run" ~body () in
      check "413 beyond max_body" 413 st)

let test_shed () =
  (* max_inflight 0: every request is shed with 503 + Retry-After. *)
  let config = { Server.default_config with Server.max_inflight = 0 } in
  with_server ~config (fun _srv port ->
      let st, raw, body = request ~port ~meth:"GET" ~path:"/healthz" () in
      check "503 when saturated" 503 st;
      check_bool "Retry-After present" true
        (let lower = String.lowercase_ascii raw in
         let n = "retry-after:" in
         let rec scan i =
           i + String.length n <= String.length lower
           && (String.sub lower i (String.length n) = n || scan (i + 1))
         in
         scan 0);
      ignore (error_detail body))

let test_deadline () =
  (* Send only half a request: the receive timeout must answer 408
     instead of pinning the worker forever. *)
  let config = { Server.default_config with Server.deadline_s = 0.2 } in
  with_server ~config (fun _srv port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring fd "POST /run HT" 0 12);
      let buf = Bytes.create 4096 in
      let got = Buffer.create 256 in
      (try
         let rec recv () =
           match Unix.read fd buf 0 (Bytes.length buf) with
           | 0 -> ()
           | n ->
               Buffer.add_subbytes got buf 0 n;
               recv ()
         in
         recv ()
       with Unix.Unix_error _ -> ());
      Unix.close fd;
      let raw = Buffer.contents got in
      check_bool "408 response" true
        (String.length raw >= 12 && String.sub raw 9 3 = "408"))

(* --- the cache-reuse contract ------------------------------------------ *)

let test_warm_cache () =
  with_server (fun _srv port ->
      let body = {|{"bench":"cmp","rc":true,"core_int":8}|} in
      let st1, _, b1 = request ~port ~meth:"POST" ~path:"/run" ~body () in
      let st2, _, b2 = request ~port ~meth:"POST" ~path:"/run" ~body () in
      check "first /run" 200 st1;
      check "second /run" 200 st2;
      let engine b =
        match Rc_obs.Json.member "engine" (json_of b) with
        | Some (Rc_obs.Json.Str e) -> e
        | _ -> Alcotest.fail "no engine field"
      in
      check_str "first executes" "execute" (engine b1);
      check_str "second replays" "replay" (engine b2);
      let machine b =
        (* Only the machine counters: the surrounding result carries
           per-pass wall-clock, the one nondeterministic field. *)
        match Rc_obs.Json.member "result" (json_of b) with
        | Some r -> (
            match Rc_obs.Json.member "machine" r with
            | Some m -> Rc_obs.Json.to_string m
            | None -> Alcotest.fail "no machine object")
        | None -> Alcotest.fail "no result object"
      in
      check_str "replay is bit-identical" (machine b1) (machine b2);
      let st, _, mbody = request ~port ~meth:"GET" ~path:"/metrics.json" () in
      check "metrics.json" 200 st;
      let hits =
        match Rc_obs.Json.member "experiments" (json_of mbody) with
        | Some e -> (
            match Rc_obs.Json.member "trace_cache" e with
            | Some c -> (
                match Rc_obs.Json.member "hits" c with
                | Some (Rc_obs.Json.Int n) -> n
                | _ -> Alcotest.fail "no hits counter")
            | None -> Alcotest.fail "no trace_cache")
        | None -> Alcotest.fail "no experiments"
      in
      check_bool "at least one trace-cache hit" true (hits >= 1))

let test_figures_endpoint () =
  with_server (fun _srv port ->
      let st, _, body =
        request ~port ~meth:"POST" ~path:"/figures" ~body:{|{"ids":["table1"]}|}
          ()
      in
      check "figures" 200 st;
      (match Rc_obs.Json.member "tables" (json_of body) with
      | Some (Rc_obs.Json.List [ _ ]) -> ()
      | _ -> Alcotest.fail "expected one table");
      let st, _, _ =
        request ~port ~meth:"POST" ~path:"/figures" ~body:{|{"ids":["nope"]}|}
          ()
      in
      check "400 for unknown figure id" 400 st)

(* --- observability ------------------------------------------------------ *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_version () =
  with_server (fun _srv port ->
      let st, _, body = request ~port ~meth:"GET" ~path:"/version" () in
      check "version" 200 st;
      (match Rc_obs.Json.member "version" (json_of body) with
      | Some (Rc_obs.Json.Str v) -> check_str "version string" Server.version v
      | _ -> Alcotest.fail "no version string");
      match Rc_obs.Json.member "ocaml" (json_of body) with
      | Some (Rc_obs.Json.Str v) -> check_str "ocaml" Sys.ocaml_version v
      | _ -> Alcotest.fail "no ocaml version")

let test_prometheus () =
  with_server (fun _srv port ->
      let body = {|{"bench":"cmp","rc":true,"core_int":8}|} in
      let st, _, _ = request ~port ~meth:"POST" ~path:"/run" ~body () in
      check "/run" 200 st;
      let st, raw, prom = request ~port ~meth:"GET" ~path:"/metrics" () in
      check "metrics" 200 st;
      check_bool "prom content type" true
        (contains
           ~needle:"text/plain; version=0.0.4"
           (String.lowercase_ascii raw));
      List.iter
        (fun needle -> check_bool needle true (contains ~needle prom))
        [
          "# TYPE rcc_requests_total counter";
          {|rcc_requests_total{endpoint="/run",status="200"} 1|};
          "# TYPE rcc_request_duration_seconds histogram";
          {|rcc_request_duration_seconds_bucket{endpoint="/run",le="+Inf"} 1|};
          {|rcc_request_duration_seconds_count{endpoint="/run"} 1|};
          "# TYPE rcc_inflight gauge";
          "# TYPE rcc_trace_cache_hits_total counter";
          "# TYPE rcc_uptime_seconds gauge";
        ];
      check_bool "ends with newline" true
        (prom <> "" && prom.[String.length prom - 1] = '\n'))

let test_request_id () =
  with_server (fun _srv port ->
      (* Client-supplied ids are echoed... *)
      let _, raw, _ =
        request ~port ~meth:"GET" ~path:"/healthz"
          ~headers:[ ("X-Request-Id", "my-req-17") ]
          ()
      in
      check_bool "client id echoed" true
        (contains ~needle:"X-Request-Id: my-req-17" raw);
      (* ...and absent ones are assigned. *)
      let _, raw, _ = request ~port ~meth:"GET" ~path:"/healthz" () in
      check_bool "server id assigned" true (contains ~needle:"X-Request-Id: r" raw);
      (* A client id with control bytes must never be echoed: a bare CR
         survives header parsing, and reflecting it would hand the
         client a header-splitting / log-injection primitive.  The
         server drops it and assigns its own id instead. *)
      let hostile = "evil\rX-Injected: 1" in
      let _, raw, _ =
        request ~port ~meth:"GET" ~path:"/healthz"
          ~headers:[ ("X-Request-Id", hostile) ]
          ()
      in
      check_bool "hostile id not reflected" false (contains ~needle:hostile raw);
      check_bool "hostile id not echoed in part" false
        (contains ~needle:"X-Injected" raw);
      check_bool "replacement id assigned" true
        (contains ~needle:"X-Request-Id: r" raw);
      (* Oversized ids are dropped too. *)
      let _, raw, _ =
        request ~port ~meth:"GET" ~path:"/healthz"
          ~headers:[ ("X-Request-Id", String.make 300 'a') ]
          ()
      in
      check_bool "oversized id not reflected" false
        (contains ~needle:(String.make 129 'a') raw))

(* --- user-submitted kernels -------------------------------------------- *)

(* The same document the committed corpus fixture carries; its id is
   pinned there by the `corpus spec fixtures admissible` check test. *)
let spec_doc =
  {|{"seed":0,"slots":8,"funcs":[{"arity":0,"nvars":2,"nfvars":1,"body":[["set",0,["const","1"]],["loop",1,6,[["set",0,["bin","add",["var",0],["var",1]]],["store",1,["var",0]],["load",1,1]]],["emit",["var",0]]]}]}|}

let str_member name j =
  match Rc_obs.Json.member name j with
  | Some (Rc_obs.Json.Str s) -> s
  | _ -> Alcotest.failf "no %S string field" name

(* The front door end to end: POST /compile admits the spec and hands
   back a kernel id; /run accepts that id, and the second run comes
   from the trace cache; /figures sweeps the kernel; the admission
   counters show up on /metrics. *)
let test_spec_compile_run () =
  with_server (fun _srv port ->
      let st, _, body =
        request ~port ~meth:"POST" ~path:"/compile" ~body:spec_doc ()
      in
      check "compile" 200 st;
      let j = json_of body in
      let id = str_member "kernel" j in
      check_str "deterministic kernel id" "k3dcde33718c5" id;
      check_str "bench name" ("spec:" ^ id) (str_member "bench" j);
      (* Resubmission is idempotent: same document, same id. *)
      let st, _, body2 =
        request ~port ~meth:"POST" ~path:"/compile" ~body:spec_doc ()
      in
      check "recompile" 200 st;
      check_str "id stable across resubmission" id
        (str_member "kernel" (json_of body2));
      (* Run it by id, twice: execute then replay. *)
      let run_body = Printf.sprintf {|{"kernel":%S}|} id in
      let st1, _, b1 =
        request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
      in
      let st2, _, b2 =
        request ~port ~meth:"POST" ~path:"/run" ~body:run_body ()
      in
      check "first run by id" 200 st1;
      check "second run by id" 200 st2;
      check_str "first executes" "execute" (str_member "engine" (json_of b1));
      check_str "second replays" "replay" (str_member "engine" (json_of b2));
      (* Inline specs work without a prior /compile... *)
      let st, _, b3 =
        request ~port ~meth:"POST" ~path:"/run"
          ~body:(Printf.sprintf {|{"spec":%s}|} spec_doc)
          ()
      in
      check "inline spec run" 200 st;
      check_str "inline spec hits the same cache" "replay"
        (str_member "engine" (json_of b3));
      (* ...and the kernel sweeps like a built-in bench. *)
      let st, _, fig =
        request ~port ~meth:"POST" ~path:"/figures" ~body:run_body ()
      in
      check "figures for kernel" 200 st;
      (match Rc_obs.Json.member "tables" (json_of fig) with
      | Some (Rc_obs.Json.List (_ :: _ :: _)) -> ()
      | _ -> Alcotest.fail "expected kernel-speedup and kernel-size tables");
      (* Admission shows up in the metrics. *)
      let st, _, prom = request ~port ~meth:"GET" ~path:"/metrics" () in
      check "metrics" 200 st;
      check_bool "admitted counter" true
        (contains ~needle:{|rcc_spec_submissions_total{outcome="admitted"}|}
           prom);
      check_bool "kernel gauge" true (contains ~needle:"rcc_spec_kernels" prom))

(* The oracle gate: an agreeing kernel reports its verdict inline. *)
let test_spec_oracle () =
  with_server (fun _srv port ->
      let st, _, body =
        request ~port ~meth:"POST" ~path:"/run"
          ~body:(Printf.sprintf {|{"spec":%s,"oracle":256}|} spec_doc)
          ()
      in
      check "oracle-gated run" 200 st;
      match Rc_obs.Json.member "oracle" (json_of body) with
      | Some v -> (
          match Rc_obs.Json.member "verdict" v with
          | Some (Rc_obs.Json.Str "agree") -> ()
          | _ -> Alcotest.fail "oracle verdict is not agreement")
      | None -> Alcotest.fail "no oracle verdict in response")

(* The rejection ladder: unknown id 404, malformed 400 (with the JSON
   path), over-budget 413, smuggling vector 501 — all structured
   errors, never a dropped connection. *)
let test_spec_rejections () =
  with_server (fun _srv port ->
      let st, _, _ =
        request ~port ~meth:"POST" ~path:"/run"
          ~body:{|{"kernel":"k000000000000"}|} ()
      in
      check "unknown kernel" 404 st;
      let st, _, body =
        request ~port ~meth:"POST" ~path:"/compile" ~body:{|{"funcs":3}|} ()
      in
      check "malformed spec" 400 st;
      check_bool "error names the JSON path" true
        (contains ~needle:"$.funcs" (error_detail body));
      let st, _, _ =
        request ~port ~meth:"POST" ~path:"/compile" ~body:"{not json" ()
      in
      check "unparsable body" 400 st;
      let st, _, body =
        request ~port ~meth:"POST" ~path:"/compile"
          ~body:
            {|{"seed":0,"slots":100000,"funcs":[{"arity":0,"nvars":1,"nfvars":1,"body":[["emit",["var",0]]]}]}|}
          ()
      in
      check "over-budget spec" 413 st;
      check_bool "limit named" true
        (contains ~needle:"limit" (error_detail body));
      let st, _, _ =
        request ~port ~meth:"POST" ~path:"/run"
          ~headers:[ ("Transfer-Encoding", "chunked") ]
          ~body:spec_doc ()
      in
      check "Transfer-Encoding refused" 501 st;
      (* The server is still healthy after the whole ladder. *)
      let st, _, _ = request ~port ~meth:"GET" ~path:"/healthz" () in
      check "still serving" 200 st)

(* One cold and one warm /run, tagged with known request ids, then pull
   /trace and check the span invariants: every lifecycle phase present,
   phases contained within the request span and sorted by start, and
   the simulate span attributed to the right engine. *)
let test_trace_spans () =
  with_server (fun _srv port ->
      let body = {|{"bench":"cmp","rc":true,"core_int":8}|} in
      let run id =
        let st, _, _ =
          request ~port ~meth:"POST" ~path:"/run"
            ~headers:[ ("X-Request-Id", id) ]
            ~body ()
        in
        check ("run " ^ id) 200 st
      in
      run "trace-cold";
      run "trace-warm";
      let st, _, trace = request ~port ~meth:"GET" ~path:"/trace" () in
      check "trace" 200 st;
      let events =
        match Rc_obs.Json.member "traceEvents" (json_of trace) with
        | Some (Rc_obs.Json.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      let str name ev =
        match Rc_obs.Json.member name ev with
        | Some (Rc_obs.Json.Str s) -> Some s
        | _ -> None
      in
      let num name ev =
        match Rc_obs.Json.member name ev with
        | Some (Rc_obs.Json.Float f) -> f
        | Some (Rc_obs.Json.Int n) -> float_of_int n
        | _ -> Alcotest.failf "event lacks numeric %s" name
      in
      (* Complete spans belonging to request [id], in file order (the
         server sorts phases by start before export). *)
      let spans_of id =
        List.filter
          (fun ev ->
            str "ph" ev = Some "X"
            && (match Rc_obs.Json.member "args" ev with
               | Some args -> str "id" args = Some id
               | None -> false))
          events
      in
      let check_request id expected_engine =
        let spans = spans_of id in
        let parent, phases =
          List.partition (fun ev -> str "name" ev = Some "POST /run") spans
        in
        let parent =
          match parent with
          | [ p ] -> p
          | l -> Alcotest.failf "%s: %d request spans" id (List.length l)
        in
        let phase_names = List.filter_map (str "name") phases in
        List.iter
          (fun ph ->
            check_bool
              (Printf.sprintf "%s has %s span" id ph)
              true
              (List.mem ph phase_names))
          [ "queue"; "read"; "parse"; "compile"; "simulate"; "render"; "write" ];
        (* Containment within the request span, with a little slack for
           microsecond rounding in the export. *)
        let p0 = num "ts" parent and p1 = num "ts" parent +. num "dur" parent in
        List.iter
          (fun ev ->
            let t0 = num "ts" ev and t1 = num "ts" ev +. num "dur" ev in
            check_bool
              (Printf.sprintf "%s: %s within request span" id
                 (Option.value (str "name" ev) ~default:"?"))
              true
              (t0 >= p0 -. 50.0 && t1 <= p1 +. 50.0))
          phases;
        (* Phases are exported in start order. *)
        let starts = List.map (num "ts") phases in
        check_bool (id ^ ": phases sorted by start") true
          (List.sort compare starts = starts);
        (* The simulate span carries the engine that actually ran. *)
        match
          List.find_opt (fun ev -> str "name" ev = Some "simulate") phases
        with
        | Some ev -> (
            match Rc_obs.Json.member "args" ev with
            | Some args ->
                check_str (id ^ ": simulate engine") expected_engine
                  (Option.value (str "engine" args) ~default:"?")
            | None -> Alcotest.fail "simulate span lacks args")
        | None -> Alcotest.fail "no simulate span"
      in
      check_request "trace-cold" "execute";
      check_request "trace-warm" "replay")

(* --- graceful drain ----------------------------------------------------- *)

let test_graceful_drain () =
  let ctx = E.create ~scale:1 ~jobs:2 ~engine:E.Replay () in
  let srv = Server.create ~config:{ Server.default_config with port = 0 } ctx in
  let port = Server.port srv in
  let runner = Domain.spawn (fun () -> Server.run srv) in
  let resp = ref None in
  let client =
    Domain.spawn (fun () ->
        resp :=
          Some
            (request ~port ~meth:"POST" ~path:"/run"
               ~body:{|{"bench":"eqn","rc":true}|} ()))
  in
  (* Wait until the request is actually in flight, then stop. *)
  let rec wait_admitted n =
    if Server.inflight srv = 0 && Server.served srv = 0 && n > 0 then begin
      Unix.sleepf 0.005;
      wait_admitted (n - 1)
    end
  in
  wait_admitted 1000;
  Server.stop srv;
  Domain.join runner;
  Domain.join client;
  (match !resp with
  | Some (200, _, body) ->
      check_bool "drained response is complete JSON" true
        (match Rc_obs.Json.of_string body with Ok _ -> true | Error _ -> false)
  | Some (st, _, _) -> Alcotest.failf "in-flight request answered %d" st
  | None -> Alcotest.fail "no response across stop");
  (* The listener is gone: new connections must be refused. *)
  (let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
   match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
   | () ->
       Unix.close fd;
       Alcotest.fail "server still accepting after drain"
   | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> Unix.close fd);
  E.shutdown ctx

(* --- connection accounting ---------------------------------------------- *)

(* A connection that closes before sending any request — a port probe,
   a cancelled client — must land in closed_early, not served. *)
let test_closed_early () =
  with_server (fun srv port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.close fd;
      let rec wait n =
        if Server.closed_early srv = 0 && n > 0 then begin
          Unix.sleepf 0.005;
          wait (n - 1)
        end
      in
      wait 1000;
      check "closed_early counts the silent connection" 1
        (Server.closed_early srv);
      check "served excludes it" 0 (Server.served srv);
      let st, _, _ = request ~port ~meth:"GET" ~path:"/healthz" () in
      check "healthz still fine" 200 st;
      (* served increments after the graceful-close drain, a beat after
         the client has the response — wait, don't race it. *)
      let rec wait_served n =
        if Server.served srv = 0 && n > 0 then begin
          Unix.sleepf 0.005;
          wait_served (n - 1)
        end
      in
      wait_served 1000;
      check "real request counts as served" 1 (Server.served srv);
      check "closed_early unchanged" 1 (Server.closed_early srv))

(* --- bounded drain ------------------------------------------------------- *)

(* After answering 413 the server drains the unread body so the client
   sees the response instead of a reset — but a client that streams
   forever must hit the drain's byte budget / deadline, not pin the
   connection.  The old unbounded drain would keep reading for as long
   as this client keeps writing. *)
let test_bounded_drain () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let config = { Server.default_config with Server.max_body = 64 } in
  with_server ~config (fun _srv port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let headers =
        "POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 100000000\r\n\r\n"
      in
      ignore (Unix.write_substring fd headers 0 (String.length headers));
      (* Stream body bytes until the server gives up on us.  With the
         bounded drain that is at most budget + deadline away; time out
         the test well clear of it. *)
      let chunk = String.make 65536 'x' in
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. 20.0 in
      let closed = ref false in
      (try
         while (not !closed) && Unix.gettimeofday () < deadline do
           ignore (Unix.write_substring fd chunk 0 (String.length chunk))
         done
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
         closed := true);
      let elapsed = Unix.gettimeofday () -. t0 in
      Unix.close fd;
      check_bool "server closed the streaming connection" true !closed;
      (* budget (256 KiB) drains instantly on loopback; the wall-clock
         cap is 2s — anything near the 20s timeout means the bound is
         gone. *)
      check_bool
        (Printf.sprintf "drain bounded (closed after %.1fs)" elapsed)
        true (elapsed < 10.0))

(* --- the on-disk trace store -------------------------------------------- *)

module Store = Rc_serve.Store
module D = Rc_machine.Dtrace

let with_temp_dir f =
  let dir = Filename.temp_file "t_serve_store" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* A small deterministic trace, distinguishable by [seed]. *)
let trace_fixture seed =
  let code_len = 16 in
  let s0 = Array.init code_len (fun i -> (i + seed) mod 7) in
  let s1 = Array.init code_len (fun i -> if i mod 3 = 0 then -1 else i mod 5) in
  let d = Array.init code_len (fun i -> (i + 1) mod code_len) in
  let b = D.builder (D.arch_of_arrays ~s0 ~s1 ~d) in
  for i = 0 to 63 do
    D.add_packed b
      (D.pack ~pc:(i mod code_len) ~sp0:(-1) ~sp1:(-1) ~dp:(-1) ~map_on:false
         ~taken:false)
  done;
  match
    D.finish b ~output:[ Int64.of_int seed ]
      ~checksum:(Int64.of_int ((seed * 7919) + 13))
  with
  | Some t -> t
  | None -> Alcotest.fail "trace fixture failed to build"

let same_trace a b = D.to_string a = D.to_string b

let test_store_roundtrip () =
  with_temp_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = "fingerprint#cmp/rc=true scale=1" in
      check_bool "probe on empty store misses" true (Store.probe st key = None);
      let tr = trace_fixture 1 in
      Store.publish st key tr;
      (match Store.probe st key with
      | Some tr' -> check_bool "published trace decodes equal" true
            (same_trace tr tr')
      | None -> Alcotest.fail "probe missed a just-published trace");
      (* A different key must never see it. *)
      check_bool "foreign key misses" true (Store.probe st (key ^ "x") = None);
      let s = Store.stats st in
      check "one hit" 1 s.Store.hits;
      check "two misses" 2 s.Store.misses;
      check "one published" 1 s.Store.published;
      check "one file" 1 s.Store.files;
      check_bool "bytes tracked" true (s.Store.bytes > 0);
      (* A second handle on the same directory — the cold-process
         case — hits without any publish of its own. *)
      let st2 = Store.open_store ~dir () in
      check_bool "cold handle sees the occupancy" true
        ((Store.stats st2).Store.bytes > 0);
      match Store.probe st2 key with
      | Some tr' ->
          check_bool "cold-process probe replays the same trace" true
            (same_trace tr tr')
      | None -> Alcotest.fail "cold-process probe missed")

let test_store_eviction () =
  with_temp_dir (fun dir ->
      (* Learn the record size, then cap the store at two records. *)
      let probe_size =
        let st = Store.open_store ~dir () in
        Store.publish st "size-probe" (trace_fixture 0);
        let bytes = (Store.stats st).Store.bytes in
        Sys.remove
          (Filename.concat dir (Sys.readdir dir).(0));
        bytes
      in
      check_bool "fixture produces a nonempty record" true (probe_size > 0);
      let st = Store.open_store ~dir ~max_bytes:(2 * probe_size) () in
      let tra = trace_fixture 1 and trb = trace_fixture 2 and trc = trace_fixture 3 in
      Store.publish st "a" tra;
      Unix.sleepf 0.02;
      Store.publish st "b" trb;
      Unix.sleepf 0.02;
      (* Touch "a": the LRU victim must now be "b". *)
      check_bool "touch a" true (Store.probe st "a" <> None);
      Unix.sleepf 0.02;
      Store.publish st "c" trc;
      let s = Store.stats st in
      check "one eviction under the cap" 1 s.Store.evicted;
      check "two files survive" 2 s.Store.files;
      check_bool "b was the LRU victim" true (Store.probe st "b" = None);
      check_bool "a survived (recently used)" true (Store.probe st "a" <> None);
      check_bool "c survived (newest)" true (Store.probe st "c" <> None);
      (* A cap smaller than a single record still keeps the newest. *)
      let st2 = Store.open_store ~dir ~max_bytes:1 () in
      let s2 = Store.stats st2 in
      check "tiny cap keeps exactly the newest" 1 s2.Store.files;
      check_bool "the survivor decodes" true
        (Store.probe st2 "a" <> None || Store.probe st2 "c" <> None))

let suite =
  [
    ("http: parse request", `Quick, test_http_parse);
    ("http: malformed", `Quick, test_http_malformed);
    ("http: limits", `Quick, test_http_limits);
    ("http: closed mid-request", `Quick, test_http_closed);
    ("http: smuggling vectors", `Quick, test_http_smuggling);
    ("routing and 4xx", `Slow, test_routing);
    ("413 request too large", `Quick, test_too_large);
    ("503 load shedding", `Quick, test_shed);
    ("408 deadline expiry", `Quick, test_deadline);
    ("warm trace cache on repeat /run", `Slow, test_warm_cache);
    ("figures endpoint", `Slow, test_figures_endpoint);
    ("version endpoint", `Quick, test_version);
    ("prometheus exposition", `Slow, test_prometheus);
    ("request-id propagation", `Quick, test_request_id);
    ("spec kernels: compile, run, figures", `Slow, test_spec_compile_run);
    ("spec kernels: admission oracle", `Slow, test_spec_oracle);
    ("spec kernels: rejection ladder", `Quick, test_spec_rejections);
    ("trace span invariants", `Slow, test_trace_spans);
    ("graceful drain", `Slow, test_graceful_drain);
    ("closed_early excludes silent connections", `Quick, test_closed_early);
    ("413 drain is bounded", `Slow, test_bounded_drain);
    ("store: publish/probe round-trip", `Quick, test_store_roundtrip);
    ("store: LRU eviction under a byte cap", `Quick, test_store_eviction);
  ]
