(* End-to-end property tests: randomly generated IR programs must
   produce identical output streams under

   - the reference interpreter,
   - the compiled program without RC,
   - the compiled program with RC under every automatic-reset model,
     with and without combined connects, and with 1-cycle connects.

   This exercises the whole stack: optimisation, legalisation,
   allocation, spilling, scheduling, connect insertion, assembly and
   simulation. *)

open Rc_isa
open Rc_ir
module B = Builder
module G = QCheck.Gen

(* --- random program generation --------------------------------------------- *)

type rexpr =
  | Const of int
  | Bin of Opcode.alu * rexpr * rexpr
  | LoadG of rexpr  (** g[(e & 31)] *)

type rstmt =
  | Assign of int * rexpr  (** variable slot <- expr *)
  | StoreG of rexpr * rexpr  (** g[(e1 & 31)] <- e2 *)
  | EmitVar of int
  | If of Opcode.cond * int * int * rstmt list * rstmt list
  | Loop of int * rstmt list  (** bounded counted loop *)
  | CallAcc of int  (** v <- helper(v) *)

let n_vars = 6

let expr_gen =
  G.sized_size (G.int_range 0 3) @@ G.fix (fun self n ->
      if n = 0 then G.map (fun c -> Const c) (G.int_range (-20) 20)
      else
        G.frequency
          [
            (2, G.map (fun c -> Const c) (G.int_range (-20) 20));
            ( 3,
              G.map3
                (fun op a b -> Bin (op, a, b))
                (G.oneofl
                   Opcode.
                     [ Add; Sub; Mul; And; Or; Xor; Slt; Seq; Div; Rem; Sll ])
                (self (n / 2)) (self (n / 2)) );
            (1, G.map (fun e -> LoadG e) (self (n / 2)));
          ])

let stmt_gen =
  G.sized_size (G.int_range 1 12) @@ G.fix (fun self n ->
      let leaf =
        G.frequency
          [
            ( 4,
              G.map2 (fun v e -> Assign (v, e)) (G.int_range 0 (n_vars - 1))
                expr_gen );
            (2, G.map2 (fun a e -> StoreG (a, e)) expr_gen expr_gen);
            (2, G.map (fun v -> EmitVar v) (G.int_range 0 (n_vars - 1)));
            (1, G.map (fun v -> CallAcc v) (G.int_range 0 (n_vars - 1)));
          ]
      in
      if n <= 1 then G.map (fun s -> [ s ]) leaf
      else
        G.frequency
          [
            (4, G.map2 (fun s rest -> s :: rest) leaf (self (n - 1)));
            ( 1,
              G.map3
                (fun (c, a, b) t e -> [ If (c, a, b, t, e) ])
                (G.triple
                   (G.oneofl Opcode.[ Eq; Ne; Lt; Le; Gt; Ge ])
                   (G.int_range 0 (n_vars - 1))
                   (G.int_range 0 (n_vars - 1)))
                (self (n / 2)) (self (n / 2)) );
            ( 1,
              G.map2
                (fun trip body -> [ Loop (trip, body) ])
                (G.int_range 0 6) (self (n / 2)) );
          ])

(* Convert a random program into IR, building the expression tree with
   vregs for the variable slots. *)
let build_program stmts =
  let prog = B.program ~entry:"main" in
  B.global prog "g" ~bytes:(8 * 32) ();
  let _helper =
    B.define prog "helper" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
        let x = List.hd params in
        B.ret b (Some (B.addi b (B.muli b x 3L) 1L)))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let vars = Array.init n_vars (fun k -> B.cint b k) in
        let gp = B.addr b "g" in
        let rec expr = function
          | Const c -> B.cint b c
          | Bin (op, a, b') -> B.alu2 b op (expr a) (expr b')
          | LoadG e -> B.load b (B.elem8 b gp (B.andi b (expr e) 31L))
        in
        let rec stmt = function
          | Assign (v, e) -> B.assign b vars.(v) (expr e)
          | StoreG (a, e) ->
              let value = expr e in
              B.store b ~src:value (B.elem8 b gp (B.andi b (expr a) 31L))
          | EmitVar v -> B.emit b vars.(v)
          | If (c, x, y, t, e) ->
              B.if_ b c vars.(x) vars.(y)
                ~then_:(fun () -> List.iter stmt t)
                ~else_:(fun () -> List.iter stmt e)
                ()
          | Loop (trip, body) ->
              B.for_n b ~start:0 ~stop:trip (fun i ->
                  B.assign b vars.(0) (B.add b vars.(0) i);
                  List.iter stmt body)
          | CallAcc v -> B.assign b vars.(v) (B.call_i b "helper" [ vars.(v) ])
        in
        List.iter stmt stmts;
        Array.iter (fun v -> B.emit b v) vars;
        B.halt b)
  in
  prog

(* --- the differential property ----------------------------------------------- *)

let configs =
  [
    ("noRC-16", Rc_harness.Pipeline.options ~rc:false ~core_int:16 ~core_float:8 ());
    ("noRC-8", Rc_harness.Pipeline.options ~rc:false ~core_int:8 ~core_float:8 ());
    ( "RC-16",
      Rc_harness.Pipeline.options ~rc:true ~core_int:16 ~core_float:8
        ~total_int:64 ~total_float:8 () );
    ( "RC-8-m1",
      Rc_harness.Pipeline.options ~rc:true ~core_int:8 ~core_float:8
        ~total_int:64 ~total_float:8 ~model:Rc_core.Model.No_reset () );
    ( "RC-8-m2-single",
      Rc_harness.Pipeline.options ~rc:true ~core_int:8 ~core_float:8
        ~total_int:64 ~total_float:8 ~model:Rc_core.Model.Write_reset
        ~combine:false () );
    ( "RC-8-m4",
      Rc_harness.Pipeline.options ~rc:true ~core_int:8 ~core_float:8
        ~total_int:64 ~total_float:8 ~model:Rc_core.Model.Read_write_reset () );
    ( "RC-16-1cyc",
      Rc_harness.Pipeline.options ~rc:true ~core_int:16 ~core_float:8
        ~total_int:64 ~total_float:8 ~lat:(Latency.v ~connect:1 ()) () );
    ( "RC-16-2issue",
      Rc_harness.Pipeline.options ~rc:true ~core_int:16 ~core_float:8
        ~total_int:64 ~total_float:8 ~issue:2 () );
  ]

let differential_prop stmts =
  let reference = Rc_interp.Interp.run (build_program stmts) in
  List.for_all
    (fun (name, opts) ->
      let prog = build_program stmts in
      let c = Rc_harness.Pipeline.compile opts prog in
      let r = Rc_harness.Pipeline.simulate ~verify:false c in
      let ok = r.Rc_machine.Machine.output = reference.Rc_interp.Interp.output in
      if not ok then
        Fmt.epr "MISMATCH under %s: %d vs %d values@." name
          (List.length r.Rc_machine.Machine.output)
          (List.length reference.Rc_interp.Interp.output);
      ok)
    configs

let prop_compiled_equals_interpreted =
  QCheck.Test.make ~count:60 ~name:"compiled output = interpreted output"
    (QCheck.make stmt_gen) differential_prop

(* a few fixed regression seeds exercising corner shapes *)
let fixed_cases =
  [
    [];
    [ EmitVar 0 ];
    [ Loop (0, [ EmitVar 1 ]) ];
    [ Loop (6, [ Assign (1, Bin (Opcode.Mul, Const 3, Const (-2))) ]) ];
    [
      If (Opcode.Lt, 0, 1, [ CallAcc 2 ], [ StoreG (Const 3, Const 9) ]);
      EmitVar 2;
    ];
    [
      Loop (4, [ If (Opcode.Eq, 0, 0, [ CallAcc 0 ], []) ]);
      Assign (5, LoadG (Const 3));
    ];
    [ Assign (0, Bin (Opcode.Div, Const 10, Const 0)) ];
    [ Assign (2, Bin (Opcode.Sll, Const 1, Const 40)); EmitVar 2 ];
  ]

let test_fixed_cases () =
  List.iteri
    (fun k stmts ->
      Alcotest.(check bool)
        (Fmt.str "fixed case %d" k)
        true (differential_prop stmts))
    fixed_cases

let suite =
  [
    ("fixed differential cases", `Quick, test_fixed_cases);
    QCheck_alcotest.to_alcotest prop_compiled_equals_interpreted;
  ]
