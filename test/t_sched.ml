(* Tests for rc_sched: dependence graph construction and list-scheduling
   correctness (permutation + dependence preservation) and packing. *)

open Rc_isa
module D = Rc_sched.Depgraph
module S = Rc_sched.List_sched

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lat = Latency.default

(* --- dependence graph ------------------------------------------------------ *)

let has_edge g a b = List.mem_assoc b g.D.succs.(a)

let test_raw_edge () =
  let insns = [| Insn.li ~dst:8 1L; Insn.alu Opcode.Add ~dst:9 ~s1:8 ~s2:8 |] in
  let g = D.build lat insns in
  check_bool "raw edge" true (has_edge g 0 1);
  check "latency carried" 1 (List.assoc 1 g.D.succs.(0))

let test_raw_latency_mul () =
  let insns = [| Insn.alu Opcode.Mul ~dst:8 ~s1:9 ~s2:9; Insn.alu Opcode.Add ~dst:10 ~s1:8 ~s2:8 |] in
  let g = D.build lat insns in
  check "mul latency 3" 3 (List.assoc 1 g.D.succs.(0))

let test_war_waw_edges () =
  let insns =
    [|
      Insn.alu Opcode.Add ~dst:8 ~s1:9 ~s2:9 (* def r8 *);
      Insn.alu Opcode.Add ~dst:10 ~s1:8 ~s2:8 (* use r8 *);
      Insn.li ~dst:8 5L (* redefines r8: WAR vs 1, WAW vs 0 *);
    |]
  in
  let g = D.build lat insns in
  check_bool "waw 0->2" true (has_edge g 0 2);
  check_bool "war 1->2" true (has_edge g 1 2);
  check "war latency zero" 0 (List.assoc 2 g.D.succs.(1))

let test_independent_no_edge () =
  let insns = [| Insn.li ~dst:8 1L; Insn.li ~dst:9 2L |] in
  let g = D.build lat insns in
  check_bool "independent" false (has_edge g 0 1 || has_edge g 1 0)

let test_memory_conservative () =
  let insns =
    [|
      Insn.st ~src:8 ~base:9 ~off:0 ();
      Insn.ld ~dst:10 ~base:11 ~off:0 () (* unknown bases: must be ordered *);
    |]
  in
  let g = D.build lat insns in
  check_bool "store before load" true (has_edge g 0 1)

let test_memory_sp_disambiguation () =
  let insns =
    [|
      Insn.st ~src:8 ~base:Reg.sp ~off:0 ();
      Insn.ld ~dst:10 ~base:Reg.sp ~off:8 () (* disjoint slots *);
      Insn.ld ~dst:11 ~base:Reg.sp ~off:0 () (* same slot: depends *);
    |]
  in
  let g = D.build lat insns in
  check_bool "disjoint sp slots independent" false (has_edge g 0 1);
  check_bool "same slot ordered" true (has_edge g 0 2)

let test_byte_overlap () =
  let insns =
    [|
      Insn.st ~src:8 ~base:Reg.sp ~off:0 () (* 8 bytes at 0..7 *);
      Insn.ld ~width:Opcode.W1 ~dst:10 ~base:Reg.sp ~off:5 () (* inside *);
    |]
  in
  let g = D.build lat insns in
  check_bool "byte inside word ordered" true (has_edge g 0 1)

let test_sp_redefinition_blocks_disambiguation () =
  let insns =
    [|
      Insn.st ~src:8 ~base:Reg.sp ~off:0 ();
      Insn.alui Opcode.Sub ~dst:Reg.sp ~s1:Reg.sp ~imm:16L;
      Insn.ld ~dst:10 ~base:Reg.sp ~off:8 () (* different sp! *);
    |]
  in
  let g = D.build lat insns in
  check_bool "load after sp change ordered vs store" true (has_edge g 0 2)

let test_call_barrier () =
  let insns =
    [| Insn.li ~dst:8 1L; Insn.jsr 3; Insn.li ~dst:9 2L |]
  in
  let g = D.build lat insns in
  check_bool "before call" true (has_edge g 0 1);
  check_bool "after call" true (has_edge g 1 2)

let test_emit_ordering () =
  let insns = [| Insn.emit ~src:8; Insn.emit ~src:9 |] in
  let g = D.build lat insns in
  check_bool "output order preserved" true (has_edge g 0 1)

let test_terminator_pinned () =
  let insns =
    [|
      Insn.li ~dst:8 1L;
      Insn.li ~dst:9 2L;
      Insn.br Opcode.Lt ~s1:8 ~s2:9 ~target:7 ~hint:false;
      Insn.jmp 9;
    |]
  in
  let g = D.build lat insns in
  check "two terminators" 2 g.D.n_term;
  check_bool "everything before br" true (has_edge g 0 2 && has_edge g 1 2);
  check_bool "br before jmp" true (has_edge g 2 3)

let test_heights () =
  let insns =
    [|
      Insn.alu Opcode.Mul ~dst:8 ~s1:9 ~s2:9;
      Insn.alu Opcode.Add ~dst:10 ~s1:8 ~s2:8;
      Insn.li ~dst:11 0L;
    |]
  in
  let g = D.build lat insns in
  let h = D.heights g in
  check_bool "chain head taller" true (h.(0) > h.(1));
  check "independent leaf" 0 h.(2)

(* --- list scheduling --------------------------------------------------------- *)

(** A schedule is valid iff it is a permutation that respects every
    dependence edge of the original order. *)
let valid_schedule original scheduled =
  let g = D.build lat original in
  let n = Array.length original in
  if Array.length scheduled <> n then false
  else begin
    (* positions by physical identity: the scheduler permutes the very
       same instruction records *)
    let find i =
      let rec go k =
        if k >= n then None else if scheduled.(k) == i then Some k else go (k + 1)
      in
      go 0
    in
    let perm = Array.for_all (fun i -> find i <> None) original in
    perm
    && begin
         let ok = ref true in
         Array.iteri
           (fun a succs ->
             List.iter
               (fun (b, _) ->
                 match (find original.(a), find original.(b)) with
                 | Some pa, Some pb -> if pa >= pb then ok := false
                 | _ -> ok := false)
               succs)
           g.D.succs;
         !ok
       end
  end

let test_schedule_respects_deps () =
  let original =
    [|
      Insn.li ~dst:8 1L;
      Insn.alu Opcode.Mul ~dst:9 ~s1:8 ~s2:8;
      Insn.li ~dst:10 2L;
      Insn.alu Opcode.Add ~dst:11 ~s1:9 ~s2:10;
      Insn.st ~src:11 ~base:Reg.sp ~off:0 ();
      Insn.ld ~dst:12 ~base:Reg.sp ~off:0 ();
      Insn.emit ~src:12;
      Insn.br Opcode.Lt ~s1:11 ~s2:12 ~target:3 ~hint:false;
    |]
  in
  let cfg = S.config ~width:4 ~mem_channels:2 ~lat () in
  let scheduled = S.schedule_block cfg (Array.copy original) in
  check_bool "valid schedule" true (valid_schedule original scheduled)

let test_schedule_fills_latency () =
  (* ld (latency 2) followed by its consumer and an independent op: the
     scheduler should place the independent op between them *)
  let original =
    [|
      Insn.ld ~dst:8 ~base:Reg.sp ~off:0 ();
      Insn.alu Opcode.Add ~dst:9 ~s1:8 ~s2:8;
      Insn.li ~dst:10 5L;
    |]
  in
  let cfg = S.config ~width:1 ~mem_channels:1 ~lat () in
  let s = S.schedule_block cfg (Array.copy original) in
  check_bool "independent op hides load latency" true
    (s.(1).Insn.op = Opcode.Li)

let test_schedule_workload_blocks () =
  (* every block of a compiled workload must be a valid schedule *)
  let bench = Rc_workloads.W_eqn.bench in
  let prog = bench.Rc_workloads.Wutil.build 1 in
  Rc_opt.Pass.ilp prog;
  Rc_codegen.Legalize.run prog;
  let outcome = Rc_interp.Interp.run prog in
  let alloc =
    Rc_regalloc.Alloc.run ~ifile:(Reg.core_only 32) ~ffile:(Reg.core_only 32)
      prog outcome.Rc_interp.Interp.profile
  in
  let m = Rc_codegen.Lower.run prog alloc outcome.Rc_interp.Interp.profile in
  let cfg = S.config ~width:4 ~mem_channels:2 ~lat () in
  List.iter
    (fun (f : Mcode.func) ->
      List.iter
        (fun (b : Mcode.block) ->
          let original = Array.of_list b.Mcode.insns in
          let scheduled = S.schedule_block cfg (Array.copy original) in
          check_bool "workload block schedule valid" true
            (valid_schedule original scheduled))
        f.Mcode.blocks)
    m.Mcode.funcs

let qcheck_random_blocks =
  (* random straight-line blocks: scheduling preserves dependences *)
  let insn_gen =
    QCheck.Gen.(
      frequency
        [
          ( 4,
            map3
              (fun d s1 s2 -> Insn.alu Opcode.Add ~dst:(8 + d) ~s1:(8 + s1) ~s2:(8 + s2))
              (int_range 0 5) (int_range 0 5) (int_range 0 5) );
          ( 2,
            map2
              (fun d off -> Insn.ld ~dst:(8 + d) ~base:Reg.sp ~off:(8 * off) ())
              (int_range 0 5) (int_range 0 3) );
          ( 2,
            map2
              (fun s off -> Insn.st ~src:(8 + s) ~base:Reg.sp ~off:(8 * off) ())
              (int_range 0 5) (int_range 0 3) );
          (1, map (fun s -> Insn.emit ~src:(8 + s)) (int_range 0 5));
          (1, map (fun d -> Insn.li ~dst:(8 + d) 7L) (int_range 0 5));
        ])
  in
  QCheck.Test.make ~count:200 ~name:"random blocks schedule validly"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 25) insn_gen))
    (fun insns ->
      let original = Array.of_list insns in
      let cfg = S.config ~width:4 ~mem_channels:2 ~lat () in
      let scheduled = S.schedule_block cfg (Array.copy original) in
      valid_schedule original scheduled)

let suite =
  [
    ("RAW edge", `Quick, test_raw_edge);
    ("RAW latency from producer", `Quick, test_raw_latency_mul);
    ("WAR and WAW edges", `Quick, test_war_waw_edges);
    ("independent ops", `Quick, test_independent_no_edge);
    ("conservative memory", `Quick, test_memory_conservative);
    ("sp slot disambiguation", `Quick, test_memory_sp_disambiguation);
    ("byte/word overlap", `Quick, test_byte_overlap);
    ("sp redefinition", `Quick, test_sp_redefinition_blocks_disambiguation);
    ("call barrier", `Quick, test_call_barrier);
    ("emit ordering", `Quick, test_emit_ordering);
    ("terminators pinned", `Quick, test_terminator_pinned);
    ("heights", `Quick, test_heights);
    ("schedule respects deps", `Quick, test_schedule_respects_deps);
    ("schedule hides latency", `Quick, test_schedule_fills_latency);
    ("workload blocks schedule validly", `Quick, test_schedule_workload_blocks);
    QCheck_alcotest.to_alcotest qcheck_random_blocks;
  ]
