(* Tests for rc_regalloc: assignment validity, spilling behaviour, the
   core/extended placement policy and calling-convention preferences. *)

open Rc_isa
open Rc_ir
open Rc_regalloc
module B = Builder

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let neutral = Rc_interp.Profile.neutral ()

(** A function with [n] simultaneously live integer values. *)
let pressure_prog n =
  let prog = B.program ~entry:"main" in
  let _ =
    B.define prog "main" ~params:[] (fun b _ ->
        let vs = List.init n (fun k -> B.cint b k) in
        let acc = B.cint b 0 in
        List.iter (fun v -> B.assign b acc (B.add b acc v)) vs;
        B.emit b acc;
        B.halt b)
  in
  prog

let profile_of prog = (Rc_interp.Interp.run (Prog.copy prog)).Rc_interp.Interp.profile

let test_no_spills_when_roomy () =
  let prog = pressure_prog 10 in
  let alloc = Alloc.run ~ifile:(Reg.core_only 32) ~ffile:(Reg.core_only 16) prog neutral in
  check "no spills" 0 (Alloc.total_spills alloc);
  check_bool "valid" true (Alloc.validate alloc)

let test_spills_under_pressure () =
  let prog = pressure_prog 30 in
  let alloc = Alloc.run ~ifile:(Reg.core_only 16) ~ffile:(Reg.core_only 16) prog neutral in
  check_bool "some spills" true (Alloc.total_spills alloc > 0);
  check_bool "still valid" true (Alloc.validate alloc)

let test_rc_absorbs_pressure () =
  let prog = pressure_prog 30 in
  let alloc =
    Alloc.run
      ~ifile:(Reg.file ~core:16 ~total:256)
      ~ffile:(Reg.core_only 16) prog neutral
  in
  check "extended absorbs everything" 0 (Alloc.total_spills alloc);
  check_bool "valid" true (Alloc.validate alloc)

let test_assignments_stay_in_file () =
  let prog = pressure_prog 30 in
  let ifile = Reg.file ~core:16 ~total:64 in
  let alloc = Alloc.run ~ifile ~ffile:(Reg.core_only 16) prog neutral in
  let asn = Alloc.assignment alloc (Prog.find_func prog "main") in
  List.iter
    (fun p ->
      check_bool "in range" true (p >= Reg.first_alloc_int && p < 64))
    (Assignment.used_registers asn Reg.Int)

let test_reserved_never_allocated () =
  let prog = pressure_prog 40 in
  let alloc = Alloc.run ~ifile:(Reg.core_only 16) ~ffile:(Reg.core_only 16) prog neutral in
  let asn = Alloc.assignment alloc (Prog.find_func prog "main") in
  let used = Assignment.used_registers asn Reg.Int in
  List.iter
    (fun reserved ->
      check_bool
        (Fmt.str "r%d reserved" reserved)
        false (List.mem reserved used))
    [ Reg.zero; Reg.sp; Reg.ra; Reg.rv; Reg.spill_base; Reg.spill_base + 3 ]

let test_hot_values_spill_last () =
  (* under pressure, the coldest values spill first *)
  let prog = B.program ~entry:"main" in
  let hot = ref None in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let vs = List.init 20 (fun k -> B.cint b k) in
        let h = B.cint b 99 in
        hot := Some h;
        let acc = B.cint b 0 in
        (* h is used inside the loop: profile-hot *)
        B.for_n b ~start:0 ~stop:50 (fun _ ->
            B.assign b acc (B.add b acc h));
        List.iter (fun v -> B.assign b acc (B.add b acc v)) vs;
        B.emit b acc;
        B.halt b)
  in
  let profile = profile_of prog in
  let alloc = Alloc.run ~ifile:(Reg.core_only 16) ~ffile:(Reg.core_only 8) prog profile in
  let asn = Alloc.assignment alloc f in
  check_bool "some spills happened" true (Assignment.spilled_count asn > 0);
  check_bool "hot value kept in a register" false
    (Assignment.is_spilled asn (Option.get !hot))

let test_call_crossing_prefers_callee_saved () =
  let prog = B.program ~entry:"main" in
  let kept = ref None in
  let _leaf =
    B.define prog "leaf" ~params:[] ~ret:Reg.Int (fun b _ ->
        B.ret b (Some (B.cint b 1)))
  in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 7 in
        kept := Some x;
        let y = B.call_i b "leaf" [] in
        B.emit b (B.add b x y);
        B.halt b)
  in
  let ifile = Reg.core_only 16 in
  let alloc = Alloc.run ~ifile ~ffile:(Reg.core_only 8) prog neutral in
  let asn = Alloc.assignment alloc f in
  (match Assignment.location asn (Option.get !kept) with
  | Assignment.Reg p ->
      check_bool "callee-saved" true (Reg.is_callee_saved Reg.Int ifile p)
  | Assignment.Slot _ -> Alcotest.fail "unexpected spill")

let test_rc_core_affinity () =
  (* with a scarce core and an extended section, a read-only hot value
     lands in the core while write-heavy temporaries go extended *)
  let prog = B.program ~entry:"main" in
  let invariant = ref None in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let k = B.cint b 17 in
        invariant := Some k;
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:100 (fun i ->
            (* many short-lived temporaries per iteration *)
            let t1 = B.mul b i k in
            let t2 = B.add b t1 k in
            let t2 = B.add b t2 k in
            let t2 = B.add b t2 i in
            let t3 = B.mul b t2 t1 in
            let t4 = B.xor_ b t3 t2 in
            let t5 = B.add b t4 t3 in
            let t6 = B.mul b t5 i in
            let t7 = B.add b t6 t5 in
            let t8 = B.xor_ b t7 i in
            B.assign b acc (B.add b acc t8));
        B.emit b acc;
        B.halt b)
  in
  let ifile = Reg.file ~core:12 ~total:256 in
  let profile = profile_of prog in
  let alloc = Alloc.run ~ifile ~ffile:(Reg.core_only 8) prog profile in
  let asn = Alloc.assignment alloc f in
  (match Assignment.location asn (Option.get !invariant) with
  | Assignment.Reg p -> check_bool "invariant in core" true (Reg.is_core ifile p)
  | Assignment.Slot _ -> Alcotest.fail "invariant spilled");
  let used_ext =
    List.exists
      (fun p -> Reg.is_extended ifile p)
      (Assignment.used_registers asn Reg.Int)
  in
  check_bool "temporaries use the extended section" true used_ext

let test_lru_spreads_registers () =
  (* independent short-lived values should not all share one register *)
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let acc = B.cint b 0 in
        (* sequential temps, never overlapping *)
        for _ = 1 to 10 do
          let t = B.addi b acc 1L in
          B.assign b acc t
        done;
        B.emit b acc;
        B.halt b)
  in
  let alloc = Alloc.run ~ifile:(Reg.core_only 32) ~ffile:(Reg.core_only 8) prog neutral in
  let asn = Alloc.assignment alloc f in
  check_bool "more than two registers used" true
    (List.length (Assignment.used_registers asn Reg.Int) > 2)

let test_validate_catches_conflicts () =
  let prog = pressure_prog 6 in
  let f = Prog.find_func prog "main" in
  let live = Rc_dataflow.Liveness.compute f in
  let graph = Rc_dataflow.Interference.build f live in
  let asn =
    Assignment.create ~ifile:(Reg.core_only 16) ~ffile:(Reg.core_only 8)
  in
  (* deliberately assign everything to one register *)
  Vreg.Set.iter (fun v -> Assignment.set_reg asn v 8) graph.Rc_dataflow.Interference.nodes;
  check_bool "invalid detected" false (Assignment.validate asn graph)

let test_classes_allocated_independently () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 3 in
        let fx = B.itof b x in
        let fy = B.fmul b fx fx in
        B.femit b fy;
        B.emit b x;
        B.halt b)
  in
  let alloc = Alloc.run ~ifile:(Reg.core_only 16) ~ffile:(Reg.core_only 8) prog neutral in
  let asn = Alloc.assignment alloc f in
  check_bool "float regs used" true (Assignment.used_registers asn Reg.Float <> []);
  check_bool "int regs used" true (Assignment.used_registers asn Reg.Int <> []);
  check_bool "valid" true (Alloc.validate alloc)

let test_workloads_allocations_valid () =
  List.iter
    (fun (bench : Rc_workloads.Wutil.bench) ->
      let prog = bench.Rc_workloads.Wutil.build 1 in
      Rc_opt.Pass.ilp prog;
      Rc_codegen.Legalize.run prog;
      let profile = (Rc_interp.Interp.run prog).Rc_interp.Interp.profile in
      List.iter
        (fun (ifile, ffile) ->
          let alloc = Alloc.run ~ifile ~ffile prog profile in
          check_bool
            (bench.Rc_workloads.Wutil.name ^ " allocation valid")
            true (Alloc.validate alloc))
        [
          (Reg.core_only 16, Reg.core_only 16);
          (Reg.file ~core:16 ~total:256, Reg.file ~core:16 ~total:128);
          (Reg.core_only 8, Reg.core_only 8);
        ])
    [ Rc_workloads.W_eqn.bench; Rc_workloads.W_lex.bench; Rc_workloads.W_tomcatv.bench ]

let suite =
  [
    ("no spills when roomy", `Quick, test_no_spills_when_roomy);
    ("spills under pressure", `Quick, test_spills_under_pressure);
    ("extended absorbs pressure", `Quick, test_rc_absorbs_pressure);
    ("assignments within file", `Quick, test_assignments_stay_in_file);
    ("reserved registers untouched", `Quick, test_reserved_never_allocated);
    ("hot values spill last", `Quick, test_hot_values_spill_last);
    ("call-crossing prefers callee-saved", `Quick, test_call_crossing_prefers_callee_saved);
    ("core affinity under RC", `Quick, test_rc_core_affinity);
    ("LRU spreads registers", `Quick, test_lru_spreads_registers);
    ("validation catches conflicts", `Quick, test_validate_catches_conflicts);
    ("class independence", `Quick, test_classes_allocated_independently);
    ("workload allocations valid", `Quick, test_workloads_allocations_valid);
  ]
