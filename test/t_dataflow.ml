(* Tests for rc_dataflow: liveness, dominators, natural/simple loops and
   interference graphs. *)

open Rc_isa
open Rc_ir
open Rc_dataflow
module B = Builder

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A diamond with a loop:
   main: x=1; y=2; while (i < 10) { i = i + x }; emit y+i *)
let loopy_func () =
  let prog = B.program ~entry:"main" in
  let holder = ref None in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 1 in
        let y = B.cint b 2 in
        let i = B.cint b 0 in
        let n = B.cint b 10 in
        B.while_ b
          ~cond:(fun () -> (Opcode.Lt, i, n))
          ~body:(fun () -> B.assign b i (B.add b i x));
        B.emit b (B.add b y i);
        B.halt b;
        holder := Some (x, y, i, n))
  in
  (f, Option.get !holder)

let test_liveness_basic () =
  let f, (x, y, i, n) = loopy_func () in
  let live = Liveness.compute f in
  let header =
    List.find
      (fun (b : Block.t) ->
        match b.Block.term with Op.Br _ -> true | _ -> false)
      f.Func.blocks
  in
  let live_in = Liveness.live_in live header.Block.id in
  check_bool "i live at header" true (Vreg.Set.mem i live_in);
  check_bool "n live at header" true (Vreg.Set.mem n live_in);
  check_bool "x live at header (used in body)" true (Vreg.Set.mem x live_in);
  check_bool "y live through loop" true (Vreg.Set.mem y live_in);
  (* nothing is live into the entry block *)
  check "entry live-in empty" 0
    (Vreg.Set.cardinal (Liveness.live_in live (Func.entry f).Block.id))

let test_liveness_dead_def () =
  let prog = B.program ~entry:"main" in
  let dead = ref None in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let d = B.cint b 42 in
        dead := Some d;
        let u = B.cint b 1 in
        B.emit b u;
        B.halt b)
  in
  let live = Liveness.compute f in
  let entry = Func.entry f in
  (* walk to the point after the dead def: it is never live *)
  let seen_live = ref false in
  Liveness.fold_block_backward live entry ~init:() ~f:(fun () _op after ->
      if Vreg.Set.mem (Option.get !dead) after then seen_live := true);
  check_bool "dead def never live" false !seen_live

let test_dominators () =
  let f, _ = loopy_func () in
  let doms = Dominators.compute f in
  let entry = (Func.entry f).Block.id in
  List.iter
    (fun (b : Block.t) ->
      check_bool "entry dominates all" true
        (Dominators.dominates doms entry b.Block.id);
      check_bool "self dominance" true
        (Dominators.dominates doms b.Block.id b.Block.id))
    f.Func.blocks;
  check_bool "entry has no idom" true (Dominators.idom doms entry = None)

let test_natural_loops () =
  let f, _ = loopy_func () in
  match Loops.natural_loops f with
  | [ l ] ->
      check "loop body size" 2 (Loops.IntSet.cardinal l.Loops.body);
      check "one back edge" 1 (List.length l.Loops.back_edges);
      let depth = Loops.depths f in
      check "header depth" 1 (depth l.Loops.head);
      check "entry depth" 0 (depth (Func.entry f).Block.id)
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

let test_simple_loop_recognition () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:8 (fun i -> B.assign b acc (B.add b acc i));
        B.emit b acc;
        B.halt b)
  in
  match Loops.find_simple f with
  | [ s ] ->
      Alcotest.(check int64) "step" 1L s.Loops.step;
      check_bool "cond lt" true (s.Loops.cond = Opcode.Lt);
      check_bool "header has empty ops" true (s.Loops.header.Block.ops = [])
  | ls -> Alcotest.failf "expected 1 simple loop, got %d" (List.length ls)

let test_simple_loop_rejects_variant_bound () =
  (* a loop whose bound changes inside the body is not "simple" *)
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let i = B.cint b 0 in
        let n = B.cint b 10 in
        B.while_ b
          ~cond:(fun () -> (Opcode.Lt, i, n))
          ~body:(fun () ->
            B.assign b i (B.addi b i 1L);
            B.assign b n (B.subi b n 1L));
        B.emit b i;
        B.halt b)
  in
  check "no simple loops" 0 (List.length (Loops.find_simple f))

let test_interference () =
  let prog = B.program ~entry:"main" in
  let vs = ref None in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 1 in
        let y = B.cint b 2 in
        let s = B.add b x y in
        (* x dead after the add; s and y both live here *)
        let t = B.add b s y in
        B.emit b t;
        B.halt b;
        vs := Some (x, y, s, t))
  in
  let x, y, s, _t = Option.get !vs in
  let live = Liveness.compute f in
  let g = Interference.build f live in
  check_bool "x-y interfere" true (Interference.interferes g x y);
  check_bool "s-y interfere" true (Interference.interferes g s y);
  check_bool "x-s do not interfere" false (Interference.interferes g x s);
  check_bool "degree y >= 2" true (Interference.degree g y >= 2)

let test_interference_classes () =
  let prog = B.program ~entry:"main" in
  let vs = ref None in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 1 in
        let fx = B.itof b x in
        let fy = B.fadd b fx fx in
        B.femit b fy;
        B.emit b x;
        B.halt b;
        vs := Some (x, fx))
  in
  let x, fx = Option.get !vs in
  let live = Liveness.compute f in
  let g = Interference.build f live in
  check_bool "no cross-class edges" false (Interference.interferes g x fx)

let test_move_relatedness () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 1 in
        let y = B.fresh b Reg.Int in
        B.mov b ~dst:y ~src:x;
        B.emit b y;
        B.emit b x;
        B.halt b)
  in
  let live = Liveness.compute f in
  let g = Interference.build f live in
  check "one move pair" 1 (List.length g.Interference.moves)

let test_max_pressure () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let a = B.cint b 1 in
        let c = B.cint b 2 in
        let d = B.cint b 3 in
        let e = B.cint b 4 in
        let s = B.add b (B.add b a c) (B.add b d e) in
        B.emit b s;
        B.halt b)
  in
  let live = Liveness.compute f in
  check_bool "pressure at least 4" true
    (Interference.max_pressure f live Reg.Int >= 4);
  check "no float pressure" 0 (Interference.max_pressure f live Reg.Float)

let test_live_across_calls () =
  let prog = B.program ~entry:"main" in
  let kept = ref None in
  let _leaf =
    B.define prog "leaf" ~params:[] ~ret:Reg.Int (fun b _ ->
        B.ret b (Some (B.cint b 7)))
  in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 5 in
        kept := Some x;
        let y = B.call_i b "leaf" [] in
        B.emit b (B.add b x y);
        B.halt b)
  in
  let live = Liveness.compute f in
  let across = Liveness.live_across_calls f live in
  check_bool "x lives across the call" true (Vreg.Set.mem (Option.get !kept) across);
  check "only x" 1 (Vreg.Set.cardinal across)

let suite =
  [
    ("liveness over a loop", `Quick, test_liveness_basic);
    ("dead definitions not live", `Quick, test_liveness_dead_def);
    ("dominators", `Quick, test_dominators);
    ("natural loops", `Quick, test_natural_loops);
    ("simple loop recognition", `Quick, test_simple_loop_recognition);
    ("variant bound rejected", `Quick, test_simple_loop_rejects_variant_bound);
    ("interference edges", `Quick, test_interference);
    ("interference class separation", `Quick, test_interference_classes);
    ("move relatedness", `Quick, test_move_relatedness);
    ("max pressure", `Quick, test_max_pressure);
    ("live across calls", `Quick, test_live_across_calls);
  ]
