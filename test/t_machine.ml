(* Tests for rc_machine: functional semantics, cycle-accurate timing
   (latencies, issue width, memory channels, branch penalties, connect
   latency), and the upward-compatibility behaviours of paper section 4
   (jsr/rts map reset, trap map bypass, context switching). *)

open Rc_isa
open Rc_core
module M = Rc_machine.Machine
module C = Rc_machine.Config

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(** Assemble one block of instructions as the whole program. *)
let image_of ?(globals = []) insns =
  let m = Mcode.create ~entry:"main" in
  List.iter (Mcode.add_global m) globals;
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks = [ { Mcode.label = 0; insns } ];
    };
  Image.assemble m

let run ?(cfg = C.v ()) ?globals insns = M.run cfg (image_of ?globals insns)

let cfg1 = C.v ~issue:1 ~ifile:(Reg.core_only 32) ~ffile:(Reg.core_only 16) ()
let cfg4 = C.v ~issue:4 ~ifile:(Reg.core_only 32) ~ffile:(Reg.core_only 16) ()

(* --- functional behaviour --------------------------------------------------- *)

let test_functional_alu () =
  let r =
    run ~cfg:cfg1
      [
        Insn.li ~dst:8 6L;
        Insn.li ~dst:9 7L;
        Insn.alu Opcode.Mul ~dst:10 ~s1:8 ~s2:9;
        Insn.emit ~src:10;
        Insn.alui Opcode.Sub ~dst:11 ~s1:10 ~imm:2L;
        Insn.emit ~src:11;
        Insn.halt ();
      ]
  in
  Alcotest.(check (list int64)) "alu output" [ 42L; 40L ] r.M.output

let test_functional_memory () =
  let g = Mcode.global ~name:"buf" ~bytes:32 ~init:(Mcode.Words [| 5L |]) () in
  let addr = Image.data_base in
  let r =
    run ~cfg:cfg1 ~globals:[ g ]
      [
        Insn.li ~dst:8 (Int64.of_int addr);
        Insn.ld ~dst:9 ~base:8 ~off:0 ();
        Insn.emit ~src:9;
        Insn.st ~src:9 ~base:8 ~off:8 ();
        Insn.ld ~dst:10 ~base:8 ~off:8 ();
        Insn.emit ~src:10;
        Insn.ld ~width:Opcode.W1 ~dst:11 ~base:8 ~off:0 ();
        Insn.emit ~src:11;
        Insn.halt ();
      ]
  in
  Alcotest.(check (list int64)) "memory" [ 5L; 5L; 5L ] r.M.output

let test_zero_register () =
  let r =
    run ~cfg:cfg1
      [
        Insn.li ~dst:Reg.zero 99L (* write discarded *);
        Insn.emit ~src:Reg.zero;
        Insn.halt ();
      ]
  in
  Alcotest.(check (list int64)) "zero stays zero" [ 0L ] r.M.output

(* --- timing ------------------------------------------------------------------ *)

let cycles ?(cfg = cfg1) insns = (run ~cfg insns).M.cycles

let test_single_issue_ipc () =
  (* independent single-cycle ops at 1-issue: one per cycle (+halt) *)
  let insns = List.init 10 (fun k -> Insn.li ~dst:(8 + k) 1L) @ [ Insn.halt () ] in
  check "10 lis + halt" 11 (cycles insns)

let test_wide_issue () =
  (* the same ops at 4-issue *)
  let insns = List.init 8 (fun k -> Insn.li ~dst:(8 + k) 1L) @ [ Insn.halt () ] in
  check "8 lis in 2 cycles + halt" 3 (cycles ~cfg:cfg4 insns)

let test_alu_latency_chain () =
  (* chain of n dependent adds: n cycles even at 4-issue *)
  let insns =
    Insn.li ~dst:8 0L
    :: List.init 6 (fun _ -> Insn.alui Opcode.Add ~dst:8 ~s1:8 ~imm:1L)
    @ [ Insn.halt () ]
  in
  (* li in c0; adds at c1..c6; halt in c6's group? halt depends on nothing
     but issues in order after the last add, same cycle *)
  check "dependent adds serialise" 7 (cycles ~cfg:cfg4 insns)

let test_mul_latency () =
  let insns =
    [
      Insn.li ~dst:8 3L;
      Insn.alu Opcode.Mul ~dst:9 ~s1:8 ~s2:8 (* issues c1, ready c4 *);
      Insn.alui Opcode.Add ~dst:10 ~s1:9 ~imm:1L (* issues c4 *);
      Insn.halt ();
    ]
  in
  check "mul consumer waits 3" 5 (cycles ~cfg:cfg4 insns)

let test_load_latency_config () =
  let prog off_lat =
    [
      Insn.li ~dst:8 (Int64.of_int Image.data_base);
      Insn.ld ~dst:9 ~base:8 ~off:0 ();
      Insn.alui Opcode.Add ~dst:10 ~s1:9 ~imm:1L;
      Insn.halt ();
    ]
    |> fun insns ->
    let cfg =
      C.v ~issue:1 ~lat:(Latency.v ~load:off_lat ())
        ~ifile:(Reg.core_only 32) ~ffile:(Reg.core_only 16) ()
    in
    cycles ~cfg insns
  in
  check "2-cycle load" 5 (prog 2);
  check "4-cycle load" 7 (prog 4)

let test_memory_channels () =
  let loads n =
    Insn.li ~dst:8 (Int64.of_int Image.data_base)
    :: List.init n (fun k -> Insn.ld ~dst:(9 + k) ~base:8 ~off:(8 * k) ())
    @ [ Insn.halt () ]
  in
  let with_channels ch =
    let cfg =
      C.v ~issue:8 ~mem_channels:ch ~ifile:(Reg.core_only 32)
        ~ffile:(Reg.core_only 16) ()
    in
    cycles ~cfg (loads 8)
  in
  check_bool "4 channels faster than 2" true (with_channels 4 < with_channels 2);
  (* 8 independent loads, 2 channels: 4 cycles of loads *)
  check "2 channels" 5 (with_channels 2);
  check "4 channels" 3 (with_channels 4)

let test_waw_interlock () =
  (* CRAY-1 interlock: overwriting an in-flight destination stalls *)
  let insns =
    [
      Insn.li ~dst:8 3L;
      Insn.alu Opcode.Mul ~dst:9 ~s1:8 ~s2:8 (* r9 busy until c4 *);
      Insn.li ~dst:9 0L (* WAW: must wait *);
      Insn.halt ();
    ]
  in
  check "waw stall" 5 (cycles ~cfg:cfg4 insns)

let test_branch_prediction () =
  (* a correctly predicted taken branch costs no extra penalty cycles *)
  let body hint =
    [
      Insn.li ~dst:8 0L;
      Insn.li ~dst:9 1L;
      Insn.br Opcode.Lt ~s1:8 ~s2:9 ~target:1 ~hint (* -> label 1 *);
    ]
  in
  let make hint =
    let m = Mcode.create ~entry:"main" in
    Mcode.add_func m
      {
        Mcode.name = "main";
        entry_label = 0;
        blocks =
          [
            { Mcode.label = 0; insns = body hint };
            { Mcode.label = 1; insns = [ Insn.halt () ] };
          ];
      };
    M.run cfg1 (Image.assemble m)
  in
  let good = make true and bad = make false in
  check "no mispredicts when hinted" 0 good.M.mispredicts;
  check "mispredict counted" 1 bad.M.mispredicts;
  check "penalty paid" (good.M.cycles + C.mispredict_penalty cfg1) bad.M.cycles

let test_extra_stage_penalty () =
  let cfg_fast = C.v ~issue:1 ~ifile:(Reg.core_only 32) () in
  let cfg_deep = C.v ~issue:1 ~extra_stage:true ~ifile:(Reg.core_only 32) () in
  check "penalty 1" 1 (C.mispredict_penalty cfg_fast);
  check "penalty 2 with extra stage" 2 (C.mispredict_penalty cfg_deep)

(* --- connects ------------------------------------------------------------------ *)

let rc_file = Reg.file ~core:8 ~total:32
let rc_file16 = Reg.file ~core:16 ~total:32

let rc_cfg ?(connect = 0) ?connect_dispatch () =
  C.v ~issue:4 ~lat:(Latency.v ~connect ()) ~ifile:rc_file
    ~ffile:(Reg.core_only 8) ?connect_dispatch ()

let rc_cfg16 ?(connect = 0) ?connect_dispatch () =
  C.v ~issue:4 ~lat:(Latency.v ~connect ()) ~ifile:rc_file16
    ~ffile:(Reg.core_only 8) ?connect_dispatch ()

let connect_prog =
  [
    Insn.li ~dst:7 5L (* rv holds 5 *);
    (* send it to extended register 20 via a def connect *)
    Insn.connect_def ~cls:Reg.Int ~ri:7 ~rp:20 ();
    Insn.alui Opcode.Add ~dst:7 ~s1:7 ~imm:1L (* writes Rp20 := 6 *);
    (* model 3: read map of r7 now points at Rp20 *)
    Insn.emit ~src:7;
    (* r7's write map snapped home, so this writes the core register *)
    Insn.li ~dst:7 100L;
    Insn.emit ~src:7 (* model 3: reads Rp7 = 100 *);
    Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:20 ();
    Insn.emit ~src:7 (* back to Rp20 = 6 *);
    Insn.halt ();
  ]

let test_connect_functional_model3 () =
  let r = M.run (rc_cfg ()) (image_of connect_prog) in
  Alcotest.(check (list int64)) "model 3 semantics" [ 6L; 100L; 6L ] r.M.output;
  check "dynamic connects" 2 r.M.connects

let test_connect_zero_vs_one_cycle () =
  (* connect in the same cycle as its consumer: free at 0 cycles
     (dispatch forwarding), a stall at 1 cycle *)
  let insns =
    [
      Insn.li ~dst:8 1L;
      Insn.li ~dst:9 2L;
      (* filler so the consumer's operands are ready in the connect's
         cycle *)
      Insn.alu Opcode.Add ~dst:12 ~s1:8 ~s2:8;
      Insn.connect_use ~cls:Reg.Int ~ri:10 ~rp:9 ();
      Insn.alu Opcode.Add ~dst:11 ~s1:10 ~s2:8 (* reads via idx 10 *);
      Insn.emit ~src:11;
      Insn.halt ();
    ]
  in
  let c0 = (M.run (rc_cfg16 ~connect:0 ()) (image_of insns)).M.cycles in
  let c1 = (M.run (rc_cfg16 ~connect:1 ()) (image_of insns)).M.cycles in
  check_bool "1-cycle connect costs a stall" true (c1 > c0);
  let r = M.run (rc_cfg16 ~connect:1 ()) (image_of insns) in
  Alcotest.(check (list int64)) "same result" [ 3L ] r.M.output;
  check_bool "map stall recorded" true (r.M.map_stalls > 0)

let test_connect_dispatch_budget () =
  (* real work interleaved with connects: with [`Shared] dispatch the
     connects compete for issue slots and the program slows down *)
  let insns =
    List.concat
      (List.init 4 (fun k ->
           [
             Insn.li ~dst:(8 + k) (Int64.of_int k);
             Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:(20 + k) ();
           ]))
    @ [ Insn.halt () ]
  in
  let extra = (M.run (rc_cfg16 ()) (image_of insns)).M.cycles in
  let shared =
    (M.run (rc_cfg16 ~connect_dispatch:`Shared ()) (image_of insns)).M.cycles
  in
  check_bool
    (Fmt.str "shared dispatch is slower (%d > %d)" shared extra)
    true (shared > extra)

(* --- jsr / rts map reset (section 4.1) -------------------------------------------- *)

let test_jsr_resets_map () =
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          {
            Mcode.label = 0;
            insns =
              [
                Insn.li ~dst:7 1L;
                (* connect r7 reads to extended 20 holding 77 *)
                Insn.connect_def ~cls:Reg.Int ~ri:5 ~rp:20 ();
                Insn.li ~dst:5 77L (* Rp20 := 77 *);
                Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:20 ();
                Insn.emit ~src:7 (* 77 via the map *);
                Insn.jsr 1 (* hardware resets the map *);
                Insn.emit ~src:7 (* now the core register: 1 *);
                Insn.halt ();
              ];
          };
        ];
    };
  Mcode.add_func m
    {
      Mcode.name = "callee";
      entry_label = 1;
      blocks =
        [
          {
            Mcode.label = 1;
            insns =
              [
                (* callee reads r7: must see the CORE register (jsr
                   reset), not extended 20 *)
                Insn.emit ~src:7;
                Insn.rts ();
              ];
          };
        ];
    };
  let r = M.run (rc_cfg ()) (Image.assemble m) in
  Alcotest.(check (list int64)) "jsr/rts reset" [ 77L; 1L; 1L ] r.M.output

(* Nested jsr/rts with live connects on both sides of every call
   boundary, checked against the sequential oracle executor (Iexec).
   Every call edge must reset both maps to home (paper section 4.1):
   connects made by the caller are invisible to the callee and vice
   versa, and the machine and the oracle must agree on all of it. *)
let test_jsr_rts_call_heavy () =
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          {
            Mcode.label = 0;
            insns =
              [
                Insn.connect_def ~cls:Reg.Int ~ri:4 ~rp:20 ();
                Insn.li ~dst:4 111L (* Rp20 := 111; model 3 redirects reads *);
                Insn.emit ~src:4 (* 111 via the read map *);
                Insn.jsr 1;
                Insn.emit ~src:4 (* rts reset home: core r4 = 222 *);
                Insn.halt ();
              ];
          };
        ];
    };
  Mcode.add_func m
    {
      Mcode.name = "middle";
      entry_label = 1;
      blocks =
        [
          {
            Mcode.label = 1;
            insns =
              [
                Insn.emit ~src:4 (* jsr reset: core r4 = 0, not 111 *);
                Insn.li ~dst:4 222L (* maps home: core r4 := 222 *);
                Insn.connect_use ~cls:Reg.Int ~ri:4 ~rp:21 ();
                Insn.emit ~src:4 (* extended Rp21 = 0 *);
                Insn.move ~dst:5 ~src:Reg.ra () (* save ra across call *);
                Insn.jsr 2;
                Insn.move ~dst:Reg.ra ~src:5 ();
                Insn.emit ~src:4 (* rts reset home again: 222 *);
                Insn.rts ();
              ];
          };
        ];
    };
  Mcode.add_func m
    {
      Mcode.name = "leaf";
      entry_label = 2;
      blocks =
        [
          {
            Mcode.label = 2;
            insns =
              [
                Insn.emit ~src:4 (* caller's connect invisible: 222 *);
                Insn.connect_use ~cls:Reg.Int ~ri:4 ~rp:22 ();
                Insn.emit ~src:4 (* extended Rp22 = 0 *);
                Insn.rts ();
              ];
          };
        ];
    };
  let image = Image.assemble m in
  let expected = [ 111L; 0L; 0L; 222L; 0L; 222L; 222L ] in
  let r = M.run (rc_cfg ~connect:1 ()) image in
  Alcotest.(check (list int64)) "machine output" expected r.M.output;
  let o =
    Rc_interp.Iexec.create ~ifile:rc_file ~ffile:(Reg.core_only 8) image
  in
  Rc_interp.Iexec.run o;
  Alcotest.(check (list int64))
    "oracle output" expected
    (Rc_interp.Iexec.output o);
  (* the final rts left both of the oracle's tables fully home *)
  check_bool "int map home" true (Map_table.is_home o.Rc_interp.Iexec.imap);
  check_bool "float map home" true (Map_table.is_home o.Rc_interp.Iexec.fmap)

(* --- traps and interrupts (section 4.3) --------------------------------------------- *)

let trap_image () =
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          {
            Mcode.label = 0;
            insns =
              [
                Insn.li ~dst:7 11L (* core r7 = 11 *);
                Insn.connect_def ~cls:Reg.Int ~ri:5 ~rp:20 ();
                Insn.li ~dst:5 99L (* extended Rp20 = 99 *);
                Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:20 ();
                Insn.emit ~src:7 (* 99 through the map *);
                Insn.trap () (* enter handler, map disabled *);
                Insn.emit ~src:7 (* map restored by rfe: 99 again *);
                Insn.halt ();
              ];
          };
        ];
    };
  Mcode.add_func m
    {
      Mcode.name = "handler";
      entry_label = 1;
      blocks =
        [
          {
            Mcode.label = 1;
            insns =
              [
                (* map-enable cleared: r7 reads the CORE register *)
                Insn.emit ~src:7;
                Insn.rfe ();
              ];
          };
        ];
    };
  Image.assemble m

let test_trap_bypasses_map () =
  let cfg =
    C.v ~issue:1 ~ifile:rc_file ~ffile:(Reg.core_only 8)
      ~trap_handler:"handler" ()
  in
  let r = M.run cfg (trap_image ()) in
  Alcotest.(check (list int64)) "trap map bypass" [ 99L; 11L; 99L ] r.M.output

let test_interrupt_injection () =
  let cfg =
    C.v ~issue:1 ~ifile:rc_file16 ~ffile:(Reg.core_only 8)
      ~trap_handler:"handler" ()
  in
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          {
            Mcode.label = 0;
            insns =
              (List.init 20 (fun k -> Insn.li ~dst:8 (Int64.of_int k))
              @ [ Insn.li ~dst:7 5L; Insn.emit ~src:7; Insn.halt () ]);
          };
        ];
    };
  Mcode.add_func m
    {
      Mcode.name = "handler";
      entry_label = 1;
      blocks = [ { Mcode.label = 1; insns = [ Insn.emit ~src:Reg.zero; Insn.rfe () ] } ];
    };
  let t = M.create cfg (Image.assemble m) in
  M.run_cycle t;
  M.run_cycle t;
  M.inject_interrupt t;
  let r = M.run_machine t in
  (* the handler ran exactly once (emitted 0), main still completed *)
  Alcotest.(check (list int64)) "interrupted run" [ 0L; 5L ] r.M.output

let test_extended_handler_protocol () =
  (* Section 4.3, second half: a handler that needs more than the core
     registers re-enables the map, but must save, reuse and restore the
     map entries it touches so the interrupted program's connections
     survive. *)
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          {
            Mcode.label = 0;
            insns =
              [
                Insn.li ~dst:7 11L;
                Insn.connect_def ~cls:Reg.Int ~ri:5 ~rp:20 ();
                Insn.li ~dst:5 99L (* extended Rp20 = 99 *);
                Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:20 ();
                Insn.emit ~src:7 (* 99 *);
                Insn.trap ();
                Insn.emit ~src:7 (* still 99: the handler restored r7's map *);
                Insn.halt ();
              ];
          };
        ];
    };
  Mcode.add_func m
    {
      Mcode.name = "handler";
      entry_label = 1;
      blocks =
        [
          {
            Mcode.label = 1;
            insns =
              [
                (* save the map entry we are about to reuse (works with
                   the map disabled) *)
                Insn.mfmap Opcode.Read ~dst:2 ~idx:7;
                (* the handler needs extended registers: re-enable *)
                Insn.mapen true;
                Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:21 ();
                Insn.emit ~src:7 (* the handler's own extended value: 0 *);
                (* restore the saved entry before returning *)
                Insn.mtmap Opcode.Read ~src:2 ~idx:7;
                Insn.rfe ();
              ];
          };
        ];
    };
  let cfg =
    C.v ~issue:1 ~ifile:rc_file ~ffile:(Reg.core_only 8)
      ~trap_handler:"handler" ()
  in
  let r = M.run cfg (Image.assemble m) in
  Alcotest.(check (list int64)) "extended handler protocol" [ 99L; 0L; 99L ]
    r.M.output

let test_mfmap_mtmap_roundtrip () =
  let insns =
    [
      Insn.connect_use ~cls:Reg.Int ~ri:4 ~rp:25 ();
      Insn.mfmap Opcode.Read ~dst:7 ~idx:4;
      Insn.emit ~src:7 (* 25 *);
      Insn.mfmap Opcode.Write ~dst:7 ~idx:4;
      Insn.emit ~src:7 (* 4: write map still home *);
      Insn.li ~dst:7 30L;
      Insn.mtmap Opcode.Write ~src:7 ~idx:4;
      Insn.mfmap Opcode.Write ~dst:7 ~idx:4;
      Insn.emit ~src:7 (* 30 *);
      Insn.halt ();
    ]
  in
  let r = M.run (rc_cfg ()) (image_of insns) in
  Alcotest.(check (list int64)) "map roundtrip" [ 25L; 4L; 30L ] r.M.output

let test_mapen_instruction () =
  let insns =
    [
      Insn.li ~dst:7 1L;
      Insn.connect_use ~cls:Reg.Int ~ri:7 ~rp:20 ();
      Insn.mapen false (* bypass the table *);
      Insn.emit ~src:7 (* core register *);
      Insn.mapen true;
      Insn.emit ~src:7 (* extended again (0) *);
      Insn.halt ();
    ]
  in
  let r = M.run (rc_cfg ()) (image_of insns) in
  Alcotest.(check (list int64)) "mapen" [ 1L; 0L ] r.M.output

(* --- context switching (section 4.2) -------------------------------------------------- *)

let test_context_switch_roundtrip () =
  let cfg = rc_cfg () in
  let insns =
    [
      Insn.li ~dst:7 123L;
      Insn.connect_use ~cls:Reg.Int ~ri:5 ~rp:25 ();
      Insn.halt ();
    ]
  in
  let t = M.create cfg (image_of insns) in
  ignore (M.run_machine t);
  let view = M.context_view t in
  let saved = Context.save view in
  (* another process tramples the state *)
  Array.fill view.Context.iregs 0 32 0L;
  Map_table.reset view.Context.imap;
  Context.restore view saved;
  Alcotest.(check int64) "register restored" 123L view.Context.iregs.(7);
  check "connection restored" 25 (Map_table.read view.Context.imap 5)

(* --- slot accounting (stall attribution) ------------------------------------------------ *)

(* Every unused issue slot must be charged to exactly one loss reason:
   cycles * issue = (issued - extra_connects) + lost slots.  Checked over
   a matrix of micro-programs crossing issue width, connect latency and
   RC on/off. *)

let micro_programs =
  [
    ( "alu chain",
      Insn.li ~dst:8 0L
      :: List.init 6 (fun _ -> Insn.alui Opcode.Add ~dst:8 ~s1:8 ~imm:1L)
      @ [ Insn.halt () ] );
    ( "independent lis",
      (* destinations within the 16-register RC core file *)
      List.init 8 (fun k -> Insn.li ~dst:(8 + k) 1L) @ [ Insn.halt () ] );
    ( "loads",
      Insn.li ~dst:8 (Int64.of_int Image.data_base)
      :: List.init 6 (fun k -> Insn.ld ~dst:(9 + k) ~base:8 ~off:(8 * k) ())
      @ [ Insn.halt () ] );
    ( "mul consumers",
      [
        Insn.li ~dst:8 3L;
        Insn.alu Opcode.Mul ~dst:9 ~s1:8 ~s2:8;
        Insn.alui Opcode.Add ~dst:10 ~s1:9 ~imm:1L;
        Insn.alu Opcode.Mul ~dst:11 ~s1:10 ~s2:9;
        Insn.emit ~src:11;
        Insn.halt ();
      ] );
    ("connects", connect_prog);
  ]

(* A mispredicted branch exercises the Redirect attribution. *)
let mispredict_image () =
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks =
        [
          {
            Mcode.label = 0;
            insns =
              [
                Insn.li ~dst:8 0L;
                Insn.li ~dst:9 1L;
                Insn.br Opcode.Lt ~s1:8 ~s2:9 ~target:1 ~hint:false;
              ];
          };
          { Mcode.label = 1; insns = [ Insn.emit ~src:9; Insn.halt () ] };
        ];
    };
  Image.assemble m

let check_invariant name ~issue (r : M.result) =
  check_bool
    (Fmt.str "%s: %d*%d = (%d - %d) + %d" name r.M.cycles issue r.M.issued
       r.M.extra_connects (M.lost_slots r))
    true
    (M.slot_invariant_holds ~issue r)

let test_slot_invariant_matrix () =
  List.iter
    (fun issue ->
      List.iter
        (fun connect ->
          List.iter
            (fun rc ->
              let ifile =
                if rc then Reg.file ~core:16 ~total:32 else Reg.core_only 32
              in
              let cfg =
                C.v ~issue ~lat:(Latency.v ~connect ()) ~ifile
                  ~ffile:(Reg.core_only 8) ()
              in
              List.iter
                (fun (name, insns) ->
                  (* connect micro-programs need the map table *)
                  if rc || name <> "connects" then
                    let r = M.run cfg (image_of insns) in
                    check_invariant
                      (Fmt.str "%s i=%d c=%d rc=%b" name issue connect rc)
                      ~issue r)
                micro_programs;
              let r = M.run cfg (mispredict_image ()) in
              check_invariant
                (Fmt.str "mispredict i=%d c=%d rc=%b" issue connect rc)
                ~issue r;
              check_bool "redirect slots lost" true (r.M.lost_branch > 0))
            [ false; true ])
        [ 0; 1 ])
    [ 1; 2; 4; 8 ]

let test_slot_invariant_shared_dispatch () =
  (* `Shared dispatch: connects consume regular slots, extra_connects
     stays 0 and the invariant still balances *)
  let r =
    M.run (rc_cfg16 ~connect_dispatch:`Shared ()) (image_of connect_prog)
  in
  check "no extra-slot connects under shared dispatch" 0 r.M.extra_connects;
  check_invariant "shared dispatch" ~issue:4 r

let test_observer_samples () =
  (* the per-cycle observer stream must tile the run: samples'
     s_cycles/s_issued/losses sum to the final counters, and each
     sample satisfies the per-cycle invariant *)
  let cfg = rc_cfg16 ~connect:1 () in
  let t = M.create cfg (image_of connect_prog) in
  let samples = ref [] in
  M.set_observer t (Some (fun s -> samples := s :: !samples));
  let r = M.run_machine t in
  let samples = List.rev !samples in
  let sum f = List.fold_left (fun a s -> a + f s) 0 samples in
  check "cycles covered" r.M.cycles (sum (fun s -> s.M.s_cycles));
  check "issued covered" r.M.issued (sum (fun s -> s.M.s_issued));
  check "data losses covered" r.M.lost_data (sum (fun s -> s.M.s_lost_data));
  check "map losses covered" r.M.lost_map (sum (fun s -> s.M.s_lost_map));
  check "branch losses covered" r.M.lost_branch
    (sum (fun s -> s.M.s_lost_branch));
  check "fetch losses covered" r.M.lost_fetch
    (sum (fun s -> s.M.s_lost_fetch));
  List.iter
    (fun s ->
      let lost =
        s.M.s_lost_data + s.M.s_lost_map + s.M.s_lost_channel
        + s.M.s_lost_branch + s.M.s_lost_fetch
      in
      (* connects may dispatch through the extra budget, beyond the
         regular slots *)
      check_bool
        (Fmt.str "cycle %d sample balances" s.M.s_cycle)
        true
        ((s.M.s_cycles * 4) + s.M.s_connects >= s.M.s_issued + lost))
    samples

let test_observer_absent_same_result () =
  (* telemetry must not perturb the simulation *)
  let run_with obs =
    let t = M.create (rc_cfg16 ~connect:1 ()) (image_of connect_prog) in
    M.set_observer t obs;
    M.run_machine t
  in
  let a = run_with None and b = run_with (Some (fun _ -> ())) in
  check "same cycles" a.M.cycles b.M.cycles;
  check "same issued" a.M.issued b.M.issued;
  Alcotest.(check (list int64)) "same output" a.M.output b.M.output

(* qcheck: the invariant holds for random independent-op programs at
   random widths *)
let prop_slot_invariant =
  QCheck.Test.make ~count:200 ~name:"slot accounting balances"
    QCheck.(pair (int_range 0 30) (int_range 1 8))
    (fun (n, w) ->
      let insns =
        List.init n (fun k -> Insn.li ~dst:(8 + (k mod 20)) (Int64.of_int k))
        @ [ Insn.halt () ]
      in
      let cfg =
        C.v ~issue:w ~ifile:(Reg.core_only 32) ~ffile:(Reg.core_only 8) ()
      in
      let r = M.run cfg (image_of insns) in
      M.slot_invariant_holds ~issue:w r)

(* --- error handling --------------------------------------------------------------------- *)

let test_fuel_exhaustion () =
  let m = Mcode.create ~entry:"main" in
  Mcode.add_func m
    {
      Mcode.name = "main";
      entry_label = 0;
      blocks = [ { Mcode.label = 0; insns = [ Insn.jmp 0 ] } ];
    };
  let cfg = C.v ~issue:1 ~ifile:(Reg.core_only 32) ~fuel:100 () in
  check_bool "infinite loop detected" true
    (try
       ignore (M.run cfg (Image.assemble m));
       false
     with M.Simulation_error _ -> true)

let test_bad_memory_access () =
  let insns =
    [ Insn.li ~dst:8 (-64L); Insn.ld ~dst:9 ~base:8 ~off:0 (); Insn.halt () ]
  in
  check_bool "bad address" true
    (try
       ignore (run ~cfg:cfg1 insns);
       false
     with M.Simulation_error _ -> true)

(* qcheck: n independent single-cycle ops at width w issue in
   ceil(n/w) cycles (+1 for halt when it does not fit the last group) *)
let prop_issue_width =
  QCheck.Test.make ~count:200 ~name:"independent ops fill the issue width"
    QCheck.(pair (int_range 0 40) (int_range 1 8))
    (fun (n, w) ->
      let insns =
        List.init n (fun k -> Insn.li ~dst:(8 + (k mod 20)) (Int64.of_int k))
        @ [ Insn.halt () ]
      in
      (* avoid WAW reuse stalls: distinct destinations per group *)
      QCheck.assume (n <= 20);
      let cfg = C.v ~issue:w ~ifile:(Reg.core_only 32) ~ffile:(Reg.core_only 8) () in
      let r = M.run cfg (image_of insns) in
      let groups = (n + w - 1) / w in
      let expected = if n mod w = 0 then groups + 1 else groups in
      r.M.cycles = max 1 expected)

(* qcheck: a dependent chain of k adds takes k cycles after the seed *)
let prop_chain_latency =
  QCheck.Test.make ~count:100 ~name:"dependent chain takes chain-length cycles"
    QCheck.(int_range 1 30)
    (fun k ->
      let insns =
        Insn.li ~dst:8 0L
        :: List.init k (fun _ -> Insn.alui Opcode.Add ~dst:8 ~s1:8 ~imm:1L)
        @ [ Insn.emit ~src:8; Insn.halt () ]
      in
      let r = M.run cfg4 (image_of insns) in
      r.M.cycles = k + 2 && r.M.output = [ Int64.of_int k ])

let suite =
  [
    ("functional alu", `Quick, test_functional_alu);
    ("functional memory", `Quick, test_functional_memory);
    ("zero register", `Quick, test_zero_register);
    ("single-issue ipc", `Quick, test_single_issue_ipc);
    ("wide issue", `Quick, test_wide_issue);
    ("alu latency chain", `Quick, test_alu_latency_chain);
    ("mul latency", `Quick, test_mul_latency);
    ("load latency 2 vs 4", `Quick, test_load_latency_config);
    ("memory channels", `Quick, test_memory_channels);
    ("WAW interlock", `Quick, test_waw_interlock);
    ("branch prediction and penalty", `Quick, test_branch_prediction);
    ("extra pipeline stage penalty", `Quick, test_extra_stage_penalty);
    ("connect semantics (model 3)", `Quick, test_connect_functional_model3);
    ("connect 0 vs 1 cycle", `Quick, test_connect_zero_vs_one_cycle);
    ("connect dispatch budget", `Quick, test_connect_dispatch_budget);
    ("jsr/rts reset the map", `Quick, test_jsr_resets_map);
    ("call-heavy jsr/rts vs oracle", `Quick, test_jsr_rts_call_heavy);
    ("trap bypasses the map", `Quick, test_trap_bypasses_map);
    ("interrupt injection", `Quick, test_interrupt_injection);
    ("mapen instruction", `Quick, test_mapen_instruction);
    ("extended handler protocol (sec 4.3)", `Quick, test_extended_handler_protocol);
    ("mfmap/mtmap roundtrip", `Quick, test_mfmap_mtmap_roundtrip);
    ("context switch roundtrip", `Quick, test_context_switch_roundtrip);
    ("slot invariant matrix", `Quick, test_slot_invariant_matrix);
    ("slot invariant, shared dispatch", `Quick, test_slot_invariant_shared_dispatch);
    ("observer samples tile the run", `Quick, test_observer_samples);
    ("observer does not perturb", `Quick, test_observer_absent_same_result);
    ("fuel exhaustion", `Quick, test_fuel_exhaustion);
    ("bad memory access", `Quick, test_bad_memory_access);
    QCheck_alcotest.to_alcotest prop_issue_width;
    QCheck_alcotest.to_alcotest prop_chain_latency;
    QCheck_alcotest.to_alcotest prop_slot_invariant;
  ]
