(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "register-connection"
    [
      ("par", T_par.suite);
      ("obs", T_obs.suite);
      ("metrics", T_metrics.suite);
      ("isa", T_isa.suite);
      ("core", T_core.suite);
      ("ir", T_ir.suite);
      ("dataflow", T_dataflow.suite);
      ("interp", T_interp.suite);
      ("opt", T_opt.suite);
      ("regalloc", T_regalloc.suite);
      ("sched", T_sched.suite);
      ("codegen", T_codegen.suite);
      ("machine", T_machine.suite);
      ("dtrace", T_dtrace.suite);
      ("check", T_check.suite);
      ("replay", T_replay.suite);
      ("memo", T_memo.suite);
      ("workloads", T_workloads.suite);
      ("harness", T_harness.suite);
      ("serve", T_serve.suite);
      ("properties", T_props.suite);
    ]
