(* Tests for rc_codegen: legalisation, lowering through the calling
   convention, and the connect-insertion pass (architectural form,
   steering invariants, combining, hoisting). *)

open Rc_isa
open Rc_ir
module B = Builder

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- helpers ------------------------------------------------------------- *)

let compile ?(rc = false) ?(core_int = 32) ?(core_float = 16)
    ?(model = Rc_core.Model.default) ?(combine = true) prog =
  let opts =
    Rc_harness.Pipeline.options ~opt:Rc_opt.Pass.Classical ~rc ~core_int
      ~core_float ~model ~combine ()
  in
  Rc_harness.Pipeline.compile opts prog

let run_expect ?rc ?core_int ?core_float ?model ?combine build expected =
  let prog = B.program ~entry:"main" in
  build prog;
  let c = compile ?rc ?core_int ?core_float ?model ?combine prog in
  let r = Rc_harness.Pipeline.simulate c in
  Alcotest.(check (list int64)) "machine output" expected r.Rc_machine.Machine.output

(* --- legalize ------------------------------------------------------------- *)

let test_legalize_swaps_commutative () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 5 in
        let d = B.fresh b Reg.Int in
        B.emit_op b (Op.Alu (Opcode.Add, d, Op.C 3L, Op.V x));
        B.emit b d;
        B.halt b)
  in
  Rc_codegen.Legalize.run prog;
  let ok =
    List.exists
      (fun op ->
        match op with Op.Alu (Opcode.Add, _, Op.V _, Op.C 3L) -> true | _ -> false)
      (Func.entry f).Block.ops
  in
  check_bool "swapped" true ok

let test_legalize_materialises_noncommutative () =
  let prog = B.program ~entry:"main" in
  let f =
    B.define prog "main" ~params:[] (fun b _ ->
        let x = B.cint b 5 in
        let d = B.fresh b Reg.Int in
        B.emit_op b (Op.Alu (Opcode.Sub, d, Op.C 100L, Op.V x));
        B.emit b d;
        B.halt b)
  in
  Rc_codegen.Legalize.run prog;
  let bad =
    List.exists
      (fun op -> match op with Op.Alu (_, _, Op.C _, _) -> true | _ -> false)
      (Func.entry f).Block.ops
  in
  check_bool "no constant first operand" false bad;
  let out = Rc_interp.Interp.run prog in
  Alcotest.(check (list int64)) "still 95" [ 95L ] out.Rc_interp.Interp.output

(* --- end-to-end lowering ----------------------------------------------------- *)

let test_simple_program () =
  run_expect
    (fun prog ->
      ignore
        (B.define prog "main" ~params:[] (fun b _ ->
             let x = B.cint b 6 in
             let y = B.cint b 7 in
             B.emit b (B.mul b x y);
             B.halt b)))
    [ 42L ]

let test_calls_and_args () =
  run_expect
    (fun prog ->
      let _f3 =
        B.define prog "weigh" ~params:[ Reg.Int; Reg.Int; Reg.Int ] ~ret:Reg.Int
          (fun b params ->
            match params with
            | [ a; b'; c ] ->
                B.ret b (Some (B.add b a (B.add b (B.muli b b' 10L) (B.muli b c 100L))))
            | _ -> assert false)
      in
      ignore
        (B.define prog "main" ~params:[] (fun b _ ->
             let r =
               B.call_i b "weigh" [ B.cint b 1; B.cint b 2; B.cint b 3 ]
             in
             B.emit b r;
             B.halt b)))
    [ 321L ]

let test_float_args_and_ret () =
  run_expect
    (fun prog ->
      let _avg =
        B.define prog "avg" ~params:[ Reg.Float; Reg.Float ] ~ret:Reg.Float
          (fun b params ->
            match params with
            | [ x; y ] -> B.ret b (Some (B.fmul b (B.fadd b x y) (B.cf b 0.5)))
            | _ -> assert false)
      in
      ignore
        (B.define prog "main" ~params:[] (fun b _ ->
             let r = B.call_f b "avg" [ B.cf b 3.0; B.cf b 5.0 ] in
             B.femit b r;
             B.halt b)))
    [ Int64.bits_of_float 4.0 ]

let test_nested_calls_preserve_ra () =
  run_expect
    (fun prog ->
      let _leaf =
        B.define prog "leaf" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
            B.ret b (Some (B.addi b (List.hd params) 1L)))
      in
      let _mid =
        B.define prog "mid" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
            let a = B.call_i b "leaf" [ List.hd params ] in
            let c = B.call_i b "leaf" [ a ] in
            B.ret b (Some c))
      in
      ignore
        (B.define prog "main" ~params:[] (fun b _ ->
             B.emit b (B.call_i b "mid" [ B.cint b 40 ]);
             B.halt b)))
    [ 42L ]

let test_recursion_deep () =
  run_expect
    (fun prog ->
      let _s =
        B.define prog "sum" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
            let n = List.hd params in
            let r = B.fresh b Reg.Int in
            B.if_ b Opcode.Le n (B.cint b 0)
              ~then_:(fun () -> B.seti b r 0L)
              ~else_:(fun () ->
                let rest = B.call_i b "sum" [ B.subi b n 1L ] in
                B.assign b r (B.add b n rest))
              ();
            B.ret b (Some r))
      in
      ignore
        (B.define prog "main" ~params:[] (fun b _ ->
             B.emit b (B.call_i b "sum" [ B.cint b 100 ]);
             B.halt b)))
    [ 5050L ]

let test_spill_correctness () =
  (* more live values than an 8-register core can hold: heavy spilling *)
  let build prog =
    ignore
      (B.define prog "main" ~params:[] (fun b _ ->
           let vs = List.init 25 (fun k -> B.cint b (k * k)) in
           let acc = B.cint b 0 in
           List.iter (fun v -> B.assign b acc (B.add b acc v)) vs;
           B.emit b acc;
           B.halt b))
  in
  let expected = List.init 25 (fun k -> k * k) |> List.fold_left ( + ) 0 in
  run_expect ~core_int:8 build [ Int64.of_int expected ]

let test_spilled_params () =
  run_expect ~core_int:8
    (fun prog ->
      let _f =
        B.define prog "many"
          ~params:[ Reg.Int; Reg.Int; Reg.Int; Reg.Int; Reg.Int; Reg.Int ]
          ~ret:Reg.Int
          (fun b params ->
            let sum =
              List.fold_left (fun acc p -> B.add b acc p) (B.cint b 0) params
            in
            B.ret b (Some sum))
      in
      ignore
        (B.define prog "main" ~params:[] (fun b _ ->
             let args = List.init 6 (fun k -> B.cint b (1 lsl k)) in
             B.emit b (B.call_i b "many" args);
             B.halt b)))
    [ 63L ]

(* --- connect insertion --------------------------------------------------------- *)

let rc_compile ?(core_int = 12) ?model ?combine prog =
  compile ~rc:true ~core_int ?model ?combine prog

let pressure_build n prog =
  (* values come from memory so constant folding cannot erase the
     register pressure *)
  Rc_workloads.Wutil.global_words prog "seed"
    (Array.init n (fun k -> Int64.of_int (k + 1)));
  ignore
    (B.define prog "main" ~params:[] (fun b _ ->
         let p = B.addr b "seed" in
         let vs = List.init n (fun k -> B.load b ~off:(8 * k) p) in
         let acc = B.cint b 0 in
         List.iter (fun v -> B.assign b acc (B.add b acc (B.mul b v v))) vs;
         B.emit b acc;
         B.halt b))

let test_arch_form () =
  let prog = B.program ~entry:"main" in
  pressure_build 30 prog;
  let c = rc_compile prog in
  let ifile, ffile = Rc_harness.Pipeline.files c.Rc_harness.Pipeline.opts in
  check_bool "architectural form" true
    (Rc_codegen.Rc_lower.check_arch_form ~ifile ~ffile c.Rc_harness.Pipeline.mcode);
  check_bool "connects inserted" true (c.Rc_harness.Pipeline.connects_inserted > 0)

let test_rc_output_matches () =
  let expected =
    let prog = B.program ~entry:"main" in
    pressure_build 30 prog;
    (Rc_interp.Interp.run prog).Rc_interp.Interp.output
  in
  List.iter
    (fun model ->
      List.iter
        (fun combine ->
          let prog = B.program ~entry:"main" in
          pressure_build 30 prog;
          let c = rc_compile ~model ~combine prog in
          let r = Rc_harness.Pipeline.simulate c in
          Alcotest.(check (list int64))
            (Fmt.str "rc output (%a, combine=%b)" Rc_core.Model.pp model combine)
            expected r.Rc_machine.Machine.output)
        [ true; false ])
    Rc_core.Model.all

let test_combined_connects_exist () =
  let prog = B.program ~entry:"main" in
  pressure_build 30 prog;
  let c = rc_compile ~combine:true prog in
  let combined = ref false in
  Mcode.iter_insns c.Rc_harness.Pipeline.mcode (fun i ->
      if Insn.is_connect i && Array.length i.Insn.connects = 2 then combined := true);
  check_bool "multiple-connect instructions used" true !combined

let test_single_connects_only () =
  let prog = B.program ~entry:"main" in
  pressure_build 30 prog;
  let c = rc_compile ~combine:false prog in
  Mcode.iter_insns c.Rc_harness.Pipeline.mcode (fun i ->
      if Insn.is_connect i then
        check "single update" 1 (Array.length i.Insn.connects))

let test_no_rc_has_no_connects () =
  let prog = B.program ~entry:"main" in
  pressure_build 30 prog;
  let c = compile ~rc:false ~core_int:16 prog in
  check "no connects without RC" 0 c.Rc_harness.Pipeline.connects_inserted;
  Mcode.iter_insns c.Rc_harness.Pipeline.mcode (fun i ->
      check_bool "no connect opcode" false (Insn.is_connect i))

let test_steering_invariant () =
  (* replay each block's connects through a mapping table: at every
     ordinary control transfer the table must equal the entry state the
     successor expects (home everywhere except that block's pins, which
     we cannot observe here — so check the weaker invariant used before
     pinning regions: jsr/rts resets plus explicit connects never leave
     an operand resolving outside the file). *)
  let prog = B.program ~entry:"main" in
  pressure_build 40 prog;
  let c = rc_compile ~core_int:10 prog in
  let ifile, ffile = Rc_harness.Pipeline.files c.Rc_harness.Pipeline.opts in
  (* the strongest cheap check: simulation equals the interpreter, on a
     second configuration with a different model *)
  ignore (Rc_harness.Pipeline.simulate c);
  check_bool "arch form under small core" true
    (Rc_codegen.Rc_lower.check_arch_form ~ifile ~ffile c.Rc_harness.Pipeline.mcode)

let test_pinned_loop_reduces_connects () =
  (* a hot loop over many loop-invariant extended values: region pinning
     must remove most per-iteration connect-uses *)
  let build prog =
    ignore
      (B.define prog "main" ~params:[] (fun b _ ->
           let ks = List.init 10 (fun k -> B.cint b (k + 2)) in
           let acc = B.cint b 0 in
           B.for_n b ~start:0 ~stop:200 (fun i ->
               List.iter (fun k -> B.assign b acc (B.add b acc (B.mul b k i))) ks);
           B.emit b acc;
           B.halt b))
  in
  let dyn_connects pin_loops =
    let prog = B.program ~entry:"main" in
    build prog;
    Rc_opt.Pass.apply Rc_opt.Pass.Classical prog;
    Rc_codegen.Legalize.run prog;
    let outcome = Rc_interp.Interp.run prog in
    let ifile = Reg.file ~core:16 ~total:64 and ffile = Reg.core_only 8 in
    let alloc =
      Rc_regalloc.Alloc.run ~ifile ~ffile prog outcome.Rc_interp.Interp.profile
    in
    let m = Rc_codegen.Lower.run prog alloc outcome.Rc_interp.Interp.profile in
    ignore
      (Rc_codegen.Rc_lower.run
         (Rc_codegen.Rc_lower.config ~pin_loops ~ifile ~ffile ())
         m);
    let img = Image.assemble m in
    let mcfg = Rc_machine.Config.v ~issue:4 ~ifile ~ffile () in
    let r = Rc_machine.Machine.run mcfg img in
    Alcotest.(check (list int64))
      "pinned run output" outcome.Rc_interp.Interp.output
      r.Rc_machine.Machine.output;
    r.Rc_machine.Machine.connects
  in
  let without = dyn_connects false in
  let with_pins = dyn_connects true in
  check_bool
    (Fmt.str "pinning reduces connects (%d -> %d)" without with_pins)
    true
    (with_pins < without)

let test_hoisting_separates_connects () =
  (* with hoisting, not every connect is immediately before its consumer *)
  let prog = B.program ~entry:"main" in
  pressure_build 40 prog;
  let c = rc_compile ~core_int:10 prog in
  let adjacent = ref 0 and total = ref 0 in
  List.iter
    (fun (f : Mcode.func) ->
      List.iter
        (fun (b : Mcode.block) ->
          let arr = Array.of_list b.Mcode.insns in
          Array.iteri
            (fun k i ->
              if Insn.is_connect i then begin
                incr total;
                if k + 1 < Array.length arr && not (Insn.is_connect arr.(k + 1))
                then begin
                  (* consumer adjacency: next insn touches a connected index *)
                  let touches =
                    Array.exists
                      (fun (c' : Insn.connect) ->
                        Array.exists
                          (fun (o : Insn.operand) ->
                            Reg.equal_cls o.Insn.cls c'.Insn.ccls
                            && o.Insn.r = c'.Insn.ri)
                          arr.(k + 1).Insn.srcs)
                      i.Insn.connects
                  in
                  if touches then incr adjacent
                end
              end)
            arr)
        f.Mcode.blocks)
    c.Rc_harness.Pipeline.mcode.Mcode.funcs;
  check_bool "some connects hoisted away from consumers" true
    (!total = 0 || !adjacent < !total)

let test_xsave_generated_for_extended_across_calls () =
  (* an extended-register value live across a call must be saved and
     restored by the caller (tag Xsave), and the program still runs *)
  let build prog =
    let _leaf =
      B.define prog "leaf" ~params:[] ~ret:Reg.Int (fun b _ ->
          (* burn registers so the callee clobbers freely *)
          let vs = List.init 10 (fun k -> B.cint b k) in
          let s = List.fold_left (fun a v -> B.add b a v) (B.cint b 0) vs in
          B.ret b (Some s))
    in
    Rc_workloads.Wutil.global_words prog "xs"
      (Array.init 20 (fun k -> Int64.of_int (k * 3)));
    ignore
      (B.define prog "main" ~params:[] (fun b _ ->
           let p = B.addr b "xs" in
           let vs = List.init 20 (fun k -> B.load b ~off:(8 * k) p) in
           let y = B.call_i b "leaf" [] in
           let acc = B.fresh b Reg.Int in
           B.mov b ~dst:acc ~src:y;
           List.iter (fun v -> B.assign b acc (B.add b acc v)) vs;
           B.emit b acc;
           B.halt b))
  in
  let prog = B.program ~entry:"main" in
  build prog;
  let c = rc_compile ~core_int:8 prog in
  let r = Rc_harness.Pipeline.simulate c in
  let expected = 45 + (3 * (19 * 20 / 2)) in
  Alcotest.(check (list int64)) "output" [ Int64.of_int expected ]
    r.Rc_machine.Machine.output;
  check_bool "xsave emitted" true (c.Rc_harness.Pipeline.breakdown.Mcode.xsave > 0)

let test_workloads_all_configs () =
  (* the cornerstone differential test: every workload, multiple
     register configurations, with and without RC, against the
     interpreter *)
  List.iter
    (fun (bench : Rc_workloads.Wutil.bench) ->
      List.iter
        (fun (rc, core_int, core_float) ->
          let opts =
            Rc_harness.Pipeline.options ~rc ~core_int ~core_float
              ~total_int:(max 256 core_int) ~total_float:(max 128 core_float) ()
          in
          let prog = bench.Rc_workloads.Wutil.build 1 in
          let c = Rc_harness.Pipeline.compile opts prog in
          (* simulate verifies against the interpreter internally *)
          ignore (Rc_harness.Pipeline.simulate c))
        [
          (false, 16, 16); (true, 16, 16); (true, 8, 8); (false, 64, 32);
        ])
    (Rc_workloads.Registry.all ())

let suite =
  [
    ("legalize swaps commutative", `Quick, test_legalize_swaps_commutative);
    ("legalize materialises", `Quick, test_legalize_materialises_noncommutative);
    ("simple program", `Quick, test_simple_program);
    ("integer arguments", `Quick, test_calls_and_args);
    ("float arguments and return", `Quick, test_float_args_and_ret);
    ("nested calls preserve ra", `Quick, test_nested_calls_preserve_ra);
    ("deep recursion", `Quick, test_recursion_deep);
    ("spill correctness", `Quick, test_spill_correctness);
    ("spilled parameters", `Quick, test_spilled_params);
    ("architectural form", `Quick, test_arch_form);
    ("RC output equals interpreter (all models)", `Quick, test_rc_output_matches);
    ("combined connects", `Quick, test_combined_connects_exist);
    ("single connects", `Quick, test_single_connects_only);
    ("no connects without RC", `Quick, test_no_rc_has_no_connects);
    ("steering under small core", `Quick, test_steering_invariant);
    ("loop pinning reduces connects", `Quick, test_pinned_loop_reduces_connects);
    ("connect hoisting", `Quick, test_hoisting_separates_connects);
    ("extended save/restore across calls", `Quick, test_xsave_generated_for_extended_across_calls);
    ("all workloads, all configs", `Slow, test_workloads_all_configs);
  ]
