(** IR operations and block terminators: three-address code over virtual
    registers, close enough to the target ISA that lowering is a
    per-operation translation. *)

open Rc_isa

(** Integer ALU operands: a virtual register or a foldable constant. *)
type value = V of Vreg.t | C of int64

type t =
  | Li of Vreg.t * int64
  | Fli of Vreg.t * float
  | Mov of Vreg.t * Vreg.t  (** same-class copy *)
  | Alu of Opcode.alu * Vreg.t * value * value  (** integer dst/operands *)
  | Fpu of Opcode.fpu * Vreg.t * Vreg.t * Vreg.t option
      (** [None] second source for the unary Fneg/Fabs *)
  | Itof of Vreg.t * Vreg.t
  | Ftoi of Vreg.t * Vreg.t
  | Fcmp of Opcode.cond * Vreg.t * Vreg.t * Vreg.t  (** int dst, float srcs *)
  | Ld of Opcode.width * Vreg.t * Vreg.t * int  (** dst, base, offset *)
  | St of Opcode.width * Vreg.t * Vreg.t * int  (** value, base, offset *)
  | Fld of Vreg.t * Vreg.t * int
  | Fst of Vreg.t * Vreg.t * int
  | Addr of Vreg.t * string  (** address of a named global *)
  | Call of { dst : Vreg.t option; callee : string; args : Vreg.t list }
  | Emit of Vreg.t  (** observable output, integer *)
  | Femit of Vreg.t  (** observable output, float *)

type label = int

type term =
  | Ret of Vreg.t option
  | Br of Opcode.cond * Vreg.t * Vreg.t * label * label
      (** condition over two integer registers; taken target, fallthrough
          target *)
  | Jmp of label
  | Halt  (** terminates the whole program (entry function only) *)

let value_uses = function V v -> [ v ] | C _ -> []

(** Virtual registers read by an operation. *)
let uses = function
  | Li _ | Fli _ | Addr _ -> []
  | Mov (_, s) | Itof (_, s) | Ftoi (_, s) -> [ s ]
  | Alu (_, _, a, b) -> value_uses a @ value_uses b
  | Fpu (_, _, s1, s2) -> s1 :: Option.to_list s2
  | Fcmp (_, _, s1, s2) -> [ s1; s2 ]
  | Ld (_, _, base, _) | Fld (_, base, _) -> [ base ]
  | St (_, v, base, _) | Fst (v, base, _) -> [ v; base ]
  | Call { args; _ } -> args
  | Emit v | Femit v -> [ v ]

(** Virtual register written by an operation, if any. *)
let def = function
  | Li (d, _)
  | Fli (d, _)
  | Mov (d, _)
  | Alu (_, d, _, _)
  | Fpu (_, d, _, _)
  | Itof (d, _)
  | Ftoi (d, _)
  | Fcmp (_, d, _, _)
  | Ld (_, d, _, _)
  | Fld (d, _, _)
  | Addr (d, _) ->
      Some d
  | St _ | Fst _ | Emit _ | Femit _ -> None
  | Call { dst; _ } -> dst

(** Rewrite every virtual-register {e use} (sources only). *)
let map_uses f op =
  let fv = function V v -> V (f v) | C _ as c -> c in
  match op with
  | Li _ | Fli _ | Addr _ -> op
  | Mov (d, s) -> Mov (d, f s)
  | Alu (a, d, x, y) -> Alu (a, d, fv x, fv y)
  | Fpu (o, d, s1, s2) -> Fpu (o, d, f s1, Option.map f s2)
  | Itof (d, s) -> Itof (d, f s)
  | Ftoi (d, s) -> Ftoi (d, f s)
  | Fcmp (c, d, s1, s2) -> Fcmp (c, d, f s1, f s2)
  | Ld (w, d, b, o) -> Ld (w, d, f b, o)
  | St (w, v, b, o) -> St (w, f v, f b, o)
  | Fld (d, b, o) -> Fld (d, f b, o)
  | Fst (v, b, o) -> Fst (f v, f b, o)
  | Call c -> Call { c with args = List.map f c.args }
  | Emit v -> Emit (f v)
  | Femit v -> Femit (f v)

(** Rewrite the defined register. *)
let map_def f op =
  match op with
  | Li (d, i) -> Li (f d, i)
  | Fli (d, x) -> Fli (f d, x)
  | Mov (d, s) -> Mov (f d, s)
  | Alu (a, d, x, y) -> Alu (a, f d, x, y)
  | Fpu (o, d, s1, s2) -> Fpu (o, f d, s1, s2)
  | Itof (d, s) -> Itof (f d, s)
  | Ftoi (d, s) -> Ftoi (f d, s)
  | Fcmp (c, d, s1, s2) -> Fcmp (c, f d, s1, s2)
  | Ld (w, d, b, o) -> Ld (w, f d, b, o)
  | Fld (d, b, o) -> Fld (f d, b, o)
  | Addr (d, g) -> Addr (f d, g)
  | Call c -> Call { c with dst = Option.map f c.dst }
  | St _ | Fst _ | Emit _ | Femit _ -> op

let is_call = function Call _ -> true | _ -> false
let has_side_effect = function
  | St _ | Fst _ | Call _ | Emit _ | Femit _ -> true
  | _ -> false

let term_uses = function
  | Ret (Some v) -> [ v ]
  | Ret None | Halt | Jmp _ -> []
  | Br (_, a, b, _, _) -> [ a; b ]

let term_map_uses f = function
  | Ret (Some v) -> Ret (Some (f v))
  | (Ret None | Halt | Jmp _) as t -> t
  | Br (c, a, b, t1, t2) -> Br (c, f a, f b, t1, t2)

let successors = function
  | Ret _ | Halt -> []
  | Jmp l -> [ l ]
  | Br (_, _, _, t, e) -> if t = e then [ t ] else [ t; e ]

let pp_value ppf = function
  | V v -> Vreg.pp ppf v
  | C c -> Fmt.int64 ppf c

let pp ppf = function
  | Li (d, i) -> Fmt.pf ppf "%a = li %Ld" Vreg.pp d i
  | Fli (d, x) -> Fmt.pf ppf "%a = fli %g" Vreg.pp d x
  | Mov (d, s) -> Fmt.pf ppf "%a = %a" Vreg.pp d Vreg.pp s
  | Alu (a, d, x, y) ->
      Fmt.pf ppf "%a = %s %a, %a" Vreg.pp d (Opcode.string_of_alu a) pp_value x
        pp_value y
  | Fpu (o, d, s1, None) ->
      Fmt.pf ppf "%a = %s %a" Vreg.pp d (Opcode.string_of_fpu o) Vreg.pp s1
  | Fpu (o, d, s1, Some s2) ->
      Fmt.pf ppf "%a = %s %a, %a" Vreg.pp d (Opcode.string_of_fpu o) Vreg.pp s1
        Vreg.pp s2
  | Itof (d, s) -> Fmt.pf ppf "%a = itof %a" Vreg.pp d Vreg.pp s
  | Ftoi (d, s) -> Fmt.pf ppf "%a = ftoi %a" Vreg.pp d Vreg.pp s
  | Fcmp (c, d, s1, s2) ->
      Fmt.pf ppf "%a = fcmp.%s %a, %a" Vreg.pp d (Opcode.string_of_cond c)
        Vreg.pp s1 Vreg.pp s2
  | Ld (w, d, b, o) ->
      Fmt.pf ppf "%a = %s [%a + %d]" Vreg.pp d
        (match w with Opcode.W8 -> "ld" | Opcode.W1 -> "lb")
        Vreg.pp b o
  | St (w, v, b, o) ->
      Fmt.pf ppf "%s [%a + %d] = %a"
        (match w with Opcode.W8 -> "st" | Opcode.W1 -> "sb")
        Vreg.pp b o Vreg.pp v
  | Fld (d, b, o) -> Fmt.pf ppf "%a = fld [%a + %d]" Vreg.pp d Vreg.pp b o
  | Fst (v, b, o) -> Fmt.pf ppf "fst [%a + %d] = %a" Vreg.pp b o Vreg.pp v
  | Addr (d, g) -> Fmt.pf ppf "%a = addr %s" Vreg.pp d g
  | Call { dst; callee; args } ->
      Fmt.pf ppf "%a%s(%a)"
        Fmt.(option (Vreg.pp ++ any " = "))
        dst callee
        Fmt.(list ~sep:comma Vreg.pp)
        args
  | Emit v -> Fmt.pf ppf "emit %a" Vreg.pp v
  | Femit v -> Fmt.pf ppf "femit %a" Vreg.pp v

let pp_term ppf = function
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some v) -> Fmt.pf ppf "ret %a" Vreg.pp v
  | Br (c, a, b, t, e) ->
      Fmt.pf ppf "b%s %a, %a -> L%d | L%d" (Opcode.string_of_cond c) Vreg.pp a
        Vreg.pp b t e
  | Jmp l -> Fmt.pf ppf "jmp L%d" l
  | Halt -> Fmt.string ppf "halt"
