(** Virtual registers: unbounded, classed, allocated per function. *)

open Rc_isa

type t = { id : int; cls : Reg.cls }

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id

let pp ppf v =
  match v.cls with
  | Reg.Int -> Fmt.pf ppf "v%d" v.id
  | Reg.Float -> Fmt.pf ppf "w%d" v.id

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
