(** IR functions: parameters, a CFG of basic blocks in layout order (the
    first block is the entry), and fresh-name supplies. *)

open Rc_isa

type t = {
  name : string;
  params : Vreg.t list;
  ret : Reg.cls option;
  mutable blocks : Block.t list;  (** layout order; head is the entry *)
  mutable next_vreg : int;
  mutable next_block : int;
}

(** Creates the function with parameter vregs allocated from the given
    classes; no blocks yet. *)
val create : name:string -> params:Reg.cls list -> ret:Reg.cls option -> t

val fresh_vreg : t -> Reg.cls -> Vreg.t

(** Create a block without placing it in the layout. *)
val fresh_block : t -> Block.t

val append_block : t -> Block.t -> unit

(** @raise Invalid_argument on an empty function. *)
val entry : t -> Block.t

(** @raise Invalid_argument when the label is unknown. *)
val find_block : t -> Op.label -> Block.t

val block_ids : t -> Op.label list

(** Map from block id to the ids of its predecessors. *)
val predecessors : t -> Op.label -> Op.label list

val iter_ops : (Op.t -> unit) -> t -> unit

(** Operation count, terminators included. *)
val op_count : t -> int

(** All virtual registers mentioned anywhere in the function. *)
val all_vregs : t -> Vreg.Set.t

val pp : Format.formatter -> t -> unit
