(** IR operations and block terminators: three-address code over virtual
    registers, close enough to the target ISA that lowering is a
    per-operation translation. *)

open Rc_isa

(** Integer ALU operands: a virtual register or a foldable constant. *)
type value = V of Vreg.t | C of int64

type t =
  | Li of Vreg.t * int64
  | Fli of Vreg.t * float
  | Mov of Vreg.t * Vreg.t  (** same-class copy *)
  | Alu of Opcode.alu * Vreg.t * value * value  (** integer dst/operands *)
  | Fpu of Opcode.fpu * Vreg.t * Vreg.t * Vreg.t option
      (** [None] second source for the unary Fneg/Fabs *)
  | Itof of Vreg.t * Vreg.t
  | Ftoi of Vreg.t * Vreg.t
  | Fcmp of Opcode.cond * Vreg.t * Vreg.t * Vreg.t  (** int dst, float srcs *)
  | Ld of Opcode.width * Vreg.t * Vreg.t * int  (** dst, base, offset *)
  | St of Opcode.width * Vreg.t * Vreg.t * int  (** value, base, offset *)
  | Fld of Vreg.t * Vreg.t * int
  | Fst of Vreg.t * Vreg.t * int
  | Addr of Vreg.t * string  (** address of a named global *)
  | Call of { dst : Vreg.t option; callee : string; args : Vreg.t list }
  | Emit of Vreg.t  (** observable output, integer *)
  | Femit of Vreg.t  (** observable output, float *)

type label = int

type term =
  | Ret of Vreg.t option
  | Br of Opcode.cond * Vreg.t * Vreg.t * label * label
      (** condition over two integer registers; taken target,
          fallthrough target *)
  | Jmp of label
  | Halt  (** terminates the whole program (entry function only) *)

val value_uses : value -> Vreg.t list

(** Virtual registers read by an operation. *)
val uses : t -> Vreg.t list

(** Virtual register written by an operation, if any. *)
val def : t -> Vreg.t option

(** Rewrite every virtual-register {e use} (sources only). *)
val map_uses : (Vreg.t -> Vreg.t) -> t -> t

(** Rewrite the defined register. *)
val map_def : (Vreg.t -> Vreg.t) -> t -> t

val is_call : t -> bool

(** Stores, calls and emits must never be removed or duplicated. *)
val has_side_effect : t -> bool

val term_uses : term -> Vreg.t list
val term_map_uses : (Vreg.t -> Vreg.t) -> term -> term

(** Successor labels, deduplicated. *)
val successors : term -> label list

val pp_value : Format.formatter -> value -> unit
val pp : Format.formatter -> t -> unit
val pp_term : Format.formatter -> term -> unit
