(** IR functions: parameters, a CFG of basic blocks in layout order (the
    first block is the entry), and fresh-name supplies. *)

open Rc_isa

type t = {
  name : string;
  params : Vreg.t list;
  ret : Reg.cls option;
  mutable blocks : Block.t list;  (** layout order; head is the entry *)
  mutable next_vreg : int;
  mutable next_block : int;
}

let create ~name ~params ~ret =
  let next_vreg = ref 0 in
  let params =
    List.map
      (fun cls ->
        let v = { Vreg.id = !next_vreg; cls } in
        incr next_vreg;
        v)
      params
  in
  {
    name;
    params;
    ret;
    blocks = [];
    next_vreg = !next_vreg;
    next_block = 0;
  }

let fresh_vreg t cls =
  let v = { Vreg.id = t.next_vreg; cls } in
  t.next_vreg <- t.next_vreg + 1;
  v

(** Create a block without placing it in the layout. *)
let fresh_block t =
  let b = Block.create t.next_block in
  t.next_block <- t.next_block + 1;
  b

let append_block t b = t.blocks <- t.blocks @ [ b ]

let entry t =
  match t.blocks with
  | [] -> invalid_arg ("Func.entry: empty function " ^ t.name)
  | b :: _ -> b

let find_block t id =
  try List.find (fun (b : Block.t) -> b.Block.id = id) t.blocks
  with Not_found -> invalid_arg (Fmt.str "Func.find_block: L%d in %s" id t.name)

let block_ids t = List.map (fun (b : Block.t) -> b.Block.id) t.blocks

(** Map from block id to the ids of its predecessors. *)
let predecessors t =
  let preds = Hashtbl.create 16 in
  List.iter (fun (b : Block.t) -> Hashtbl.replace preds b.Block.id []) t.blocks;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (b.Block.id :: cur))
        (Block.successors b))
    t.blocks;
  fun id -> try Hashtbl.find preds id with Not_found -> []

let iter_ops f t = List.iter (Block.iter_ops f) t.blocks

let op_count t =
  let n = ref 0 in
  iter_ops (fun _ -> incr n) t;
  !n + List.length t.blocks (* terminators *)

(** All virtual registers mentioned anywhere in the function. *)
let all_vregs t =
  let set = ref Vreg.Set.empty in
  let add v = set := Vreg.Set.add v !set in
  List.iter add t.params;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun op ->
          List.iter add (Op.uses op);
          Option.iter add (Op.def op))
        b.Block.ops;
      List.iter add (Op.term_uses b.Block.term))
    t.blocks;
  !set

let pp ppf t =
  Fmt.pf ppf "func %s(%a):@." t.name Fmt.(list ~sep:comma Vreg.pp) t.params;
  List.iter (Block.pp ppf) t.blocks
