(** Virtual registers: unbounded, classed, allocated per function. *)

open Rc_isa

type t = { id : int; cls : Reg.cls }

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
