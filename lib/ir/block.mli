(** Basic blocks: a label, straight-line operations, and one
    terminator. *)

type t = { id : Op.label; mutable ops : Op.t list; mutable term : Op.term }

(** A fresh block with no operations and a [Halt] terminator. *)
val create : Op.label -> t

val successors : t -> Op.label list
val iter_ops : (Op.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
