(** A structured construction DSL for IR programs.  Workloads and
    examples are written against this interface; it manages block
    creation, layout and terminators so user code reads like structured
    source. *)

open Rc_isa

type t = {
  prog : Prog.t;
  func : Func.t;
  mutable cur : Block.t;
  mutable terminated : bool;
}

let program ~entry = Prog.create ~entry

let global prog name ~bytes ?init () =
  Prog.add_global prog (Mcode.global ~name ~bytes ?init ())

(* --- function definition ------------------------------------------- *)

let define prog name ~params ?ret body =
  let func = Func.create ~name ~params ~ret in
  let entry = Func.fresh_block func in
  Func.append_block func entry;
  let b = { prog; func; cur = entry; terminated = false } in
  body b func.Func.params;
  if not b.terminated then begin
    b.cur.Block.term <-
      (if name = prog.Prog.entry then Op.Halt else Op.Ret None);
    b.terminated <- true
  end;
  Prog.add_func prog func;
  func

(* --- raw emission --------------------------------------------------- *)

let emit_op b op =
  if b.terminated then invalid_arg "Builder: emitting into a terminated block";
  b.cur.Block.ops <- b.cur.Block.ops @ [ op ]

let fresh b cls = Func.fresh_vreg b.func cls
let new_block b = Func.fresh_block b.func

let set_term b term =
  if b.terminated then invalid_arg "Builder: block already terminated";
  b.cur.Block.term <- term;
  b.terminated <- true

(** Append [blk] to the layout and make it current.  If the previous
    block was not terminated, it falls through with a jump. *)
let place b blk =
  if not b.terminated then set_term b (Op.Jmp blk.Block.id);
  Func.append_block b.func blk;
  b.cur <- blk;
  b.terminated <- false

let goto b blk = set_term b (Op.Jmp blk.Block.id)

let branch b cond x y ~taken ~fallthrough =
  set_term b (Op.Br (cond, x, y, taken.Block.id, fallthrough.Block.id))

(* --- values ---------------------------------------------------------- *)

let ci b n =
  let d = fresh b Reg.Int in
  emit_op b (Op.Li (d, n));
  d

let cint b n = ci b (Int64.of_int n)

let cf b x =
  let d = fresh b Reg.Float in
  emit_op b (Op.Fli (d, x));
  d

let alu2 b op x y =
  let d = fresh b Reg.Int in
  emit_op b (Op.Alu (op, d, Op.V x, Op.V y));
  d

let alui b op x n =
  let d = fresh b Reg.Int in
  emit_op b (Op.Alu (op, d, Op.V x, Op.C n));
  d

let add b x y = alu2 b Opcode.Add x y
let sub b x y = alu2 b Opcode.Sub x y
let mul b x y = alu2 b Opcode.Mul x y
let div_ b x y = alu2 b Opcode.Div x y
let rem_ b x y = alu2 b Opcode.Rem x y
let and_ b x y = alu2 b Opcode.And x y
let or_ b x y = alu2 b Opcode.Or x y
let xor_ b x y = alu2 b Opcode.Xor x y
let sll b x y = alu2 b Opcode.Sll x y
let srl b x y = alu2 b Opcode.Srl x y
let sra b x y = alu2 b Opcode.Sra x y
let slt b x y = alu2 b Opcode.Slt x y
let seq b x y = alu2 b Opcode.Seq x y
let addi b x n = alui b Opcode.Add x n
let subi b x n = alui b Opcode.Sub x n
let muli b x n = alui b Opcode.Mul x n
let divi b x n = alui b Opcode.Div x n
let remi b x n = alui b Opcode.Rem x n
let andi b x n = alui b Opcode.And x n
let ori b x n = alui b Opcode.Or x n
let xori b x n = alui b Opcode.Xor x n
let slli b x n = alui b Opcode.Sll x n
let srli b x n = alui b Opcode.Srl x n
let srai b x n = alui b Opcode.Sra x n
let slti b x n = alui b Opcode.Slt x n
let seqi b x n = alui b Opcode.Seq x n

let fpu2 b op x y =
  let d = fresh b Reg.Float in
  emit_op b (Op.Fpu (op, d, x, Some y));
  d

let fadd b x y = fpu2 b Opcode.Fadd x y
let fsub b x y = fpu2 b Opcode.Fsub x y
let fmul b x y = fpu2 b Opcode.Fmul x y
let fdiv_ b x y = fpu2 b Opcode.Fdiv x y

let fneg b x =
  let d = fresh b Reg.Float in
  emit_op b (Op.Fpu (Opcode.Fneg, d, x, None));
  d

let fabs_ b x =
  let d = fresh b Reg.Float in
  emit_op b (Op.Fpu (Opcode.Fabs, d, x, None));
  d

let itof b x =
  let d = fresh b Reg.Float in
  emit_op b (Op.Itof (d, x));
  d

let ftoi b x =
  let d = fresh b Reg.Int in
  emit_op b (Op.Ftoi (d, x));
  d

let fcmp b c x y =
  let d = fresh b Reg.Int in
  emit_op b (Op.Fcmp (c, d, x, y));
  d

(* --- assignment into existing registers ------------------------------ *)

let mov b ~dst ~src = emit_op b (Op.Mov (dst, src))
let seti b dst n = emit_op b (Op.Li (dst, n))
let setf b dst x = emit_op b (Op.Fli (dst, x))

(** [assign b dst op_result]: copy a computed value into a loop-carried
    register. *)
let assign b dst src = mov b ~dst ~src

(* --- memory ----------------------------------------------------------- *)

let addr b name =
  let d = fresh b Reg.Int in
  emit_op b (Op.Addr (d, name));
  d

let load b ?(off = 0) base =
  let d = fresh b Reg.Int in
  emit_op b (Op.Ld (Opcode.W8, d, base, off));
  d

let loadb b ?(off = 0) base =
  let d = fresh b Reg.Int in
  emit_op b (Op.Ld (Opcode.W1, d, base, off));
  d

let store b ?(off = 0) ~src base = emit_op b (Op.St (Opcode.W8, src, base, off))
let storeb b ?(off = 0) ~src base = emit_op b (Op.St (Opcode.W1, src, base, off))

let fload b ?(off = 0) base =
  let d = fresh b Reg.Float in
  emit_op b (Op.Fld (d, base, off));
  d

let fstore b ?(off = 0) ~src base = emit_op b (Op.Fst (src, base, off))

(** Address of the [idx]-th 8-byte element of [base]. *)
let elem8 b base idx = add b base (slli b idx 3L)

(** Address of the [idx]-th byte of [base]. *)
let elem1 b base idx = add b base idx

(* --- calls and output -------------------------------------------------- *)

let call b callee args = emit_op b (Op.Call { dst = None; callee; args })

let call_i b callee args =
  let d = fresh b Reg.Int in
  emit_op b (Op.Call { dst = Some d; callee; args });
  d

let call_f b callee args =
  let d = fresh b Reg.Float in
  emit_op b (Op.Call { dst = Some d; callee; args });
  d

let emit b v = emit_op b (Op.Emit v)
let femit b v = emit_op b (Op.Femit v)

(* --- structured control flow ------------------------------------------ *)

let ret b v = set_term b (Op.Ret v)
let halt b = set_term b Op.Halt

let if_ b cond x y ~then_ ?else_ () =
  let then_blk = new_block b in
  let join = new_block b in
  let else_blk = match else_ with None -> join | Some _ -> new_block b in
  branch b cond x y ~taken:then_blk ~fallthrough:else_blk;
  place b then_blk;
  then_ ();
  if not b.terminated then goto b join;
  b.terminated <- true;
  (match else_ with
  | None -> ()
  | Some f ->
      b.terminated <- true;
      Func.append_block b.func else_blk;
      b.cur <- else_blk;
      b.terminated <- false;
      f ();
      if not b.terminated then goto b join);
  Func.append_block b.func join;
  b.cur <- join;
  b.terminated <- false

(** [while_ b ~cond ~body]: [cond] emits the test into the loop header
    and returns the branch condition; the loop runs while it holds. *)
let while_ b ~cond ~body =
  let header = new_block b in
  let body_blk = new_block b in
  let exit_blk = new_block b in
  goto b header;
  Func.append_block b.func header;
  b.cur <- header;
  b.terminated <- false;
  let c, x, y = cond () in
  branch b c x y ~taken:body_blk ~fallthrough:exit_blk;
  Func.append_block b.func body_blk;
  b.cur <- body_blk;
  b.terminated <- false;
  body ();
  if not b.terminated then goto b header;
  Func.append_block b.func exit_blk;
  b.cur <- exit_blk;
  b.terminated <- false

(** [for_ b ~start ~stop body]: iterates [i] from [start] while
    [i < stop] (or [i > stop] for negative [step]), stepping by [step]
    (default 1).  [start] and [stop] may be constants or registers. *)
let for_ b ?(step = 1L) ~start ~stop body =
  let i = fresh b Reg.Int in
  (match start with
  | Op.C n -> seti b i n
  | Op.V v -> mov b ~dst:i ~src:v);
  let stop_v =
    match stop with Op.C n -> ci b n | Op.V v -> v
  in
  let c = if Int64.compare step 0L > 0 then Opcode.Lt else Opcode.Gt in
  while_ b
    ~cond:(fun () -> (c, i, stop_v))
    ~body:(fun () ->
      body i;
      let i' = alui b Opcode.Add i step in
      mov b ~dst:i ~src:i')

(** Simple integer-constant bounds version of {!for_}. *)
let for_n b ?step ~start ~stop body =
  for_ b ?step ~start:(Op.C (Int64.of_int start)) ~stop:(Op.C (Int64.of_int stop))
    body
