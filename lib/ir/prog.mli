(** Whole IR programs: functions plus static data.  Static data reuses
    the machine-level {!Rc_isa.Mcode.global} description so the IR
    interpreter and the simulator lay memory out identically. *)

open Rc_isa

type t = {
  entry : string;
  mutable funcs : Func.t list;
  mutable globals : Mcode.global list;
}

val create : entry:string -> t
val add_func : t -> Func.t -> unit

(** @raise Invalid_argument on a duplicate global name. *)
val add_global : t -> Mcode.global -> unit

(** @raise Invalid_argument when the name is unknown. *)
val find_func : t -> string -> Func.t

val entry_func : t -> Func.t
val op_count : t -> int

(** Deep copy, so destructive optimisation passes can run on a copy. *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
