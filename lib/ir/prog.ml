(** Whole IR programs: functions plus static data.  Static data reuses
    the machine-level {!Rc_isa.Mcode.global} description so the IR
    interpreter and the simulator lay memory out identically. *)

open Rc_isa

type t = {
  entry : string;
  mutable funcs : Func.t list;
  mutable globals : Mcode.global list;
}

let create ~entry = { entry; funcs = []; globals = [] }

let add_func t f = t.funcs <- t.funcs @ [ f ]

let add_global t g =
  if List.exists (fun (x : Mcode.global) -> x.Mcode.gname = g.Mcode.gname) t.globals
  then invalid_arg ("Prog.add_global: duplicate " ^ g.Mcode.gname);
  t.globals <- t.globals @ [ g ]

let find_func t name =
  try List.find (fun (f : Func.t) -> f.Func.name = name) t.funcs
  with Not_found -> invalid_arg ("Prog.find_func: " ^ name)

let entry_func t = find_func t t.entry

let op_count t = List.fold_left (fun n f -> n + Func.op_count f) 0 t.funcs

(** Deep copy, so destructive optimisation passes can run on a copy. *)
let copy t =
  {
    t with
    funcs =
      List.map
        (fun (f : Func.t) ->
          {
            f with
            Func.blocks =
              List.map
                (fun (b : Block.t) -> { b with Block.ops = b.Block.ops })
                f.Func.blocks;
          })
        t.funcs;
  }

let pp ppf t =
  List.iter (fun g ->
      Fmt.pf ppf "global %s[%d]@." g.Mcode.gname g.Mcode.bytes)
    t.globals;
  List.iter (Func.pp ppf) t.funcs
