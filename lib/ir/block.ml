(** Basic blocks: a label, straight-line operations, and one
    terminator. *)

type t = { id : Op.label; mutable ops : Op.t list; mutable term : Op.term }

let create id = { id; ops = []; term = Op.Halt }
let successors b = Op.successors b.term

let iter_ops f b = List.iter f b.ops

let pp ppf b =
  Fmt.pf ppf "L%d:@." b.id;
  List.iter (fun op -> Fmt.pf ppf "  %a@." Op.pp op) b.ops;
  Fmt.pf ppf "  %a@." Op.pp_term b.term
