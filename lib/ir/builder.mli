(** A structured construction DSL for IR programs.  Workloads and
    examples are written against this interface; it manages block
    creation, layout and terminators so user code reads like structured
    source.

    Typical shape:

    {[
      let prog = Builder.program ~entry:"main" in
      Builder.global prog "xs" ~bytes:(8 * 64) ();
      let _main =
        Builder.define prog "main" ~params:[] (fun b _ ->
            let xs = Builder.addr b "xs" in
            let acc = Builder.cint b 0 in
            Builder.for_n b ~start:0 ~stop:64 (fun i ->
                let x = Builder.load b (Builder.elem8 b xs i) in
                Builder.assign b acc (Builder.add b acc x));
            Builder.emit b acc;
            Builder.halt b)
      in
      prog
    ]} *)

open Rc_isa

type t

val program : entry:string -> Prog.t

(** Declare a zero- or explicitly-initialised global. *)
val global :
  Prog.t -> string -> bytes:int -> ?init:Mcode.init -> unit -> unit

(** Define a function.  The body callback receives the builder and the
    parameter registers.  If the body does not terminate its last block,
    a [Ret] (or [Halt] for the program entry) is appended. *)
val define :
  Prog.t ->
  string ->
  params:Reg.cls list ->
  ?ret:Reg.cls ->
  (t -> Vreg.t list -> unit) ->
  Func.t

(** {2 Raw emission} *)

(** @raise Invalid_argument when the current block is terminated. *)
val emit_op : t -> Op.t -> unit

val fresh : t -> Reg.cls -> Vreg.t
val new_block : t -> Block.t
val set_term : t -> Op.term -> unit

(** Append [blk] to the layout and make it current; an unterminated
    previous block falls through with a jump. *)
val place : t -> Block.t -> unit

val goto : t -> Block.t -> unit

val branch :
  t -> Opcode.cond -> Vreg.t -> Vreg.t -> taken:Block.t -> fallthrough:Block.t -> unit

(** {2 Values} — operations return the fresh destination register *)

val ci : t -> int64 -> Vreg.t
val cint : t -> int -> Vreg.t
val cf : t -> float -> Vreg.t
val alu2 : t -> Opcode.alu -> Vreg.t -> Vreg.t -> Vreg.t
val alui : t -> Opcode.alu -> Vreg.t -> int64 -> Vreg.t
val add : t -> Vreg.t -> Vreg.t -> Vreg.t
val sub : t -> Vreg.t -> Vreg.t -> Vreg.t
val mul : t -> Vreg.t -> Vreg.t -> Vreg.t
val div_ : t -> Vreg.t -> Vreg.t -> Vreg.t
val rem_ : t -> Vreg.t -> Vreg.t -> Vreg.t
val and_ : t -> Vreg.t -> Vreg.t -> Vreg.t
val or_ : t -> Vreg.t -> Vreg.t -> Vreg.t
val xor_ : t -> Vreg.t -> Vreg.t -> Vreg.t
val sll : t -> Vreg.t -> Vreg.t -> Vreg.t
val srl : t -> Vreg.t -> Vreg.t -> Vreg.t
val sra : t -> Vreg.t -> Vreg.t -> Vreg.t
val slt : t -> Vreg.t -> Vreg.t -> Vreg.t
val seq : t -> Vreg.t -> Vreg.t -> Vreg.t
val addi : t -> Vreg.t -> int64 -> Vreg.t
val subi : t -> Vreg.t -> int64 -> Vreg.t
val muli : t -> Vreg.t -> int64 -> Vreg.t
val divi : t -> Vreg.t -> int64 -> Vreg.t
val remi : t -> Vreg.t -> int64 -> Vreg.t
val andi : t -> Vreg.t -> int64 -> Vreg.t
val ori : t -> Vreg.t -> int64 -> Vreg.t
val xori : t -> Vreg.t -> int64 -> Vreg.t
val slli : t -> Vreg.t -> int64 -> Vreg.t
val srli : t -> Vreg.t -> int64 -> Vreg.t
val srai : t -> Vreg.t -> int64 -> Vreg.t
val slti : t -> Vreg.t -> int64 -> Vreg.t
val seqi : t -> Vreg.t -> int64 -> Vreg.t
val fpu2 : t -> Opcode.fpu -> Vreg.t -> Vreg.t -> Vreg.t
val fadd : t -> Vreg.t -> Vreg.t -> Vreg.t
val fsub : t -> Vreg.t -> Vreg.t -> Vreg.t
val fmul : t -> Vreg.t -> Vreg.t -> Vreg.t
val fdiv_ : t -> Vreg.t -> Vreg.t -> Vreg.t
val fneg : t -> Vreg.t -> Vreg.t
val fabs_ : t -> Vreg.t -> Vreg.t
val itof : t -> Vreg.t -> Vreg.t
val ftoi : t -> Vreg.t -> Vreg.t
val fcmp : t -> Opcode.cond -> Vreg.t -> Vreg.t -> Vreg.t

(** {2 Assignment into existing registers} *)

val mov : t -> dst:Vreg.t -> src:Vreg.t -> unit
val seti : t -> Vreg.t -> int64 -> unit
val setf : t -> Vreg.t -> float -> unit

(** [assign b dst src]: copy a computed value into a loop-carried
    register. *)
val assign : t -> Vreg.t -> Vreg.t -> unit

(** {2 Memory} *)

val addr : t -> string -> Vreg.t
val load : t -> ?off:int -> Vreg.t -> Vreg.t
val loadb : t -> ?off:int -> Vreg.t -> Vreg.t
val store : t -> ?off:int -> src:Vreg.t -> Vreg.t -> unit
val storeb : t -> ?off:int -> src:Vreg.t -> Vreg.t -> unit
val fload : t -> ?off:int -> Vreg.t -> Vreg.t
val fstore : t -> ?off:int -> src:Vreg.t -> Vreg.t -> unit

(** Address of the [idx]-th 8-byte element of [base]. *)
val elem8 : t -> Vreg.t -> Vreg.t -> Vreg.t

(** Address of the [idx]-th byte of [base]. *)
val elem1 : t -> Vreg.t -> Vreg.t -> Vreg.t

(** {2 Calls and output} *)

val call : t -> string -> Vreg.t list -> unit
val call_i : t -> string -> Vreg.t list -> Vreg.t
val call_f : t -> string -> Vreg.t list -> Vreg.t
val emit : t -> Vreg.t -> unit
val femit : t -> Vreg.t -> unit

(** {2 Structured control flow} *)

val ret : t -> Vreg.t option -> unit
val halt : t -> unit

val if_ :
  t ->
  Opcode.cond ->
  Vreg.t ->
  Vreg.t ->
  then_:(unit -> unit) ->
  ?else_:(unit -> unit) ->
  unit ->
  unit

(** [while_ b ~cond ~body]: [cond] emits the test into the loop header
    and returns the branch condition; the loop runs while it holds. *)
val while_ :
  t -> cond:(unit -> Opcode.cond * Vreg.t * Vreg.t) -> body:(unit -> unit) -> unit

(** [for_ b ~start ~stop body]: iterates [i] from [start] while
    [i < stop] (or [i > stop] for negative [step]), stepping by [step]
    (default 1).  Bounds may be constants or registers. *)
val for_ :
  t -> ?step:int64 -> start:Op.value -> stop:Op.value -> (Vreg.t -> unit) -> unit

(** Integer-constant-bounds version of {!for_}. *)
val for_n : t -> ?step:int64 -> start:int -> stop:int -> (Vreg.t -> unit) -> unit
