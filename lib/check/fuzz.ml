(** The fuzzing driver: generated programs through the full pipeline
    over the whole configuration grid, failures shrunk to minimal
    repros and persisted as a regression corpus.

    Per program: one shared checked preparation (per optimisation
    level), then every grid point runs the pass-level oracle
    ({!Oracle.compile_checked}) followed by machine-vs-oracle lockstep
    ({!Lockstep.run}).  Programs are independent, so the fleet
    parallelises over programs with {!Rc_par.Pool}. *)

open Rc_core
open Rc_harness
module J = Rc_obs.Json

(* --- the configuration grid ----------------------------------------------- *)

type point = {
  rc : bool;
  model : Model.t;
  issue : int;
  connect : int;  (** connect latency, 0 or 1 *)
}

(** Every (model x issue x connect) RC point plus non-RC baselines at
    both issue rates: 18 points. *)
let grid =
  let base =
    List.map
      (fun issue -> { rc = false; model = Model.default; issue; connect = 0 })
      [ 1; 4 ]
  in
  let rc_points =
    List.concat_map
      (fun model ->
        List.concat_map
          (fun issue ->
            List.map (fun connect -> { rc = true; model; issue; connect })
              [ 0; 1 ])
          [ 1; 4 ])
      Model.all
  in
  base @ rc_points

let point_name p =
  if p.rc then
    Fmt.str "rc-m%d-i%d-c%d" (Model.number p.model) p.issue p.connect
  else Fmt.str "base-i%d" p.issue

(* Small core sections so generated programs actually spill into the
   extended section and exercise connects; non-RC runs the same core
   size so both sides of every comparison see real pressure. *)
let options_of_point ~opt p =
  if p.rc then
    Pipeline.options ~opt ~rc:true ~core_int:12 ~core_float:8 ~total_int:64
      ~total_float:32 ~model:p.model ~issue:p.issue
      ~lat:(Rc_isa.Latency.v ~load:2 ~connect:p.connect ())
      ()
  else
    Pipeline.options ~opt ~rc:false ~core_int:12 ~core_float:8 ~issue:p.issue
      ()

let point_to_json p =
  J.Obj
    [
      ("rc", J.Bool p.rc);
      ("model", J.Int (Model.number p.model));
      ("issue", J.Int p.issue);
      ("connect", J.Int p.connect);
    ]

let point_of_json j =
  let int k = match J.member k j with Some (J.Int n) -> n | _ -> 0 in
  {
    rc = (match J.member "rc" j with Some (J.Bool b) -> b | _ -> false);
    model =
      (match Model.of_string (string_of_int (int "model")) with
      | Some m -> m
      | None -> Model.default);
    issue = max 1 (int "issue");
    connect = int "connect";
  }

(* --- checking one spec ---------------------------------------------------- *)

let opt_of_index index =
  if index mod 2 = 0 then Rc_opt.Pass.Ilp Rc_opt.Pass.default_unroll
  else Rc_opt.Pass.Classical

(** Check [spec] at one grid point ([None] = preparation stages only).
    Returns the first divergence report, or [None] when everything
    agrees.  This one function is the fuzzing predicate, the shrinking
    predicate and the corpus replay check. *)
let check_spec ~opt ?point (spec : Gen.spec) =
  match Oracle.prepare_checked ~opt (Gen.render spec) with
  | Error r -> Some r
  | Ok prep -> (
      match point with
      | None -> None
      | Some p -> (
          let opts = options_of_point ~opt p in
          match Oracle.compile_checked opts prep with
          | Error r -> Some r
          | Ok compiled -> (
              match
                Lockstep.run (Oracle.config_of_options opts)
                  compiled.Pipeline.image
              with
              | Lockstep.Diverged r -> Some r
              | Lockstep.Agree _ -> None)))

(* --- failure cases -------------------------------------------------------- *)

type case = {
  program : int;  (** index within the run *)
  pseed : int;  (** the spec's own derived seed *)
  classical : bool;  (** optimisation level the case was found at *)
  point : point option;  (** [None]: failed during shared preparation *)
  report : Report.t;
  spec : Gen.spec;
  shrunk : Gen.spec option;
  shrink_evals : int;
}

type summary = {
  programs : int;
  points_per_program : int;
  cases : case list;
  wall_s : float;
}

let case_to_json c =
  J.Obj
    [
      ("program", J.Int c.program);
      ("pseed", J.Int c.pseed);
      ("opt", J.Str (if c.classical then "classical" else "ilp"));
      ("point", match c.point with Some p -> point_to_json p | None -> J.Null);
      ("report", Report.to_json c.report);
      ("spec", Gen.to_json c.spec);
      ( "shrunk",
        match c.shrunk with Some s -> Gen.to_json s | None -> J.Null );
      ("shrink_evals", J.Int c.shrink_evals);
    ]

let summary_to_json s =
  J.Obj
    [
      ("programs", J.Int s.programs);
      ("points_per_program", J.Int s.points_per_program);
      ("divergences", J.Int (List.length s.cases));
      ("wall_s", J.Float s.wall_s);
      ("cases", J.List (List.map case_to_json s.cases));
    ]

(** The spec to replay from a persisted case: the shrunk repro when one
    was recorded, else the original. *)
let case_spec_of_json j =
  let spec =
    match (J.member "shrunk" j, J.member "spec" j) with
    | Some (J.Obj _ as s), _ -> Gen.of_json s
    | _, Some s -> Gen.of_json s
    | _ -> raise (Gen.Bad_spec "case without spec")
  in
  let point =
    match J.member "point" j with
    | Some (J.Obj _ as p) -> Some (point_of_json p)
    | _ -> None
  in
  let classical =
    match J.member "opt" j with Some (J.Str "classical") -> true | _ -> false
  in
  (spec, point, classical)

(* --- the driver ----------------------------------------------------------- *)

(* A failure is shrunk under "same stage and kind at the same point":
   the minimal program must still break the same pass the original
   broke, not merely break something. *)
let shrink_case ~opt ~point report spec =
  let reproduces candidate =
    match check_spec ~opt ?point candidate with
    | Some r ->
        r.Report.stage = report.Report.stage
        && r.Report.kind = report.Report.kind
    | None -> false
  in
  Shrink.shrink ~reproduces spec

let check_program ~seed ~shrink index =
  let pseed = (seed * 1_000_003) + index in
  let spec = Gen.generate pseed in
  let opt = opt_of_index index in
  let classical = opt = Rc_opt.Pass.Classical in
  let case ?point report =
    let shrunk, shrink_evals =
      if shrink then
        let s, evals = shrink_case ~opt ~point report spec in
        (Some s, evals)
      else (None, 0)
    in
    { program = index; pseed; classical; point; report; spec; shrunk;
      shrink_evals }
  in
  match Oracle.prepare_checked ~opt (Gen.render spec) with
  | Error r -> [ case r ]
  | Ok prep ->
      List.filter_map
        (fun p ->
          let opts = options_of_point ~opt p in
          match Oracle.compile_checked opts prep with
          | Error r -> Some (case ~point:p r)
          | Ok compiled -> (
              match
                Lockstep.run (Oracle.config_of_options opts)
                  compiled.Pipeline.image
              with
              | Lockstep.Diverged r -> Some (case ~point:p r)
              | Lockstep.Agree _ -> None))
        grid

let write_corpus_case dir c =
  let name =
    Fmt.str "div-%d-%s.json" c.pseed
      (match c.point with Some p -> point_name p | None -> "prep")
  in
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc (J.to_string (case_to_json c));
  output_char oc '\n';
  close_out oc;
  path

(** Fuzz [count] programs derived from [seed] over the full grid.
    [jobs] parallelises over programs; [shrink] minimises each failure
    before reporting; [corpus_dir] persists every (shrunk) failure as
    one JSON case file. *)
let run ?(jobs = 1) ?(shrink = true) ?corpus_dir ~seed ~count () =
  let t0 = Unix.gettimeofday () in
  let indices = List.init count (fun i -> i) in
  let cases =
    if jobs <= 1 then List.concat_map (check_program ~seed ~shrink) indices
    else
      Rc_par.Pool.with_pool ~jobs (fun pool ->
          List.concat
            (Rc_par.Pool.map_cells pool (check_program ~seed ~shrink) indices))
  in
  (match corpus_dir with
  | Some dir when cases <> [] ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter (fun c -> ignore (write_corpus_case dir c)) cases
  | _ -> ());
  {
    programs = count;
    points_per_program = List.length grid;
    cases;
    wall_s = Unix.gettimeofday () -. t0;
  }
