(** Seeded random IR program generator.

    Programs are generated as a pure-data {e spec} AST and only then
    rendered through {!Rc_ir.Builder}.  The split is what makes
    shrinking tractable: the shrinker edits specs (drop a statement,
    unwrap a loop, collapse an expression) and re-renders, and the
    renderer is {e total} — any structurally well-formed spec, however
    mutilated, renders to a program the pipeline accepts:

    - variable ids are taken modulo the function's variable count and
      every variable is zero-initialised at entry, so no shrink can
      create a use of an undefined register;
    - global-slot indices are taken modulo the global's slot count;
    - a call to a dropped helper renders as [dst := 0];
    - loops have constant trip counts, so every program terminates.

    The generator aims at the pressure points of the RC pipeline: deep
    expressions and many simultaneously-live variables (to force spills
    and extended-section allocation, hence connects), loops with
    carried dependences (model-3 read-map updates), calls (jsr/rts
    home-reset), mixed int/float traffic (both map tables), and stores
    and loads through the one global array (memory channels). *)

open Rc_ir

type expr =
  | Const of int64
  | Var of int  (** integer variable, id mod nvars *)
  | Bin of Rc_isa.Opcode.alu * expr * expr
  | Fcmp of Rc_isa.Opcode.cond * fexpr * fexpr
  | Ftoi of fexpr

and fexpr =
  | FConst of float
  | FVar of int  (** float variable, id mod nfvars *)
  | FBin of Rc_isa.Opcode.fpu * fexpr * fexpr
  | Itof of expr

type stmt =
  | Set of int * expr  (** var := expr *)
  | FSet of int * fexpr
  | Emit of expr
  | FEmit of fexpr
  | Store of int * expr  (** g[slot mod slots] := expr *)
  | Load of int * int  (** var := g[slot mod slots] *)
  | If of Rc_isa.Opcode.cond * expr * expr * stmt list * stmt list
  | Loop of int * int * stmt list
      (** [Loop (v, n, body)]: for i = 0 to n-1, with var [v] := i at
          the top of each iteration *)
  | Call of int * int * expr list
      (** [Call (dst, callee, args)]: var [dst] := helper [callee]
          applied to [args]; helpers are numbered 1.. and may only be
          called by lower-numbered functions (0 = main), so the call
          graph is a DAG *)

type func_spec = {
  arity : int;  (** integer parameters, bound to the first variables *)
  nvars : int;  (** >= max 1 (arity) *)
  nfvars : int;  (** >= 1 *)
  body : stmt list;
}

type spec = {
  seed : int;
  slots : int;  (** 8-byte cells of the global array, >= 1 *)
  funcs : func_spec array;  (** [funcs.(0)] is main; the rest helpers *)
}

(* --- sizes ---------------------------------------------------------------- *)

let rec expr_size = function
  | Const _ | Var _ -> 1
  | Bin (_, a, b) -> 1 + expr_size a + expr_size b
  | Fcmp (_, a, b) -> 1 + fexpr_size a + fexpr_size b
  | Ftoi a -> 1 + fexpr_size a

and fexpr_size = function
  | FConst _ | FVar _ -> 1
  | FBin (_, a, b) -> 1 + fexpr_size a + fexpr_size b
  | Itof a -> 1 + expr_size a

let rec stmt_size = function
  | Set (_, e) | Emit e | Store (_, e) -> 1 + expr_size e
  | FSet (_, e) | FEmit e -> 1 + fexpr_size e
  | Load _ -> 1
  | If (_, a, b, t, e) ->
      1 + expr_size a + expr_size b + body_size t + body_size e
  | Loop (_, _, body) -> 1 + body_size body
  | Call (_, _, args) -> 1 + List.fold_left (fun s a -> s + expr_size a) 0 args

and body_size body = List.fold_left (fun s st -> s + stmt_size st) 0 body

(** Total spec size, the measure greedy shrinking decreases. *)
let size s = Array.fold_left (fun acc f -> acc + 1 + body_size f.body) 0 s.funcs

(* --- generation ----------------------------------------------------------- *)

let alus =
  [|
    Rc_isa.Opcode.Add; Sub; Mul; Div; Rem; And; Or; Xor; Sll; Srl; Sra; Slt;
    Seq;
  |]

let fpus = [| Rc_isa.Opcode.Fadd; Fsub; Fmul; Fdiv; Fneg; Fabs |]
let conds = [| Rc_isa.Opcode.Eq; Ne; Lt; Le; Gt; Ge |]
let pick rs a = a.(Random.State.int rs (Array.length a))

let rec gen_expr rs ~depth ~nvars =
  if depth <= 0 || Random.State.int rs 3 = 0 then
    if Random.State.bool rs then Var (Random.State.int rs nvars)
    else Const (Int64.of_int (Random.State.int rs 201 - 100))
  else
    match Random.State.int rs 10 with
    | 8 ->
        Fcmp
          ( pick rs conds,
            gen_fexpr rs ~depth:(depth - 1) ~nvars,
            gen_fexpr rs ~depth:(depth - 1) ~nvars )
    | 9 -> Ftoi (gen_fexpr rs ~depth:(depth - 1) ~nvars)
    | _ ->
        Bin
          ( pick rs alus,
            gen_expr rs ~depth:(depth - 1) ~nvars,
            gen_expr rs ~depth:(depth - 1) ~nvars )

and gen_fexpr rs ~depth ~nvars =
  if depth <= 0 || Random.State.int rs 3 = 0 then
    if Random.State.bool rs then FVar (Random.State.int rs 8)
    else FConst (float_of_int (Random.State.int rs 41 - 20) /. 4.0)
  else
    match Random.State.int rs 8 with
    | 7 -> Itof (gen_expr rs ~depth:(depth - 1) ~nvars)
    | _ ->
        FBin
          ( pick rs fpus,
            gen_fexpr rs ~depth:(depth - 1) ~nvars,
            gen_fexpr rs ~depth:(depth - 1) ~nvars )

(* [callees]: indices of helpers this function may call (empty for the
   last helper).  [in_loop] keeps calls out of the deepest nests so run
   time stays bounded. *)
let rec gen_stmt rs ~depth ~nvars ~callees =
  let e ?(d = 3) () = gen_expr rs ~depth:d ~nvars in
  match Random.State.int rs 14 with
  | 0 | 1 | 2 -> Set (Random.State.int rs nvars, e ~d:4 ())
  | 3 -> FSet (Random.State.int rs 8, gen_fexpr rs ~depth:3 ~nvars)
  | 4 -> Emit (e ())
  | 5 -> FEmit (gen_fexpr rs ~depth:2 ~nvars)
  | 6 -> Store (Random.State.int rs 64, e ())
  | 7 -> Load (Random.State.int rs nvars, Random.State.int rs 64)
  | 8 | 9 when depth > 0 ->
      If
        ( pick rs conds,
          e ~d:2 (),
          e ~d:2 (),
          gen_body rs ~depth:(depth - 1) ~nvars ~callees
            ~len:(1 + Random.State.int rs 3),
          if Random.State.bool rs then []
          else
            gen_body rs ~depth:(depth - 1) ~nvars ~callees
              ~len:(1 + Random.State.int rs 2) )
  | 10 | 11 when depth > 0 ->
      (* Trip counts stay small: nested loops multiply, and every
         dynamic instruction here is executed ~100 times across the
         grid's oracle runs. *)
      Loop
        ( Random.State.int rs nvars,
          1 + Random.State.int rs 4,
          gen_body rs ~depth:(depth - 1) ~nvars ~callees
            ~len:(1 + Random.State.int rs 4) )
  | 12 | 13 when callees <> [] ->
      let callee = List.nth callees (Random.State.int rs (List.length callees)) in
      let nargs = Random.State.int rs 4 in
      Call
        ( Random.State.int rs nvars,
          callee,
          List.init nargs (fun _ -> e ~d:2 ()) )
  | _ -> Set (Random.State.int rs nvars, e ~d:4 ())

and gen_body rs ~depth ~nvars ~callees ~len =
  List.init len (fun _ -> gen_stmt rs ~depth ~nvars ~callees)

(** Generate one program spec, fully determined by [seed].  [nfuncs]
    functions (main + helpers), bodies sized by [len]. *)
let generate ?(nfuncs = 3) ?(len = 11) seed =
  let rs = Random.State.make [| 0x5ca1e; seed |] in
  let nfuncs = max 1 nfuncs in
  let funcs =
    Array.init nfuncs (fun i ->
        (* Only higher-numbered helpers are callable: a DAG, no
           recursion.  Helper bodies are shorter than main's. *)
        let callees =
          List.init (nfuncs - i - 1) (fun k -> i + 1 + k)
        in
        let arity = if i = 0 then 0 else Random.State.int rs 4 in
        (* Enough simultaneously-live variables to overflow a small
           core section and force spills + extended-section use. *)
        let nvars = max (arity + 1) (12 + Random.State.int rs 12) in
        let body_len = if i = 0 then len else max 3 (len / 2) in
        {
          arity;
          nvars;
          nfvars = 8;
          body = gen_body rs ~depth:2 ~nvars ~callees ~len:body_len;
        })
  in
  { seed; slots = 64; funcs }

(* --- rendering ------------------------------------------------------------ *)

let fname i = if i = 0 then "main" else Fmt.str "helper%d" i

(* Rendering environment for one function body. *)
type env = {
  b : Builder.t;
  vars : Vreg.t array;
  fvars : Vreg.t array;
  g : Vreg.t;  (** address of the global array *)
  slots : int;
  nfuncs : int;
  funcs : func_spec array;
}

let var env i = env.vars.(i mod Array.length env.vars)
let fvar env i = env.fvars.(i mod Array.length env.fvars)

let rec rx env = function
  | Const n -> Builder.ci env.b n
  | Var i -> var env i
  | Bin (op, a, b) -> Builder.alu2 env.b op (rx env a) (rx env b)
  | Fcmp (c, a, b) -> Builder.fcmp env.b c (rfx env a) (rfx env b)
  | Ftoi a -> Builder.ftoi env.b (rfx env a)

and rfx env = function
  | FConst x -> Builder.cf env.b x
  | FVar i -> fvar env i
  | FBin (op, a, b) -> Builder.fpu2 env.b op (rfx env a) (rfx env b)
  | Itof a -> Builder.itof env.b (rx env a)

let rec rstmt env = function
  | Set (v, e) -> Builder.assign env.b (var env v) (rx env e)
  | FSet (v, e) -> Builder.assign env.b (fvar env v) (rfx env e)
  | Emit e -> Builder.emit env.b (rx env e)
  | FEmit e -> Builder.femit env.b (rfx env e)
  | Store (slot, e) ->
      Builder.store env.b ~off:(8 * (slot mod env.slots)) ~src:(rx env e) env.g
  | Load (v, slot) ->
      Builder.assign env.b (var env v)
        (Builder.load env.b ~off:(8 * (slot mod env.slots)) env.g)
  | If (c, a, b, then_, else_) ->
      Builder.if_ env.b c (rx env a) (rx env b)
        ~then_:(fun () -> List.iter (rstmt env) then_)
        ~else_:(fun () -> List.iter (rstmt env) else_)
        ()
  | Loop (v, n, body) ->
      Builder.for_n env.b ~start:0 ~stop:(max 0 n) (fun i ->
          Builder.assign env.b (var env v) i;
          List.iter (rstmt env) body)
  | Call (dst, callee, args) ->
      if callee <= 0 || callee >= env.nfuncs then
        (* the shrinker dropped the helper: the call collapses *)
        Builder.seti env.b (var env dst) 0L
      else begin
        let arity = env.funcs.(callee).arity in
        let args = List.map (rx env) args in
        (* match the callee's arity exactly, padding with zeros *)
        let rec fit n = function
          | _ when n = 0 -> []
          | a :: rest -> a :: fit (n - 1) rest
          | [] -> Builder.cint env.b 0 :: fit (n - 1) []
        in
        Builder.assign env.b (var env dst)
          (Builder.call_i env.b (fname callee) (fit arity args))
      end

(** Render a spec to a fresh IR program.  Total: never raises on any
    structurally well-formed spec. *)
let render (s : spec) : Prog.t =
  let prog = Builder.program ~entry:"main" in
  let slots = max 1 s.slots in
  Builder.global prog "g" ~bytes:(8 * slots) ();
  let nfuncs = Array.length s.funcs in
  Array.iteri
    (fun i (f : func_spec) ->
      let params = List.init f.arity (fun _ -> Rc_isa.Reg.Int) in
      ignore
        (Builder.define prog (fname i) ~params
           ?ret:(if i = 0 then None else Some Rc_isa.Reg.Int)
           (fun b ps ->
             let nvars = max (max 1 f.arity) f.nvars in
             let vars =
               Array.init nvars (fun v ->
                   match List.nth_opt ps v with
                   | Some p -> p
                   | None -> Builder.cint b 0)
             in
             let fvars =
               Array.init (max 1 f.nfvars) (fun _ -> Builder.cf b 0.0)
             in
             let env =
               { b; vars; fvars; g = Builder.addr b "g"; slots; nfuncs;
                 funcs = s.funcs }
             in
             List.iter (rstmt env) f.body;
             if i = 0 then begin
               (* Keep every variable live to the end and observable:
                  maximum pressure, and any clobber anywhere shows up
                  in the output stream. *)
               Array.iter (fun v -> Builder.emit b v) vars;
               Array.iter (fun v -> Builder.femit b v) fvars;
               Builder.halt b
             end
             else Builder.ret b (Some vars.(0)))))
    s.funcs;
  prog

(* --- spec (de)serialisation, for the regression corpus -------------------- *)

module J = Rc_obs.Json

let alu_name a = Rc_isa.Opcode.string_of_alu a
let fpu_name f = Rc_isa.Opcode.string_of_fpu f
let cond_name c = Rc_isa.Opcode.string_of_cond c

let alu_table = Array.map (fun a -> (a, alu_name a)) alus
let fpu_table = Array.map (fun f -> (f, fpu_name f)) fpus
let cond_table = Array.map (fun c -> (c, cond_name c)) conds

let rec expr_to_json = function
  | Const n -> J.List [ J.Str "const"; J.Str (Int64.to_string n) ]
  | Var i -> J.List [ J.Str "var"; J.Int i ]
  | Bin (op, a, b) ->
      J.List [ J.Str "bin"; J.Str (alu_name op); expr_to_json a; expr_to_json b ]
  | Fcmp (c, a, b) ->
      J.List
        [ J.Str "fcmp"; J.Str (cond_name c); fexpr_to_json a; fexpr_to_json b ]
  | Ftoi a -> J.List [ J.Str "ftoi"; fexpr_to_json a ]

and fexpr_to_json = function
  | FConst x -> J.List [ J.Str "fconst"; J.Float x ]
  | FVar i -> J.List [ J.Str "fvar"; J.Int i ]
  | FBin (op, a, b) ->
      J.List
        [ J.Str "fbin"; J.Str (fpu_name op); fexpr_to_json a; fexpr_to_json b ]
  | Itof a -> J.List [ J.Str "itof"; expr_to_json a ]

let rec stmt_to_json = function
  | Set (v, e) -> J.List [ J.Str "set"; J.Int v; expr_to_json e ]
  | FSet (v, e) -> J.List [ J.Str "fset"; J.Int v; fexpr_to_json e ]
  | Emit e -> J.List [ J.Str "emit"; expr_to_json e ]
  | FEmit e -> J.List [ J.Str "femit"; fexpr_to_json e ]
  | Store (s, e) -> J.List [ J.Str "store"; J.Int s; expr_to_json e ]
  | Load (v, s) -> J.List [ J.Str "load"; J.Int v; J.Int s ]
  | If (c, a, b, t, e) ->
      J.List
        [
          J.Str "if"; J.Str (cond_name c); expr_to_json a; expr_to_json b;
          J.List (List.map stmt_to_json t); J.List (List.map stmt_to_json e);
        ]
  | Loop (v, n, body) ->
      J.List
        [ J.Str "loop"; J.Int v; J.Int n; J.List (List.map stmt_to_json body) ]
  | Call (d, c, args) ->
      J.List
        [ J.Str "call"; J.Int d; J.Int c; J.List (List.map expr_to_json args) ]

let to_json (s : spec) =
  J.Obj
    [
      ("seed", J.Int s.seed);
      ("slots", J.Int s.slots);
      ( "funcs",
        J.List
          (Array.to_list
             (Array.map
                (fun f ->
                  J.Obj
                    [
                      ("arity", J.Int f.arity);
                      ("nvars", J.Int f.nvars);
                      ("nfvars", J.Int f.nfvars);
                      ("body", J.List (List.map stmt_to_json f.body));
                    ])
                s.funcs)) );
    ]

(* Strict decoding: user-submitted documents (POST /compile,
   rcc compile) come through here, so every rejection names the JSON
   path of the offending node and nothing falls back silently — an
   unknown opcode is an error, not [Add]. *)

let ( let* ) = Result.bind
let fail path fmt = Fmt.kstr (fun m -> Error (Fmt.str "%s: %s" path m)) fmt

let int_at path = function
  | J.Int n -> Ok n
  | _ -> fail path "expected an integer"

let opcode_at path kind table = function
  | J.Str name -> (
      match Array.find_opt (fun (_, n) -> n = name) table with
      | Some (op, _) -> Ok op
      | None -> fail path "unknown %s opcode %S" kind name)
  | _ -> fail path "expected a %s opcode string" kind

let decode_list path item js =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest ->
        let* x = item (Fmt.str "%s[%d]" path i) j in
        go (i + 1) (x :: acc) rest
  in
  go 0 [] js

let rec decode_expr path j =
  match j with
  | J.List [ J.Str "const"; J.Str n ] -> (
      match Int64.of_string_opt n with
      | Some v -> Ok (Const v)
      | None -> fail path "bad int64 literal %S" n)
  | J.List [ J.Str "const"; J.Int n ] -> Ok (Const (Int64.of_int n))
  | J.List [ J.Str "var"; i ] ->
      let* i = int_at (path ^ "[1]") i in
      Ok (Var i)
  | J.List [ J.Str "bin"; op; a; b ] ->
      let* op = opcode_at (path ^ "[1]") "ALU" alu_table op in
      let* a = decode_expr (path ^ "[2]") a in
      let* b = decode_expr (path ^ "[3]") b in
      Ok (Bin (op, a, b))
  | J.List [ J.Str "fcmp"; c; a; b ] ->
      let* c = opcode_at (path ^ "[1]") "condition" cond_table c in
      let* a = decode_fexpr (path ^ "[2]") a in
      let* b = decode_fexpr (path ^ "[3]") b in
      Ok (Fcmp (c, a, b))
  | J.List [ J.Str "ftoi"; a ] ->
      let* a = decode_fexpr (path ^ "[1]") a in
      Ok (Ftoi a)
  | J.List (J.Str tag :: _) ->
      fail path "malformed %S expression (wrong shape or arity)" tag
  | _ -> fail path "expected an expression [\"tag\", ...]"

and decode_fexpr path j =
  match j with
  | J.List [ J.Str "fconst"; J.Float x ] -> Ok (FConst x)
  | J.List [ J.Str "fconst"; J.Int x ] -> Ok (FConst (float_of_int x))
  | J.List [ J.Str "fvar"; i ] ->
      let* i = int_at (path ^ "[1]") i in
      Ok (FVar i)
  | J.List [ J.Str "fbin"; op; a; b ] ->
      let* op = opcode_at (path ^ "[1]") "FPU" fpu_table op in
      let* a = decode_fexpr (path ^ "[2]") a in
      let* b = decode_fexpr (path ^ "[3]") b in
      Ok (FBin (op, a, b))
  | J.List [ J.Str "itof"; a ] ->
      let* a = decode_expr (path ^ "[1]") a in
      Ok (Itof a)
  | J.List (J.Str tag :: _) ->
      fail path "malformed %S float expression (wrong shape or arity)" tag
  | _ -> fail path "expected a float expression [\"tag\", ...]"

let rec decode_stmt path j =
  match j with
  | J.List [ J.Str "set"; v; e ] ->
      let* v = int_at (path ^ "[1]") v in
      let* e = decode_expr (path ^ "[2]") e in
      Ok (Set (v, e))
  | J.List [ J.Str "fset"; v; e ] ->
      let* v = int_at (path ^ "[1]") v in
      let* e = decode_fexpr (path ^ "[2]") e in
      Ok (FSet (v, e))
  | J.List [ J.Str "emit"; e ] ->
      let* e = decode_expr (path ^ "[1]") e in
      Ok (Emit e)
  | J.List [ J.Str "femit"; e ] ->
      let* e = decode_fexpr (path ^ "[1]") e in
      Ok (FEmit e)
  | J.List [ J.Str "store"; s; e ] ->
      let* s = int_at (path ^ "[1]") s in
      let* e = decode_expr (path ^ "[2]") e in
      Ok (Store (s, e))
  | J.List [ J.Str "load"; v; s ] ->
      let* v = int_at (path ^ "[1]") v in
      let* s = int_at (path ^ "[2]") s in
      Ok (Load (v, s))
  | J.List [ J.Str "if"; c; a; b; t; e ] ->
      let* c = opcode_at (path ^ "[1]") "condition" cond_table c in
      let* a = decode_expr (path ^ "[2]") a in
      let* b = decode_expr (path ^ "[3]") b in
      let* t = decode_body (path ^ "[4]") t in
      let* e = decode_body (path ^ "[5]") e in
      Ok (If (c, a, b, t, e))
  | J.List [ J.Str "loop"; v; n; body ] ->
      let* v = int_at (path ^ "[1]") v in
      let* n = int_at (path ^ "[2]") n in
      let* body = decode_body (path ^ "[3]") body in
      Ok (Loop (v, n, body))
  | J.List [ J.Str "call"; d; c; J.List args ] ->
      let* d = int_at (path ^ "[1]") d in
      let* c = int_at (path ^ "[2]") c in
      let* args = decode_list (path ^ "[3]") decode_expr args in
      Ok (Call (d, c, args))
  | J.List (J.Str tag :: _) ->
      fail path "malformed %S statement (wrong shape or arity)" tag
  | _ -> fail path "expected a statement [\"tag\", ...]"

and decode_body path = function
  | J.List ss -> decode_list path decode_stmt ss
  | _ -> fail path "expected a statement list"

let decode_func path j =
  match j with
  | J.Obj fields ->
      let* () =
        match
          List.find_opt
            (fun (k, _) ->
              not (List.mem k [ "arity"; "nvars"; "nfvars"; "body" ]))
            fields
        with
        | Some (k, _) -> fail path "unknown field %S" k
        | None -> Ok ()
      in
      let req name =
        match List.assoc_opt name fields with
        | Some v -> Ok v
        | None -> fail path "missing field %S" name
      in
      let int name =
        let* v = req name in
        int_at (path ^ "." ^ name) v
      in
      let* arity = int "arity" in
      let* nvars = int "nvars" in
      let* nfvars = int "nfvars" in
      let* body_j = req "body" in
      let* body = decode_body (path ^ ".body") body_j in
      Ok { arity; nvars; nfvars; body }
  | _ -> fail path "expected a function object"

(** Strict spec decoding.  Every error names the JSON path of the
    offending node ([$.funcs[1].body[3][2]: ...]); unknown opcode
    names, unknown fields and wrong shapes are errors, never silent
    fallbacks.  [seed] defaults to 0 and [slots] to 64 so hand-written
    kernels can omit them; {!to_json} output round-trips exactly. *)
let decode j =
  match j with
  | J.Obj fields ->
      let* () =
        match
          List.find_opt
            (fun (k, _) -> not (List.mem k [ "seed"; "slots"; "funcs" ]))
            fields
        with
        | Some (k, _) -> fail "$" "unknown field %S" k
        | None -> Ok ()
      in
      let opt_int name ~default =
        match List.assoc_opt name fields with
        | None -> Ok default
        | Some v -> int_at ("$." ^ name) v
      in
      let* seed = opt_int "seed" ~default:0 in
      let* slots = opt_int "slots" ~default:64 in
      let* funcs =
        match List.assoc_opt "funcs" fields with
        | Some (J.List fs) -> decode_list "$.funcs" decode_func fs
        | Some _ -> fail "$.funcs" "expected a function list"
        | None -> fail "$" "missing field %S" "funcs"
      in
      Ok { seed; slots; funcs = Array.of_list funcs }
  | _ -> fail "$" "expected a spec object"

exception Bad_spec of string

(** @raise Bad_spec on a malformed document (legacy interface over
    {!decode}, for the fuzzer's corpus files). *)
let of_json j =
  match decode j with Ok s -> s | Error m -> raise (Bad_spec m)

(* --- admission limits and validation -------------------------------------- *)

(* Budget limits for user-submitted specs (POST /compile, rcc
   compile).  [size] is the shrinker's node-count measure above;
   [depth] counts statement nesting; the dynamic weight bounds the
   work one simulation of the rendered program can cost, with loop
   trip counts multiplied through and the call DAG followed. *)
let max_size = 4096
let max_depth = 16
let max_funcs = 8
let max_slots = 4096
let max_vars = 256
let max_call_args = 8
let max_trip = 1024
let max_dyn_weight = 1 lsl 22

let rec stmt_depth = function
  | Set _ | FSet _ | Emit _ | FEmit _ | Store _ | Load _ | Call _ -> 1
  | If (_, _, _, t, e) -> 1 + max (body_depth t) (body_depth e)
  | Loop (_, _, body) -> 1 + body_depth body

and body_depth body = List.fold_left (fun d st -> max d (stmt_depth st)) 0 body

(** Deepest statement nesting of any function body. *)
let depth (s : spec) =
  Array.fold_left (fun d f -> max d (body_depth f.body)) 0 s.funcs

let sat_add a b =
  let s = a + b in
  if s < a then max_int else s

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

(** Saturating upper bound on the dynamic spec-node executions of one
    run of the rendered program: loop bodies weighted by their trip
    counts, both [If] arms counted, calls expanded through the DAG
    (validated calls only go to higher-numbered helpers, so helper
    weights are known before their callers'). *)
let dyn_weight (s : spec) =
  let n = Array.length s.funcs in
  let fw = Array.make (max 1 n) 1 in
  let rec stmt_w i = function
    | Set (_, e) | Emit e | Store (_, e) -> 1 + expr_size e
    | FSet (_, e) | FEmit e -> 1 + fexpr_size e
    | Load _ -> 1
    | If (_, a, b, t, e) ->
        sat_add
          (1 + expr_size a + expr_size b)
          (sat_add (body_w i t) (body_w i e))
    | Loop (_, trip, body) -> sat_add 1 (sat_mul (max 0 trip) (body_w i body))
    | Call (_, c, args) ->
        let argw =
          List.fold_left (fun w a -> sat_add w (expr_size a)) 1 args
        in
        if c > i && c < n then sat_add argw fw.(c) else argw
  and body_w i body =
    List.fold_left (fun w st -> sat_add w (stmt_w i st)) 0 body
  in
  for i = n - 1 downto 0 do
    fw.(i) <- sat_add 1 (body_w i s.funcs.(i).body)
  done;
  if n = 0 then 0 else fw.(0)

exception Invalid of string

(** Admission check for untrusted specs.  [`Limit] errors are budget
    overruns (the service answers 413); [`Invalid] errors are
    structural rejections (400).  Beyond the budget limits this
    enforces what the total renderer's modular index folding cannot:
    indices must be non-negative (OCaml's [mod] is negative for
    negative operands, so a negative id would crash the renderer), and
    in-range calls must be strictly forward — the renderer collapses
    out-of-range callees to [dst := 0], but an in-range self or
    backward call would render real recursion with no base case and
    hang the interpreter. *)
let validate (s : spec) =
  let n = Array.length s.funcs in
  let limit fmt = Fmt.kstr (fun m -> Error (`Limit m)) fmt in
  if n = 0 then Error (`Invalid "spec has no functions")
  else if n > max_funcs then
    limit "%d functions exceed the limit of %d" n max_funcs
  else if s.slots < 1 then Error (`Invalid "slots must be >= 1")
  else if s.slots > max_slots then
    limit "%d global slots exceed the limit of %d" s.slots max_slots
  else if size s > max_size then
    limit "spec size %d exceeds the limit of %d nodes" (size s) max_size
  else if depth s > max_depth then
    limit "statement depth %d exceeds the limit of %d" (depth s) max_depth
  else begin
    let err fmt = Fmt.kstr (fun m -> raise (Invalid m)) fmt in
    let rec check_expr i = function
      | Const _ -> ()
      | Var v -> if v < 0 then err "funcs[%d]: negative variable id %d" i v
      | Bin (_, a, b) ->
          check_expr i a;
          check_expr i b
      | Fcmp (_, a, b) ->
          check_fexpr i a;
          check_fexpr i b
      | Ftoi a -> check_fexpr i a
    and check_fexpr i = function
      | FConst _ -> ()
      | FVar v ->
          if v < 0 then err "funcs[%d]: negative float variable id %d" i v
      | FBin (_, a, b) ->
          check_fexpr i a;
          check_fexpr i b
      | Itof a -> check_expr i a
    in
    let rec check_stmt i = function
      | Set (v, e) ->
          if v < 0 then err "funcs[%d]: negative variable id %d" i v;
          check_expr i e
      | Emit e -> check_expr i e
      | FSet (v, e) ->
          if v < 0 then err "funcs[%d]: negative float variable id %d" i v;
          check_fexpr i e
      | FEmit e -> check_fexpr i e
      | Store (slot, e) ->
          if slot < 0 then err "funcs[%d]: negative slot index %d" i slot;
          check_expr i e
      | Load (v, slot) ->
          if v < 0 then err "funcs[%d]: negative variable id %d" i v;
          if slot < 0 then err "funcs[%d]: negative slot index %d" i slot
      | If (_, a, b, t, e) ->
          check_expr i a;
          check_expr i b;
          List.iter (check_stmt i) t;
          List.iter (check_stmt i) e
      | Loop (v, trip, body) ->
          if v < 0 then err "funcs[%d]: negative variable id %d" i v;
          if trip < 0 then err "funcs[%d]: negative trip count %d" i trip;
          if trip > max_trip then
            err "funcs[%d]: trip count %d exceeds the limit of %d" i trip
              max_trip;
          List.iter (check_stmt i) body
      | Call (d, c, args) ->
          if d < 0 then err "funcs[%d]: negative variable id %d" i d;
          if c > 0 && c < n && c <= i then
            err
              "funcs[%d]: call to helper %d is not strictly forward \
               (recursion is rejected)"
              i c;
          if List.length args > max_call_args then
            err "funcs[%d]: call with %d arguments exceeds the limit of %d" i
              (List.length args) max_call_args;
          List.iter (check_expr i) args
    in
    match
      Array.iteri
        (fun i f ->
          if i = 0 && f.arity <> 0 then err "funcs[0] (main) must have arity 0";
          if f.arity < 0 then err "funcs[%d]: negative arity" i;
          if f.arity > max_call_args then
            err "funcs[%d]: arity %d exceeds the limit of %d" i f.arity
              max_call_args;
          if f.nvars < 1 || f.nfvars < 1 then
            err "funcs[%d]: nvars and nfvars must be >= 1" i;
          if f.nvars > max_vars || f.nfvars > max_vars then
            err "funcs[%d]: variable counts exceed the limit of %d" i max_vars;
          if f.arity > f.nvars then
            err "funcs[%d]: arity %d exceeds nvars %d" i f.arity f.nvars;
          List.iter (check_stmt i) f.body)
        s.funcs
    with
    | () ->
        let w = dyn_weight s in
        if w > max_dyn_weight then
          limit "dynamic weight %d exceeds the limit of %d" w max_dyn_weight
        else Ok ()
    | exception Invalid m -> Error (`Invalid m)
  end
