(** Seeded random IR program generator.

    Programs are generated as a pure-data {e spec} AST and only then
    rendered through {!Rc_ir.Builder}.  The split is what makes
    shrinking tractable: the shrinker edits specs (drop a statement,
    unwrap a loop, collapse an expression) and re-renders, and the
    renderer is {e total} — any structurally well-formed spec, however
    mutilated, renders to a program the pipeline accepts:

    - variable ids are taken modulo the function's variable count and
      every variable is zero-initialised at entry, so no shrink can
      create a use of an undefined register;
    - global-slot indices are taken modulo the global's slot count;
    - a call to a dropped helper renders as [dst := 0];
    - loops have constant trip counts, so every program terminates.

    The generator aims at the pressure points of the RC pipeline: deep
    expressions and many simultaneously-live variables (to force spills
    and extended-section allocation, hence connects), loops with
    carried dependences (model-3 read-map updates), calls (jsr/rts
    home-reset), mixed int/float traffic (both map tables), and stores
    and loads through the one global array (memory channels). *)

open Rc_ir

type expr =
  | Const of int64
  | Var of int  (** integer variable, id mod nvars *)
  | Bin of Rc_isa.Opcode.alu * expr * expr
  | Fcmp of Rc_isa.Opcode.cond * fexpr * fexpr
  | Ftoi of fexpr

and fexpr =
  | FConst of float
  | FVar of int  (** float variable, id mod nfvars *)
  | FBin of Rc_isa.Opcode.fpu * fexpr * fexpr
  | Itof of expr

type stmt =
  | Set of int * expr  (** var := expr *)
  | FSet of int * fexpr
  | Emit of expr
  | FEmit of fexpr
  | Store of int * expr  (** g[slot mod slots] := expr *)
  | Load of int * int  (** var := g[slot mod slots] *)
  | If of Rc_isa.Opcode.cond * expr * expr * stmt list * stmt list
  | Loop of int * int * stmt list
      (** [Loop (v, n, body)]: for i = 0 to n-1, with var [v] := i at
          the top of each iteration *)
  | Call of int * int * expr list
      (** [Call (dst, callee, args)]: var [dst] := helper [callee]
          applied to [args]; helpers are numbered 1.. and may only be
          called by lower-numbered functions (0 = main), so the call
          graph is a DAG *)

type func_spec = {
  arity : int;  (** integer parameters, bound to the first variables *)
  nvars : int;  (** >= max 1 (arity) *)
  nfvars : int;  (** >= 1 *)
  body : stmt list;
}

type spec = {
  seed : int;
  slots : int;  (** 8-byte cells of the global array, >= 1 *)
  funcs : func_spec array;  (** [funcs.(0)] is main; the rest helpers *)
}

(* --- sizes ---------------------------------------------------------------- *)

let rec expr_size = function
  | Const _ | Var _ -> 1
  | Bin (_, a, b) -> 1 + expr_size a + expr_size b
  | Fcmp (_, a, b) -> 1 + fexpr_size a + fexpr_size b
  | Ftoi a -> 1 + fexpr_size a

and fexpr_size = function
  | FConst _ | FVar _ -> 1
  | FBin (_, a, b) -> 1 + fexpr_size a + fexpr_size b
  | Itof a -> 1 + expr_size a

let rec stmt_size = function
  | Set (_, e) | Emit e | Store (_, e) -> 1 + expr_size e
  | FSet (_, e) | FEmit e -> 1 + fexpr_size e
  | Load _ -> 1
  | If (_, a, b, t, e) ->
      1 + expr_size a + expr_size b + body_size t + body_size e
  | Loop (_, _, body) -> 1 + body_size body
  | Call (_, _, args) -> 1 + List.fold_left (fun s a -> s + expr_size a) 0 args

and body_size body = List.fold_left (fun s st -> s + stmt_size st) 0 body

(** Total spec size, the measure greedy shrinking decreases. *)
let size s = Array.fold_left (fun acc f -> acc + 1 + body_size f.body) 0 s.funcs

(* --- generation ----------------------------------------------------------- *)

let alus =
  [|
    Rc_isa.Opcode.Add; Sub; Mul; Div; Rem; And; Or; Xor; Sll; Srl; Sra; Slt;
    Seq;
  |]

let fpus = [| Rc_isa.Opcode.Fadd; Fsub; Fmul; Fdiv; Fneg; Fabs |]
let conds = [| Rc_isa.Opcode.Eq; Ne; Lt; Le; Gt; Ge |]
let pick rs a = a.(Random.State.int rs (Array.length a))

let rec gen_expr rs ~depth ~nvars =
  if depth <= 0 || Random.State.int rs 3 = 0 then
    if Random.State.bool rs then Var (Random.State.int rs nvars)
    else Const (Int64.of_int (Random.State.int rs 201 - 100))
  else
    match Random.State.int rs 10 with
    | 8 ->
        Fcmp
          ( pick rs conds,
            gen_fexpr rs ~depth:(depth - 1) ~nvars,
            gen_fexpr rs ~depth:(depth - 1) ~nvars )
    | 9 -> Ftoi (gen_fexpr rs ~depth:(depth - 1) ~nvars)
    | _ ->
        Bin
          ( pick rs alus,
            gen_expr rs ~depth:(depth - 1) ~nvars,
            gen_expr rs ~depth:(depth - 1) ~nvars )

and gen_fexpr rs ~depth ~nvars =
  if depth <= 0 || Random.State.int rs 3 = 0 then
    if Random.State.bool rs then FVar (Random.State.int rs 8)
    else FConst (float_of_int (Random.State.int rs 41 - 20) /. 4.0)
  else
    match Random.State.int rs 8 with
    | 7 -> Itof (gen_expr rs ~depth:(depth - 1) ~nvars)
    | _ ->
        FBin
          ( pick rs fpus,
            gen_fexpr rs ~depth:(depth - 1) ~nvars,
            gen_fexpr rs ~depth:(depth - 1) ~nvars )

(* [callees]: indices of helpers this function may call (empty for the
   last helper).  [in_loop] keeps calls out of the deepest nests so run
   time stays bounded. *)
let rec gen_stmt rs ~depth ~nvars ~callees =
  let e ?(d = 3) () = gen_expr rs ~depth:d ~nvars in
  match Random.State.int rs 14 with
  | 0 | 1 | 2 -> Set (Random.State.int rs nvars, e ~d:4 ())
  | 3 -> FSet (Random.State.int rs 8, gen_fexpr rs ~depth:3 ~nvars)
  | 4 -> Emit (e ())
  | 5 -> FEmit (gen_fexpr rs ~depth:2 ~nvars)
  | 6 -> Store (Random.State.int rs 64, e ())
  | 7 -> Load (Random.State.int rs nvars, Random.State.int rs 64)
  | 8 | 9 when depth > 0 ->
      If
        ( pick rs conds,
          e ~d:2 (),
          e ~d:2 (),
          gen_body rs ~depth:(depth - 1) ~nvars ~callees
            ~len:(1 + Random.State.int rs 3),
          if Random.State.bool rs then []
          else
            gen_body rs ~depth:(depth - 1) ~nvars ~callees
              ~len:(1 + Random.State.int rs 2) )
  | 10 | 11 when depth > 0 ->
      (* Trip counts stay small: nested loops multiply, and every
         dynamic instruction here is executed ~100 times across the
         grid's oracle runs. *)
      Loop
        ( Random.State.int rs nvars,
          1 + Random.State.int rs 4,
          gen_body rs ~depth:(depth - 1) ~nvars ~callees
            ~len:(1 + Random.State.int rs 4) )
  | 12 | 13 when callees <> [] ->
      let callee = List.nth callees (Random.State.int rs (List.length callees)) in
      let nargs = Random.State.int rs 4 in
      Call
        ( Random.State.int rs nvars,
          callee,
          List.init nargs (fun _ -> e ~d:2 ()) )
  | _ -> Set (Random.State.int rs nvars, e ~d:4 ())

and gen_body rs ~depth ~nvars ~callees ~len =
  List.init len (fun _ -> gen_stmt rs ~depth ~nvars ~callees)

(** Generate one program spec, fully determined by [seed].  [nfuncs]
    functions (main + helpers), bodies sized by [len]. *)
let generate ?(nfuncs = 3) ?(len = 11) seed =
  let rs = Random.State.make [| 0x5ca1e; seed |] in
  let nfuncs = max 1 nfuncs in
  let funcs =
    Array.init nfuncs (fun i ->
        (* Only higher-numbered helpers are callable: a DAG, no
           recursion.  Helper bodies are shorter than main's. *)
        let callees =
          List.init (nfuncs - i - 1) (fun k -> i + 1 + k)
        in
        let arity = if i = 0 then 0 else Random.State.int rs 4 in
        (* Enough simultaneously-live variables to overflow a small
           core section and force spills + extended-section use. *)
        let nvars = max (arity + 1) (12 + Random.State.int rs 12) in
        let body_len = if i = 0 then len else max 3 (len / 2) in
        {
          arity;
          nvars;
          nfvars = 8;
          body = gen_body rs ~depth:2 ~nvars ~callees ~len:body_len;
        })
  in
  { seed; slots = 64; funcs }

(* --- rendering ------------------------------------------------------------ *)

let fname i = if i = 0 then "main" else Fmt.str "helper%d" i

(* Rendering environment for one function body. *)
type env = {
  b : Builder.t;
  vars : Vreg.t array;
  fvars : Vreg.t array;
  g : Vreg.t;  (** address of the global array *)
  slots : int;
  nfuncs : int;
  funcs : func_spec array;
}

let var env i = env.vars.(i mod Array.length env.vars)
let fvar env i = env.fvars.(i mod Array.length env.fvars)

let rec rx env = function
  | Const n -> Builder.ci env.b n
  | Var i -> var env i
  | Bin (op, a, b) -> Builder.alu2 env.b op (rx env a) (rx env b)
  | Fcmp (c, a, b) -> Builder.fcmp env.b c (rfx env a) (rfx env b)
  | Ftoi a -> Builder.ftoi env.b (rfx env a)

and rfx env = function
  | FConst x -> Builder.cf env.b x
  | FVar i -> fvar env i
  | FBin (op, a, b) -> Builder.fpu2 env.b op (rfx env a) (rfx env b)
  | Itof a -> Builder.itof env.b (rx env a)

let rec rstmt env = function
  | Set (v, e) -> Builder.assign env.b (var env v) (rx env e)
  | FSet (v, e) -> Builder.assign env.b (fvar env v) (rfx env e)
  | Emit e -> Builder.emit env.b (rx env e)
  | FEmit e -> Builder.femit env.b (rfx env e)
  | Store (slot, e) ->
      Builder.store env.b ~off:(8 * (slot mod env.slots)) ~src:(rx env e) env.g
  | Load (v, slot) ->
      Builder.assign env.b (var env v)
        (Builder.load env.b ~off:(8 * (slot mod env.slots)) env.g)
  | If (c, a, b, then_, else_) ->
      Builder.if_ env.b c (rx env a) (rx env b)
        ~then_:(fun () -> List.iter (rstmt env) then_)
        ~else_:(fun () -> List.iter (rstmt env) else_)
        ()
  | Loop (v, n, body) ->
      Builder.for_n env.b ~start:0 ~stop:(max 0 n) (fun i ->
          Builder.assign env.b (var env v) i;
          List.iter (rstmt env) body)
  | Call (dst, callee, args) ->
      if callee <= 0 || callee >= env.nfuncs then
        (* the shrinker dropped the helper: the call collapses *)
        Builder.seti env.b (var env dst) 0L
      else begin
        let arity = env.funcs.(callee).arity in
        let args = List.map (rx env) args in
        (* match the callee's arity exactly, padding with zeros *)
        let rec fit n = function
          | _ when n = 0 -> []
          | a :: rest -> a :: fit (n - 1) rest
          | [] -> Builder.cint env.b 0 :: fit (n - 1) []
        in
        Builder.assign env.b (var env dst)
          (Builder.call_i env.b (fname callee) (fit arity args))
      end

(** Render a spec to a fresh IR program.  Total: never raises on any
    structurally well-formed spec. *)
let render (s : spec) : Prog.t =
  let prog = Builder.program ~entry:"main" in
  let slots = max 1 s.slots in
  Builder.global prog "g" ~bytes:(8 * slots) ();
  let nfuncs = Array.length s.funcs in
  Array.iteri
    (fun i (f : func_spec) ->
      let params = List.init f.arity (fun _ -> Rc_isa.Reg.Int) in
      ignore
        (Builder.define prog (fname i) ~params
           ?ret:(if i = 0 then None else Some Rc_isa.Reg.Int)
           (fun b ps ->
             let nvars = max (max 1 f.arity) f.nvars in
             let vars =
               Array.init nvars (fun v ->
                   match List.nth_opt ps v with
                   | Some p -> p
                   | None -> Builder.cint b 0)
             in
             let fvars =
               Array.init (max 1 f.nfvars) (fun _ -> Builder.cf b 0.0)
             in
             let env =
               { b; vars; fvars; g = Builder.addr b "g"; slots; nfuncs;
                 funcs = s.funcs }
             in
             List.iter (rstmt env) f.body;
             if i = 0 then begin
               (* Keep every variable live to the end and observable:
                  maximum pressure, and any clobber anywhere shows up
                  in the output stream. *)
               Array.iter (fun v -> Builder.emit b v) vars;
               Array.iter (fun v -> Builder.femit b v) fvars;
               Builder.halt b
             end
             else Builder.ret b (Some vars.(0)))))
    s.funcs;
  prog

(* --- spec (de)serialisation, for the regression corpus -------------------- *)

module J = Rc_obs.Json

let alu_name a = Rc_isa.Opcode.string_of_alu a
let fpu_name f = Rc_isa.Opcode.string_of_fpu f
let cond_name c = Rc_isa.Opcode.string_of_cond c

let of_name name table fallback =
  match Array.find_opt (fun x -> snd x = name) table with
  | Some (x, _) -> x
  | None -> fallback

let alu_table = Array.map (fun a -> (a, alu_name a)) alus
let fpu_table = Array.map (fun f -> (f, fpu_name f)) fpus
let cond_table = Array.map (fun c -> (c, cond_name c)) conds

let rec expr_to_json = function
  | Const n -> J.List [ J.Str "const"; J.Str (Int64.to_string n) ]
  | Var i -> J.List [ J.Str "var"; J.Int i ]
  | Bin (op, a, b) ->
      J.List [ J.Str "bin"; J.Str (alu_name op); expr_to_json a; expr_to_json b ]
  | Fcmp (c, a, b) ->
      J.List
        [ J.Str "fcmp"; J.Str (cond_name c); fexpr_to_json a; fexpr_to_json b ]
  | Ftoi a -> J.List [ J.Str "ftoi"; fexpr_to_json a ]

and fexpr_to_json = function
  | FConst x -> J.List [ J.Str "fconst"; J.Float x ]
  | FVar i -> J.List [ J.Str "fvar"; J.Int i ]
  | FBin (op, a, b) ->
      J.List
        [ J.Str "fbin"; J.Str (fpu_name op); fexpr_to_json a; fexpr_to_json b ]
  | Itof a -> J.List [ J.Str "itof"; expr_to_json a ]

let rec stmt_to_json = function
  | Set (v, e) -> J.List [ J.Str "set"; J.Int v; expr_to_json e ]
  | FSet (v, e) -> J.List [ J.Str "fset"; J.Int v; fexpr_to_json e ]
  | Emit e -> J.List [ J.Str "emit"; expr_to_json e ]
  | FEmit e -> J.List [ J.Str "femit"; fexpr_to_json e ]
  | Store (s, e) -> J.List [ J.Str "store"; J.Int s; expr_to_json e ]
  | Load (v, s) -> J.List [ J.Str "load"; J.Int v; J.Int s ]
  | If (c, a, b, t, e) ->
      J.List
        [
          J.Str "if"; J.Str (cond_name c); expr_to_json a; expr_to_json b;
          J.List (List.map stmt_to_json t); J.List (List.map stmt_to_json e);
        ]
  | Loop (v, n, body) ->
      J.List
        [ J.Str "loop"; J.Int v; J.Int n; J.List (List.map stmt_to_json body) ]
  | Call (d, c, args) ->
      J.List
        [ J.Str "call"; J.Int d; J.Int c; J.List (List.map expr_to_json args) ]

let to_json (s : spec) =
  J.Obj
    [
      ("seed", J.Int s.seed);
      ("slots", J.Int s.slots);
      ( "funcs",
        J.List
          (Array.to_list
             (Array.map
                (fun f ->
                  J.Obj
                    [
                      ("arity", J.Int f.arity);
                      ("nvars", J.Int f.nvars);
                      ("nfvars", J.Int f.nfvars);
                      ("body", J.List (List.map stmt_to_json f.body));
                    ])
                s.funcs)) );
    ]

exception Bad_spec of string

let jint = function J.Int n -> n | _ -> raise (Bad_spec "expected int")

let rec expr_of_json = function
  | J.List (J.Str "const" :: J.Str n :: _) -> Const (Int64.of_string n)
  | J.List (J.Str "var" :: i :: _) -> Var (jint i)
  | J.List [ J.Str "bin"; J.Str op; a; b ] ->
      Bin
        ( of_name op alu_table Rc_isa.Opcode.Add,
          expr_of_json a,
          expr_of_json b )
  | J.List [ J.Str "fcmp"; J.Str c; a; b ] ->
      Fcmp
        ( of_name c cond_table Rc_isa.Opcode.Eq,
          fexpr_of_json a,
          fexpr_of_json b )
  | J.List [ J.Str "ftoi"; a ] -> Ftoi (fexpr_of_json a)
  | _ -> raise (Bad_spec "bad expr")

and fexpr_of_json = function
  | J.List (J.Str "fconst" :: J.Float x :: _) -> FConst x
  | J.List (J.Str "fconst" :: J.Int x :: _) -> FConst (float_of_int x)
  | J.List (J.Str "fvar" :: i :: _) -> FVar (jint i)
  | J.List [ J.Str "fbin"; J.Str op; a; b ] ->
      FBin
        ( of_name op fpu_table Rc_isa.Opcode.Fadd,
          fexpr_of_json a,
          fexpr_of_json b )
  | J.List [ J.Str "itof"; a ] -> Itof (expr_of_json a)
  | _ -> raise (Bad_spec "bad fexpr")

let rec stmt_of_json = function
  | J.List [ J.Str "set"; v; e ] -> Set (jint v, expr_of_json e)
  | J.List [ J.Str "fset"; v; e ] -> FSet (jint v, fexpr_of_json e)
  | J.List [ J.Str "emit"; e ] -> Emit (expr_of_json e)
  | J.List [ J.Str "femit"; e ] -> FEmit (fexpr_of_json e)
  | J.List [ J.Str "store"; s; e ] -> Store (jint s, expr_of_json e)
  | J.List [ J.Str "load"; v; s ] -> Load (jint v, jint s)
  | J.List [ J.Str "if"; J.Str c; a; b; J.List t; J.List e ] ->
      If
        ( of_name c cond_table Rc_isa.Opcode.Eq,
          expr_of_json a,
          expr_of_json b,
          List.map stmt_of_json t,
          List.map stmt_of_json e )
  | J.List [ J.Str "loop"; v; n; J.List body ] ->
      Loop (jint v, jint n, List.map stmt_of_json body)
  | J.List [ J.Str "call"; d; c; J.List args ] ->
      Call (jint d, jint c, List.map expr_of_json args)
  | _ -> raise (Bad_spec "bad stmt")

(** @raise Bad_spec on a malformed document. *)
let of_json j =
  let get k = match J.member k j with Some v -> v | None -> raise (Bad_spec k) in
  let funcs =
    match get "funcs" with
    | J.List fs ->
        Array.of_list
          (List.map
             (fun f ->
               let g k =
                 match J.member k f with
                 | Some v -> v
                 | None -> raise (Bad_spec k)
               in
               {
                 arity = jint (g "arity");
                 nvars = jint (g "nvars");
                 nfvars = jint (g "nfvars");
                 body =
                   (match g "body" with
                   | J.List ss -> List.map stmt_of_json ss
                   | _ -> raise (Bad_spec "body"));
               })
             fs)
    | _ -> raise (Bad_spec "funcs")
  in
  { seed = jint (get "seed"); slots = jint (get "slots"); funcs }
