(** Admission pipeline for user-submitted kernel specs.

    [POST /compile], [rcc compile] and [rcc run --spec] all funnel
    their untrusted documents through {!of_string}: parse, strict
    decode ({!Gen.decode}, every rejection naming the JSON path of the
    offending node), then budget validation ({!Gen.validate}).  The
    typed error split mirrors the service's status mapping — malformed
    or structurally invalid documents are the client's 400, budget
    overruns its 413.

    An admitted spec becomes an ordinary {!Rc_workloads.Wutil.bench}
    ({!bench_of}) named by its content digest, so the whole harness —
    memo tables keyed by bench name, the trace cache and on-disk store
    keyed by [Image.fingerprint] — works on ad-hoc kernels unchanged,
    and the server and CLI agree on every key for the same document.

    The optional admission oracle ({!oracle}) locksteps a configurable
    cycle prefix of the compiled image against the sequential
    {!Rc_interp.Iexec} reference, the same differential check the
    fuzzer trusts arbitrary generated programs with. *)

module J = Rc_obs.Json

type error =
  | Malformed of string  (** parse/decode/validation failure: 400 *)
  | Too_large of string  (** budget-limit overrun: 413 *)

let error_detail = function Malformed m | Too_large m -> m

(** Decode and validate one already-parsed document. *)
let of_json j =
  match Gen.decode j with
  | Error m -> Error (Malformed m)
  | Ok s -> (
      match Gen.validate s with
      | Ok () -> Ok s
      | Error (`Invalid m) -> Error (Malformed m)
      | Error (`Limit m) -> Error (Too_large m))

(** Parse, decode and validate one spec document. *)
let of_string text =
  match J.of_string text with
  | Error m -> Error (Malformed ("malformed JSON: " ^ m))
  | Ok j -> of_json j

(** Canonical bytes of a spec: its {!Gen.to_json} rendering, which
    normalises omitted defaults, so a document and its round-trip have
    one identity. *)
let canonical s = J.to_string (Gen.to_json s)

(** Deterministic kernel id, ["k" ^ 12 hex digest chars] of the
    canonical bytes.  Server-assigned on [/compile] but reproducible
    offline: [rcc compile] on the same document prints the same id,
    which is how the CLI and service land on the same memo and store
    keys. *)
let id_of s = "k" ^ String.sub (Digest.to_hex (Digest.string (canonical s))) 0 12

(** The bench name a spec runs under: ["spec:<id>"]. *)
let bench_name s = "spec:" ^ id_of s

(** Wrap an admitted spec as a benchmark.  The build ignores the
    workload scale — a submitted kernel is its own fixed program — so
    its cells are identical under any context scale. *)
let bench_of s =
  {
    Rc_workloads.Wutil.name = bench_name s;
    kind = Rc_workloads.Wutil.Int_bench;
    description =
      Fmt.str "user-submitted kernel (%d nodes, %d function%s)" (Gen.size s)
        (Array.length s.funcs)
        (if Array.length s.funcs = 1 then "" else "s");
    build = (fun _scale -> Gen.render s);
  }

(** Outcome of the admission oracle. *)
type verdict =
  | Agree of { cycles : int; steps : int; complete : bool }
      (** no divergence; [complete] when the program halted within the
          prefix, false when only the prefix was checked *)
  | Diverged of Report.t

(** Lockstep the first [cycles] machine cycles of a compiled kernel
    against the {!Rc_interp.Iexec} reference under exactly the
    configuration the simulation will run ({!Oracle.config_of_options}).
    Running out of fuel without disagreement passes the prefix. *)
let oracle ~cycles (c : Rc_harness.Pipeline.compiled) =
  let cfg = Oracle.config_of_options c.Rc_harness.Pipeline.opts in
  match
    Lockstep.run ~fuel_cycles:cycles cfg c.Rc_harness.Pipeline.image
  with
  | Lockstep.Agree { cycles; steps } -> Agree { cycles; steps; complete = true }
  | Lockstep.Diverged r -> Diverged r
  | exception Failure m when m = "lockstep: machine out of fuel" ->
      Agree { cycles; steps = 0; complete = false }

let verdict_json = function
  | Agree { cycles; steps; complete } ->
      J.Obj
        [
          ("verdict", J.Str "agree");
          ("cycles", J.Int cycles);
          ("steps", J.Int steps);
          ("complete", J.Bool complete);
        ]
  | Diverged r ->
      J.Obj [ ("verdict", J.Str "diverged"); ("report", Report.to_json r) ]
