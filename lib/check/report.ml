(** Machine-readable divergence reports.

    Every oracle in this library reports failures through this one
    record, so `rcc check`, `rcc fuzz` and the CI artifact all speak
    the same schema (documented in DESIGN.md section 13):

    {v
    { "kind":    "lockstep" | "pass-oracle" | "exec-error",
      "stage":   pipeline pass name, or "simulate" for lockstep,
      "field":   what disagreed ("output", "ireg", "fmap", ...),
      "detail":  human-readable one-liner,
      "pc":      faulting instruction address (-1 when unknown),
      "cycle":   machine cycle of first divergence (-1 when unknown),
      "func":    enclosing function,
      "block":   enclosing basic-block label,
      "window":  disassembly around pc, ">" marks the fault }
    v} *)

open Rc_isa

type t = {
  kind : string;
  stage : string;
  field : string;
  detail : string;
  pc : int;  (** faulting instruction address; [-1] when unknown *)
  cycle : int;  (** machine cycle of first divergence; [-1] when unknown *)
  func : string;
  block : string;
  window : string list;
      (** disassembly around [pc]; the faulting line is marked [">"] *)
}

let v ?(stage = "simulate") ?(field = "") ?(pc = -1) ?(cycle = -1)
    ?(func = "") ?(block = "") ?(window = []) ~kind detail =
  { kind; stage; field; detail; pc; cycle; func; block; window }

(* --- source attribution --------------------------------------------------- *)

(* The assembler flattens functions contiguously, so the enclosing
   function of an address is the one with the greatest start not past
   it; likewise for block labels. *)
let enclosing_func (image : Image.t) pc =
  List.fold_left
    (fun best (name, addr) ->
      match best with
      | Some (_, b) when b >= addr -> best
      | _ when addr <= pc -> Some (name, addr)
      | _ -> best)
    None image.Image.func_addr

let enclosing_block (image : Image.t) pc =
  Hashtbl.fold
    (fun label addr best ->
      match best with
      | Some (_, b) when b >= addr -> best
      | _ when addr <= pc -> Some (label, addr)
      | _ -> best)
    image.Image.label_addr None

(** "name+off" of the function enclosing [pc], "" when unknown. *)
let func_at image pc =
  match enclosing_func image pc with
  | Some (name, addr) -> Fmt.str "%s+%d" name (pc - addr)
  | None -> ""

(** "L<label>" of the basic block enclosing [pc], "" when unknown. *)
let block_at image pc =
  match enclosing_block image pc with
  | Some (label, _) -> Fmt.str "L%d" label
  | None -> ""

(** Disassembly of the instructions around [pc] ([radius] each way),
    the line at [pc] marked with [">"]. *)
let window_at ?(radius = 4) (image : Image.t) pc =
  let code = image.Image.code in
  let lo = max 0 (pc - radius) and hi = min (Array.length code - 1) (pc + radius) in
  if lo > hi then []
  else
    List.init
      (hi - lo + 1)
      (fun k ->
        let a = lo + k in
        Fmt.str "%c %4d: %a" (if a = pc then '>' else ' ') a Insn.pp code.(a))

(** Fill [func]/[block]/[window] of a report from its [pc]. *)
let locate image r =
  if r.pc < 0 then r
  else
    {
      r with
      func = func_at image r.pc;
      block = block_at image r.pc;
      window = window_at image r.pc;
    }

(* --- rendering ------------------------------------------------------------ *)

let to_json r =
  Rc_obs.Json.(
    Obj
      [
        ("kind", Str r.kind);
        ("stage", Str r.stage);
        ("field", Str r.field);
        ("detail", Str r.detail);
        ("pc", Int r.pc);
        ("cycle", Int r.cycle);
        ("func", Str r.func);
        ("block", Str r.block);
        ("window", List (List.map (fun l -> Str l) r.window));
      ])

let of_json j =
  let str k = match Rc_obs.Json.member k j with Some (Str s) -> s | _ -> "" in
  let int k = match Rc_obs.Json.member k j with Some (Int n) -> n | _ -> -1 in
  let window =
    match Rc_obs.Json.member "window" j with
    | Some (List ls) ->
        List.filter_map
          (function Rc_obs.Json.Str s -> Some s | _ -> None)
          ls
    | _ -> []
  in
  {
    kind = str "kind";
    stage = str "stage";
    field = str "field";
    detail = str "detail";
    pc = int "pc";
    cycle = int "cycle";
    func = str "func";
    block = str "block";
    window;
  }

let pp ppf r =
  Fmt.pf ppf "@[<v>%s divergence in %s: %s%s@,  %s@]" r.kind r.stage
    (if r.field = "" then "" else r.field ^ " — ")
    r.detail
    (match (r.func, r.block) with
    | "", "" -> Fmt.str "pc=%d cycle=%d" r.pc r.cycle
    | f, b -> Fmt.str "at %s (block %s), pc=%d cycle=%d" f b r.pc r.cycle);
  if r.window <> [] then
    Fmt.pf ppf "@,@[<v>%a@]" Fmt.(list ~sep:cut string) r.window
