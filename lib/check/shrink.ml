(** Greedy spec shrinking.

    Given a failing {!Gen.spec} and a predicate that re-runs the
    failure, repeatedly apply the first single-step reduction that
    still reproduces, until no reduction does.  Reductions are ordered
    coarse-to-fine — drop half a body, drop a statement, unwrap a
    loop, inline an [If] arm, collapse a call, simplify an expression
    — so the minimum is usually reached in few (expensive) predicate
    evaluations.

    All reductions preserve the renderer's invariants by construction:
    they only remove or simplify nodes, never renumber functions or
    variables, so every candidate renders and terminates
    (see {!Gen.render}). *)

open Gen

(* Lazy sequence helpers: candidates are generated on demand because
   evaluating the predicate dominates the cost. *)
let ( @: ) = Seq.cons
let seq_map_nth xs i f = List.mapi (fun k x -> if k = i then f x else x) xs

let rec expr_shrinks (e : expr) : expr Seq.t =
  match e with
  | Const 0L -> Seq.empty
  | Const _ -> Seq.return (Const 0L)
  | Var _ -> Seq.return (Const 0L)
  | Bin (op, a, b) ->
      a @: b
      @: Seq.append
           (Seq.map (fun a' -> Bin (op, a', b)) (expr_shrinks a))
           (Seq.map (fun b' -> Bin (op, a, b')) (expr_shrinks b))
  | Fcmp (_, _, _) -> Seq.return (Const 0L)
  | Ftoi f -> Const 0L @: Seq.map (fun f' -> Ftoi f') (fexpr_shrinks f)

and fexpr_shrinks (e : fexpr) : fexpr Seq.t =
  match e with
  | FConst 0.0 -> Seq.empty
  | FConst _ -> Seq.return (FConst 0.0)
  | FVar _ -> Seq.return (FConst 0.0)
  | FBin (op, a, b) ->
      a @: b
      @: Seq.append
           (Seq.map (fun a' -> FBin (op, a', b)) (fexpr_shrinks a))
           (Seq.map (fun b' -> FBin (op, a, b')) (fexpr_shrinks b))
  | Itof a -> FConst 0.0 @: Seq.map (fun a' -> Itof a') (expr_shrinks a)

let rec stmt_shrinks (s : stmt) : stmt Seq.t =
  match s with
  | Set (v, e) -> Seq.map (fun e' -> Set (v, e')) (expr_shrinks e)
  | FSet (v, e) -> Seq.map (fun e' -> FSet (v, e')) (fexpr_shrinks e)
  | Emit e -> Seq.map (fun e' -> Emit e') (expr_shrinks e)
  | FEmit e -> Seq.map (fun e' -> FEmit e') (fexpr_shrinks e)
  | Store (slot, e) -> Seq.map (fun e' -> Store (slot, e')) (expr_shrinks e)
  | Load _ -> Seq.empty
  | If (c, a, b, then_, else_) ->
      (* arm-inlining lives in {!body_shrinks}; here: shrink within *)
      Seq.append
        (Seq.map (fun t -> If (c, a, b, t, else_)) (body_shrinks then_))
        (Seq.append
           (Seq.map (fun e' -> If (c, a, b, then_, e')) (body_shrinks else_))
           (Seq.append
              (Seq.map (fun a' -> If (c, a', b, then_, else_))
                 (expr_shrinks a))
              (Seq.map (fun b' -> If (c, a, b', then_, else_))
                 (expr_shrinks b))))
  | Loop (v, n, body) ->
      Seq.append
        (if n > 1 then Seq.return (Loop (v, 1, body)) else Seq.empty)
        (Seq.map (fun b -> Loop (v, n, b)) (body_shrinks body))
  | Call (dst, _, _) -> Seq.return (Set (dst, Const 0L))

(* Reductions of a statement list: drop the front/back half, drop one
   statement, inline one compound statement's body, shrink one
   statement in place. *)
and body_shrinks (body : stmt list) : stmt list Seq.t =
  let n = List.length body in
  let halves =
    if n >= 2 then
      let k = n / 2 in
      let front = List.filteri (fun i _ -> i < k) body in
      let back = List.filteri (fun i _ -> i >= k) body in
      front @: Seq.return back
    else Seq.empty
  in
  let drops =
    Seq.init n (fun i -> List.filteri (fun k _ -> k <> i) body)
  in
  let inlines =
    Seq.concat
      (Seq.init n (fun i ->
           match List.nth body i with
           | If (_, _, _, t, e) ->
               Seq.return
                 (List.concat_map
                    (fun (k, x) -> if k = i then t @ e else [ x ])
                    (List.mapi (fun k x -> (k, x)) body))
           | Loop (_, _, b) ->
               Seq.return
                 (List.concat_map
                    (fun (k, x) -> if k = i then b else [ x ])
                    (List.mapi (fun k x -> (k, x)) body))
           | _ -> Seq.empty))
  in
  let in_place =
    Seq.concat
      (Seq.init n (fun i ->
           Seq.map
             (fun s' -> seq_map_nth body i (fun _ -> s'))
             (stmt_shrinks (List.nth body i))))
  in
  Seq.append halves (Seq.append drops (Seq.append inlines in_place))

(** One-step reductions of a whole spec, coarsest first: empty a
    helper's body (call sites keep working — the helper then just
    returns its first variable), then reduce each function's body. *)
let candidates (s : spec) : spec Seq.t =
  let empty_helpers =
    Seq.concat
      (Seq.init (Array.length s.funcs) (fun i ->
           if i = 0 || s.funcs.(i).body = [] then Seq.empty
           else
             Seq.return
               {
                 s with
                 funcs =
                   Array.mapi
                     (fun k f -> if k = i then { f with body = [] } else f)
                     s.funcs;
               }))
  in
  let body_reductions =
    Seq.concat
      (Seq.init (Array.length s.funcs) (fun i ->
           Seq.map
             (fun b ->
               {
                 s with
                 funcs =
                   Array.mapi
                     (fun k f -> if k = i then { f with body = b } else f)
                     s.funcs;
               })
             (body_shrinks s.funcs.(i).body)))
  in
  Seq.append empty_helpers body_reductions

(** Greedily minimise [s] under [reproduces] (which must hold for [s]
    itself).  [max_evals] bounds predicate evaluations, so shrinking a
    pathological case degrades to a partial shrink, never a hang.
    Returns the smallest reproducing spec found and the number of
    predicate evaluations spent. *)
let shrink ?(max_evals = 400) ~reproduces (s : spec) =
  let evals = ref 0 in
  let try_one c =
    if !evals >= max_evals then None
    else begin
      incr evals;
      if reproduces c then Some c else None
    end
  in
  let rec go current =
    if !evals >= max_evals then current
    else
      match Seq.find_map try_one (candidates current) with
      | Some smaller -> go smaller
      | None -> current
  in
  let result = go s in
  (result, !evals)
