(** Validation of user-facing numeric CLI arguments, shared by
    `rcc trace` and `rcc fuzz` and unit-tested directly.  Each parser
    returns a distinct, actionable message for each way an input can be
    wrong, instead of a silently-empty window or a garbage run. *)

(** "LO:HI", a half-open cycle window: both bounds non-negative
    integers, LO < HI. *)
let cycle_window s =
  match String.split_on_char ':' s with
  | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | None, _ | _, None ->
          Error (Fmt.str "bad cycle window %S: bounds must be integers" s)
      | Some lo, Some hi when lo < 0 || hi < 0 ->
          Error
            (Fmt.str "bad cycle window %S: bounds must be non-negative" s)
      | Some lo, Some hi when lo >= hi ->
          Error
            (Fmt.str
               "bad cycle window %S: LO must be below HI (the window is \
                half-open)"
               s)
      | Some lo, Some hi -> Ok (lo, hi))
  | _ -> Error (Fmt.str "bad cycle window %S: expected LO:HI" s)

(** A non-negative integer (e.g. `--seed`). *)
let seed s =
  match int_of_string_opt s with
  | None -> Error (Fmt.str "bad seed %S: expected an integer" s)
  | Some n when n < 0 -> Error (Fmt.str "bad seed %d: must be non-negative" n)
  | Some n -> Ok n

(** A positive integer (e.g. `--count`, `--jobs`). *)
let positive ~what s =
  match int_of_string_opt s with
  | None -> Error (Fmt.str "bad %s %S: expected an integer" what s)
  | Some n when n < 1 -> Error (Fmt.str "bad %s %d: must be at least 1" what n)
  | Some n -> Ok n

let count = positive ~what:"count"
