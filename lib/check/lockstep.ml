(** Lockstep co-simulation: the cycle-accurate machine against the
    sequential {!Rc_interp.Iexec} oracle on the same image.

    The machine executes functionally at issue, so after every cycle
    its architectural state (registers, maps, PSW, memory, output) must
    equal the oracle's state after the same number of dynamic
    instructions.  We therefore step the oracle by each cycle's issue
    count and compare the complete state at every cycle boundary — a
    strictly stronger check than the basic-block granularity the
    divergence is reported at, for the same price.

    The first disagreement stops the run and is reported with the
    faulting address, enclosing function and block, and a disassembled
    window — not a final-checksum mismatch. *)

open Rc_isa
open Rc_core
module Machine = Rc_machine.Machine
module Iexec = Rc_interp.Iexec

type result =
  | Agree of { cycles : int; steps : int }
  | Diverged of Report.t

(* --- state comparison ----------------------------------------------------- *)

(* Floats compare as bit patterns so NaNs and signed zeros count as
   what they are. *)
let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let find_reg_mismatch (m : Machine.t) (o : Iexec.t) =
  let bad = ref None in
  Array.iteri
    (fun p v ->
      if !bad = None && not (Int64.equal v o.Iexec.iregs.(p)) then
        bad :=
          Some
            ( "ireg",
              Fmt.str "r%d: machine %Ld, oracle %Ld" p v o.Iexec.iregs.(p) ))
    m.Machine.iregs;
  Array.iteri
    (fun p v ->
      if !bad = None && not (float_eq v o.Iexec.fregs.(p)) then
        bad :=
          Some
            ( "freg",
              Fmt.str "f%d: machine %h, oracle %h" p v o.Iexec.fregs.(p) ))
    m.Machine.fregs;
  !bad

(* Entry-by-entry, not [Map_table.equal]: the oracle may deliberately
   run a different reset model ([?oracle_model]), and the question is
   whether the architectural mapping state itself diverged. *)
let map_mismatch name (a : Map_table.t) (b : Map_table.t) =
  let bad = ref None in
  for i = Map_table.entries a - 1 downto 0 do
    if
      a.Map_table.read_map.(i) <> b.Map_table.read_map.(i)
      || a.Map_table.write_map.(i) <> b.Map_table.write_map.(i)
    then
      bad :=
        Some
          ( name,
            Fmt.str "%s[%d]: machine r->%d w->%d, oracle r->%d w->%d" name i
              a.Map_table.read_map.(i)
              a.Map_table.write_map.(i)
              b.Map_table.read_map.(i)
              b.Map_table.write_map.(i) )
  done;
  !bad

(* The machine's output is a buffer in emission order; the oracle's is
   a reversed list.  Walk the oracle list backwards down the buffer. *)
let output_mismatch (m : Machine.t) (o : Iexec.t) =
  let n = m.Machine.out_len and b = o.Iexec.out_rev in
  if n <> List.length b then
    Some (Fmt.str "machine emitted %d values, oracle %d" n (List.length b))
  else
    let bad = ref None in
    List.iteri
      (fun j vb ->
        let i = n - 1 - j in
        let va = m.Machine.out.(i) in
        if not (Int64.equal va vb) then
          bad := Some (Fmt.str "output[%d]: machine %Ld, oracle %Ld" i va vb))
      b;
    !bad

let compare_state (m : Machine.t) (o : Iexec.t) =
  if m.Machine.halted <> o.Iexec.halted then
    Some
      ( "halted",
        Fmt.str "machine %shalted, oracle %shalted"
          (if m.Machine.halted then "" else "not ")
          (if o.Iexec.halted then "" else "not ") )
  else if m.Machine.pc <> o.Iexec.pc && not m.Machine.halted then
    Some ("pc", Fmt.str "machine pc %d, oracle pc %d" m.Machine.pc o.Iexec.pc)
  else
    match output_mismatch m o with
    | Some d -> Some ("output", d)
    | None -> (
        match find_reg_mismatch m o with
        | Some bad -> Some bad
        | None -> (
            match map_mismatch "imap" m.Machine.imap o.Iexec.imap with
            | Some bad -> Some bad
            | None -> (
                match map_mismatch "fmap" m.Machine.fmap o.Iexec.fmap with
                | Some bad -> Some bad
                | None ->
                    if
                      m.Machine.psw.Psw.map_enable
                      <> o.Iexec.psw.Psw.map_enable
                    then
                      Some
                        ( "psw",
                          Fmt.str "map_enable: machine %b, oracle %b"
                            m.Machine.psw.Psw.map_enable
                            o.Iexec.psw.Psw.map_enable )
                    else None)))

let mem_mismatch (m : Machine.t) (o : Iexec.t) =
  let n = min (Bytes.length m.Machine.mem) (Bytes.length o.Iexec.mem) in
  let bad = ref None in
  let i = ref 0 in
  while !bad = None && !i < n do
    if Bytes.get m.Machine.mem !i <> Bytes.get o.Iexec.mem !i then
      bad :=
        Some
          (Fmt.str "mem[0x%x]: machine %d, oracle %d" !i
             (Char.code (Bytes.get m.Machine.mem !i))
             (Char.code (Bytes.get o.Iexec.mem !i)));
    incr i
  done;
  !bad

(* --- the lockstep loop ---------------------------------------------------- *)

(** Run [image] to completion on both sides.  [oracle_model] overrides
    the oracle's auto-reset model (used by tests to inject a
    model-semantics divergence on purpose); it defaults to the
    machine's.  [fuel_cycles] bounds the machine run. *)
let run ?oracle_model ?(fuel_cycles = 100_000_000) (cfg : Rc_machine.Config.t)
    (image : Image.t) =
  let m = Machine.create cfg image in
  let o =
    Iexec.create ~arch:true
      ~model:(Option.value oracle_model ~default:cfg.Rc_machine.Config.model)
      ?trap_handler:cfg.Rc_machine.Config.trap_handler
      ~ifile:cfg.Rc_machine.Config.ifile ~ffile:cfg.Rc_machine.Config.ffile
      image
  in
  let diverged = ref None in
  (try
     while !diverged = None && not m.Machine.halted do
       if m.Machine.stats.Machine.cycles > fuel_cycles then
         failwith "lockstep: machine out of fuel";
       let issued0 = m.Machine.stats.Machine.issued in
       let pc0 = m.Machine.pc in
       Machine.run_cycle m;
       let delta = m.Machine.stats.Machine.issued - issued0 in
       for _ = 1 to delta do
         Iexec.step o
       done;
       match compare_state m o with
       | None -> ()
       | Some (field, detail) ->
           (* The faulting instruction is inside the group issued this
              cycle; point the report at the group's start. *)
           diverged :=
             Some
               (Report.locate image
                  (Report.v ~kind:"lockstep" ~field ~pc:pc0
                     ~cycle:m.Machine.stats.Machine.cycles detail))
     done
   with
  | Machine.Simulation_error msg ->
      diverged :=
        Some
          (Report.locate image
             (Report.v ~kind:"exec-error" ~field:"machine" ~pc:m.Machine.pc
                ~cycle:m.Machine.stats.Machine.cycles
                ("machine raised: " ^ msg)))
  | Iexec.Exec_error msg ->
      diverged :=
        Some
          (Report.locate image
             (Report.v ~kind:"exec-error" ~field:"oracle" ~pc:o.Iexec.pc
                ~cycle:m.Machine.stats.Machine.cycles
                ("oracle raised: " ^ msg))));
  match !diverged with
  | Some r -> Diverged r
  | None -> (
      match mem_mismatch m o with
      | Some detail ->
          Diverged
            (Report.v ~kind:"lockstep" ~field:"memory"
               ~cycle:m.Machine.stats.Machine.cycles detail)
      | None ->
          Agree
            {
              cycles = m.Machine.stats.Machine.cycles;
              steps = o.Iexec.steps;
            })
