(** Pass-level semantic preservation.

    The pipeline's [on_stage] hook hands each stage's output to this
    oracle, which re-executes it against the pre-optimisation reference
    run and attributes the first observable difference to the exact
    pass that introduced it:

    - after the IR stages ("classical-opt"/"ilp-opt", "legalize") the
      {!Rc_interp.Interp} interpreter re-runs the transformed IR;
    - after "lower" and "schedule" the machine code is still in
      physical form, so it is assembled into a throwaway image and
      executed by {!Rc_interp.Iexec} with the mapping hardware off;
    - after "rc-lower" and "assemble" the code is in architectural form
      and [Iexec] executes it through the mapping tables under the
      configuration's model.

    Every check compares the full output stream and, for machine-code
    stages, the final data segment.  [sabotage] lets tests mutate a
    stage's output in flight to prove a planted miscompile is caught
    and named. *)

open Rc_isa
open Rc_harness
module Interp = Rc_interp.Interp
module Iexec = Rc_interp.Iexec

exception Fail of Report.t

(** Reference outcome plus the shared front half of the pipeline. *)
type prep = { prepared : Pipeline.prepared; baseline : Interp.outcome }

(* First index where two output streams differ, with a description. *)
let output_diff (expected : int64 list) (got : int64 list) =
  let rec go i = function
    | [], [] -> None
    | e :: _, [] -> Some (i, Fmt.str "output[%d]: expected %Ld, stream ended" i e)
    | [], g :: _ -> Some (i, Fmt.str "output[%d]: unexpected extra %Ld" i g)
    | e :: es, g :: gs ->
        if Int64.equal e g then go (i + 1) (es, gs)
        else Some (i, Fmt.str "output[%d]: expected %Ld, got %Ld" i e g)
  in
  go 0 (expected, got)

let check_ir ~stage ~(baseline : Interp.outcome) prog =
  let out =
    try Interp.run prog
    with e ->
      raise
        (Fail
           (Report.v ~kind:"exec-error" ~stage ~field:"interp"
              (Fmt.str "interpreter raised: %s" (Printexc.to_string e))))
  in
  match output_diff baseline.Interp.output out.Interp.output with
  | None -> ()
  | Some (i, detail) ->
      raise
        (Fail
           (Report.v ~kind:"pass-oracle" ~stage ~field:"output"
              (Fmt.str "%s (first difference at output index %d)" detail i)))

let data_segment_diff (baseline : Interp.outcome) (mem : Bytes.t) =
  let lo = Image.data_base and hi = baseline.Interp.data_end in
  let bad = ref None in
  let a = ref lo in
  while !bad = None && !a < hi do
    if
      !a < Bytes.length baseline.Interp.mem
      && !a < Bytes.length mem
      && Bytes.get baseline.Interp.mem !a <> Bytes.get mem !a
    then
      bad :=
        Some
          (Fmt.str "global data at 0x%x: expected %d, got %d" !a
             (Char.code (Bytes.get baseline.Interp.mem !a))
             (Char.code (Bytes.get mem !a)));
    incr a
  done;
  !bad

let check_image ~stage ~arch ~model ~ifile ~ffile ~(baseline : Interp.outcome)
    (image : Image.t) =
  let exec = Iexec.create ~arch ~model ~ifile ~ffile image in
  (try Iexec.run ~fuel:200_000_000 exec
   with Iexec.Exec_error msg ->
     raise
       (Fail
          (Report.locate image
             (Report.v ~kind:"exec-error" ~stage ~field:"iexec"
                ~pc:exec.Iexec.pc
                (Fmt.str "oracle executor raised: %s" msg)))));
  (match output_diff baseline.Interp.output (Iexec.output exec) with
  | None -> ()
  | Some (i, detail) ->
      (* The emit site of the first wrong element names the faulting
         basic block; a truncated stream points past the last emit. *)
      let pcs = Array.of_list (Iexec.output_pcs exec) in
      let pc =
        if i < Array.length pcs then pcs.(i)
        else if Array.length pcs > 0 then pcs.(Array.length pcs - 1)
        else -1
      in
      raise
        (Fail
           (Report.locate image
              (Report.v ~kind:"pass-oracle" ~stage ~field:"output" ~pc
                 (Fmt.str "%s (first difference at output index %d)" detail i)))));
  match data_segment_diff baseline exec.Iexec.mem with
  | None -> ()
  | Some detail ->
      raise
        (Fail (Report.v ~kind:"pass-oracle" ~stage ~field:"memory" detail))

let check_mcode ~stage ~arch ~model ~ifile ~ffile ~baseline mcode =
  (* [Image.assemble] never mutates its input, so assembling mid-flight
     views is safe. *)
  let image =
    try Image.assemble mcode
    with e ->
      raise
        (Fail
           (Report.v ~kind:"exec-error" ~stage ~field:"assemble"
              (Fmt.str "assembly of stage output failed: %s"
                 (Printexc.to_string e))))
  in
  check_image ~stage ~arch ~model ~ifile ~ffile ~baseline image

(* --- entry points --------------------------------------------------------- *)

let apply_sabotage sabotage stage view =
  match sabotage with
  | Some (s, f) when s = stage -> f view
  | _ -> ()

(** Reference-run a fresh program and push it through the shared
    preparation stages, re-interpreting after each one.  [sabotage]
    [(stage, f)] mutates that stage's output before it is checked. *)
let prepare_checked ?sabotage ~opt prog =
  try
    let baseline =
      try Interp.run prog
      with e ->
        raise
          (Fail
             (Report.v ~kind:"exec-error" ~stage:"baseline" ~field:"interp"
                (Fmt.str "reference interpretation failed: %s"
                   (Printexc.to_string e))))
    in
    let on_stage stage view =
      apply_sabotage sabotage stage view;
      match view with
      | Pipeline.Ir p -> check_ir ~stage ~baseline p
      | Pipeline.Machine_code _ | Pipeline.Img _ -> ()
    in
    Ok { prepared = Pipeline.prepare ~on_stage ~opt prog; baseline }
  with Fail r -> Error r

(** Compile a checked preparation under [opts], re-executing after
    every back-end stage.  On success the compiled result is ready for
    {!Lockstep.run}. *)
let compile_checked ?sabotage (opts : Pipeline.options) (prep : prep) =
  let ifile, ffile = Pipeline.files opts in
  (* The back end is checked against the post-legalize reference run
     (whose output {!prepare_checked} already proved equal to the
     pristine program's): the optimiser may legitimately rewrite dead
     global stores, so final-memory comparison is only meaningful
     between the optimised IR and the code generated from it. *)
  let baseline = prep.prepared.Pipeline.outcome in
  let on_stage stage view =
    apply_sabotage sabotage stage view;
    match (view : Pipeline.stage_view) with
    | Pipeline.Ir _ -> ()
    | Pipeline.Machine_code mc ->
        let arch = stage = "rc-lower" in
        let model = opts.Pipeline.model in
        check_mcode ~stage ~arch ~model ~ifile ~ffile ~baseline mc
    | Pipeline.Img _ ->
        (* The "rc-lower" check already assembled and executed this
           exact machine code through the same assembler, so re-running
           the image here could never disagree; the lockstep oracle
           covers the image itself. *)
        ()
  in
  try Ok (Pipeline.compile_prepared ~on_stage opts prep.prepared)
  with
  | Fail r -> Error r
  | Invalid_argument msg ->
      Error
        (Report.v ~kind:"exec-error" ~stage:"pipeline" ~field:"compile" msg)

(** The machine configuration {!Rc_harness.Pipeline.simulate} would
    build for [opts] — shared here so `rcc check` and the fuzzer drive
    {!Lockstep.run} under exactly the simulated configuration. *)
let config_of_options (opts : Pipeline.options) =
  let ifile, ffile = Pipeline.files opts in
  Rc_machine.Config.v ~issue:opts.Pipeline.issue
    ~mem_channels:opts.Pipeline.mem_channels ~lat:opts.Pipeline.lat ~ifile
    ~ffile ~model:opts.Pipeline.model
    ?connect_dispatch:opts.Pipeline.connect_dispatch
    ~extra_stage:opts.Pipeline.extra_stage ()
