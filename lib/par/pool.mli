(** A fixed-size domain pool with a hand-rolled Mutex/Condition task
    queue and a deterministic fan-out.

    [create ~jobs] spawns [jobs - 1] worker domains; the caller of
    {!map_cells} helps drain the queue, so exactly [jobs] domains
    compute.  With [jobs = 1] no domain is spawned and cells run inline
    (the pool degenerates to [List.map]). *)

type t

(** [create ~jobs] makes a pool of [max 1 jobs] computing domains. *)
val create : jobs:int -> t

val jobs : t -> int

(** Per-domain telemetry, so [--jobs] scaling loss is attributable:
    cells executed, wall time inside cells, and wall time blocked
    waiting for work. *)
type domain_stats = {
  d_slot : int;  (** 0 = the calling domain, 1.. = spawned workers *)
  d_tasks : int;  (** cells this domain executed *)
  d_busy_s : float;  (** wall time spent inside cells *)
  d_wait_s : float;  (** wall time spent blocked waiting for work *)
}

(** One row per domain, slot order.  Nested fan-outs from a worker
    domain are charged to that worker's slot; external domains draining
    the queue are charged to slot 0. *)
val stats : t -> domain_stats list

(** [map_cells t f xs] evaluates [f] over every cell of [xs] on the
    pool and returns the results in the order of [xs], regardless of
    which domain ran which cell.  If cells raise, every cell still
    runs, and the exception of the lowest-index failing cell is
    re-raised with its backtrace.  Nested calls from inside a cell are
    safe: the waiting domain keeps draining the queue. *)
val map_cells : t -> ('a -> 'b) -> 'a list -> 'b list

(** [submit t task] enqueues [task] to run on a worker domain and
    returns immediately — the fire-and-forget complement of
    {!map_cells}, for callers (such as a server's accept loop) that
    must not block on the work.  With [jobs = 1] (no spawned workers)
    or after {!shutdown} the task runs inline in the caller.  An
    exception escaping [task] is reported on stderr and dropped — a
    submitted task has no caller to re-raise into. *)
val submit : t -> (unit -> unit) -> unit

(** Stop the workers and join them.  The pool must not be used after
    [shutdown]; shutting down twice — even concurrently, e.g. a signal
    handler's drain racing the normal exit path — is harmless. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] over a fresh pool and always shuts it
    down. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
