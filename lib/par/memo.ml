(** Domain-safe, single-flight memo table.

    [find_or_compute] guarantees each key is computed exactly once even
    when several domains ask for it concurrently: the first caller
    computes while later callers block on a condition variable until
    the value (or the failure) is published.  The compute function runs
    outside the lock, so independent keys are computed in parallel. *)

type 'v state = Running | Done of 'v | Failed of exn

type ('k, 'v) t = {
  lock : Mutex.t;
  published : Condition.t;
  tbl : ('k, 'v state) Hashtbl.t;
}

let create n =
  {
    lock = Mutex.create ();
    published = Condition.create ();
    tbl = Hashtbl.create n;
  }

let find_or_compute t k f =
  Mutex.lock t.lock;
  let rec await () =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done v) ->
        Mutex.unlock t.lock;
        v
    | Some (Failed e) ->
        Mutex.unlock t.lock;
        raise e
    | Some Running ->
        Condition.wait t.published t.lock;
        await ()
    | None -> (
        Hashtbl.replace t.tbl k Running;
        Mutex.unlock t.lock;
        match f () with
        | v ->
            Mutex.lock t.lock;
            Hashtbl.replace t.tbl k (Done v);
            Condition.broadcast t.published;
            Mutex.unlock t.lock;
            v
        | exception e ->
            Mutex.lock t.lock;
            Hashtbl.replace t.tbl k (Failed e);
            Condition.broadcast t.published;
            Mutex.unlock t.lock;
            raise e)
  in
  await ()

let find_opt t k =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl k with Some (Done v) -> Some v | _ -> None
  in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let bindings t =
  Mutex.lock t.lock;
  let rows =
    Hashtbl.fold
      (fun k v acc -> match v with Done v -> (k, v) :: acc | _ -> acc)
      t.tbl []
  in
  Mutex.unlock t.lock;
  rows
