(** Domain-safe, single-flight memo table: each key is computed exactly
    once, concurrent callers of an in-flight key block until its value
    (or failure) is published. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t

(** [find_or_compute t k f] returns the cached value for [k], or runs
    [f ()] (outside the lock) and caches it.  If [f] raised, the
    failure is cached and re-raised for every caller of [k]. *)
val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** The cached value for [k], if already computed. *)
val find_opt : ('k, 'v) t -> 'k -> 'v option

(** Number of keys present (computed, failed or in flight). *)
val length : ('k, 'v) t -> int

(** Snapshot of the successfully computed bindings, in no particular
    order (hash order) — sort by key for a deterministic view. *)
val bindings : ('k, 'v) t -> ('k * 'v) list
