(** A fixed-size domain pool with a hand-rolled Mutex/Condition task
    queue.

    [create ~jobs] spawns [jobs - 1] worker domains; the domain that
    calls {!map_cells} participates in draining the queue, so exactly
    [jobs] domains compute at any time.  With [jobs = 1] no domain is
    ever spawned and every cell runs inline in the caller — the
    degenerate pool is just [List.map].

    {!map_cells} is deterministic: results are collected by cell index,
    so the output order is the input order regardless of which domain
    ran which cell.  The caller helping to drain the queue also makes
    nested fan-outs safe: a cell that itself calls [map_cells] executes
    other cells while it waits instead of deadlocking the pool. *)

(** Mutable per-domain telemetry; slot 0 belongs to the calling domain,
    slots 1..jobs-1 to the spawned workers.  Written only with the pool
    lock held (task bookkeeping) or by the owning domain. *)
type slot = {
  mutable s_tasks : int;
  mutable s_busy : float;
  mutable s_wait : float;
}

type domain_stats = {
  d_slot : int;  (** 0 = the calling domain, 1.. = spawned workers *)
  d_tasks : int;  (** cells this domain executed *)
  d_busy_s : float;  (** wall time spent inside cells *)
  d_wait_s : float;  (** wall time spent blocked waiting for work *)
}

type t = {
  jobs : int;
  lock : Mutex.t;
  has_work : Condition.t;  (** signalled when a task is queued or on close *)
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable domains : unit Domain.t list;
  slots : slot array;  (** length [jobs]; telemetry, see {!stats} *)
}

let jobs t = t.jobs
let now () = Unix.gettimeofday ()

(* Which telemetry slot the current domain charges its work to: workers
   set their 1-based slot index on startup, every other domain (the pool
   creator, or an outsider draining the queue) charges slot 0. *)
let slot_key = Domain.DLS.new_key (fun () -> 0)

let my_slot t =
  let k = Domain.DLS.get slot_key in
  if k >= 0 && k < Array.length t.slots then k else 0

(* Charges [dt] of [kind] to the calling domain's slot.  The pool lock
   must be held. *)
let charge t kind dt =
  let s = t.slots.(my_slot t) in
  match kind with
  | `Busy ->
      s.s_tasks <- s.s_tasks + 1;
      s.s_busy <- s.s_busy +. dt
  | `Wait -> s.s_wait <- s.s_wait +. dt

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task -> Mutex.unlock t.lock; Some task
    | None ->
        if t.closing then begin Mutex.unlock t.lock; None end
        else begin
          let t0 = now () in
          Condition.wait t.has_work t.lock;
          charge t `Wait (now () -. t0);
          next ()
        end
  in
  match next () with
  | None -> ()
  | Some task -> task (); worker_loop t

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      closing = false;
      domains = [];
      slots = Array.init jobs (fun _ -> { s_tasks = 0; s_busy = 0.0; s_wait = 0.0 });
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set slot_key (i + 1);
            worker_loop t));
  t

let stats t =
  Mutex.lock t.lock;
  let rows =
    Array.to_list
      (Array.mapi
         (fun i s ->
           { d_slot = i; d_tasks = s.s_tasks; d_busy_s = s.s_busy; d_wait_s = s.s_wait })
         t.slots)
  in
  Mutex.unlock t.lock;
  rows

let shutdown t =
  (* Take the domain list while holding the lock so concurrent shutdowns
     (e.g. a signal-path drain racing the normal exit path) each join a
     disjoint — possibly empty — set of workers instead of both joining
     the same domain. *)
  Mutex.lock t.lock;
  t.closing <- true;
  Condition.broadcast t.has_work;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join ds

let submit t task =
  let charged () =
    let t0 = now () in
    (try task ()
     with e ->
       (* A submitted task has no caller to re-raise into; report and
          keep the worker alive. *)
       Printf.eprintf "Pool.submit: task raised %s\n%!" (Printexc.to_string e));
    let dt = now () -. t0 in
    Mutex.lock t.lock;
    charge t `Busy dt;
    Mutex.unlock t.lock
  in
  if t.jobs = 1 then charged ()
  else begin
    Mutex.lock t.lock;
    if t.closing then begin
      (* No worker will ever drain the queue again: run inline rather
         than dropping the task. *)
      Mutex.unlock t.lock;
      charged ()
    end
    else begin
      Queue.add charged t.queue;
      Condition.signal t.has_work;
      Mutex.unlock t.lock
    end
  end

(** One fan-out's completion state, shared by its cells. *)
type 'b batch = {
  results : 'b option array;
  error : (exn * Printexc.raw_backtrace) option array;
      (** per-cell so the lowest-index failure is reported
          deterministically *)
  mutable pending : int;
  all_done : Condition.t;
}

let run_cell batch f k x =
  (match f x with
  | v -> batch.results.(k) <- Some v
  | exception e ->
      batch.error.(k) <- Some (e, Printexc.get_raw_backtrace ()))

let map_cells t f xs =
  match xs with
  | [] -> []
  | xs when t.jobs = 1 ->
      (* degenerate pool: inline, but still attribute the work *)
      List.map
        (fun x ->
          let t0 = now () in
          let v = f x in
          let dt = now () -. t0 in
          let s = t.slots.(0) in
          s.s_tasks <- s.s_tasks + 1;
          s.s_busy <- s.s_busy +. dt;
          v)
        xs
  | xs ->
      let cells = Array.of_list xs in
      let n = Array.length cells in
      let batch =
        {
          results = Array.make n None;
          error = Array.make n None;
          pending = n;
          all_done = Condition.create ();
        }
      in
      Mutex.lock t.lock;
      Array.iteri
        (fun k x ->
          Queue.add
            (fun () ->
              let t0 = now () in
              run_cell batch f k x;
              let dt = now () -. t0 in
              Mutex.lock t.lock;
              charge t `Busy dt;
              batch.pending <- batch.pending - 1;
              if batch.pending = 0 then Condition.broadcast batch.all_done;
              Mutex.unlock t.lock)
            t.queue)
        cells;
      Condition.broadcast t.has_work;
      (* Help drain the queue; wait only when it is empty (another
         domain is finishing the last cells). *)
      let rec drain () =
        if batch.pending > 0 then
          match Queue.take_opt t.queue with
          | Some task ->
              Mutex.unlock t.lock;
              task ();
              Mutex.lock t.lock;
              drain ()
          | None ->
              let t0 = now () in
              Condition.wait batch.all_done t.lock;
              charge t `Wait (now () -. t0);
              drain ()
      in
      drain ();
      Mutex.unlock t.lock;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
        batch.error;
      Array.to_list
        (Array.map
           (function
             | Some v -> v
             | None -> invalid_arg "Pool.map_cells: missing result")
           batch.results)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
