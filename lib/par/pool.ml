(** A fixed-size domain pool with a hand-rolled Mutex/Condition task
    queue.

    [create ~jobs] spawns [jobs - 1] worker domains; the domain that
    calls {!map_cells} participates in draining the queue, so exactly
    [jobs] domains compute at any time.  With [jobs = 1] no domain is
    ever spawned and every cell runs inline in the caller — the
    degenerate pool is just [List.map].

    {!map_cells} is deterministic: results are collected by cell index,
    so the output order is the input order regardless of which domain
    ran which cell.  The caller helping to drain the queue also makes
    nested fan-outs safe: a cell that itself calls [map_cells] executes
    other cells while it waits instead of deadlocking the pool. *)

type t = {
  jobs : int;
  lock : Mutex.t;
  has_work : Condition.t;  (** signalled when a task is queued or on close *)
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task -> Mutex.unlock t.lock; Some task
    | None ->
        if t.closing then begin Mutex.unlock t.lock; None end
        else begin Condition.wait t.has_work t.lock; next () end
  in
  match next () with
  | None -> ()
  | Some task -> task (); worker_loop t

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      closing = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.closing <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

(** One fan-out's completion state, shared by its cells. *)
type 'b batch = {
  results : 'b option array;
  error : (exn * Printexc.raw_backtrace) option array;
      (** per-cell so the lowest-index failure is reported
          deterministically *)
  mutable pending : int;
  all_done : Condition.t;
}

let run_cell batch f k x =
  (match f x with
  | v -> batch.results.(k) <- Some v
  | exception e ->
      batch.error.(k) <- Some (e, Printexc.get_raw_backtrace ()))

let map_cells t f xs =
  match xs with
  | [] -> []
  | xs when t.jobs = 1 -> List.map f xs
  | xs ->
      let cells = Array.of_list xs in
      let n = Array.length cells in
      let batch =
        {
          results = Array.make n None;
          error = Array.make n None;
          pending = n;
          all_done = Condition.create ();
        }
      in
      Mutex.lock t.lock;
      Array.iteri
        (fun k x ->
          Queue.add
            (fun () ->
              run_cell batch f k x;
              Mutex.lock t.lock;
              batch.pending <- batch.pending - 1;
              if batch.pending = 0 then Condition.broadcast batch.all_done;
              Mutex.unlock t.lock)
            t.queue)
        cells;
      Condition.broadcast t.has_work;
      (* Help drain the queue; wait only when it is empty (another
         domain is finishing the last cells). *)
      let rec drain () =
        if batch.pending > 0 then
          match Queue.take_opt t.queue with
          | Some task ->
              Mutex.unlock t.lock;
              task ();
              Mutex.lock t.lock;
              drain ()
          | None ->
              Condition.wait batch.all_done t.lock;
              drain ()
      in
      drain ();
      Mutex.unlock t.lock;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
        batch.error;
      Array.to_list
        (Array.map
           (function
             | Some v -> v
             | None -> invalid_arg "Pool.map_cells: missing result")
           batch.results)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
