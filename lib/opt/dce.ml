(** Liveness-based dead-code elimination: removes pure operations whose
    result is never used.  Iterates to a fixpoint since removing one
    dead operation can kill the operations feeding it. *)

open Rc_ir
open Rc_dataflow

let run_func (f : Func.t) =
  let changed = ref true in
  while !changed do
    changed := false;
    let live = Liveness.compute f in
    List.iter
      (fun (b : Block.t) ->
        let keep =
          Liveness.fold_block_backward live b ~init:[]
            ~f:(fun acc op live_after ->
              let dead =
                (not (Op.has_side_effect op))
                &&
                match Op.def op with
                | Some d -> not (Vreg.Set.mem d live_after)
                | None -> true
              in
              if dead then begin
                changed := true;
                acc
              end
              else op :: acc)
        in
        b.Block.ops <- keep)
      f.Func.blocks
  done

let run (p : Prog.t) = List.iter run_func p.Prog.funcs
