(** Local copy propagation: after [x = mov y], subsequent uses of [x] in
    the same block become uses of [y] until either register is
    redefined.  Combined with DCE this removes most of the copies that
    value numbering and the builder introduce. *)

open Rc_ir

let run_block (b : Block.t) =
  let copy_of : Vreg.t Vreg.Tbl.t = Vreg.Tbl.create 16 in
  let kill d =
    Vreg.Tbl.remove copy_of d;
    (* Any mapping whose source is d is now stale. *)
    let stale =
      Vreg.Tbl.fold
        (fun k v acc -> if Vreg.equal v d then k :: acc else acc)
        copy_of []
    in
    List.iter (Vreg.Tbl.remove copy_of) stale
  in
  let subst v =
    match Vreg.Tbl.find_opt copy_of v with Some s -> s | None -> v
  in
  b.Block.ops <-
    List.map
      (fun op ->
        let op = Op.map_uses subst op in
        (match Op.def op with Some d -> kill d | None -> ());
        (match op with
        | Op.Mov (d, s) when not (Vreg.equal d s) ->
            Vreg.Tbl.replace copy_of d s
        | _ -> ());
        op)
      b.Block.ops;
  b.Block.term <- Op.term_map_uses subst b.Block.term

let run_func (f : Func.t) = List.iter run_block f.Func.blocks
let run (p : Prog.t) = List.iter run_func p.Prog.funcs
