(** Counted-loop unrolling with per-copy register renaming — the ILP
    transformation that enlarges basic blocks for the scheduler and, as
    the paper studies, raises the register requirement of the code.

    A simple loop

    {v
    header: br (i < n) -> body | exit
    body:   OPS(i); i += step; jmp header
    v}

    becomes

    {v
    uheader: t = i + (K-1)*step
             br (t < n) -> ubody | header      (guard for K iterations)
    ubody:   OPS(i); i1 = i + step             (copy 1, fresh names)
             OPS(i1); i2 = i1 + step           (copy 2)
             ... K copies ...
             carried-variable restore moves
             jmp uheader
    header:  (the original loop, now the residual loop)
    v}

    Renaming gives every copy fresh destinations, eliminating the false
    dependences that would otherwise serialise the copies. *)

open Rc_ir
open Rc_dataflow

(** Replicate [ops] once, renaming definitions through [env]. *)
let copy_once (f : Func.t) env ops =
  List.map
    (fun op ->
      let op =
        Op.map_uses
          (fun v ->
            match Vreg.Tbl.find_opt env v with Some v' -> v' | None -> v)
          op
      in
      match Op.def op with
      | None -> op
      | Some d ->
          let d' = Func.fresh_vreg f d.Vreg.cls in
          let op = Op.map_def (fun _ -> d') op in
          Vreg.Tbl.replace env d d';
          op)
    ops

let unroll_loop (f : Func.t) ~factor (s : Loops.simple) =
  let header = s.Loops.header and body = s.Loops.body_blk in
  let live = Liveness.compute f in
  let live_at_header = Liveness.live_in live header.Block.id in
  let defs_in_body =
    List.fold_left
      (fun acc op ->
        match Op.def op with Some d -> Vreg.Set.add d acc | None -> acc)
      Vreg.Set.empty body.Block.ops
  in
  let carried = Vreg.Set.inter defs_in_body live_at_header in
  let uheader = Func.fresh_block f in
  let ubody = Func.fresh_block f in
  (* Guard: all K iterations must be within bounds. *)
  let t = Func.fresh_vreg f Rc_isa.Reg.Int in
  let lookahead = Int64.mul (Int64.of_int (factor - 1)) s.Loops.step in
  uheader.Block.ops <-
    [ Op.Alu (Rc_isa.Opcode.Add, t, Op.V s.Loops.ivar, Op.C lookahead) ];
  uheader.Block.term <-
    Op.Br (s.Loops.cond, t, s.Loops.bound, ubody.Block.id, header.Block.id);
  (* K renamed copies of the body. *)
  let env = Vreg.Tbl.create 32 in
  let copies = ref [] in
  for _k = 1 to factor do
    copies := !copies @ copy_once f env body.Block.ops
  done;
  let restores =
    Vreg.Set.fold
      (fun v acc ->
        match Vreg.Tbl.find_opt env v with
        | Some v' when not (Vreg.equal v v') -> Op.Mov (v, v') :: acc
        | _ -> acc)
      carried []
  in
  ubody.Block.ops <- !copies @ restores;
  ubody.Block.term <- Op.Jmp uheader.Block.id;
  (* Entry edges now reach the unrolled loop first. *)
  List.iter
    (fun (b : Block.t) ->
      if b.Block.id <> body.Block.id && b != uheader then
        b.Block.term <-
          Licm.retarget_term ~from_:header.Block.id ~to_:uheader.Block.id
            b.Block.term)
    f.Func.blocks;
  let rec insert = function
    | [] -> [ uheader; ubody ]
    | b :: rest when b == header -> uheader :: ubody :: b :: rest
    | b :: rest -> b :: insert rest
  in
  f.Func.blocks <- insert f.Func.blocks

let run_func ~factor (f : Func.t) =
  if factor > 1 then
    let simples = Loops.find_simple f in
    List.iter
      (fun (s : Loops.simple) ->
        (* Only loops whose header carries no computation can drop the
           intermediate tests. *)
        if s.Loops.header.Block.ops = [] then unroll_loop f ~factor s)
      simples

let run ~factor (p : Prog.t) = List.iter (run_func ~factor) p.Prog.funcs
