(** Loop-invariant code motion for simple counted loops (single-block
    bodies).  Pure operations — and loads, when the loop body contains no
    stores or calls — whose operands are not defined inside the loop are
    hoisted to a freshly created preheader. *)

open Rc_ir
open Rc_dataflow

let retarget_term ~from_ ~to_ = function
  | Op.Jmp l when l = from_ -> Op.Jmp to_
  | Op.Br (c, x, y, t, e) when t = from_ || e = from_ ->
      let t = if t = from_ then to_ else t in
      let e = if e = from_ then to_ else e in
      Op.Br (c, x, y, t, e)
  | t -> t

(** Create a preheader for [header]: all edges into it except those from
    [loop_blocks] are redirected.  Returns the preheader. *)
let make_preheader (f : Func.t) (header : Block.t) ~loop_blocks =
  let pre = Func.fresh_block f in
  pre.Block.term <- Op.Jmp header.Block.id;
  List.iter
    (fun (b : Block.t) ->
      if not (List.mem b.Block.id loop_blocks) then
        b.Block.term <-
          retarget_term ~from_:header.Block.id ~to_:pre.Block.id b.Block.term)
    f.Func.blocks;
  (* Insert just before the header in layout; if the header was the
     entry, the preheader becomes the new entry. *)
  let rec insert = function
    | [] -> [ pre ]
    | b :: rest when b == header -> pre :: b :: rest
    | b :: rest -> b :: insert rest
  in
  f.Func.blocks <- insert f.Func.blocks;
  pre

let def_counts (f : Func.t) =
  let counts = Vreg.Tbl.create 64 in
  Func.iter_ops
    (fun op ->
      Option.iter
        (fun d ->
          Vreg.Tbl.replace counts d
            (1 + try Vreg.Tbl.find counts d with Not_found -> 0))
        (Op.def op))
    f;
  counts

let run_func (f : Func.t) =
  let simples = Loops.find_simple f in
  if simples <> [] then begin
    let counts = def_counts f in
    List.iter
      (fun (s : Loops.simple) ->
        let body = s.Loops.body_blk and header = s.Loops.header in
        let loop_blocks = [ header.Block.id; body.Block.id ] in
        let mem_safe =
          not
            (List.exists
               (fun op ->
                 match op with
                 | Op.St _ | Op.Fst _ | Op.Call _ -> true
                 | _ -> false)
               body.Block.ops)
        in
        (* Registers defined anywhere in the loop and not yet hoisted. *)
        let loop_defs = Vreg.Tbl.create 16 in
        let note_defs (b : Block.t) =
          List.iter
            (fun op ->
              Option.iter (fun d -> Vreg.Tbl.replace loop_defs d ()) (Op.def op))
            b.Block.ops
        in
        note_defs header;
        note_defs body;
        let hoistable op =
          match Op.def op with
          | None -> false
          | Some d -> (
              (match Vreg.Tbl.find_opt counts d with Some 1 -> true | _ -> false)
              && List.for_all
                   (fun u -> not (Vreg.Tbl.mem loop_defs u))
                   (Op.uses op)
              &&
              match op with
              | Op.Ld _ | Op.Fld _ -> mem_safe
              | op -> not (Op.has_side_effect op))
        in
        let hoisted = ref [] in
        let changed = ref true in
        while !changed do
          changed := false;
          let remaining =
            List.filter
              (fun op ->
                if hoistable op then begin
                  hoisted := op :: !hoisted;
                  Option.iter (Vreg.Tbl.remove loop_defs) (Op.def op);
                  changed := true;
                  false
                end
                else true)
              body.Block.ops
          in
          body.Block.ops <- remaining
        done;
        if !hoisted <> [] then begin
          let pre = make_preheader f header ~loop_blocks in
          pre.Block.ops <- List.rev !hoisted
        end)
      simples
  end

let run (p : Prog.t) = List.iter run_func p.Prog.funcs
