(** Optimisation pipelines.

    - {!classical}: the "conventional compiler scalar optimizations" of
      the paper's baseline — value numbering (constant folding /
      propagation, CSE), copy propagation, dead-code elimination and
      loop-invariant code motion.
    - {!ilp}: the instruction-level-parallelism preparation applied for
      superscalar targets — loop unrolling with register renaming —
      followed by a classical clean-up round.  This is the transformation
      that "tends to increase the number of variables that are
      simultaneously live" (paper section 1). *)

open Rc_ir

type level = Classical | Ilp of int  (** unroll factor *)

let default_unroll = 4

let cleanup (p : Prog.t) =
  Lvn.run p;
  Copyprop.run p;
  Dce.run p

let classical (p : Prog.t) =
  cleanup p;
  Licm.run p;
  cleanup p

let ilp ?(factor = default_unroll) (p : Prog.t) =
  classical p;
  Unroll.run ~factor p;
  cleanup p

let apply level (p : Prog.t) =
  match level with Classical -> classical p | Ilp f -> ilp ~factor:f p

let level_to_string = function
  | Classical -> "classical"
  | Ilp f -> Fmt.str "ilp(unroll=%d)" f
