(** Local copy propagation: after [x = mov y], subsequent uses of [x] in
    the same block become uses of [y] until either register is
    redefined.  Combined with DCE this removes most of the copies that
    value numbering and the builder introduce. *)

val run_block : Rc_ir.Block.t -> unit
val run_func : Rc_ir.Func.t -> unit
val run : Rc_ir.Prog.t -> unit
