(** Loop-invariant code motion for simple counted loops (single-block
    bodies).  Pure operations — and loads, when the loop body contains
    no stores or calls — whose operands are not defined inside the loop
    are hoisted to a freshly created preheader. *)

open Rc_ir

(** Retarget a terminator's edges from one label to another (shared with
    the unroller). *)
val retarget_term : from_:Op.label -> to_:Op.label -> Op.term -> Op.term

(** Create a preheader for [header]: all edges into it except those from
    [loop_blocks] are redirected.  Returns the preheader. *)
val make_preheader : Func.t -> Block.t -> loop_blocks:Op.label list -> Block.t

val run_func : Func.t -> unit
val run : Prog.t -> unit
