(** Local value numbering: within each basic block this performs
    constant folding, constant propagation into immediate operands,
    common subexpression elimination (including redundant loads,
    invalidated at stores and calls), copy detection, and constant
    branch folding.  Redundant computations are rewritten to [Mov]s;
    dead-code elimination then cleans up. *)

val run_block : Rc_ir.Block.t -> unit
val run_func : Rc_ir.Func.t -> unit
val run : Rc_ir.Prog.t -> unit
