(** Counted-loop unrolling with per-copy register renaming — the ILP
    transformation that enlarges basic blocks for the scheduler and, as
    the paper studies, raises the register requirement of the code.

    Applies to simple counted loops with computation-free headers: the
    unrolled loop checks a lookahead guard and runs [factor] renamed
    body copies per iteration; the original loop remains as the
    residual. *)

val run_func : factor:int -> Rc_ir.Func.t -> unit
val run : factor:int -> Rc_ir.Prog.t -> unit
