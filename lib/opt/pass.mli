(** Optimisation pipelines.

    - {!classical}: the "conventional compiler scalar optimizations" of
      the paper's baseline — value numbering, copy propagation,
      dead-code elimination and loop-invariant code motion.
    - {!ilp}: the instruction-level-parallelism preparation applied for
      superscalar targets — loop unrolling with register renaming
      followed by a classical clean-up — the transformation that "tends
      to increase the number of variables that are simultaneously live"
      (paper section 1). *)

type level = Classical | Ilp of int  (** unroll factor *)

val default_unroll : int
val cleanup : Rc_ir.Prog.t -> unit
val classical : Rc_ir.Prog.t -> unit
val ilp : ?factor:int -> Rc_ir.Prog.t -> unit
val apply : level -> Rc_ir.Prog.t -> unit
val level_to_string : level -> string
