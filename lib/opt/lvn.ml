(** Local value numbering: within each basic block this performs constant
    folding, constant propagation into immediate operands, common
    subexpression elimination (including redundant loads, invalidated at
    stores and calls), and copy detection.  Redundant computations are
    rewritten to [Mov]s; dead-code elimination then cleans up. *)

open Rc_isa
open Rc_ir

type vn = int

type expr =
  | E_const of int64
  | E_fconst of float  (* compared by bit pattern *)
  | E_alu of Opcode.alu * vn * vn
  | E_fpu of Opcode.fpu * vn * vn option
  | E_itof of vn
  | E_ftoi of vn
  | E_fcmp of Opcode.cond * vn * vn
  | E_addr of string
  | E_load of Opcode.width * vn * int * int  (** base, offset, memory gen *)
  | E_fload of vn * int * int

type state = {
  mutable next_vn : int;
  vn_of : vn Vreg.Tbl.t;  (** current value number of each vreg *)
  expr_vn : (expr, vn) Hashtbl.t;
  holders : (vn, Vreg.t list) Hashtbl.t;  (** vregs currently holding a vn *)
  const_of : (vn, int64) Hashtbl.t;
  mutable memgen : int;
}

let fresh st =
  let v = st.next_vn in
  st.next_vn <- v + 1;
  v

let vn_of_vreg st v =
  match Vreg.Tbl.find_opt st.vn_of v with
  | Some n -> n
  | None ->
      (* Unknown incoming value: give it a fresh number and record the
         vreg as its holder. *)
      let n = fresh st in
      Vreg.Tbl.replace st.vn_of v n;
      Hashtbl.replace st.holders n [ v ];
      n

let vn_of_expr st e =
  match Hashtbl.find_opt st.expr_vn e with
  | Some n -> Some n
  | None -> None

let intern st e =
  match Hashtbl.find_opt st.expr_vn e with
  | Some n -> n
  | None ->
      let n = fresh st in
      Hashtbl.replace st.expr_vn e n;
      (match e with
      | E_const c -> Hashtbl.replace st.const_of n c
      | _ -> ());
      n

let holder st n =
  match Hashtbl.find_opt st.holders n with
  | Some (v :: _) -> Some v
  | _ -> None

let const st n = Hashtbl.find_opt st.const_of n

(** Record that [v] now holds value number [n], removing it from its
    previous number's holder list. *)
let assign st v n =
  (match Vreg.Tbl.find_opt st.vn_of v with
  | Some old -> (
      match Hashtbl.find_opt st.holders old with
      | Some hs ->
          Hashtbl.replace st.holders old
            (List.filter (fun h -> not (Vreg.equal h v)) hs)
      | None -> ())
  | None -> ());
  Vreg.Tbl.replace st.vn_of v n;
  let hs = try Hashtbl.find st.holders n with Not_found -> [] in
  Hashtbl.replace st.holders n (hs @ [ v ])

let value_vn st = function
  | Op.V v -> vn_of_vreg st v
  | Op.C c -> intern st (E_const c)

(** Replace a register use by an equivalent-valued register if the
    current holder differs (mostly a no-op: a vreg always holds its own
    number; this canonicalises after copies). *)
let canon st v =
  match holder st (vn_of_vreg st v) with
  | Some h when Rc_isa.Reg.equal_cls h.Vreg.cls v.Vreg.cls -> h
  | _ -> v

(** Fold a register operand to a constant when its value is known. *)
let canon_value st = function
  | Op.C _ as c -> c
  | Op.V v -> (
      let n = vn_of_vreg st v in
      match const st n with Some c -> Op.C c | None -> Op.V (canon st v))

let run_block (b : Block.t) =
  let st =
    {
      next_vn = 0;
      vn_of = Vreg.Tbl.create 64;
      expr_vn = Hashtbl.create 64;
      holders = Hashtbl.create 64;
      const_of = Hashtbl.create 64;
      memgen = 0;
    }
  in
  let rewrite op =
    match op with
    | Op.Li (d, c) ->
        assign st d (intern st (E_const c));
        op
    | Op.Fli (d, x) ->
        assign st d (intern st (E_fconst x));
        op
    | Op.Mov (d, s) ->
        let s = canon st s in
        let n = vn_of_vreg st s in
        assign st d n;
        (match const st n with Some c -> Op.Li (d, c) | None -> Op.Mov (d, s))
    | Op.Alu (a, d, x, y) -> (
        let x = canon_value st x and y = canon_value st y in
        match (x, y) with
        | Op.C cx, Op.C cy ->
            let c = Opcode.eval_alu a cx cy in
            assign st d (intern st (E_const c));
            Op.Li (d, c)
        | _ -> (
            let nx = value_vn st x and ny = value_vn st y in
            let e = E_alu (a, nx, ny) in
            match vn_of_expr st e with
            | Some n -> (
                match holder st n with
                | Some h when not (Vreg.equal h d) ->
                    assign st d n;
                    Op.Mov (d, h)
                | _ ->
                    assign st d (intern st e);
                    Op.Alu (a, d, x, y))
            | None ->
                assign st d (intern st e);
                Op.Alu (a, d, x, y)))
    | Op.Fpu (o, d, s1, s2) -> (
        let s1 = canon st s1 and s2 = Option.map (canon st) s2 in
        let e = E_fpu (o, vn_of_vreg st s1, Option.map (vn_of_vreg st) s2) in
        match vn_of_expr st e with
        | Some n -> (
            match holder st n with
            | Some h when not (Vreg.equal h d) ->
                assign st d n;
                Op.Mov (d, h)
            | _ ->
                assign st d (intern st e);
                Op.Fpu (o, d, s1, s2))
        | None ->
            assign st d (intern st e);
            Op.Fpu (o, d, s1, s2))
    | Op.Itof (d, s) ->
        let s = canon st s in
        let e = E_itof (vn_of_vreg st s) in
        assign st d (intern st e);
        Op.Itof (d, s)
    | Op.Ftoi (d, s) ->
        let s = canon st s in
        let e = E_ftoi (vn_of_vreg st s) in
        assign st d (intern st e);
        Op.Ftoi (d, s)
    | Op.Fcmp (c, d, s1, s2) ->
        let s1 = canon st s1 and s2 = canon st s2 in
        let e = E_fcmp (c, vn_of_vreg st s1, vn_of_vreg st s2) in
        assign st d (intern st e);
        Op.Fcmp (c, d, s1, s2)
    | Op.Addr (d, g) -> (
        let e = E_addr g in
        match vn_of_expr st e with
        | Some n -> (
            match holder st n with
            | Some h when not (Vreg.equal h d) ->
                assign st d n;
                Op.Mov (d, h)
            | _ ->
                assign st d (intern st e);
                op)
        | None ->
            assign st d (intern st e);
            op)
    | Op.Ld (w, d, base, off) -> (
        let base = canon st base in
        let e = E_load (w, vn_of_vreg st base, off, st.memgen) in
        match vn_of_expr st e with
        | Some n -> (
            match holder st n with
            | Some h when not (Vreg.equal h d) ->
                assign st d n;
                Op.Mov (d, h)
            | _ ->
                assign st d (intern st e);
                Op.Ld (w, d, base, off))
        | None ->
            assign st d (intern st e);
            Op.Ld (w, d, base, off))
    | Op.Fld (d, base, off) -> (
        let base = canon st base in
        let e = E_fload (vn_of_vreg st base, off, st.memgen) in
        match vn_of_expr st e with
        | Some n -> (
            match holder st n with
            | Some h when not (Vreg.equal h d) ->
                assign st d n;
                Op.Mov (d, h)
            | _ ->
                assign st d (intern st e);
                Op.Fld (d, base, off))
        | None ->
            assign st d (intern st e);
            Op.Fld (d, base, off))
    | Op.St (w, v, base, off) ->
        let v = canon st v and base = canon st base in
        st.memgen <- st.memgen + 1;
        Op.St (w, v, base, off)
    | Op.Fst (v, base, off) ->
        let v = canon st v and base = canon st base in
        st.memgen <- st.memgen + 1;
        Op.Fst (v, base, off)
    | Op.Call c ->
        let args = List.map (canon st) c.args in
        st.memgen <- st.memgen + 1;
        (* The result is a brand-new unknown value. *)
        (match c.dst with Some d -> assign st d (fresh st) | None -> ());
        Op.Call { c with args }
    | Op.Emit v -> Op.Emit (canon st v)
    | Op.Femit v -> Op.Femit (canon st v)
  in
  b.Block.ops <- List.map rewrite b.Block.ops;
  b.Block.term <- Op.term_map_uses (canon st) b.Block.term;
  (* Fold constant branches away entirely. *)
  b.Block.term <-
    (match b.Block.term with
    | Op.Br (c, x, y, t, e) -> (
        let cx = const st (vn_of_vreg st x)
        and cy = const st (vn_of_vreg st y) in
        match (cx, cy) with
        | Some a, Some b' -> if Opcode.eval_cond c a b' then Op.Jmp t else Op.Jmp e
        | _ -> b.Block.term)
    | t -> t)

let run_func (f : Func.t) = List.iter run_block f.Func.blocks
let run (p : Prog.t) = List.iter run_func p.Prog.funcs
