(** Liveness-based dead-code elimination: removes pure operations whose
    result is never used.  Iterates to a fixpoint since removing one
    dead operation can kill the operations feeding it. *)

val run_func : Rc_ir.Func.t -> unit
val run : Rc_ir.Prog.t -> unit
