(** Crash-safe file writes for the telemetry and sweep-log sinks.

    A plain [open_out_bin] on the destination truncates it first: a
    crash (or [kill -9]) mid-write leaves a torn file, and ENOSPC on a
    [close_out_noerr] data path is silently swallowed.  [write_atomic]
    writes to a fresh temporary file in the {e same directory} (same
    filesystem, so the final rename is atomic), flushes, fsyncs and
    closes with error reporting, and only then renames over the
    destination — readers see either the old contents or the new,
    never a prefix, even across a crash between rename and the next
    sync (the data hit the disk before the name did). *)

(** [write_atomic path f] runs [f] on an output channel for a
    temporary file next to [path], then atomically renames it to
    [path].  The published file carries mode [0o644] masked by the
    process umask (like [open(2)] creation), {e not} the temp file's
    private [0o600] — replacing a world-readable file must not
    silently tighten it.  On any failure — including write, fsync or
    close errors such as ENOSPC — the temporary file is removed,
    [path] is left untouched and the exception ([Sys_error] for
    channel IO failures, [Unix.Unix_error] from fsync) is
    re-raised. *)
val write_atomic : string -> (out_channel -> unit) -> unit
