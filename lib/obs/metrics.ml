(* Thread-safe metrics registry with log-linear histograms and a
   Prometheus text-exposition renderer: see metrics.mli. *)

(* --- log-linear histogram ------------------------------------------------- *)

module Hist = struct
  let subbuckets = 32
  let rel_error = 1.0 /. float_of_int (2 * subbuckets)

  (* Octaves [2^(e-1), 2^e) for frexp exponents e in [e_min, e_max]:
     2^-31 (~5e-10) up to 2^34 (~1.7e10) — nanoseconds to centuries
     when the unit is seconds.  Values outside land in the under/
     overflow buckets and are answered from the exact min/max. *)
  let e_min = -30
  let e_max = 34
  let octaves = e_max - e_min + 1
  let linear = octaves * subbuckets
  let nbuckets = linear + 2 (* + underflow (index 0) + overflow (last) *)
  let tiny = Float.ldexp 1.0 (e_min - 1)
  let huge = Float.ldexp 1.0 e_max

  type t = {
    mu : Mutex.t;
    counts : int array;
    mutable n : int;
    mutable total : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () =
    {
      mu = Mutex.create ();
      counts = Array.make nbuckets 0;
      n = 0;
      total = 0.0;
      mn = infinity;
      mx = neg_infinity;
    }

  let bucket_of v =
    if not (v > tiny) then 0 (* zero, negative, tiny, NaN *)
    else if v >= huge then nbuckets - 1
    else begin
      let m, e = Float.frexp v in
      (* m in [0.5, 1): linear position within the octave. *)
      let sub =
        int_of_float ((m -. 0.5) *. float_of_int (2 * subbuckets))
      in
      let sub = if sub >= subbuckets then subbuckets - 1 else sub in
      (((e - e_min) * subbuckets) + sub) + 1
    end

  (* Inclusive upper bound of a linear bucket index (1-based). *)
  let upper i =
    let o = (i - 1) / subbuckets and s = (i - 1) mod subbuckets in
    Float.ldexp
      (0.5 +. (float_of_int (s + 1) /. float_of_int (2 * subbuckets)))
      (o + e_min)

  let lower i =
    let o = (i - 1) / subbuckets and s = (i - 1) mod subbuckets in
    Float.ldexp
      (0.5 +. (float_of_int s /. float_of_int (2 * subbuckets)))
      (o + e_min)

  let observe t v =
    Mutex.protect t.mu (fun () ->
        t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
        t.n <- t.n + 1;
        t.total <- t.total +. v;
        if v < t.mn then t.mn <- v;
        if v > t.mx then t.mx <- v)

  let count t = Mutex.protect t.mu (fun () -> t.n)
  let sum t = Mutex.protect t.mu (fun () -> t.total)
  let min_value t = Mutex.protect t.mu (fun () -> if t.n = 0 then 0.0 else t.mn)
  let max_value t = Mutex.protect t.mu (fun () -> if t.n = 0 then 0.0 else t.mx)

  let quantile t p =
    Mutex.protect t.mu (fun () ->
        if t.n = 0 then 0.0
        else if p <= 0.0 then t.mn
        else if p >= 1.0 then t.mx
        else begin
          (* Nearest rank, matching a sorted-array oracle's
             [sorted.(max 1 (ceil (p * n)) - 1)]. *)
          let rank =
            max 1 (min t.n (int_of_float (Float.ceil (p *. float_of_int t.n))))
          in
          let rec walk i seen =
            let seen = seen + t.counts.(i) in
            if seen >= rank then i else walk (i + 1) seen
          in
          let i = walk 0 0 in
          let v =
            if i = 0 then t.mn
            else if i = nbuckets - 1 then t.mx
            else 0.5 *. (lower i +. upper i)
          in
          (* The exact extremes clamp the bucket midpoint, so p = 0
             and p = 1 are exact and no answer leaves the observed
             range. *)
          Float.min t.mx (Float.max t.mn v)
        end)

  let buckets t =
    Mutex.protect t.mu (fun () ->
        let acc = ref [] and seen = ref 0 in
        for i = 0 to nbuckets - 2 do
          if t.counts.(i) > 0 then begin
            seen := !seen + t.counts.(i);
            let bound = if i = 0 then tiny else upper i in
            acc := (bound, !seen) :: !acc
          end
        done;
        List.rev !acc)
end

(* --- registry ------------------------------------------------------------- *)

type labels = (string * string) list

type kind = Counter | Gauge | Histogram

type series = { s_labels : labels; mutable s_value : float; s_hist : Hist.t }

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_mu : Mutex.t;
  mutable f_series : series list; (* insertion order; sorted at render *)
}

type t = { mu : Mutex.t; mutable families : family list (* reversed *) }

let create () = { mu = Mutex.create (); families = [] }

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let valid_name s =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  String.length s > 0
  && ok_first s.[0]
  && String.for_all ok (String.sub s 1 (String.length s - 1))

let valid_label_name s = valid_name s && not (String.contains s ':')

let normalise_labels labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg ("Metrics: bad label name " ^ k))
    labels;
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let family t ~kind ~help name =
  Mutex.protect t.mu (fun () ->
      match List.find_opt (fun f -> f.f_name = name) t.families with
      | Some f ->
          if f.f_kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %s is a %s, not a %s" name
                 (kind_name f.f_kind) (kind_name kind));
          f
      | None ->
          if not (valid_name name) then
            invalid_arg ("Metrics: bad metric name " ^ name);
          let f =
            {
              f_name = name;
              f_help = (match help with Some h -> h | None -> name);
              f_kind = kind;
              f_mu = Mutex.create ();
              f_series = [];
            }
          in
          t.families <- f :: t.families;
          f)

let series f labels =
  let labels = normalise_labels labels in
  Mutex.protect f.f_mu (fun () ->
      match List.find_opt (fun s -> s.s_labels = labels) f.f_series with
      | Some s -> s
      | None ->
          let s = { s_labels = labels; s_value = 0.0; s_hist = Hist.create () } in
          f.f_series <- f.f_series @ [ s ];
          s)

let inc t ?(labels = []) ?help name by =
  if by < 0.0 then invalid_arg "Metrics.inc: negative increment";
  let s = series (family t ~kind:Counter ~help name) labels in
  Mutex.protect t.mu (fun () -> s.s_value <- s.s_value +. by)

let set_counter t ?(labels = []) ?help name v =
  let s = series (family t ~kind:Counter ~help name) labels in
  Mutex.protect t.mu (fun () -> s.s_value <- v)

let set t ?(labels = []) ?help name v =
  let s = series (family t ~kind:Gauge ~help name) labels in
  Mutex.protect t.mu (fun () -> s.s_value <- v)

let histogram t ?(labels = []) ?help name =
  (series (family t ~kind:Histogram ~help name) labels).s_hist

let observe t ?labels ?help name v =
  Hist.observe (histogram t ?labels ?help name) v

let value t ?(labels = []) name =
  let labels = normalise_labels labels in
  Mutex.protect t.mu (fun () ->
      match List.find_opt (fun f -> f.f_name = name) t.families with
      | None -> None
      | Some f -> (
          match
            List.find_opt (fun s -> s.s_labels = labels) f.f_series
          with
          | Some s when f.f_kind <> Histogram -> Some s.s_value
          | _ -> None))

(* --- Prometheus text exposition ------------------------------------------ *)

(* Label values escape backslash, double quote and newline; HELP text
   escapes backslash and newline (exposition format 0.0.4). *)
let escape ~quote s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let label_str labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape ~quote:true v))
             labels)
      ^ "}"

let render t =
  let families =
    Mutex.protect t.mu (fun () -> List.rev t.families)
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      let serieses =
        Mutex.protect f.f_mu (fun () ->
            List.sort
              (fun a b -> compare (label_str a.s_labels) (label_str b.s_labels))
              f.f_series)
      in
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" f.f_name
           (escape ~quote:false f.f_help));
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" f.f_name (kind_name f.f_kind));
      List.iter
        (fun s ->
          match f.f_kind with
          | Counter | Gauge ->
              let v = Mutex.protect t.mu (fun () -> s.s_value) in
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" f.f_name (label_str s.s_labels)
                   (number v))
          | Histogram ->
              let h = s.s_hist in
              let bks = Hist.buckets h in
              let n = Hist.count h and total = Hist.sum h in
              let with_le le =
                label_str (s.s_labels @ [ ("le", le) ])
              in
              List.iter
                (fun (bound, cum) ->
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" f.f_name
                       (with_le (number bound)) cum))
                bks;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" f.f_name
                   (with_le "+Inf") n);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" f.f_name
                   (label_str s.s_labels) (number total));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" f.f_name
                   (label_str s.s_labels) n))
        serieses)
    families;
  Buffer.contents b
