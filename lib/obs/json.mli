(** A minimal JSON tree: just enough for the telemetry sinks (emission
    with correct string escaping and finite-number handling) and for
    the smoke validators (a strict parser).  No external dependency —
    the toolchain image has no yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering.  Non-finite floats become [null]
    — JSON has no NaN/infinity literals. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Strict parser: the whole input must be one JSON value (trailing
    whitespace allowed).  Numbers without [.], [e] or [E] parse as
    [Int]; everything else as [Float].  Returns a message with an
    offset on malformed input. *)
val of_string : string -> (t, string) result

(** [member k j] is the value of field [k] when [j] is an object that
    has it. *)
val member : string -> t -> t option
