(** Telemetry event recorder and structured sinks (see the interface
    for the model). *)

type event =
  | Span of {
      track : string;
      name : string;
      ts_us : float;
      dur_us : float;
      args : (string * Json.t) list;
    }
  | Counter of {
      track : string;
      name : string;
      ts_us : float;
      values : (string * float) list;
    }
  | Instant of {
      track : string;
      name : string;
      ts_us : float;
      args : (string * Json.t) list;
    }

type t = { enabled : bool; mutable rev : event list }

let null = { enabled = false; rev = [] }
let create () = { enabled = true; rev = [] }
let enabled t = t.enabled

let span t ~track ~name ~ts_us ~dur_us ?(args = []) () =
  if t.enabled then t.rev <- Span { track; name; ts_us; dur_us; args } :: t.rev

let counter t ~track ~name ~ts_us values =
  if t.enabled then t.rev <- Counter { track; name; ts_us; values } :: t.rev

let instant t ~track ~name ~ts_us ?(args = []) () =
  if t.enabled then t.rev <- Instant { track; name; ts_us; args } :: t.rev

let events t = List.rev t.rev

(* --- JSONL --------------------------------------------------------------- *)

let event_json = function
  | Span { track; name; ts_us; dur_us; args } ->
      Json.Obj
        ([
           ("type", Json.Str "span");
           ("track", Json.Str track);
           ("name", Json.Str name);
           ("ts_us", Json.Float ts_us);
           ("dur_us", Json.Float dur_us);
         ]
        @ if args = [] then [] else [ ("args", Json.Obj args) ])
  | Counter { track; name; ts_us; values } ->
      Json.Obj
        [
          ("type", Json.Str "counter");
          ("track", Json.Str track);
          ("name", Json.Str name);
          ("ts_us", Json.Float ts_us);
          ( "values",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) values) );
        ]
  | Instant { track; name; ts_us; args } ->
      Json.Obj
        ([
           ("type", Json.Str "instant");
           ("track", Json.Str track);
           ("name", Json.Str name);
           ("ts_us", Json.Float ts_us);
         ]
        @ if args = [] then [] else [ ("args", Json.Obj args) ])

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* --- Chrome trace-event JSON --------------------------------------------- *)

let track_of = function
  | Span { track; _ } | Counter { track; _ } | Instant { track; _ } -> track

(** Process ids by track, in order of first appearance (deterministic). *)
let track_pids evs =
  List.fold_left
    (fun acc e ->
      let tr = track_of e in
      if List.mem_assoc tr acc then acc else acc @ [ (tr, List.length acc + 1) ])
    [] evs

let to_chrome t =
  let evs = events t in
  let pids = track_pids evs in
  let pid tr = List.assoc tr pids in
  let meta =
    List.map
      (fun (tr, p) ->
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int p);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.Str tr) ]);
          ])
      pids
  in
  let one = function
    | Span { track; name; ts_us; dur_us; args } ->
        Json.Obj
          ([
             ("name", Json.Str name);
             ("cat", Json.Str track);
             ("ph", Json.Str "X");
             ("ts", Json.Float ts_us);
             ("dur", Json.Float dur_us);
             ("pid", Json.Int (pid track));
             ("tid", Json.Int 0);
           ]
          @ if args = [] then [] else [ ("args", Json.Obj args) ])
    | Counter { track; name; ts_us; values } ->
        Json.Obj
          [
            ("name", Json.Str name);
            ("cat", Json.Str track);
            ("ph", Json.Str "C");
            ("ts", Json.Float ts_us);
            ("pid", Json.Int (pid track));
            ( "args",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) values) );
          ]
    | Instant { track; name; ts_us; args } ->
        Json.Obj
          ([
             ("name", Json.Str name);
             ("cat", Json.Str track);
             ("ph", Json.Str "i");
             ("ts", Json.Float ts_us);
             ("pid", Json.Int (pid track));
             ("tid", Json.Int 0);
             ("s", Json.Str "p");
           ]
          @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map one evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let chrome_string t = Json.to_string (to_chrome t)

(* --- counters-only summary ----------------------------------------------- *)

let summary t =
  let acc : (string * string * string * int * float) list ref = ref [] in
  List.iter
    (function
      | Counter { track; name; values; _ } ->
          List.iter
            (fun (series, v) ->
              let rec update = function
                | [] -> [ (track, name, series, 1, v) ]
                | (tr, n, s, count, _) :: rest
                  when tr = track && n = name && s = series ->
                    (tr, n, s, count + 1, v) :: rest
                | row :: rest -> row :: update rest
              in
              acc := update !acc)
            values
      | Span _ | Instant _ -> ())
    (events t);
  !acc
