(** Thread-safe metrics registry for long-lived services.

    Three instrument kinds, all safe to record from any domain:

    - {e counters}: monotone totals ({!inc}; {!set_counter} bridges a
      total accumulated elsewhere, e.g. the harness trace-cache
      counters);
    - {e gauges}: last-written values ({!set});
    - {e histograms}: log-linear (HDR-style) value distributions with
      exact counts and bounded-relative-error quantiles ({!observe},
      {!module-Hist}).

    Series are identified by a metric name plus a label set, as in
    Prometheus; {!render} emits the whole registry in Prometheus text
    exposition format (version 0.0.4): [# HELP]/[# TYPE] lines, escaped
    label values, histograms as cumulative [_bucket{le="..."}] series
    plus [_sum] and [_count].

    Registration is implicit: the first record against a name creates
    the family with that kind, and recording against an existing name
    with a different kind raises [Invalid_argument], as does a name or
    label name outside the Prometheus grammar
    ([[a-zA-Z_:][a-zA-Z0-9_:]*] / [[a-zA-Z_][a-zA-Z0-9_]*]). *)

(** Log-linear histogram: each power-of-two octave of the value range
    is split into {!subbuckets} linear buckets, so any recorded value
    falls in a bucket whose width is at most [1/subbuckets] of the
    value — quantiles read back from bucket midpoints carry a relative
    error of at most {!rel_error} [= 1/(2*subbuckets)].  Counts, sum,
    min and max are exact.  Values at or below [~1e-9] and at or above
    [~1e10] land in underflow/overflow buckets whose quantiles are
    reported as the exact observed min/max.  All operations are
    mutex-protected and safe from any domain. *)
module Hist : sig
  type t

  (** Linear buckets per power-of-two octave (32). *)
  val subbuckets : int

  (** Worst-case relative error of {!quantile} ([1/64]). *)
  val rel_error : float

  val create : unit -> t
  val observe : t -> float -> unit

  (** Exact number of observations. *)
  val count : t -> int

  (** Exact sum of observations. *)
  val sum : t -> float

  (** Exact observed extremes; [0.] when empty. *)
  val min_value : t -> float

  val max_value : t -> float

  (** Nearest-rank quantile (rank [max 1 (ceil (p * count))]) with
      relative error at most {!rel_error}; exactly [min_value] at
      [p = 0.] and [max_value] at [p = 1.]; [0.] when empty. *)
  val quantile : t -> float -> float

  (** Occupied buckets as [(inclusive upper bound, cumulative count)]
      in increasing bound order — the Prometheus [le] series, without
      the final [+Inf] (which is {!count}). *)
  val buckets : t -> (float * int) list
end

type t

(** Labels as [(name, value)] pairs; order is irrelevant (normalised
    internally). *)
type labels = (string * string) list

val create : unit -> t

(** [inc t name by] adds [by >= 0.] to a counter ([Invalid_argument]
    on a negative delta). *)
val inc : t -> ?labels:labels -> ?help:string -> string -> float -> unit

(** Overwrite a counter with a total maintained elsewhere.  The caller
    owns monotonicity. *)
val set_counter : t -> ?labels:labels -> ?help:string -> string -> float -> unit

(** Set a gauge. *)
val set : t -> ?labels:labels -> ?help:string -> string -> float -> unit

(** Record one observation into a histogram series. *)
val observe : t -> ?labels:labels -> ?help:string -> string -> float -> unit

(** The underlying histogram of a series (created empty if new), for
    direct {!Hist} queries — the serve stats keep a handle per
    endpoint so the JSON snapshot and the Prometheus exposition read
    the same data. *)
val histogram : t -> ?labels:labels -> ?help:string -> string -> Hist.t

(** Current value of a counter or gauge series, if it exists. *)
val value : t -> ?labels:labels -> string -> float option

(** The whole registry in Prometheus text exposition format: families
    in registration order, each with [# HELP] and [# TYPE] lines, the
    series of a family sorted by label set.  Ends with a newline. *)
val render : t -> string
