(** A minimal JSON tree — emitter and strict parser, no external
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ----------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_finite f then begin
    (* shortest representation that round-trips; "1." is not JSON, so
       patch a trailing point into "1.0" *)
    let s = Printf.sprintf "%.17g" f in
    let s =
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else s
    in
    Buffer.add_string buf s;
    if String.length s > 0 && s.[String.length s - 1] = '.' then
      Buffer.add_char buf '0'
  end
  else Buffer.add_string buf "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of int * string

let parse_fail pos fmt =
  Format.kasprintf (fun m -> raise (Parse_error (pos, m))) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> parse_fail c.pos "expected %c, found %c" ch x
  | None -> parse_fail c.pos "expected %c, found end of input" ch

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else parse_fail c.pos "expected %s" word

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail c.pos "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> parse_fail c.pos "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  parse_fail c.pos "truncated \\u escape";
                let hex = String.sub c.src c.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some v -> v
                  | None -> parse_fail c.pos "bad \\u escape %s" hex
                in
                c.pos <- c.pos + 4;
                (* UTF-8 encode the BMP code point; surrogate pairs of
                   the emitters above never appear (we only escape
                   control characters) *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | e -> parse_fail c.pos "bad escape \\%c" e);
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  let has_frac = String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s in
  if has_frac then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_fail start "bad number %s" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> parse_fail start "bad number %s" s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_fail c.pos "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> parse_fail c.pos "expected , or } in object"
        in
        fields []
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List (List.rev (v :: acc))
          | _ -> parse_fail c.pos "expected , or ] in array"
        in
        elems []
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_fail c.pos "unexpected character %c" ch

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "offset %d: trailing garbage" c.pos)
      else Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "offset %d: %s" pos msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
