(* Crash-safe file replacement: temp file in the destination's
   directory, error-reporting close, fsync, atomic rename.  See
   fsio.mli. *)

(* [Filename.temp_file] creates the temp 0o600 for its own
   mktemp-style safety, but we are about to rename it over the
   destination: without a chmod, atomically replacing a
   world-readable file silently tightens it to owner-only.  Apply
   the conventional creation mode instead, masked by the process
   umask like open(2) would. *)
let default_mode =
  lazy
    (let u = Unix.umask 0 in
     ignore (Unix.umask u : int);
     0o644 land lnot u)

let write_atomic path f =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    match
      f oc;
      Unix.fchmod (Unix.descr_of_out_channel oc) (Lazy.force default_mode);
      (* Flush then fsync before the rename publishes the name: a
         crash after rename must not be able to expose an empty or
         partial file whose data never reached the disk. *)
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc)
    with
    | () ->
        (* [close_out], not [close_out_noerr]: a failed flush (ENOSPC,
           EIO) must surface as an exception, not a truncated file. *)
        close_out oc
    | exception e ->
        close_out_noerr oc;
        raise e
  with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
