(* Crash-safe file replacement: temp file in the destination's
   directory, error-reporting close, atomic rename.  See fsio.mli. *)

let write_atomic path f =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    match f oc with
    | () ->
        (* [close_out], not [close_out_noerr]: a failed flush (ENOSPC,
           EIO) must surface as an exception, not a truncated file. *)
        close_out oc
    | exception e ->
        close_out_noerr oc;
        raise e
  with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
