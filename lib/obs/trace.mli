(** Telemetry event recorder and structured sinks.

    A {!t} is either the no-op {!null} recorder or an in-memory event
    buffer created with {!create}.  Every recording function starts with
    one immediate [enabled] flag check, so instrumented code pays a
    single untaken branch when telemetry is off — the overhead guarantee
    the sweep benchmarks rely on.

    Events live on named {e tracks} ("compile", "machine", ...).  Three
    exports are provided:

    - {!summary}: counters only, the last value of every counter series;
    - {!to_jsonl}: one self-describing JSON object per event, one per
      line, in recording order;
    - {!to_chrome}: Chrome trace-event JSON (the
      [{"traceEvents": [...]}] envelope) loadable in Perfetto — tracks
      become processes named by metadata events, spans become ["X"]
      complete events and counter samples become ["C"] events. *)

type event =
  | Span of {
      track : string;
      name : string;
      ts_us : float;  (** start, microseconds on the track's timeline *)
      dur_us : float;
      args : (string * Json.t) list;
    }
  | Counter of {
      track : string;
      name : string;
      ts_us : float;
      values : (string * float) list;  (** series name, sample value *)
    }
  | Instant of {
      track : string;
      name : string;
      ts_us : float;
      args : (string * Json.t) list;
    }

type t

(** The disabled recorder: recording functions return after one flag
    check and allocate nothing. *)
val null : t

(** A fresh enabled in-memory recorder. *)
val create : unit -> t

val enabled : t -> bool

val span :
  t ->
  track:string ->
  name:string ->
  ts_us:float ->
  dur_us:float ->
  ?args:(string * Json.t) list ->
  unit ->
  unit

val counter :
  t -> track:string -> name:string -> ts_us:float -> (string * float) list -> unit

val instant :
  t ->
  track:string ->
  name:string ->
  ts_us:float ->
  ?args:(string * Json.t) list ->
  unit ->
  unit

(** Events in recording order ([] for {!null}). *)
val events : t -> event list

(** One event as a self-describing JSON object (the JSONL row shape:
    a ["type"] discriminant plus the event's fields). *)
val event_json : event -> Json.t

(** One JSON object per line, in recording order, trailing newline. *)
val to_jsonl : t -> string

(** Chrome trace-event JSON.  Tracks are numbered as process ids in
    order of first appearance and named with [process_name] metadata
    events, so the export is deterministic for a deterministic event
    stream. *)
val to_chrome : t -> Json.t

val chrome_string : t -> string

(** Counters-only summary: for every [(track, counter, series)] the
    number of samples and the last value, in first-appearance order. *)
val summary : t -> (string * string * string * int * float) list
