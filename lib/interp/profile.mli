(** Execution profiles gathered by the IR interpreter: block execution
    counts (allocation priorities) and branch direction counts (static
    prediction hints).  Keys are [(function name, block id)]. *)

type key = string * int

type t = {
  block : (key, int) Hashtbl.t;
  taken : (key, int) Hashtbl.t;  (** branch in block took its target *)
  not_taken : (key, int) Hashtbl.t;
  calls : (string, int) Hashtbl.t;
}

val create : unit -> t
val note_block : t -> func:string -> block:int -> unit
val note_branch : t -> func:string -> block:int -> taken:bool -> unit
val note_call : t -> callee:string -> unit

(** Execution count of a block; 1 when never profiled, so unprofiled
    code still gets sane allocation priorities. *)
val weight : t -> func:string -> block:int -> int

(** Static prediction hint for the branch terminating [block]. *)
val predict_taken : t -> func:string -> block:int -> bool

val call_count : t -> string -> int

(** A neutral profile: all weights 1, all branches predicted
    not-taken. *)
val neutral : unit -> t
