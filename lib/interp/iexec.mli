(** Sequential machine-code oracle.

    Executes an assembled {!Rc_isa.Image.t} one instruction at a time
    with none of the simulator's timing machinery, so its architectural
    state after [n] dynamic instructions is the ground truth the
    cycle-accurate machine is checked against in lockstep.  Written
    independently of [Rc_machine] so the two can genuinely disagree. *)

open Rc_isa
open Rc_core

(** Raised on a semantic dead end: pc out of code, bad address, out of
    fuel, trap with no handler. *)
exception Exec_error of string

type t = {
  code : Insn.t array;
  arch : bool;
      (** [true]: operands are architectural indices resolved through
          the mapping tables (when the PSW enables them); [false]:
          operands are physical registers and the tables are ignored *)
  model : Model.t;
  iregs : int64 array;
  fregs : float array;
  imap : Map_table.t;
  fmap : Map_table.t;
  psw : Psw.t;
  mem : Bytes.t;
  trap_handler : int option;
  mutable pc : int;
  mutable halted : bool;
  mutable steps : int;  (** dynamic instructions executed *)
  mutable out_rev : int64 list;
  mutable out_pcs_rev : int list;
      (** pc of the instruction that produced each output element,
          parallel to [out_rev] *)
  mutable epc : int;
  mutable saved_psw : Psw.t option;
}

(** Fresh executor over [image]: registers zero, globals initialised,
    [sp] at the stack top, [pc] at the entry point.  [trap_handler]
    names a function in the image.
    @raise Image.Undefined_function when that name is unknown. *)
val create :
  ?arch:bool ->
  ?model:Model.t ->
  ?trap_handler:string ->
  ifile:Reg.file ->
  ffile:Reg.file ->
  Image.t ->
  t

(** Execute the instruction at [pc].  No-op once halted. *)
val step : t -> unit

(** Run to [Halt].  [fuel] bounds executed instructions.
    @raise Exec_error when the bound is hit. *)
val run : ?fuel:int -> t -> unit

(** Emitted values in order; floats as IEEE bit patterns. *)
val output : t -> int64 list

(** Address of the emit instruction behind each output element,
    parallel to {!output}. *)
val output_pcs : t -> int list
