(** Reference interpreter for the IR.

    Serves three roles: the {e profiler} (block/branch counts for the
    compiler), the {e oracle} for differential testing (compiled code
    must emit the same output stream), and the {e baseline semantics}
    that optimisation passes must preserve.

    Memory is laid out exactly as the assembler lays it out
    ({!Rc_isa.Image.layout_globals}), so addresses computed by [Addr]
    arithmetic agree between interpreted and simulated runs. *)

open Rc_isa
open Rc_ir

exception Out_of_fuel
exception Bad_address of int

type value = I of int64 | F of float

type outcome = {
  output : int64 list;
      (** emitted values in order; floats as IEEE bit patterns *)
  checksum : int64;
  profile : Profile.t;
  dyn_ops : int;  (** IR operations executed (terminators included) *)
  return_value : value option;
  mem : Bytes.t;  (** final memory; globals live in [data_base, data_end) *)
  data_end : int;
}

let checksum_of_output output =
  List.fold_left
    (fun acc v -> Int64.add (Int64.mul acc 1000003L) v)
    0x9E3779B9L output

type state = {
  prog : Prog.t;
  mem : Bytes.t;
  global_addr : (string * int) list;
  profile : Profile.t;
  mutable out_rev : int64 list;
  mutable fuel : int;
  mutable ops : int;
}

let as_int = function I n -> n | F _ -> invalid_arg "Interp: expected int"
let as_float = function F x -> x | I _ -> invalid_arg "Interp: expected float"

let check_addr st a width =
  if a < 0 || a + width > Bytes.length st.mem then raise (Bad_address a)

let load st width a =
  match width with
  | Opcode.W8 ->
      check_addr st a 8;
      Bytes.get_int64_le st.mem a
  | Opcode.W1 ->
      check_addr st a 1;
      Int64.of_int (Char.code (Bytes.get st.mem a))

let store st width a v =
  match width with
  | Opcode.W8 ->
      check_addr st a 8;
      Bytes.set_int64_le st.mem a v
  | Opcode.W1 ->
      check_addr st a 1;
      Bytes.set st.mem a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))

(** Truncation toward zero, the simulator uses the same conversion. *)
let float_to_int x = Int64.of_float x

let rec run_func st (f : Func.t) (args : value list) =
  let env : value Vreg.Tbl.t = Vreg.Tbl.create 64 in
  (try
     List.iter2 (fun p a -> Vreg.Tbl.replace env p a) f.Func.params args
   with Invalid_argument _ ->
     invalid_arg (Fmt.str "Interp: arity mismatch calling %s" f.Func.name));
  let get v =
    try Vreg.Tbl.find env v
    with Not_found ->
      invalid_arg (Fmt.str "Interp: %a used before definition in %s" Vreg.pp v
          f.Func.name)
  in
  let geti v = as_int (get v) in
  let getf v = as_float (get v) in
  let set v x = Vreg.Tbl.replace env v x in
  let value_of = function Op.V v -> geti v | Op.C c -> c in
  let tick () =
    st.ops <- st.ops + 1;
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise Out_of_fuel
  in
  let exec_op op =
    tick ();
    match op with
    | Op.Li (d, n) -> set d (I n)
    | Op.Fli (d, x) -> set d (F x)
    | Op.Mov (d, s) -> set d (get s)
    | Op.Alu (a, d, x, y) -> set d (I (Opcode.eval_alu a (value_of x) (value_of y)))
    | Op.Fpu (o, d, s1, s2) ->
        let y = match s2 with Some s -> getf s | None -> 0.0 in
        set d (F (Opcode.eval_fpu o (getf s1) y))
    | Op.Itof (d, s) -> set d (F (Int64.to_float (geti s)))
    | Op.Ftoi (d, s) -> set d (I (float_to_int (getf s)))
    | Op.Fcmp (c, d, s1, s2) ->
        set d (I (if Opcode.eval_fcond c (getf s1) (getf s2) then 1L else 0L))
    | Op.Ld (w, d, base, off) ->
        set d (I (load st w (Int64.to_int (geti base) + off)))
    | Op.St (w, v, base, off) ->
        store st w (Int64.to_int (geti base) + off) (geti v)
    | Op.Fld (d, base, off) ->
        set d
          (F (Int64.float_of_bits (load st Opcode.W8 (Int64.to_int (geti base) + off))))
    | Op.Fst (v, base, off) ->
        store st Opcode.W8
          (Int64.to_int (geti base) + off)
          (Int64.bits_of_float (getf v))
    | Op.Addr (d, g) -> (
        match List.assoc_opt g st.global_addr with
        | Some a -> set d (I (Int64.of_int a))
        | None -> invalid_arg ("Interp: unknown global " ^ g))
    | Op.Call { dst; callee; args } -> (
        Profile.note_call st.profile ~callee;
        let f' = Prog.find_func st.prog callee in
        let ret = run_func st f' (List.map get args) in
        match (dst, ret) with
        | None, _ -> ()
        | Some d, Some r -> set d r
        | Some _, None ->
            invalid_arg (Fmt.str "Interp: %s returned no value" callee))
    | Op.Emit v -> st.out_rev <- geti v :: st.out_rev
    | Op.Femit v -> st.out_rev <- Int64.bits_of_float (getf v) :: st.out_rev
  in
  let rec run_block (b : Block.t) =
    Profile.note_block st.profile ~func:f.Func.name ~block:b.Block.id;
    List.iter exec_op b.Block.ops;
    tick ();
    match b.Block.term with
    | Op.Ret None -> None
    | Op.Ret (Some v) -> Some (get v)
    | Op.Halt -> raise Exit
    | Op.Jmp l -> run_block (Func.find_block f l)
    | Op.Br (c, x, y, t, e) ->
        let taken = Opcode.eval_cond c (geti x) (geti y) in
        Profile.note_branch st.profile ~func:f.Func.name ~block:b.Block.id ~taken;
        run_block (Func.find_block f (if taken then t else e))
  in
  run_block (Func.entry f)

(** Run a whole program from its entry function.  [fuel] bounds the
    number of executed IR operations. *)
let run ?(fuel = 200_000_000) (prog : Prog.t) =
  let global_addr, data_end = Image.layout_globals prog.Prog.globals in
  let mem = Bytes.make (data_end + 4096) '\000' in
  List.iter
    (fun (g : Mcode.global) ->
      Image.write_init mem (List.assoc g.Mcode.gname global_addr) g.Mcode.init)
    prog.Prog.globals;
  let st =
    {
      prog;
      mem;
      global_addr;
      profile = Profile.create ();
      out_rev = [];
      fuel;
      ops = 0;
    }
  in
  let return_value =
    try run_func st (Prog.entry_func prog) [] with Exit -> None
  in
  let output = List.rev st.out_rev in
  {
    output;
    checksum = checksum_of_output output;
    profile = st.profile;
    dyn_ops = st.ops;
    return_value;
    mem = st.mem;
    data_end;
  }
