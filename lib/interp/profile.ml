(** Execution profiles gathered by the IR interpreter: block execution
    counts (allocation priorities) and branch direction counts (static
    prediction hints).  Keys are [(function name, block id)]. *)

type key = string * int

type t = {
  block : (key, int) Hashtbl.t;
  taken : (key, int) Hashtbl.t;  (** branch in block took its target *)
  not_taken : (key, int) Hashtbl.t;
  calls : (string, int) Hashtbl.t;
}

let create () =
  {
    block = Hashtbl.create 64;
    taken = Hashtbl.create 64;
    not_taken = Hashtbl.create 64;
    calls = Hashtbl.create 16;
  }

let bump tbl key =
  Hashtbl.replace tbl key (1 + try Hashtbl.find tbl key with Not_found -> 0)

let note_block t ~func ~block = bump t.block (func, block)
let note_branch t ~func ~block ~taken =
  bump (if taken then t.taken else t.not_taken) (func, block)
let note_call t ~callee = bump t.calls callee

let get tbl key = try Hashtbl.find tbl key with Not_found -> 0

(** Execution count of a block; 1 when never profiled, so unprofiled code
    still gets sane allocation priorities. *)
let weight t ~func ~block = max 1 (get t.block (func, block))

(** Static prediction hint for the branch terminating [block]. *)
let predict_taken t ~func ~block =
  get t.taken (func, block) > get t.not_taken (func, block)

let call_count t callee = get t.calls callee

(** A neutral profile (all weights 1, all branches predicted
    not-taken) used when no profiling run is available. *)
let neutral () = create ()
