(** The machine-code oracle: a sequential, timing-free executor of
    assembled images.

    This is the second half of the differential-testing story.  The IR
    interpreter ({!Interp}) fixes the semantics the compiler must
    preserve; [Iexec] fixes the semantics the {e simulator} must
    preserve: it executes one instruction at a time with none of the
    simulator's machinery — no issue groups, no interlocks, no
    latencies, no slot accounting — so its architectural state after
    [n] dynamic instructions is the ground truth the cycle-accurate
    machine is checked against in lockstep
    ({!Rc_check.Lockstep}).

    The executor is deliberately written from scratch against the paper
    (sections 2.1–2.4, 4.1–4.3) rather than sharing the simulator's
    issue-loop code: a bug must be disagreed about, not inherited.

    Two resolution modes:
    - {e architectural form} ([arch = true], the default): operand
      indices go through the register mapping tables whenever the PSW
      map-enable flag is set, exactly as in hardware;
    - {e physical form} ([arch = false]): operand numbers {e are}
      physical registers and the tables are never consulted — this mode
      executes the code generator's output {e before} connect insertion,
      which is what the pass-level oracle checks. *)

open Rc_isa
open Rc_core

exception Exec_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

type t = {
  code : Insn.t array;
  arch : bool;
  model : Model.t;
  iregs : int64 array;
  fregs : float array;
  imap : Map_table.t;
  fmap : Map_table.t;
  psw : Psw.t;
  mem : Bytes.t;
  trap_handler : int option;
  mutable pc : int;
  mutable halted : bool;
  mutable steps : int;  (** dynamic instructions executed *)
  mutable out_rev : int64 list;
  mutable out_pcs_rev : int list;
      (** pc of the instruction that produced each output element,
          parallel to [out_rev] *)
  mutable epc : int;
  mutable saved_psw : Psw.t option;
}

let create ?(arch = true) ?(model = Model.default) ?trap_handler
    ~(ifile : Reg.file) ~(ffile : Reg.file) (image : Image.t) =
  let mem = Bytes.make image.Image.mem_size '\000' in
  List.iter
    (fun (addr, init) -> Image.write_init mem addr init)
    image.Image.data_image;
  let t =
    {
      code = image.Image.code;
      arch;
      model;
      iregs = Array.make ifile.Reg.total 0L;
      fregs = Array.make ffile.Reg.total 0.0;
      imap = Map_table.create ~model ifile;
      fmap = Map_table.create ~model ffile;
      psw = Psw.create ();
      mem;
      trap_handler =
        Option.map (fun name -> Image.function_address image name) trap_handler;
      pc = image.Image.entry;
      halted = false;
      steps = 0;
      out_rev = [];
      out_pcs_rev = [];
      epc = 0;
      saved_psw = None;
    }
  in
  t.iregs.(Reg.sp) <- Int64.of_int image.Image.stack_top;
  t

let output t = List.rev t.out_rev
let output_pcs t = List.rev t.out_pcs_rev

(* --- register access ----------------------------------------------------- *)

let[@inline] mapped t = t.arch && t.psw.Psw.map_enable

let read_phys t (o : Insn.operand) =
  if not (mapped t) then o.Insn.r
  else
    match o.Insn.cls with
    | Reg.Int -> Map_table.read t.imap o.Insn.r
    | Reg.Float -> Map_table.read t.fmap o.Insn.r

let write_phys t (o : Insn.operand) =
  if not (mapped t) then o.Insn.r
  else
    match o.Insn.cls with
    | Reg.Int -> Map_table.write t.imap o.Insn.r
    | Reg.Float -> Map_table.write t.fmap o.Insn.r

let get_i t p = if p = Reg.zero then 0L else t.iregs.(p)
let set_phys_i t p v = if p <> Reg.zero then t.iregs.(p) <- v

(* Reads of an instruction's integer/float sources. *)
let src t i k = read_phys t i.Insn.srcs.(k)
let isrc t i k = get_i t (src t i k)
let fsrc t i k = t.fregs.(src t i k)

let dst_operand t (i : Insn.t) =
  match i.Insn.dst with
  | Some o -> o
  | None -> fail "missing destination at pc %d" t.pc

(* A mapped write: resolve through the write map, store, then perform
   the model's automatic connection (paper Figure 3) on the
   destination's table entry. *)
let write_i t (i : Insn.t) v =
  let o = dst_operand t i in
  set_phys_i t (write_phys t o) v;
  if mapped t then Map_table.note_write t.imap o.Insn.r

let write_f t (i : Insn.t) v =
  let o = dst_operand t i in
  t.fregs.(write_phys t o) <- v;
  if mapped t then Map_table.note_write t.fmap o.Insn.r

(* --- memory -------------------------------------------------------------- *)

let check_addr t a width =
  if a < 0 || a + width > Bytes.length t.mem then
    fail "bad address %d at pc %d" a t.pc

let load_mem t width a =
  match width with
  | Opcode.W8 ->
      check_addr t a 8;
      Bytes.get_int64_le t.mem a
  | Opcode.W1 ->
      check_addr t a 1;
      Int64.of_int (Char.code (Bytes.get t.mem a))

let store_mem t width a v =
  match width with
  | Opcode.W8 ->
      check_addr t a 8;
      Bytes.set_int64_le t.mem a v
  | Opcode.W1 ->
      check_addr t a 1;
      Bytes.set t.mem a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))

(* --- one instruction ------------------------------------------------------ *)

let enter_trap t ~return_to =
  match t.trap_handler with
  | None -> fail "trap with no handler configured at pc %d" t.pc
  | Some h ->
      t.saved_psw <- Some (Psw.enter_trap t.psw);
      t.epc <- return_to;
      t.pc <- h

(** Execute the instruction at [pc].  No-op once halted. *)
let step t =
  if not t.halted then begin
    if t.pc < 0 || t.pc >= Array.length t.code then
      fail "pc %d out of code" t.pc;
    let i = t.code.(t.pc) in
    t.steps <- t.steps + 1;
    let next = ref (t.pc + 1) in
    (match i.Insn.op with
    | Opcode.Alu a -> write_i t i (Opcode.eval_alu a (isrc t i 0) (isrc t i 1))
    | Opcode.Alui a -> write_i t i (Opcode.eval_alu a (isrc t i 0) i.Insn.imm)
    | Opcode.Li -> write_i t i i.Insn.imm
    | Opcode.Move -> write_i t i (isrc t i 0)
    | Opcode.Fli -> write_f t i i.Insn.fimm
    | Opcode.Fmove -> write_f t i (fsrc t i 0)
    | Opcode.Fpu f ->
        let b = if Array.length i.Insn.srcs > 1 then fsrc t i 1 else 0.0 in
        write_f t i (Opcode.eval_fpu f (fsrc t i 0) b)
    | Opcode.Itof -> write_f t i (Int64.to_float (isrc t i 0))
    | Opcode.Ftoi -> write_i t i (Int64.of_float (fsrc t i 0))
    | Opcode.Fcmp c ->
        write_i t i
          (if Opcode.eval_fcond c (fsrc t i 0) (fsrc t i 1) then 1L else 0L)
    | Opcode.Ld w ->
        let a = Int64.to_int (isrc t i 0) + Int64.to_int i.Insn.imm in
        write_i t i (load_mem t w a)
    | Opcode.St w ->
        let a = Int64.to_int (isrc t i 1) + Int64.to_int i.Insn.imm in
        store_mem t w a (isrc t i 0)
    | Opcode.Fld ->
        let a = Int64.to_int (isrc t i 0) + Int64.to_int i.Insn.imm in
        write_f t i (Int64.float_of_bits (load_mem t Opcode.W8 a))
    | Opcode.Fst ->
        let a = Int64.to_int (isrc t i 1) + Int64.to_int i.Insn.imm in
        store_mem t Opcode.W8 a (Int64.bits_of_float (fsrc t i 0))
    | Opcode.Br c ->
        if Opcode.eval_cond c (isrc t i 0) (isrc t i 1) then
          next := i.Insn.target
    | Opcode.Jmp -> next := i.Insn.target
    | Opcode.Jsr ->
        (* Hardware resets the whole table, then RA receives the return
           address at its home location (paper section 4.1). *)
        Map_table.reset t.imap;
        Map_table.reset t.fmap;
        set_phys_i t Reg.ra (Int64.of_int (t.pc + 1));
        next := i.Insn.target
    | Opcode.Rts ->
        (* The return address is read through the (pre-reset) map, as
           any source operand is; then the table resets. *)
        let ra = Int64.to_int (isrc t i 0) in
        Map_table.reset t.imap;
        Map_table.reset t.fmap;
        next := ra
    | Opcode.Connect ->
        if mapped t then
          Array.iter
            (fun (c : Insn.connect) ->
              match c.Insn.ccls with
              | Reg.Int -> Map_table.apply t.imap c
              | Reg.Float -> Map_table.apply t.fmap c)
            i.Insn.connects
    | Opcode.Emit ->
        t.out_rev <- isrc t i 0 :: t.out_rev;
        t.out_pcs_rev <- t.pc :: t.out_pcs_rev
    | Opcode.Femit ->
        t.out_rev <- Int64.bits_of_float (fsrc t i 0) :: t.out_rev;
        t.out_pcs_rev <- t.pc :: t.out_pcs_rev
    | Opcode.Trap ->
        enter_trap t ~return_to:(t.pc + 1);
        next := t.pc
    | Opcode.Rfe ->
        (match t.saved_psw with
        | Some saved ->
            Psw.return_from_exception t.psw ~saved;
            t.saved_psw <- None
        | None -> fail "rfe without saved PSW at pc %d" t.pc);
        next := t.epc
    | Opcode.Mapen -> t.psw.Psw.map_enable <- not (Int64.equal i.Insn.imm 0L)
    | Opcode.Mfmap kind ->
        let idx = Int64.to_int i.Insn.imm in
        let v =
          match kind with
          | Opcode.Read -> Map_table.read t.imap idx
          | Opcode.Write -> Map_table.write t.imap idx
        in
        (* Privileged table read: the destination write does not perform
           the model's automatic connection (it is meant for handlers
           running with the map disabled). *)
        set_phys_i t (write_phys t (dst_operand t i)) (Int64.of_int v)
    | Opcode.Mtmap kind -> (
        let idx = Int64.to_int i.Insn.imm in
        let v = Int64.to_int (isrc t i 0) in
        match kind with
        | Opcode.Read -> Map_table.connect_use t.imap ~ri:idx ~rp:v
        | Opcode.Write -> Map_table.connect_def t.imap ~ri:idx ~rp:v)
    | Opcode.Halt -> t.halted <- true
    | Opcode.Nop -> ());
    match i.Insn.op with
    | Opcode.Trap -> () (* pc already redirected by enter_trap *)
    | _ -> t.pc <- !next
  end

(** Run to [Halt].  [fuel] bounds executed instructions. *)
let run ?(fuel = 200_000_000) t =
  let budget = ref fuel in
  while (not t.halted) && !budget > 0 do
    step t;
    decr budget
  done;
  if not t.halted then fail "out of fuel after %d instructions" t.steps
