(** Reference interpreter for the IR.

    Serves three roles: the {e profiler} (block/branch counts for the
    compiler), the {e oracle} for differential testing (compiled code
    must emit the same output stream), and the {e baseline semantics}
    that optimisation passes must preserve.

    Memory is laid out exactly as the assembler lays it out
    ({!Rc_isa.Image.layout_globals}), so addresses computed by [Addr]
    arithmetic agree between interpreted and simulated runs. *)

exception Out_of_fuel
exception Bad_address of int

type value = I of int64 | F of float

type outcome = {
  output : int64 list;
      (** emitted values in order; floats as IEEE bit patterns *)
  checksum : int64;
  profile : Profile.t;
  dyn_ops : int;  (** IR operations executed (terminators included) *)
  return_value : value option;
  mem : Bytes.t;  (** final memory; globals live in [data_base, data_end) *)
  data_end : int;
}

(** The order-sensitive fold over the output stream shared with the
    simulator. *)
val checksum_of_output : int64 list -> int64

(** Run a whole program from its entry function.  [fuel] bounds the
    number of executed IR operations.
    @raise Out_of_fuel when the bound is hit.
    @raise Bad_address on an out-of-range memory access.
    @raise Invalid_argument on arity mismatches, unknown globals or use
    of an undefined register. *)
val run : ?fuel:int -> Rc_ir.Prog.t -> outcome
