(** Natural-loop discovery, plus recognition of the {e simple counted
    loops} that the unroller and loop-invariant code motion operate
    on. *)

open Rc_ir
open Rc_isa
module IntSet : Set.S with type elt = int

type loop = {
  head : Op.label;
  body : IntSet.t;  (** includes the head *)
  back_edges : Op.label list;  (** sources of edges into the head *)
}

(** Natural loops from back edges; loops sharing a head are merged. *)
val natural_loops : Func.t -> loop list

(** Loop-nesting depth of every block (0 outside any loop), usable as a
    static weight when no profile is available. *)
val depths : Func.t -> Op.label -> int

(** A simple counted loop, as produced by {!Rc_ir.Builder.for_}:
    single-block body, invariant bound, constant step, and the
    builder's add/mov induction pattern. *)
type simple = {
  loop : loop;
  header : Block.t;
  body_blk : Block.t;
  cond : Opcode.cond;
  ivar : Vreg.t;  (** induction variable *)
  bound : Vreg.t;
  step : int64;
  exit : Op.label;
}

val find_simple : Func.t -> simple list
