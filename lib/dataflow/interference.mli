(** Interference graph over virtual registers, built from liveness.
    Only same-class interference is recorded (the integer and
    floating-point files are allocated independently). *)

open Rc_ir

type t = {
  adj : (int, Vreg.Set.t) Hashtbl.t;  (** vreg id -> interfering vregs *)
  mutable moves : (Vreg.t * Vreg.t) list;  (** move-related pairs *)
  nodes : Vreg.Set.t;
}

val neighbours : t -> Vreg.t -> Vreg.Set.t
val degree : t -> Vreg.t -> int
val interferes : t -> Vreg.t -> Vreg.t -> bool

(** Adds a same-class undirected edge; cross-class pairs are ignored. *)
val add_edge : t -> Vreg.t -> Vreg.t -> unit

val build : Func.t -> Liveness.t -> t

(** Largest number of same-class registers simultaneously live at any
    program point (block interiors included) — the register-pressure
    indicator used by the allocator's core-scarcity policy. *)
val max_pressure : Func.t -> Liveness.t -> Rc_isa.Reg.cls -> int
