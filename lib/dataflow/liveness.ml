(** Backward liveness analysis over virtual registers. *)

open Rc_ir

type t = {
  live_in : (Op.label, Vreg.Set.t) Hashtbl.t;
  live_out : (Op.label, Vreg.Set.t) Hashtbl.t;
}

let live_in t id = try Hashtbl.find t.live_in id with Not_found -> Vreg.Set.empty
let live_out t id = try Hashtbl.find t.live_out id with Not_found -> Vreg.Set.empty

(** Per-block [use] (read before written) and [def] (written) sets. *)
let block_use_def (b : Block.t) =
  let use = ref Vreg.Set.empty and def = ref Vreg.Set.empty in
  let add_use v = if not (Vreg.Set.mem v !def) then use := Vreg.Set.add v !use in
  List.iter
    (fun op ->
      List.iter add_use (Op.uses op);
      Option.iter (fun d -> def := Vreg.Set.add d !def) (Op.def op))
    b.Block.ops;
  List.iter add_use (Op.term_uses b.Block.term);
  (!use, !def)

let compute (f : Func.t) =
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let use_def = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace use_def b.Block.id (block_use_def b);
      Hashtbl.replace live_in b.Block.id Vreg.Set.empty;
      Hashtbl.replace live_out b.Block.id Vreg.Set.empty)
    f.Func.blocks;
  let changed = ref true in
  (* Iterate blocks in reverse layout order for fast convergence. *)
  let rev_blocks = List.rev f.Func.blocks in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Block.t) ->
        let id = b.Block.id in
        let out =
          List.fold_left
            (fun acc s -> Vreg.Set.union acc (Hashtbl.find live_in s))
            Vreg.Set.empty (Block.successors b)
        in
        let use, def = Hashtbl.find use_def id in
        let inn = Vreg.Set.union use (Vreg.Set.diff out def) in
        if not (Vreg.Set.equal out (Hashtbl.find live_out id)) then begin
          Hashtbl.replace live_out id out;
          changed := true
        end;
        if not (Vreg.Set.equal inn (Hashtbl.find live_in id)) then begin
          Hashtbl.replace live_in id inn;
          changed := true
        end)
      rev_blocks
  done;
  { live_in; live_out }

(** Walk a block backwards, supplying at each operation the set of
    registers live {e after} it.  [f] sees operations last-to-first. *)
let fold_block_backward t (b : Block.t) ~f ~init =
  let live = ref (live_out t b.Block.id) in
  List.iter (fun v -> live := Vreg.Set.add v !live) (Op.term_uses b.Block.term);
  let acc = ref init in
  List.iter
    (fun op ->
      acc := f !acc op !live;
      Option.iter (fun d -> live := Vreg.Set.remove d !live) (Op.def op);
      List.iter (fun u -> live := Vreg.Set.add u !live) (Op.uses op))
    (List.rev b.Block.ops);
  !acc

(** Registers live across at least one call site (candidates for
    callee-saved placement). *)
let live_across_calls (f : Func.t) t =
  let acc = ref Vreg.Set.empty in
  List.iter
    (fun (b : Block.t) ->
      ignore
        (fold_block_backward t b ~init:()
           ~f:(fun () op live_after ->
             match op with
             | Op.Call _ ->
                 (* The call's own result is defined, not live across. *)
                 let live =
                   match Op.def op with
                   | Some d -> Vreg.Set.remove d live_after
                   | None -> live_after
                 in
                 acc := Vreg.Set.union !acc live
             | _ -> ())))
    f.Func.blocks;
  !acc
