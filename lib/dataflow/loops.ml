(** Natural-loop discovery, plus recognition of the {e simple counted
    loops} that the unroller and loop-invariant code motion operate
    on. *)

open Rc_ir
open Rc_isa
module IntSet = Set.Make (Int)

type loop = {
  head : Op.label;
  body : IntSet.t;  (** includes the head *)
  back_edges : Op.label list;  (** sources of edges into the head *)
}

(** Natural loops from back edges (edge [t -> h] where [h] dominates
    [t]); loops with the same head are merged. *)
let natural_loops (f : Func.t) =
  let doms = Dominators.compute f in
  let preds = Func.predecessors f in
  let loops = Hashtbl.create 8 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun succ ->
          if Dominators.dominates doms succ b.Block.id then begin
            (* back edge b -> succ *)
            let body = ref (IntSet.of_list [ succ; b.Block.id ]) in
            let rec grow node =
              if not (IntSet.mem node !body) then begin
                body := IntSet.add node !body;
                List.iter grow (preds node)
              end
            in
            if b.Block.id <> succ then List.iter grow (preds b.Block.id);
            let prev =
              match Hashtbl.find_opt loops succ with
              | Some l -> l
              | None -> { head = succ; body = IntSet.empty; back_edges = [] }
            in
            Hashtbl.replace loops succ
              {
                prev with
                body = IntSet.union prev.body !body;
                back_edges = b.Block.id :: prev.back_edges;
              }
          end)
        (Block.successors b))
    f.Func.blocks;
  Hashtbl.fold (fun _ l acc -> l :: acc) loops []

(** Loop-nesting depth of every block (0 outside any loop), used as a
    static spill-cost weight when no profile is available. *)
let depths (f : Func.t) =
  let loops = natural_loops f in
  let depth = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace depth id 0) (Func.block_ids f);
  List.iter
    (fun l ->
      IntSet.iter
        (fun id -> Hashtbl.replace depth id (1 + Hashtbl.find depth id))
        l.body)
    loops;
  fun id -> try Hashtbl.find depth id with Not_found -> 0

(** A simple counted loop, as produced by {!Rc_ir.Builder.for_}:

    {v
    header: ...test ops...
            br cond i, n -> body | exit
    body:   ...ops...
            i' = add i, step     (single def of i in the loop)
            i  = mov i'
            jmp header
    v}

    with a single-block body, [n] invariant and step constant. *)
type simple = {
  loop : loop;
  header : Block.t;
  body_blk : Block.t;
  cond : Opcode.cond;
  ivar : Vreg.t;  (** induction variable *)
  bound : Vreg.t;
  step : int64;
  exit : Op.label;
}

let find_simple (f : Func.t) =
  let candidates = natural_loops f in
  List.filter_map
    (fun l ->
      match IntSet.elements l.body with
      | [ a; b ] -> (
          let header = Func.find_block f l.head in
          let body_id = if a = l.head then b else a in
          let body_blk = Func.find_block f body_id in
          match (header.Block.term, body_blk.Block.term) with
          | Op.Br (cond, i, n, t, e), Op.Jmp back
            when t = body_id && back = l.head && e <> l.head -> (
              (* Find the unique redefinition of i in the body as the
                 builder's add/mov pair, and check n is loop-invariant. *)
              let defs_of v =
                List.filter
                  (fun op -> match Op.def op with Some d -> Vreg.equal d v | None -> false)
                  body_blk.Block.ops
              in
              let header_defines v =
                List.exists
                  (fun op ->
                    match Op.def op with Some d -> Vreg.equal d v | None -> false)
                  header.Block.ops
              in
              if defs_of n <> [] || header_defines n || header_defines i then None
              else
                match defs_of i with
                | [ Op.Mov (_, i') ] -> (
                    match defs_of i' with
                    | [ Op.Alu (Opcode.Add, _, Op.V base, Op.C step) ]
                      when Vreg.equal base i ->
                        let ok_dir =
                          (cond = Opcode.Lt && Int64.compare step 0L > 0)
                          || (cond = Opcode.Gt && Int64.compare step 0L < 0)
                        in
                        if ok_dir then
                          Some
                            {
                              loop = l;
                              header;
                              body_blk;
                              cond;
                              ivar = i;
                              bound = n;
                              step;
                              exit = e;
                            }
                        else None
                    | _ -> None)
                | _ -> None)
          | _ -> None)
      | _ -> None)
    candidates
