(** Iterative dominator analysis on the block graph of a function. *)

open Rc_ir
module IntSet : Set.S with type elt = int

type t = {
  dom : (Op.label, IntSet.t) Hashtbl.t;  (** all dominators of each block *)
  idom : (Op.label, Op.label option) Hashtbl.t;
}

val dominators : t -> Op.label -> IntSet.t
val idom : t -> Op.label -> Op.label option
val dominates : t -> Op.label -> Op.label -> bool
val compute : Func.t -> t
