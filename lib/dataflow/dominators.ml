(** Iterative dominator analysis on the block graph of a function. *)

open Rc_ir
module IntSet = Set.Make (Int)

type t = {
  dom : (Op.label, IntSet.t) Hashtbl.t;  (** all dominators of each block *)
  idom : (Op.label, Op.label option) Hashtbl.t;
}

let dominators t id = try Hashtbl.find t.dom id with Not_found -> IntSet.empty
let idom t id = try Hashtbl.find t.idom id with Not_found -> None
let dominates t a b = IntSet.mem a (dominators t b)

let compute (f : Func.t) =
  let ids = Func.block_ids f in
  let all = List.fold_left (fun s i -> IntSet.add i s) IntSet.empty ids in
  let entry = (Func.entry f).Block.id in
  let preds = Func.predecessors f in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun id ->
      Hashtbl.replace dom id
        (if id = entry then IntSet.singleton entry else all))
    ids;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if id <> entry then begin
          let pred_doms =
            List.filter_map
              (fun p ->
                match Hashtbl.find_opt dom p with
                | Some s -> Some s
                | None -> None)
              (preds id)
          in
          let inter =
            match pred_doms with
            | [] -> IntSet.singleton id (* unreachable *)
            | d :: rest -> List.fold_left IntSet.inter d rest
          in
          let next = IntSet.add id inter in
          if not (IntSet.equal next (Hashtbl.find dom id)) then begin
            Hashtbl.replace dom id next;
            changed := true
          end
        end)
      ids
  done;
  (* Immediate dominator: the strict dominator dominated by all other
     strict dominators. *)
  let idom = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let strict = IntSet.remove id (Hashtbl.find dom id) in
      let im =
        IntSet.fold
          (fun cand acc ->
            match acc with
            | None -> Some cand
            | Some best ->
                if IntSet.mem best (Hashtbl.find dom cand) then Some cand
                else Some best)
          strict None
      in
      Hashtbl.replace idom id im)
    ids;
  { dom; idom }
