(** Interference graph over virtual registers, built from liveness.
    Only same-class interference is recorded (the integer and
    floating-point files are allocated independently). *)

open Rc_ir

type t = {
  adj : (int, Vreg.Set.t) Hashtbl.t;  (** vreg id -> interfering vregs *)
  mutable moves : (Vreg.t * Vreg.t) list;  (** move-related pairs *)
  nodes : Vreg.Set.t;
}

let neighbours t (v : Vreg.t) =
  try Hashtbl.find t.adj v.Vreg.id with Not_found -> Vreg.Set.empty

let degree t v = Vreg.Set.cardinal (neighbours t v)
let interferes t a b = Vreg.Set.mem b (neighbours t a)

let add_edge t (a : Vreg.t) (b : Vreg.t) =
  if (not (Vreg.equal a b)) && Rc_isa.Reg.equal_cls a.Vreg.cls b.Vreg.cls then begin
    let na = neighbours t a and nb = neighbours t b in
    Hashtbl.replace t.adj a.Vreg.id (Vreg.Set.add b na);
    Hashtbl.replace t.adj b.Vreg.id (Vreg.Set.add a nb)
  end

let build (f : Func.t) (live : Liveness.t) =
  let t =
    { adj = Hashtbl.create 64; moves = []; nodes = Func.all_vregs f }
  in
  (* Parameters are all defined simultaneously at function entry. *)
  let rec pairs = function
    | [] -> ()
    | p :: rest ->
        List.iter (add_edge t p) rest;
        pairs rest
  in
  pairs f.Func.params;
  List.iter
    (fun (b : Block.t) ->
      Liveness.fold_block_backward live b ~init:()
        ~f:(fun () op live_after ->
          match Op.def op with
          | None -> ()
          | Some d ->
              let live_after =
                match op with
                | Op.Mov (_, s) ->
                    t.moves <- (d, s) :: t.moves;
                    Vreg.Set.remove s live_after
                | _ -> live_after
              in
              Vreg.Set.iter (fun v -> add_edge t d v) live_after))
    f.Func.blocks;
  t

(** Largest number of same-class registers simultaneously live at any
    program point (block interiors included) — the register-pressure
    indicator used by the allocator's core-scarcity policy and by
    tests. *)
let max_pressure (f : Func.t) (live : Liveness.t) cls =
  let count set =
    Vreg.Set.fold
      (fun (v : Vreg.t) n ->
        if Rc_isa.Reg.equal_cls v.Vreg.cls cls then n + 1 else n)
      set 0
  in
  List.fold_left
    (fun acc (b : Block.t) ->
      let acc = max acc (count (Liveness.live_in live b.Block.id)) in
      Liveness.fold_block_backward live b ~init:acc
        ~f:(fun acc _op live_after -> max acc (count live_after)))
    0 f.Func.blocks
