(** Backward liveness analysis over virtual registers. *)

open Rc_ir

type t = {
  live_in : (Op.label, Vreg.Set.t) Hashtbl.t;
  live_out : (Op.label, Vreg.Set.t) Hashtbl.t;
}

val live_in : t -> Op.label -> Vreg.Set.t
val live_out : t -> Op.label -> Vreg.Set.t

(** Per-block [use] (read before written) and [def] (written) sets. *)
val block_use_def : Block.t -> Vreg.Set.t * Vreg.Set.t

val compute : Func.t -> t

(** Walk a block backwards, supplying at each operation the set of
    registers live {e after} it.  [f] sees operations last-to-first. *)
val fold_block_backward :
  t -> Block.t -> f:('a -> Op.t -> Vreg.Set.t -> 'a) -> init:'a -> 'a

(** Registers live across at least one call site (candidates for
    callee-saved placement). *)
val live_across_calls : Func.t -> t -> Vreg.Set.t
