(** Top-level register allocation over a whole program.

    - Without RC, the machine has only the core registers: colours are
      the allocatable core registers and everything else spills to
      memory through the reserved spill temporaries.
    - With RC, colours span the whole 256-register physical file; the
      priority order places hot ranges in the core section and colder
      ranges in the extended section, where every access costs connect
      instructions instead of loads and stores. *)

open Rc_ir

type t = {
  ifile : Rc_isa.Reg.file;
  ffile : Rc_isa.Reg.file;
  by_func : (string, Assignment.t) Hashtbl.t;
  graphs : (string, Rc_dataflow.Interference.t) Hashtbl.t;
}

let assignment t (f : Func.t) =
  try Hashtbl.find t.by_func f.Func.name
  with Not_found -> invalid_arg ("Alloc.assignment: " ^ f.Func.name)

let graph t (f : Func.t) = Hashtbl.find t.graphs f.Func.name

let run ?aggressive_extended ~ifile ~ffile (prog : Prog.t)
    (profile : Rc_interp.Profile.t) =
  let cfg = Coloring.config ?aggressive_extended ~ifile ~ffile () in
  let t =
    { ifile; ffile; by_func = Hashtbl.create 8; graphs = Hashtbl.create 8 }
  in
  List.iter
    (fun (f : Func.t) ->
      let graph, asn = Coloring.run cfg f profile in
      Hashtbl.replace t.by_func f.Func.name asn;
      Hashtbl.replace t.graphs f.Func.name graph)
    prog.Prog.funcs;
  t

(** Validation across a whole program (used by the test-suite). *)
let validate t =
  Hashtbl.fold
    (fun name asn ok ->
      ok && Assignment.validate asn (Hashtbl.find t.graphs name))
    t.by_func true

(** Total spilled virtual registers across the program. *)
let total_spills t =
  Hashtbl.fold (fun _ asn n -> n + Assignment.spilled_count asn) t.by_func 0
