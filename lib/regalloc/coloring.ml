(** Profile-guided priority colouring (Chow-style, as the paper's "graph
    coloring algorithm that utilizes profile information in its priority
    calculations", section 5.1).

    Live ranges are coloured hottest-first.  Each range has an ordered
    colour preference realising the paper's allocation policy: "place
    the most important variables into the core registers, while storing
    the less important variables in the extended registers or memory"
    (section 3), with values live across calls preferring callee-saved
    core registers to avoid save/restore traffic. *)

open Rc_isa
open Rc_ir
open Rc_dataflow

type config = {
  ifile : Reg.file;
  ffile : Reg.file;
  aggressive_extended : bool;
      (** send write-heavy ranges to the extended section when the core
          is scarce — profitable with zero-cycle connects, where the
          connect-def per write is nearly free; a compiler targeting
          1-cycle connects keeps values in the core instead *)
  (* registers available for allocation, per class, partitioned *)
  caller_core : Reg.cls -> int list;
  callee_core : Reg.cls -> int list;
  extended : Reg.cls -> int list;
}

let config ?(aggressive_extended = true) ~ifile ~ffile () =
  let part cls (f : Reg.file) =
    let alloc = Reg.allocatable cls f in
    let callee = Reg.callee_saved cls f in
    let core, ext = List.partition (fun p -> Reg.is_core f p) alloc in
    let caller = List.filter (fun p -> not (List.mem p callee)) core in
    (caller, callee, ext)
  in
  let icaller, icallee, iext = part Reg.Int ifile in
  let fcaller, fcallee, fext = part Reg.Float ffile in
  {
    ifile;
    ffile;
    aggressive_extended;
    caller_core = (function Reg.Int -> icaller | Reg.Float -> fcaller);
    callee_core = (function Reg.Int -> icallee | Reg.Float -> fcallee);
    extended = (function Reg.Int -> iext | Reg.Float -> fext);
  }

(** Profile-weighted use and definition counts of each virtual register.
    Their sum is the classic spill cost (every occurrence would become a
    memory access); their difference ranks {e core affinity} under RC:
    read-mostly values (loop invariants) gain the most from a core
    register — their reads are free and they are never rewritten —
    while frequently-written temporaries are better renamed across the
    large extended section at the price of a connect-def per write. *)
let use_def_weights (f : Func.t) (profile : Rc_interp.Profile.t) =
  let uses = Vreg.Tbl.create 64 and defs = Vreg.Tbl.create 64 in
  let bump tbl v w =
    Vreg.Tbl.replace tbl v (w + try Vreg.Tbl.find tbl v with Not_found -> 0)
  in
  List.iter
    (fun (b : Block.t) ->
      let w =
        Rc_interp.Profile.weight profile ~func:f.Func.name ~block:b.Block.id
      in
      List.iter
        (fun op ->
          List.iter (fun u -> bump uses u w) (Op.uses op);
          Option.iter (fun d -> bump defs d w) (Op.def op))
        b.Block.ops;
      List.iter (fun u -> bump uses u w) (Op.term_uses b.Block.term))
    f.Func.blocks;
  (* Parameters are live at entry even if rarely used. *)
  List.iter (fun p -> bump uses p 1) f.Func.params;
  let get tbl v = try Vreg.Tbl.find tbl v with Not_found -> 0 in
  ((fun v -> get uses v), fun v -> get defs v)

let spill_costs (f : Func.t) (profile : Rc_interp.Profile.t) =
  let use_w, def_w = use_def_weights f profile in
  fun v -> use_w v + def_w v

(** Colour one function.  Returns the assignment; spills get slots. *)
let run cfg (f : Func.t) (profile : Rc_interp.Profile.t) =
  let live = Liveness.compute f in
  let graph = Interference.build f live in
  let use_w, def_w = use_def_weights f profile in
  let cost v = use_w v + def_w v in
  let has_extended =
    cfg.extended Reg.Int <> [] || cfg.extended Reg.Float <> []
  in
  (* Assignment order doubles as core priority: earlier ranges grab the
     core segment.  Without an extended section the order is the classic
     spill priority (hottest first).  With one, rank by core affinity
     (uses minus defs) so invariants occupy the core and write-heavy
     temporaries spread over the extended registers. *)
  let rank v = if has_extended then use_w v - def_w v else cost v in
  (* Core scarcity per class: only when the live pressure exceeds the
     allocatable core section is it worth sending write-heavy ranges to
     the extended section (renaming beats reuse stalls); with a roomy
     core, extended placement would just buy connects for nothing. *)
  let core_scarce cls =
    has_extended && cfg.aggressive_extended
    &&
    let core_avail =
      List.length (cfg.caller_core cls) + List.length (cfg.callee_core cls)
    in
    (* Renaming freedom needs headroom well beyond the peak pressure:
       with the core only just covering the live values, reuse distances
       stay within instruction latencies and the in-order pipeline
       stalls. *)
    2 * Interference.max_pressure f live cls > core_avail
  in
  let iscarce = core_scarce Reg.Int and fscarce = core_scarce Reg.Float in
  let core_scarce = function Reg.Int -> iscarce | Reg.Float -> fscarce in
  let crosses_call = Liveness.live_across_calls f live in
  let asn = Assignment.create ~ifile:cfg.ifile ~ffile:cfg.ffile in
  let nodes =
    Vreg.Set.elements graph.Interference.nodes
    |> List.sort (fun a b ->
           match Int.compare (rank b) (rank a) with
           | 0 -> (
               match Int.compare (cost b) (cost a) with
               | 0 -> Vreg.compare a b
               | c -> c)
           | c -> c)
  in
  (* Within a preference segment, pick the least-recently-assigned free
     colour.  First-fit would funnel every short-lived range through the
     same few registers, and the resulting WAR/WAW dependences serialise
     an in-order superscalar; spreading assignments is the compiler-side
     register renaming that lets a large file pay off — and with a small
     file the forced reuse is precisely the scheduling restriction the
     paper measures. *)
  let stamp = ref 0 in
  let last_used : (Reg.cls * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v : Vreg.t) ->
      let cls = v.Vreg.cls in
      let segments =
        if Vreg.Set.mem v crosses_call then
          [ cfg.callee_core cls; cfg.caller_core cls; cfg.extended cls ]
        else begin
          (* One merged core segment: restricting short-lived ranges to
             the caller-saved half would halve the effective file and
             reintroduce the very reuse serialisation a big file is
             meant to remove. *)
          let core = cfg.caller_core cls @ cfg.callee_core cls in
          if core_scarce cls && use_w v <= def_w v then
            (* Write-heavy ranges prefer the extended section outright:
               a core register would only buy them reuse stalls, while a
               connect-def per write buys full renaming. *)
            [ cfg.extended cls; core ]
          else [ core; cfg.extended cls ]
        end
      in
      let taken = Hashtbl.create 16 in
      Vreg.Set.iter
        (fun n ->
          match Vreg.Tbl.find_opt asn.Assignment.loc n with
          | Some (Assignment.Reg p) -> Hashtbl.replace taken p ()
          | _ -> ())
        (Interference.neighbours graph v);
      let pick_in_segment seg =
        List.fold_left
          (fun best p ->
            if Hashtbl.mem taken p then best
            else
              let age =
                try Hashtbl.find last_used (cls, p) with Not_found -> -1
              in
              match best with
              | Some (_, best_age) when best_age <= age -> best
              | _ -> Some (p, age))
          None seg
      in
      let rec pick = function
        | [] -> None
        | seg :: rest -> (
            match pick_in_segment seg with Some (p, _) -> Some p | None -> pick rest)
      in
      match pick segments with
      | Some p ->
          incr stamp;
          Hashtbl.replace last_used (cls, p) !stamp;
          Assignment.set_reg asn v p
      | None -> ignore (Assignment.spill asn v))
    nodes;
  (graph, asn)
