(** Top-level register allocation over a whole program.

    - Without RC, the machine has only the core registers: colours are
      the allocatable core registers and everything else spills through
      the reserved spill temporaries.
    - With RC, colours span the whole physical file; hot read-mostly
      ranges land in the core section and colder or write-heavy ranges
      in the extended section, where accesses cost connect instructions
      instead of loads and stores. *)

open Rc_ir

type t = {
  ifile : Rc_isa.Reg.file;
  ffile : Rc_isa.Reg.file;
  by_func : (string, Assignment.t) Hashtbl.t;
  graphs : (string, Rc_dataflow.Interference.t) Hashtbl.t;
}

(** @raise Invalid_argument for an unknown function. *)
val assignment : t -> Func.t -> Assignment.t

val graph : t -> Func.t -> Rc_dataflow.Interference.t

(** [aggressive_extended] defaults to [true]; pass [false] when
    compiling for 1-cycle connects (see {!Coloring.config}). *)
val run :
  ?aggressive_extended:bool ->
  ifile:Rc_isa.Reg.file ->
  ffile:Rc_isa.Reg.file ->
  Prog.t ->
  Rc_interp.Profile.t ->
  t

(** Validation across a whole program (used by the test-suite). *)
val validate : t -> bool

(** Total spilled virtual registers across the program. *)
val total_spills : t -> int
