(** The result of register allocation for one function: every virtual
    register is either in a physical register (core or extended section)
    or in a numbered spill slot of the frame. *)

open Rc_ir

type location =
  | Reg of int  (** physical register number within the vreg's class *)
  | Slot of int
      (** spill slot index; the code generator assigns frame offsets *)

type t = {
  loc : location Vreg.Tbl.t;
  mutable nslots : int;  (** number of spill slots handed out *)
  ifile : Rc_isa.Reg.file;
  ffile : Rc_isa.Reg.file;
}

val create : ifile:Rc_isa.Reg.file -> ffile:Rc_isa.Reg.file -> t
val file_of : t -> Rc_isa.Reg.cls -> Rc_isa.Reg.file
val set_reg : t -> Vreg.t -> int -> unit
val fresh_slot : t -> int

(** Spill a register into a fresh slot; returns the slot. *)
val spill : t -> Vreg.t -> int

(** @raise Invalid_argument for an unallocated register. *)
val location : t -> Vreg.t -> location

val is_spilled : t -> Vreg.t -> bool

(** @raise Invalid_argument when the register is spilled. *)
val reg_of : t -> Vreg.t -> int

(** Physical registers of a class actually used, sorted. *)
val used_registers : t -> Rc_isa.Reg.cls -> int list

val spilled_count : t -> int

(** Check that no two interfering same-class virtual registers share a
    location — the correctness property of any allocation. *)
val validate : t -> Rc_dataflow.Interference.t -> bool

val pp : Format.formatter -> t -> unit
