(** The result of register allocation for one function: every virtual
    register is either in a physical register (core or extended section)
    or in a numbered spill slot of the frame. *)

open Rc_ir

type location =
  | Reg of int  (** physical register number within the vreg's class *)
  | Slot of int  (** spill slot index; the code generator assigns frame
                     offsets *)

type t = {
  loc : location Vreg.Tbl.t;
  mutable nslots : int;  (** number of spill slots handed out *)
  ifile : Rc_isa.Reg.file;
  ffile : Rc_isa.Reg.file;
}

let create ~ifile ~ffile =
  { loc = Vreg.Tbl.create 64; nslots = 0; ifile; ffile }

let file_of t = function
  | Rc_isa.Reg.Int -> t.ifile
  | Rc_isa.Reg.Float -> t.ffile

let set_reg t v p = Vreg.Tbl.replace t.loc v (Reg p)

let fresh_slot t =
  let s = t.nslots in
  t.nslots <- s + 1;
  s

let spill t v =
  let s = fresh_slot t in
  Vreg.Tbl.replace t.loc v (Slot s);
  s

let location t v =
  match Vreg.Tbl.find_opt t.loc v with
  | Some l -> l
  | None -> invalid_arg (Fmt.str "Assignment.location: %a unallocated" Vreg.pp v)

let is_spilled t v = match location t v with Slot _ -> true | Reg _ -> false

let reg_of t v =
  match location t v with
  | Reg p -> p
  | Slot _ -> invalid_arg (Fmt.str "Assignment.reg_of: %a spilled" Vreg.pp v)

(** Physical registers of a class actually used by the allocation. *)
let used_registers t cls =
  let used = Hashtbl.create 32 in
  Vreg.Tbl.iter
    (fun (v : Vreg.t) l ->
      match l with
      | Reg p when Rc_isa.Reg.equal_cls v.Vreg.cls cls -> Hashtbl.replace used p ()
      | _ -> ())
    t.loc;
  Hashtbl.fold (fun p () acc -> p :: acc) used []
  |> List.sort Int.compare

let spilled_count t =
  Vreg.Tbl.fold
    (fun _ l n -> match l with Slot _ -> n + 1 | Reg _ -> n)
    t.loc 0

(** Check that no two interfering same-class virtual registers share a
    location — the correctness property of any allocation. *)
let validate t (graph : Rc_dataflow.Interference.t) =
  let ok = ref true in
  Vreg.Set.iter
    (fun v ->
      Vreg.Set.iter
        (fun u ->
          if Vreg.compare v u < 0 && location t v = location t u then ok := false)
        (Rc_dataflow.Interference.neighbours graph v))
    graph.Rc_dataflow.Interference.nodes;
  !ok

let pp ppf t =
  Vreg.Tbl.iter
    (fun v l ->
      match l with
      | Reg p -> Fmt.pf ppf "%a -> %a@." Vreg.pp v (Rc_isa.Reg.pp_phys v.Vreg.cls) p
      | Slot s -> Fmt.pf ppf "%a -> slot %d@." Vreg.pp v s)
    t.loc
