(** Profile-guided priority colouring (Chow-style, as the paper's "graph
    coloring algorithm that utilizes profile information in its priority
    calculations", section 5.1).

    Live ranges are coloured by priority.  Each range has an ordered
    colour preference realising the paper's allocation policy ("place
    the most important variables into the core registers, while storing
    the less important variables in the extended registers or memory",
    section 3) plus two policies this reproduction needed on an in-order
    machine (DESIGN.md section 10): least-recently-used colour choice
    within a preference segment, and core-affinity ranking with an
    extended-first rule for write-heavy ranges under core scarcity. *)

open Rc_isa
open Rc_ir

type config = {
  ifile : Reg.file;
  ffile : Reg.file;
  aggressive_extended : bool;
      (** send write-heavy ranges to the extended section when the core
          is scarce — profitable with zero-cycle connects; a compiler
          targeting 1-cycle connects keeps values in the core instead *)
  caller_core : Reg.cls -> int list;
  callee_core : Reg.cls -> int list;
  extended : Reg.cls -> int list;
}

val config :
  ?aggressive_extended:bool -> ifile:Reg.file -> ffile:Reg.file -> unit -> config

(** Profile-weighted use and definition counts of each virtual register.
    Their sum is the classic spill cost; their difference ranks core
    affinity under RC. *)
val use_def_weights :
  Func.t -> Rc_interp.Profile.t -> (Vreg.t -> int) * (Vreg.t -> int)

val spill_costs : Func.t -> Rc_interp.Profile.t -> Vreg.t -> int

(** Colour one function; spilled registers receive slots.  Returns the
    interference graph (for validation) and the assignment. *)
val run :
  config ->
  Func.t ->
  Rc_interp.Profile.t ->
  Rc_dataflow.Interference.t * Assignment.t
