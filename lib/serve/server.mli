(** The persistent simulation service behind [rcc serve].

    A hand-rolled HTTP/1.1 server (see {!Http}) over [Unix] sockets,
    owning one long-lived {!Rc_harness.Experiments.ctx} so the
    prepare/allocate memo tables and the trace cache stay warm across
    requests: the second [/run] for any compiled-image fingerprint is
    re-timed by {!Rc_machine.Trace_replay} instead of executed.

    Endpoints:
    - [POST /run]: one machine configuration + benchmark; the body is
      byte-identical to [rcc run --json] (modulo pass wall-clock).
    - [POST /figures]: experiment ids; same document as
      [rcc figures --json].
    - [GET /healthz]: liveness, uptime seconds, in-flight count.
    - [GET /version]: service version and build environment.
    - [GET /metrics]: Prometheus text exposition (version 0.0.4) of
      the {!Stats} registry — request counters by endpoint and status,
      request-duration histograms with cumulative [le] buckets, shed/
      abandoned totals, inflight and uptime gauges, and the harness
      trace-cache counters ({!Rc_harness.Experiments.export_metrics}).
    - [GET /metrics.json]: the pre-Prometheus JSON document, unchanged
      ({!Rc_harness.Experiments.metrics_json} plus per-endpoint
      request counts and latency quantiles).
    - [GET /trace]: Chrome trace-event JSON of the most recent
      [trace_capacity] requests' span breakdowns (admission queue,
      read, parse, compile, simulate — tagged execute/replay — render,
      write), loadable in Perfetto.

    Observability: every request carries an id — a client-supplied
    [X-Request-Id] (up to 128 bytes) or a server-assigned [rNNNNNN] —
    echoed back as an [X-Request-Id] response header, attached to
    every span, to the access-log line ([config.access_log]) and to
    the slow-request span dump emitted on stderr for requests slower
    than [config.slow_ms] milliseconds.

    Robustness: the accept loop sheds load with [503] +
    [Retry-After] once [max_inflight] requests are pending instead of
    queueing unboundedly; each request gets a deadline measured from
    accept — slow reads answer [408], and a response whose work
    finished after the deadline is abandoned (the shared context never
    is); request bodies beyond [max_body] answer [413]; malformed JSON
    answers [400] with a structured error body.  {!stop} (wired to
    SIGTERM/SIGINT by the CLI) stops accepting, lets every in-flight
    request complete, then returns from {!run}. *)

(** The service version reported by [GET /version] (kept in sync with
    the [rcc] CLI). *)
val version : string

type config = {
  host : string;  (** listen address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  backlog : int;  (** listen(2) backlog, default 16 *)
  max_inflight : int;  (** accepted-but-unfinished request bound *)
  max_body : int;  (** request body limit, bytes *)
  deadline_s : float;  (** per-request deadline from accept, seconds *)
  access_log : bool;  (** one stderr line per request (default off) *)
  slow_ms : float option;
      (** dump the span breakdown of requests slower than this *)
  trace_capacity : int;  (** requests retained for [GET /trace] *)
}

val default_config : config

type t

(** Open, bind and listen the server socket described by a config:
    the building block of the prefork mode, where the {e parent}
    opens the listener once — before any worker process or domain
    exists — and every worker [create]s around the inherited fd,
    accepting on it concurrently (the kernel load-balances accepts).
    The fd is close-on-exec (fork-only children still inherit it —
    the flag acts at exec); the returned port is the bound one (the
    actual port when [config.port] was 0).
    @raise Unix.Unix_error when binding fails. *)
val create_listener : config -> Unix.file_descr * int

(** Binds and listens; requests are dispatched onto the context's
    {!Rc_par.Pool} ([jobs - 1] spawned workers; with [jobs = 1] they
    run inline in the accept loop).  Does not take ownership of the
    context: the caller still shuts it down after {!run} returns.

    [listener] adopts an already-open socket from {!create_listener}
    instead of binding (the prefork worker path; [config.host]/[port]
    are then ignored).  [store] attaches an on-disk trace store: it is
    wired into the context's trace-cache misses
    ({!Rc_harness.Experiments.set_store}) and its gauges joined into
    [GET /metrics] / [/metrics.json]. *)
val create :
  ?config:config ->
  ?listener:Unix.file_descr * int ->
  ?store:Store.t ->
  Rc_harness.Experiments.ctx ->
  t

(** The bound port (the actual one when [config.port] was 0). *)
val port : t -> int

(** Accept loop: runs until {!stop}, then drains — stops accepting,
    waits for every in-flight request to finish — and returns. *)
val run : t -> unit

(** Signal {!run} to drain and return.  Async-signal-safe (sets a
    flag) and idempotent; callable from any domain or from a
    [Sys.Signal_handle]. *)
val stop : t -> unit

(** Requests accepted and not yet finished (queued included). *)
val inflight : t -> int

(** Requests fully handled since startup.  Connections that closed
    before sending any request are excluded (see {!closed_early}). *)
val served : t -> int

(** Connections that closed before sending any request — health
    probes, cancelled clients.  Counted separately from {!served} so
    the loadgen client-vs-server cross-check is not skewed. *)
val closed_early : t -> int

(** Seconds since {!create}. *)
val uptime_s : t -> float

(** Chrome trace-event JSON of the retained request spans — what
    [GET /trace] answers; the CLI writes it to [--trace FILE] after
    draining. *)
val trace_chrome : t -> string
