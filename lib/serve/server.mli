(** The persistent simulation service behind [rcc serve].

    A hand-rolled HTTP/1.1 server (see {!Http}) over [Unix] sockets,
    owning one long-lived {!Rc_harness.Experiments.ctx} so the
    prepare/allocate memo tables and the trace cache stay warm across
    requests: the second [/run] for any compiled-image fingerprint is
    re-timed by {!Rc_machine.Trace_replay} instead of executed.

    Endpoints:
    - [POST /run]: one machine configuration + benchmark; the body is
      byte-identical to [rcc run --json] (modulo pass wall-clock).
    - [POST /figures]: experiment ids; same document as
      [rcc figures --json].
    - [GET /healthz]: liveness.
    - [GET /metrics]: {!Rc_harness.Experiments.metrics_json} plus
      per-endpoint request counts and latency quantiles.

    Robustness: the accept loop sheds load with [503] +
    [Retry-After] once [max_inflight] requests are pending instead of
    queueing unboundedly; each request gets a deadline — slow reads
    answer [408], and a response whose work finished after the
    deadline is abandoned (the shared context never is); request
    bodies beyond [max_body] answer [413]; malformed JSON answers
    [400] with a structured error body.  {!stop} (wired to
    SIGTERM/SIGINT by the CLI) stops accepting, lets every in-flight
    request complete, then returns from {!run}. *)

type config = {
  host : string;  (** listen address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  backlog : int;  (** listen(2) backlog, default 16 *)
  max_inflight : int;  (** accepted-but-unfinished request bound *)
  max_body : int;  (** request body limit, bytes *)
  deadline_s : float;  (** per-request deadline, seconds *)
}

val default_config : config

type t

(** Binds and listens; requests are dispatched onto the context's
    {!Rc_par.Pool} ([jobs - 1] spawned workers; with [jobs = 1] they
    run inline in the accept loop).  Does not take ownership of the
    context: the caller still shuts it down after {!run} returns. *)
val create : ?config:config -> Rc_harness.Experiments.ctx -> t

(** The bound port (the actual one when [config.port] was 0). *)
val port : t -> int

(** Accept loop: runs until {!stop}, then drains — stops accepting,
    waits for every in-flight request to finish — and returns. *)
val run : t -> unit

(** Signal {!run} to drain and return.  Async-signal-safe (sets a
    flag) and idempotent; callable from any domain or from a
    [Sys.Signal_handle]. *)
val stop : t -> unit

(** Requests accepted and not yet finished (queued included). *)
val inflight : t -> int

(** Requests fully handled since startup. *)
val served : t -> int
