(* On-disk trace store — the trace cache's second level, shared across
   processes.  See store.mli and DESIGN.md §17 for the contract. *)

let magic = "RCTS"
let version = '\001'
let suffix = ".rct"

type t = {
  dir : string;
  max_bytes : int;  (* 0 = unbounded *)
  mu : Mutex.t;  (* counters and the scan/evict critical section *)
  mutable hits : int;
  mutable misses : int;
  mutable published : int;
  mutable evicted : int;
  mutable bytes : int;
  mutable files : int;
}

(* --- keys on disk -------------------------------------------------------- *)

(* One file per key, name derived from the key alone so sibling
   processes converge on the same file without coordination.  Keys
   contain '/', '#' and model pretty-prints, so percent-encode
   everything outside [A-Za-z0-9._-]; the "t_" prefix keeps names out
   of dotfile territory (write_atomic's temps start with '.') and away
   from anything else a future store version might put in the dir. *)
let filename_of_key key =
  let b = Buffer.create (String.length key + 8) in
  Buffer.add_string b "t_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' ->
          Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    key;
  Buffer.add_string b suffix;
  Buffer.contents b

let is_record name =
  String.length name > String.length suffix
  && name.[0] <> '.'
  && Filename.check_suffix name suffix

(* --- record framing ------------------------------------------------------ *)

(*   [magic "RCTS"] [version byte] [key length : LE32] [key bytes]
     [Dtrace.to_string blob, to end of file]
   The embedded key makes a record self-describing: probe compares it
   against the requested key, so an encoding bug or a renamed file can
   only produce a miss, never a foreign trace. *)

let header_len key = 4 + 1 + 4 + String.length key

let encode key tr =
  let blob = Rc_machine.Dtrace.to_string tr in
  let klen = String.length key in
  let b = Bytes.create (header_len key + String.length blob) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 version;
  Bytes.set_int32_le b 5 (Int32.of_int klen);
  Bytes.blit_string key 0 b 9 klen;
  Bytes.blit_string blob 0 b (9 + klen) (String.length blob);
  Bytes.unsafe_to_string b

let decode ~key s =
  let len = String.length s in
  if len < 9 || String.sub s 0 4 <> magic || s.[4] <> version then None
  else
    let klen = Int32.to_int (String.get_int32_le s 5) in
    if klen <> String.length key || len < 9 + klen then None
    else if String.sub s 9 klen <> key then None
    else Rc_machine.Dtrace.of_string (String.sub s (9 + klen) (len - 9 - klen))

(* --- directory scan and eviction ----------------------------------------- *)

let scan dir =
  let entries =
    match Sys.readdir dir with
    | names -> Array.to_list names
    | exception Sys_error _ -> []
  in
  List.filter_map
    (fun name ->
      if not (is_record name) then None
      else
        let path = Filename.concat dir name in
        match Unix.stat path with
        | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
            Some (name, st_size, st_mtime)
        | _ -> None
        | exception Unix.Unix_error _ -> None (* lost a race; gone *))
    entries

(* LRU order: oldest mtime first, name as the deterministic
   tie-break.  The newest record always survives eviction — a store
   whose cap is smaller than one trace still functions as a cache of
   one instead of thrashing itself empty. *)
let evict_locked t =
  let records = scan t.dir in
  let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 records in
  let by_age =
    List.sort
      (fun (n1, _, m1) (n2, _, m2) ->
        match compare (m1 : float) m2 with
        | 0 -> String.compare n1 n2
        | c -> c)
      records
  in
  let rec drop total = function
    | _ when t.max_bytes = 0 || total <= t.max_bytes -> (total, [])
    | [] -> (total, [])
    | [ newest ] -> (total, [ newest ])
    | (name, sz, _) :: rest ->
        (match Unix.unlink (Filename.concat t.dir name) with
        | () -> t.evicted <- t.evicted + 1
        | exception Unix.Unix_error _ -> () (* a sibling evicted it *));
        drop (total - sz) rest
  in
  let total, _ = drop total by_age in
  t.bytes <- total;
  t.files <-
    (if t.max_bytes = 0 then List.length records
     else List.length (scan t.dir))

let open_store ~dir ?(max_bytes = 0) () =
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      match Unix.mkdir d 0o755 with
      | () -> ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mkdirs dir;
  let t =
    {
      dir;
      max_bytes;
      mu = Mutex.create ();
      hits = 0;
      misses = 0;
      published = 0;
      evicted = 0;
      bytes = 0;
      files = 0;
    }
  in
  Mutex.protect t.mu (fun () -> evict_locked t);
  t

let dir t = t.dir

(* --- probe / publish ----------------------------------------------------- *)

let read_file path =
  match open_in_bin path with
  | ic -> (
      match
        let len = in_channel_length ic in
        really_input_string ic len
      with
      | s ->
          close_in_noerr ic;
          Some s
      | exception (Sys_error _ | End_of_file) ->
          close_in_noerr ic;
          None)
  | exception Sys_error _ -> None

let probe t key =
  let path = Filename.concat t.dir (filename_of_key key) in
  let result =
    match read_file path with None -> None | Some s -> decode ~key s
  in
  (match result with
  | Some _ -> (
      (* the LRU touch: a hit file becomes the newest *)
      try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.protect t.mu (fun () ->
      match result with
      | Some _ -> t.hits <- t.hits + 1
      | None -> t.misses <- t.misses + 1);
  result

let publish t key tr =
  let path = Filename.concat t.dir (filename_of_key key) in
  let content = encode key tr in
  match
    Rc_obs.Fsio.write_atomic path (fun oc -> output_string oc content)
  with
  | () ->
      Mutex.protect t.mu (fun () ->
          t.published <- t.published + 1;
          evict_locked t)
  | exception (Sys_error _ | Unix.Unix_error _) ->
      (* the store is a cache: a full or read-only disk must not fail
         the simulation that produced the trace *)
      ()

(* --- observability ------------------------------------------------------- *)

type stats = {
  hits : int;
  misses : int;
  published : int;
  evicted : int;
  bytes : int;
  files : int;
}

let stats t =
  Mutex.protect t.mu (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        published = t.published;
        evicted = t.evicted;
        bytes = t.bytes;
        files = t.files;
      })

let export_metrics t reg =
  let s = stats t in
  let c name help v =
    Rc_obs.Metrics.set_counter reg ~help name (float_of_int v)
  in
  c "rcc_store_hits_total" "Trace-store probes answered from disk" s.hits;
  c "rcc_store_misses_total" "Trace-store probes that found nothing usable"
    s.misses;
  c "rcc_store_published_total" "Traces published to the store" s.published;
  c "rcc_store_evicted_total" "Store records evicted under the byte cap"
    s.evicted;
  Rc_obs.Metrics.set reg ~help:"Store directory occupancy in bytes"
    "rcc_store_bytes" (float_of_int s.bytes);
  Rc_obs.Metrics.set reg ~help:"Store records on disk" "rcc_store_files"
    (float_of_int s.files)

let stats_json t =
  let s = stats t in
  let open Rc_obs.Json in
  Obj
    [
      ("dir", Str t.dir);
      ("hits", Int s.hits);
      ("misses", Int s.misses);
      ("published", Int s.published);
      ("evicted", Int s.evicted);
      ("bytes", Int s.bytes);
      ("files", Int s.files);
    ]
