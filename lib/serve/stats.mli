(** Per-endpoint request telemetry for [GET /metrics]: request and
    error counts plus latency quantiles over a sliding window of
    recent requests.  All operations are thread-safe — handlers on
    different pool domains record concurrently. *)

type t

val create : unit -> t

(** [record t ~endpoint ~status ~wall_s] counts one completed request.
    Statuses >= 400 also count as errors. *)
val record : t -> endpoint:string -> status:int -> wall_s:float -> unit

(** One connection shed by the accept loop with [503]. *)
val record_shed : t -> unit

(** One response abandoned because its deadline expired after the
    work was done. *)
val record_abandoned : t -> unit

val shed : t -> int

(** Snapshot: [{requests, shed, abandoned, endpoints: [{endpoint,
    requests, errors, p50_ms, p90_ms, p99_ms, max_ms}]}], endpoints
    sorted by name. *)
val to_json : t -> Rc_obs.Json.t
