(** Per-endpoint request telemetry for the service's metrics
    endpoints.  All operations are thread-safe — handlers on different
    pool domains record concurrently.

    Latencies are kept in {!Rc_obs.Metrics.Hist} log-linear histograms
    covering {e every} request since startup (the previous fixed
    1024-sample ring under-weighted rare slow requests on long runs);
    quantiles carry the histogram's bounded relative error while
    counts, sum and max stay exact.  The same histograms and counters
    back both snapshots:

    - {!to_json}: the [/metrics.json] document (shape unchanged from
      the ring-buffer era);
    - {!registry}: the {!Rc_obs.Metrics.t} the server renders as
      Prometheus text at [GET /metrics] ([rcc_requests_total],
      [rcc_request_duration_seconds], [rcc_shed_total],
      [rcc_abandoned_total], plus whatever gauges the server sets). *)

type t

val create : unit -> t

(** [record t ~endpoint ~status ~wall_s] counts one completed request.
    Statuses >= 400 also count as errors. *)
val record : t -> endpoint:string -> status:int -> wall_s:float -> unit

(** One connection shed by the accept loop with [503]. *)
val record_shed : t -> unit

(** One response abandoned because its deadline expired after the
    work was done. *)
val record_abandoned : t -> unit

(** One kernel-spec submission event, counted under
    [rcc_spec_submissions_total{outcome=...}].  Outcomes the server
    records: [admitted], [rejected-malformed], [rejected-limit],
    [oracle-agree], [oracle-diverged]. *)
val record_spec : t -> outcome:string -> unit

val shed : t -> int

(** The metrics registry everything above records into; the server
    adds its own gauges ([rcc_inflight], [rcc_uptime_seconds]) and the
    harness trace-cache counters before rendering. *)
val registry : t -> Rc_obs.Metrics.t

(** Snapshot: [{requests, shed, abandoned, endpoints: [{endpoint,
    requests, errors, p50_ms, p90_ms, p99_ms, max_ms}]}], endpoints
    sorted by name. *)
val to_json : t -> Rc_obs.Json.t
