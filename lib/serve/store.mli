(** On-disk trace store: the trace cache's second level, shared across
    processes.

    One file per trace key ([Image.fingerprint ^ "#" ^
    Experiments.semantic_key]), written atomically via
    {!Rc_obs.Fsio.write_atomic} so concurrent readers and writers —
    prefork siblings, or a later cold process — see whole records or
    nothing.  The file body is [magic, version, key, Dtrace blob]
    ({!Rc_machine.Dtrace.to_string}); {!probe} verifies magic, version
    and the embedded key before trusting a record, so a renamed or
    truncated file degrades to a miss, never a wrong replay.

    Eviction is LRU by file mtime under a byte cap: {!probe} bumps the
    hit file's mtime, {!publish} re-scans the directory and unlinks
    oldest-first while the total exceeds the cap (the newest file
    always survives, so a single over-cap trace still functions as a
    cache of one).  Cross-process coordination is exactly the
    filesystem: no locks — a racing evictor losing an unlink, or a
    probe losing its file mid-read, is a miss.

    Counters ([hits]/[misses]/[published]/[evicted]) are per-process;
    [bytes]/[files] are the directory occupancy as of the last scan.
    See DESIGN.md §17. *)

type t

(** [open_store ~dir ~max_bytes ()] creates [dir] if needed (parents
    included) and scans it for the occupancy gauges.  [max_bytes = 0]
    (the default) means unbounded.
    @raise Unix.Unix_error when [dir] cannot be created. *)
val open_store : dir:string -> ?max_bytes:int -> unit -> t

val dir : t -> string

(** Look a trace up by key: a verified on-disk record decodes, has its
    mtime bumped (the LRU touch) and counts a hit; anything else —
    missing file, bad magic or version, foreign key, torn blob —
    counts a miss. *)
val probe : t -> string -> Rc_machine.Dtrace.t option

(** Write the record for [key] (atomic replace), then enforce the byte
    cap.  IO errors (ENOSPC, permissions) are swallowed after counting
    — the store is a cache; the simulation result already exists. *)
val publish : t -> string -> Rc_machine.Dtrace.t -> unit

type stats = {
  hits : int;
  misses : int;
  published : int;
  evicted : int;
  bytes : int;  (** directory occupancy at the last scan *)
  files : int;
}

val stats : t -> stats

(** Export the counters and occupancy gauges as [rcc_store_*] into a
    metrics registry (the serve [/metrics] exposition). *)
val export_metrics : t -> Rc_obs.Metrics.t -> unit

(** The store's stats as a stable-keyed JSON object (the serve
    [/metrics.json] document). *)
val stats_json : t -> Rc_obs.Json.t
