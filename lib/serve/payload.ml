(* Wire payloads shared by the rcc CLI and the HTTP service: see
   payload.mli. *)

let all_figure_ids =
  [
    "table1"; "fig7"; "fig8-int"; "fig8-fp"; "fig9-int"; "fig9-fp"; "fig10";
    "fig11"; "fig12"; "fig13"; "ablation-models"; "ablation-combine";
    "ablation-unroll";
  ]

let options_of ~issue ~core_int ~core_float ~rc ~load ~connect ~mem_channels
    ~extra_stage ~model ~no_unroll =
  Rc_harness.Pipeline.options
    ~opt:(if no_unroll then Rc_opt.Pass.Classical else Rc_opt.Pass.Ilp 4)
    ~rc ~core_int ~core_float ~model ~issue ?mem_channels
    ~lat:(Rc_isa.Latency.v ~load ~connect ())
    ~extra_stage ()

(* --- response builders ---------------------------------------------------- *)

let config_json (o : Rc_harness.Pipeline.options) =
  let open Rc_obs.Json in
  Obj
    [
      ( "opt",
        Str
          (match o.Rc_harness.Pipeline.opt with
          | Rc_opt.Pass.Classical -> "classical"
          | Rc_opt.Pass.Ilp f -> "ilp" ^ string_of_int f) );
      ("rc", Bool o.Rc_harness.Pipeline.rc);
      ("core_int", Int o.Rc_harness.Pipeline.core_int);
      ("core_float", Int o.Rc_harness.Pipeline.core_float);
      ("total_int", Int o.Rc_harness.Pipeline.total_int);
      ("total_float", Int o.Rc_harness.Pipeline.total_float);
      ("model", Str (Fmt.str "%a" Rc_core.Model.pp o.Rc_harness.Pipeline.model));
      ("combine", Bool o.Rc_harness.Pipeline.combine);
      ("issue", Int o.Rc_harness.Pipeline.issue);
      ("mem_channels", Int o.Rc_harness.Pipeline.mem_channels);
      ("load_latency", Int o.Rc_harness.Pipeline.lat.Rc_isa.Latency.load);
      ("connect_latency", Int o.Rc_harness.Pipeline.lat.Rc_isa.Latency.connect);
      ("extra_stage", Bool o.Rc_harness.Pipeline.extra_stage);
    ]

let config_result_json ?name ?speedup (c : Rc_harness.Pipeline.compiled)
    (r : Rc_machine.Machine.result) =
  let open Rc_obs.Json in
  Obj
    ((match name with Some n -> [ ("name", Str n) ] | None -> [])
    @ [
        ("config", config_json c.Rc_harness.Pipeline.opts);
        ("machine", Rc_harness.Experiments.result_json r);
        ( "code_size",
          Rc_harness.Experiments.breakdown_json c.Rc_harness.Pipeline.breakdown
        );
        ("spills", Int c.Rc_harness.Pipeline.spills);
        ( "passes",
          List
            (List.map Rc_harness.Experiments.pass_json
               c.Rc_harness.Pipeline.passes) );
      ]
    @ match speedup with Some s -> [ ("speedup", Float s) ] | None -> [])

let run_response ~bench ~scale ~engine_used c r =
  Rc_obs.Json.Obj
    [
      ("bench", Rc_obs.Json.Str bench);
      ("scale", Rc_obs.Json.Int scale);
      ("engine", Rc_obs.Json.Str engine_used);
      ("result", config_result_json c r);
    ]

let table_json (t : Rc_harness.Experiments.table) =
  let open Rc_obs.Json in
  Obj
    [
      ("id", Str t.Rc_harness.Experiments.id);
      ("title", Str t.Rc_harness.Experiments.title);
      ( "columns",
        List (List.map (fun c -> Str c) t.Rc_harness.Experiments.columns) );
      ( "rows",
        List
          (List.map
             (fun (name, vs) ->
               Obj
                 [
                   ("name", Str name);
                   ("values", List (List.map (fun v -> Float v) vs));
                 ])
             t.Rc_harness.Experiments.rows) );
      ("note", Str t.Rc_harness.Experiments.note);
    ]

let engine_stats_json (es : Rc_harness.Experiments.engine_stats) =
  let open Rc_obs.Json in
  Obj
    [
      ("hits", Int es.Rc_harness.Experiments.hits);
      ("misses", Int es.Rc_harness.Experiments.misses);
      ("recorded", Int es.Rc_harness.Experiments.recorded);
      ("unsafe", Int es.Rc_harness.Experiments.unsafe);
      ("bytes", Int es.Rc_harness.Experiments.bytes);
      ("store_hits", Int es.Rc_harness.Experiments.store_hits);
      ("seg_hits", Int es.Rc_harness.Experiments.seg_hits);
      ("seg_misses", Int es.Rc_harness.Experiments.seg_misses);
      ("seg_fallbacks", Int es.Rc_harness.Experiments.seg_fallbacks);
      ("memo_bytes", Int es.Rc_harness.Experiments.memo_bytes);
    ]

let figures_response ~scale ~jobs ~engine_name ~stats tables =
  Rc_obs.Json.Obj
    [
      ("scale", Rc_obs.Json.Int scale);
      ("jobs", Rc_obs.Json.Int jobs);
      ("engine", Rc_obs.Json.Str engine_name);
      ("trace_cache", engine_stats_json stats);
      ("tables", Rc_obs.Json.List (List.map table_json tables));
    ]

(* --- request decoders ----------------------------------------------------- *)

type run_request = {
  rq_bench : Rc_workloads.Wutil.bench;
  rq_scale : int;
  rq_opts : Rc_harness.Pipeline.options;
}

let ( let* ) = Result.bind

(* Field accessors over a decoded object: strict types, strict key
   set.  A fuzzed or hand-written body fails with the offending field
   named instead of silently running the wrong configuration. *)
let check_known fields known =
  match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
  | Some (k, _) -> Error (Fmt.str "unknown field %S" k)
  | None -> Ok ()

let int_field fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Rc_obs.Json.Int n) -> Ok n
  | Some _ -> Error (Fmt.str "field %S must be an integer" name)

let bool_field fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Rc_obs.Json.Bool b) -> Ok b
  | Some _ -> Error (Fmt.str "field %S must be a boolean" name)

let positive name v =
  if v >= 1 then Ok v else Error (Fmt.str "field %S must be positive" name)

let run_request_of_json j =
  match j with
  | Rc_obs.Json.Obj fields ->
      let* () =
        check_known fields
          [
            "bench"; "scale"; "issue"; "core_int"; "core_float"; "rc"; "load";
            "connect"; "mem_channels"; "extra_stage"; "model"; "no_unroll";
          ]
      in
      let* bench =
        match List.assoc_opt "bench" fields with
        | Some (Rc_obs.Json.Str b) -> (
            match
              List.find_opt
                (fun (w : Rc_workloads.Wutil.bench) ->
                  w.Rc_workloads.Wutil.name = b)
                (Rc_workloads.Registry.all ())
            with
            | Some w -> Ok w
            | None -> Error (Fmt.str "unknown benchmark %S" b))
        | Some _ -> Error "field \"bench\" must be a string"
        | None -> Error "missing required field \"bench\""
      in
      let* scale = Result.bind (int_field fields "scale" ~default:1) (positive "scale") in
      let* issue = Result.bind (int_field fields "issue" ~default:4) (positive "issue") in
      let* core_int = int_field fields "core_int" ~default:16 in
      let* core_float = int_field fields "core_float" ~default:16 in
      let* rc = bool_field fields "rc" ~default:false in
      let* load = int_field fields "load" ~default:2 in
      let* connect = int_field fields "connect" ~default:0 in
      let* mem_channels =
        match List.assoc_opt "mem_channels" fields with
        | None -> Ok None
        | Some (Rc_obs.Json.Int n) -> Ok (Some n)
        | Some _ -> Error "field \"mem_channels\" must be an integer"
      in
      let* extra_stage = bool_field fields "extra_stage" ~default:false in
      let* no_unroll = bool_field fields "no_unroll" ~default:false in
      let* model =
        match List.assoc_opt "model" fields with
        | None -> Ok Rc_core.Model.default
        | Some (Rc_obs.Json.Str s) -> (
            match Rc_core.Model.of_string s with
            | Some m -> Ok m
            | None -> Error (Fmt.str "unknown model %S" s))
        | Some (Rc_obs.Json.Int n) -> (
            match Rc_core.Model.of_string (string_of_int n) with
            | Some m -> Ok m
            | None -> Error (Fmt.str "unknown model %d" n))
        | Some _ -> Error "field \"model\" must be a string or integer"
      in
      Ok
        {
          rq_bench = bench;
          rq_scale = scale;
          rq_opts =
            options_of ~issue ~core_int ~core_float ~rc ~load ~connect
              ~mem_channels ~extra_stage ~model ~no_unroll;
        }
  | _ -> Error "request body must be a JSON object"

let figures_request_of_json j =
  match j with
  | Rc_obs.Json.Obj fields ->
      let* () = check_known fields [ "ids" ] in
      let* ids =
        match List.assoc_opt "ids" fields with
        | None -> Ok []
        | Some (Rc_obs.Json.List ids) ->
            List.fold_left
              (fun acc id ->
                let* acc = acc in
                match id with
                | Rc_obs.Json.Str s -> Ok (s :: acc)
                | _ -> Error "field \"ids\" must be a list of strings")
              (Ok []) ids
            |> Result.map List.rev
        | Some _ -> Error "field \"ids\" must be a list of strings"
      in
      let* () =
        match List.find_opt (fun id -> not (List.mem id all_figure_ids)) ids with
        | Some id -> Error (Fmt.str "unknown experiment %S" id)
        | None -> Ok ()
      in
      Ok (match ids with [] -> all_figure_ids | ids -> ids)
  | _ -> Error "request body must be a JSON object"
