(* Wire payloads shared by the rcc CLI and the HTTP service: see
   payload.mli. *)

let all_figure_ids =
  [
    "table1"; "fig7"; "fig8-int"; "fig8-fp"; "fig9-int"; "fig9-fp"; "fig10";
    "fig11"; "fig12"; "fig13"; "ablation-models"; "ablation-combine";
    "ablation-unroll";
  ]

let options_of ~issue ~core_int ~core_float ~rc ~load ~connect ~mem_channels
    ~extra_stage ~model ~no_unroll =
  Rc_harness.Pipeline.options
    ~opt:(if no_unroll then Rc_opt.Pass.Classical else Rc_opt.Pass.Ilp 4)
    ~rc ~core_int ~core_float ~model ~issue ?mem_channels
    ~lat:(Rc_isa.Latency.v ~load ~connect ())
    ~extra_stage ()

(* The defaults every absent request field resolves to — also the
   configuration [POST /compile] / [rcc compile] summarise under. *)
let default_options () =
  options_of ~issue:4 ~core_int:16 ~core_float:16 ~rc:false ~load:2 ~connect:0
    ~mem_channels:None ~extra_stage:false ~model:Rc_core.Model.default
    ~no_unroll:false

(* --- response builders ---------------------------------------------------- *)

let config_json (o : Rc_harness.Pipeline.options) =
  let open Rc_obs.Json in
  Obj
    [
      ( "opt",
        Str
          (match o.Rc_harness.Pipeline.opt with
          | Rc_opt.Pass.Classical -> "classical"
          | Rc_opt.Pass.Ilp f -> "ilp" ^ string_of_int f) );
      ("rc", Bool o.Rc_harness.Pipeline.rc);
      ("core_int", Int o.Rc_harness.Pipeline.core_int);
      ("core_float", Int o.Rc_harness.Pipeline.core_float);
      ("total_int", Int o.Rc_harness.Pipeline.total_int);
      ("total_float", Int o.Rc_harness.Pipeline.total_float);
      ("model", Str (Fmt.str "%a" Rc_core.Model.pp o.Rc_harness.Pipeline.model));
      ("combine", Bool o.Rc_harness.Pipeline.combine);
      ("issue", Int o.Rc_harness.Pipeline.issue);
      ("mem_channels", Int o.Rc_harness.Pipeline.mem_channels);
      ("load_latency", Int o.Rc_harness.Pipeline.lat.Rc_isa.Latency.load);
      ("connect_latency", Int o.Rc_harness.Pipeline.lat.Rc_isa.Latency.connect);
      ("extra_stage", Bool o.Rc_harness.Pipeline.extra_stage);
    ]

let config_result_json ?name ?speedup (c : Rc_harness.Pipeline.compiled)
    (r : Rc_machine.Machine.result) =
  let open Rc_obs.Json in
  Obj
    ((match name with Some n -> [ ("name", Str n) ] | None -> [])
    @ [
        ("config", config_json c.Rc_harness.Pipeline.opts);
        ("machine", Rc_harness.Experiments.result_json r);
        ( "code_size",
          Rc_harness.Experiments.breakdown_json c.Rc_harness.Pipeline.breakdown
        );
        ("spills", Int c.Rc_harness.Pipeline.spills);
        ( "passes",
          List
            (List.map Rc_harness.Experiments.pass_json
               c.Rc_harness.Pipeline.passes) );
      ]
    @ match speedup with Some s -> [ ("speedup", Float s) ] | None -> [])

let run_response ?oracle ~bench ~scale ~engine_used c r =
  Rc_obs.Json.Obj
    ([
       ("bench", Rc_obs.Json.Str bench);
       ("scale", Rc_obs.Json.Int scale);
       ("engine", Rc_obs.Json.Str engine_used);
       ("result", config_result_json c r);
     ]
    @ match oracle with Some v -> [ ("oracle", v) ] | None -> [])

let compile_response ?oracle ~id (spec : Rc_check.Gen.spec)
    (c : Rc_harness.Pipeline.compiled) =
  let open Rc_obs.Json in
  Obj
    ([
       ("kernel", Str id);
       ("bench", Str ("spec:" ^ id));
       ("size", Int (Rc_check.Gen.size spec));
       ("depth", Int (Rc_check.Gen.depth spec));
       ("funcs", Int (Array.length spec.Rc_check.Gen.funcs));
       ("slots", Int spec.Rc_check.Gen.slots);
       ( "fingerprint",
         Str (Rc_isa.Image.fingerprint c.Rc_harness.Pipeline.image) );
       ("config", config_json c.Rc_harness.Pipeline.opts);
       ( "code_size",
         Rc_harness.Experiments.breakdown_json c.Rc_harness.Pipeline.breakdown
       );
       ("spills", Int c.Rc_harness.Pipeline.spills);
       ( "passes",
         List
           (List.map Rc_harness.Experiments.pass_json
              c.Rc_harness.Pipeline.passes) );
     ]
    @ match oracle with Some v -> [ ("oracle", v) ] | None -> [])

let table_json (t : Rc_harness.Experiments.table) =
  let open Rc_obs.Json in
  Obj
    [
      ("id", Str t.Rc_harness.Experiments.id);
      ("title", Str t.Rc_harness.Experiments.title);
      ( "columns",
        List (List.map (fun c -> Str c) t.Rc_harness.Experiments.columns) );
      ( "rows",
        List
          (List.map
             (fun (name, vs) ->
               Obj
                 [
                   ("name", Str name);
                   ("values", List (List.map (fun v -> Float v) vs));
                 ])
             t.Rc_harness.Experiments.rows) );
      ("note", Str t.Rc_harness.Experiments.note);
    ]

let engine_stats_json (es : Rc_harness.Experiments.engine_stats) =
  let open Rc_obs.Json in
  Obj
    [
      ("hits", Int es.Rc_harness.Experiments.hits);
      ("misses", Int es.Rc_harness.Experiments.misses);
      ("recorded", Int es.Rc_harness.Experiments.recorded);
      ("unsafe", Int es.Rc_harness.Experiments.unsafe);
      ("bytes", Int es.Rc_harness.Experiments.bytes);
      ("store_hits", Int es.Rc_harness.Experiments.store_hits);
      ("seg_hits", Int es.Rc_harness.Experiments.seg_hits);
      ("seg_misses", Int es.Rc_harness.Experiments.seg_misses);
      ("seg_fallbacks", Int es.Rc_harness.Experiments.seg_fallbacks);
      ("memo_bytes", Int es.Rc_harness.Experiments.memo_bytes);
    ]

let figures_response ~scale ~jobs ~engine_name ~stats tables =
  Rc_obs.Json.Obj
    [
      ("scale", Rc_obs.Json.Int scale);
      ("jobs", Rc_obs.Json.Int jobs);
      ("engine", Rc_obs.Json.Str engine_name);
      ("trace_cache", engine_stats_json stats);
      ("tables", Rc_obs.Json.List (List.map table_json tables));
    ]

(* --- request decoders ----------------------------------------------------- *)

(* What a request wants simulated: a registry benchmark by name, a
   previously submitted kernel by server-assigned id, or a spec
   document inline (admitted on the spot, exactly as /compile would). *)
type kernel_source =
  | K_bench of Rc_workloads.Wutil.bench
  | K_id of string
  | K_spec of Rc_check.Gen.spec

type run_request = {
  rq_kernel : kernel_source;
  rq_scale : int;
  rq_opts : Rc_harness.Pipeline.options;
  rq_oracle : int option;
}

let ( let* ) = Result.bind

(* Field accessors over a decoded object: strict types, strict key
   set.  A fuzzed or hand-written body fails with the offending field
   named instead of silently running the wrong configuration. *)
let check_known fields known =
  match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
  | Some (k, _) -> Error (Fmt.str "unknown field %S" k)
  | None -> Ok ()

let int_field fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Rc_obs.Json.Int n) -> Ok n
  | Some _ -> Error (Fmt.str "field %S must be an integer" name)

let bool_field fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Rc_obs.Json.Bool b) -> Ok b
  | Some _ -> Error (Fmt.str "field %S must be a boolean" name)

let positive name v =
  if v >= 1 then Ok v else Error (Fmt.str "field %S must be positive" name)

(* Decoders that can admit inline specs report through
   {!Rc_check.Spec.error}, keeping the 400 ([Malformed]) vs 413
   ([Too_large]) split; plain string errors are all [Malformed]. *)
let mal r = Result.map_error (fun m -> Rc_check.Spec.Malformed m) r

(* The exactly-one-of [bench]/[kernel]/[spec] selector shared by /run
   and /figures. *)
let kernel_of_fields fields =
  match
    ( List.assoc_opt "bench" fields,
      List.assoc_opt "kernel" fields,
      List.assoc_opt "spec" fields )
  with
  | Some (Rc_obs.Json.Str b), None, None ->
      mal
        (match
           List.find_opt
             (fun (w : Rc_workloads.Wutil.bench) ->
               w.Rc_workloads.Wutil.name = b)
             (Rc_workloads.Registry.all ())
         with
        | Some w -> Ok (K_bench w)
        | None -> Error (Fmt.str "unknown benchmark %S" b))
  | Some _, None, None -> mal (Error "field \"bench\" must be a string")
  | None, Some (Rc_obs.Json.Str k), None ->
      if k <> "" && String.length k <= 64 then Ok (K_id k)
      else mal (Error "field \"kernel\" must be a kernel id")
  | None, Some _, None -> mal (Error "field \"kernel\" must be a string")
  | None, None, Some sj ->
      let* s = Rc_check.Spec.of_json sj in
      Ok (K_spec s)
  | None, None, None ->
      mal (Error "one of \"bench\", \"kernel\" or \"spec\" is required")
  | _ ->
      mal
        (Error "fields \"bench\", \"kernel\" and \"spec\" are mutually \
                exclusive")

let oracle_of_fields fields =
  match List.assoc_opt "oracle" fields with
  | None -> Ok None
  | Some (Rc_obs.Json.Int n) when n >= 1 -> Ok (Some n)
  | Some _ -> mal (Error "field \"oracle\" must be a positive cycle count")

let run_request_of_json j =
  match j with
  | Rc_obs.Json.Obj fields ->
      let* () =
        mal
          (check_known fields
             [
               "bench"; "kernel"; "spec"; "oracle"; "scale"; "issue";
               "core_int"; "core_float"; "rc"; "load"; "connect";
               "mem_channels"; "extra_stage"; "model"; "no_unroll";
             ])
      in
      let* kernel = kernel_of_fields fields in
      let* oracle = oracle_of_fields fields in
      let* scale =
        mal (Result.bind (int_field fields "scale" ~default:1) (positive "scale"))
      in
      let* issue =
        mal (Result.bind (int_field fields "issue" ~default:4) (positive "issue"))
      in
      let* core_int = mal (int_field fields "core_int" ~default:16) in
      let* core_float = mal (int_field fields "core_float" ~default:16) in
      let* rc = mal (bool_field fields "rc" ~default:false) in
      let* load = mal (int_field fields "load" ~default:2) in
      let* connect = mal (int_field fields "connect" ~default:0) in
      let* mem_channels =
        match List.assoc_opt "mem_channels" fields with
        | None -> Ok None
        | Some (Rc_obs.Json.Int n) -> Ok (Some n)
        | Some _ -> mal (Error "field \"mem_channels\" must be an integer")
      in
      let* extra_stage = mal (bool_field fields "extra_stage" ~default:false) in
      let* no_unroll = mal (bool_field fields "no_unroll" ~default:false) in
      let* model =
        match List.assoc_opt "model" fields with
        | None -> Ok Rc_core.Model.default
        | Some (Rc_obs.Json.Str s) -> (
            match Rc_core.Model.of_string s with
            | Some m -> Ok m
            | None -> mal (Error (Fmt.str "unknown model %S" s)))
        | Some (Rc_obs.Json.Int n) -> (
            match Rc_core.Model.of_string (string_of_int n) with
            | Some m -> Ok m
            | None -> mal (Error (Fmt.str "unknown model %d" n)))
        | Some _ -> mal (Error "field \"model\" must be a string or integer")
      in
      Ok
        {
          rq_kernel = kernel;
          rq_scale = scale;
          rq_opts =
            options_of ~issue ~core_int ~core_float ~rc ~load ~connect
              ~mem_channels ~extra_stage ~model ~no_unroll;
          rq_oracle = oracle;
        }
  | _ -> mal (Error "request body must be a JSON object")

type compile_request = {
  cq_spec : Rc_check.Gen.spec;
  cq_oracle : int option;
}

(* /compile accepts the spec document itself as the body, or a
   {"spec": ..., "oracle": N} wrapper when the oracle gate is
   wanted.  A bare document is recognised by its "funcs" field. *)
let compile_request_of_json j =
  match j with
  | Rc_obs.Json.Obj fields when List.mem_assoc "funcs" fields ->
      let* s = Rc_check.Spec.of_json j in
      Ok { cq_spec = s; cq_oracle = None }
  | Rc_obs.Json.Obj fields ->
      let* () = mal (check_known fields [ "spec"; "oracle" ]) in
      let* s =
        match List.assoc_opt "spec" fields with
        | Some sj -> Rc_check.Spec.of_json sj
        | None ->
            mal
              (Error
                 "request body must be a spec document or {\"spec\": ..., \
                  \"oracle\": N}")
      in
      let* oracle = oracle_of_fields fields in
      Ok { cq_spec = s; cq_oracle = oracle }
  | _ -> mal (Error "request body must be a JSON object")

type figures_request =
  | Fq_ids of string list
  | Fq_kernel of kernel_source

let figures_request_of_json j =
  match j with
  | Rc_obs.Json.Obj fields
    when List.exists
           (fun k -> List.mem_assoc k fields)
           [ "bench"; "kernel"; "spec" ] ->
      let* () = mal (check_known fields [ "bench"; "kernel"; "spec" ]) in
      let* kernel = kernel_of_fields fields in
      Ok (Fq_kernel kernel)
  | Rc_obs.Json.Obj fields ->
      let* () = mal (check_known fields [ "ids" ]) in
      let* ids =
        match List.assoc_opt "ids" fields with
        | None -> Ok []
        | Some (Rc_obs.Json.List ids) ->
            List.fold_left
              (fun acc id ->
                let* acc = acc in
                match id with
                | Rc_obs.Json.Str s -> Ok (s :: acc)
                | _ -> mal (Error "field \"ids\" must be a list of strings"))
              (Ok []) ids
            |> Result.map List.rev
        | Some _ -> mal (Error "field \"ids\" must be a list of strings")
      in
      let* () =
        match List.find_opt (fun id -> not (List.mem id all_figure_ids)) ids with
        | Some id -> mal (Error (Fmt.str "unknown experiment %S" id))
        | None -> Ok ()
      in
      Ok (Fq_ids (match ids with [] -> all_figure_ids | ids -> ids))
  | _ -> mal (Error "request body must be a JSON object")
