(* Minimal HTTP/1.1 codec: see http.mli. *)

type limits = { max_line : int; max_headers : int; max_body : int }

let default_limits = { max_line = 8192; max_headers = 64; max_body = 1 lsl 20 }

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type error =
  | Malformed of string
  | Too_large of string
  | Header_overflow of string
  | Not_implemented of string
  | Timeout
  | Closed

(* --- buffered reader ----------------------------------------------------- *)

type reader = {
  feed : bytes -> int -> int -> int;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let reader_of_feed feed =
  { feed; buf = Bytes.create 4096; pos = 0; len = 0 }

let reader_of_fd fd =
  reader_of_feed (fun buf off len ->
      let rec go () =
        match Unix.read fd buf off len with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ())

let reader_of_string s =
  let consumed = ref 0 in
  reader_of_feed (fun buf off len ->
      let n = min len (String.length s - !consumed) in
      Bytes.blit_string s !consumed buf off n;
      consumed := !consumed + n;
      n)

exception Read_error of error

(* Refills the buffer; raises [Read_error] on EOF or receive timeout. *)
let refill rd =
  match rd.feed rd.buf 0 (Bytes.length rd.buf) with
  | 0 -> raise (Read_error Closed)
  | n ->
      rd.pos <- 0;
      rd.len <- n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise (Read_error Timeout)
  | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) ->
      raise (Read_error Timeout)

(* One CRLF- (or bare-LF-) terminated line, the terminator stripped.
   [overflow] is raised as the typed error when the line exceeds
   [max]. *)
let read_line rd ~max ~overflow =
  let b = Buffer.create 128 in
  let rec go () =
    if rd.pos >= rd.len then refill rd;
    let c = Bytes.get rd.buf rd.pos in
    rd.pos <- rd.pos + 1;
    if c = '\n' then begin
      let line = Buffer.contents b in
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    end
    else begin
      if Buffer.length b >= max then raise (Read_error overflow);
      Buffer.add_char b c;
      go ()
    end
  in
  go ()

let read_exact rd n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if rd.pos >= rd.len then refill rd;
    let take = min (n - !filled) (rd.len - rd.pos) in
    Bytes.blit rd.buf rd.pos out !filled take;
    rd.pos <- rd.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

(* --- request parsing ------------------------------------------------------ *)

let strip_query target =
  match String.index_opt target '?' with
  | Some i -> String.sub target 0 i
  | None -> target

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." ->
      Ok (meth, strip_query target)
  | _ -> Error (Malformed ("bad request line: " ^ line))

let parse_header line =
  match String.index_opt line ':' with
  | None -> Error (Malformed ("bad header line: " ^ line))
  | Some i ->
      let name = String.lowercase_ascii (String.sub line 0 i) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      Ok (name, value)

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

let read_request ?(limits = default_limits) rd =
  try
    let line =
      read_line rd ~max:limits.max_line
        ~overflow:(Header_overflow "request line too long")
    in
    match parse_request_line line with
    | Error e -> Error e
    | Ok (meth, path) ->
        let rec headers acc n =
          let line =
            read_line rd ~max:limits.max_line
              ~overflow:(Header_overflow "header line too long")
          in
          if line = "" then List.rev acc
          else if n >= limits.max_headers then
            raise (Read_error (Header_overflow "too many headers"))
          else
            match parse_header line with
            | Ok h -> headers (h :: acc) (n + 1)
            | Error e -> raise (Read_error e)
        in
        let headers = headers [] 0 in
        let req = { meth; path; headers; body = "" } in
        (* Message-length ambiguity is how request smuggling works, so
           the codec refuses to guess.  This server never implements
           chunked bodies: any Transfer-Encoding — whatever its value,
           whatever the method, with or without a Content-Length — is
           answered 501, never parsed as length-delimited.  Duplicate
           Content-Length headers (even agreeing ones) are a hard 400:
           [header] would silently pick the first while a proxy in
           front may have honoured the second. *)
        if List.mem_assoc "transfer-encoding" headers then
          Error
            (Not_implemented
               "Transfer-Encoding is not supported; send a Content-Length \
                body")
        else if
          List.length
            (List.filter (fun (k, _) -> k = "content-length") headers)
          > 1
        then Error (Malformed "duplicate Content-Length headers")
        else if meth <> "POST" then Ok req
        else begin
          match header req "content-length" with
          | None -> Error (Malformed "POST requires Content-Length")
          | Some v -> (
              match int_of_string_opt v with
              | None -> Error (Malformed ("bad Content-Length: " ^ v))
              | Some n when n < 0 ->
                  Error (Malformed ("bad Content-Length: " ^ v))
              | Some n when n > limits.max_body ->
                  Error
                    (Too_large
                       (Printf.sprintf "body of %d bytes exceeds the %d-byte limit"
                          n limits.max_body))
              | Some n -> Ok { req with body = read_exact rd n })
        end
  with Read_error e -> Error e

(* --- responses ------------------------------------------------------------ *)

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | s -> "Status " ^ string_of_int s

let error_body ~status ~detail =
  Rc_obs.Json.to_string
    (Rc_obs.Json.Obj
       [
         ( "error",
           Rc_obs.Json.Obj
             [
               ("status", Rc_obs.Json.Int status);
               ("reason", Rc_obs.Json.Str (reason status));
               ("detail", Rc_obs.Json.Str detail);
             ] );
       ])
  ^ "\n"

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let write_response fd ~status ?(headers = []) ~body () =
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  (* Responses are JSON unless a route says otherwise (the Prometheus
     exposition is text/plain). *)
  if
    not
      (List.exists
         (fun (k, _) -> String.lowercase_ascii k = "content-type")
         headers)
  then Buffer.add_string b "Content-Type: application/json\r\n";
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b "Connection: close\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  (* A vanished client (EPIPE, ECONNRESET, send timeout) abandons the
     response; it must never take the server down. *)
  try write_all fd (Buffer.contents b) with Unix.Unix_error _ -> ()
