(* Per-endpoint request counts and latency histograms: see stats.mli. *)

module M = Rc_obs.Metrics

type ep = {
  mutable n : int;  (** requests *)
  mutable errors : int;  (** responses with status >= 400 *)
  hist : M.Hist.t;  (** full-lifetime latency distribution, seconds *)
}

type t = {
  mu : Mutex.t;
  reg : M.t;
  endpoints : (string, ep) Hashtbl.t;
  mutable s_shed : int;
  mutable s_abandoned : int;
}

let create () =
  {
    mu = Mutex.create ();
    reg = M.create ();
    endpoints = Hashtbl.create 8;
    s_shed = 0;
    s_abandoned = 0;
  }

let registry t = t.reg

let endpoint_of t endpoint =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.endpoints endpoint with
      | Some ep -> ep
      | None ->
          let ep =
            {
              n = 0;
              errors = 0;
              hist =
                M.histogram t.reg
                  ~labels:[ ("endpoint", endpoint) ]
                  ~help:"Request wall time from accept to response, seconds"
                  "rcc_request_duration_seconds";
            }
          in
          Hashtbl.add t.endpoints endpoint ep;
          ep)

let record t ~endpoint ~status ~wall_s =
  let ep = endpoint_of t endpoint in
  Mutex.protect t.mu (fun () ->
      ep.n <- ep.n + 1;
      if status >= 400 then ep.errors <- ep.errors + 1);
  M.inc t.reg
    ~labels:[ ("endpoint", endpoint); ("status", string_of_int status) ]
    ~help:"Requests answered, by endpoint and status" "rcc_requests_total" 1.0;
  M.Hist.observe ep.hist wall_s

let record_shed t =
  Mutex.protect t.mu (fun () -> t.s_shed <- t.s_shed + 1);
  M.inc t.reg ~help:"Connections shed with 503 at the in-flight limit"
    "rcc_shed_total" 1.0

let record_spec t ~outcome =
  M.inc t.reg
    ~labels:[ ("outcome", outcome) ]
    ~help:"Kernel-spec submissions by admission outcome"
    "rcc_spec_submissions_total" 1.0

let record_abandoned t =
  Mutex.protect t.mu (fun () -> t.s_abandoned <- t.s_abandoned + 1);
  M.inc t.reg ~help:"Responses abandoned after their deadline expired"
    "rcc_abandoned_total" 1.0

let shed t = Mutex.protect t.mu (fun () -> t.s_shed)

let ep_json name ep =
  let ms s = Rc_obs.Json.Float (1000.0 *. s) in
  Rc_obs.Json.Obj
    [
      ("endpoint", Rc_obs.Json.Str name);
      ("requests", Rc_obs.Json.Int ep.n);
      ("errors", Rc_obs.Json.Int ep.errors);
      ("p50_ms", ms (M.Hist.quantile ep.hist 0.50));
      ("p90_ms", ms (M.Hist.quantile ep.hist 0.90));
      ("p99_ms", ms (M.Hist.quantile ep.hist 0.99));
      ("max_ms", ms (M.Hist.max_value ep.hist));
    ]

let to_json t =
  let eps, shed, abandoned =
    Mutex.protect t.mu (fun () ->
        ( Hashtbl.fold (fun name ep acc -> (name, ep) :: acc) t.endpoints []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b),
          t.s_shed,
          t.s_abandoned ))
  in
  let total = List.fold_left (fun acc (_, ep) -> acc + ep.n) 0 eps in
  Rc_obs.Json.Obj
    [
      ("requests", Rc_obs.Json.Int total);
      ("shed", Rc_obs.Json.Int shed);
      ("abandoned", Rc_obs.Json.Int abandoned);
      ( "endpoints",
        Rc_obs.Json.List (List.map (fun (n, ep) -> ep_json n ep) eps) );
    ]
