(* Per-endpoint request counts and latency quantiles: see stats.mli. *)

(* Latency samples per endpoint: a fixed ring of the most recent
   [window] requests — quantiles over a sliding window, O(1) memory
   for a long-lived server. *)
let window = 1024

type ep = {
  mutable n : int;  (** requests *)
  mutable errors : int;  (** responses with status >= 400 *)
  samples : float array;  (** ring buffer, seconds *)
  mutable filled : int;
  mutable next : int;
}

type t = {
  mu : Mutex.t;
  endpoints : (string, ep) Hashtbl.t;
  mutable s_shed : int;
  mutable s_abandoned : int;
}

let create () =
  {
    mu = Mutex.create ();
    endpoints = Hashtbl.create 8;
    s_shed = 0;
    s_abandoned = 0;
  }

let record t ~endpoint ~status ~wall_s =
  Mutex.protect t.mu (fun () ->
      let ep =
        match Hashtbl.find_opt t.endpoints endpoint with
        | Some ep -> ep
        | None ->
            let ep =
              { n = 0; errors = 0; samples = Array.make window 0.0;
                filled = 0; next = 0 }
            in
            Hashtbl.add t.endpoints endpoint ep;
            ep
      in
      ep.n <- ep.n + 1;
      if status >= 400 then ep.errors <- ep.errors + 1;
      ep.samples.(ep.next) <- wall_s;
      ep.next <- (ep.next + 1) mod window;
      if ep.filled < window then ep.filled <- ep.filled + 1)

let record_shed t = Mutex.protect t.mu (fun () -> t.s_shed <- t.s_shed + 1)

let record_abandoned t =
  Mutex.protect t.mu (fun () -> t.s_abandoned <- t.s_abandoned + 1)

let shed t = Mutex.protect t.mu (fun () -> t.s_shed)

(* Nearest-rank quantile over the window snapshot. *)
let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let ep_json name ep =
  let sorted = Array.sub ep.samples 0 ep.filled in
  Array.sort compare sorted;
  let ms s = Rc_obs.Json.Float (1000.0 *. s) in
  Rc_obs.Json.Obj
    [
      ("endpoint", Rc_obs.Json.Str name);
      ("requests", Rc_obs.Json.Int ep.n);
      ("errors", Rc_obs.Json.Int ep.errors);
      ("p50_ms", ms (quantile sorted 0.50));
      ("p90_ms", ms (quantile sorted 0.90));
      ("p99_ms", ms (quantile sorted 0.99));
      ("max_ms", ms (if ep.filled = 0 then 0.0 else sorted.(ep.filled - 1)));
    ]

let to_json t =
  Mutex.protect t.mu (fun () ->
      let eps =
        Hashtbl.fold (fun name ep acc -> (name, ep) :: acc) t.endpoints []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let total = List.fold_left (fun acc (_, ep) -> acc + ep.n) 0 eps in
      Rc_obs.Json.Obj
        [
          ("requests", Rc_obs.Json.Int total);
          ("shed", Rc_obs.Json.Int t.s_shed);
          ("abandoned", Rc_obs.Json.Int t.s_abandoned);
          ( "endpoints",
            Rc_obs.Json.List (List.map (fun (n, ep) -> ep_json n ep) eps) );
        ])
