(** Request-scoped span tracing for the simulation service.

    Every request the server handles gets a {!recording}: phase spans
    ([queue], [read], [parse], [compile], [simulate], [render],
    [write]) are timed onto it as the handler runs, and {!finish}
    freezes it into a {!req} that is pushed into the server's bounded
    {!sink} (oldest requests dropped beyond capacity, so a long-lived
    server holds a sliding window of recent request traces).

    A {!sink} snapshot exports through the existing {!Rc_obs.Trace}
    machinery: each request becomes a parent span (named
    ["METH /path"], carrying the request id and status as args) plus
    its phase spans on the endpoint's track, rendered as Chrome
    trace-event JSON for [GET /trace] and the [--trace FILE] sink.

    Recordings are single-threaded (one per in-flight request, touched
    only by its handler); the sink is mutex-protected and safe from
    any domain. *)

type span = {
  s_name : string;
  s_args : (string * Rc_obs.Json.t) list;
  s_start : float;  (** absolute, [Unix.gettimeofday] seconds *)
  s_dur : float;  (** seconds *)
}

type req = {
  r_id : string;
  r_meth : string;
  r_path : string;
  r_status : int;
  r_start : float;  (** accept time, absolute seconds *)
  r_wall : float;  (** accept to completion, seconds *)
  r_spans : span list;  (** in start order *)
}

(** {2 Per-request recording} *)

type recording

(** [start ~t0] opens a recording whose request span begins at [t0]
    (the accept timestamp).  Id, method and path are placeholders
    until {!identify} — the request line has not been read yet. *)
val start : t0:float -> recording

val identify : recording -> id:string -> meth:string -> path:string -> unit
val id : recording -> string

(** [time r name f] runs [f] and records its wall time as a span
    (recorded even when [f] raises). *)
val time : recording -> ?args:(string * Rc_obs.Json.t) list -> string ->
  (unit -> 'a) -> 'a

(** Record a span from explicit timestamps (for phases not shaped like
    a closure, e.g. the admission-queue wait). *)
val add : recording -> ?args:(string * Rc_obs.Json.t) list -> name:string ->
  start_s:float -> dur_s:float -> unit -> unit

(** Freeze: the request span runs from [t0] to now. *)
val finish : recording -> status:int -> req

(** {2 Bounded sink} *)

type sink

(** [sink ()] holds the [capacity] (default 512) most recent
    requests. *)
val sink : ?capacity:int -> unit -> sink

val push : sink -> req -> unit

(** Completed requests, oldest first. *)
val snapshot : sink -> req list

(** Chrome trace-event JSON of the current snapshot; timestamps are
    microseconds since the sink was created. *)
val chrome : sink -> string

(** {2 Text renderings} *)

(** One access-log line: [access id=ID "METH /path" STATUS 12.345ms]. *)
val access_line : req -> string

(** One-line span breakdown for slow-request dumps:
    [slow request id=ID "METH /path" STATUS wall=12.3ms breakdown:
    queue=0.0ms ... compile=8.2ms simulate(replay)=3.1ms ...]. *)
val breakdown_line : req -> string
