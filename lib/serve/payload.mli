(** The wire payloads shared by the [rcc] CLI and the HTTP service.

    Both front ends build their machine-readable output through these
    functions, so a [POST /run] response is byte-identical to
    [rcc run --json] for the same configuration {e by construction}
    (modulo pass wall-clock times, the only non-deterministic field),
    and [POST /figures] matches [rcc figures --json]. *)

(** Every experiment id [rcc figures] and [POST /figures] accept, in
    presentation order. *)
val all_figure_ids : string list

(** Pipeline options from the CLI/run-request knobs, with the same
    defaults in both front ends. *)
val options_of :
  issue:int ->
  core_int:int ->
  core_float:int ->
  rc:bool ->
  load:int ->
  connect:int ->
  mem_channels:int option ->
  extra_stage:bool ->
  model:Rc_core.Model.t ->
  no_unroll:bool ->
  Rc_harness.Pipeline.options

(** {2 Response builders} *)

val config_json : Rc_harness.Pipeline.options -> Rc_obs.Json.t

(** One configuration's full record: config, machine counters (slot
    attribution included), static code size, per-pass compile
    metrics. *)
val config_result_json :
  ?name:string ->
  ?speedup:float ->
  Rc_harness.Pipeline.compiled ->
  Rc_machine.Machine.result ->
  Rc_obs.Json.t

(** The [rcc run --json] / [POST /run] document. *)
val run_response :
  bench:string ->
  scale:int ->
  engine_used:string ->
  Rc_harness.Pipeline.compiled ->
  Rc_machine.Machine.result ->
  Rc_obs.Json.t

val table_json : Rc_harness.Experiments.table -> Rc_obs.Json.t
val engine_stats_json : Rc_harness.Experiments.engine_stats -> Rc_obs.Json.t

(** The [rcc figures --json] / [POST /figures] document. *)
val figures_response :
  scale:int ->
  jobs:int ->
  engine_name:string ->
  stats:Rc_harness.Experiments.engine_stats ->
  Rc_harness.Experiments.table list ->
  Rc_obs.Json.t

(** {2 Request decoders (the server's [POST] bodies)} *)

type run_request = {
  rq_bench : Rc_workloads.Wutil.bench;
  rq_scale : int;
  rq_opts : Rc_harness.Pipeline.options;
}

(** Strict decoding of a [/run] body: unknown fields, wrong types,
    unknown benchmarks or models, and non-positive [scale]/[issue] are
    errors (the CLI would have rejected them as usage errors). *)
val run_request_of_json : Rc_obs.Json.t -> (run_request, string) result

(** Strict decoding of a [/figures] body [{"ids": [...]}]; an absent
    or empty [ids] selects every experiment. *)
val figures_request_of_json : Rc_obs.Json.t -> (string list, string) result
