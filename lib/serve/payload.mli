(** The wire payloads shared by the [rcc] CLI and the HTTP service.

    Both front ends build their machine-readable output through these
    functions, so a [POST /run] response is byte-identical to
    [rcc run --json] for the same configuration {e by construction}
    (modulo pass wall-clock times, the only non-deterministic field),
    and [POST /figures] matches [rcc figures --json]. *)

(** Every experiment id [rcc figures] and [POST /figures] accept, in
    presentation order. *)
val all_figure_ids : string list

(** Pipeline options from the CLI/run-request knobs, with the same
    defaults in both front ends. *)
val options_of :
  issue:int ->
  core_int:int ->
  core_float:int ->
  rc:bool ->
  load:int ->
  connect:int ->
  mem_channels:int option ->
  extra_stage:bool ->
  model:Rc_core.Model.t ->
  no_unroll:bool ->
  Rc_harness.Pipeline.options

(** The configuration every absent request field resolves to (also the
    one [POST /compile] / [rcc compile] summarise under). *)
val default_options : unit -> Rc_harness.Pipeline.options

(** {2 Response builders} *)

val config_json : Rc_harness.Pipeline.options -> Rc_obs.Json.t

(** One configuration's full record: config, machine counters (slot
    attribution included), static code size, per-pass compile
    metrics. *)
val config_result_json :
  ?name:string ->
  ?speedup:float ->
  Rc_harness.Pipeline.compiled ->
  Rc_machine.Machine.result ->
  Rc_obs.Json.t

(** The [rcc run --json] / [POST /run] document.  [oracle], when the
    request asked for the lockstep admission gate, is the verdict JSON
    ({!Rc_check.Spec.verdict_json}). *)
val run_response :
  ?oracle:Rc_obs.Json.t ->
  bench:string ->
  scale:int ->
  engine_used:string ->
  Rc_harness.Pipeline.compiled ->
  Rc_machine.Machine.result ->
  Rc_obs.Json.t

(** The [rcc compile --json] / [POST /compile] document: the assigned
    kernel id, the spec's static measures (size, depth, funcs, slots),
    the compiled image's fingerprint and compile-side telemetry under
    {!default_options}. *)
val compile_response :
  ?oracle:Rc_obs.Json.t ->
  id:string ->
  Rc_check.Gen.spec ->
  Rc_harness.Pipeline.compiled ->
  Rc_obs.Json.t

val table_json : Rc_harness.Experiments.table -> Rc_obs.Json.t
val engine_stats_json : Rc_harness.Experiments.engine_stats -> Rc_obs.Json.t

(** The [rcc figures --json] / [POST /figures] document. *)
val figures_response :
  scale:int ->
  jobs:int ->
  engine_name:string ->
  stats:Rc_harness.Experiments.engine_stats ->
  Rc_harness.Experiments.table list ->
  Rc_obs.Json.t

(** {2 Request decoders (the server's [POST] bodies)}

    Decoders report through {!Rc_check.Spec.error} so the transport can
    keep the status split: [Malformed] answers 400, [Too_large] (a spec
    over the admission limits) answers 413. *)

(** What a request wants simulated: a registry benchmark by name, a
    previously submitted kernel by server-assigned id, or a spec
    document inline (admitted on the spot, exactly as [/compile]
    would). *)
type kernel_source =
  | K_bench of Rc_workloads.Wutil.bench
  | K_id of string
  | K_spec of Rc_check.Gen.spec

type run_request = {
  rq_kernel : kernel_source;
  rq_scale : int;
  rq_opts : Rc_harness.Pipeline.options;
  rq_oracle : int option;
      (** lockstep the first N cycles against the reference
          interpreter before timing *)
}

(** Strict decoding of a [/run] body: unknown fields, wrong types,
    unknown benchmarks or models, and non-positive [scale]/[issue] are
    errors (the CLI would have rejected them as usage errors).  Exactly
    one of ["bench"], ["kernel"], ["spec"] selects the kernel. *)
val run_request_of_json :
  Rc_obs.Json.t -> (run_request, Rc_check.Spec.error) result

type compile_request = {
  cq_spec : Rc_check.Gen.spec;
  cq_oracle : int option;
}

(** Strict decoding of a [/compile] body: either a bare spec document
    (recognised by its ["funcs"] field) or a
    [{"spec": ..., "oracle": N}] wrapper. *)
val compile_request_of_json :
  Rc_obs.Json.t -> (compile_request, Rc_check.Spec.error) result

type figures_request =
  | Fq_ids of string list  (** the named experiments over the registry *)
  | Fq_kernel of kernel_source
      (** the per-kernel sweeps ({!Rc_harness.Experiments.kernel_figures}) *)

(** Strict decoding of a [/figures] body: [{"ids": [...]}] (absent or
    empty [ids] selects every experiment), or a kernel selector
    ([bench]/[kernel]/[spec]) for the single-kernel sweeps. *)
val figures_request_of_json :
  Rc_obs.Json.t -> (figures_request, Rc_check.Spec.error) result
