(** Minimal HTTP/1.1 codec for the simulation service.

    Hand-rolled over [Unix] file descriptors — the toolchain image has
    no HTTP library, and the service needs only: one request per
    connection ([Connection: close]), JSON bodies, strict size limits
    and structured errors.  Parsing is factored over a [feed] function
    so the codec is unit-testable from strings without sockets. *)

(** Hard limits enforced while parsing; exceeding one is a typed
    {!error}, never an unbounded allocation. *)
type limits = {
  max_line : int;  (** request line and each header line, bytes *)
  max_headers : int;  (** header count *)
  max_body : int;  (** request body, bytes *)
}

(** 8 KiB lines, 64 headers, 1 MiB bodies. *)
val default_limits : limits

type request = {
  meth : string;  (** verb, as sent: ["GET"], ["POST"], ... *)
  path : string;  (** request target with any ["?query"] stripped *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

(** Why a request could not be read.  Maps to a response status:
    [Malformed] 400, [Too_large] 413, [Header_overflow] 431,
    [Not_implemented] 501, [Timeout] 408, [Closed] (peer hung up
    mid-request — nothing to answer). *)
type error =
  | Malformed of string
  | Too_large of string
  | Header_overflow of string
  | Not_implemented of string
  | Timeout
  | Closed

(** Buffered reader; [feed buf off len] returns the bytes read (0 =
    end of stream) and may raise [Unix_error (EAGAIN | EWOULDBLOCK)]
    for a receive timeout, surfaced as [Timeout]. *)
type reader

val reader_of_fd : Unix.file_descr -> reader

(** Reader over a fixed string, for tests. *)
val reader_of_string : string -> reader

(** Read one full request (request line, headers, body).  [POST]
    requires a valid [Content-Length]; other methods read no body.
    Message-length ambiguity is rejected instead of guessed at (the
    request-smuggling shapes): any [Transfer-Encoding] header — alone
    or alongside a [Content-Length], on any method — is
    [Not_implemented] (501), and duplicate [Content-Length] headers,
    even agreeing ones, are [Malformed] (400). *)
val read_request : ?limits:limits -> reader -> (request, error) result

val header : request -> string -> string option

(** [write_response fd ~status ~headers ~body ()] writes a complete
    HTTP/1.1 response with [Content-Type: application/json],
    [Content-Length] and [Connection: close] added.  Write errors
    (client gone: EPIPE, ECONNRESET, a send timeout) are swallowed —
    an abandoned response must never take the server down. *)
val write_response :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  body:string ->
  unit ->
  unit

val reason : int -> string

(** [{"error":{"status":...,"reason":...,"detail":...}}] with a
    trailing newline — every non-200 body is this shape. *)
val error_body : status:int -> detail:string -> string
