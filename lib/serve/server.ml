(* The persistent simulation service behind `rcc serve`: see
   server.mli for the contract. *)

let version = "1.0.0"

type config = {
  host : string;
  port : int;
  backlog : int;
  max_inflight : int;
  max_body : int;
  deadline_s : float;
  access_log : bool;
  slow_ms : float option;
  trace_capacity : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    backlog = 16;
    max_inflight = 64;
    max_body = 1 lsl 20;
    deadline_s = 30.0;
    access_log = false;
    slow_ms = None;
    trace_capacity = 512;
  }

type t = {
  cfg : config;
  ctx : Rc_harness.Experiments.ctx;
  store : Store.t option;
  lfd : Unix.file_descr;
  port : int;
  stats : Stats.t;
  reqs : Reqtrace.sink;
  kmu : Mutex.t;  (* guards [kernels] *)
  kernels : (string, Rc_check.Gen.spec) Hashtbl.t;
  started : float;
  next_id : int Atomic.t;
  stopping : bool Atomic.t;
  mu : Mutex.t;
  drained : Condition.t;
  mutable inflight : int;
  mutable served : int;
  mutable closed_early : int;
}

(* Split out of [create] so the prefork parent can open the listener
   once, before any worker (or any domain) exists, and hand the
   inherited fd to each worker's [create ~listener].  Close-on-exec:
   the listener must not leak into exec'd subprocesses — fork-only
   children (the prefork workers) still inherit it, since the flag
   acts at exec, not fork. *)
let create_listener config =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec lfd;
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  (match
     Unix.bind lfd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port))
   with
  | () -> ()
  | exception e ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      raise e);
  Unix.listen lfd config.backlog;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (lfd, port)

let create ?(config = default_config) ?listener ?store ctx =
  let lfd, port =
    match listener with
    | Some (fd, port) -> (fd, port)
    | None -> create_listener config
  in
  (match store with
  | None -> ()
  | Some s ->
      Rc_harness.Experiments.set_store ctx ~probe:(Store.probe s)
        ~publish:(Store.publish s));
  {
    cfg = config;
    ctx;
    store;
    lfd;
    port;
    stats = Stats.create ();
    reqs = Reqtrace.sink ~capacity:config.trace_capacity ();
    kmu = Mutex.create ();
    kernels = Hashtbl.create 16;
    started = Unix.gettimeofday ();
    next_id = Atomic.make 1;
    stopping = Atomic.make false;
    mu = Mutex.create ();
    drained = Condition.create ();
    inflight = 0;
    served = 0;
    closed_early = 0;
  }

let port t = t.port
let stop t = Atomic.set t.stopping true
let inflight t = Mutex.protect t.mu (fun () -> t.inflight)
let served t = Mutex.protect t.mu (fun () -> t.served)
let closed_early t = Mutex.protect t.mu (fun () -> t.closed_early)
let trace_chrome t = Reqtrace.chrome t.reqs
let uptime_s t = Unix.gettimeofday () -. t.started

(* A fresh server-assigned request id; clients may override with an
   X-Request-Id header of their own. *)
let fresh_id t = Printf.sprintf "r%06d" (Atomic.fetch_and_add t.next_id 1)

(* --- routing -------------------------------------------------------------- *)

let json_ok j = (200, [], Rc_obs.Json.to_string j ^ "\n")
let err status detail = (status, [], Http.error_body ~status ~detail)

(* --- submitted-kernel registry -------------------------------------------- *)

(* Admitted specs, keyed by their content digest ({!Rc_check.Spec.id_of}).
   Specs are small by construction (the admission budget), so the
   registry is bounded by count alone; at the cap, new submissions are
   shed rather than evicting — ids are handed to clients and must stay
   resolvable for the server's lifetime. *)
let max_kernels = 1024

(* Endpoint-local rejection with a definite status, unwound to [route]'s
   handler: the request's fault (or the registry's capacity), never a
   server crash. *)
exception Reject of int * string

let register_kernel t spec =
  let id = Rc_check.Spec.id_of spec in
  Mutex.protect t.kmu (fun () ->
      if not (Hashtbl.mem t.kernels id) then
        if Hashtbl.length t.kernels >= max_kernels then
          raise
            (Reject
               ( 503,
                 Fmt.str
                   "kernel registry is full (%d kernels); re-run existing \
                    kernels by id or restart the server"
                   max_kernels ))
        else Hashtbl.add t.kernels id spec);
  id

let kernel_count t = Mutex.protect t.kmu (fun () -> Hashtbl.length t.kernels)

(* Resolve a request's kernel selector to the bench it runs as.  An
   inline spec is admitted (and registered) on the spot, so the
   response's kernel id is immediately re-runnable. *)
let bench_of_source t (src : Payload.kernel_source) =
  match src with
  | Payload.K_bench b -> b
  | Payload.K_id id -> (
      match Mutex.protect t.kmu (fun () -> Hashtbl.find_opt t.kernels id) with
      | Some spec -> Rc_check.Spec.bench_of spec
      | None ->
          raise
            (Reject
               ( 404,
                 Fmt.str
                   "unknown kernel %S; submit its spec through POST /compile \
                    first"
                   id )))
  | Payload.K_spec spec ->
      ignore (register_kernel t spec);
      Stats.record_spec t.stats ~outcome:"admitted";
      Rc_check.Spec.bench_of spec

(* Run the lockstep admission oracle over a compiled kernel; agreement
   returns the verdict JSON for the response, divergence rejects the
   request with the differential report. *)
let oracle_gate t rc ~cycles c =
  let v = Reqtrace.time rc "oracle" (fun () -> Rc_check.Spec.oracle ~cycles c) in
  match v with
  | Rc_check.Spec.Agree _ ->
      Stats.record_spec t.stats ~outcome:"oracle-agree";
      Rc_check.Spec.verdict_json v
  | Rc_check.Spec.Diverged r ->
      Stats.record_spec t.stats ~outcome:"oracle-diverged";
      raise
        (Reject
           (400, Fmt.str "admission oracle diverged: %a" Rc_check.Report.pp r))

(* The typed spec-error split carried to the wire: [Malformed] 400,
   [Too_large] (an admission-budget overrun) 413. *)
let spec_err t = function
  | Rc_check.Spec.Malformed m -> err 400 m
  | Rc_check.Spec.Too_large m ->
      Stats.record_spec t.stats ~outcome:"rejected-limit";
      err 413 m

let parse_body rc body decode =
  Reqtrace.time rc "parse" (fun () ->
      match Rc_obs.Json.of_string body with
      | Error m -> Error (Rc_check.Spec.Malformed ("malformed JSON: " ^ m))
      | Ok j -> decode j)

let run_endpoint t rc body =
  match parse_body rc body Payload.run_request_of_json with
  | Error e -> spec_err t e
  | Ok rq ->
      if rq.Payload.rq_scale <> Rc_harness.Experiments.scale t.ctx then
        err 400
          (Fmt.str
             "scale %d does not match the server's --scale %d (the memo \
              tables are keyed under one scale)"
             rq.Payload.rq_scale
             (Rc_harness.Experiments.scale t.ctx))
      else begin
        let bench = bench_of_source t rq.Payload.rq_kernel in
        let c =
          Reqtrace.time rc "compile" (fun () ->
              Rc_harness.Experiments.compile_cell t.ctx bench
                rq.Payload.rq_opts)
        in
        let oracle =
          Option.map
            (fun cycles -> oracle_gate t rc ~cycles c)
            rq.Payload.rq_oracle
        in
        (* The engine that timed the cell is only known afterwards, so
           the span is recorded from explicit timestamps, tagged with
           execute/replay for the slow-request breakdown. *)
        let ts = Unix.gettimeofday () in
        let r, engine_used = Rc_harness.Experiments.simulate_cell t.ctx c in
        Reqtrace.add rc
          ~args:[ ("engine", Rc_obs.Json.Str engine_used) ]
          ~name:"simulate" ~start_s:ts
          ~dur_s:(Unix.gettimeofday () -. ts)
          ();
        Reqtrace.time rc "render" (fun () ->
            json_ok
              (Payload.run_response ?oracle ~bench:bench.Rc_workloads.Wutil.name
                 ~scale:rq.Payload.rq_scale ~engine_used c r))
      end

let compile_endpoint t rc body =
  match parse_body rc body Payload.compile_request_of_json with
  | Error (Rc_check.Spec.Malformed _ as e) ->
      Stats.record_spec t.stats ~outcome:"rejected-malformed";
      spec_err t e
  | Error e -> spec_err t e
  | Ok { Payload.cq_spec = spec; cq_oracle } ->
      let id = register_kernel t spec in
      Stats.record_spec t.stats ~outcome:"admitted";
      let bench = Rc_check.Spec.bench_of spec in
      let c =
        Reqtrace.time rc "compile" (fun () ->
            Rc_harness.Experiments.compile_cell t.ctx bench
              (Payload.default_options ()))
      in
      let oracle =
        Option.map (fun cycles -> oracle_gate t rc ~cycles c) cq_oracle
      in
      Reqtrace.time rc "render" (fun () ->
          json_ok (Payload.compile_response ?oracle ~id spec c))

let figures_response_of t rc tables_span tables =
  let tables = Reqtrace.time rc tables_span tables in
  let stats = Rc_harness.Experiments.engine_stats t.ctx in
  Reqtrace.time rc "render" (fun () ->
      json_ok
        (Payload.figures_response
           ~scale:(Rc_harness.Experiments.scale t.ctx)
           ~jobs:(Rc_harness.Experiments.jobs t.ctx)
           ~engine_name:
             (Rc_harness.Experiments.engine_name
                (Rc_harness.Experiments.engine t.ctx))
           ~stats tables))

let figures_endpoint t rc body =
  match parse_body rc body Payload.figures_request_of_json with
  | Error e -> spec_err t e
  | Ok (Payload.Fq_ids ids) ->
      figures_response_of t rc "tables" (fun () ->
          List.map
            (fun id ->
              match Rc_harness.Experiments.by_id t.ctx id with
              | Some tbl -> tbl
              | None -> assert false (* ids validated by the decoder *))
            ids)
  | Ok (Payload.Fq_kernel src) ->
      let bench = bench_of_source t src in
      figures_response_of t rc "tables" (fun () ->
          Rc_harness.Experiments.kernel_figures t.ctx bench)

let metrics_json_endpoint t =
  let server =
    match Stats.to_json t.stats with
    | Rc_obs.Json.Obj fields ->
        Rc_obs.Json.Obj
          (("inflight", Rc_obs.Json.Int (inflight t))
          :: ("closed_early", Rc_obs.Json.Int (closed_early t))
          :: fields)
    | j -> j
  in
  let store_fields =
    match t.store with
    | None -> []
    | Some s -> [ ("store", Store.stats_json s) ]
  in
  json_ok
    (Rc_obs.Json.Obj
       ([
          ("server", server);
          ("experiments", Rc_harness.Experiments.metrics_json t.ctx);
        ]
       @ store_fields))

let prom_endpoint t =
  let reg = Stats.registry t.stats in
  Rc_obs.Metrics.set reg ~help:"Requests accepted and not yet finished"
    "rcc_inflight"
    (float_of_int (inflight t));
  Rc_obs.Metrics.set reg ~help:"Seconds since the server started"
    "rcc_uptime_seconds" (uptime_s t);
  Rc_obs.Metrics.set_counter reg
    ~help:"Connections closed before sending any request"
    "rcc_closed_early_total"
    (float_of_int (closed_early t));
  Rc_obs.Metrics.set reg ~help:"Kernels resident in the submission registry"
    "rcc_spec_kernels"
    (float_of_int (kernel_count t));
  Rc_harness.Experiments.export_metrics t.ctx reg;
  (match t.store with None -> () | Some s -> Store.export_metrics s reg);
  ( 200,
    [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ],
    Rc_obs.Metrics.render reg )

let healthz_endpoint t =
  json_ok
    (Rc_obs.Json.Obj
       [
         ("status", Rc_obs.Json.Str "ok");
         ("uptime_s", Rc_obs.Json.Float (uptime_s t));
         ("inflight", Rc_obs.Json.Int (inflight t));
       ])

let version_endpoint t =
  json_ok
    (Rc_obs.Json.Obj
       [
         ("version", Rc_obs.Json.Str version);
         ("ocaml", Rc_obs.Json.Str Sys.ocaml_version);
         ("os", Rc_obs.Json.Str Sys.os_type);
         ("word_size", Rc_obs.Json.Int Sys.word_size);
         ("started_unix_s", Rc_obs.Json.Float t.started);
         ("uptime_s", Rc_obs.Json.Float (uptime_s t));
       ])

let route t rc (req : Http.request) =
  try
    match (req.Http.meth, req.Http.path) with
    | "GET", "/healthz" -> healthz_endpoint t
    | "GET", "/version" -> version_endpoint t
    | "GET", "/metrics" -> prom_endpoint t
    | "GET", "/metrics.json" -> metrics_json_endpoint t
    | "GET", "/trace" -> (200, [], trace_chrome t ^ "\n")
    | "POST", "/run" -> run_endpoint t rc req.Http.body
    | "POST", "/figures" -> figures_endpoint t rc req.Http.body
    | "POST", "/compile" -> compile_endpoint t rc req.Http.body
    | ( meth,
        (( "/healthz" | "/version" | "/metrics" | "/metrics.json" | "/trace"
         | "/run" | "/figures" | "/compile" ) as path) ) ->
        err 405 (Fmt.str "%s is not supported on %s" meth path)
    | _, path -> err 404 ("no route for " ^ path)
  with
  | Reject (status, detail) -> err status detail
  | Invalid_argument m ->
      (* The pipeline rejects unsatisfiable configurations (registers
         too small to allocate, malformed knob combinations) with
         Invalid_argument: the request's fault, not the server's. *)
      err 400 m
  | e -> err 500 (Printexc.to_string e)

(* --- per-connection handling ---------------------------------------------- *)

(* Closing a socket whose receive buffer still holds unread request
   bytes makes the kernel send RST, which can destroy a just-written
   response before the client reads it — exactly the error and
   load-shed paths, which answer without consuming the body.  So:
   finish our side with FIN, drain briefly until the peer closes, then
   close for real.  The drain is bounded three ways — per-read
   timeout, total byte budget, wall-clock deadline — so a client that
   keeps streaming bytes forfeits its RST protection instead of
   pinning a worker. *)
let drain_budget_bytes = 256 * 1024
let drain_deadline_s = 2.0

let graceful_close fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
     let buf = Bytes.create 4096 in
     let deadline = Unix.gettimeofday () +. drain_deadline_s in
     let budget = ref drain_budget_bytes in
     let rec drain () =
       if !budget > 0 && Unix.gettimeofday () < deadline then begin
         let n = Unix.read fd buf 0 (Bytes.length buf) in
         if n > 0 then begin
           budget := !budget - n;
           drain ()
         end
       end
     in
     drain ()
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Push the finished request into the trace sink, the access log, the
   slow-request dump and the stats, in that order. *)
let complete t rc ~endpoint ~status =
  let req = Reqtrace.finish rc ~status in
  Reqtrace.push t.reqs req;
  if t.cfg.access_log then
    Fmt.epr "rcc serve: %s@." (Reqtrace.access_line req);
  (match t.cfg.slow_ms with
  | Some ms when 1000.0 *. req.Reqtrace.r_wall > ms ->
      Fmt.epr "rcc serve: %s@." (Reqtrace.breakdown_line req)
  | _ -> ());
  Stats.record t.stats ~endpoint ~status ~wall_s:req.Reqtrace.r_wall

(* [t_acc] is the accept timestamp: the request's wall clock (stats,
   spans, deadline) runs from arrival, so admission-queue wait is
   visible instead of silently excluded. *)
let handle t ~t_acc fd =
  let rc = Reqtrace.start ~t0:t_acc in
  Reqtrace.add rc ~name:"queue" ~start_s:t_acc
    ~dur_s:(Unix.gettimeofday () -. t_acc)
    ();
  (* A connection that closes before sending any request (a health
     prober, a cancelled client) is not a served request: counting it
     would skew the loadgen client-vs-server cross-check. *)
  let early = ref false in
  let finally () =
    graceful_close fd;
    Mutex.protect t.mu (fun () ->
        t.inflight <- t.inflight - 1;
        if !early then t.closed_early <- t.closed_early + 1
        else t.served <- t.served + 1;
        Condition.broadcast t.drained)
  in
  Fun.protect ~finally (fun () ->
      (* Receive/send timeouts bound the read and write phases by the
         request deadline, so a stalled client cannot pin a worker. *)
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.deadline_s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.deadline_s
       with Unix.Unix_error _ -> ());
      let limits =
        { Http.default_limits with Http.max_body = t.cfg.max_body }
      in
      match
        Reqtrace.time rc "read" (fun () ->
            Http.read_request ~limits (Http.reader_of_fd fd))
      with
      | Error Http.Closed -> early := true
      | Error e ->
          let status, detail =
            match e with
            | Http.Malformed m -> (400, m)
            | Http.Too_large m -> (413, m)
            | Http.Header_overflow m -> (431, m)
            | Http.Not_implemented m -> (501, m)
            | Http.Timeout ->
                (408, "request was not received before the deadline")
            | Http.Closed -> assert false
          in
          Reqtrace.identify rc ~id:(fresh_id t) ~meth:"-"
            ~path:"(bad-request)";
          Reqtrace.time rc "write" (fun () ->
              Http.write_response fd ~status
                ~headers:[ ("X-Request-Id", Reqtrace.id rc) ]
                ~body:(Http.error_body ~status ~detail)
                ());
          complete t rc ~endpoint:"(bad-request)" ~status
      | Ok req ->
          (* The id is echoed into a response header and the access
             log; CR/LF or any other control byte in a client-supplied
             value is header splitting / log injection, so such ids are
             discarded, not escaped. *)
          let rid =
            match Http.header req "x-request-id" with
            | Some v
              when v <> ""
                   && String.length v <= 128
                   && String.for_all (fun c -> c >= ' ' && c <> '\x7f') v ->
                v
            | _ -> fresh_id t
          in
          Reqtrace.identify rc ~id:rid ~meth:req.Http.meth ~path:req.Http.path;
          let status, headers, body = route t rc req in
          let headers = ("X-Request-Id", rid) :: headers in
          let wall = Unix.gettimeofday () -. t_acc in
          if wall > t.cfg.deadline_s then begin
            (* The deadline expired while computing: abandon the
               response — the client was told to give up long ago —
               but never the shared context, whose caches just got
               warmer. *)
            Stats.record_abandoned t.stats;
            complete t rc ~endpoint:req.Http.path ~status
          end
          else begin
            Reqtrace.time rc "write" (fun () ->
                Http.write_response fd ~status ~headers ~body ());
            complete t rc ~endpoint:req.Http.path ~status
          end)

let dispatch t fd =
  let t_acc = Unix.gettimeofday () in
  let admitted =
    Mutex.protect t.mu (fun () ->
        if t.inflight >= t.cfg.max_inflight then false
        else begin
          t.inflight <- t.inflight + 1;
          true
        end)
  in
  if admitted then
    Rc_par.Pool.submit (Rc_harness.Experiments.pool t.ctx) (fun () ->
        handle t ~t_acc fd)
  else begin
    (* Bounded admission: shed with 503 + Retry-After instead of
       queueing unboundedly.  A short send timeout so a dead client
       cannot stall the accept loop. *)
    Stats.record_shed t.stats;
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
     with Unix.Unix_error _ -> ());
    Http.write_response fd ~status:503
      ~headers:[ ("Retry-After", "1") ]
      ~body:
        (Http.error_body ~status:503
           ~detail:"server is at its in-flight request limit; retry shortly")
      ();
    graceful_close fd
  end

let run t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.lfd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          (* ~cloexec: accepted sockets must not leak into exec'd
             children of the pool domains either *)
          match Unix.accept ~cloexec:true t.lfd with
          | fd, _ -> dispatch t fd
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (* Graceful drain: stop accepting, then let every in-flight request
     complete before returning — the caller shuts the context down
     only after this point. *)
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  Mutex.lock t.mu;
  while t.inflight > 0 do
    Condition.wait t.drained t.mu
  done;
  Mutex.unlock t.mu
