(* The persistent simulation service behind `rcc serve`: see
   server.mli for the contract. *)

type config = {
  host : string;
  port : int;
  backlog : int;
  max_inflight : int;
  max_body : int;
  deadline_s : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    backlog = 16;
    max_inflight = 64;
    max_body = 1 lsl 20;
    deadline_s = 30.0;
  }

type t = {
  cfg : config;
  ctx : Rc_harness.Experiments.ctx;
  lfd : Unix.file_descr;
  port : int;
  stats : Stats.t;
  stopping : bool Atomic.t;
  mu : Mutex.t;
  drained : Condition.t;
  mutable inflight : int;
  mutable served : int;
}

let create ?(config = default_config) ctx =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  (match
     Unix.bind lfd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port))
   with
  | () -> ()
  | exception e ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      raise e);
  Unix.listen lfd config.backlog;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  {
    cfg = config;
    ctx;
    lfd;
    port;
    stats = Stats.create ();
    stopping = Atomic.make false;
    mu = Mutex.create ();
    drained = Condition.create ();
    inflight = 0;
    served = 0;
  }

let port t = t.port
let stop t = Atomic.set t.stopping true
let inflight t = Mutex.protect t.mu (fun () -> t.inflight)
let served t = Mutex.protect t.mu (fun () -> t.served)

(* --- routing -------------------------------------------------------------- *)

let json_ok j = (200, [], Rc_obs.Json.to_string j ^ "\n")
let err status detail = (status, [], Http.error_body ~status ~detail)

let run_endpoint t body =
  match Rc_obs.Json.of_string body with
  | Error m -> err 400 ("malformed JSON: " ^ m)
  | Ok j -> (
      match Payload.run_request_of_json j with
      | Error m -> err 400 m
      | Ok rq ->
          if rq.Payload.rq_scale <> Rc_harness.Experiments.scale t.ctx then
            err 400
              (Fmt.str
                 "scale %d does not match the server's --scale %d (the memo \
                  tables are keyed under one scale)"
                 rq.Payload.rq_scale
                 (Rc_harness.Experiments.scale t.ctx))
          else
            let c =
              Rc_harness.Experiments.compile_cell t.ctx rq.Payload.rq_bench
                rq.Payload.rq_opts
            in
            let r, engine_used =
              Rc_harness.Experiments.simulate_cell t.ctx c
            in
            json_ok
              (Payload.run_response
                 ~bench:rq.Payload.rq_bench.Rc_workloads.Wutil.name
                 ~scale:rq.Payload.rq_scale ~engine_used c r))

let figures_endpoint t body =
  match Rc_obs.Json.of_string body with
  | Error m -> err 400 ("malformed JSON: " ^ m)
  | Ok j -> (
      match Payload.figures_request_of_json j with
      | Error m -> err 400 m
      | Ok ids ->
          let tables =
            List.map
              (fun id ->
                match Rc_harness.Experiments.by_id t.ctx id with
                | Some tbl -> tbl
                | None -> assert false (* ids validated by the decoder *))
              ids
          in
          let stats = Rc_harness.Experiments.engine_stats t.ctx in
          json_ok
            (Payload.figures_response
               ~scale:(Rc_harness.Experiments.scale t.ctx)
               ~jobs:(Rc_harness.Experiments.jobs t.ctx)
               ~engine_name:
                 (Rc_harness.Experiments.engine_name
                    (Rc_harness.Experiments.engine t.ctx))
               ~stats tables))

let metrics_endpoint t =
  let server =
    match Stats.to_json t.stats with
    | Rc_obs.Json.Obj fields ->
        Rc_obs.Json.Obj (("inflight", Rc_obs.Json.Int (inflight t)) :: fields)
    | j -> j
  in
  json_ok
    (Rc_obs.Json.Obj
       [
         ("server", server);
         ("experiments", Rc_harness.Experiments.metrics_json t.ctx);
       ])

let route t (req : Http.request) =
  try
    match (req.Http.meth, req.Http.path) with
    | "GET", "/healthz" ->
        json_ok (Rc_obs.Json.Obj [ ("status", Rc_obs.Json.Str "ok") ])
    | "GET", "/metrics" -> metrics_endpoint t
    | "POST", "/run" -> run_endpoint t req.Http.body
    | "POST", "/figures" -> figures_endpoint t req.Http.body
    | meth, (("/healthz" | "/metrics" | "/run" | "/figures") as path) ->
        err 405 (Fmt.str "%s is not supported on %s" meth path)
    | _, path -> err 404 ("no route for " ^ path)
  with
  | Invalid_argument m ->
      (* The pipeline rejects unsatisfiable configurations (registers
         too small to allocate, malformed knob combinations) with
         Invalid_argument: the request's fault, not the server's. *)
      err 400 m
  | e -> err 500 (Printexc.to_string e)

(* --- per-connection handling ---------------------------------------------- *)

(* Closing a socket whose receive buffer still holds unread request
   bytes makes the kernel send RST, which can destroy a just-written
   response before the client reads it — exactly the error and
   load-shed paths, which answer without consuming the body.  So:
   finish our side with FIN, drain briefly until the peer closes, then
   close for real. *)
let graceful_close fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
     let buf = Bytes.create 4096 in
     while Unix.read fd buf 0 (Bytes.length buf) > 0 do
       ()
     done
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let handle t fd =
  let t0 = Unix.gettimeofday () in
  let finally () =
    graceful_close fd;
    Mutex.protect t.mu (fun () ->
        t.inflight <- t.inflight - 1;
        t.served <- t.served + 1;
        Condition.broadcast t.drained)
  in
  Fun.protect ~finally (fun () ->
      (* Receive/send timeouts bound the read and write phases by the
         request deadline, so a stalled client cannot pin a worker. *)
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.deadline_s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.deadline_s
       with Unix.Unix_error _ -> ());
      let limits =
        { Http.default_limits with Http.max_body = t.cfg.max_body }
      in
      match Http.read_request ~limits (Http.reader_of_fd fd) with
      | Error Http.Closed -> ()
      | Error e ->
          let status, detail =
            match e with
            | Http.Malformed m -> (400, m)
            | Http.Too_large m -> (413, m)
            | Http.Header_overflow m -> (431, m)
            | Http.Timeout ->
                (408, "request was not received before the deadline")
            | Http.Closed -> assert false
          in
          Http.write_response fd ~status
            ~body:(Http.error_body ~status ~detail)
            ();
          Stats.record t.stats ~endpoint:"(bad-request)" ~status
            ~wall_s:(Unix.gettimeofday () -. t0)
      | Ok req ->
          let status, headers, body = route t req in
          let wall = Unix.gettimeofday () -. t0 in
          if wall > t.cfg.deadline_s then begin
            (* The deadline expired while computing: abandon the
               response — the client was told to give up long ago —
               but never the shared context, whose caches just got
               warmer. *)
            Stats.record_abandoned t.stats;
            Stats.record t.stats ~endpoint:req.Http.path ~status ~wall_s:wall
          end
          else begin
            Http.write_response fd ~status ~headers ~body ();
            Stats.record t.stats ~endpoint:req.Http.path ~status
              ~wall_s:(Unix.gettimeofday () -. t0)
          end)

let dispatch t fd =
  let admitted =
    Mutex.protect t.mu (fun () ->
        if t.inflight >= t.cfg.max_inflight then false
        else begin
          t.inflight <- t.inflight + 1;
          true
        end)
  in
  if admitted then
    Rc_par.Pool.submit (Rc_harness.Experiments.pool t.ctx) (fun () ->
        handle t fd)
  else begin
    (* Bounded admission: shed with 503 + Retry-After instead of
       queueing unboundedly.  A short send timeout so a dead client
       cannot stall the accept loop. *)
    Stats.record_shed t.stats;
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
     with Unix.Unix_error _ -> ());
    Http.write_response fd ~status:503
      ~headers:[ ("Retry-After", "1") ]
      ~body:
        (Http.error_body ~status:503
           ~detail:"server is at its in-flight request limit; retry shortly")
      ();
    graceful_close fd
  end

let run t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.lfd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.lfd with
          | fd, _ -> dispatch t fd
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (* Graceful drain: stop accepting, then let every in-flight request
     complete before returning — the caller shuts the context down
     only after this point. *)
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  Mutex.lock t.mu;
  while t.inflight > 0 do
    Condition.wait t.drained t.mu
  done;
  Mutex.unlock t.mu
