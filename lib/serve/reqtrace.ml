(* Request-scoped span tracing: see reqtrace.mli. *)

type span = {
  s_name : string;
  s_args : (string * Rc_obs.Json.t) list;
  s_start : float;
  s_dur : float;
}

type req = {
  r_id : string;
  r_meth : string;
  r_path : string;
  r_status : int;
  r_start : float;
  r_wall : float;
  r_spans : span list;
}

(* --- per-request recording ------------------------------------------------ *)

type recording = {
  t0 : float;
  mutable rc_id : string;
  mutable rc_meth : string;
  mutable rc_path : string;
  mutable rev : span list;
}

let start ~t0 = { t0; rc_id = "-"; rc_meth = "-"; rc_path = "-"; rev = [] }

let identify r ~id ~meth ~path =
  r.rc_id <- id;
  r.rc_meth <- meth;
  r.rc_path <- path

let id r = r.rc_id

let add r ?(args = []) ~name ~start_s ~dur_s () =
  r.rev <- { s_name = name; s_args = args; s_start = start_s; s_dur = dur_s }
           :: r.rev

let time r ?args name f =
  let t = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      add r ?args ~name ~start_s:t ~dur_s:(Unix.gettimeofday () -. t) ())
    f

let finish r ~status =
  {
    r_id = r.rc_id;
    r_meth = r.rc_meth;
    r_path = r.rc_path;
    r_status = status;
    r_start = r.t0;
    r_wall = Unix.gettimeofday () -. r.t0;
    r_spans =
      List.sort (fun a b -> Float.compare a.s_start b.s_start) (List.rev r.rev);
  }

(* --- bounded sink --------------------------------------------------------- *)

type sink = {
  mu : Mutex.t;
  capacity : int;
  epoch : float;  (** trace timestamps are relative to sink creation *)
  q : req Queue.t;
}

let sink ?(capacity = 512) () =
  {
    mu = Mutex.create ();
    capacity;
    epoch = Unix.gettimeofday ();
    q = Queue.create ();
  }

let push s r =
  Mutex.protect s.mu (fun () ->
      Queue.push r s.q;
      while Queue.length s.q > s.capacity do
        ignore (Queue.pop s.q)
      done)

let snapshot s =
  Mutex.protect s.mu (fun () -> List.of_seq (Queue.to_seq s.q))

let to_trace epoch reqs =
  let tr = Rc_obs.Trace.create () in
  let us t = (t -. epoch) *. 1e6 in
  List.iter
    (fun r ->
      Rc_obs.Trace.span tr ~track:r.r_path
        ~name:(r.r_meth ^ " " ^ r.r_path)
        ~ts_us:(us r.r_start) ~dur_us:(r.r_wall *. 1e6)
        ~args:
          [
            ("id", Rc_obs.Json.Str r.r_id);
            ("status", Rc_obs.Json.Int r.r_status);
          ]
        ();
      List.iter
        (fun sp ->
          Rc_obs.Trace.span tr ~track:r.r_path ~name:sp.s_name
            ~ts_us:(us sp.s_start) ~dur_us:(sp.s_dur *. 1e6)
            ~args:(("id", Rc_obs.Json.Str r.r_id) :: sp.s_args)
            ())
        r.r_spans)
    reqs;
  tr

let chrome s = Rc_obs.Trace.chrome_string (to_trace s.epoch (snapshot s))

(* --- text renderings ------------------------------------------------------ *)

let access_line r =
  Printf.sprintf "access id=%s %S %d %.3fms" r.r_id
    (r.r_meth ^ " " ^ r.r_path)
    r.r_status (1000.0 *. r.r_wall)

let span_label sp =
  match List.assoc_opt "engine" sp.s_args with
  | Some (Rc_obs.Json.Str e) -> Printf.sprintf "%s(%s)" sp.s_name e
  | _ -> sp.s_name

let breakdown_line r =
  Printf.sprintf "slow request id=%s %S %d wall=%.3fms breakdown: %s" r.r_id
    (r.r_meth ^ " " ^ r.r_path)
    r.r_status (1000.0 *. r.r_wall)
    (String.concat " "
       (List.map
          (fun sp ->
            Printf.sprintf "%s=%.3fms" (span_label sp) (1000.0 *. sp.s_dur))
          r.r_spans))
