(** Compact dynamic-trace records for the trace-replay timing engine.

    On an in-order machine with deterministic latencies, the timing
    knobs of a {!Config.t} (issue rate, memory channels, load and
    connect latency, extra pipeline stage, connect dispatch budget)
    cannot change the dynamic instruction stream — only its timing.  One
    execution-driven run therefore records, per dynamic instruction, the
    few facts timing depends on that are not static in the code image:

    - the program counter (static fields — opcode class, latency class,
      is_mem, connect targets, branch hints — are re-read from the
      replayer's own {!Rc_isa.Dins} predecode, so a trace recorded under
      2-cycle loads replays correctly under 4-cycle loads);
    - the three resolved physical registers (two sources and the
      destination) the issue logic interlocks on;
    - the PSW map-enable bit seen at issue (drives the 1-cycle-connect
      mapping-table conflict check);
    - the branch outcome (drives mispredict accounting).

    All five facts pack into one OCaml [int] per dynamic instruction;
    the emitted output stream and its checksum are stored once per
    trace.  {!Trace_replay} re-runs the issue/scoreboard/channel/
    redirect accounting from this record under any replay-safe
    configuration and reproduces {!Machine.result} exactly.

    A trace is only valid for the image it was recorded from (same code,
    data and entry) under the same functional semantics (reset model,
    register file shapes, no traps or interrupts) — see
    {!Trace_replay.replay_safe} and DESIGN.md §14. *)

(* Packed entry layout (low to high):
   bit  0        branch taken
   bit  1        PSW map-enable at issue
   bits 2..13    sp0 + 1  (12 bits; 0 = no source 0)
   bits 14..25   sp1 + 1
   bits 26..37   dp  + 1
   bits 38..59   pc       (22 bits)
   Physical registers above 4094 or images above 2^22 instructions do
   not fit; recording marks the builder invalid and the engine falls
   back to direct execution. *)

let reg_bits = 12
let reg_mask = (1 lsl reg_bits) - 1
let pc_bits = 22
let max_pc = (1 lsl pc_bits) - 1
let max_reg = reg_mask - 1

type t = {
  n : int;  (** dynamic instructions recorded *)
  packed : int array;  (** length [n], one packed entry each *)
  output : int64 list;  (** the emitted stream, in emission order *)
  checksum : int64;  (** {!Machine.checksum_of_output} of [output] *)
}

let[@inline] pack ~pc ~sp0 ~sp1 ~dp ~map_on ~taken =
  Bool.to_int taken
  lor (Bool.to_int map_on lsl 1)
  lor ((sp0 + 1) lsl 2)
  lor ((sp1 + 1) lsl (2 + reg_bits))
  lor ((dp + 1) lsl (2 + (2 * reg_bits)))
  lor (pc lsl (2 + (3 * reg_bits)))

let[@inline] taken e = e land 1 <> 0
let[@inline] map_on e = e land 2 <> 0
let[@inline] sp0 e = ((e lsr 2) land reg_mask) - 1
let[@inline] sp1 e = ((e lsr (2 + reg_bits)) land reg_mask) - 1
let[@inline] dp e = ((e lsr (2 + (2 * reg_bits))) land reg_mask) - 1
let[@inline] pc e = e lsr (2 + (3 * reg_bits))

(* --- recording ----------------------------------------------------------- *)

type builder = {
  mutable buf : int array;
  mutable len : int;
  mutable ok : bool;
      (** cleared when an entry does not fit or an unreplayable event
          (trap, rfe, interrupt) occurs; {!finish} then returns [None] *)
}

let builder ?(hint = 4096) () = { buf = Array.make (max 16 hint) 0; len = 0; ok = true }

let invalidate b = b.ok <- false

let[@inline never] grow b =
  let buf = Array.make (2 * Array.length b.buf) 0 in
  Array.blit b.buf 0 buf 0 b.len;
  b.buf <- buf

let[@inline] add b ~pc ~sp0 ~sp1 ~dp ~map_on ~taken =
  if b.ok then
    if pc > max_pc || sp0 > max_reg || sp1 > max_reg || dp > max_reg then
      b.ok <- false
    else begin
      if b.len = Array.length b.buf then grow b;
      b.buf.(b.len) <- pack ~pc ~sp0 ~sp1 ~dp ~map_on ~taken;
      b.len <- b.len + 1
    end

(** The finished trace, or [None] when recording hit an unreplayable
    event.  [output]/[checksum] come from the recording run's result. *)
let finish b ~output ~checksum =
  if not b.ok then None
  else Some { n = b.len; packed = Array.sub b.buf 0 b.len; output; checksum }

(** Approximate heap footprint, for the engine's cache accounting. *)
let bytes t = 8 * (t.n + (2 * List.length t.output) + 8)

(** A copy with entry [i] replaced — test hook for planting a
    divergence the equivalence check must catch.
    @raise Invalid_argument when [i] is out of range. *)
let sabotage t i entry =
  if i < 0 || i >= t.n then invalid_arg "Dtrace.sabotage: index out of range";
  let packed = Array.copy t.packed in
  packed.(i) <- entry;
  { t with packed }
