(** Compact dynamic-trace records for the trace-replay timing engine.

    On an in-order machine with deterministic latencies, the timing
    knobs of a {!Config.t} (issue rate, memory channels, load and
    connect latency, extra pipeline stage, connect dispatch budget)
    cannot change the dynamic instruction stream — only its timing.  One
    execution-driven run therefore records, per dynamic instruction, the
    few facts timing depends on that are not static in the code image:

    - the program counter (static fields — opcode class, latency class,
      is_mem, connect targets, branch hints — are re-read from the
      replayer's own {!Rc_isa.Dins} predecode, so a trace recorded under
      2-cycle loads replays correctly under 4-cycle loads);
    - the three resolved physical registers (two sources and the
      destination) the issue logic interlocks on;
    - the PSW map-enable bit seen at issue (drives the 1-cycle-connect
      mapping-table conflict check);
    - the branch outcome (drives mispredict accounting).

    In flight the five facts pack into one OCaml [int] per dynamic
    instruction ({!pack}); the recording {!builder} compresses them
    {e as they arrive} into a no-scan [Bytes.t] token stream the major
    GC never walks — no entry array ever exists, so recording
    allocates only the compressed bytes.
    The compression exploits what the stream almost always is:
    straight-line code ([pc = prev_pc + 1]) whose resolved registers
    equal the {e last sighting} of the same pc (seeded by the
    instruction's architectural fields) — the mapping table is either
    off, identity, or stable across loop iterations, so steady-state
    loop bodies are fully predicted and cost {e under one byte} via
    run-length tokens.  Everything else is a literal token: one flag
    byte plus zigzag varints for the pc jump and the non-zero
    (resolved − predicted) register deltas, which are small because
    connected registers sit in one extended window.

    {!Trace_replay} streams entries back through a {!cursor} (no array
    is ever materialised) and re-runs the issue/scoreboard/channel/
    redirect accounting under any replay-safe configuration,
    reproducing {!Machine.result} exactly.

    A trace is only valid for the image it was recorded from (same code,
    data and entry) under the same functional semantics (reset model,
    register file shapes, no traps or interrupts) — see
    {!Trace_replay.replay_safe} and DESIGN.md §14. *)

(* Decoded (in-flight) entry layout, low to high:
   bit  0        branch taken
   bit  1        PSW map-enable at issue
   bits 2..13    sp0 + 1  (12 bits; 0 = no source 0)
   bits 14..25   sp1 + 1
   bits 26..37   dp  + 1
   bits 38..59   pc       (22 bits)
   Physical registers above 4094 or images above 2^22 instructions do
   not fit; {!fits} rejects such configurations up front and the engine
   falls back to direct execution. *)

let reg_bits = 12
let reg_mask = (1 lsl reg_bits) - 1
let pc_bits = 22
let max_pc = (1 lsl pc_bits) - 1
let max_reg = reg_mask - 1

let[@inline] pack ~pc ~sp0 ~sp1 ~dp ~map_on ~taken =
  Bool.to_int taken
  lor (Bool.to_int map_on lsl 1)
  lor ((sp0 + 1) lsl 2)
  lor ((sp1 + 1) lsl (2 + reg_bits))
  lor ((dp + 1) lsl (2 + (2 * reg_bits)))
  lor (pc lsl (2 + (3 * reg_bits)))

let[@inline] taken e = e land 1 <> 0
let[@inline] map_on e = e land 2 <> 0
let[@inline] sp0 e = ((e lsr 2) land reg_mask) - 1
let[@inline] sp1 e = ((e lsr (2 + reg_bits)) land reg_mask) - 1
let[@inline] dp e = ((e lsr (2 + (2 * reg_bits))) land reg_mask) - 1
let[@inline] pc e = e lsr (2 + (3 * reg_bits))

(** Every value recorded in an entry fits the packed layout — checked
    once per recording (the pc is bounded by the code length, resolved
    registers by the physical file sizes), so the per-instruction
    recording path carries no range checks at all. *)
let fits ~code_len ~ireg_total ~freg_total =
  code_len - 1 <= max_pc && ireg_total - 1 <= max_reg
  && freg_total - 1 <= max_reg

(* --- architectural-register tables --------------------------------------- *)

(** Per-pc architectural operands, the compression model's prediction
    for the resolved registers: [-1] where the instruction has no such
    operand, mirroring the recorder's convention.  Derived from the
    same {!Rc_isa.Dins} predecode the replayer runs on. *)
type arch = { a0 : int array; a1 : int array; ad : int array }

let arch_of_dins (pre : Rc_isa.Dins.t array) =
  let n = Array.length pre in
  let a0 = Array.make n (-1)
  and a1 = Array.make n (-1)
  and ad = Array.make n (-1) in
  for i = 0 to n - 1 do
    let d = pre.(i) in
    if d.Rc_isa.Dins.nsrcs > 0 then a0.(i) <- d.Rc_isa.Dins.s0;
    if d.Rc_isa.Dins.nsrcs > 1 then a1.(i) <- d.Rc_isa.Dins.s1;
    ad.(i) <- d.Rc_isa.Dins.d
  done;
  { a0; a1; ad }

let arch_of_arrays ~s0 ~s1 ~d =
  if Array.length s0 <> Array.length s1 || Array.length s0 <> Array.length d
  then invalid_arg "Dtrace.arch_of_arrays: length mismatch";
  { a0 = s0; a1 = s1; ad = d }

(* --- the compact stream -------------------------------------------------- *)

(* Token grammar (DESIGN.md §14):

     RUN      ::= 0x80 lor len                      len in 1..127
     LITERAL  ::= flags varint*                     flags bit 7 = 0

   A RUN token stands for [len] consecutive {e plain} entries:
   pc = prev_pc + 1, taken = false, map_on = previous entry's map_on,
   and each resolved register equals its prediction — the register
   recorded at the {e previous sighting} of the same pc, or the
   architectural field on first sighting.  A LITERAL token carries the
   exceptions in its flag byte — bit 0 taken, bit 1 map_on, bit 2 pc
   is {e not} prev_pc + 1 (a zigzag-varint delta against prev_pc + 1
   follows), bits 3/4/5 a non-zero sp0/sp1/dp delta against the
   prediction follows (zigzag varints, in that order) — and updates
   the per-pc prediction with its resolved registers.  Encoder and
   decoder evolve the prediction tables in lockstep; the decoder
   starts from prev_pc = -1, prev_map = false and a fresh copy of the
   architectural tables. *)

type t = {
  n : int;  (** dynamic instructions recorded *)
  data : Bytes.t;  (** the RUN/LITERAL token stream *)
  out : Bytes.t;  (** emitted output stream, 8 LE bytes per value *)
  checksum : int64;  (** {!Machine.checksum_of_output} of the output *)
}

let[@inline] zigzag v = (v lsl 1) lxor (v asr 62)
let[@inline] unzigzag v = (v lsr 1) lxor (-(v land 1))

let add_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !v)

(* --- recording ----------------------------------------------------------- *)

(** Streaming encoder: entries compress {e as they are recorded}, so
    the builder holds the compressed stream plus the predictor state —
    never an entry array.  The common case (a plain entry extending the
    open run) is a handful of compares and a counter increment, with no
    allocation at all: attaching a recorder costs the executing machine
    a few percent, not a GC-visible buffer.  {!fits} hoisted every
    range check out of {!add}. *)
type builder = {
  b_l0 : int array;  (** per-pc predictions, seeded from the arch tables *)
  b_l1 : int array;
  b_ld : int array;
  b_buf : Buffer.t;  (** the compressed token stream *)
  mutable b_n : int;
  mutable b_prev_pc : int;
  mutable b_prev_map : bool;
  mutable b_run : int;  (** plain entries not yet flushed as RUN tokens *)
  mutable b_ok : bool;
      (** cleared when an unreplayable event (trap, rfe, interrupt)
          occurs; {!finish} then returns [None] *)
}

let builder ?(hint = 4096) arch =
  {
    b_l0 = Array.copy arch.a0;
    b_l1 = Array.copy arch.a1;
    b_ld = Array.copy arch.ad;
    b_buf = Buffer.create (max 64 (hint / 16));
    b_n = 0;
    b_prev_pc = -1;
    b_prev_map = false;
    b_run = 0;
    b_ok = true;
  }

let invalidate b = b.b_ok <- false

let[@inline never] flush_run b =
  while b.b_run > 0 do
    let k = min 127 b.b_run in
    Buffer.add_char b.b_buf (Char.unsafe_chr (0x80 lor k));
    b.b_run <- b.b_run - k
  done

(* The literal path, out of line so the run path stays small enough to
   inline into the execute loop. *)
let[@inline never] add_literal b ~pc:epc ~sp0:e0 ~sp1:e1 ~dp:ed ~map_on:emap
    ~taken:etaken =
  flush_run b;
  let seq = epc = b.b_prev_pc + 1 in
  let d0 = e0 - Array.unsafe_get b.b_l0 epc
  and d1 = e1 - Array.unsafe_get b.b_l1 epc
  and dd = ed - Array.unsafe_get b.b_ld epc in
  let flags =
    Bool.to_int etaken
    lor (Bool.to_int emap lsl 1)
    lor (Bool.to_int (not seq) lsl 2)
    lor (Bool.to_int (d0 <> 0) lsl 3)
    lor (Bool.to_int (d1 <> 0) lsl 4)
    lor (Bool.to_int (dd <> 0) lsl 5)
  in
  Buffer.add_char b.b_buf (Char.unsafe_chr flags);
  if not seq then add_varint b.b_buf (zigzag (epc - (b.b_prev_pc + 1)));
  if d0 <> 0 then begin
    add_varint b.b_buf (zigzag d0);
    Array.unsafe_set b.b_l0 epc e0
  end;
  if d1 <> 0 then begin
    add_varint b.b_buf (zigzag d1);
    Array.unsafe_set b.b_l1 epc e1
  end;
  if dd <> 0 then begin
    add_varint b.b_buf (zigzag dd);
    Array.unsafe_set b.b_ld epc ed
  end;
  b.b_prev_pc <- epc;
  b.b_prev_map <- emap

(* No range checks: whoever attached the recorder established [fits],
   and the machine's pc is bounded by the code length the arch tables
   were built from. *)
let[@inline] add b ~pc:epc ~sp0:e0 ~sp1:e1 ~dp:ed ~map_on:emap ~taken:etaken =
  if b.b_ok then begin
    b.b_n <- b.b_n + 1;
    if
      epc = b.b_prev_pc + 1 && (not etaken) && emap = b.b_prev_map
      && e0 = Array.unsafe_get b.b_l0 epc
      && e1 = Array.unsafe_get b.b_l1 epc
      && ed = Array.unsafe_get b.b_ld epc
    then begin
      b.b_run <- b.b_run + 1;
      b.b_prev_pc <- epc
    end
    else add_literal b ~pc:epc ~sp0:e0 ~sp1:e1 ~dp:ed ~map_on:emap ~taken:etaken
  end

let add_packed b e =
  add b ~pc:(pc e) ~sp0:(sp0 e) ~sp1:(sp1 e) ~dp:(dp e) ~map_on:(map_on e)
    ~taken:(taken e)

(** The finished trace, or [None] when recording hit an unreplayable
    event.  [output]/[checksum] come from the recording run's
    result. *)
let finish b ~output ~checksum =
  if not b.b_ok then None
  else begin
    flush_run b;
    let data = Buffer.to_bytes b.b_buf in
    let out = Bytes.create (8 * List.length output) in
    List.iteri (fun i v -> Bytes.set_int64_le out (8 * i) v) output;
    Some { n = b.b_n; data; out; checksum }
  end

(** Re-encode [len] packed entries from [raw] against [arch] —
    {!sabotage}'s path; recording streams through {!add} instead. *)
let encode_entries arch raw len =
  let b = builder ~hint:len arch in
  for i = 0 to len - 1 do
    add_packed b raw.(i)
  done;
  flush_run b;
  Buffer.to_bytes b.b_buf

let output t =
  let k = Bytes.length t.out / 8 in
  let rec build i acc =
    if i < 0 then acc
    else build (i - 1) (Bytes.get_int64_le t.out (8 * i) :: acc)
  in
  build (k - 1) []

(* Exact heap footprint on a 64-bit runtime: one header word plus
   ceil((len+1)/8) data words per bytes block (the +1 is the padding
   byte encoding the length), the four-field record block, and the
   boxed int64 checksum (header + custom-ops pointer + payload). *)
let bytes_block len = 8 * (1 + ((len + 8) / 8))
let bytes t = bytes_block (Bytes.length t.data) + bytes_block (Bytes.length t.out) + 40 + 24

(* --- serialization ------------------------------------------------------- *)

(* On-disk record layout (the store wraps this in its own header):
     [n : LE64] [checksum : LE64] [data_len : LE64] [out_len : LE64]
     [data bytes] [out bytes]
   Self-contained: the arch table is not part of a trace — it is a
   property of the image, reconstructed from the replayer's own
   predecode at decode time. *)

let to_string t =
  let dlen = Bytes.length t.data and olen = Bytes.length t.out in
  let b = Bytes.create (32 + dlen + olen) in
  Bytes.set_int64_le b 0 (Int64.of_int t.n);
  Bytes.set_int64_le b 8 t.checksum;
  Bytes.set_int64_le b 16 (Int64.of_int dlen);
  Bytes.set_int64_le b 24 (Int64.of_int olen);
  Bytes.blit t.data 0 b 32 dlen;
  Bytes.blit t.out 0 b (32 + dlen) olen;
  Bytes.unsafe_to_string b

let of_string s =
  let len = String.length s in
  if len < 32 then None
  else
    let field i = Int64.to_int (String.get_int64_le s (8 * i)) in
    let n = field 0 and dlen = field 2 and olen = field 3 in
    if
      n < 0 || dlen < 0 || olen < 0 || olen mod 8 <> 0
      || len <> 32 + dlen + olen
    then None
    else
      Some
        {
          n;
          checksum = String.get_int64_le s 8;
          data = Bytes.of_string (String.sub s 32 dlen);
          out = Bytes.of_string (String.sub s (32 + dlen) olen);
        }

(* --- decoding ------------------------------------------------------------ *)

type cursor = {
  c_l0 : int array;  (** per-pc predictions, seeded from the arch tables *)
  c_l1 : int array;
  c_ld : int array;
  c_data : Bytes.t;
  c_n : int;
  mutable c_pos : int;  (** next byte of [c_data] *)
  mutable c_idx : int;  (** entries already produced *)
  mutable c_prev_pc : int;
  mutable c_prev_map : bool;
  mutable c_run : int;  (** plain entries left in the open RUN token *)
}

let cursor arch t =
  {
    c_l0 = Array.copy arch.a0;
    c_l1 = Array.copy arch.a1;
    c_ld = Array.copy arch.ad;
    c_data = t.data;
    c_n = t.n;
    c_pos = 0;
    c_idx = 0;
    c_prev_pc = -1;
    c_prev_map = false;
    c_run = 0;
  }

let corrupt () = invalid_arg "Dtrace: corrupt trace stream"

let[@inline] read_byte cur =
  if cur.c_pos >= Bytes.length cur.c_data then corrupt ();
  let b = Char.code (Bytes.unsafe_get cur.c_data cur.c_pos) in
  cur.c_pos <- cur.c_pos + 1;
  b

let read_varint cur =
  let v = ref 0 and shift = ref 0 in
  let b = ref (read_byte cur) in
  while !b land 0x80 <> 0 do
    v := !v lor ((!b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if !shift > 62 then corrupt ();
    b := read_byte cur
  done;
  !v lor (!b lsl !shift)

let[@inline] plain cur =
  let epc = cur.c_prev_pc + 1 in
  if epc < 0 || epc >= Array.length cur.c_l0 then corrupt ();
  cur.c_prev_pc <- epc;
  pack ~pc:epc ~sp0:cur.c_l0.(epc) ~sp1:cur.c_l1.(epc) ~dp:cur.c_ld.(epc)
    ~map_on:cur.c_prev_map ~taken:false

(* Decode the body of a LITERAL token whose flag byte [tok] was already
   consumed: read the optional pc delta and register deltas, update the
   prediction tables and return the packed entry. *)
let decode_literal cur tok =
  let epc =
    if tok land 4 <> 0 then cur.c_prev_pc + 1 + unzigzag (read_varint cur)
    else cur.c_prev_pc + 1
  in
  if epc < 0 || epc >= Array.length cur.c_l0 then corrupt ();
  let esp0 =
    cur.c_l0.(epc) + (if tok land 8 <> 0 then unzigzag (read_varint cur) else 0)
  and esp1 =
    cur.c_l1.(epc)
    + (if tok land 16 <> 0 then unzigzag (read_varint cur) else 0)
  and edp =
    cur.c_ld.(epc)
    + (if tok land 32 <> 0 then unzigzag (read_varint cur) else 0)
  in
  if
    esp0 < -1 || esp0 > max_reg || esp1 < -1 || esp1 > max_reg || edp < -1
    || edp > max_reg
  then corrupt ();
  cur.c_l0.(epc) <- esp0;
  cur.c_l1.(epc) <- esp1;
  cur.c_ld.(epc) <- edp;
  cur.c_prev_pc <- epc;
  cur.c_prev_map <- tok land 2 <> 0;
  pack ~pc:epc ~sp0:esp0 ~sp1:esp1 ~dp:edp
    ~map_on:(tok land 2 <> 0)
    ~taken:(tok land 1 <> 0)

(** The next entry, in the packed-[int] form of the accessors above.
    @raise Invalid_argument past entry [n - 1] or on a corrupt
    stream. *)
let next cur =
  if cur.c_idx >= cur.c_n then invalid_arg "Dtrace.next: trace exhausted";
  cur.c_idx <- cur.c_idx + 1;
  if cur.c_run > 0 then begin
    cur.c_run <- cur.c_run - 1;
    plain cur
  end
  else begin
    let tok = read_byte cur in
    if tok land 0x80 <> 0 then begin
      cur.c_run <- (tok land 0x7f) - 1;
      plain cur
    end
    else decode_literal cur tok
  end

(* --- superblock (block-level) decoding ----------------------------------- *)

(* The RUN tokens already delimit the stream's straight-line
   superblocks: a maximal sequence of RUN tokens is one dynamic visit
   to a straight-line segment whose entries are all {e plain} — pc
   consecutive, not taken, map bit constant, registers equal to the
   prediction tables.  Because plain entries never touch the tables,
   such a visit is fully determined by (start pc, length, map bit,
   prediction-table version), where the version counts the literal
   tokens that carried register deltas — the only table mutations.
   Interning that identity gives every repeated visit to a hot loop
   body the {e same} small [seg_id] and the same cached entry array:
   the second and later visits decode nothing at all, and the replay
   engine can key timing memos by [seg_id].  See DESIGN.md §18. *)

type seg = {
  seg_id : int;  (** dense intern index, first sighting order *)
  seg_start : int;  (** pc of the first entry *)
  seg_len : int;  (** dynamic entries in the visit (>= 1) *)
  seg_map : bool;  (** the map-enable bit of every entry *)
  seg_entries : int array;  (** the packed entries, decoded once *)
}

type block = Lit of int | Run of seg

type bcursor = {
  b_cur : cursor;
  mutable b_version : int;
      (** bumped whenever a literal token rewrites a prediction entry
          (flag bits 3/4/5) — part of every segment identity *)
  b_ids : (int * int * int, seg) Hashtbl.t;
  mutable b_nsegs : int;
}

let bcursor arch t =
  {
    b_cur = cursor arch t;
    b_version = 0;
    b_ids = Hashtbl.create 64;
    b_nsegs = 0;
  }

let bsegs bc = bc.b_nsegs
let bidx bc = bc.b_cur.c_idx

(* A whole superblock visit: [len0] plain entries already owed, plus
   every directly following RUN token, as one [Run] block. *)
let run_block bc len0 =
  let cur = bc.b_cur in
  let len = ref len0 in
  let data_len = Bytes.length cur.c_data in
  let continue = ref true in
  while
    !continue && cur.c_pos < data_len
    && Char.code (Bytes.unsafe_get cur.c_data cur.c_pos) land 0x80 <> 0
  do
    let k = Char.code (Bytes.unsafe_get cur.c_data cur.c_pos) land 0x7f in
    if k = 0 then corrupt ();
    (* never consume entries past [n]: a trailing over-long RUN token
       is ignored by {!next} too *)
    if cur.c_idx + !len + k > cur.c_n then continue := false
    else begin
      cur.c_pos <- cur.c_pos + 1;
      len := !len + k
    end
  done;
  let len = min !len (cur.c_n - cur.c_idx) in
  if len <= 0 then corrupt ();
  let start = cur.c_prev_pc + 1 in
  if start < 0 || start + len - 1 >= Array.length cur.c_l0 then corrupt ();
  let key = (start, len, (bc.b_version lsl 1) lor Bool.to_int cur.c_prev_map) in
  let seg =
    match Hashtbl.find_opt bc.b_ids key with
    | Some s -> s
    | None ->
        let map = cur.c_prev_map in
        let entries =
          (* plain entries never rewrite the tables, so one read per
             pc suffices for the whole segment *)
          Array.init len (fun i ->
              let pc = start + i in
              pack ~pc ~sp0:cur.c_l0.(pc) ~sp1:cur.c_l1.(pc)
                ~dp:cur.c_ld.(pc) ~map_on:map ~taken:false)
        in
        let s =
          {
            seg_id = bc.b_nsegs;
            seg_start = start;
            seg_len = len;
            seg_map = map;
            seg_entries = entries;
          }
        in
        bc.b_nsegs <- bc.b_nsegs + 1;
        Hashtbl.replace bc.b_ids key s;
        s
  in
  cur.c_prev_pc <- start + len - 1;
  cur.c_idx <- cur.c_idx + len;
  Run seg

(** The next block: one literal entry, or one whole superblock visit
    (a maximal sequence of RUN tokens, coalesced).  Consumes
    [seg_len] entries at once in the [Run] case; interleaving with
    {!next} on the same underlying trace is not supported.
    @raise Invalid_argument past entry [n - 1] or on a corrupt
    stream. *)
let next_block bc =
  let cur = bc.b_cur in
  if cur.c_idx >= cur.c_n then invalid_arg "Dtrace.next_block: trace exhausted";
  if cur.c_run > 0 then begin
    let owed = cur.c_run in
    cur.c_run <- 0;
    run_block bc owed
  end
  else begin
    let tok = read_byte cur in
    if tok land 0x80 <> 0 then run_block bc (tok land 0x7f)
    else begin
      if tok land 0x38 <> 0 then bc.b_version <- bc.b_version + 1;
      cur.c_idx <- cur.c_idx + 1;
      Lit (decode_literal cur tok)
    end
  end
let entries arch t =
  let cur = cursor arch t in
  let es = Array.make t.n 0 in
  for i = 0 to t.n - 1 do
    es.(i) <- next cur
  done;
  es

(** A copy with entry [i] replaced — test hook for planting a
    divergence the equivalence check must catch.  [entry] must decode
    against the same [arch] (its pc in range).
    @raise Invalid_argument when [i] is out of range. *)
let sabotage arch t i entry =
  if i < 0 || i >= t.n then invalid_arg "Dtrace.sabotage: index out of range";
  let raw = entries arch t in
  raw.(i) <- entry;
  { t with data = encode_entries arch raw t.n }
