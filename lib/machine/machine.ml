(** The execution-driven simulator: functional execution of architectural
    form machine code, with cycle-accurate in-order superscalar timing.

    Each cycle, instructions issue in program order until the issue rate
    is reached or an instruction cannot issue because:

    - a source or destination physical register is still being produced
      (CRAY-1-style interlock; results become ready [latency] cycles
      after issue);
    - no memory channel is free this cycle;
    - with 1-cycle connect latency, the instruction's mapping-table
      entries were updated by a connect issued this same cycle (the
      zero-cycle implementation forwards through dispatch instead,
      section 2.4, and never stalls for this reason);
    - a taken control transfer ends the issue group; a mispredicted
      conditional branch additionally pays the front-end redirect
      penalty (one more cycle with the extra RC pipeline stage).

    Register accesses go through the register mapping table whenever the
    PSW map-enable flag is set; [jsr]/[rts] reset the table to home
    (section 4.1); traps clear map-enable so handlers address core
    registers directly (section 4.3). *)

open Rc_isa
open Rc_core

exception Simulation_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Simulation_error s)) fmt

type stats = {
  mutable cycles : int;
  mutable issued : int;  (** dynamic instructions, connects included *)
  mutable connects : int;
  mutable mem_ops : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable data_stalls : int;  (** group-ending operand-not-ready events *)
  mutable map_stalls : int;  (** 1-cycle-connect same-group conflicts *)
  mutable channel_stalls : int;
}

type t = {
  cfg : Config.t;
  image : Image.t;
  iregs : int64 array;
  fregs : float array;
  iready : int array;
  fready : int array;
  imap : Map_table.t;
  fmap : Map_table.t;
  psw : Psw.t;
  mem : Bytes.t;
  mutable pc : int;
  mutable halted : bool;
  mutable out_rev : int64 list;
  stats : stats;
  (* trap state *)
  mutable epc : int;
  mutable saved_psw : Psw.t option;
  mutable pending_interrupt : bool;
}

let create (cfg : Config.t) (image : Image.t) =
  let mem = Bytes.make image.Image.mem_size '\000' in
  List.iter (fun (addr, init) -> Image.write_init mem addr init) image.Image.data_image;
  let t =
    {
      cfg;
      image;
      iregs = Array.make cfg.ifile.Reg.total 0L;
      fregs = Array.make cfg.ffile.Reg.total 0.0;
      iready = Array.make cfg.ifile.Reg.total 0;
      fready = Array.make cfg.ffile.Reg.total 0;
      imap = Map_table.create ~model:cfg.model cfg.ifile;
      fmap = Map_table.create ~model:cfg.model cfg.ffile;
      psw = Psw.create ();
      mem;
      pc = image.Image.entry;
      halted = false;
      out_rev = [];
      stats =
        {
          cycles = 0;
          issued = 0;
          connects = 0;
          mem_ops = 0;
          branches = 0;
          mispredicts = 0;
          data_stalls = 0;
          map_stalls = 0;
          channel_stalls = 0;
        };
      epc = 0;
      saved_psw = None;
      pending_interrupt = false;
    }
  in
  t.iregs.(Reg.sp) <- Int64.of_int image.Image.stack_top;
  t

let context_view t =
  {
    Context.iregs = t.iregs;
    fregs = t.fregs;
    imap = t.imap;
    fmap = t.fmap;
    psw = t.psw;
  }

(* --- register access through the mapping table ------------------------ *)

let read_phys t (o : Insn.operand) =
  if not t.psw.Psw.map_enable then o.Insn.r
  else
    match o.Insn.cls with
    | Reg.Int -> Map_table.read t.imap o.Insn.r
    | Reg.Float -> Map_table.read t.fmap o.Insn.r

let write_phys t (o : Insn.operand) =
  if not t.psw.Psw.map_enable then o.Insn.r
  else
    match o.Insn.cls with
    | Reg.Int -> Map_table.write t.imap o.Insn.r
    | Reg.Float -> Map_table.write t.fmap o.Insn.r

let note_write t (o : Insn.operand) =
  if t.psw.Psw.map_enable then
    match o.Insn.cls with
    | Reg.Int -> Map_table.note_write t.imap o.Insn.r
    | Reg.Float -> Map_table.note_write t.fmap o.Insn.r

let get_i t p = if p = Reg.zero then 0L else t.iregs.(p)
let get_f t p = t.fregs.(p)

let set_i t p v lat_done =
  if p <> Reg.zero then begin
    t.iregs.(p) <- v;
    t.iready.(p) <- lat_done
  end

let set_f t p v lat_done =
  t.fregs.(p) <- v;
  t.fready.(p) <- lat_done

(* --- memory ------------------------------------------------------------ *)

let check_addr t a width =
  if a < 0 || a + width > Bytes.length t.mem then
    fail "bad address %d at pc %d" a t.pc

let load_mem t width a =
  match width with
  | Opcode.W8 ->
      check_addr t a 8;
      Bytes.get_int64_le t.mem a
  | Opcode.W1 ->
      check_addr t a 1;
      Int64.of_int (Char.code (Bytes.get t.mem a))

let store_mem t width a v =
  match width with
  | Opcode.W8 ->
      check_addr t a 8;
      Bytes.set_int64_le t.mem a v
  | Opcode.W1 ->
      check_addr t a 1;
      Bytes.set t.mem a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))

(* --- trap entry --------------------------------------------------------- *)

let handler_addr t =
  match t.cfg.Config.trap_handler with
  | Some name -> Image.function_address t.image name
  | None -> fail "trap with no handler configured"

let enter_trap t ~return_to =
  t.saved_psw <- Some (Psw.enter_trap t.psw);
  t.epc <- return_to;
  t.pc <- handler_addr t

(** Request an external interrupt; taken at the next cycle boundary. *)
let inject_interrupt t = t.pending_interrupt <- true

(* --- one cycle ----------------------------------------------------------- *)

type issue_blocker = Data | Map | Channel

exception Group_end of issue_blocker option

let run_cycle t =
  let cycle = t.stats.cycles in
  if t.pending_interrupt then begin
    t.pending_interrupt <- false;
    enter_trap t ~return_to:t.pc
  end;
  let slots = ref t.cfg.Config.issue in
  (* Connects execute in the dispatch logic, not in a function unit
     (section 2.4): they have their own per-cycle dispatch budget
     instead of competing for issue slots. *)
  let connect_slots =
    ref
      (match t.cfg.Config.connect_dispatch with
      | `Shared -> 0
      | `Extra n -> n)
  in
  let shared_connects = t.cfg.Config.connect_dispatch = `Shared in
  let mem_free = ref t.cfg.Config.mem_channels in
  (* Mapping-table entries touched by connects issued this cycle, for the
     1-cycle connect latency model. *)
  let pending_maps : (Reg.cls * Insn.map_kind * int) list ref = ref [] in
  let src_blocked (i : Insn.t) =
    Array.exists
      (fun (o : Insn.operand) ->
        List.mem (o.Insn.cls, Insn.Read, o.Insn.r) !pending_maps)
      i.Insn.srcs
    ||
    match i.Insn.dst with
    | Some o -> List.mem (o.Insn.cls, Insn.Write, o.Insn.r) !pending_maps
    | None -> false
  in
  let ready (o : Insn.operand) p =
    match o.Insn.cls with
    | Reg.Int -> t.iready.(p) <= cycle
    | Reg.Float -> t.fready.(p) <= cycle
  in
  (try
     while (!slots > 0 || !connect_slots > 0) && not t.halted do
       if t.pc < 0 || t.pc >= Array.length t.image.Image.code then
         fail "pc %d out of code" t.pc;
       let i = t.image.Image.code.(t.pc) in
       (* --- can it issue this cycle? --- *)
       if
         t.cfg.Config.lat.Latency.connect > 0
         && t.psw.Psw.map_enable && src_blocked i
       then raise (Group_end (Some Map));
       if Insn.is_mem i && !mem_free <= 0 then raise (Group_end (Some Channel));
       (if Insn.is_connect i && not shared_connects then begin
          if !connect_slots <= 0 then raise (Group_end (Some Map))
        end
        else if !slots <= 0 then raise (Group_end None));
       let src_phys = Array.map (fun o -> read_phys t o) i.Insn.srcs in
       let ok_srcs =
         let ok = ref true in
         Array.iteri
           (fun k o -> if not (ready o src_phys.(k)) then ok := false)
           i.Insn.srcs;
         !ok
       in
       let dst_phys = Option.map (fun o -> write_phys t o) i.Insn.dst in
       let ok_dst =
         match (i.Insn.dst, dst_phys) with
         | Some o, Some p -> ready o p
         | _ -> true
       in
       if not (ok_srcs && ok_dst) then raise (Group_end (Some Data));
       (* --- issue --- *)
       if Insn.is_connect i && not shared_connects then decr connect_slots
       else decr slots;
       t.stats.issued <- t.stats.issued + 1;
       if Insn.is_mem i then begin
         decr mem_free;
         t.stats.mem_ops <- t.stats.mem_ops + 1
       end;
       let lat = Latency.of_opcode t.cfg.Config.lat i.Insn.op in
       let done_at = cycle + max 1 lat in
       let iv k = get_i t src_phys.(k) in
       let fv k = get_f t src_phys.(k) in
       let set_int v =
         match dst_phys with
         | Some p ->
             set_i t p v done_at;
             note_write t (Option.get i.Insn.dst)
         | None -> fail "missing destination at pc %d" t.pc
       in
       let set_float v =
         match dst_phys with
         | Some p ->
             set_f t p v done_at;
             note_write t (Option.get i.Insn.dst)
         | None -> fail "missing destination at pc %d" t.pc
       in
       let next_pc = ref (t.pc + 1) in
       let end_group = ref false in
       (match i.Insn.op with
       | Opcode.Alu a -> set_int (Opcode.eval_alu a (iv 0) (iv 1))
       | Opcode.Alui a -> set_int (Opcode.eval_alu a (iv 0) i.Insn.imm)
       | Opcode.Li -> set_int i.Insn.imm
       | Opcode.Move -> set_int (iv 0)
       | Opcode.Fli -> set_float i.Insn.fimm
       | Opcode.Fmove -> set_float (fv 0)
       | Opcode.Fpu f ->
           let b = if Array.length i.Insn.srcs > 1 then fv 1 else 0.0 in
           set_float (Opcode.eval_fpu f (fv 0) b)
       | Opcode.Itof -> set_float (Int64.to_float (iv 0))
       | Opcode.Ftoi -> set_int (Int64.of_float (fv 0))
       | Opcode.Fcmp c ->
           set_int (if Opcode.eval_fcond c (fv 0) (fv 1) then 1L else 0L)
       | Opcode.Ld w ->
           let a = Int64.to_int (iv 0) + Int64.to_int i.Insn.imm in
           set_int (load_mem t w a)
       | Opcode.St w ->
           let a = Int64.to_int (iv 1) + Int64.to_int i.Insn.imm in
           store_mem t w a (iv 0)
       | Opcode.Fld ->
           let a = Int64.to_int (iv 0) + Int64.to_int i.Insn.imm in
           set_float (Int64.float_of_bits (load_mem t Opcode.W8 a))
       | Opcode.Fst ->
           let a = Int64.to_int (iv 1) + Int64.to_int i.Insn.imm in
           store_mem t Opcode.W8 a (Int64.bits_of_float (fv 0))
       (* The front end follows correctly predicted control transfers
          within an issue group ("all combinations of instruction
          patterns are allowed to be executed in parallel", section
          5.2); a misprediction redirects fetch and pays the front-end
          penalty. *)
       | Opcode.Br c ->
           t.stats.branches <- t.stats.branches + 1;
           let taken = Opcode.eval_cond c (iv 0) (iv 1) in
           if taken then next_pc := i.Insn.target;
           if taken <> i.Insn.hint then begin
             t.stats.mispredicts <- t.stats.mispredicts + 1;
             t.stats.cycles <-
               t.stats.cycles + Config.mispredict_penalty t.cfg;
             end_group := true
           end
       | Opcode.Jmp ->
           t.stats.branches <- t.stats.branches + 1;
           next_pc := i.Insn.target
       | Opcode.Jsr ->
           t.stats.branches <- t.stats.branches + 1;
           (* Reset the map, then write RA to its home location
              (section 4.1). *)
           Map_table.reset t.imap;
           Map_table.reset t.fmap;
           set_i t Reg.ra (Int64.of_int (t.pc + 1)) done_at;
           next_pc := i.Insn.target
       | Opcode.Rts ->
           t.stats.branches <- t.stats.branches + 1;
           let ra = Int64.to_int (iv 0) in
           Map_table.reset t.imap;
           Map_table.reset t.fmap;
           next_pc := ra
       | Opcode.Connect ->
           t.stats.connects <- t.stats.connects + 1;
           if t.psw.Psw.map_enable then
             Array.iter
               (fun (c : Insn.connect) ->
                 (match c.Insn.ccls with
                 | Reg.Int -> Map_table.apply t.imap c
                 | Reg.Float -> Map_table.apply t.fmap c);
                 if t.cfg.Config.lat.Latency.connect > 0 then
                   pending_maps :=
                     (c.Insn.ccls, c.Insn.cmap, c.Insn.ri) :: !pending_maps)
               i.Insn.connects
       | Opcode.Emit -> t.out_rev <- iv 0 :: t.out_rev
       | Opcode.Femit -> t.out_rev <- Int64.bits_of_float (fv 0) :: t.out_rev
       | Opcode.Trap ->
           enter_trap t ~return_to:(t.pc + 1);
           next_pc := t.pc;
           end_group := true
       | Opcode.Rfe ->
           (match t.saved_psw with
           | Some saved ->
               Psw.return_from_exception t.psw ~saved;
               t.saved_psw <- None
           | None -> fail "rfe without saved PSW");
           next_pc := t.epc;
           end_group := true
       | Opcode.Mapen ->
           t.psw.Psw.map_enable <- not (Int64.equal i.Insn.imm 0L)
       (* Privileged map access (section 4.3): reads and writes the
          integer mapping table directly, regardless of the PSW
          map-enable flag, so handlers can save and restore connection
          state. *)
       | Opcode.Mfmap kind ->
           let idx = Int64.to_int i.Insn.imm in
           let v =
             match kind with
             | Opcode.Read -> Map_table.read t.imap idx
             | Opcode.Write -> Map_table.write t.imap idx
           in
           (match dst_phys with
           | Some p -> set_i t p (Int64.of_int v) done_at
           | None -> fail "mfmap needs a destination at pc %d" t.pc)
       | Opcode.Mtmap kind -> (
           let idx = Int64.to_int i.Insn.imm in
           let v = Int64.to_int (iv 0) in
           match kind with
           | Opcode.Read -> Map_table.connect_use t.imap ~ri:idx ~rp:v
           | Opcode.Write -> Map_table.connect_def t.imap ~ri:idx ~rp:v)
       | Opcode.Halt ->
           t.halted <- true;
           end_group := true
       | Opcode.Nop -> ());
       (match i.Insn.op with
       | Opcode.Trap -> () (* pc already set by enter_trap *)
       | _ -> t.pc <- !next_pc);
       if !end_group then raise (Group_end None)
     done
   with Group_end reason ->
     (match reason with
     | Some Data -> t.stats.data_stalls <- t.stats.data_stalls + 1
     | Some Map -> t.stats.map_stalls <- t.stats.map_stalls + 1
     | Some Channel -> t.stats.channel_stalls <- t.stats.channel_stalls + 1
     | None -> ()));
  t.stats.cycles <- t.stats.cycles + 1

type result = {
  cycles : int;
  issued : int;
  connects : int;
  mem_ops : int;
  branches : int;
  mispredicts : int;
  data_stalls : int;
  map_stalls : int;
  channel_stalls : int;
  output : int64 list;
  checksum : int64;
}

let checksum_of_output output =
  List.fold_left
    (fun acc v -> Int64.add (Int64.mul acc 1000003L) v)
    0x9E3779B9L output

let finish t =
  let output = List.rev t.out_rev in
  {
    cycles = t.stats.cycles;
    issued = t.stats.issued;
    connects = t.stats.connects;
    mem_ops = t.stats.mem_ops;
    branches = t.stats.branches;
    mispredicts = t.stats.mispredicts;
    data_stalls = t.stats.data_stalls;
    map_stalls = t.stats.map_stalls;
    channel_stalls = t.stats.channel_stalls;
    output;
    checksum = checksum_of_output output;
  }

let run_machine t =
  while (not t.halted) && t.stats.cycles < t.cfg.Config.fuel do
    run_cycle t
  done;
  if not t.halted then fail "out of fuel after %d cycles" t.stats.cycles;
  finish t

(** Assemble-free entry point: simulate an image under a configuration. *)
let run cfg image = run_machine (create cfg image)
