(** The execution-driven simulator: functional execution of architectural
    form machine code, with cycle-accurate in-order superscalar timing.

    Each cycle, instructions issue in program order until the issue rate
    is reached or an instruction cannot issue because:

    - a source or destination physical register is still being produced
      (CRAY-1-style interlock; results become ready [latency] cycles
      after issue);
    - no memory channel is free this cycle;
    - with 1-cycle connect latency, the instruction's mapping-table
      entries were updated by a connect issued this same cycle (the
      zero-cycle implementation forwards through dispatch instead,
      section 2.4, and never stalls for this reason);
    - a taken control transfer ends the issue group; a mispredicted
      conditional branch additionally pays the front-end redirect
      penalty (one more cycle with the extra RC pipeline stage).

    Register accesses go through the register mapping table whenever the
    PSW map-enable flag is set; [jsr]/[rts] reset the table to home
    (section 4.1); traps clear map-enable so handlers address core
    registers directly (section 4.3). *)

open Rc_isa
open Rc_core

exception Simulation_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Simulation_error s)) fmt

type stats = {
  mutable cycles : int;
  mutable issued : int;  (** dynamic instructions, connects included *)
  mutable connects : int;
  mutable extra_connects : int;
      (** connects dispatched through the extra connect budget — they do
          not consume regular issue slots (section 2.4) *)
  mutable mem_ops : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable data_stalls : int;  (** group-ending operand-not-ready events *)
  mutable map_stalls : int;  (** 1-cycle-connect same-group conflicts *)
  mutable channel_stalls : int;
  (* Slot-level stall attribution: every issue slot a cycle leaves
     unused is charged to exactly one reason, maintaining
     [cycles * issue = (issued - extra_connects) + sum of lost_*]. *)
  mutable lost_data : int;  (** operand interlock *)
  mutable lost_map : int;  (** mapping-table conflict / connect budget *)
  mutable lost_channel : int;  (** memory channel busy *)
  mutable lost_branch : int;  (** control redirect (mispredict, trap, rfe) *)
  mutable lost_fetch : int;  (** fetch exhausted (halt) *)
}

(** Per-cycle observation delivered to an attached observer: the slots
    issued and lost during one {!run_cycle} (a mispredicted branch's
    redirect bubbles are folded into the sample of the cycle that issued
    it). *)
type cycle_sample = {
  s_cycle : int;  (** index of the first cycle covered by the sample *)
  s_cycles : int;  (** cycles covered: 1 + any redirect bubbles *)
  s_pc : int;  (** pc at the start of the cycle *)
  s_issued : int;  (** instructions issued, connects included *)
  s_connects : int;
  s_lost_data : int;
  s_lost_map : int;
  s_lost_channel : int;
  s_lost_branch : int;
  s_lost_fetch : int;
}

type t = {
  cfg : Config.t;
  image : Image.t;
  pre : Dins.t array;
      (** [image.code] predecoded once under [cfg.lat] (see {!Rc_isa.Dins}) *)
  iregs : int64 array;
  fregs : float array;
  iready : int array;
  fready : int array;
  imap : Map_table.t;
  fmap : Map_table.t;
  psw : Psw.t;
  mem : Bytes.t;
  mutable pc : int;
  mutable halted : bool;
  (* The output stream, a growable buffer in emission order (an [Emit]
     appends at [out_len]; no final reversal). *)
  mutable out : int64 array;
  mutable out_len : int;
  stats : stats;
  (* trap state *)
  mutable epc : int;
  mutable saved_psw : Psw.t option;
  mutable pending_interrupt : bool;
  mutable observer : (cycle_sample -> unit) option;
      (** when set, called once per {!run_cycle} with that cycle's slot
          accounting; [None] costs one untaken branch per cycle *)
  mutable recorder : Dtrace.builder option;
      (** when set, every issued instruction appends its resolved
          operands and branch outcome; [None] costs one untaken branch
          per issued instruction *)
  mutable rec_taken : bool;
      (** outcome of the branch currently being issued, for the
          recorder *)
}

let create (cfg : Config.t) (image : Image.t) =
  let mem = Bytes.make image.Image.mem_size '\000' in
  List.iter (fun (addr, init) -> Image.write_init mem addr init) image.Image.data_image;
  let t =
    {
      cfg;
      image;
      pre = Dins.decode ~lat:cfg.Config.lat image.Image.code;
      iregs = Array.make cfg.ifile.Reg.total 0L;
      fregs = Array.make cfg.ffile.Reg.total 0.0;
      iready = Array.make cfg.ifile.Reg.total 0;
      fready = Array.make cfg.ffile.Reg.total 0;
      imap = Map_table.create ~model:cfg.model cfg.ifile;
      fmap = Map_table.create ~model:cfg.model cfg.ffile;
      psw = Psw.create ();
      mem;
      pc = image.Image.entry;
      halted = false;
      out = [||];
      out_len = 0;
      stats =
        {
          cycles = 0;
          issued = 0;
          connects = 0;
          extra_connects = 0;
          mem_ops = 0;
          branches = 0;
          mispredicts = 0;
          data_stalls = 0;
          map_stalls = 0;
          channel_stalls = 0;
          lost_data = 0;
          lost_map = 0;
          lost_channel = 0;
          lost_branch = 0;
          lost_fetch = 0;
        };
      epc = 0;
      saved_psw = None;
      pending_interrupt = false;
      observer = None;
      recorder = None;
      rec_taken = false;
    }
  in
  t.iregs.(Reg.sp) <- Int64.of_int image.Image.stack_top;
  t

let context_view t =
  {
    Context.iregs = t.iregs;
    fregs = t.fregs;
    imap = t.imap;
    fmap = t.fmap;
    psw = t.psw;
  }

(* --- register access through the mapping table ------------------------ *)

(* [map_on] is the PSW map-enable flag read once per instruction: when
   it is clear the architectural index IS the physical register and the
   [Map_table] indirection is skipped entirely (the hoisted fast path). *)

let[@inline] resolve_read t ~map_on (cls : Reg.cls) r =
  if not map_on then r
  else
    match cls with
    | Reg.Int -> Map_table.read t.imap r
    | Reg.Float -> Map_table.read t.fmap r

let[@inline] resolve_write t ~map_on (cls : Reg.cls) r =
  if not map_on then r
  else
    match cls with
    | Reg.Int -> Map_table.write t.imap r
    | Reg.Float -> Map_table.write t.fmap r

(* Only called when the map is enabled. *)
let[@inline] note_write t (cls : Reg.cls) r =
  match cls with
  | Reg.Int -> Map_table.note_write t.imap r
  | Reg.Float -> Map_table.note_write t.fmap r

let get_i t p = if p = Reg.zero then 0L else t.iregs.(p)
let get_f t p = t.fregs.(p)

let set_i t p v lat_done =
  if p <> Reg.zero then begin
    t.iregs.(p) <- v;
    t.iready.(p) <- lat_done
  end

let set_f t p v lat_done =
  t.fregs.(p) <- v;
  t.fready.(p) <- lat_done

(* --- output stream ----------------------------------------------------- *)

let[@inline never] grow_out t =
  let cap = max 64 (2 * Array.length t.out) in
  let out = Array.make cap 0L in
  Array.blit t.out 0 out 0 t.out_len;
  t.out <- out

let[@inline] emit t v =
  if t.out_len = Array.length t.out then grow_out t;
  t.out.(t.out_len) <- v;
  t.out_len <- t.out_len + 1

(** The emitted stream so far, in emission order. *)
let output_list t = Array.to_list (Array.sub t.out 0 t.out_len)

(* --- memory ------------------------------------------------------------ *)

let check_addr t a width =
  if a < 0 || a + width > Bytes.length t.mem then
    fail "bad address %d at pc %d" a t.pc

let load_mem t width a =
  match width with
  | Opcode.W8 ->
      check_addr t a 8;
      Bytes.get_int64_le t.mem a
  | Opcode.W1 ->
      check_addr t a 1;
      Int64.of_int (Char.code (Bytes.get t.mem a))

let store_mem t width a v =
  match width with
  | Opcode.W8 ->
      check_addr t a 8;
      Bytes.set_int64_le t.mem a v
  | Opcode.W1 ->
      check_addr t a 1;
      Bytes.set t.mem a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))

(* --- trap entry --------------------------------------------------------- *)

let handler_addr t =
  match t.cfg.Config.trap_handler with
  | Some name -> Image.function_address t.image name
  | None -> fail "trap with no handler configured"

let enter_trap t ~return_to =
  (* Trap entry changes control flow in a way the pure timing replayer
     does not model; a recording that sees one is not replayable. *)
  (match t.recorder with Some b -> Dtrace.invalidate b | None -> ());
  t.saved_psw <- Some (Psw.enter_trap t.psw);
  t.epc <- return_to;
  t.pc <- handler_addr t

(** Request an external interrupt; taken at the next cycle boundary. *)
let inject_interrupt t =
  (match t.recorder with Some b -> Dtrace.invalidate b | None -> ());
  t.pending_interrupt <- true

(** Attach (or clear) the per-cycle observer. *)
let set_observer t obs = t.observer <- obs

(** Attach (or clear) the dynamic-trace recorder. *)
let set_recorder t r = t.recorder <- r

(* --- one cycle ----------------------------------------------------------- *)

(** Why an issue group ended with slots to spare: the three structural
    blockers plus the two control reasons used only for slot
    attribution. *)
type issue_blocker = Data | Map | Channel | Redirect | Fetch

exception Group_end of issue_blocker option

(* Mapping-table entries touched by connects issued this cycle, for the
   1-cycle connect latency model.  A hand-written scan instead of
   [List.mem] so the (rare) check allocates no comparison tuple. *)
let rec pending_mem cls (kind : Insn.map_kind) r = function
  | [] -> false
  | (c, k, i) :: rest ->
      (Reg.equal_cls c cls && k = kind && i = r) || pending_mem cls kind r rest

let src_blocked pending (d : Dins.t) =
  (d.Dins.nsrcs > 0 && pending_mem d.Dins.s0c Insn.Read d.Dins.s0 pending)
  || (d.Dins.nsrcs > 1 && pending_mem d.Dins.s1c Insn.Read d.Dins.s1 pending)
  || (d.Dins.d >= 0 && pending_mem d.Dins.dc Insn.Write d.Dins.d pending)

let[@inline] reg_ready t cycle (cls : Reg.cls) p =
  match cls with
  | Reg.Int -> t.iready.(p) <= cycle
  | Reg.Float -> t.fready.(p) <= cycle

(* Destination writes of the execute arms.  [dp] is the resolved
   physical destination, [-1] when the instruction has none. *)

let set_int t ~map_on (d : Dins.t) dp v done_at =
  if dp < 0 then fail "missing destination at pc %d" t.pc;
  set_i t dp v done_at;
  if map_on then note_write t d.Dins.dc d.Dins.d

let set_float t ~map_on (d : Dins.t) dp v done_at =
  if dp < 0 then fail "missing destination at pc %d" t.pc;
  set_f t dp v done_at;
  if map_on then note_write t d.Dins.dc d.Dins.d

let run_cycle_raw t =
  let cycle = t.stats.cycles in
  if t.pending_interrupt then begin
    t.pending_interrupt <- false;
    enter_trap t ~return_to:t.pc
  end;
  let slots = ref t.cfg.Config.issue in
  (* Connects execute in the dispatch logic, not in a function unit
     (section 2.4): they have their own per-cycle dispatch budget
     instead of competing for issue slots. *)
  let connect_slots =
    ref
      (match t.cfg.Config.connect_dispatch with
      | `Shared -> 0
      | `Extra n -> n)
  in
  let shared_connects = t.cfg.Config.connect_dispatch = `Shared in
  let connect_lat = t.cfg.Config.lat.Latency.connect in
  let mem_free = ref t.cfg.Config.mem_channels in
  let pending_maps : (Reg.cls * Insn.map_kind * int) list ref = ref [] in
  let code_len = Array.length t.pre in
  let next_pc = ref 0 in
  let end_group = ref false in
  (* Why the group ended when [end_group] is set by an execute arm, and
     why it ended when a blocker raised — the unused slots of this cycle
     are charged to this reason. *)
  let end_cause = ref None in
  let blocked = ref None in
  (try
     while (!slots > 0 || !connect_slots > 0) && not t.halted do
       if t.pc < 0 || t.pc >= code_len then fail "pc %d out of code" t.pc;
       let d = t.pre.(t.pc) in
       let map_on = t.psw.Psw.map_enable in
       (* --- can it issue this cycle? --- *)
       if
         connect_lat > 0 && map_on
         && (match !pending_maps with [] -> false | p -> src_blocked p d)
       then raise (Group_end (Some Map));
       if d.Dins.is_mem && !mem_free <= 0 then raise (Group_end (Some Channel));
       (if d.Dins.is_connect && not shared_connects then begin
          if !connect_slots <= 0 then raise (Group_end (Some Map))
        end
        else if !slots <= 0 then raise (Group_end None));
       let sp0 =
         if d.Dins.nsrcs > 0 then resolve_read t ~map_on d.Dins.s0c d.Dins.s0
         else -1
       in
       let sp1 =
         if d.Dins.nsrcs > 1 then resolve_read t ~map_on d.Dins.s1c d.Dins.s1
         else -1
       in
       let dp =
         if d.Dins.d >= 0 then resolve_write t ~map_on d.Dins.dc d.Dins.d
         else -1
       in
       let ok =
         (d.Dins.nsrcs < 1 || reg_ready t cycle d.Dins.s0c sp0)
         && (d.Dins.nsrcs < 2 || reg_ready t cycle d.Dins.s1c sp1)
         && (d.Dins.d < 0 || reg_ready t cycle d.Dins.dc dp)
       in
       if not ok then raise (Group_end (Some Data));
       (* --- issue --- *)
       if d.Dins.is_connect && not shared_connects then begin
         decr connect_slots;
         t.stats.extra_connects <- t.stats.extra_connects + 1
       end
       else decr slots;
       t.stats.issued <- t.stats.issued + 1;
       if d.Dins.is_mem then begin
         decr mem_free;
         t.stats.mem_ops <- t.stats.mem_ops + 1
       end;
       let done_at = cycle + d.Dins.lat in
       next_pc := t.pc + 1;
       end_group := false;
       (match d.Dins.op with
       | Opcode.Alu a ->
           set_int t ~map_on d dp
             (Opcode.eval_alu a (get_i t sp0) (get_i t sp1))
             done_at
       | Opcode.Alui a ->
           set_int t ~map_on d dp
             (Opcode.eval_alu a (get_i t sp0) d.Dins.imm)
             done_at
       | Opcode.Li -> set_int t ~map_on d dp d.Dins.imm done_at
       | Opcode.Move -> set_int t ~map_on d dp (get_i t sp0) done_at
       | Opcode.Fli -> set_float t ~map_on d dp d.Dins.fimm done_at
       | Opcode.Fmove -> set_float t ~map_on d dp (get_f t sp0) done_at
       | Opcode.Fpu f ->
           let b = if d.Dins.nsrcs > 1 then get_f t sp1 else 0.0 in
           set_float t ~map_on d dp (Opcode.eval_fpu f (get_f t sp0) b) done_at
       | Opcode.Itof ->
           set_float t ~map_on d dp (Int64.to_float (get_i t sp0)) done_at
       | Opcode.Ftoi ->
           set_int t ~map_on d dp (Int64.of_float (get_f t sp0)) done_at
       | Opcode.Fcmp c ->
           set_int t ~map_on d dp
             (if Opcode.eval_fcond c (get_f t sp0) (get_f t sp1) then 1L
              else 0L)
             done_at
       | Opcode.Ld w ->
           let a = Int64.to_int (get_i t sp0) + Int64.to_int d.Dins.imm in
           set_int t ~map_on d dp (load_mem t w a) done_at
       | Opcode.St w ->
           let a = Int64.to_int (get_i t sp1) + Int64.to_int d.Dins.imm in
           store_mem t w a (get_i t sp0)
       | Opcode.Fld ->
           let a = Int64.to_int (get_i t sp0) + Int64.to_int d.Dins.imm in
           set_float t ~map_on d dp
             (Int64.float_of_bits (load_mem t Opcode.W8 a))
             done_at
       | Opcode.Fst ->
           let a = Int64.to_int (get_i t sp1) + Int64.to_int d.Dins.imm in
           store_mem t Opcode.W8 a (Int64.bits_of_float (get_f t sp0))
       (* The front end follows correctly predicted control transfers
          within an issue group ("all combinations of instruction
          patterns are allowed to be executed in parallel", section
          5.2); a misprediction redirects fetch and pays the front-end
          penalty. *)
       | Opcode.Br c ->
           t.stats.branches <- t.stats.branches + 1;
           let taken = Opcode.eval_cond c (get_i t sp0) (get_i t sp1) in
           t.rec_taken <- taken;
           if taken then next_pc := d.Dins.target;
           if taken <> d.Dins.hint then begin
             t.stats.mispredicts <- t.stats.mispredicts + 1;
             let penalty = Config.mispredict_penalty t.cfg in
             t.stats.cycles <- t.stats.cycles + penalty;
             (* the redirect bubbles issue nothing: every slot of the
                penalty cycles is lost to the branch *)
             t.stats.lost_branch <-
               t.stats.lost_branch + (penalty * t.cfg.Config.issue);
             end_group := true;
             end_cause := Some Redirect
           end
       | Opcode.Jmp ->
           t.stats.branches <- t.stats.branches + 1;
           next_pc := d.Dins.target
       | Opcode.Jsr ->
           t.stats.branches <- t.stats.branches + 1;
           (* Reset the map, then write RA to its home location
              (section 4.1). *)
           Map_table.reset t.imap;
           Map_table.reset t.fmap;
           set_i t Reg.ra (Int64.of_int (t.pc + 1)) done_at;
           next_pc := d.Dins.target
       | Opcode.Rts ->
           t.stats.branches <- t.stats.branches + 1;
           let ra = Int64.to_int (get_i t sp0) in
           Map_table.reset t.imap;
           Map_table.reset t.fmap;
           next_pc := ra
       | Opcode.Connect ->
           t.stats.connects <- t.stats.connects + 1;
           if map_on then
             Array.iter
               (fun (c : Insn.connect) ->
                 (match c.Insn.ccls with
                 | Reg.Int -> Map_table.apply t.imap c
                 | Reg.Float -> Map_table.apply t.fmap c);
                 if connect_lat > 0 then
                   pending_maps :=
                     (c.Insn.ccls, c.Insn.cmap, c.Insn.ri) :: !pending_maps)
               d.Dins.connects
       | Opcode.Emit -> emit t (get_i t sp0)
       | Opcode.Femit -> emit t (Int64.bits_of_float (get_f t sp0))
       | Opcode.Trap ->
           enter_trap t ~return_to:(t.pc + 1);
           next_pc := t.pc;
           end_group := true;
           end_cause := Some Redirect
       | Opcode.Rfe ->
           (match t.recorder with
           | Some b -> Dtrace.invalidate b
           | None -> ());
           (match t.saved_psw with
           | Some saved ->
               Psw.return_from_exception t.psw ~saved;
               t.saved_psw <- None
           | None -> fail "rfe without saved PSW");
           next_pc := t.epc;
           end_group := true;
           end_cause := Some Redirect
       | Opcode.Mapen ->
           t.psw.Psw.map_enable <- not (Int64.equal d.Dins.imm 0L)
       (* Privileged map access (section 4.3): reads and writes the
          integer mapping table directly, regardless of the PSW
          map-enable flag, so handlers can save and restore connection
          state. *)
       | Opcode.Mfmap kind ->
           let idx = Int64.to_int d.Dins.imm in
           let v =
             match kind with
             | Opcode.Read -> Map_table.read t.imap idx
             | Opcode.Write -> Map_table.write t.imap idx
           in
           if dp < 0 then fail "mfmap needs a destination at pc %d" t.pc;
           set_i t dp (Int64.of_int v) done_at
       | Opcode.Mtmap kind -> (
           let idx = Int64.to_int d.Dins.imm in
           let v = Int64.to_int (get_i t sp0) in
           match kind with
           | Opcode.Read -> Map_table.connect_use t.imap ~ri:idx ~rp:v
           | Opcode.Write -> Map_table.connect_def t.imap ~ri:idx ~rp:v)
       | Opcode.Halt ->
           t.halted <- true;
           end_group := true;
           end_cause := Some Fetch
       | Opcode.Nop -> ());
       (match t.recorder with
       | None -> ()
       | Some b ->
           (* [t.pc] is still the issued instruction's address here (it
              advances below, and the Trap arm — which redirected it
              already — invalidated the recording).  No range checks:
              whoever attached the recorder established [Dtrace.fits]
              for this code length and these register files. *)
           Dtrace.add b ~pc:t.pc ~sp0 ~sp1 ~dp ~map_on
             ~taken:
               (match d.Dins.op with
               | Opcode.Br _ -> t.rec_taken
               | _ -> false));
       (match d.Dins.op with
       | Opcode.Trap -> () (* pc already set by enter_trap *)
       | _ -> t.pc <- !next_pc);
       if !end_group then raise (Group_end !end_cause)
     done
   with Group_end reason ->
     blocked := reason;
     (match reason with
     | Some Data -> t.stats.data_stalls <- t.stats.data_stalls + 1
     | Some Map -> t.stats.map_stalls <- t.stats.map_stalls + 1
     | Some Channel -> t.stats.channel_stalls <- t.stats.channel_stalls + 1
     | Some Redirect | Some Fetch | None -> ()));
  (* Charge the issue slots this cycle left unused to the reason the
     group ended.  A natural exit (slots exhausted) leaves zero; an
     already-halted machine charges the whole cycle to fetch. *)
  let lost = !slots in
  if lost > 0 then begin
    let s = t.stats in
    match !blocked with
    | Some Data -> s.lost_data <- s.lost_data + lost
    | Some Map -> s.lost_map <- s.lost_map + lost
    | Some Channel -> s.lost_channel <- s.lost_channel + lost
    | Some Redirect -> s.lost_branch <- s.lost_branch + lost
    | Some Fetch | None -> s.lost_fetch <- s.lost_fetch + lost
  end;
  t.stats.cycles <- t.stats.cycles + 1

let run_cycle t =
  match t.observer with
  | None -> run_cycle_raw t
  | Some f ->
      let s = t.stats in
      let cycle0 = s.cycles
      and pc0 = t.pc
      and issued0 = s.issued
      and connects0 = s.connects
      and ld0 = s.lost_data
      and lm0 = s.lost_map
      and lc0 = s.lost_channel
      and lb0 = s.lost_branch
      and lf0 = s.lost_fetch in
      run_cycle_raw t;
      f
        {
          s_cycle = cycle0;
          s_cycles = s.cycles - cycle0;
          s_pc = pc0;
          s_issued = s.issued - issued0;
          s_connects = s.connects - connects0;
          s_lost_data = s.lost_data - ld0;
          s_lost_map = s.lost_map - lm0;
          s_lost_channel = s.lost_channel - lc0;
          s_lost_branch = s.lost_branch - lb0;
          s_lost_fetch = s.lost_fetch - lf0;
        }

type result = {
  cycles : int;
  issued : int;
  connects : int;
  extra_connects : int;
  mem_ops : int;
  branches : int;
  mispredicts : int;
  data_stalls : int;
  map_stalls : int;
  channel_stalls : int;
  lost_data : int;
  lost_map : int;
  lost_channel : int;
  lost_branch : int;
  lost_fetch : int;
  output : int64 list;
  checksum : int64;
}

let lost_slots r =
  r.lost_data + r.lost_map + r.lost_channel + r.lost_branch + r.lost_fetch

(** The accounting identity the attribution maintains:
    [cycles * issue = slot-consuming issues + every lost slot].
    Connects dispatched through the extra budget do not consume issue
    slots and are excluded from the left-hand total. *)
let slot_invariant_holds ~issue r =
  (r.cycles * issue) = r.issued - r.extra_connects + lost_slots r

let checksum_of_output output =
  List.fold_left
    (fun acc v -> Int64.add (Int64.mul acc 1000003L) v)
    0x9E3779B9L output

let finish t =
  let output = output_list t in
  {
    cycles = t.stats.cycles;
    issued = t.stats.issued;
    connects = t.stats.connects;
    extra_connects = t.stats.extra_connects;
    mem_ops = t.stats.mem_ops;
    branches = t.stats.branches;
    mispredicts = t.stats.mispredicts;
    data_stalls = t.stats.data_stalls;
    map_stalls = t.stats.map_stalls;
    channel_stalls = t.stats.channel_stalls;
    lost_data = t.stats.lost_data;
    lost_map = t.stats.lost_map;
    lost_channel = t.stats.lost_channel;
    lost_branch = t.stats.lost_branch;
    lost_fetch = t.stats.lost_fetch;
    output;
    checksum = checksum_of_output output;
  }

let run_machine t =
  while (not t.halted) && t.stats.cycles < t.cfg.Config.fuel do
    run_cycle t
  done;
  if not t.halted then fail "out of fuel after %d cycles" t.stats.cycles;
  finish t

(** Assemble-free entry point: simulate an image under a configuration. *)
let run cfg image = run_machine (create cfg image)
