(** Simulated machine configurations (paper section 5.2).

    The base microarchitecture is an in-order superscalar with
    deterministic latencies (Table 1) and CRAY-1-style register
    interlocking.  Any combination of instructions may issue in parallel
    up to the issue rate, except that memory accesses are limited to the
    memory channels.  A 100% cache hit rate is assumed. *)

open Rc_isa

type t = {
  issue : int;  (** instructions issued per cycle: 1, 2, 4 or 8 *)
  mem_channels : int;  (** 2 for 1/2/4-issue, 4 for 8-issue in the paper *)
  lat : Latency.t;  (** load latency 2/4; connect latency 0/1 *)
  ifile : Reg.file;
  ffile : Reg.file;
  model : Rc_core.Model.t;
  connect_dispatch : [ `Shared | `Extra of int ];
      (** how connects consume front-end bandwidth: [`Shared] makes them
          compete for regular issue slots; [`Extra n] gives the dispatch
          logic its own budget of [n] connects per cycle (they update the
          mapping table at dispatch, not in a function unit; section
          2.4) *)
  extra_stage : bool;
      (** an extra pipeline stage for mapping-table access: taken-branch
          redirects cost one additional cycle (Figure 12 scenarios) *)
  trap_handler : string option;  (** function acting as trap handler *)
  fuel : int;  (** maximum simulated cycles *)
}

let default_mem_channels issue = if issue >= 8 then 4 else 2

let v ?(issue = 4) ?mem_channels ?(lat = Latency.default)
    ?(ifile = Reg.core_only 32) ?(ffile = Reg.core_only 32)
    ?(model = Rc_core.Model.default) ?connect_dispatch ?(extra_stage = false)
    ?trap_handler ?(fuel = 1_000_000_000) () =
  if issue < 1 then invalid_arg "Config.v: issue < 1";
  let mem_channels =
    match mem_channels with Some m -> m | None -> default_mem_channels issue
  in
  let connect_dispatch =
    match connect_dispatch with Some c -> c | None -> `Extra issue
  in
  {
    issue;
    mem_channels;
    lat;
    ifile;
    ffile;
    model;
    connect_dispatch;
    extra_stage;
    trap_handler;
    fuel;
  }

(** Redirect penalty in cycles paid by a mispredicted branch: one
    front-end bubble, one more with the extra RC decode stage. *)
let mispredict_penalty t = 1 + if t.extra_stage then 1 else 0

let pp ppf t =
  Fmt.pf ppf
    "%d-issue, %d mem ch, load %d, connect %d%s, int %d/%d, fp %d/%d, %a"
    t.issue t.mem_channels t.lat.Latency.load t.lat.Latency.connect
    (if t.extra_stage then ", extra stage" else "")
    t.ifile.Reg.core t.ifile.Reg.total t.ffile.Reg.core t.ffile.Reg.total
    Rc_core.Model.pp t.model
