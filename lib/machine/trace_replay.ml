(** The trace-replay timing engine: re-time a recorded execution under a
    new configuration without re-executing it.

    {!Machine.run_cycle} interleaves two concerns: functional execution
    (register values, memory, output) and timing (issue grouping,
    scoreboard interlocks, channel arbitration, redirect penalties).  On
    this in-order machine the timing knobs of a {!Config.t} — issue
    rate, memory channels, load/connect latency, the extra pipeline
    stage, the connect dispatch budget — cannot change the dynamic
    instruction stream, only how it packs into cycles.  So the stream is
    recorded once ({!record}) and {!replay} re-runs only the timing
    half: the same per-candidate check sequence as [run_cycle_raw]
    (mapping-table conflict, then memory channel, then issue/connect
    budget, then operand scoreboard), the same slot attribution, the
    same mispredict and fuel accounting — against operands read from the
    trace instead of resolved through live mapping tables.

    Replay reproduces {!Machine.result} {e exactly}: cycles, all five
    [lost_*] counters, every stall counter, the checksum, and the slot
    invariant.  The equivalence is enforced by [test/t_replay.ml] across
    the full figure grids and all reset models.

    A trace is only meaningful for the image it was recorded from, under
    a configuration whose {e semantic} knobs match the recording (reset
    model, register file shapes — these change register resolution and
    hence values and branch outcomes).  Keying and matching is the
    cache's job ({!Rc_harness.Experiments}); this module checks only
    {!replay_safe}, the conditions under which recording itself is
    sound.  See DESIGN.md §14. *)

open Rc_isa

let fail fmt = Fmt.kstr (fun s -> raise (Machine.Simulation_error s)) fmt

(** No trap handler configured: the program cannot trap, and interrupt
    injection — the other unreplayable event — is driver-initiated and
    never happens under the harness entry points that use this engine.
    (A [Trap]/[Rfe] or injected interrupt during recording additionally
    invalidates the builder, so an unreplayable run can never produce a
    trace.) *)
let replay_safe (cfg : Config.t) = Option.is_none cfg.Config.trap_handler

(** Execute [image] under [cfg] with a recorder attached: the ordinary
    execution-driven result, plus the trace when the run was replayable. *)
let record (cfg : Config.t) (image : Image.t) =
  let m = Machine.create cfg image in
  let b = Dtrace.builder ~hint:(4 * Array.length image.Image.code) () in
  Machine.set_recorder m (Some b);
  let r = Machine.run_machine m in
  let tr =
    Dtrace.finish b ~output:r.Machine.output ~checksum:r.Machine.checksum
  in
  (r, tr)

(* Duplicated from [Machine] (not exported there): the 1-cycle-connect
   same-group conflict scan over architectural map entries. *)
let rec pending_mem cls (kind : Insn.map_kind) r = function
  | [] -> false
  | (c, k, i) :: rest ->
      (Reg.equal_cls c cls && k = kind && i = r) || pending_mem cls kind r rest

let src_blocked pending (d : Dins.t) =
  (d.Dins.nsrcs > 0 && pending_mem d.Dins.s0c Insn.Read d.Dins.s0 pending)
  || (d.Dins.nsrcs > 1 && pending_mem d.Dins.s1c Insn.Read d.Dins.s1 pending)
  || (d.Dins.d >= 0 && pending_mem d.Dins.dc Insn.Write d.Dins.d pending)

type issue_blocker = Data | Map | Channel | Redirect | Fetch

exception Group_end of issue_blocker option

(** Re-run the issue/scoreboard/channel/redirect accounting of [tr]
    under [cfg].  The caller guarantees [tr] was recorded from [image]
    under matching semantic knobs; [cfg]'s timing knobs are free.
    @raise Machine.Simulation_error on fuel exhaustion or a trace that
    could not have come from a replay-safe recording. *)
let replay (cfg : Config.t) (image : Image.t) (tr : Dtrace.t) =
  (* Predecoded under the {e replay} configuration's latencies: a trace
     recorded with 2-cycle loads re-times correctly under 4-cycle
     loads. *)
  let pre = Dins.decode ~lat:cfg.Config.lat image.Image.code in
  let iready = Array.make cfg.Config.ifile.Reg.total 0 in
  let fready = Array.make cfg.Config.ffile.Reg.total 0 in
  let stats : Machine.stats =
    {
      cycles = 0;
      issued = 0;
      connects = 0;
      extra_connects = 0;
      mem_ops = 0;
      branches = 0;
      mispredicts = 0;
      data_stalls = 0;
      map_stalls = 0;
      channel_stalls = 0;
      lost_data = 0;
      lost_map = 0;
      lost_channel = 0;
      lost_branch = 0;
      lost_fetch = 0;
    }
  in
  let packed = tr.Dtrace.packed in
  let n = tr.Dtrace.n in
  let idx = ref 0 in
  let halted = ref false in
  let shared_connects = cfg.Config.connect_dispatch = `Shared in
  let connect_budget =
    match cfg.Config.connect_dispatch with `Shared -> 0 | `Extra b -> b
  in
  let connect_lat = cfg.Config.lat.Latency.connect in
  let issue = cfg.Config.issue in
  let penalty = Config.mispredict_penalty cfg in
  let[@inline] reg_ready cycle (cls : Reg.cls) p =
    match cls with
    | Reg.Int -> iready.(p) <= cycle
    | Reg.Float -> fready.(p) <= cycle
  in
  (* One cycle: the timing half of [Machine.run_cycle_raw], with the
     candidate instruction and its resolved operands read from the
     trace.  Check order (Map, then Channel, then budget/slots, then
     Data), slot charging and stall counting mirror execution
     line-for-line — drift here is what [test/t_replay.ml] exists to
     catch. *)
  let run_cycle () =
    let cycle = stats.cycles in
    let slots = ref issue in
    let connect_slots = ref connect_budget in
    let mem_free = ref cfg.Config.mem_channels in
    let pending_maps : (Reg.cls * Insn.map_kind * int) list ref = ref [] in
    let end_group = ref false in
    let end_cause = ref None in
    let blocked = ref None in
    (try
       while (!slots > 0 || !connect_slots > 0) && not !halted do
         if !idx >= n then fail "replay: trace exhausted before halt";
         let e = packed.(!idx) in
         let d = pre.(Dtrace.pc e) in
         let map_on = Dtrace.map_on e in
         (* --- can it issue this cycle? --- *)
         if
           connect_lat > 0 && map_on
           && (match !pending_maps with [] -> false | p -> src_blocked p d)
         then raise (Group_end (Some Map));
         if d.Dins.is_mem && !mem_free <= 0 then
           raise (Group_end (Some Channel));
         (if d.Dins.is_connect && not shared_connects then begin
            if !connect_slots <= 0 then raise (Group_end (Some Map))
          end
          else if !slots <= 0 then raise (Group_end None));
         let sp0 = Dtrace.sp0 e
         and sp1 = Dtrace.sp1 e
         and dp = Dtrace.dp e in
         let ok =
           (d.Dins.nsrcs < 1 || reg_ready cycle d.Dins.s0c sp0)
           && (d.Dins.nsrcs < 2 || reg_ready cycle d.Dins.s1c sp1)
           && (d.Dins.d < 0 || reg_ready cycle d.Dins.dc dp)
         in
         if not ok then raise (Group_end (Some Data));
         (* --- issue --- *)
         if d.Dins.is_connect && not shared_connects then begin
           decr connect_slots;
           stats.extra_connects <- stats.extra_connects + 1
         end
         else decr slots;
         stats.issued <- stats.issued + 1;
         if d.Dins.is_mem then begin
           decr mem_free;
           stats.mem_ops <- stats.mem_ops + 1
         end;
         let done_at = cycle + d.Dins.lat in
         end_group := false;
         (match d.Dins.op with
         | Opcode.Alu _ | Opcode.Alui _ | Opcode.Li | Opcode.Move
         | Opcode.Ftoi | Opcode.Fcmp _ | Opcode.Ld _ | Opcode.Mfmap _ ->
             (* [Machine.set_i] skips the hardwired zero *)
             if dp <> Reg.zero then iready.(dp) <- done_at
         | Opcode.Fli | Opcode.Fmove | Opcode.Fpu _ | Opcode.Itof
         | Opcode.Fld ->
             fready.(dp) <- done_at
         | Opcode.St _ | Opcode.Fst -> ()
         | Opcode.Br _ ->
             stats.branches <- stats.branches + 1;
             if Dtrace.taken e <> d.Dins.hint then begin
               stats.mispredicts <- stats.mispredicts + 1;
               stats.cycles <- stats.cycles + penalty;
               stats.lost_branch <- stats.lost_branch + (penalty * issue);
               end_group := true;
               end_cause := Some Redirect
             end
         | Opcode.Jmp -> stats.branches <- stats.branches + 1
         | Opcode.Jsr ->
             stats.branches <- stats.branches + 1;
             (* execution writes RA's readiness at its {e home} physical
                location (the map was just reset), not at the recorded
                [dp] *)
             if Reg.ra <> Reg.zero then iready.(Reg.ra) <- done_at
         | Opcode.Rts -> stats.branches <- stats.branches + 1
         | Opcode.Connect ->
             stats.connects <- stats.connects + 1;
             if map_on && connect_lat > 0 then
               Array.iter
                 (fun (c : Insn.connect) ->
                   pending_maps :=
                     (c.Insn.ccls, c.Insn.cmap, c.Insn.ri) :: !pending_maps)
                 d.Dins.connects
         | Opcode.Emit | Opcode.Femit | Opcode.Mapen | Opcode.Mtmap _
         | Opcode.Nop ->
             ()
         | Opcode.Halt ->
             halted := true;
             end_group := true;
             end_cause := Some Fetch
         | Opcode.Trap | Opcode.Rfe ->
             fail "replay: unreplayable %s in trace at index %d"
               (Opcode.to_string d.Dins.op)
               !idx);
         incr idx;
         if !end_group then raise (Group_end !end_cause)
       done
     with Group_end reason ->
       blocked := reason;
       (match reason with
       | Some Data -> stats.data_stalls <- stats.data_stalls + 1
       | Some Map -> stats.map_stalls <- stats.map_stalls + 1
       | Some Channel -> stats.channel_stalls <- stats.channel_stalls + 1
       | Some Redirect | Some Fetch | None -> ()));
    let lost = !slots in
    if lost > 0 then begin
      match !blocked with
      | Some Data -> stats.lost_data <- stats.lost_data + lost
      | Some Map -> stats.lost_map <- stats.lost_map + lost
      | Some Channel -> stats.lost_channel <- stats.lost_channel + lost
      | Some Redirect -> stats.lost_branch <- stats.lost_branch + lost
      | Some Fetch | None -> stats.lost_fetch <- stats.lost_fetch + lost
    end;
    stats.cycles <- stats.cycles + 1
  in
  while (not !halted) && stats.cycles < cfg.Config.fuel do
    run_cycle ()
  done;
  if not !halted then fail "out of fuel after %d cycles" stats.cycles;
  {
    Machine.cycles = stats.cycles;
    issued = stats.issued;
    connects = stats.connects;
    extra_connects = stats.extra_connects;
    mem_ops = stats.mem_ops;
    branches = stats.branches;
    mispredicts = stats.mispredicts;
    data_stalls = stats.data_stalls;
    map_stalls = stats.map_stalls;
    channel_stalls = stats.channel_stalls;
    lost_data = stats.lost_data;
    lost_map = stats.lost_map;
    lost_channel = stats.lost_channel;
    lost_branch = stats.lost_branch;
    lost_fetch = stats.lost_fetch;
    output = tr.Dtrace.output;
    checksum = tr.Dtrace.checksum;
  }
