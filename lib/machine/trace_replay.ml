(** The trace-replay timing engine: re-time a recorded execution under
    new configurations without re-executing it.

    {!Machine.run_cycle} interleaves two concerns: functional execution
    (register values, memory, output) and timing (issue grouping,
    scoreboard interlocks, channel arbitration, redirect penalties).  On
    this in-order machine the timing knobs of a {!Config.t} — issue
    rate, memory channels, load/connect latency, the extra pipeline
    stage, the connect dispatch budget — cannot change the dynamic
    instruction stream, only how it packs into cycles.  So the stream is
    recorded once ({!record}) and replay re-runs only the timing half:
    the same per-candidate check sequence as [run_cycle_raw]
    (mapping-table conflict, then memory channel, then issue/connect
    budget, then operand scoreboard), the same slot attribution, the
    same mispredict and fuel accounting — against operands read from the
    trace instead of resolved through live mapping tables.

    Where execution is cycle-driven (each cycle pulls instructions until
    a blocker fires), replay here is {e entry-driven}: for each trace
    entry, close as many cycles as its blockers demand, then issue it.
    The two loops visit the identical sequence of (blocker, cycle)
    events — a cycle with no issues exists exactly when the next entry
    blocks on it — which is what lets {!replay_batch} walk the trace
    {e once}, decoding each entry a single time, while K independent
    per-configuration timing states consume it in lockstep.  An entire
    figure column over one image then costs one decode pass.

    Replay reproduces {!Machine.result} {e exactly}: cycles, all five
    [lost_*] counters, every stall counter, the checksum, and the slot
    invariant.  The equivalence — batched, per-cell and executed — is
    enforced by [test/t_replay.ml] across the full figure grids and all
    reset models.

    A trace is only meaningful for the image it was recorded from, under
    a configuration whose {e semantic} knobs match the recording (reset
    model, register file shapes — these change register resolution and
    hence values and branch outcomes).  Keying and matching is the
    cache's job ({!Rc_harness.Experiments}); this module checks only
    {!replay_safe}, the conditions under which recording itself is
    sound.  See DESIGN.md §14. *)

open Rc_isa

let fail fmt = Fmt.kstr (fun s -> raise (Machine.Simulation_error s)) fmt

(** No trap handler configured: the program cannot trap, and interrupt
    injection — the other unreplayable event — is driver-initiated and
    never happens under the harness entry points that use this engine.
    (A [Trap]/[Rfe] or injected interrupt during recording additionally
    invalidates the builder, so an unreplayable run can never produce a
    trace.) *)
let replay_safe (cfg : Config.t) = Option.is_none cfg.Config.trap_handler

(** Execute [image] under [cfg] with a recorder attached: the ordinary
    execution-driven result, plus the trace when the run was replayable.
    A shape that cannot fit the packed layout skips the recorder
    entirely — {!Dtrace.fits} is the one range check, hoisted out of
    the per-instruction path. *)
let record (cfg : Config.t) (image : Image.t) =
  let code_len = Array.length image.Image.code in
  if
    not
      (Dtrace.fits ~code_len ~ireg_total:cfg.Config.ifile.Reg.total
         ~freg_total:cfg.Config.ffile.Reg.total)
  then (Machine.run_machine (Machine.create cfg image), None)
  else begin
    let m = Machine.create cfg image in
    let arch =
      Dtrace.arch_of_dins (Dins.decode ~lat:cfg.Config.lat image.Image.code)
    in
    let b = Dtrace.builder ~hint:(4 * code_len) arch in
    Machine.set_recorder m (Some b);
    let r = Machine.run_machine m in
    let tr =
      Dtrace.finish b ~output:r.Machine.output ~checksum:r.Machine.checksum
    in
    (r, tr)
  end

(* Duplicated from [Machine] (not exported there): the 1-cycle-connect
   same-group conflict scan over architectural map entries. *)
let rec pending_mem cls (kind : Insn.map_kind) r = function
  | [] -> false
  | (c, k, i) :: rest ->
      (Reg.equal_cls c cls && k = kind && i = r) || pending_mem cls kind r rest

let src_blocked pending (d : Dins.t) =
  (d.Dins.nsrcs > 0 && pending_mem d.Dins.s0c Insn.Read d.Dins.s0 pending)
  || (d.Dins.nsrcs > 1 && pending_mem d.Dins.s1c Insn.Read d.Dins.s1 pending)
  || (d.Dins.d >= 0 && pending_mem d.Dins.dc Insn.Write d.Dins.d pending)

type issue_blocker = Data | Map | Channel | Redirect | Fetch

(** One configuration's complete timing state: the scoreboard, the
    per-cycle resources, the stall counters — everything
    [Machine.run_cycle_raw] keeps, minus the functional half. *)
type state = {
  pre : Dins.t array;  (** predecoded under {e this} config's latencies *)
  iready : int array;
  fready : int array;
  st : Machine.stats;
  mutable pending : (Reg.cls * Insn.map_kind * int) list;
      (** map entries touched by connects issued this cycle *)
  mutable slots : int;
  mutable cslots : int;
  mutable mem_free : int;
  mutable cycle : int;  (** [st.cycles] when the open cycle began *)
  mutable halted : bool;
  (* per-configuration constants *)
  issue : int;
  budget : int;  (** per-cycle connect dispatch budget; 0 when shared *)
  shared : bool;
  channels : int;
  connect_lat : int;
  penalty : int;
  fuel : int;
}

let state_of (cfg : Config.t) (image : Image.t) =
  let budget =
    match cfg.Config.connect_dispatch with `Shared -> 0 | `Extra b -> b
  in
  {
    pre = Dins.decode ~lat:cfg.Config.lat image.Image.code;
    iready = Array.make cfg.Config.ifile.Reg.total 0;
    fready = Array.make cfg.Config.ffile.Reg.total 0;
    st =
      {
        Machine.cycles = 0;
        issued = 0;
        connects = 0;
        extra_connects = 0;
        mem_ops = 0;
        branches = 0;
        mispredicts = 0;
        data_stalls = 0;
        map_stalls = 0;
        channel_stalls = 0;
        lost_data = 0;
        lost_map = 0;
        lost_channel = 0;
        lost_branch = 0;
        lost_fetch = 0;
      };
    pending = [];
    slots = cfg.Config.issue;
    cslots = budget;
    mem_free = cfg.Config.mem_channels;
    cycle = 0;
    halted = false;
    issue = cfg.Config.issue;
    budget;
    shared = cfg.Config.connect_dispatch = `Shared;
    channels = cfg.Config.mem_channels;
    connect_lat = cfg.Config.lat.Latency.connect;
    penalty = Config.mispredict_penalty cfg;
    fuel = cfg.Config.fuel;
  }

(* Close the open cycle for [reason] — the stall counting, slot
   charging and per-cycle resource reset of [run_cycle_raw]'s epilogue,
   plus [run_machine]'s fuel check (a new cycle only opens while fuel
   remains and the machine runs). *)
let end_cycle s (reason : issue_blocker option) =
  let st = s.st in
  (match reason with
  | Some Data -> st.Machine.data_stalls <- st.Machine.data_stalls + 1
  | Some Map -> st.Machine.map_stalls <- st.Machine.map_stalls + 1
  | Some Channel -> st.Machine.channel_stalls <- st.Machine.channel_stalls + 1
  | Some Redirect | Some Fetch | None -> ());
  let lost = s.slots in
  if lost > 0 then begin
    match reason with
    | Some Data -> st.Machine.lost_data <- st.Machine.lost_data + lost
    | Some Map -> st.Machine.lost_map <- st.Machine.lost_map + lost
    | Some Channel -> st.Machine.lost_channel <- st.Machine.lost_channel + lost
    | Some Redirect -> st.Machine.lost_branch <- st.Machine.lost_branch + lost
    | Some Fetch | None -> st.Machine.lost_fetch <- st.Machine.lost_fetch + lost
  end;
  st.Machine.cycles <- st.Machine.cycles + 1;
  if (not s.halted) && st.Machine.cycles >= s.fuel then
    fail "out of fuel after %d cycles" st.Machine.cycles;
  s.slots <- s.issue;
  s.cslots <- s.budget;
  s.mem_free <- s.channels;
  s.pending <- [];
  s.cycle <- st.Machine.cycles

let[@inline] reg_ready s (cls : Reg.cls) p =
  match cls with
  | Reg.Int -> s.iready.(p) <= s.cycle
  | Reg.Float -> s.fready.(p) <= s.cycle

(** Consume one trace entry: end cycles until its blockers clear (in
    [run_cycle_raw]'s exact check order — group exhausted, then
    mapping-table conflict, then memory channel, then issue/connect
    budget, then operand scoreboard), then issue it and apply its
    opcode's timing effects.  A no-op once halted (execution ignores
    anything past the halt). *)
let step s ~idx e =
  if not s.halted then begin
    let d = s.pre.(Dtrace.pc e) in
    let map_on = Dtrace.map_on e in
    let rec attempt () =
      if s.slots <= 0 && s.cslots <= 0 then begin
        end_cycle s None;
        attempt ()
      end
      else if
        s.connect_lat > 0 && map_on
        && (match s.pending with [] -> false | p -> src_blocked p d)
      then begin
        end_cycle s (Some Map);
        attempt ()
      end
      else if d.Dins.is_mem && s.mem_free <= 0 then begin
        end_cycle s (Some Channel);
        attempt ()
      end
      else if d.Dins.is_connect && (not s.shared) && s.cslots <= 0 then begin
        end_cycle s (Some Map);
        attempt ()
      end
      else if ((not d.Dins.is_connect) || s.shared) && s.slots <= 0 then begin
        end_cycle s None;
        attempt ()
      end
      else if
        not
          ((d.Dins.nsrcs < 1 || reg_ready s d.Dins.s0c (Dtrace.sp0 e))
          && (d.Dins.nsrcs < 2 || reg_ready s d.Dins.s1c (Dtrace.sp1 e))
          && (d.Dins.d < 0 || reg_ready s d.Dins.dc (Dtrace.dp e)))
      then begin
        end_cycle s (Some Data);
        attempt ()
      end
      else begin
        (* --- issue --- *)
        let st = s.st in
        if d.Dins.is_connect && not s.shared then begin
          s.cslots <- s.cslots - 1;
          st.Machine.extra_connects <- st.Machine.extra_connects + 1
        end
        else s.slots <- s.slots - 1;
        st.Machine.issued <- st.Machine.issued + 1;
        if d.Dins.is_mem then begin
          s.mem_free <- s.mem_free - 1;
          st.Machine.mem_ops <- st.Machine.mem_ops + 1
        end;
        let done_at = s.cycle + d.Dins.lat in
        match d.Dins.op with
        | Opcode.Alu _ | Opcode.Alui _ | Opcode.Li | Opcode.Move
        | Opcode.Ftoi | Opcode.Fcmp _ | Opcode.Ld _ | Opcode.Mfmap _ ->
            (* [Machine.set_i] skips the hardwired zero *)
            let dp = Dtrace.dp e in
            if dp <> Reg.zero then s.iready.(dp) <- done_at
        | Opcode.Fli | Opcode.Fmove | Opcode.Fpu _ | Opcode.Itof
        | Opcode.Fld ->
            s.fready.(Dtrace.dp e) <- done_at
        | Opcode.St _ | Opcode.Fst -> ()
        | Opcode.Br _ ->
            st.Machine.branches <- st.Machine.branches + 1;
            if Dtrace.taken e <> d.Dins.hint then begin
              st.Machine.mispredicts <- st.Machine.mispredicts + 1;
              st.Machine.cycles <- st.Machine.cycles + s.penalty;
              st.Machine.lost_branch <-
                st.Machine.lost_branch + (s.penalty * s.issue);
              end_cycle s (Some Redirect)
            end
        | Opcode.Jmp -> st.Machine.branches <- st.Machine.branches + 1
        | Opcode.Jsr ->
            st.Machine.branches <- st.Machine.branches + 1;
            (* execution writes RA's readiness at its {e home} physical
               location (the map was just reset), not at the recorded
               [dp] *)
            if Reg.ra <> Reg.zero then s.iready.(Reg.ra) <- done_at
        | Opcode.Rts -> st.Machine.branches <- st.Machine.branches + 1
        | Opcode.Connect ->
            st.Machine.connects <- st.Machine.connects + 1;
            if map_on && s.connect_lat > 0 then
              Array.iter
                (fun (c : Insn.connect) ->
                  s.pending <-
                    (c.Insn.ccls, c.Insn.cmap, c.Insn.ri) :: s.pending)
                d.Dins.connects
        | Opcode.Emit | Opcode.Femit | Opcode.Mapen | Opcode.Mtmap _
        | Opcode.Nop ->
            ()
        | Opcode.Halt ->
            s.halted <- true;
            end_cycle s (Some Fetch)
        | Opcode.Trap | Opcode.Rfe ->
            fail "replay: unreplayable %s in trace at index %d"
              (Opcode.to_string d.Dins.op) idx
      end
    in
    attempt ()
  end

let result_of s ~output ~checksum =
  if not s.halted then fail "replay: trace exhausted before halt";
  let st = s.st in
  {
    Machine.cycles = st.Machine.cycles;
    issued = st.Machine.issued;
    connects = st.Machine.connects;
    extra_connects = st.Machine.extra_connects;
    mem_ops = st.Machine.mem_ops;
    branches = st.Machine.branches;
    mispredicts = st.Machine.mispredicts;
    data_stalls = st.Machine.data_stalls;
    map_stalls = st.Machine.map_stalls;
    channel_stalls = st.Machine.channel_stalls;
    lost_data = st.Machine.lost_data;
    lost_map = st.Machine.lost_map;
    lost_channel = st.Machine.lost_channel;
    lost_branch = st.Machine.lost_branch;
    lost_fetch = st.Machine.lost_fetch;
    output;
    checksum;
  }

(** Re-time one trace under K configurations in a single pass: the
    token stream is decoded entry by entry exactly once, and every
    state advances on each entry before the next is decoded.  The
    caller guarantees [tr] was recorded from [image] under semantic
    knobs matching {e all} of [cfgs]; their timing knobs are free.
    @raise Machine.Simulation_error on fuel exhaustion or a trace that
    could not have come from a replay-safe recording. *)
let replay_batch (cfgs : Config.t array) (image : Image.t) (tr : Dtrace.t) =
  if Array.length cfgs = 0 then
    invalid_arg "Trace_replay.replay_batch: no configurations";
  let states = Array.map (fun cfg -> state_of cfg image) cfgs in
  (* Architectural operands do not depend on latency, so any state's
     predecode serves the cursor. *)
  let cur = Dtrace.cursor (Dtrace.arch_of_dins states.(0).pre) tr in
  let k = Array.length states in
  for idx = 0 to tr.Dtrace.n - 1 do
    let e = Dtrace.next cur in
    for j = 0 to k - 1 do
      step states.(j) ~idx e
    done
  done;
  let output = Dtrace.output tr in
  Array.map (fun s -> result_of s ~output ~checksum:tr.Dtrace.checksum) states

let replay (cfg : Config.t) (image : Image.t) (tr : Dtrace.t) =
  (replay_batch [| cfg |] image tr).(0)
