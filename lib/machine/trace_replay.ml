(** The trace-replay timing engine: re-time a recorded execution under
    new configurations without re-executing it.

    {!Machine.run_cycle} interleaves two concerns: functional execution
    (register values, memory, output) and timing (issue grouping,
    scoreboard interlocks, channel arbitration, redirect penalties).  On
    this in-order machine the timing knobs of a {!Config.t} — issue
    rate, memory channels, load/connect latency, the extra pipeline
    stage, the connect dispatch budget — cannot change the dynamic
    instruction stream, only how it packs into cycles.  So the stream is
    recorded once ({!record}) and replay re-runs only the timing half:
    the same per-candidate check sequence as [run_cycle_raw]
    (mapping-table conflict, then memory channel, then issue/connect
    budget, then operand scoreboard), the same slot attribution, the
    same mispredict and fuel accounting — against operands read from the
    trace instead of resolved through live mapping tables.

    Where execution is cycle-driven (each cycle pulls instructions until
    a blocker fires), replay here is {e entry-driven}: for each trace
    entry, close as many cycles as its blockers demand, then issue it.
    The two loops visit the identical sequence of (blocker, cycle)
    events — a cycle with no issues exists exactly when the next entry
    blocks on it — which is what lets {!replay_batch} walk the trace
    {e once}, decoding each entry a single time, while K independent
    per-configuration timing states consume it in lockstep.  An entire
    figure column over one image then costs one decode pass.

    Replay reproduces {!Machine.result} {e exactly}: cycles, all five
    [lost_*] counters, every stall counter, the checksum, and the slot
    invariant.  The equivalence — batched, per-cell and executed — is
    enforced by [test/t_replay.ml] across the full figure grids and all
    reset models.

    A trace is only meaningful for the image it was recorded from, under
    a configuration whose {e semantic} knobs match the recording (reset
    model, register file shapes — these change register resolution and
    hence values and branch outcomes).  Keying and matching is the
    cache's job ({!Rc_harness.Experiments}); this module checks only
    {!replay_safe}, the conditions under which recording itself is
    sound.  See DESIGN.md §14. *)

open Rc_isa

let fail fmt = Fmt.kstr (fun s -> raise (Machine.Simulation_error s)) fmt

(** No trap handler configured: the program cannot trap, and interrupt
    injection — the other unreplayable event — is driver-initiated and
    never happens under the harness entry points that use this engine.
    (A [Trap]/[Rfe] or injected interrupt during recording additionally
    invalidates the builder, so an unreplayable run can never produce a
    trace.) *)
let replay_safe (cfg : Config.t) = Option.is_none cfg.Config.trap_handler

(** Execute [image] under [cfg] with a recorder attached: the ordinary
    execution-driven result, plus the trace when the run was replayable.
    A shape that cannot fit the packed layout skips the recorder
    entirely — {!Dtrace.fits} is the one range check, hoisted out of
    the per-instruction path. *)
let record (cfg : Config.t) (image : Image.t) =
  let code_len = Array.length image.Image.code in
  if
    not
      (Dtrace.fits ~code_len ~ireg_total:cfg.Config.ifile.Reg.total
         ~freg_total:cfg.Config.ffile.Reg.total)
  then (Machine.run_machine (Machine.create cfg image), None)
  else begin
    let m = Machine.create cfg image in
    let arch =
      Dtrace.arch_of_dins (Dins.decode ~lat:cfg.Config.lat image.Image.code)
    in
    let b = Dtrace.builder ~hint:(4 * code_len) arch in
    Machine.set_recorder m (Some b);
    let r = Machine.run_machine m in
    let tr =
      Dtrace.finish b ~output:r.Machine.output ~checksum:r.Machine.checksum
    in
    (r, tr)
  end

(* Duplicated from [Machine] (not exported there): the 1-cycle-connect
   same-group conflict scan over architectural map entries. *)
let rec pending_mem cls (kind : Insn.map_kind) r = function
  | [] -> false
  | (c, k, i) :: rest ->
      (Reg.equal_cls c cls && k = kind && i = r) || pending_mem cls kind r rest

let src_blocked pending (d : Dins.t) =
  (d.Dins.nsrcs > 0 && pending_mem d.Dins.s0c Insn.Read d.Dins.s0 pending)
  || (d.Dins.nsrcs > 1 && pending_mem d.Dins.s1c Insn.Read d.Dins.s1 pending)
  || (d.Dins.d >= 0 && pending_mem d.Dins.dc Insn.Write d.Dins.d pending)

type issue_blocker = Data | Map | Channel | Redirect | Fetch

(* --- the superblock timing memo (DESIGN.md §18) ------------------------- *)

(** Cumulative counters for the superblock timing memo, aggregated over
    every state of every {!replay_batch} call the record is passed to.
    Each memoisable-segment visit lands in exactly one of [m_hits]
    (served by a memo probe), [m_misses] (replayed per-entry and
    recorded into the memo) or [m_fallbacks] (replayed per-entry
    because the visit was ineligible: a halting segment, a fuel
    boundary, or a signature/value that overflows the packed forms).
    [m_bytes] approximates the memo tables' peak heap footprint. *)
type memo_stats = {
  mutable m_hits : int;
  mutable m_misses : int;
  mutable m_fallbacks : int;
  mutable m_bytes : int;
}

let memo_stats () = { m_hits = 0; m_misses = 0; m_fallbacks = 0; m_bytes = 0 }

(* The memoised effect of one (segment, in-signature) pair on one
   configuration's timing state.  Every field is relative to the cycle
   the visit began on — timing dynamics are translation-invariant in
   the cycle except for the fuel check, which the hit path re-tests. *)
type memo_val = {
  v_dcycles : int;
  v_dstats : int array;  (** the 14 non-cycle {!Machine.stats} deltas *)
  v_slots : int;
  v_cslots : int;
  v_mem_free : int;
  v_pending : (Reg.cls * Insn.map_kind * int) list;
      (** map entries prepended after the last cycle close inside the
          segment: the whole out-pending when [v_dcycles > 0], a prefix
          to re-prepend onto the caller's pending otherwise *)
  v_writes : int array;
      (** scoreboard writes still in flight at segment exit, packed
          [(residue lsl 13) lor (preg lsl 1) lor class]; residues are
          relative to the exit cycle and positive (an expired write is
          indistinguishable from no write) *)
}

(* Packed-form bounds for signatures and memo values; anything outside
   falls back to the per-entry loop. *)
let max_residue = 255
let max_inflight = 64
let max_pending = 64

(** One configuration's complete timing state: the scoreboard, the
    per-cycle resources, the stall counters — everything
    [Machine.run_cycle_raw] keeps, minus the functional half. *)
type state = {
  pre : Dins.t array;  (** predecoded under {e this} config's latencies *)
  iready : int array;
  fready : int array;
  st : Machine.stats;
  mutable pending : (Reg.cls * Insn.map_kind * int) list;
      (** map entries touched by connects issued this cycle *)
  mutable slots : int;
  mutable cslots : int;
  mutable mem_free : int;
  mutable cycle : int;  (** [st.cycles] when the open cycle began *)
  mutable halted : bool;
  (* per-configuration constants *)
  issue : int;
  budget : int;  (** per-cycle connect dispatch budget; 0 when shared *)
  shared : bool;
  channels : int;
  connect_lat : int;
  penalty : int;
  fuel : int;
  (* superblock timing memo (DESIGN.md §18) *)
  memo_on : bool;
  memo : (int, (string, memo_val) Hashtbl.t) Hashtbl.t;
      (** [seg_id -> in-signature -> effect]; lives exactly as long as
          this state, i.e. one replay call *)
  mutable inflight : int array;
      (** registers written since the last signature, packed
          [(preg lsl 1) lor class] — the candidate set for positive
          scoreboard residues, so signatures never scan the files *)
  mutable n_inflight : int;
  istamp : int array;  (** per-register dedup stamps for signatures *)
  fstamp : int array;
  mutable stamp : int;
  sigbuf : Buffer.t;
}

let state_of ?(memo = true) (cfg : Config.t) (image : Image.t) =
  let budget =
    match cfg.Config.connect_dispatch with `Shared -> 0 | `Extra b -> b
  in
  {
    pre = Dins.decode ~lat:cfg.Config.lat image.Image.code;
    iready = Array.make cfg.Config.ifile.Reg.total 0;
    fready = Array.make cfg.Config.ffile.Reg.total 0;
    st =
      {
        Machine.cycles = 0;
        issued = 0;
        connects = 0;
        extra_connects = 0;
        mem_ops = 0;
        branches = 0;
        mispredicts = 0;
        data_stalls = 0;
        map_stalls = 0;
        channel_stalls = 0;
        lost_data = 0;
        lost_map = 0;
        lost_channel = 0;
        lost_branch = 0;
        lost_fetch = 0;
      };
    pending = [];
    slots = cfg.Config.issue;
    cslots = budget;
    mem_free = cfg.Config.mem_channels;
    cycle = 0;
    halted = false;
    issue = cfg.Config.issue;
    budget;
    shared = cfg.Config.connect_dispatch = `Shared;
    channels = cfg.Config.mem_channels;
    connect_lat = cfg.Config.lat.Latency.connect;
    penalty = Config.mispredict_penalty cfg;
    fuel = cfg.Config.fuel;
    memo_on = memo;
    memo = Hashtbl.create (if memo then 64 else 1);
    inflight = Array.make (if memo then 64 else 1) 0;
    n_inflight = 0;
    istamp = Array.make (if memo then cfg.Config.ifile.Reg.total else 1) 0;
    fstamp = Array.make (if memo then cfg.Config.ffile.Reg.total else 1) 0;
    stamp = 0;
    sigbuf = Buffer.create 64;
  }

(* Note a scoreboard write so signatures can find in-flight registers
   without scanning the files.  Duplicates are fine (signatures dedup
   by stamp); the list is pruned to live writes at each signature. *)
let[@inline] note_write s cls p =
  if s.memo_on then begin
    if s.n_inflight = Array.length s.inflight then begin
      let a = Array.make (2 * s.n_inflight) 0 in
      Array.blit s.inflight 0 a 0 s.n_inflight;
      s.inflight <- a
    end;
    s.inflight.(s.n_inflight) <-
      (p lsl 1) lor (match cls with Reg.Int -> 0 | Reg.Float -> 1);
    s.n_inflight <- s.n_inflight + 1
  end

(* Close the open cycle for [reason] — the stall counting, slot
   charging and per-cycle resource reset of [run_cycle_raw]'s epilogue,
   plus [run_machine]'s fuel check (a new cycle only opens while fuel
   remains and the machine runs). *)
let end_cycle s (reason : issue_blocker option) =
  let st = s.st in
  (match reason with
  | Some Data -> st.Machine.data_stalls <- st.Machine.data_stalls + 1
  | Some Map -> st.Machine.map_stalls <- st.Machine.map_stalls + 1
  | Some Channel -> st.Machine.channel_stalls <- st.Machine.channel_stalls + 1
  | Some Redirect | Some Fetch | None -> ());
  let lost = s.slots in
  if lost > 0 then begin
    match reason with
    | Some Data -> st.Machine.lost_data <- st.Machine.lost_data + lost
    | Some Map -> st.Machine.lost_map <- st.Machine.lost_map + lost
    | Some Channel -> st.Machine.lost_channel <- st.Machine.lost_channel + lost
    | Some Redirect -> st.Machine.lost_branch <- st.Machine.lost_branch + lost
    | Some Fetch | None -> st.Machine.lost_fetch <- st.Machine.lost_fetch + lost
  end;
  st.Machine.cycles <- st.Machine.cycles + 1;
  if (not s.halted) && st.Machine.cycles >= s.fuel then
    fail "out of fuel after %d cycles" st.Machine.cycles;
  s.slots <- s.issue;
  s.cslots <- s.budget;
  s.mem_free <- s.channels;
  s.pending <- [];
  s.cycle <- st.Machine.cycles

let[@inline] reg_ready s (cls : Reg.cls) p =
  match cls with
  | Reg.Int -> s.iready.(p) <= s.cycle
  | Reg.Float -> s.fready.(p) <= s.cycle

(** Consume one trace entry: end cycles until its blockers clear (in
    [run_cycle_raw]'s exact check order — group exhausted, then
    mapping-table conflict, then memory channel, then issue/connect
    budget, then operand scoreboard), then issue it and apply its
    opcode's timing effects.  A no-op once halted (execution ignores
    anything past the halt). *)
let step s ~idx e =
  if not s.halted then begin
    let d = s.pre.(Dtrace.pc e) in
    let map_on = Dtrace.map_on e in
    let rec attempt () =
      if s.slots <= 0 && s.cslots <= 0 then begin
        end_cycle s None;
        attempt ()
      end
      else if
        s.connect_lat > 0 && map_on
        && (match s.pending with [] -> false | p -> src_blocked p d)
      then begin
        end_cycle s (Some Map);
        attempt ()
      end
      else if d.Dins.is_mem && s.mem_free <= 0 then begin
        end_cycle s (Some Channel);
        attempt ()
      end
      else if d.Dins.is_connect && (not s.shared) && s.cslots <= 0 then begin
        end_cycle s (Some Map);
        attempt ()
      end
      else if ((not d.Dins.is_connect) || s.shared) && s.slots <= 0 then begin
        end_cycle s None;
        attempt ()
      end
      else if
        not
          ((d.Dins.nsrcs < 1 || reg_ready s d.Dins.s0c (Dtrace.sp0 e))
          && (d.Dins.nsrcs < 2 || reg_ready s d.Dins.s1c (Dtrace.sp1 e))
          && (d.Dins.d < 0 || reg_ready s d.Dins.dc (Dtrace.dp e)))
      then begin
        end_cycle s (Some Data);
        attempt ()
      end
      else begin
        (* --- issue --- *)
        let st = s.st in
        if d.Dins.is_connect && not s.shared then begin
          s.cslots <- s.cslots - 1;
          st.Machine.extra_connects <- st.Machine.extra_connects + 1
        end
        else s.slots <- s.slots - 1;
        st.Machine.issued <- st.Machine.issued + 1;
        if d.Dins.is_mem then begin
          s.mem_free <- s.mem_free - 1;
          st.Machine.mem_ops <- st.Machine.mem_ops + 1
        end;
        let done_at = s.cycle + d.Dins.lat in
        match d.Dins.op with
        | Opcode.Alu _ | Opcode.Alui _ | Opcode.Li | Opcode.Move
        | Opcode.Ftoi | Opcode.Fcmp _ | Opcode.Ld _ | Opcode.Mfmap _ ->
            (* [Machine.set_i] skips the hardwired zero *)
            let dp = Dtrace.dp e in
            if dp <> Reg.zero then begin
              s.iready.(dp) <- done_at;
              note_write s Reg.Int dp
            end
        | Opcode.Fli | Opcode.Fmove | Opcode.Fpu _ | Opcode.Itof
        | Opcode.Fld ->
            let dp = Dtrace.dp e in
            s.fready.(dp) <- done_at;
            note_write s Reg.Float dp
        | Opcode.St _ | Opcode.Fst -> ()
        | Opcode.Br _ ->
            st.Machine.branches <- st.Machine.branches + 1;
            if Dtrace.taken e <> d.Dins.hint then begin
              st.Machine.mispredicts <- st.Machine.mispredicts + 1;
              st.Machine.cycles <- st.Machine.cycles + s.penalty;
              st.Machine.lost_branch <-
                st.Machine.lost_branch + (s.penalty * s.issue);
              end_cycle s (Some Redirect)
            end
        | Opcode.Jmp -> st.Machine.branches <- st.Machine.branches + 1
        | Opcode.Jsr ->
            st.Machine.branches <- st.Machine.branches + 1;
            (* execution writes RA's readiness at its {e home} physical
               location (the map was just reset), not at the recorded
               [dp] *)
            if Reg.ra <> Reg.zero then begin
              s.iready.(Reg.ra) <- done_at;
              note_write s Reg.Int Reg.ra
            end
        | Opcode.Rts -> st.Machine.branches <- st.Machine.branches + 1
        | Opcode.Connect ->
            st.Machine.connects <- st.Machine.connects + 1;
            if map_on && s.connect_lat > 0 then
              Array.iter
                (fun (c : Insn.connect) ->
                  s.pending <-
                    (c.Insn.ccls, c.Insn.cmap, c.Insn.ri) :: s.pending)
                d.Dins.connects
        | Opcode.Emit | Opcode.Femit | Opcode.Mapen | Opcode.Mtmap _
        | Opcode.Nop ->
            ()
        | Opcode.Halt ->
            s.halted <- true;
            end_cycle s (Some Fetch)
        | Opcode.Trap | Opcode.Rfe ->
            fail "replay: unreplayable %s in trace at index %d"
              (Opcode.to_string d.Dins.op) idx
      end
    in
    attempt ()
  end

(* --- the memo fast path (DESIGN.md §18) ---------------------------------- *)

exception Sig_overflow

let[@inline] sig_byte buf v =
  if v < 0 || v > 255 then raise Sig_overflow;
  Buffer.add_char buf (Char.unsafe_chr v)

let[@inline] sig_le16 buf v =
  if v < 0 || v > 0xffff then raise Sig_overflow;
  Buffer.add_char buf (Char.unsafe_chr (v land 0xff));
  Buffer.add_char buf (Char.unsafe_chr (v lsr 8))

(** The in-signature: everything {!step}'s blocker checks and issue
    effects can read from the timing state, relative to the open
    cycle — issue-slot and connect-budget phase, channel occupancy,
    this cycle's map-table touches, and the positive scoreboard
    residues.  Two states with equal signatures behave identically on
    any segment (translation-invariance in the cycle; the fuel check
    is re-tested on every hit).  [None] when a component overflows the
    packed form. *)
let signature s =
  let buf = s.sigbuf in
  Buffer.clear buf;
  try
    sig_byte buf s.slots;
    sig_byte buf s.cslots;
    sig_byte buf s.mem_free;
    (match s.pending with
    | [] -> sig_byte buf 0
    | p ->
        (* membership is all [pending_mem] reads, so a sorted encoding
           is canonical *)
        let sorted = List.sort compare p in
        let n = List.length sorted in
        if n > max_pending then raise Sig_overflow;
        sig_byte buf n;
        List.iter
          (fun ((cls : Reg.cls), (kind : Insn.map_kind), i) ->
            sig_byte buf
              ((match cls with Reg.Int -> 0 | Reg.Float -> 1)
              lor match kind with Insn.Read -> 0 | Insn.Write -> 2);
            sig_le16 buf i)
          sorted);
    (* Prune the inflight list to live, distinct writes (in place),
       then emit the residues in canonical order. *)
    s.stamp <- s.stamp + 1;
    let stamp = s.stamp in
    let live = ref 0 in
    for i = 0 to s.n_inflight - 1 do
      let w = s.inflight.(i) in
      let p = w lsr 1 in
      if w land 1 = 0 then begin
        if s.iready.(p) > s.cycle && s.istamp.(p) <> stamp then begin
          s.istamp.(p) <- stamp;
          s.inflight.(!live) <- w;
          incr live
        end
      end
      else if s.fready.(p) > s.cycle && s.fstamp.(p) <> stamp then begin
        s.fstamp.(p) <- stamp;
        s.inflight.(!live) <- w;
        incr live
      end
    done;
    s.n_inflight <- !live;
    if !live > max_inflight then raise Sig_overflow;
    let sub = Array.sub s.inflight 0 !live in
    Array.sort compare sub;
    sig_byte buf !live;
    Array.iter
      (fun w ->
        let p = w lsr 1 in
        let ready = if w land 1 = 0 then s.iready.(p) else s.fready.(p) in
        let residue = ready - s.cycle in
        if residue > max_residue then raise Sig_overflow;
        sig_le16 buf w;
        sig_byte buf residue)
      sub;
    Some (Buffer.contents buf)
  with Sig_overflow -> None

(* The 14 non-cycle stats fields, in one fixed order. *)
let snapshot_stats (st : Machine.stats) =
  [|
    st.Machine.issued;
    st.Machine.connects;
    st.Machine.extra_connects;
    st.Machine.mem_ops;
    st.Machine.branches;
    st.Machine.mispredicts;
    st.Machine.data_stalls;
    st.Machine.map_stalls;
    st.Machine.channel_stalls;
    st.Machine.lost_data;
    st.Machine.lost_map;
    st.Machine.lost_channel;
    st.Machine.lost_branch;
    st.Machine.lost_fetch;
  |]

let apply_dstats (st : Machine.stats) (d : int array) =
  st.Machine.issued <- st.Machine.issued + d.(0);
  st.Machine.connects <- st.Machine.connects + d.(1);
  st.Machine.extra_connects <- st.Machine.extra_connects + d.(2);
  st.Machine.mem_ops <- st.Machine.mem_ops + d.(3);
  st.Machine.branches <- st.Machine.branches + d.(4);
  st.Machine.mispredicts <- st.Machine.mispredicts + d.(5);
  st.Machine.data_stalls <- st.Machine.data_stalls + d.(6);
  st.Machine.map_stalls <- st.Machine.map_stalls + d.(7);
  st.Machine.channel_stalls <- st.Machine.channel_stalls + d.(8);
  st.Machine.lost_data <- st.Machine.lost_data + d.(9);
  st.Machine.lost_map <- st.Machine.lost_map + d.(10);
  st.Machine.lost_channel <- st.Machine.lost_channel + d.(11);
  st.Machine.lost_branch <- st.Machine.lost_branch + d.(12);
  st.Machine.lost_fetch <- st.Machine.lost_fetch + d.(13)

let run_seg_slow s ~idx (seg : Dtrace.seg) =
  let es = seg.Dtrace.seg_entries in
  for i = 0 to Array.length es - 1 do
    step s ~idx:(idx + i) es.(i)
  done

let[@inline] push_inflight s w =
  if s.n_inflight = Array.length s.inflight then begin
    let a = Array.make (2 * s.n_inflight) 0 in
    Array.blit s.inflight 0 a 0 s.n_inflight;
    s.inflight <- a
  end;
  s.inflight.(s.n_inflight) <- w;
  s.n_inflight <- s.n_inflight + 1

let apply_memo s v =
  let st = s.st in
  st.Machine.cycles <- st.Machine.cycles + v.v_dcycles;
  apply_dstats st v.v_dstats;
  s.slots <- v.v_slots;
  s.cslots <- v.v_cslots;
  s.mem_free <- v.v_mem_free;
  s.pending <-
    (if v.v_dcycles > 0 then v.v_pending else v.v_pending @ s.pending);
  s.cycle <- st.Machine.cycles;
  for i = 0 to Array.length v.v_writes - 1 do
    let w = v.v_writes.(i) in
    let residue = w lsr 13 in
    let p = (w lsr 1) land 0xfff in
    if w land 1 = 0 then s.iready.(p) <- s.cycle + residue
    else s.fready.(p) <- s.cycle + residue;
    push_inflight s (w land 0x1fff)
  done

let rec firstn n = function
  | [] -> []
  | x :: r -> if n <= 0 then [] else x :: firstn (n - 1) r

let[@inline] bump_hit = function
  | None -> ()
  | Some m -> m.m_hits <- m.m_hits + 1

let[@inline] bump_fallback = function
  | None -> ()
  | Some m -> m.m_fallbacks <- m.m_fallbacks + 1

(* Replay the visit per-entry while measuring its effect, then store
   the effect under [key].  An effect that does not fit the packed
   forms is simply not stored (the visit already ran exactly). *)
let record_seg s tbl key ~idx stats (seg : Dtrace.seg) =
  let st = s.st in
  let c0 = st.Machine.cycles in
  let snap = snapshot_stats st in
  let pend0 = List.length s.pending in
  let mark = s.n_inflight in
  run_seg_slow s ~idx seg;
  let dcycles = st.Machine.cycles - c0 in
  try
    (* scoreboard writes still in flight at exit, deduped to the final
       (= current) readiness per register *)
    s.stamp <- s.stamp + 1;
    let stamp = s.stamp in
    let nw = ref 0 in
    for i = mark to s.n_inflight - 1 do
      let w = s.inflight.(i) in
      let p = w lsr 1 in
      if p > 0xfff then raise Sig_overflow;
      let stamps = if w land 1 = 0 then s.istamp else s.fstamp in
      if stamps.(p) <> stamp then begin
        stamps.(p) <- stamp;
        let ready = if w land 1 = 0 then s.iready.(p) else s.fready.(p) in
        if ready > s.cycle then begin
          if ready - s.cycle > max_residue then raise Sig_overflow;
          s.inflight.(mark + !nw) <- w;
          (* compact the marked span; dead entries drop *)
          incr nw
        end
      end
    done;
    let writes =
      Array.init !nw (fun i ->
          let w = s.inflight.(mark + i) in
          let p = w lsr 1 in
          let ready = if w land 1 = 0 then s.iready.(p) else s.fready.(p) in
          ((ready - s.cycle) lsl 13) lor w)
    in
    s.n_inflight <- mark + !nw;
    let v =
      {
        v_dcycles = dcycles;
        v_dstats =
          (let now = snapshot_stats st in
           Array.init 14 (fun i -> now.(i) - snap.(i)));
        v_slots = s.slots;
        v_cslots = s.cslots;
        v_mem_free = s.mem_free;
        v_pending =
          (if dcycles > 0 then s.pending
           else firstn (List.length s.pending - pend0) s.pending);
        v_writes = writes;
      }
    in
    Hashtbl.replace tbl key v;
    match stats with
    | None -> ()
    | Some m ->
        m.m_misses <- m.m_misses + 1;
        m.m_bytes <-
          m.m_bytes + String.length key + 120
          + (8 * Array.length writes)
          + (24 * List.length v.v_pending)
  with Sig_overflow -> bump_fallback stats

(** Advance one state over one whole superblock visit: probe the memo
    when the segment is memoisable and the signature fits, fall back to
    the exact per-entry loop otherwise.  [can_memo] is false for
    segments containing Halt/Trap/Rfe (halting flips [halted] — which
    the signature deliberately omits — and trapping raises). *)
let seg_step s ~idx ~can_memo stats (seg : Dtrace.seg) =
  if s.halted then () (* step is a no-op once halted *)
  else if not (s.memo_on && can_memo) then begin
    if s.memo_on then bump_fallback stats;
    run_seg_slow s ~idx seg
  end
  else
    match signature s with
    | None ->
        bump_fallback stats;
        run_seg_slow s ~idx seg
    | Some key -> (
        let tbl =
          match Hashtbl.find_opt s.memo seg.Dtrace.seg_id with
          | Some t -> t
          | None ->
              let t = Hashtbl.create 8 in
              Hashtbl.add s.memo seg.Dtrace.seg_id t;
              t
        in
        match Hashtbl.find_opt tbl key with
        | Some v when s.st.Machine.cycles + v.v_dcycles < s.fuel ->
            bump_hit stats;
            apply_memo s v
        | Some _ ->
            (* the memoised effect would cross the fuel limit: re-run
               per-entry so the failure fires at the exact cycle *)
            bump_fallback stats;
            run_seg_slow s ~idx seg
        | None -> record_seg s tbl key ~idx stats seg)

let result_of s ~output ~checksum =
  if not s.halted then fail "replay: trace exhausted before halt";
  let st = s.st in
  {
    Machine.cycles = st.Machine.cycles;
    issued = st.Machine.issued;
    connects = st.Machine.connects;
    extra_connects = st.Machine.extra_connects;
    mem_ops = st.Machine.mem_ops;
    branches = st.Machine.branches;
    mispredicts = st.Machine.mispredicts;
    data_stalls = st.Machine.data_stalls;
    map_stalls = st.Machine.map_stalls;
    channel_stalls = st.Machine.channel_stalls;
    lost_data = st.Machine.lost_data;
    lost_map = st.Machine.lost_map;
    lost_channel = st.Machine.lost_channel;
    lost_branch = st.Machine.lost_branch;
    lost_fetch = st.Machine.lost_fetch;
    output;
    checksum;
  }

(** Re-time one trace under K configurations in a single pass: the
    token stream is decoded block by block exactly once (each distinct
    superblock's entries exactly once, via the block cursor's identity
    cache), and every state advances on each block before the next is
    decoded.  With [memo] on (the default), each state keeps a
    per-segment timing memo so repeated visits to a hot loop body in
    an already-seen timing state cost one hash probe instead of a
    per-instruction blocker sequence — bit-identical to the memo-off
    path by construction, enforced field-by-field in [test/t_replay.ml].
    [stats] accumulates the memo counters.  The caller guarantees [tr]
    was recorded from [image] under semantic knobs matching {e all} of
    [cfgs]; their timing knobs are free.
    @raise Machine.Simulation_error on fuel exhaustion or a trace that
    could not have come from a replay-safe recording. *)
let replay_batch ?(memo = true) ?stats (cfgs : Config.t array)
    (image : Image.t) (tr : Dtrace.t) =
  if Array.length cfgs = 0 then
    invalid_arg "Trace_replay.replay_batch: no configurations";
  let states = Array.map (fun cfg -> state_of ~memo cfg image) cfgs in
  (* Architectural operands do not depend on latency, so any state's
     predecode serves the cursor. *)
  let pre0 = states.(0).pre in
  let bc = Dtrace.bcursor (Dtrace.arch_of_dins pre0) tr in
  let k = Array.length states in
  (* seg_id -> whether the segment is free of Halt/Trap/Rfe, computed
     once per distinct segment (opcodes are config-independent) *)
  let memoable = Hashtbl.create 32 in
  while Dtrace.bidx bc < tr.Dtrace.n do
    match Dtrace.next_block bc with
    | Dtrace.Lit e ->
        let idx = Dtrace.bidx bc - 1 in
        for j = 0 to k - 1 do
          step states.(j) ~idx e
        done
    | Dtrace.Run seg ->
        let idx = Dtrace.bidx bc - seg.Dtrace.seg_len in
        let can_memo =
          match Hashtbl.find_opt memoable seg.Dtrace.seg_id with
          | Some b -> b
          | None ->
              let ok = ref true in
              Array.iter
                (fun e ->
                  match pre0.(Dtrace.pc e).Dins.op with
                  | Opcode.Halt | Opcode.Trap | Opcode.Rfe -> ok := false
                  | _ -> ())
                seg.Dtrace.seg_entries;
              Hashtbl.replace memoable seg.Dtrace.seg_id !ok;
              !ok
        in
        for j = 0 to k - 1 do
          seg_step states.(j) ~idx ~can_memo stats seg
        done
  done;
  let output = Dtrace.output tr in
  Array.map (fun s -> result_of s ~output ~checksum:tr.Dtrace.checksum) states

let replay ?memo ?stats (cfg : Config.t) (image : Image.t) (tr : Dtrace.t) =
  (replay_batch ?memo ?stats [| cfg |] image tr).(0)
