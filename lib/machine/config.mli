(** Simulated machine configurations (paper section 5.2).

    The base microarchitecture is an in-order superscalar with
    deterministic latencies (Table 1) and CRAY-1-style register
    interlocking.  Any combination of instructions may issue in parallel
    up to the issue rate, except that memory accesses are limited to the
    memory channels.  A 100% cache hit rate is assumed. *)

open Rc_isa

type t = {
  issue : int;  (** instructions issued per cycle: 1, 2, 4 or 8 *)
  mem_channels : int;  (** 2 for 1/2/4-issue, 4 for 8-issue in the paper *)
  lat : Latency.t;  (** load latency 2/4; connect latency 0/1 *)
  ifile : Reg.file;
  ffile : Reg.file;
  model : Rc_core.Model.t;
  connect_dispatch : [ `Shared | `Extra of int ];
      (** how connects consume front-end bandwidth: [`Shared] makes them
          compete for regular issue slots; [`Extra n] gives the dispatch
          logic its own budget of [n] connects per cycle (they update
          the mapping table at dispatch, not in a function unit;
          section 2.4) *)
  extra_stage : bool;
      (** an extra pipeline stage for mapping-table access: mispredicted
          branches cost one additional cycle (Figure 12 scenarios) *)
  trap_handler : string option;  (** function acting as trap handler *)
  fuel : int;  (** maximum simulated cycles *)
}

(** 2 channels below 8-issue, 4 at 8-issue (paper section 5.2). *)
val default_mem_channels : int -> int

(** [connect_dispatch] defaults to [`Extra issue].
    @raise Invalid_argument when [issue < 1]. *)
val v :
  ?issue:int ->
  ?mem_channels:int ->
  ?lat:Latency.t ->
  ?ifile:Reg.file ->
  ?ffile:Reg.file ->
  ?model:Rc_core.Model.t ->
  ?connect_dispatch:[ `Shared | `Extra of int ] ->
  ?extra_stage:bool ->
  ?trap_handler:string ->
  ?fuel:int ->
  unit ->
  t

(** Redirect penalty in cycles paid by a mispredicted branch: one
    front-end bubble, one more with the extra RC decode stage. *)
val mispredict_penalty : t -> int

val pp : Format.formatter -> t -> unit
