(** Compact dynamic-trace records for the trace-replay timing engine:
    one packed [int] per dynamic instruction (pc, resolved physical
    sources/destination, map-enable bit, branch outcome) plus the
    output stream recorded once.  See DESIGN.md §14. *)

type t = {
  n : int;  (** dynamic instructions recorded *)
  packed : int array;  (** length [n], one packed entry each *)
  output : int64 list;  (** the emitted stream, in emission order *)
  checksum : int64;  (** {!Machine.checksum_of_output} of [output] *)
}

(** {2 Packed-entry accessors} *)

val pack :
  pc:int -> sp0:int -> sp1:int -> dp:int -> map_on:bool -> taken:bool -> int

val taken : int -> bool
val map_on : int -> bool

(** Resolved physical source/destination registers; [-1] when absent. *)
val sp0 : int -> int

val sp1 : int -> int
val dp : int -> int
val pc : int -> int

(** Largest pc / physical register number an entry can hold. *)
val max_pc : int

val max_reg : int

(** {2 Recording} *)

type builder

val builder : ?hint:int -> unit -> builder

(** Mark the recording unreplayable (trap, rfe, interrupt injection);
    {!finish} will return [None]. *)
val invalidate : builder -> unit

(** Append one issued instruction; a value that does not fit the packed
    layout invalidates the builder instead of raising. *)
val add :
  builder ->
  pc:int ->
  sp0:int ->
  sp1:int ->
  dp:int ->
  map_on:bool ->
  taken:bool ->
  unit

val finish : builder -> output:int64 list -> checksum:int64 -> t option

(** Approximate heap footprint in bytes, for cache accounting. *)
val bytes : t -> int

(** A copy with entry [i] replaced — test hook for planting a
    divergence the equivalence check must catch.
    @raise Invalid_argument when [i] is out of range. *)
val sabotage : t -> int -> int -> t
