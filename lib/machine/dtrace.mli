(** Compact dynamic-trace records for the trace-replay timing engine:
    per dynamic instruction the pc, resolved physical registers,
    map-enable bit and branch outcome, compressed into a no-scan
    byte-packed token stream (run-length tokens for straight-line code,
    flag byte + zigzag varints otherwise) plus the output stream stored
    once.  Entries decode back to the packed-[int] form through a
    {!cursor}.  See DESIGN.md §14 for the encoding. *)

type t = {
  n : int;  (** dynamic instructions recorded *)
  data : Bytes.t;  (** the RUN/LITERAL token stream *)
  out : Bytes.t;  (** emitted output stream, 8 LE bytes per value *)
  checksum : int64;  (** {!Machine.checksum_of_output} of the output *)
}

(** {2 Packed-entry form}

    The in-flight representation: one OCaml [int] holding pc, resolved
    sp0/sp1/dp, map-enable and branch outcome.  The recorder appends
    these; the cursor yields them back. *)

val pack :
  pc:int -> sp0:int -> sp1:int -> dp:int -> map_on:bool -> taken:bool -> int

val taken : int -> bool
val map_on : int -> bool

(** Resolved physical source/destination registers; [-1] when absent. *)
val sp0 : int -> int

val sp1 : int -> int
val dp : int -> int
val pc : int -> int

(** Largest pc / physical register number an entry can hold. *)
val max_pc : int

val max_reg : int

(** Every value a recording of this shape can produce fits the packed
    layout — checked once up front so the per-instruction recording
    path carries no range checks. *)
val fits : code_len:int -> ireg_total:int -> freg_total:int -> bool

(** {2 Architectural-register tables}

    The seed of the compression model's per-pc register prediction:
    the architectural operand fields of the instruction at each pc
    ([-1] where absent), from the same {!Rc_isa.Dins} predecode the
    replayer runs on.  Resolved registers are stored as deltas against
    the last sighting of the same pc (architectural on first
    sighting), so both {!finish} and the {!cursor} need the table of
    the trace's image. *)

type arch

val arch_of_dins : Rc_isa.Dins.t array -> arch

(** Test hook: an arch table from raw per-pc operand arrays ([-1] =
    absent).
    @raise Invalid_argument on length mismatch. *)
val arch_of_arrays : s0:int array -> s1:int array -> d:int array -> arch

(** {2 Recording}

    The builder is a streaming encoder: entries compress as they are
    recorded (the plain common case is a few compares and a counter
    bump, allocation-free), so no entry array ever exists and the heap
    cost of an attached recorder is the compressed stream itself.
    [arch] must be the recorded image's table; [hint] is the expected
    entry count. *)

type builder

val builder : ?hint:int -> arch -> builder

(** Mark the recording unreplayable (trap, rfe, interrupt injection);
    {!finish} will return [None]. *)
val invalidate : builder -> unit

(** Append one issued instruction.  No range checks: the caller
    established {!fits} before attaching the recorder. *)
val add :
  builder ->
  pc:int ->
  sp0:int ->
  sp1:int ->
  dp:int ->
  map_on:bool ->
  taken:bool ->
  unit

(** {!add} of a packed entry. *)
val add_packed : builder -> int -> unit

(** Seal the recording, or [None] when it hit an unreplayable event.
    [output]/[checksum] come from the recording run's result. *)
val finish : builder -> output:int64 list -> checksum:int64 -> t option

(** The recorded output stream, decoded (fresh list per call). *)
val output : t -> int64 list

(** Exact resident heap size of the trace in bytes, O(1). *)
val bytes : t -> int

(** {2 Serialization}

    A fixed little-endian framing of the four record fields —
    self-contained, because the arch table belongs to the {e image},
    not the trace: the on-disk store saves only these bytes, and the
    replayer reconstructs the table from its own predecode. *)

val to_string : t -> string

(** Decode a {!to_string} image; [None] on any framing violation
    (short buffer, negative or inconsistent lengths, ragged output
    stream).  Token-stream corruption {e within} a well-framed blob
    surfaces later, as the cursor's [Invalid_argument]. *)
val of_string : string -> t option

(** {2 Decoding} *)

(** A streaming decoder over the token stream: {!next} yields entries
    in packed-[int] form without materialising an array.  The [arch]
    must be the trace image's table (any latency — architectural
    operands do not depend on it). *)
type cursor

val cursor : arch -> t -> cursor

(** The next entry.
    @raise Invalid_argument past entry [n - 1] or on a corrupt
    stream. *)
val next : cursor -> int

(** {2 Superblock decoding}

    The RUN tokens delimit the stream's straight-line superblocks: a
    maximal sequence of RUN tokens is one dynamic visit to a segment
    whose entries are all plain.  Such a visit is fully determined by
    (start pc, length, map bit, prediction-table version) — plain
    entries never touch the tables — so the block cursor interns that
    identity: every repeated visit to a hot loop body yields the same
    dense [seg_id] and the same cached entry array, decoded exactly
    once.  The replay engine keys its timing memo by [seg_id]
    (DESIGN.md §18). *)

type seg = {
  seg_id : int;  (** dense intern index, first-sighting order *)
  seg_start : int;  (** pc of the first entry *)
  seg_len : int;  (** dynamic entries in the visit (>= 1) *)
  seg_map : bool;  (** the map-enable bit of every entry *)
  seg_entries : int array;  (** the packed entries, decoded once *)
}

type block =
  | Lit of int  (** one literal entry, packed *)
  | Run of seg  (** one whole superblock visit *)

type bcursor

val bcursor : arch -> t -> bcursor

(** Interned segment identities so far; [seg_id] values are dense
    below this. *)
val bsegs : bcursor -> int

(** Entries consumed so far — the index of the next entry. *)
val bidx : bcursor -> int

(** The next block; consumes [seg_len] entries at once in the [Run]
    case.
    @raise Invalid_argument past entry [n - 1] or on a corrupt
    stream. *)
val next_block : bcursor -> block

(** Every entry decoded to packed form — test and tooling hook; the
    replay engine streams through {!cursor} instead. *)
val entries : arch -> t -> int array

(** A copy with entry [i] replaced — test hook for planting a
    divergence the equivalence check must catch.  [entry] must decode
    against the same [arch] (its pc in range).
    @raise Invalid_argument when [i] is out of range. *)
val sabotage : arch -> t -> int -> int -> t
