(** The trace-replay timing engine: record the dynamic instruction
    stream once, then re-time it under any configuration whose semantic
    knobs match — reproducing {!Machine.result} exactly.  Replay is
    entry-driven, so {!replay_batch} decodes the compact trace once
    while K independent timing states consume it in lockstep.  See
    DESIGN.md §14 for the trace format and safety conditions. *)

open Rc_isa

(** Can a recording made under this configuration be replayed?  True
    when no trap handler is configured (traps, [rfe] and injected
    interrupts redirect control in ways the pure timing replayer does
    not model; they also invalidate the recording itself). *)
val replay_safe : Config.t -> bool

(** Execute the image with a recorder attached: the ordinary
    execution-driven result plus the finished trace, or [None] when the
    run hit an unreplayable event or the shape cannot fit the packed
    layout ({!Dtrace.fits}, checked once up front). *)
val record : Config.t -> Image.t -> Machine.result * Dtrace.t option

(** Re-time [trace] under a configuration.  The caller guarantees the
    trace was recorded from this image under matching semantic knobs
    (reset model, register-file shapes, no traps); timing knobs — issue
    rate, channels, latencies, extra stage, connect dispatch — are free.
    @raise Machine.Simulation_error on fuel exhaustion or a foreign
    trace. *)
val replay : Config.t -> Image.t -> Dtrace.t -> Machine.result

(** [replay_batch cfgs image trace] re-times [trace] under every
    configuration of [cfgs] in one pass over the trace: each entry is
    decoded exactly once and advances all K timing states before the
    next is decoded.  Equivalent to [Array.map (fun c -> replay c image
    trace) cfgs] — bit-identical results, enforced by [test/t_replay.ml]
    — at roughly the decode cost of a single replay.
    @raise Invalid_argument on an empty configuration array.
    @raise Machine.Simulation_error as {!replay}. *)
val replay_batch : Config.t array -> Image.t -> Dtrace.t -> Machine.result array
