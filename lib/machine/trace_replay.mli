(** The trace-replay timing engine: record the dynamic instruction
    stream once, then re-time it under any configuration whose semantic
    knobs match — reproducing {!Machine.result} exactly.  Replay is
    entry-driven, so {!replay_batch} decodes the compact trace once
    while K independent timing states consume it in lockstep.  See
    DESIGN.md §14 for the trace format and safety conditions. *)

open Rc_isa

(** Can a recording made under this configuration be replayed?  True
    when no trap handler is configured (traps, [rfe] and injected
    interrupts redirect control in ways the pure timing replayer does
    not model; they also invalidate the recording itself). *)
val replay_safe : Config.t -> bool

(** Execute the image with a recorder attached: the ordinary
    execution-driven result plus the finished trace, or [None] when the
    run hit an unreplayable event or the shape cannot fit the packed
    layout ({!Dtrace.fits}, checked once up front). *)
val record : Config.t -> Image.t -> Machine.result * Dtrace.t option

(** Cumulative superblock-timing-memo counters (DESIGN.md §18): each
    memoisable-segment visit lands in exactly one of [m_hits] (served
    by a memo probe), [m_misses] (replayed per-entry and recorded into
    the memo) or [m_fallbacks] (replayed per-entry because the visit
    was ineligible — halting segment, fuel boundary, or signature/value
    overflow); [m_bytes] approximates the memo tables' heap
    footprint.  Pass one record to several replay calls to aggregate. *)
type memo_stats = {
  mutable m_hits : int;
  mutable m_misses : int;
  mutable m_fallbacks : int;
  mutable m_bytes : int;
}

(** A fresh all-zero counter record. *)
val memo_stats : unit -> memo_stats

(** Re-time [trace] under a configuration.  The caller guarantees the
    trace was recorded from this image under matching semantic knobs
    (reset model, register-file shapes, no traps); timing knobs — issue
    rate, channels, latencies, extra stage, connect dispatch — are free.
    [memo] (default true) enables the superblock timing memo: repeated
    visits to a straight-line segment in an already-seen timing state
    are served by one hash probe instead of the per-instruction blocker
    loop, with an exact per-entry fallback whenever a visit does not
    fit the memo — results are bit-identical either way.  [stats]
    accumulates the memo counters.
    @raise Machine.Simulation_error on fuel exhaustion or a foreign
    trace. *)
val replay :
  ?memo:bool ->
  ?stats:memo_stats ->
  Config.t ->
  Image.t ->
  Dtrace.t ->
  Machine.result

(** [replay_batch cfgs image trace] re-times [trace] under every
    configuration of [cfgs] in one pass over the trace: each distinct
    superblock is decoded exactly once and every block advances all K
    timing states before the next is decoded.  Equivalent to
    [Array.map (fun c -> replay c image trace) cfgs] — bit-identical
    results, enforced by [test/t_replay.ml] — at roughly the decode
    cost of a single replay.  [memo]/[stats] as {!replay}; each state
    keeps its own memo (timing effects are per-configuration).
    @raise Invalid_argument on an empty configuration array.
    @raise Machine.Simulation_error as {!replay}. *)
val replay_batch :
  ?memo:bool ->
  ?stats:memo_stats ->
  Config.t array ->
  Image.t ->
  Dtrace.t ->
  Machine.result array
