(** The execution-driven simulator: functional execution of
    architectural-form machine code with cycle-accurate in-order
    superscalar timing.

    Each cycle, instructions issue in program order until the issue rate
    is reached or an instruction cannot issue because:

    - a source or destination physical register is still being produced
      (CRAY-1-style interlock; results become ready [latency] cycles
      after issue);
    - no memory channel is free this cycle;
    - with 1-cycle connect latency, the instruction's mapping-table
      entries were updated by a connect issued this same cycle (the
      zero-cycle implementation forwards through dispatch instead,
      section 2.4, and never stalls for this reason);
    - a mispredicted branch redirects fetch and pays the front-end
      penalty.

    Register accesses go through the register mapping table whenever the
    PSW map-enable flag is set; [jsr]/[rts] reset the table to home
    (section 4.1); traps clear map-enable so handlers address core
    registers directly (section 4.3). *)

open Rc_isa

exception Simulation_error of string

type stats = {
  mutable cycles : int;
  mutable issued : int;  (** dynamic instructions, connects included *)
  mutable connects : int;
  mutable extra_connects : int;
      (** connects dispatched through the extra connect budget — they do
          not consume regular issue slots (section 2.4) *)
  mutable mem_ops : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable data_stalls : int;  (** group-ending operand-not-ready events *)
  mutable map_stalls : int;  (** 1-cycle-connect same-group conflicts *)
  mutable channel_stalls : int;
  mutable lost_data : int;  (** slots lost to operand interlock *)
  mutable lost_map : int;
      (** slots lost to mapping-table conflicts / connect budget *)
  mutable lost_channel : int;  (** slots lost to busy memory channels *)
  mutable lost_branch : int;
      (** slots lost to control redirects (mispredict, trap, rfe),
          redirect bubbles included *)
  mutable lost_fetch : int;  (** slots lost to fetch exhaustion (halt) *)
}

(** Per-cycle observation delivered to an attached observer: the slots
    issued and lost during one {!run_cycle} (a mispredicted branch's
    redirect bubbles are folded into the sample of the cycle that
    issued it, so [s_cycles > 1] there). *)
type cycle_sample = {
  s_cycle : int;  (** index of the first cycle covered by the sample *)
  s_cycles : int;  (** cycles covered: 1 + any redirect bubbles *)
  s_pc : int;  (** pc at the start of the cycle *)
  s_issued : int;  (** instructions issued, connects included *)
  s_connects : int;
  s_lost_data : int;
  s_lost_map : int;
  s_lost_channel : int;
  s_lost_branch : int;
  s_lost_fetch : int;
}

type t = {
  cfg : Config.t;
  image : Image.t;
  pre : Dins.t array;
      (** [image.code] predecoded once under [cfg.lat] (see
          {!Rc_isa.Dins}): the issue loop reads flat scalar fields
          instead of re-matching [Insn.t] and allocating per operand *)
  iregs : int64 array;
  fregs : float array;
  iready : int array;
  fready : int array;
  imap : Rc_core.Map_table.t;
  fmap : Rc_core.Map_table.t;
  psw : Rc_core.Psw.t;
  mem : Bytes.t;
  mutable pc : int;
  mutable halted : bool;
  mutable out : int64 array;
      (** the output stream, a growable buffer in emission order; only
          [out.(0 .. out_len - 1)] is meaningful *)
  mutable out_len : int;
  stats : stats;
  mutable epc : int;
  mutable saved_psw : Rc_core.Psw.t option;
  mutable pending_interrupt : bool;
  mutable observer : (cycle_sample -> unit) option;
      (** when set, called once per {!run_cycle} with that cycle's slot
          accounting; [None] (the default) costs one untaken branch per
          cycle *)
  mutable recorder : Dtrace.builder option;
      (** when set, every issued instruction appends its resolved
          operands and branch outcome to the builder (see
          {!Rc_machine.Dtrace}); [None] (the default) costs one untaken
          branch per issued instruction *)
  mutable rec_taken : bool;  (** recorder scratch: last branch outcome *)
}

(** A fresh machine with data initialised, SP at the stack top and PC at
    the image entry. *)
val create : Config.t -> Image.t -> t

(** The register-state view used by {!Rc_core.Context} for context
    switching. *)
val context_view : t -> Rc_core.Context.machine_view

(** Request an external interrupt; taken at the next cycle boundary. *)
val inject_interrupt : t -> unit

(** Attach (or clear) the per-cycle observer. *)
val set_observer : t -> (cycle_sample -> unit) option -> unit

(** Attach (or clear) the dynamic-trace recorder (see {!Dtrace}).  The
    caller must have established {!Dtrace.fits} for this machine's code
    length and register files: the recording path performs no range
    checks. *)
val set_recorder : t -> Dtrace.builder option -> unit

(** The emitted stream so far, in emission order. *)
val output_list : t -> int64 list

(** Simulate one cycle (issue one in-order group). *)
val run_cycle : t -> unit

type result = {
  cycles : int;
  issued : int;
  connects : int;
  extra_connects : int;
  mem_ops : int;
  branches : int;
  mispredicts : int;
  data_stalls : int;
  map_stalls : int;
  channel_stalls : int;
  lost_data : int;
  lost_map : int;
  lost_channel : int;
  lost_branch : int;
  lost_fetch : int;
  output : int64 list;
  checksum : int64;
}

(** Sum of the five slot-attribution counters. *)
val lost_slots : result -> int

(** The accounting identity the attribution maintains on every
    configuration: [cycles * issue = (issued - extra_connects) +
    lost_slots].  Connects dispatched through the extra budget do not
    consume issue slots and are excluded. *)
val slot_invariant_holds : issue:int -> result -> bool

(** Same fold as {!Rc_interp.Interp.checksum_of_output}. *)
val checksum_of_output : int64 list -> int64

val finish : t -> result

(** Run until [Halt].
    @raise Simulation_error on bad addresses, PC escapes or fuel
    exhaustion. *)
val run_machine : t -> result

(** [create] followed by [run_machine]. *)
val run : Config.t -> Image.t -> result
