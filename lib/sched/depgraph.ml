(** Dependence DAG over the instructions of one basic block (physical
    form, before connect insertion).

    Edges carry the minimum issue distance in cycles: RAW edges carry the
    producer's latency, WAR edges zero, WAW edges the first writer's
    latency (CRAY-1 style interlocking holds a destination busy until the
    write completes).  Memory edges are conservative except that
    SP-relative accesses with disjoint byte ranges and no intervening SP
    redefinition are independent — spill traffic to distinct slots can
    overlap.  Calls are scheduling barriers; block terminators are
    pinned at the end. *)

open Rc_isa

type edge = { src : int; dst : int; lat : int }

type t = {
  insns : Insn.t array;
  succs : (int * int) list array;  (** (successor, latency) *)
  preds : (int * int) list array;
  n_term : int;  (** trailing pinned terminator instructions *)
}

let is_terminator (i : Insn.t) =
  match i.Insn.op with
  | Opcode.Br _ | Opcode.Jmp | Opcode.Rts | Opcode.Halt | Opcode.Trap
  | Opcode.Rfe ->
      true
  | _ -> false

let is_barrier (i : Insn.t) =
  match i.Insn.op with
  | Opcode.Jsr | Opcode.Mapen | Opcode.Connect | Opcode.Mfmap _
  | Opcode.Mtmap _ ->
      true
  | _ -> false

(* Byte range touched by a memory instruction, for disambiguation. *)
let mem_range (i : Insn.t) =
  let off = Int64.to_int i.Insn.imm in
  match i.Insn.op with
  | Opcode.Ld Opcode.W1 | Opcode.St Opcode.W1 -> (off, off + 1)
  | _ -> (off, off + 8)

let mem_base (i : Insn.t) =
  match i.Insn.op with
  | Opcode.Ld _ | Opcode.Fld -> Some i.Insn.srcs.(0)
  | Opcode.St _ | Opcode.Fst -> Some i.Insn.srcs.(1)
  | _ -> None

let build (lat : Latency.t) (insns : Insn.t array) =
  let n = Array.length insns in
  let succs = Array.make n [] and preds = Array.make n [] in
  let have = Hashtbl.create 64 in
  let add_edge src dst l =
    (* The first recorded edge between a pair wins; RAW edges (the only
       ones carrying real latency) are always recorded first for a pair
       because the reader's source scan precedes every later writer. *)
    if src <> dst && not (Hashtbl.mem have (src, dst)) then begin
      Hashtbl.replace have (src, dst) ();
      succs.(src) <- (dst, l) :: succs.(src);
      preds.(dst) <- (src, l) :: preds.(dst)
    end
  in
  (* Register dependences via last-def / uses-since-def tracking. *)
  let key (o : Insn.operand) = (o.Insn.cls, o.Insn.r) in
  let last_def : ((Reg.cls * int), int) Hashtbl.t = Hashtbl.create 32 in
  let uses_since : ((Reg.cls * int), int list) Hashtbl.t = Hashtbl.create 32 in
  (* SP version for memory disambiguation. *)
  let sp_version = ref 0 in
  let last_stores = ref [] (* (index, base_key, base_version, range) *) in
  let loads_since = ref [] in
  let last_barrier = ref (-1) in
  let last_emit = ref (-1) in
  for idx = 0 to n - 1 do
    let i = insns.(idx) in
    if !last_barrier >= 0 then add_edge !last_barrier idx 1;
    (* RAW / WAR *)
    Array.iter
      (fun o ->
        let k = key o in
        (match Hashtbl.find_opt last_def k with
        | Some d -> add_edge d idx (Latency.of_opcode lat insns.(d).Insn.op)
        | None -> ());
        let us = try Hashtbl.find uses_since k with Not_found -> [] in
        Hashtbl.replace uses_since k (idx :: us))
      i.Insn.srcs;
    (match i.Insn.dst with
    | Some o ->
        let k = key o in
        (match Hashtbl.find_opt last_def k with
        | Some d -> add_edge d idx (Latency.of_opcode lat insns.(d).Insn.op)
        | None -> ());
        (match Hashtbl.find_opt uses_since k with
        | Some us -> List.iter (fun u -> add_edge u idx 0) us
        | None -> ());
        Hashtbl.replace last_def k idx;
        Hashtbl.replace uses_since k [];
        if k = (Reg.Int, Reg.sp) then incr sp_version
    | None -> ());
    (* Memory ordering. *)
    if Insn.is_mem i then begin
      let base =
        match mem_base i with Some o -> key o | None -> assert false
      in
      let bver = if base = (Reg.Int, Reg.sp) then !sp_version else -1 in
      let range = mem_range i in
      let disjoint (b2, v2, (lo2, hi2)) =
        base = (Reg.Int, Reg.sp) && b2 = base && bver = v2
        &&
        let lo, hi = range in
        hi <= lo2 || hi2 <= lo
      in
      if Insn.is_store i then begin
        List.iter
          (fun (s, b2, v2, r2) ->
            if not (disjoint (b2, v2, r2)) then add_edge s idx 1)
          !last_stores;
        List.iter
          (fun (l, b2, v2, r2) ->
            if not (disjoint (b2, v2, r2)) then add_edge l idx 0)
          !loads_since;
        last_stores := (idx, base, bver, range) :: !last_stores;
        loads_since := []
      end
      else
        List.iter
          (fun (s, b2, v2, r2) ->
            if not (disjoint (b2, v2, r2)) then add_edge s idx 1)
          !last_stores;
      if Insn.is_load i then loads_since := (idx, base, bver, range) :: !loads_since
    end;
    (* Output stream order. *)
    (match i.Insn.op with
    | Opcode.Emit | Opcode.Femit ->
        if !last_emit >= 0 then add_edge !last_emit idx 0;
        last_emit := idx
    | _ -> ());
    if is_barrier i then begin
      for j = 0 to idx - 1 do
        add_edge j idx 1
      done;
      last_barrier := idx
    end
  done;
  (* Pin terminators at the end, in order. *)
  let n_term = ref 0 in
  let continue_ = ref true in
  for idx = n - 1 downto 0 do
    if !continue_ && is_terminator insns.(idx) then incr n_term
    else continue_ := false
  done;
  let first_term = n - !n_term in
  for t = first_term to n - 1 do
    for j = 0 to t - 1 do
      if j < first_term || j = t - 1 then add_edge j t 0
    done
  done;
  { insns; succs; preds; n_term = !n_term }

(** Longest-path-to-exit priority for list scheduling. *)
let heights t =
  let n = Array.length t.insns in
  let h = Array.make n 0 in
  for idx = n - 1 downto 0 do
    List.iter
      (fun (s, l) -> h.(idx) <- max h.(idx) (h.(s) + max 1 l))
      t.succs.(idx)
  done;
  h
