(** Cycle-driven list scheduling of each basic block for a given issue
    width and memory-channel count.  The output is a new linear order;
    the simulator re-derives exact timing from it, so the scheduler is a
    heuristic that tries to pack independent instructions into the same
    issue group and hide load and FP latencies. *)

open Rc_isa

type config = { width : int; mem_channels : int; lat : Latency.t }

let config ?(width = 4) ?(mem_channels = 2) ?(lat = Latency.default) () =
  { width; mem_channels; lat }

let schedule_block cfg (insns : Insn.t array) =
  let n = Array.length insns in
  if n <= 1 then insns
  else begin
    let g = Depgraph.build cfg.lat insns in
    let height = Depgraph.heights g in
    let unsched_preds = Array.map List.length g.Depgraph.preds in
    let ready_time = Array.make n 0 in
    let scheduled = Array.make n false in
    let order = ref [] in
    let count = ref 0 in
    let cycle = ref 0 in
    while !count < n do
      let slots = ref cfg.width and mem = ref cfg.mem_channels in
      let progressed = ref true in
      while !progressed && !slots > 0 do
        progressed := false;
        (* Pick the ready instruction with the greatest height; break
           ties towards original program order. *)
        let best = ref (-1) in
        for idx = n - 1 downto 0 do
          if
            (not scheduled.(idx))
            && unsched_preds.(idx) = 0
            && ready_time.(idx) <= !cycle
            && ((not (Insn.is_mem insns.(idx))) || !mem > 0)
          then
            if
              !best = -1
              || height.(idx) > height.(!best)
              || (height.(idx) = height.(!best) && idx < !best)
            then best := idx
        done;
        if !best >= 0 then begin
          let idx = !best in
          scheduled.(idx) <- true;
          incr count;
          decr slots;
          if Insn.is_mem insns.(idx) then decr mem;
          order := idx :: !order;
          List.iter
            (fun (s, l) ->
              unsched_preds.(s) <- unsched_preds.(s) - 1;
              ready_time.(s) <- max ready_time.(s) (!cycle + l))
            g.Depgraph.succs.(idx);
          progressed := true
        end
      done;
      incr cycle
    done;
    let order = Array.of_list (List.rev !order) in
    Array.map (fun idx -> insns.(idx)) order
  end

(** Schedule every block of a machine program in place. *)
let run cfg (m : Mcode.t) =
  List.iter
    (fun (f : Mcode.func) ->
      List.iter
        (fun (b : Mcode.block) ->
          let arr = Array.of_list b.Mcode.insns in
          b.Mcode.insns <- Array.to_list (schedule_block cfg arr))
        f.Mcode.blocks)
    m.Mcode.funcs
