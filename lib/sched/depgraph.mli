(** Dependence DAG over the instructions of one basic block (physical
    form, before connect insertion).

    Edges carry the minimum issue distance in cycles: RAW edges carry
    the producer's latency, WAR edges zero, WAW edges the first writer's
    latency (CRAY-1-style interlocking holds a destination busy until
    the write completes).  Memory edges are conservative except that
    SP-relative accesses with disjoint byte ranges and no intervening SP
    redefinition are independent — spill traffic to distinct slots can
    overlap.  Calls are scheduling barriers; block terminators are
    pinned at the end; emits keep their program order (they are the
    observable output stream). *)

open Rc_isa

type edge = { src : int; dst : int; lat : int }

type t = {
  insns : Insn.t array;
  succs : (int * int) list array;  (** (successor, latency) *)
  preds : (int * int) list array;
  n_term : int;  (** trailing pinned terminator instructions *)
}

val is_terminator : Insn.t -> bool
val is_barrier : Insn.t -> bool
val build : Latency.t -> Insn.t array -> t

(** Longest-path-to-exit priority for list scheduling. *)
val heights : t -> int array
