(** Cycle-driven list scheduling of each basic block for a given issue
    width and memory-channel count.  The output is a new linear order;
    the simulator re-derives exact timing from it, so the scheduler is a
    heuristic that packs independent instructions into issue groups and
    hides load and FP latencies. *)

open Rc_isa

type config = { width : int; mem_channels : int; lat : Latency.t }

val config : ?width:int -> ?mem_channels:int -> ?lat:Latency.t -> unit -> config

(** Schedule one block: returns a dependence-respecting permutation of
    the same instruction records. *)
val schedule_block : config -> Insn.t array -> Insn.t array

(** Schedule every block of a machine program in place. *)
val run : config -> Mcode.t -> unit
