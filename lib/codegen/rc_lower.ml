(** Connect insertion: rewrite machine code from {e physical form}
    (operands are physical registers, possibly extended) into
    {e architectural form} (operands are core-sized indices, with
    [Connect] instructions steering the mapping table) — the compiler
    support of paper section 3.

    The pass emulates the register mapping table ({!Rc_core.Map_table},
    with the configured automatic-reset model) instruction by
    instruction:

    - a source needing physical register [p] uses any index whose read
      map already points at [p]; otherwise a victim index is chosen (the
      one whose current target has the farthest next use) and a
      connect-use is inserted;
    - a destination needing [p] uses an index whose write map points at
      [p] (under model 3 this is only ever the home index) or gets a
      connect-def;
    - under model 3 the write's automatic read-map update makes the
      written value readable with no further connect — the "connect-use
      is not required prior to instruction 3" example of section 3.

    Every block has a compiler-chosen {e entry state} for the mapping
    table, and each block ends by steering the table to the entry state
    its successors expect (all successors of a block are arranged to
    agree).  The default entry state is the home state — it holds at
    power-up and is re-established in hardware by every [jsr]/[rts]
    (section 4.1).  For hot loops, the pass {e pins} the most-read
    extended registers onto map indices whose home registers the loop
    never touches: the pins are installed once in the loop's
    predecessors and live across all iterations, so steady-state
    iterations pay no connect for those reads.  This is the "proper
    selection [of] the register map entry" that minimises artificial
    dependences (section 3).

    Terminator sources are routed through reserved core temporaries when
    they live in extended registers that are not pinned at the block's
    exit, so terminators never leave the table in an unexpected
    state. *)

open Rc_isa
open Rc_core

type config = {
  ifile : Reg.file;
  ffile : Reg.file;
  model : Model.t;
  combine : bool;
      (** use connect-use-use / connect-def-use / connect-def-def *)
  pin_loops : bool;  (** pin hot extended values across loops *)
}

let config ?(model = Model.default) ?(combine = true) ?(pin_loops = true)
    ~ifile ~ffile () =
  { ifile; ffile; model; combine; pin_loops }

let file_of cfg = function Reg.Int -> cfg.ifile | Reg.Float -> cfg.ffile

let is_terminator (i : Insn.t) =
  match i.Insn.op with
  | Opcode.Br _ | Opcode.Jmp | Opcode.Rts | Opcode.Halt -> true
  | _ -> false

(* --- machine-level CFG -------------------------------------------------- *)

type binfo = {
  blk : Mcode.block;
  mutable preds : int list;
  mutable succs : int list;
}

let block_cfg (f : Mcode.func) =
  let info : (int, binfo) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Mcode.block) ->
      Hashtbl.replace info b.Mcode.label { blk = b; preds = []; succs = [] })
    f.Mcode.blocks;
  let add_edge a b =
    match (Hashtbl.find_opt info a, Hashtbl.find_opt info b) with
    | Some ia, Some ib ->
        if not (List.mem b ia.succs) then ia.succs <- b :: ia.succs;
        if not (List.mem a ib.preds) then ib.preds <- a :: ib.preds
    | _ -> () (* cross-function target: a call, not an edge *)
  in
  let rec walk = function
    | [] -> ()
    | [ (b : Mcode.block) ] -> walk_block b None
    | b :: (b2 : Mcode.block) :: rest ->
        walk_block b (Some b2.Mcode.label);
        walk (b2 :: rest)
  and walk_block (b : Mcode.block) next =
    let falls = ref true in
    List.iter
      (fun (i : Insn.t) ->
        match i.Insn.op with
        | Opcode.Br _ -> add_edge b.Mcode.label i.Insn.target
        | Opcode.Jmp ->
            add_edge b.Mcode.label i.Insn.target;
            falls := false
        | Opcode.Rts | Opcode.Halt -> falls := false
        | _ -> ())
      b.Mcode.insns;
    match next with
    | Some n when !falls -> add_edge b.Mcode.label n
    | _ -> ()
  in
  walk f.Mcode.blocks;
  info

(* --- loop pinning -------------------------------------------------------- *)

(** One pin: this architectural index reads this physical register on
    entry to the block. *)
type pin = { pcls : Reg.cls; pidx : int; pphys : int }

(** Physical registers referenced (read or written) by a block, and
    extended-register read counts. *)
let scan_block cfg (b : Mcode.block) =
  let referenced = Hashtbl.create 32 in
  let ext_reads = Hashtbl.create 16 in
  List.iter
    (fun (i : Insn.t) ->
      Array.iter
        (fun (o : Insn.operand) ->
          Hashtbl.replace referenced (o.Insn.cls, o.Insn.r) ();
          if Reg.is_extended (file_of cfg o.Insn.cls) o.Insn.r then
            Hashtbl.replace ext_reads (o.Insn.cls, o.Insn.r)
              (1 + try Hashtbl.find ext_reads (o.Insn.cls, o.Insn.r) with Not_found -> 0))
        i.Insn.srcs;
      Option.iter
        (fun (o : Insn.operand) ->
          Hashtbl.replace referenced (o.Insn.cls, o.Insn.r) ())
        i.Insn.dst)
    b.Mcode.insns;
  (referenced, ext_reads)

(** Keep some indices free for dynamic victim needs inside the loop. *)
let min_free_victims = 4

let victim_indices cfg cls =
  let file = file_of cfg cls in
  let pinned = Reg.pinned_indices cls in
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if List.mem i pinned then acc else i :: acc)
  in
  collect (file.Reg.core - 1) []

(** Find pinnable {e loop regions} and choose their pins.  A region is a
    chain of 2-block loops [Hi <-> Bi] where each loop's exit is the next
    loop's header (the shape produced by unrolling: unrolled loop
    followed by the residual loop), closed by a final exit block whose
    only predecessor is the last header.  All blocks of the region plus
    the final exit share one entry state; the region's entry
    predecessors (each with the first header as only successor) install
    it.  Returns the entry-pin table (label -> pins). *)
let analyze_pins cfg (f : Mcode.func) info =
  let pins : (int, pin list) Hashtbl.t = Hashtbl.create 8 in
  let assigned = Hashtbl.create 8 in
  (* header -> (body, exit) for every 2-block loop *)
  let by_header = Hashtbl.create 8 in
  let exits = Hashtbl.create 8 in
  List.iter
    (fun (body : Mcode.block) ->
      let bl = body.Mcode.label in
      let bi = Hashtbl.find info bl in
      match (bi.succs, bi.preds) with
      | [ h ], [ h' ] when h = h' && h <> bl -> (
          match Hashtbl.find_opt info h with
          | Some hi -> (
              match List.filter (fun s -> s <> bl) hi.succs with
              | [ e ] when e <> h && e <> bl ->
                  Hashtbl.replace by_header h (bl, e);
                  Hashtbl.replace exits e ()
              | _ -> ())
          | None -> ())
      | _ -> ())
    f.Mcode.blocks;
  let try_region h0 =
    (* Walk the chain of loops starting at h0. *)
    let rec chain h region =
      match Hashtbl.find_opt by_header h with
      | Some (b, e) when not (List.mem h region || List.mem b region) -> (
          let region = region @ [ h; b ] in
          let ei = Hashtbl.find info e in
          (* The next loop's header may be entered only from this region
             and its own back edge. *)
          match Hashtbl.find_opt by_header e with
          | Some (be, _)
            when List.for_all
                   (fun p -> List.mem p region || p = be)
                   ei.preds ->
              chain e region
          | _ -> if ei.preds = [ h ] then Some (region, e) else None)
      | _ -> None
    in
    match chain h0 [] with
    | None -> ()
    | Some (region, final_exit) ->
        let all_blocks = region @ [ final_exit ] in
        if List.exists (Hashtbl.mem assigned) all_blocks then ()
        else
          let h0i = Hashtbl.find info h0 in
          let entry_preds =
            List.filter (fun p -> not (List.mem p region)) h0i.preds
          in
          let preds_ok =
            entry_preds <> []
            && List.for_all
                 (fun p ->
                   match Hashtbl.find_opt info p with
                   | Some pi -> pi.succs = [ h0 ] && not (Hashtbl.mem assigned p)
                   | None -> false)
                 entry_preds
          in
          if not preds_ok then ()
          else begin
            (* Reads and references over the whole region (the final
               exit excluded: it only needs the shared entry state). *)
            let referenced = Hashtbl.create 64 in
            let read_counts = Hashtbl.create 32 in
            List.iter
              (fun l ->
                let bi = Hashtbl.find info l in
                let refs, reads = scan_block cfg bi.blk in
                Hashtbl.iter (fun k () -> Hashtbl.replace referenced k ()) refs;
                Hashtbl.iter
                  (fun k n ->
                    Hashtbl.replace read_counts k
                      (n + try Hashtbl.find read_counts k with Not_found -> 0))
                  reads)
              region;
            let chosen = ref [] in
            List.iter
              (fun cls ->
                let cands =
                  List.filter
                    (fun i -> not (Hashtbl.mem referenced (cls, Reg.home i)))
                    (victim_indices cfg cls)
                in
                let budget = max 0 (List.length cands - min_free_victims) in
                let values =
                  Hashtbl.fold
                    (fun (c, p) n acc ->
                      if Reg.equal_cls c cls then (p, n) :: acc else acc)
                    read_counts []
                  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
                in
                let rec pair idxs vals k =
                  match (idxs, vals, k) with
                  | i :: idxs', (p, _) :: vals', k when k > 0 ->
                      chosen := { pcls = cls; pidx = i; pphys = p } :: !chosen;
                      pair idxs' vals' (k - 1)
                  | _ -> ()
                in
                pair cands values budget)
              [ Reg.Int; Reg.Float ];
            if !chosen <> [] then
              List.iter
                (fun l ->
                  Hashtbl.replace pins l !chosen;
                  Hashtbl.replace assigned l ())
                all_blocks
          end
  in
  (* Start chains at headers that are not another loop's exit. *)
  Hashtbl.iter
    (fun h _ -> if not (Hashtbl.mem exits h) then try_region h)
    by_header;
  pins

(* --- next-use tables for victim selection ----------------------------- *)

type next_use = { reads : (Reg.cls * int, int array) Hashtbl.t }

let build_next_use (insns : Insn.t array) =
  let reads = Hashtbl.create 64 in
  let note tbl key pos =
    let cur = try Hashtbl.find tbl key with Not_found -> [] in
    Hashtbl.replace tbl key (pos :: cur)
  in
  Array.iteri
    (fun pos (i : Insn.t) ->
      Array.iter
        (fun (o : Insn.operand) -> note reads (o.Insn.cls, o.Insn.r) pos)
        i.Insn.srcs)
    insns;
  let out = Hashtbl.create (Hashtbl.length reads) in
  Hashtbl.iter
    (fun k poss -> Hashtbl.replace out k (Array.of_list (List.rev poss)))
    reads;
  { reads = out }

(** First read of [(cls, p)] strictly after [pos]; [max_int] if none. *)
let next_read nu key pos =
  match Hashtbl.find_opt nu.reads key with
  | None -> max_int
  | Some arr ->
      let n = Array.length arr in
      let rec search lo hi =
        if lo >= hi then if lo < n then arr.(lo) else max_int
        else
          let mid = (lo + hi) / 2 in
          if arr.(mid) <= pos then search (mid + 1) hi else search lo mid
      in
      search 0 n

(* --- the per-block rewriter -------------------------------------------- *)

type state = {
  cfg : config;
  imap : Map_table.t;
  fmap : Map_table.t;
  pinned_idx : (Reg.cls * int, unit) Hashtbl.t;
      (** indices carrying pins in this block: avoided as victims *)
  mutable pending : Insn.connect list;
  mutable out_rev : Insn.t list;
  mutable connects_emitted : int;
}

let table st = function Reg.Int -> st.imap | Reg.Float -> st.fmap

let flush_connects st =
  let rec emit = function
    | [] -> ()
    | [ c ] ->
        st.out_rev <- Insn.make Opcode.Connect ~connects:[| c |] :: st.out_rev;
        st.connects_emitted <- st.connects_emitted + 1
    | c1 :: c2 :: rest when st.cfg.combine ->
        st.out_rev <- Insn.connect2 c1 c2 :: st.out_rev;
        st.connects_emitted <- st.connects_emitted + 1;
        emit rest
    | c :: rest ->
        st.out_rev <- Insn.make Opcode.Connect ~connects:[| c |] :: st.out_rev;
        st.connects_emitted <- st.connects_emitted + 1;
        emit rest
  in
  (* Defs before uses: the combined forms are def-def, def-use, use-use. *)
  let defs, uses =
    List.partition (fun (c : Insn.connect) -> c.Insn.cmap = Insn.Write) st.pending
  in
  emit (defs @ uses);
  st.pending <- []

let queue_connect st (c : Insn.connect) =
  Map_table.apply (table st c.Insn.ccls) c;
  st.pending <- st.pending @ [ c ]

let usable_victims st cls =
  List.filter
    (fun i -> not (Hashtbl.mem st.pinned_idx (cls, i)))
    (victim_indices st.cfg cls)

(** Resolve a source operand to an architectural index, inserting a
    connect-use when no index currently reads [p]. *)
let resolve_src st nu pos ~in_use (o : Insn.operand) =
  let cls = o.Insn.cls and p = o.Insn.r in
  let file = file_of st.cfg cls in
  let tbl = table st cls in
  if p >= file.Reg.total then
    invalid_arg (Fmt.str "Rc_lower: physical %d out of file" p);
  if Reg.is_core file p && Map_table.read tbl p = p then p
  else
    match Map_table.index_reading tbl p with
    | Some i -> i
    | None ->
        let candidates =
          List.filter (fun i -> not (List.mem i in_use)) (usable_victims st cls)
        in
        let candidates =
          if candidates = [] then
            (* every victim is pinned or busy: fall back to stealing *)
            List.filter
              (fun i -> not (List.mem i in_use))
              (victim_indices st.cfg cls)
          else candidates
        in
        let best =
          List.fold_left
            (fun best i ->
              let cost = next_read nu (cls, Map_table.read tbl i) pos in
              match best with
              | Some (_, c) when c >= cost -> best
              | _ -> Some (i, cost))
            None candidates
        in
        let i =
          match best with
          | Some (i, _) -> i
          | None -> invalid_arg "Rc_lower: no victim index available"
        in
        queue_connect st { Insn.cmap = Insn.Read; ri = i; rp = p; ccls = cls };
        i

(** Resolve a destination operand, inserting a connect-def when no index
    currently writes [p]. *)
let resolve_dst st (o : Insn.operand) =
  let cls = o.Insn.cls and p = o.Insn.r in
  let file = file_of st.cfg cls in
  let tbl = table st cls in
  if p >= file.Reg.total then
    invalid_arg (Fmt.str "Rc_lower: physical %d out of file" p);
  if Reg.is_core file p && Map_table.write tbl p = p then p
  else
    match Map_table.index_writing tbl p with
    | Some i -> i
    | None ->
        (* Prefer the home index when [p] is core; otherwise any
           non-pinned index works — under the reset models the write map
           snaps back to home immediately after the write. *)
        let i =
          if Reg.is_core file p then p
          else
            match usable_victims st cls with
            | i :: _ -> i
            | [] -> (
                match victim_indices st.cfg cls with
                | i :: _ -> i
                | [] -> invalid_arg "Rc_lower: no victim index available")
        in
        queue_connect st { Insn.cmap = Insn.Write; ri = i; rp = p; ccls = cls };
        i

(** Steer the table from its current state to [target]: home everywhere
    except the targeted read pins. *)
let restore_to st (target : pin list) =
  let target_read cls i =
    match
      List.find_opt (fun pn -> Reg.equal_cls pn.pcls cls && pn.pidx = i) target
    with
    | Some pn -> pn.pphys
    | None -> Reg.home i
  in
  List.iter
    (fun cls ->
      let tbl = table st cls in
      for i = 0 to Map_table.entries tbl - 1 do
        let want = target_read cls i in
        if Map_table.read tbl i <> want then
          queue_connect st { Insn.cmap = Insn.Read; ri = i; rp = want; ccls = cls };
        if Map_table.write tbl i <> Reg.home i then
          queue_connect st
            { Insn.cmap = Insn.Write; ri = i; rp = Reg.home i; ccls = cls }
      done)
    [ Reg.Int; Reg.Float ];
  flush_connects st

let install_pins st (pins : pin list) =
  List.iter
    (fun pn ->
      let tbl = table st pn.pcls in
      Map_table.connect_use tbl ~ri:pn.pidx ~rp:pn.pphys;
      Hashtbl.replace st.pinned_idx (pn.pcls, pn.pidx) ())
    pins

(** Route extended-register sources of terminator instructions through
    reserved core temporaries, so terminators read core registers only
    and never disturb the block's exit state.  Runs on every block
    {e before} pin analysis, so the temporaries it uses are visible as
    referenced registers when pin candidates are chosen. *)
let fix_terminators cfg (insns : Insn.t array) =
  let out = ref [] in
  let n = Array.length insns in
  let first_term = ref n in
  (try
     for idx = n - 1 downto 0 do
       if is_terminator insns.(idx) then first_term := idx else raise Exit
     done
   with Exit -> ());
  Array.iteri
    (fun idx (i : Insn.t) ->
      if idx < !first_term then out := i :: !out
      else begin
        let next_temp = ref 0 in
        let srcs =
          Array.map
            (fun (o : Insn.operand) ->
              let file = file_of cfg o.Insn.cls in
              if Reg.is_extended file o.Insn.r then begin
                (match o.Insn.cls with
                | Reg.Int -> ()
                | Reg.Float -> invalid_arg "Rc_lower: float terminator source");
                let t = Reg.spill_base + Reg.spill_count - 1 - !next_temp in
                incr next_temp;
                out :=
                  Insn.make Opcode.Move ~dst:(Insn.ireg t)
                    ~srcs:[| Insn.ireg o.Insn.r |]
                  :: !out;
                Insn.ireg t
              end
              else o)
            i.Insn.srcs
        in
        out := { i with Insn.srcs } :: !out
      end)
    insns;
  Array.of_list (List.rev !out)

(** Hoist connects away from their consumers so that a 1-cycle connect
    implementation (Figure 12) does not split every connect/consumer
    pair across cycles.  A connect may move up past instruction [j] when
    none of its updates can change [j]'s behaviour or be destroyed by
    it:

    - a read update of index [i] must not pass an instruction reading
      or writing through [i] (writes adjust the read map under the
      automatic-reset models);
    - a write update of [i] must not pass an instruction writing
      through [i];
    - no connect passes a [jsr] (hardware map reset) or another connect
      updating the same entry of the same map. *)
let hoist_connects (insns : Insn.t array) =
  let max_hoist = 6 in
  let conflicts (c : Insn.connect) (j : Insn.t) =
    match j.Insn.op with
    | Opcode.Jsr | Opcode.Rts | Opcode.Trap | Opcode.Rfe | Opcode.Mapen
    | Opcode.Mfmap _ | Opcode.Mtmap _ ->
        true
    | Opcode.Connect ->
        Array.exists
          (fun (c2 : Insn.connect) ->
            Reg.equal_cls c.Insn.ccls c2.Insn.ccls
            && c.Insn.ri = c2.Insn.ri && c.Insn.cmap = c2.Insn.cmap)
          j.Insn.connects
    | _ -> (
        let touches_idx (o : Insn.operand) =
          Reg.equal_cls o.Insn.cls c.Insn.ccls && o.Insn.r = c.Insn.ri
        in
        let dst_touches =
          match j.Insn.dst with Some o -> touches_idx o | None -> false
        in
        match c.Insn.cmap with
        | Insn.Read -> dst_touches || Array.exists touches_idx j.Insn.srcs
        | Insn.Write -> dst_touches)
  in
  let insn_conflicts (ci : Insn.t) (j : Insn.t) =
    Array.exists (fun c -> conflicts c j) ci.Insn.connects
  in
  let n = Array.length insns in
  for idx = 1 to n - 1 do
    if Insn.is_connect insns.(idx) then begin
      let pos = ref idx in
      while
        !pos > 0
        && idx - !pos < max_hoist
        && not (insn_conflicts insns.(idx) insns.(!pos - 1))
      do
        decr pos
      done;
      if !pos < idx then begin
        let c = insns.(idx) in
        Array.blit insns !pos insns (!pos + 1) (idx - !pos);
        insns.(!pos) <- c
      end
    end
  done;
  insns

let run_block cfg ~entry_pins ~exit_pins (b : Mcode.block) =
  let insns = Array.of_list b.Mcode.insns in
  let nu = build_next_use insns in
  let st =
    {
      cfg;
      imap = Map_table.create ~model:cfg.model cfg.ifile;
      fmap = Map_table.create ~model:cfg.model cfg.ffile;
      pinned_idx = Hashtbl.create 8;
      pending = [];
      out_rev = [];
      connects_emitted = 0;
    }
  in
  install_pins st entry_pins;
  st.pending <- [];
  (* Pins to steer towards at the block's end: they keep indices
     reserved during the block even if a mid-block call reset them. *)
  List.iter
    (fun pn -> Hashtbl.replace st.pinned_idx (pn.pcls, pn.pidx) ())
    exit_pins;
  let n = Array.length insns in
  let first_term = ref n in
  (try
     for idx = n - 1 downto 0 do
       if is_terminator insns.(idx) then first_term := idx else raise Exit
     done
   with Exit -> ());
  (* No steering needed before a return or halt: [rts] resets the table
     in hardware and [halt] ends the program. *)
  let exit_needs_steering =
    !first_term = n
    ||
    match insns.(!first_term).Insn.op with
    | Opcode.Rts | Opcode.Halt -> false
    | _ -> true
  in
  Array.iteri
    (fun pos (i : Insn.t) ->
      if pos = !first_term && exit_needs_steering then restore_to st exit_pins;
      match i.Insn.op with
      | Opcode.Connect | Opcode.Mapen | Opcode.Trap | Opcode.Rfe
      | Opcode.Mfmap _ | Opcode.Mtmap _ ->
          invalid_arg "Rc_lower: unexpected opcode in physical form"
      | Opcode.Jsr ->
          (* Hardware resets the map and writes RA to its home. *)
          st.out_rev <- i :: st.out_rev;
          Map_table.reset st.imap;
          Map_table.reset st.fmap
      | _ ->
          let in_use = ref [] in
          let srcs =
            Array.map
              (fun (o : Insn.operand) ->
                let idx = resolve_src st nu pos ~in_use:!in_use o in
                in_use := idx :: !in_use;
                { o with Insn.r = idx })
              i.Insn.srcs
          in
          let dst, noted =
            match i.Insn.dst with
            | None -> (None, None)
            | Some o ->
                let idx = resolve_dst st o in
                (Some { o with Insn.r = idx }, Some (o.Insn.cls, idx))
          in
          flush_connects st;
          st.out_rev <- { i with Insn.srcs; dst } :: st.out_rev;
          (match noted with
          | Some (cls, idx) -> Map_table.note_write (table st cls) idx
          | None -> ()))
    insns;
  if !first_term = n && exit_needs_steering then restore_to st exit_pins;
  b.Mcode.insns <-
    Array.to_list (hoist_connects (Array.of_list (List.rev st.out_rev)));
  st.connects_emitted

(** Rewrite a whole program into architectural form.  Returns the number
    of connect instructions inserted. *)
let run cfg (m : Mcode.t) =
  let total = ref 0 in
  List.iter
    (fun (f : Mcode.func) ->
      List.iter
        (fun (b : Mcode.block) ->
          b.Mcode.insns <-
            Array.to_list (fix_terminators cfg (Array.of_list b.Mcode.insns)))
        f.Mcode.blocks;
      let info = block_cfg f in
      let pins =
        if cfg.pin_loops then analyze_pins cfg f info else Hashtbl.create 0
      in
      let pin_of l = try Hashtbl.find pins l with Not_found -> [] in
      List.iter
        (fun (b : Mcode.block) ->
          let bi = Hashtbl.find info b.Mcode.label in
          let entry_pins = pin_of b.Mcode.label in
          (* All successors agree on their entry state by construction
             of the pin assignment. *)
          let exit_pins =
            match bi.succs with [] -> [] | s :: _ -> pin_of s
          in
          total := !total + run_block cfg ~entry_pins ~exit_pins b)
        f.Mcode.blocks)
    m.Mcode.funcs;
  !total

(** Check that a program is in architectural form: every operand index
    is below its file's core size. *)
let check_arch_form ~ifile ~ffile (m : Mcode.t) =
  let ok = ref true in
  let check (o : Insn.operand) =
    let file = match o.Insn.cls with Reg.Int -> ifile | Reg.Float -> ffile in
    if o.Insn.r >= file.Reg.core then ok := false
  in
  Mcode.iter_insns m (fun i ->
      Array.iter check i.Insn.srcs;
      Option.iter check i.Insn.dst);
  !ok
