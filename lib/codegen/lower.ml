(** Lowering allocated IR to machine code in {e physical form}: operands
    are physical register numbers (possibly in the extended section);
    spill code uses the reserved spill temporaries; callers save live
    caller-saved and extended registers around calls; callees save the
    callee-saved core registers they use.

    Frame layout (offsets from SP after the prologue):

    {v
    +0 .. 8*nslots-1      spill slots
    then                  callee-save area
    then                  return-address slot (functions making calls)
    then                  caller-save area (one slot per saved phys reg)
    sp+frame+8k           incoming argument k
    v}

    Outgoing arguments are stored below SP, which is then dropped by
    [8*nargs] for the call, so the callee sees argument k at
    [sp_entry + 8k]. *)

open Rc_isa
open Rc_ir
open Rc_dataflow
open Rc_regalloc

type ctx = {
  prog : Prog.t;
  alloc : Alloc.t;
  profile : Rc_interp.Profile.t;
  global_addr : (string * int) list;
  labels : (string * int, int) Hashtbl.t;
  mutable next_label : int;
}

let label_of ctx fname bid =
  match Hashtbl.find_opt ctx.labels (fname, bid) with
  | Some l -> l
  | None ->
      let l = ctx.next_label in
      ctx.next_label <- l + 1;
      Hashtbl.replace ctx.labels (fname, bid) l;
      l

let entry_label ctx (f : Func.t) = label_of ctx f.Func.name (Func.entry f).Block.id

(* Frame bookkeeping for one function. *)
type frame = {
  asn : Assignment.t;
  has_calls : bool;
  callee_saved_used : (Reg.cls * int) list;
  caller_slots : (Reg.cls * int, int) Hashtbl.t;  (** phys -> frame offset *)
  ra_off : int;
  size : int;
}

let is_caller_exposed cls (file : Reg.file) p =
  (* Registers the callee may clobber: allocatable caller-saved core and
     the whole extended section (paper section 4.1: extended registers
     cannot be treated as callee-saved). *)
  p >= Reg.first_alloc cls
  && ((not (Reg.is_callee_saved cls file p)) || Reg.is_extended file p)

(** Physical registers needing a caller-side save anywhere in [f]. *)
let caller_saved_regs (f : Func.t) (asn : Assignment.t) (live : Liveness.t) =
  let found = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      Liveness.fold_block_backward live b ~init:() ~f:(fun () op live_after ->
          match op with
          | Op.Call { dst; _ } ->
              let live_across =
                match dst with
                | Some d -> Vreg.Set.remove d live_after
                | None -> live_after
              in
              Vreg.Set.iter
                (fun (v : Vreg.t) ->
                  match Assignment.location asn v with
                  | Assignment.Reg p ->
                      let file = Assignment.file_of asn v.Vreg.cls in
                      if is_caller_exposed v.Vreg.cls file p then
                        Hashtbl.replace found (v.Vreg.cls, p) ()
                  | Assignment.Slot _ -> ())
                live_across
          | _ -> ()))
    f.Func.blocks;
  Hashtbl.fold (fun k () acc -> k :: acc) found []
  |> List.sort compare

let make_frame (f : Func.t) (asn : Assignment.t) (live : Liveness.t) =
  let has_calls =
    List.exists
      (fun (b : Block.t) -> List.exists Op.is_call b.Block.ops)
      f.Func.blocks
  in
  let callee_saved_used =
    List.concat_map
      (fun cls ->
        let file = Assignment.file_of asn cls in
        Assignment.used_registers asn cls
        |> List.filter (fun p -> Reg.is_callee_saved cls file p)
        |> List.map (fun p -> (cls, p)))
      [ Reg.Int; Reg.Float ]
  in
  let off = ref (8 * asn.Assignment.nslots) in
  let callee_off = Hashtbl.create 8 in
  List.iter
    (fun key ->
      Hashtbl.replace callee_off key !off;
      off := !off + 8)
    callee_saved_used;
  let ra_off = !off in
  if has_calls then off := !off + 8;
  let caller_slots = Hashtbl.create 8 in
  List.iter
    (fun key ->
      Hashtbl.replace caller_slots key !off;
      off := !off + 8)
    (caller_saved_regs f asn live);
  let size = !off in
  ( { asn; has_calls; callee_saved_used; caller_slots; ra_off; size },
    callee_off )

let slot_off (_fr : frame) s = 8 * s

(* --- per-block emission ---------------------------------------------- *)

type emitter = { mutable rev : Insn.t list }

let emit e i = e.rev <- i :: e.rev

let itemp k = Reg.spill_base + k
let ftemp k = Reg.fspill_base + k

(** Bring an integer source operand into a register; [k] picks the
    reserved temporary if it was spilled. *)
let use_i fr e v k =
  match Assignment.location fr.asn v with
  | Assignment.Reg p -> p
  | Assignment.Slot s ->
      emit e (Insn.ld ~tag:Insn.Spill ~dst:(itemp k) ~base:Reg.sp ~off:(slot_off fr s) ());
      itemp k

let use_f fr e v k =
  match Assignment.location fr.asn v with
  | Assignment.Reg p -> p
  | Assignment.Slot s ->
      emit e (Insn.fld ~tag:Insn.Spill ~dst:(ftemp k) ~base:Reg.sp ~off:(slot_off fr s) ());
      ftemp k

(** Destination register and a post-instruction flush. *)
let def_i fr v =
  match Assignment.location fr.asn v with
  | Assignment.Reg p -> (p, fun _e -> ())
  | Assignment.Slot s ->
      ( itemp 0,
        fun e ->
          emit e
            (Insn.st ~tag:Insn.Spill ~src:(itemp 0) ~base:Reg.sp
               ~off:(slot_off fr s) ()) )

let def_f fr v =
  match Assignment.location fr.asn v with
  | Assignment.Reg p -> (p, fun _e -> ())
  | Assignment.Slot s ->
      ( ftemp 0,
        fun e ->
          emit e
            (Insn.fst_ ~tag:Insn.Spill ~src:(ftemp 0) ~base:Reg.sp
               ~off:(slot_off fr s) ()) )

let save_tag cls (file : Reg.file) p =
  ignore cls;
  if Reg.is_extended file p then Insn.Xsave else Insn.Save

let lower_call ctx fr e ~live_across (c : Vreg.t option * string * Vreg.t list) =
  let dst, callee, args = c in
  (* 1. Caller-side saves of exposed live registers. *)
  let to_save =
    Vreg.Set.fold
      (fun (v : Vreg.t) acc ->
        match Assignment.location fr.asn v with
        | Assignment.Reg p ->
            let file = Assignment.file_of fr.asn v.Vreg.cls in
            if is_caller_exposed v.Vreg.cls file p then (v.Vreg.cls, p) :: acc
            else acc
        | Assignment.Slot _ -> acc)
      live_across []
    |> List.sort_uniq compare
  in
  List.iter
    (fun (cls, p) ->
      let off = Hashtbl.find fr.caller_slots (cls, p) in
      let tag = save_tag cls (Assignment.file_of fr.asn cls) p in
      match cls with
      | Reg.Int -> emit e (Insn.st ~tag ~src:p ~base:Reg.sp ~off ())
      | Reg.Float -> emit e (Insn.fst_ ~tag ~src:p ~base:Reg.sp ~off ()))
    to_save;
  (* 2. Outgoing arguments below SP. *)
  let n = List.length args in
  List.iteri
    (fun k (a : Vreg.t) ->
      let off = -8 * (n - k) in
      match a.Vreg.cls with
      | Reg.Int ->
          let p = use_i fr e a 0 in
          emit e (Insn.st ~src:p ~base:Reg.sp ~off ())
      | Reg.Float ->
          let p = use_f fr e a 0 in
          emit e (Insn.fst_ ~src:p ~base:Reg.sp ~off ()))
    args;
  if n > 0 then
    emit e (Insn.alui Opcode.Sub ~dst:Reg.sp ~s1:Reg.sp ~imm:(Int64.of_int (8 * n)));
  (* 3. The call itself. *)
  let callee_f = Prog.find_func ctx.prog callee in
  emit e (Insn.jsr (entry_label ctx callee_f));
  if n > 0 then
    emit e (Insn.alui Opcode.Add ~dst:Reg.sp ~s1:Reg.sp ~imm:(Int64.of_int (8 * n)));
  (* 4. Return value. *)
  (match dst with
  | None -> ()
  | Some d -> (
      match d.Vreg.cls with
      | Reg.Int -> (
          match Assignment.location fr.asn d with
          | Assignment.Reg p -> emit e (Insn.move ~dst:p ~src:Reg.rv ())
          | Assignment.Slot s ->
              emit e
                (Insn.st ~tag:Insn.Spill ~src:Reg.rv ~base:Reg.sp
                   ~off:(slot_off fr s) ()))
      | Reg.Float -> (
          match Assignment.location fr.asn d with
          | Assignment.Reg p -> emit e (Insn.fmove ~dst:p ~src:Reg.frv ())
          | Assignment.Slot s ->
              emit e
                (Insn.fst_ ~tag:Insn.Spill ~src:Reg.frv ~base:Reg.sp
                   ~off:(slot_off fr s) ()))));
  (* 5. Caller-side restores. *)
  List.iter
    (fun (cls, p) ->
      let off = Hashtbl.find fr.caller_slots (cls, p) in
      let tag = save_tag cls (Assignment.file_of fr.asn cls) p in
      match cls with
      | Reg.Int -> emit e (Insn.ld ~tag ~dst:p ~base:Reg.sp ~off ())
      | Reg.Float -> emit e (Insn.fld ~tag ~dst:p ~base:Reg.sp ~off ()))
    to_save

let lower_op ctx fr e ~live_after op =
  match op with
  | Op.Li (d, n) ->
      let p, flush = def_i fr d in
      emit e (Insn.li ~dst:p n);
      flush e
  | Op.Fli (d, x) ->
      let p, flush = def_f fr d in
      emit e (Insn.fli ~dst:p x);
      flush e
  | Op.Mov (d, s) -> (
      match d.Vreg.cls with
      | Reg.Int ->
          let ps = use_i fr e s 1 in
          let pd, flush = def_i fr d in
          if pd <> ps then emit e (Insn.move ~dst:pd ~src:ps ());
          flush e
      | Reg.Float ->
          let ps = use_f fr e s 1 in
          let pd, flush = def_f fr d in
          if pd <> ps then emit e (Insn.fmove ~dst:pd ~src:ps ());
          flush e)
  | Op.Alu (a, d, Op.V x, Op.V y) ->
      let px = use_i fr e x 0 and py = use_i fr e y 1 in
      let pd, flush = def_i fr d in
      emit e (Insn.alu a ~dst:pd ~s1:px ~s2:py);
      flush e
  | Op.Alu (a, d, Op.V x, Op.C c) ->
      let px = use_i fr e x 0 in
      let pd, flush = def_i fr d in
      emit e (Insn.alui a ~dst:pd ~s1:px ~imm:c);
      flush e
  | Op.Alu (a, d, Op.C cx, Op.C cy) ->
      let pd, flush = def_i fr d in
      emit e (Insn.li ~dst:pd (Opcode.eval_alu a cx cy));
      flush e
  | Op.Alu (_, _, Op.C _, Op.V _) ->
      invalid_arg "Lower: un-legalised constant first operand"
  | Op.Fpu (o, d, s1, s2) ->
      let p1 = use_f fr e s1 0 in
      let p2 = match s2 with Some s -> use_f fr e s 1 | None -> p1 in
      let pd, flush = def_f fr d in
      (match s2 with
      | Some _ -> emit e (Insn.fpu o ~dst:pd ~s1:p1 ~s2:p2)
      | None -> emit e (Insn.fpu1 o ~dst:pd ~s1:p1));
      flush e
  | Op.Itof (d, s) ->
      let ps = use_i fr e s 0 in
      let pd, flush = def_f fr d in
      emit e (Insn.itof ~dst:pd ~src:ps ());
      flush e
  | Op.Ftoi (d, s) ->
      let ps = use_f fr e s 0 in
      let pd, flush = def_i fr d in
      emit e (Insn.ftoi ~dst:pd ~src:ps ());
      flush e
  | Op.Fcmp (c, d, s1, s2) ->
      let p1 = use_f fr e s1 0 and p2 = use_f fr e s2 1 in
      let pd, flush = def_i fr d in
      emit e (Insn.fcmp c ~dst:pd ~s1:p1 ~s2:p2);
      flush e
  | Op.Ld (w, d, base, off) ->
      let pb = use_i fr e base 1 in
      let pd, flush = def_i fr d in
      emit e (Insn.ld ~width:w ~dst:pd ~base:pb ~off ());
      flush e
  | Op.St (w, v, base, off) ->
      let pv = use_i fr e v 0 and pb = use_i fr e base 1 in
      emit e (Insn.st ~width:w ~src:pv ~base:pb ~off ())
  | Op.Fld (d, base, off) ->
      let pb = use_i fr e base 1 in
      let pd, flush = def_f fr d in
      emit e (Insn.fld ~dst:pd ~base:pb ~off ());
      flush e
  | Op.Fst (v, base, off) ->
      let pv = use_f fr e v 0 and pb = use_i fr e base 1 in
      emit e (Insn.fst_ ~src:pv ~base:pb ~off ())
  | Op.Addr (d, g) ->
      let addr =
        match List.assoc_opt g ctx.global_addr with
        | Some a -> Int64.of_int a
        | None -> invalid_arg ("Lower: unknown global " ^ g)
      in
      let pd, flush = def_i fr d in
      emit e (Insn.li ~dst:pd addr);
      flush e
  | Op.Call { dst; callee; args } ->
      let live_across =
        match dst with
        | Some d -> Vreg.Set.remove d live_after
        | None -> live_after
      in
      lower_call ctx fr e ~live_across (dst, callee, args)
  | Op.Emit v ->
      let p = use_i fr e v 0 in
      emit e (Insn.emit ~src:p)
  | Op.Femit v ->
      let p = use_f fr e v 0 in
      emit e (Insn.femit ~src:p)

let lower_epilogue fr callee_off e =
  List.iter
    (fun (cls, p) ->
      let off = Hashtbl.find callee_off (cls, p) in
      match cls with
      | Reg.Int -> emit e (Insn.ld ~tag:Insn.Save ~dst:p ~base:Reg.sp ~off ())
      | Reg.Float -> emit e (Insn.fld ~tag:Insn.Save ~dst:p ~base:Reg.sp ~off ()))
    fr.callee_saved_used;
  if fr.has_calls then
    emit e (Insn.ld ~dst:Reg.ra ~base:Reg.sp ~off:fr.ra_off ());
  if fr.size > 0 then
    emit e (Insn.alui Opcode.Add ~dst:Reg.sp ~s1:Reg.sp ~imm:(Int64.of_int fr.size))

let lower_term ctx fr callee_off e (f : Func.t) (b : Block.t) ~next_id =
  let lbl id = label_of ctx f.Func.name id in
  match b.Block.term with
  | Op.Jmp l -> if Some l <> next_id then emit e (Insn.jmp (lbl l))
  | Op.Br (c, x, y, t, el) ->
      let px = use_i fr e x 0 and py = use_i fr e y 1 in
      let hint =
        Rc_interp.Profile.predict_taken ctx.profile ~func:f.Func.name
          ~block:b.Block.id
      in
      emit e (Insn.br c ~s1:px ~s2:py ~target:(lbl t) ~hint);
      if Some el <> next_id then emit e (Insn.jmp (lbl el))
  | Op.Halt -> emit e (Insn.halt ())
  | Op.Ret v ->
      (match v with
      | None -> ()
      | Some rv -> (
          match rv.Vreg.cls with
          | Reg.Int ->
              let p = use_i fr e rv 0 in
              if p <> Reg.rv then emit e (Insn.move ~dst:Reg.rv ~src:p ())
          | Reg.Float ->
              let p = use_f fr e rv 0 in
              if p <> Reg.frv then emit e (Insn.fmove ~dst:Reg.frv ~src:p ())));
      lower_epilogue fr callee_off e;
      emit e (Insn.rts ())

let lower_prologue fr callee_off e (f : Func.t) =
  if fr.size > 0 then
    emit e (Insn.alui Opcode.Sub ~dst:Reg.sp ~s1:Reg.sp ~imm:(Int64.of_int fr.size));
  if fr.has_calls then
    emit e (Insn.st ~src:Reg.ra ~base:Reg.sp ~off:fr.ra_off ());
  List.iter
    (fun (cls, p) ->
      let off = Hashtbl.find callee_off (cls, p) in
      match cls with
      | Reg.Int -> emit e (Insn.st ~tag:Insn.Save ~src:p ~base:Reg.sp ~off ())
      | Reg.Float -> emit e (Insn.fst_ ~tag:Insn.Save ~src:p ~base:Reg.sp ~off ()))
    fr.callee_saved_used;
  List.iteri
    (fun k (v : Vreg.t) ->
      let arg_off = fr.size + (8 * k) in
      match v.Vreg.cls with
      | Reg.Int -> (
          match Assignment.location fr.asn v with
          | Assignment.Reg p -> emit e (Insn.ld ~dst:p ~base:Reg.sp ~off:arg_off ())
          | Assignment.Slot s ->
              emit e (Insn.ld ~dst:(itemp 0) ~base:Reg.sp ~off:arg_off ());
              emit e
                (Insn.st ~tag:Insn.Spill ~src:(itemp 0) ~base:Reg.sp
                   ~off:(slot_off fr s) ()))
      | Reg.Float -> (
          match Assignment.location fr.asn v with
          | Assignment.Reg p -> emit e (Insn.fld ~dst:p ~base:Reg.sp ~off:arg_off ())
          | Assignment.Slot s ->
              emit e (Insn.fld ~dst:(ftemp 0) ~base:Reg.sp ~off:arg_off ());
              emit e
                (Insn.fst_ ~tag:Insn.Spill ~src:(ftemp 0) ~base:Reg.sp
                   ~off:(slot_off fr s) ())))
    f.Func.params

let lower_func ctx (f : Func.t) =
  let asn = Alloc.assignment ctx.alloc f in
  let live = Liveness.compute f in
  let fr, callee_off = make_frame f asn live in
  let rec next_ids = function
    | [] -> []
    | [ (b : Block.t) ] -> [ (b, None) ]
    | b :: (b2 : Block.t) :: rest ->
        (b, Some b2.Block.id) :: next_ids (b2 :: rest)
  in
  let mblocks =
    List.map
      (fun ((b : Block.t), next_id) ->
        let e = { rev = [] } in
        if b == Func.entry f then lower_prologue fr callee_off e f;
        (* Forward walk with live-after sets for the call sites. *)
        let live_after_per_op =
          let acc =
            Liveness.fold_block_backward live b ~init:[]
              ~f:(fun acc _op live_after -> live_after :: acc)
          in
          acc
        in
        List.iter2
          (fun op live_after -> lower_op ctx fr e ~live_after op)
          b.Block.ops live_after_per_op;
        lower_term ctx fr callee_off e f b ~next_id;
        {
          Mcode.label = label_of ctx f.Func.name b.Block.id;
          Mcode.insns = List.rev e.rev;
        })
      (next_ids f.Func.blocks)
  in
  {
    Mcode.name = f.Func.name;
    Mcode.entry_label = entry_label ctx f;
    Mcode.blocks = mblocks;
  }

(** Lower a whole program to machine code in physical form. *)
let run (prog : Prog.t) (alloc : Alloc.t) (profile : Rc_interp.Profile.t) =
  let ctx =
    {
      prog;
      alloc;
      profile;
      global_addr = fst (Image.layout_globals prog.Prog.globals);
      labels = Hashtbl.create 64;
      next_label = 0;
    }
  in
  let m = Mcode.create ~entry:prog.Prog.entry in
  List.iter (fun g -> Mcode.add_global m g) prog.Prog.globals;
  List.iter (fun f -> Mcode.add_func m (lower_func ctx f)) prog.Prog.funcs;
  m
