(** Lowering allocated IR to machine code in {e physical form}: operands
    are physical register numbers (possibly in the extended section);
    spill code uses the reserved spill temporaries; callers save live
    caller-saved and extended registers around calls; callees save the
    callee-saved core registers they use.

    Frame layout (offsets from SP after the prologue):

    {v
    +0 .. 8*nslots-1      spill slots
    then                  callee-save area
    then                  return-address slot (functions making calls)
    then                  caller-save area (one slot per saved phys reg)
    sp+frame+8k           incoming argument k
    v}

    Outgoing arguments are stored below SP, which is then dropped by
    [8*nargs] for the call, so the callee sees argument k at
    [sp_entry + 8k]. *)

(** Lower a whole program.  The profile provides the static branch
    prediction hints. *)
val run :
  Rc_ir.Prog.t -> Rc_regalloc.Alloc.t -> Rc_interp.Profile.t -> Rc_isa.Mcode.t
