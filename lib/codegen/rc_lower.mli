(** Connect insertion: rewrite machine code from {e physical form}
    (operands are physical registers, possibly extended) into
    {e architectural form} (operands are core-sized indices, with
    [Connect] instructions steering the mapping table) — the compiler
    support of paper section 3.

    The pass emulates the register mapping table instruction by
    instruction under the configured automatic-reset model.  Every block
    has a compiler-chosen {e entry state}; blocks end by steering the
    table to the state their successors expect.  The default entry state
    is home (established by power-up and by every [jsr]/[rts]); across
    hot loop regions the most-read extended registers are {e pinned}
    onto indices whose home registers the loop never touches, so
    steady-state iterations pay no connect for those reads. *)

open Rc_isa

type config = {
  ifile : Reg.file;
  ffile : Reg.file;
  model : Rc_core.Model.t;
  combine : bool;
      (** use connect-use-use / connect-def-use / connect-def-def
          (paper footnote 1) *)
  pin_loops : bool;  (** pin hot extended values across loop regions *)
}

val config :
  ?model:Rc_core.Model.t ->
  ?combine:bool ->
  ?pin_loops:bool ->
  ifile:Reg.file ->
  ffile:Reg.file ->
  unit ->
  config

(** Rewrite a whole program into architectural form, in place.  Returns
    the number of connect instructions inserted.
    @raise Invalid_argument on physical registers outside the file or
    opcodes that cannot appear in physical form. *)
val run : config -> Mcode.t -> int

(** Check that a program is in architectural form: every operand index
    is below its file's core size. *)
val check_arch_form : ifile:Reg.file -> ffile:Reg.file -> Mcode.t -> bool
