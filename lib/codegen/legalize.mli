(** Make the IR directly lowerable: every [Alu] operation must have a
    register first operand (the target has register-immediate forms only
    for the second operand).  Commutative operations are swapped;
    otherwise the constant is materialised.  Runs before register
    allocation so materialisation temporaries participate in
    colouring. *)

val run_func : Rc_ir.Func.t -> unit
val run : Rc_ir.Prog.t -> unit
