(** Make the IR directly lowerable: every [Alu] operation must have a
    register first operand (the target has register-immediate forms only
    for the second operand).  Commutative operations are swapped;
    otherwise the constant is materialised.  Runs before register
    allocation so materialisation temporaries participate in colouring. *)

open Rc_isa
open Rc_ir

let commutative = function
  | Opcode.Add | Opcode.Mul | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Seq
    ->
      true
  | Opcode.Sub | Opcode.Div | Opcode.Rem | Opcode.Sll | Opcode.Srl
  | Opcode.Sra | Opcode.Slt ->
      false

let run_func (f : Func.t) =
  List.iter
    (fun (b : Block.t) ->
      b.Block.ops <-
        List.concat_map
          (fun op ->
            match op with
            | Op.Alu (a, d, Op.C cx, Op.C cy) ->
                [ Op.Li (d, Opcode.eval_alu a cx cy) ]
            | Op.Alu (a, d, Op.C cx, (Op.V _ as y)) ->
                if commutative a then [ Op.Alu (a, d, y, Op.C cx) ]
                else begin
                  let t = Func.fresh_vreg f Reg.Int in
                  [ Op.Li (t, cx); Op.Alu (a, d, Op.V t, y) ]
                end
            | op -> [ op ])
          b.Block.ops)
    f.Func.blocks

let run (p : Prog.t) = List.iter run_func p.Prog.funcs
