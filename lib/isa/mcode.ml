(** Machine-code containers: labelled blocks, functions, whole programs,
    and static data.  Produced by the code generator, consumed by the
    scheduler and the assembler. *)

type block = { label : int; mutable insns : Insn.t list }

type func = {
  name : string;
  entry_label : int;  (** label of the first block *)
  mutable blocks : block list;
}

type init =
  | Zero
  | Words of int64 array
  | Doubles of float array
  | Bytes of string

type global = { gname : string; bytes : int; init : init }

type t = {
  mutable funcs : func list;
  mutable globals : global list;
  entry : string;  (** name of the entry function *)
}

let create ~entry = { funcs = []; globals = []; entry }

let add_func t f = t.funcs <- t.funcs @ [ f ]
let add_global t g = t.globals <- t.globals @ [ g ]

let find_func t name = List.find (fun f -> f.name = name) t.funcs

let init_bytes = function
  | Zero -> 0
  | Words ws -> 8 * Array.length ws
  | Doubles ds -> 8 * Array.length ds
  | Bytes s -> String.length s

let global ~name ~bytes ?(init = Zero) () =
  if bytes < init_bytes init then invalid_arg "Mcode.global: init larger than size";
  { gname = name; bytes; init }

let iter_insns t f =
  List.iter
    (fun fn -> List.iter (fun b -> List.iter f b.insns) fn.blocks)
    t.funcs

let insn_count t =
  let n = ref 0 in
  iter_insns t (fun _ -> incr n);
  !n

(** Static instruction counts per provenance tag plus connects, the raw
    material of Figure 9. *)
type size_breakdown = {
  normal : int;
  spill : int;
  save : int;
  xsave : int;
  connects : int;
}

let size_breakdown t =
  let normal = ref 0
  and spill = ref 0
  and save = ref 0
  and xsave = ref 0
  and connects = ref 0 in
  iter_insns t (fun i ->
      if Insn.is_connect i then incr connects
      else
        match i.Insn.tag with
        | Insn.Normal -> incr normal
        | Insn.Spill -> incr spill
        | Insn.Save -> incr save
        | Insn.Xsave -> incr xsave);
  {
    normal = !normal;
    spill = !spill;
    save = !save;
    xsave = !xsave;
    connects = !connects;
  }

(** A structural copy: fresh [func] and [block] records — the scheduler
    and the connect-insertion pass replace the mutable [blocks]/[insns]
    lists in place — sharing the [Insn.t] values (immutable after
    lowering; the assembler patches targets on copies) and the
    globals. *)
let copy t =
  {
    t with
    funcs =
      List.map
        (fun f ->
          {
            f with
            blocks = List.map (fun b -> { b with insns = b.insns }) f.blocks;
          })
        t.funcs;
  }

let pp_func ppf fn =
  Fmt.pf ppf "%s:@." fn.name;
  List.iter
    (fun b ->
      Fmt.pf ppf ".L%d:@." b.label;
      List.iter (fun i -> Fmt.pf ppf "    %a@." Insn.pp i) b.insns)
    fn.blocks

let pp ppf t = List.iter (pp_func ppf) t.funcs
