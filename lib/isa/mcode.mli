(** Machine-code containers: labelled blocks, functions, whole programs
    and static data.  Produced by the code generator, consumed by the
    scheduler and the assembler. *)

type block = { label : int; mutable insns : Insn.t list }

type func = {
  name : string;
  entry_label : int;  (** label of the first block *)
  mutable blocks : block list;
}

type init =
  | Zero
  | Words of int64 array
  | Doubles of float array
  | Bytes of string

type global = { gname : string; bytes : int; init : init }

type t = {
  mutable funcs : func list;
  mutable globals : global list;
  entry : string;  (** name of the entry function *)
}

val create : entry:string -> t
val add_func : t -> func -> unit
val add_global : t -> global -> unit

(** @raise Not_found when no function has that name. *)
val find_func : t -> string -> func

val init_bytes : init -> int

(** @raise Invalid_argument when the initialiser exceeds [bytes]. *)
val global : name:string -> bytes:int -> ?init:init -> unit -> global

val iter_insns : t -> (Insn.t -> unit) -> unit
val insn_count : t -> int

(** A structural copy that can be scheduled / connect-lowered without
    disturbing the original: fresh [func] and [block] records, with the
    [Insn.t] values (immutable after lowering) and globals shared. *)
val copy : t -> t

(** Static instruction counts per provenance tag plus connects, the raw
    material of Figure 9. *)
type size_breakdown = {
  normal : int;
  spill : int;
  save : int;
  xsave : int;
  connects : int;
}

val size_breakdown : t -> size_breakdown
val pp_func : Format.formatter -> func -> unit
val pp : Format.formatter -> t -> unit
